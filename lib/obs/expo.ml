(* Prometheus text exposition (version 0.0.4) of a registry snapshot.
   Samples arrive sorted by (name, labels), so each family is a
   contiguous run sharing one HELP/TYPE header. *)

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* {a="x",b="y"} — [extra] appends the histogram [le] label last. *)
let label_block ?extra labels =
  let pairs =
    List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels
    @ (match extra with Some (k, v) -> [ Printf.sprintf "%s=\"%s\"" k v ] | None -> [])
  in
  if pairs = [] then "" else "{" ^ String.concat "," pairs ^ "}"

let type_name = function
  | Registry.Counter_v _ -> "counter"
  | Registry.Gauge_v _ -> "gauge"
  | Registry.Histogram_v _ -> "histogram"

let emit_sample b (s : Registry.sample) =
  match s.value with
  | Registry.Counter_v v ->
    Printf.bprintf b "%s%s %d\n" s.name (label_block s.labels) v
  | Registry.Gauge_v v ->
    Printf.bprintf b "%s%s %d\n" s.name (label_block s.labels) v
  | Registry.Histogram_v h ->
    let cum = Metric.Histogram.cumulative h in
    Array.iteri
      (fun i c ->
         let le =
           if i < Array.length h.Metric.Histogram.sbounds then
             fmt_float h.Metric.Histogram.sbounds.(i)
           else "+Inf"
         in
         Printf.bprintf b "%s_bucket%s %d\n" s.name
           (label_block ~extra:("le", le) s.labels) c)
      cum;
    Printf.bprintf b "%s_sum%s %s\n" s.name (label_block s.labels)
      (fmt_float h.Metric.Histogram.ssum);
    Printf.bprintf b "%s_count%s %d\n" s.name (label_block s.labels)
      (Metric.Histogram.count h)

let text samples =
  let b = Buffer.create 1024 in
  let last_name = ref None in
  List.iter
    (fun (s : Registry.sample) ->
       if !last_name <> Some s.name then begin
         last_name := Some s.name;
         if s.help <> "" then
           Printf.bprintf b "# HELP %s %s\n" s.name (escape_help s.help);
         Printf.bprintf b "# TYPE %s %s\n" s.name (type_name s.value)
       end;
       emit_sample b s)
    samples;
  Buffer.contents b

let of_registry reg = text (Registry.snapshot reg)
