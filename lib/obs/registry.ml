(* Named metric registration.  Registration (get-or-create) takes a
   mutex; the returned handles are then mutated lock-free, so hot paths
   resolve their handles once and never touch the registry again. *)

type labels = (string * string) list

type metric =
  | Counter of Metric.Counter.t
  | Gauge of Metric.Gauge.t
  | Histogram of Metric.Histogram.t

type entry = {
  help : string;
  labels : labels;
  metric : metric;
}

type t = {
  lock : Mutex.t;
  (* name -> children, newest first; one child per label set *)
  families : (string, entry list ref) Hashtbl.t;
}

let create () = { lock = Mutex.create (); families = Hashtbl.create 32 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let valid_name name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

let norm_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let same_kind a b =
  match a, b with
  | Counter _, Counter _ | Gauge _, Gauge _ | Histogram _, Histogram _ -> true
  | (Counter _ | Gauge _ | Histogram _), _ -> false

(* Get-or-create: a second registration of the same (name, labels) hands
   back the existing handle, so per-run registries can be shared across
   repeated runs (counters then accumulate). *)
let register t ?(help = "") ?(labels = []) name fresh =
  if not (valid_name name) then
    invalid_arg ("Obs.Registry: invalid metric name " ^ name);
  let labels = norm_labels labels in
  locked t (fun () ->
      let children =
        match Hashtbl.find_opt t.families name with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.add t.families name r;
          r
      in
      match List.find_opt (fun e -> e.labels = labels) !children with
      | Some e ->
        let m = fresh () in
        if not (same_kind e.metric m) then
          invalid_arg
            (Printf.sprintf "Obs.Registry: %s is a %s, re-registered as a %s"
               name (kind_name e.metric) (kind_name m));
        e.metric
      | None ->
        let help =
          (* a family's help comes from whichever child named it first *)
          match !children with [] -> help | e :: _ -> e.help
        in
        let e = { help; labels; metric = fresh () } in
        children := e :: !children;
        e.metric)

let counter t ?help ?labels name =
  match register t ?help ?labels name (fun () -> Counter (Metric.Counter.create ())) with
  | Counter c -> c
  | Gauge _ | Histogram _ -> assert false

let gauge t ?help ?labels name =
  match register t ?help ?labels name (fun () -> Gauge (Metric.Gauge.create ())) with
  | Gauge g -> g
  | Counter _ | Histogram _ -> assert false

let histogram t ?help ?labels ?bounds name =
  match
    register t ?help ?labels name
      (fun () -> Histogram (Metric.Histogram.create ?bounds ()))
  with
  | Histogram h -> h
  | Counter _ | Gauge _ -> assert false

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of Metric.Histogram.snapshot

type sample = {
  name : string;
  help : string;
  labels : labels;
  value : value;
}

let snapshot t =
  let samples =
    locked t (fun () ->
        Hashtbl.fold
          (fun name children acc ->
             List.fold_left
               (fun acc e ->
                  let value =
                    match e.metric with
                    | Counter c -> Counter_v (Metric.Counter.get c)
                    | Gauge g -> Gauge_v (Metric.Gauge.get g)
                    | Histogram h -> Histogram_v (Metric.Histogram.snapshot h)
                  in
                  { name; help = e.help; labels = e.labels; value } :: acc)
               acc !children)
          t.families [])
  in
  (* deterministic order for exposition and golden tests *)
  List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels)) samples
