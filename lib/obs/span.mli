(** Timing scopes over a monotonicised wall clock. *)

(** Seconds since the epoch, guaranteed non-decreasing within the
    process even if the system clock steps backwards. *)
val now : unit -> float

type t

val start : unit -> t

(** Seconds since [start]; never negative. *)
val elapsed : t -> float

(** [finish span hist] records the elapsed seconds into [hist]. *)
val finish : t -> Metric.Histogram.t -> unit

(** [time hist f] runs [f] inside a span, recording its duration into
    [hist] even if [f] raises. *)
val time : Metric.Histogram.t -> (unit -> 'a) -> 'a
