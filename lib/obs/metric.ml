(* Domain-safe metric primitives.  Counters and gauges are single atomic
   ints; histograms keep one atomic count per bucket plus a CAS-looped
   boxed-float sum, so concurrent [record]s from scheduler workers or a
   Util.Parallel pool never lose increments. *)

module Counter = struct
  type t = int Atomic.t

  let create () = Atomic.make 0
  let incr t = Atomic.incr t
  let add t n =
    if n < 0 then invalid_arg "Obs.Metric.Counter.add: negative increment";
    ignore (Atomic.fetch_and_add t n)
  let get t = Atomic.get t
end

module Gauge = struct
  type t = int Atomic.t

  let create () = Atomic.make 0
  let set t v = Atomic.set t v
  let incr t = Atomic.incr t
  let decr t = Atomic.decr t
  let add t n = ignore (Atomic.fetch_and_add t n)
  let get t = Atomic.get t

  (* Monotone raise-to: used for peaks aggregated across domains. *)
  let rec set_max t v =
    let cur = Atomic.get t in
    if v > cur && not (Atomic.compare_and_set t cur v) then set_max t v
end

module Histogram = struct
  type t = {
    bounds : float array;          (* strictly increasing upper bounds *)
    counts : int Atomic.t array;   (* length bounds + 1; last is +Inf *)
    sum : float Atomic.t;          (* CAS loop; boxed-float identity CAS *)
  }

  let exponential ~least ~factor ~count =
    if least <= 0. || factor <= 1. || count < 1 then
      invalid_arg "Obs.Metric.Histogram.exponential";
    Array.init count (fun i -> least *. (factor ** float_of_int i))

  (* 10us .. ~84s in powers of two: wide enough for queue waits and whole
     bench-section run times alike. *)
  let default_latency_bounds = exponential ~least:1e-5 ~factor:2. ~count:23

  (* 1us .. ~10s in quarter-decade steps: tight enough that interpolated
     tail quantiles (p99/p999) from a load generator are meaningful. *)
  let fine_latency_bounds = exponential ~least:1e-6 ~factor:1.333521432163324 ~count:57

  (* 1 .. 2^20 entries/bytes. *)
  let default_size_bounds = exponential ~least:1. ~factor:2. ~count:21

  let validate_bounds bounds =
    if Array.length bounds = 0 then
      invalid_arg "Obs.Metric.Histogram: empty bucket bounds";
    Array.iteri
      (fun i b ->
         if i > 0 && bounds.(i - 1) >= b then
           invalid_arg "Obs.Metric.Histogram: bounds must strictly increase")
      bounds

  let create ?(bounds = default_latency_bounds) () =
    validate_bounds bounds;
    { bounds = Array.copy bounds;
      counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
      sum = Atomic.make 0. }

  (* Binary search for the first bound >= v; n on overflow.  This is the
     per-record hot path, so it must stay cheap for per-event callers
     like the simulator's occupancy histogram. *)
  let bucket_of t v =
    let bounds = t.bounds in
    let n = Array.length bounds in
    if v <= Array.unsafe_get bounds 0 then 0
    else if v > Array.unsafe_get bounds (n - 1) then n
    else begin
      (* invariant: bounds.(lo) < v <= bounds.(hi) *)
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if v <= Array.unsafe_get bounds mid then hi := mid else lo := mid
      done;
      !hi
    end

  let rec add_sum t v =
    let old = Atomic.get t.sum in
    if not (Atomic.compare_and_set t.sum old (old +. v)) then add_sum t v

  let record t v =
    Atomic.incr t.counts.(bucket_of t v);
    add_sum t v

  (* Single-domain batch accumulator over a shared histogram: [record]
     touches only plain fields (no atomics, no boxed-float allocation),
     [flush] publishes the whole batch.  Per-event hot paths (the
     simulator's occupancy series) use this to keep instrumentation
     near-free; successive values repeat often there, so the last bucket
     is memoised. *)
  module Local = struct
    type h = t

    type nonrec t = {
      target : h;
      lcounts : int array;
      mutable lsum : float;
      mutable last_v : float;
      mutable last_bucket : int;
    }

    let create target =
      { target;
        lcounts = Array.make (Array.length target.counts) 0;
        lsum = 0.; last_v = nan; last_bucket = -1 }

    let record l v =
      let b =
        if v = l.last_v then l.last_bucket
        else begin
          let b = bucket_of l.target v in
          l.last_v <- v;
          l.last_bucket <- b;
          b
        end
      in
      Array.unsafe_set l.lcounts b (Array.unsafe_get l.lcounts b + 1);
      l.lsum <- l.lsum +. v

    let flush l =
      Array.iteri
        (fun i c ->
           if c > 0 then begin
             ignore (Atomic.fetch_and_add l.target.counts.(i) c);
             l.lcounts.(i) <- 0
           end)
        l.lcounts;
      if l.lsum <> 0. then begin
        add_sum l.target l.lsum;
        l.lsum <- 0.
      end
  end

  type snapshot = {
    sbounds : float array;
    scounts : int array;           (* length sbounds + 1; last is +Inf *)
    ssum : float;
  }

  let snapshot t =
    { sbounds = Array.copy t.bounds;
      scounts = Array.map Atomic.get t.counts;
      ssum = Atomic.get t.sum }

  let count s = Array.fold_left ( + ) 0 s.scounts

  (* Cumulative counts per bucket (the Prometheus [le] series). *)
  let cumulative s =
    let acc = ref 0 in
    Array.map (fun c -> acc := !acc + c; !acc) s.scounts

  (* The [rank]-th recorded value (1-based) lies in some bucket
     [(lower, upper]]; the estimate interpolates linearly inside it and
     therefore always stays within the bucket bounds.  The overflow
     bucket has no finite upper bound: its estimate is its lower bound
     (the largest finite boundary). *)
  let quantile s q =
    let q = Float.min 1. (Float.max 0. q) in
    let total = count s in
    if total = 0 then 0.
    else begin
      let rank =
        Stdlib.max 1 (Stdlib.min total (int_of_float (ceil (q *. float_of_int total))))
      in
      let nb = Array.length s.sbounds in
      let rec find i cum_before =
        let cum = cum_before + s.scounts.(i) in
        if cum >= rank then begin
          let lower = if i = 0 then 0. else s.sbounds.(i - 1) in
          if i >= nb then lower
          else begin
            let upper = s.sbounds.(i) in
            let inside = float_of_int (rank - cum_before) in
            let width = float_of_int s.scounts.(i) in
            (* clamp: rounding in the interpolation must not push the
               estimate past the bucket bounds *)
            Float.max lower
              (Float.min upper (lower +. ((upper -. lower) *. inside /. width)))
          end
        end
        else find (i + 1) cum
      in
      find 0 0
    end

  let merge a b =
    if a.sbounds <> b.sbounds then
      invalid_arg "Obs.Metric.Histogram.merge: bucket layouts differ";
    { sbounds = a.sbounds;
      scounts = Array.map2 ( + ) a.scounts b.scounts;
      ssum = a.ssum +. b.ssum }
end
