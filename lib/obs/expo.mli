(** Prometheus text exposition (format 0.0.4) of registry snapshots:
    one [# HELP]/[# TYPE] header per family, histograms expanded into
    cumulative [_bucket{le="..."}] series plus [_sum] and [_count]. *)

val text : Registry.sample list -> string

(** [of_registry reg] = [text (Registry.snapshot reg)]. *)
val of_registry : Registry.t -> string
