(* Monotonicised timing scopes.  [Unix.gettimeofday] can step backwards
   (NTP); a process-wide high-water mark makes the reported clock
   non-decreasing, so span durations are never negative. *)

let watermark = Atomic.make 0.

let rec now () =
  let t = Unix.gettimeofday () in
  let last = Atomic.get watermark in
  if t <= last then last
  else if Atomic.compare_and_set watermark last t then t
  else now ()

type t = { started : float }

let start () = { started = now () }

let elapsed s = now () -. s.started

let finish s h = Metric.Histogram.record h (elapsed s)

let time h f =
  let s = start () in
  Fun.protect ~finally:(fun () -> finish s h) f
