(** Named metric registration with labeled families and point-in-time
    snapshots.

    Registration is get-or-create: asking twice for the same
    [(name, labels)] pair returns the same handle (so shared registries
    accumulate across runs); asking with a different metric kind is
    [invalid_arg].  A family is a name registered under several label
    sets; its help text comes from the first registration.

    Registration takes a mutex; the returned {!Metric} handles are
    lock-free.  Hot paths should resolve handles once up front. *)

type t

type labels = (string * string) list

val create : unit -> t

(** Names must match [[a-zA-Z_:][a-zA-Z0-9_:]*]. *)
val counter : t -> ?help:string -> ?labels:labels -> string -> Metric.Counter.t

val gauge : t -> ?help:string -> ?labels:labels -> string -> Metric.Gauge.t

val histogram :
  t -> ?help:string -> ?labels:labels -> ?bounds:float array -> string ->
  Metric.Histogram.t

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of Metric.Histogram.snapshot

type sample = {
  name : string;
  help : string;
  labels : labels;   (** sorted by label name *)
  value : value;
}

(** A consistent-enough point-in-time read of every registered metric,
    sorted by [(name, labels)] — deterministic for golden tests. *)
val snapshot : t -> sample list
