(** Dependency-free observability layer: atomic metric primitives, a
    named registry with labeled families, monotonic timing scopes, and
    Prometheus-style text exposition.  The JSON wire form lives in
    [Server.Obs_json] (it reuses [Server.Json]). *)

module Metric = Metric
module Registry = Registry
module Span = Span
module Expo = Expo
