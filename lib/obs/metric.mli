(** Domain-safe metric primitives: atomic counters and gauges, and
    log-bucketed histograms with quantile estimation.  All mutation is
    lock-free and safe under concurrent use from any number of domains;
    no increment is ever lost. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit

  (** Counters are monotone; a negative increment is [invalid_arg]. *)
  val add : t -> int -> unit

  val get : t -> int
end

module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> int -> unit
  val incr : t -> unit
  val decr : t -> unit
  val add : t -> int -> unit

  (** [set_max g v] raises the gauge to [v] if it is below it (a CAS
      loop) — for peaks aggregated from several domains. *)
  val set_max : t -> int -> unit

  val get : t -> int
end

module Histogram : sig
  type t

  (** [exponential ~least ~factor ~count] — bucket upper bounds
      [least * factor^i] for [i < count]. *)
  val exponential : least:float -> factor:float -> count:int -> float array

  (** 1e-5s to ~84s in powers of two — the default for latencies. *)
  val default_latency_bounds : float array

  (** 1e-6s to ~10s in eighth-decade steps (57 buckets) — finer-grained
      than {!default_latency_bounds}, for load generators whose
      interpolated tail quantiles (p99/p999) must be credible. *)
  val fine_latency_bounds : float array

  (** 1 to 2^20 in powers of two — for sizes and occupancies. *)
  val default_size_bounds : float array

  (** Bounds must strictly increase; an implicit +Inf overflow bucket is
      always appended. *)
  val create : ?bounds:float array -> unit -> t

  (** [record t v] adds [v] to the first bucket with [v <= bound] (the
      overflow bucket if none). *)
  val record : t -> float -> unit

  (** A single-domain batch accumulator over a shared histogram:
      {!Local.record} costs a couple of plain-field writes (no atomics,
      no allocation), {!Local.flush} publishes the whole batch to the
      underlying histogram.  One accumulator must only ever be used from
      one domain at a time; the histogram it feeds stays safe to share. *)
  module Local : sig
    type histogram := t
    type t

    val create : histogram -> t
    val record : t -> float -> unit

    (** Idempotent between records: flushing twice publishes nothing new. *)
    val flush : t -> unit
  end

  type snapshot = {
    sbounds : float array;   (** finite upper bounds, ascending *)
    scounts : int array;     (** per-bucket counts; one longer, last = +Inf *)
    ssum : float;
  }

  val snapshot : t -> snapshot

  (** Total recorded observations: the sum of all bucket counts. *)
  val count : snapshot -> int

  (** Cumulative (Prometheus [le]) counts; same length as [scounts],
      non-decreasing, last element = {!count}. *)
  val cumulative : snapshot -> int array

  (** Quantile estimate by linear interpolation inside the bucket
      holding the rank: always within that bucket's bounds.  [q] is
      clamped to [0,1]; an empty histogram estimates 0.  The overflow
      bucket estimates its lower bound. *)
  val quantile : snapshot -> float -> float

  (** Element-wise sum; commutative.  [invalid_arg] if the bucket
      layouts differ. *)
  val merge : snapshot -> snapshot -> snapshot
end
