(** Text rendering of figure data: labelled (x, y) series printed as
    aligned tables and quick ASCII plots, so every thesis figure can be
    regenerated as terminal output by the bench harness. *)

type t = {
  label : string;
  points : (float * float) list;
}

val make : label:string -> (float * float) list -> t

(** [with_capture fn] runs [fn] with this module's printers redirected
    into a buffer (domain-local, so concurrent captures don't mix) and
    returns what was printed.  Used by the bench harness to run sections
    in parallel while emitting their output in order. *)
val with_capture : (unit -> unit) -> string

(** [print_table ~title ~x_label ~y_label series] prints one row per
    distinct x value with a column per series. *)
val print_table :
  title:string -> x_label:string -> y_label:string -> t list -> unit

(** [print_ascii ~title ~width ~height series] draws a crude scatter of all
    series on one ASCII canvas (one glyph per series). *)
val print_ascii : title:string -> ?width:int -> ?height:int -> t list -> unit

(** [print_rows ~title ~header rows] prints an aligned table of string
    cells — for the thesis's numbered tables. *)
val print_rows : title:string -> header:string list -> string list list -> unit
