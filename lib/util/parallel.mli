(** A small [Domain.spawn] work pool for the embarrassingly parallel
    sweeps of the bench harness and the simulator's table-size probes.

    [map ~domains f xs] applies [f] to every element of [xs], spreading
    the calls over up to [domains] domains (the calling domain included),
    and returns the results in input order — the result equals
    [List.map f xs] whenever [f] is pure.  With [domains <= 1], a short
    list, or when called from inside another [map] worker (nested
    parallelism would oversubscribe the runtime), it degrades to a plain
    sequential [List.map].

    Work items are handed out through a shared atomic counter, so uneven
    item costs balance across domains.  If any call raises, the first
    exception (in completion order) is re-raised in the caller after all
    domains have been joined. *)

(** Pool width used when [map]'s [?domains] is omitted.  Starts at 1
    (fully sequential); the bench harness sets it from [--jobs]. *)
val set_default_domains : int -> unit

val default_domains : unit -> int

(** The runtime's [Domain.recommended_domain_count]. *)
val recommended_domains : unit -> int

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

(** [iter ~domains f xs] = [ignore (map ~domains f xs)]. *)
val iter : ?domains:int -> ('a -> unit) -> 'a list -> unit
