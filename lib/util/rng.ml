(* splitmix64 with the 64-bit state kept as two untagged 32-bit native
   ints.  The obvious [int64] state boxes a fresh [Int64.t] on every
   arithmetic step under the non-flambda compiler, which made the
   generator the single largest allocator in the simulation hot loop.
   Working in halves keeps every intermediate a tagged immediate: the
   64-bit adds, xors and shifts decompose per half, and each 64x64
   multiply (by a mixing constant) takes three native products — see
   the note at [step].  The emitted stream is bit-for-bit the
   splitmix64 stream of the previous [int64] implementation — every
   seeded golden in the repo depends on that. *)

type t = {
  mutable hi : int;   (* state bits 32..63 *)
  mutable lo : int;   (* state bits 0..31 *)
  mutable zhi : int;  (* last output, bits 32..63 *)
  mutable zlo : int;  (* last output, bits 0..31 *)
}

let mask32 = 0xFFFFFFFF

let create ~seed =
  (* matches [Int64.of_int seed]: sign-extended two's complement *)
  { hi = (seed asr 32) land mask32; lo = seed land mask32; zhi = 0; zlo = 0 }

(* One splitmix64 step: advance the state by the golden gamma and leave
   the mixed output in [zhi]/[zlo].  Each 64x64 multiply keeps only the
   low 64 bits, as [Int64.mul] does, and costs three native products:
   for z * (ch*2^32 + cl) with both mixing constants' low halves under
   2^31,

     - [zlo * cl] is at most (2^32-1)(2^31-1) < 2^62: exact, and its
       top bits are the carry into the high half;
     - [zhi * cl] is exact for the same reason;
     - [zlo * ch] may wrap past bit 62, but native arithmetic wraps
       mod 2^63 and 2^32 divides 2^63, so the low 32 bits of the
       wrapped sum are exactly the low 32 bits of the true sum — all
       the final mask keeps. *)
let step t =
  (* state += 0x9E3779B97F4A7C15 *)
  let slo = t.lo + 0x7F4A7C15 in
  let lo = slo land mask32 in
  let hi = (t.hi + 0x9E3779B9 + (slo lsr 32)) land mask32 in
  t.hi <- hi;
  t.lo <- lo;
  (* z ^= z >>> 30 *)
  let zlo = lo lxor ((lo lsr 30) lor ((hi land 0x3FFFFFFF) lsl 2)) in
  let zhi = hi lxor (hi lsr 30) in
  (* z *= 0xBF58476D1CE4E5B9 *)
  let p = zlo * 0x1CE4E5B9 in
  let mlo = p land mask32 in
  let mhi = ((p lsr 32) + zhi * 0x1CE4E5B9 + zlo * 0xBF58476D) land mask32 in
  (* z ^= z >>> 27 *)
  let zlo = mlo lxor ((mlo lsr 27) lor ((mhi land 0x7FFFFFF) lsl 5)) in
  let zhi = mhi lxor (mhi lsr 27) in
  (* z *= 0x94D049BB133111EB *)
  let p = zlo * 0x133111EB in
  let mlo = p land mask32 in
  let mhi = ((p lsr 32) + zhi * 0x133111EB + zlo * 0x94D049BB) land mask32 in
  (* z ^= z >>> 31 *)
  t.zlo <- mlo lxor ((mlo lsr 31) lor ((mhi land 0x7FFFFFFF) lsl 1));
  t.zhi <- mhi lxor (mhi lsr 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  step t;
  (* (z >>> 1) mod bound on the 63-bit value, without materialising it:
     v = a*2^31 + b, so v mod m = ((a mod m)*(2^31 mod m) + b) mod m.
     For m <= 2^31 every intermediate stays under 2^62. *)
  let hi1 = t.zhi lsr 1 in
  let lo1 = (t.zlo lsr 1) lor ((t.zhi land 1) lsl 31) in
  if bound <= 0x80000000 then begin
    let a = (hi1 lsl 1) lor (lo1 lsr 31) in
    let b = lo1 land 0x7FFFFFFF in
    ((a mod bound) * (0x80000000 mod bound) + b) mod bound
  end
  else
    (* bounds beyond 2^31 are outside the hot path; exactness over speed *)
    Int64.to_int
      (Int64.rem
         (Int64.logor (Int64.shift_left (Int64.of_int hi1) 32) (Int64.of_int lo1))
         (Int64.of_int bound))

(* The 53-bit numerator of {!float}: [float] is [unit_53 / 2^53].
   Exposed so hot loops can run Bernoulli draws as an integer-to-float
   compare against a pre-scaled threshold, without the boxed float a
   [float]-returning call costs under the non-flambda compiler. *)
let unit_53 t =
  step t;
  (t.zhi lsl 21) lor (t.zlo lsr 11)

let float t = float_of_int (unit_53 t) /. 9007199254740992.0

(* [unit_53 t < p * 2^53] — scaling by a power of two is exact, so this
   is the same predicate as [float t < p] without constructing the
   quotient. *)
let bool t ~p = float_of_int (unit_53 t) < p *. 9007199254740992.0

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let weighted t weights =
  let n = Array.length weights in
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Rng.weighted: weights sum to zero";
  (* one draw, one forward scan; the last index absorbs any rounding
     slack at the top of the range *)
  let x = float t *. total in
  let acc = ref 0. in
  let result = ref (n - 1) in
  let i = ref 0 in
  let scanning = ref true in
  while !scanning && !i < n do
    acc := !acc +. weights.(!i);
    if x < !acc then begin
      result := !i;
      scanning := false
    end;
    incr i
  done;
  !result

let split t =
  step t;
  { hi = t.zhi; lo = t.zlo; zhi = 0; zlo = 0 }
