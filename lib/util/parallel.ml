let default = Atomic.make 1

let set_default_domains n = Atomic.set default (max 1 n)
let default_domains () = Atomic.get default
let recommended_domains () = Domain.recommended_domain_count ()

(* Nested [map] calls run sequentially: a worker spawning its own pool
   would multiply the domain count past the runtime's sweet spot. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let map ?domains f xs =
  let domains =
    match domains with Some d -> max 1 d | None -> Atomic.get default
  in
  let n = List.length xs in
  let domains = min domains n in
  if domains <= 1 || Domain.DLS.get in_worker then List.map f xs
  else begin
    let input = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let work () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f input.(i));
          loop ()
        end
      in
      try loop ()
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set failure None (Some (e, bt)))
    in
    let worker () =
      Domain.DLS.set in_worker true;
      work ()
    in
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    (* The caller participates too; flag it so [f] can't re-enter. *)
    Domain.DLS.set in_worker true;
    work ();
    Domain.DLS.set in_worker false;
    List.iter Domain.join spawned;
    (match Atomic.get failure with
     | Some (e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end

let iter ?domains f xs = ignore (map ?domains f xs)
