(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulators takes an explicit [Rng.t]
    so that runs are reproducible from a seed and independent streams do
    not interfere — re-seeding and re-running a trace simulates a fresh
    access pattern, the methodology behind Figure 5.2. *)

type t

val create : seed:int -> t

(** Uniform in [0, bound) ; [bound] must be positive. *)
val int : t -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

(** The 53-bit integer numerator of {!float}: [float t = unit_53 t / 2^53]
    (one draw either way).  Hot loops compare it against a threshold
    pre-scaled by [2^53] — the same predicate as [float t < p], exactly,
    but with no float result to box. *)
val unit_53 : t -> int

(** Bernoulli draw. *)
val bool : t -> p:float -> bool

(** [pick t arr] draws a uniform element.  @raise Invalid_argument if
    empty. *)
val pick : t -> 'a array -> 'a

(** [weighted t weights] draws index [i] with probability proportional to
    [weights.(i)] (non-negative, not all zero). *)
val weighted : t -> float array -> int

(** [split t] derives an independent generator. *)
val split : t -> t
