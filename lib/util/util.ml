(** Shared utilities: a deterministic splitmix64 RNG (every stochastic
    component takes an explicit generator for reproducibility), empirical
    distributions, text renderers for the tables and figure series, and a
    [Domain.spawn] work pool for parallel sweeps. *)

module Rng = Rng
module Dist = Dist
module Series = Series
module Parallel = Parallel
