type t = {
  label : string;
  points : (float * float) list;
}

let make ~label points = { label; points }

(* All rendering goes through a domain-local sink so a worker domain can
   capture a whole section's output and hand it back for in-order
   printing (parallel bench dispatch). *)
let sink : Buffer.t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let emit s =
  match Domain.DLS.get sink with
  | Some b -> Buffer.add_string b s
  | None -> print_string s

let pr fmt = Printf.ksprintf emit fmt

let with_capture fn =
  let b = Buffer.create 1024 in
  let previous = Domain.DLS.get sink in
  Domain.DLS.set sink (Some b);
  Fun.protect ~finally:(fun () -> Domain.DLS.set sink previous) fn;
  Buffer.contents b

let fmt_num x =
  if Float.is_integer x && Float.abs x < 1e9 then Printf.sprintf "%d" (int_of_float x)
  else Printf.sprintf "%.3f" x

let print_rows ~title ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m r -> max m (String.length (Option.value ~default:"" (List.nth_opt r c))))
      0 all
  in
  let widths = List.init cols width in
  let line r =
    String.concat "  "
      (List.mapi
         (fun c w ->
            let cell = Option.value ~default:"" (List.nth_opt r c) in
            cell ^ String.make (w - String.length cell) ' ')
         widths)
  in
  pr "\n== %s ==\n" title;
  pr "%s\n" (line header);
  pr "%s\n" (String.make (String.length (line header)) '-');
  List.iter (fun r -> pr "%s\n" (line r)) rows

let print_table ~title ~x_label ~y_label series =
  let xs =
    List.sort_uniq Float.compare
      (List.concat_map (fun s -> List.map fst s.points) series)
  in
  let header = x_label :: List.map (fun s -> s.label) series in
  let rows =
    List.map
      (fun x ->
         fmt_num x
         :: List.map
              (fun s ->
                 match List.assoc_opt x s.points with
                 | Some y -> fmt_num y
                 | None -> "")
              series)
      xs
  in
  print_rows ~title:(Printf.sprintf "%s  [y: %s]" title y_label) ~header rows

let print_ascii ~title ?(width = 64) ?(height = 16) series =
  let all_points = List.concat_map (fun s -> s.points) series in
  if all_points = [] then pr "\n== %s == (no data)\n" title
  else begin
    let xs = List.map fst all_points and ys = List.map snd all_points in
    let x0 = List.fold_left Float.min infinity xs
    and x1 = List.fold_left Float.max neg_infinity xs
    and y0 = List.fold_left Float.min infinity ys
    and y1 = List.fold_left Float.max neg_infinity ys in
    let xr = if x1 > x0 then x1 -. x0 else 1. in
    let yr = if y1 > y0 then y1 -. y0 else 1. in
    let canvas = Array.make_matrix height width ' ' in
    let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |] in
    List.iteri
      (fun i s ->
         let g = glyphs.(i mod Array.length glyphs) in
         List.iter
           (fun (x, y) ->
              let cx = int_of_float ((x -. x0) /. xr *. float_of_int (width - 1)) in
              let cy = int_of_float ((y -. y0) /. yr *. float_of_int (height - 1)) in
              canvas.(height - 1 - cy).(cx) <- g)
           s.points)
      series;
    pr "\n== %s ==\n" title;
    Array.iter (fun row -> pr "|%s|\n" (String.init width (Array.get row))) canvas;
    pr "x: %s .. %s   y: %s .. %s\n" (fmt_num x0) (fmt_num x1) (fmt_num y0)
      (fmt_num y1);
    List.iteri
      (fun i s -> pr "  %c = %s\n" glyphs.(i mod Array.length glyphs) s.label)
      series
  end
