(** Durable key/value storage for the serving stack: {!Log} is the
    crash-consistent log-structured store behind the result cache —
    group-commit appends to a checksummed segment log, an in-memory
    indirection table rebuilt by recovery replay, copying compaction,
    and size/TTL eviction. *)

module Log = Log_store
