(** A crash-consistent log-structured key/value store.

    Writes group-commit into an append-only segment log
    ([<dir>/seg-NNNNNNNN.smsg]): {!put}/{!delete} buffer operations,
    {!commit} appends them as one length-prefixed record carrying an
    FNV-1a64 checksum of its payload (the framing discipline of
    [Trace.Binary] v2) and is the acknowledgement point — when it
    returns, the group is on disk and survives [kill -9].  An in-memory
    indirection table maps key → (segment, offset, length, value hash),
    so {!mem} and {!get} are O(1) hash lookups; {!get} reads the value
    bytes back from the segment and re-verifies their hash, so a
    flipped byte is a miss, never a wrong answer.

    {b Recovery replay.}  {!open_} rebuilds the table by replaying the
    segments in id order and truncates at the first torn or corrupt
    record: everything before the tear — every acknowledged commit — is
    recovered, the damaged tail (an unacknowledged group) is dropped,
    and the repair (file truncation, removal of later segments) happens
    only after the full scan, so a crash {e during} recovery loses
    nothing.  Recovery is O(live entries + log bytes scanned), with no
    per-entry file opens.

    {b Compaction.}  When the dead-byte ratio crosses the configured
    threshold, compaction copies the live entries into a fresh segment
    headed by an epoch marker (all older segments are superseded),
    verifies the copy by reading it back, and only then atomically
    retires the old segments — a torn compaction write aborts and keeps
    the old log.  A crash between the rename and the unlinks replays
    old segments first and the epoch-marked copy after, which yields
    the same state (no resurrected deletes: replay restarts at the
    marker).

    {b Eviction} bounds the footprint: [max_bytes] evicts
    oldest-written entries (as durable delete records), [ttl] expires
    entries lazily on read and on recovery.

    {b Failure.}  A failed or torn append raises [Sys_error], discards
    the group (it was never acknowledged) and marks the store failed —
    further commits raise, reads keep serving the committed state, and
    the next {!open_} repairs the log.  Faults inject at sites
    ["store.append"], ["store.rotate"], ["store.compact"] and
    ["store.recover"].

    All operations are thread-safe (one lock). *)

type t

type config = {
  segment_bytes : int;     (** rotate the active segment at this size *)
  compact_ratio : float;   (** compact when dead/total crosses this *)
  max_bytes : int option;  (** evict oldest entries above this many live bytes *)
  ttl : float option;      (** expire entries older than this many seconds *)
}

(** 4 MiB segments, compaction at 50% garbage, no size/TTL bound. *)
val default_config : config

(** [open_ ?metrics ?fault ?config ?clock ~dir ()] creates [dir] on
    demand and replays any existing log (see above).  [clock] (default
    [Unix.gettimeofday]) stamps entries and drives TTL expiry — tests
    inject a fake one.  [metrics] registers the [small_store_*]
    families.
    @raise Sys_error if the directory or a segment cannot be read, or
    an injected ["store.recover"] fault fires (nothing is mutated). *)
val open_ :
  ?metrics:Obs.Registry.t -> ?fault:Fault.Plan.t -> ?config:config ->
  ?clock:(unit -> float) -> dir:string -> unit -> t

(** Buffer a write into the pending group.  Visible to {!get}/{!mem}
    immediately (read-your-writes); durable only once {!commit}
    returns.  @raise Sys_error if the store is failed or closed. *)
val put : t -> string -> string -> unit

(** Buffer a deletion into the pending group. *)
val delete : t -> string -> unit

(** Append the pending group as one checksummed record and flush it to
    the OS — the acknowledgement point.  May rotate the segment, evict
    over-budget entries and trigger compaction afterwards.  On failure
    (disk error, injected fault) the pending group is discarded and
    [Sys_error] raises: an unacknowledged group is never half-applied.
    A no-op when nothing is pending. *)
val commit : t -> unit

(** [set t k v] = [put] + [commit]: one acknowledged single-op group. *)
val set : t -> string -> string -> unit

(** O(1) index lookup, then one read of the value span, re-verified
    against the stored hash: a corrupt span or an expired entry is
    dropped and answered [None]. *)
val get : t -> string -> string option

(** O(1); does not touch the disk (cheap enough for placement lookups). *)
val mem : t -> string -> bool

val entries : t -> int
val keys : t -> string list

(** Copy the live entries into a fresh epoch-marked segment and retire
    every older one, regardless of the garbage ratio.  A no-op on a
    failed store; an injected or real write failure keeps the old log. *)
val compact : t -> unit

type stats = {
  segments : int;
  entries : int;
  live_bytes : int;          (** encoded op bytes of live entries *)
  dead_bytes : int;          (** superseded/deleted op bytes awaiting compaction *)
  appends : int;             (** committed groups *)
  recovered_records : int;   (** groups replayed by recovery *)
  truncated_records : int;   (** torn/corrupt records dropped by recovery *)
  corrupt_reads : int;       (** value spans that failed their hash on {!get} *)
  compactions : int;
  evictions : int;           (** size evictions + TTL expiries *)
  write_errors : int;
}

val stats : t -> stats

(** Whether a failed append has wedged the store (reads still work). *)
val failed : t -> bool

(** Encoded size of a put/delete operation — the unit of the
    live/dead-byte accounting ([live_bytes + dead_bytes] is exactly the
    op bytes appended and not yet compacted away). *)
val encoded_put_bytes : key:string -> value:string -> int

val encoded_delete_bytes : key:string -> int

(** Commits pending writes (best-effort) and closes every segment fd.
    Further operations raise [Sys_error]. *)
val close : t -> unit
