(* Log-structured store: an append-only segment log under an in-memory
   indirection table.

   On-disk, a segment is

     "SMSG1\n" record*

   and a record — one commit group — is

     [varint paylen] [8-byte FNV-1a64 of payload] [payload]
     payload := [varint nops] op*
     op := 0x01 [varint klen] key [varint vlen] value [8-byte stamp]   put
         | 0x02 [varint klen] key                                      delete
         | 0x03                                                        epoch reset

   the same length-prefix-plus-checksum framing discipline as the
   Trace.Binary v2 chunk format: recovery verifies each record as it
   replays it, and the first torn or corrupt record marks the
   truncation point.  The epoch reset op heads a compacted segment and
   means "every older segment is superseded" — it is what makes the
   rename-then-unlink retirement crash-safe without resurrecting
   deleted keys.

   The index maps key -> (segment, value offset/length, value hash, op
   bytes, stamp): lookups never touch the disk, gets are one
   positioned read re-verified against the stored hash.  Accounting is
   in encoded-op bytes: live_bytes + dead_bytes is exactly the op
   bytes appended and not yet compacted away (record framing is
   excluded — it is reclaimed by the same copying pass). *)

type config = {
  segment_bytes : int;
  compact_ratio : float;
  max_bytes : int option;
  ttl : float option;
}

let default_config =
  { segment_bytes = 1 lsl 22; compact_ratio = 0.5; max_bytes = None; ttl = None }

let magic = "SMSG1\n"
let magic_len = String.length magic

(* ---- FNV-1a 64 (the Trace.Binary checksum) ---- *)

let fnv_prime = 0x100000001b3L
let fnv_init = 0xcbf29ce484222325L
let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv_sub s pos len =
  let h = ref fnv_init in
  for i = pos to pos + len - 1 do
    h := fnv_byte !h (Char.code (String.unsafe_get s i))
  done;
  !h

let fnv_bytes b pos len =
  let h = ref fnv_init in
  for i = pos to pos + len - 1 do
    h := fnv_byte !h (Char.code (Bytes.unsafe_get b i))
  done;
  !h

let add_hash64 buf h =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical h (8 * (7 - i))) land 0xff))
  done

let read_hash64 s pos =
  let h = ref 0L in
  for i = pos to pos + 7 do
    h := Int64.logor (Int64.shift_left !h 8) (Int64.of_int (Char.code s.[i]))
  done;
  !h

(* ---- varints ---- *)

let put_varint buf n =
  let n = ref n in
  while !n < 0 || !n >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!n land 0x7f)));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.chr !n)

let varint_len n =
  let n = ref n and l = ref 1 in
  while !n < 0 || !n >= 0x80 do incr l; n := !n lsr 7 done;
  !l

(* [None] on a varint running past [limit] (a torn tail). *)
let get_varint s pos limit =
  let n = ref 0 and shift = ref 0 and continue = ref true and ok = ref true in
  while !continue do
    if !pos >= limit || !shift > Sys.int_size - 1 then begin
      ok := false; continue := false
    end
    else begin
      let c = Char.code s.[!pos] in
      incr pos;
      n := !n lor ((c land 0x7f) lsl !shift);
      shift := !shift + 7;
      continue := c land 0x80 <> 0
    end
  done;
  if !ok then Some !n else None

(* ---- op encoding ---- *)

let op_put = '\x01'
let op_delete = '\x02'
let op_reset = '\x03'

let encoded_put_bytes ~key ~value =
  1 + varint_len (String.length key) + String.length key
  + varint_len (String.length value) + String.length value + 8

let encoded_delete_bytes ~key =
  1 + varint_len (String.length key) + String.length key

type op =
  | Put of string * string * float
  | Delete of string
  | Reset

(* Encoded ops parsed back out of a record; [voff] is relative to the
   start of the string being parsed. *)
type parsed_op =
  | P_put of { key : string; voff : int; vlen : int; vhash : int64;
               stamp : float; bytes : int }
  | P_del of { key : string; bytes : int }
  | P_reset

let encode_op buf op =
  match op with
  | Put (k, v, stamp) ->
    Buffer.add_char buf op_put;
    put_varint buf (String.length k);
    Buffer.add_string buf k;
    put_varint buf (String.length v);
    let voff = Buffer.length buf in
    Buffer.add_string buf v;
    add_hash64 buf (Int64.bits_of_float stamp);
    Some voff
  | Delete k ->
    Buffer.add_char buf op_delete;
    put_varint buf (String.length k);
    Buffer.add_string buf k;
    None
  | Reset -> Buffer.add_char buf op_reset; None

(* One record out of [s] at [!pos] (bounded by [limit]).  [Ok (ops, n)]
   advances past it; [Error `End] is a clean end of log, [Error `Bad]
   a torn or corrupt record — the truncation point. *)
let parse_record s pos limit =
  if !pos >= limit then Error `End
  else begin
    let start = !pos in
    match get_varint s pos limit with
    | None -> Error `Bad
    | Some paylen ->
      if paylen < 0 || !pos + 8 + paylen > limit then Error `Bad
      else begin
        let expected = read_hash64 s !pos in
        let payload = !pos + 8 in
        if fnv_sub s payload paylen <> expected then Error `Bad
        else begin
          let p = ref payload in
          let plimit = payload + paylen in
          let bad = ref false in
          let ops = ref [] in
          (match get_varint s p plimit with
           | None -> bad := true
           | Some nops ->
             let i = ref 0 in
             while not !bad && !i < nops do
               incr i;
               if !p >= plimit then bad := true
               else begin
                 let tag = s.[!p] in
                 incr p;
                 if tag = op_put then
                   match get_varint s p plimit with
                   | None -> bad := true
                   | Some klen ->
                     if klen < 0 || !p + klen > plimit then bad := true
                     else begin
                       let key = String.sub s !p klen in
                       p := !p + klen;
                       match get_varint s p plimit with
                       | None -> bad := true
                       | Some vlen ->
                         if vlen < 0 || !p + vlen + 8 > plimit then bad := true
                         else begin
                           let voff = !p in
                           let vhash = fnv_sub s voff vlen in
                           p := !p + vlen;
                           let stamp = Int64.float_of_bits (read_hash64 s !p) in
                           p := !p + 8;
                           ops :=
                             P_put { key; voff; vlen; vhash; stamp;
                                     bytes = 1 + varint_len klen + klen
                                             + varint_len vlen + vlen + 8 }
                             :: !ops
                         end
                     end
                 else if tag = op_delete then
                   match get_varint s p plimit with
                   | None -> bad := true
                   | Some klen ->
                     if klen < 0 || !p + klen > plimit then bad := true
                     else begin
                       let key = String.sub s !p klen in
                       p := !p + klen;
                       ops := P_del { key; bytes = encoded_delete_bytes ~key } :: !ops
                     end
                 else if tag = op_reset then ops := P_reset :: !ops
                 else bad := true
               end
             done;
             if not !bad && !p <> plimit then bad := true);
          if !bad then Error `Bad
          else Ok (List.rev !ops, !pos + 8 + paylen, start)
        end
      end
  end

(* ---- store state ---- *)

(* declared before [t]: the two records share field names and the later
   declaration must be [t]'s so its mutable fields win resolution *)
type stats = {
  segments : int;
  entries : int;
  live_bytes : int;
  dead_bytes : int;
  appends : int;
  recovered_records : int;
  truncated_records : int;
  corrupt_reads : int;
  compactions : int;
  evictions : int;
  write_errors : int;
}

type seg = {
  id : int;
  path : string;
  fd : Unix.file_descr;
  mutable size : int;
}

type entry = {
  e_seg : int;
  e_off : int;      (* absolute file offset of the value bytes *)
  e_len : int;
  e_hash : int64;
  e_bytes : int;    (* encoded op length: the accounting unit *)
  e_stamp : float;
  e_seq : int;
}

type metric_handles = {
  g_segments : Obs.Metric.Gauge.t;
  g_entries : Obs.Metric.Gauge.t;
  g_live : Obs.Metric.Gauge.t;
  g_dead : Obs.Metric.Gauge.t;
  c_appends : Obs.Metric.Counter.t;
  c_recoveries : Obs.Metric.Counter.t;
  c_recovered : Obs.Metric.Counter.t;
  c_truncated : Obs.Metric.Counter.t;
  c_compactions : Obs.Metric.Counter.t;
  c_evictions : Obs.Metric.Counter.t;
  c_write_errors : Obs.Metric.Counter.t;
}

type t = {
  dir : string;
  cfg : config;
  clock : unit -> float;
  fault : Fault.Plan.t option;
  lock : Mutex.t;
  index : (string, entry) Hashtbl.t;
  order : (string * int) Queue.t;    (* append order, for size eviction *)
  mutable segs : seg list;           (* ascending id; last = active *)
  mutable seq : int;
  mutable live_bytes : int;
  mutable dead_bytes : int;
  mutable pending : op list;         (* newest first *)
  pending_tbl : (string, string option) Hashtbl.t;
  mutable is_failed : bool;
  mutable closed : bool;
  mutable appends : int;
  mutable recovered_records : int;
  mutable truncated_records : int;
  mutable corrupt_reads : int;
  mutable compactions : int;
  mutable evictions : int;
  mutable write_errors : int;
  metrics : metric_handles option;
}

let resolve_metrics reg =
  let g name help = Obs.Registry.gauge reg ~help name in
  let c name help = Obs.Registry.counter reg ~help name in
  { g_segments = g "small_store_segments" "segment files in the log";
    g_entries = g "small_store_entries" "live entries in the index";
    g_live = g "small_store_live_bytes" "encoded op bytes of live entries";
    g_dead = g "small_store_dead_bytes" "superseded op bytes awaiting compaction";
    c_appends = c "small_store_appends_total" "committed groups appended";
    c_recoveries = c "small_store_recoveries_total" "recovery replays on open";
    c_recovered = c "small_store_recovered_records_total" "records replayed by recovery";
    c_truncated = c "small_store_truncated_records_total"
        "torn/corrupt records dropped by recovery";
    c_compactions = c "small_store_compactions_total" "copying compactions completed";
    c_evictions = c "small_store_evictions_total" "entries evicted (size bound or TTL)";
    c_write_errors = c "small_store_write_errors_total" "failed or torn appends" }

let with_metrics t f = match t.metrics with None -> () | Some m -> f m

let publish_gauges t =
  with_metrics t (fun m ->
      Obs.Metric.Gauge.set m.g_segments (List.length t.segs);
      Obs.Metric.Gauge.set m.g_entries (Hashtbl.length t.index);
      Obs.Metric.Gauge.set m.g_live t.live_bytes;
      Obs.Metric.Gauge.set m.g_dead t.dead_bytes)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let seg_path dir id = Filename.concat dir (Printf.sprintf "seg-%08d.smsg" id)

let seg_id_of_name name =
  if String.length name = 17
  && String.sub name 0 4 = "seg-" && Filename.check_suffix name ".smsg" then
    int_of_string_opt (String.sub name 4 8)
  else None

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_seg dir id =
  let path = seg_path dir id in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_APPEND; Unix.O_CREAT ] 0o644 in
  { id; path; fd; size = (Unix.fstat fd).Unix.st_size }

let fresh_seg dir id =
  let s = open_seg dir id in
  if s.size = 0 then begin
    let b = Bytes.of_string magic in
    let n = Unix.write s.fd b 0 (Bytes.length b) in
    if n <> Bytes.length b then raise (Sys_error (s.path ^ ": short write"));
    s.size <- magic_len
  end;
  s

let active t = List.nth t.segs (List.length t.segs - 1)
let find_seg t id = List.find (fun s -> s.id = id) t.segs

let write_all fd path b off len =
  let n = ref off in
  let stop = off + len in
  while !n < stop do
    match Unix.write fd b !n (stop - !n) with
    | 0 -> raise (Sys_error (path ^ ": short write"))
    | k -> n := !n + k
  done

let read_at fd path off len =
  let b = Bytes.create len in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let n = ref 0 in
  (try
     while !n < len do
       match Unix.read fd b !n (len - !n) with
       | 0 -> raise Exit
       | k -> n := !n + k
     done
   with Exit -> raise (Sys_error (path ^ ": short read")));
  b

let read_whole path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let len = (Unix.fstat fd).Unix.st_size in
  Bytes.unsafe_to_string (read_at fd path 0 len)

(* ---- index mutation (accounting lives here) ---- *)

let supersede t key =
  match Hashtbl.find_opt t.index key with
  | None -> ()
  | Some old ->
    t.dead_bytes <- t.dead_bytes + old.e_bytes;
    t.live_bytes <- t.live_bytes - old.e_bytes;
    Hashtbl.remove t.index key

let apply_put t key ~seg ~off ~len ~hash ~bytes ~stamp =
  supersede t key;
  t.seq <- t.seq + 1;
  Hashtbl.replace t.index key
    { e_seg = seg; e_off = off; e_len = len; e_hash = hash; e_bytes = bytes;
      e_stamp = stamp; e_seq = t.seq };
  Queue.push (key, t.seq) t.order;
  t.live_bytes <- t.live_bytes + bytes

let apply_delete t key ~bytes =
  supersede t key;
  (* the delete marker itself is garbage the moment it is applied: it
     only suppresses older puts until compaction rewrites the log *)
  t.dead_bytes <- t.dead_bytes + bytes

let apply_reset t =
  Hashtbl.reset t.index;
  Queue.clear t.order;
  t.live_bytes <- 0;
  t.dead_bytes <- 0

(* ---- append path ---- *)

let fail_if_unusable t =
  if t.closed then raise (Sys_error "store is closed");
  if t.is_failed then
    raise (Sys_error "store failed (earlier append error); reopen to recover")

let count_write_error t =
  t.write_errors <- t.write_errors + 1;
  with_metrics t (fun m -> Obs.Metric.Counter.incr m.c_write_errors)

(* Encode [ops] (oldest first) as one record and append it to the
   active segment; on success apply them to the index.  Raises
   [Sys_error] on a failed or torn write — the group is then discarded
   and, after a torn write (partial record bytes on disk), the store is
   marked failed until the next open repairs the tail. *)
let append_group_locked t ops =
  let payload = Buffer.create 256 in
  put_varint payload (List.length ops);
  let voffs = List.map (fun op -> (op, encode_op payload op)) ops in
  let frame = Buffer.create 16 in
  put_varint frame (Buffer.length payload);
  add_hash64 frame (fnv_bytes (Buffer.to_bytes payload) 0 (Buffer.length payload));
  let record = Bytes.cat (Buffer.to_bytes frame) (Buffer.to_bytes payload) in
  let s = active t in
  let base = s.size in
  let frame_len = Buffer.length frame in
  (match Option.bind t.fault (fun p -> Fault.Plan.on_write p ~site:"store.append") with
   | Some Fault.Plan.Write_error ->
     count_write_error t;
     raise (Sys_error (s.path ^ ": injected write error"))
   | Some (Fault.Plan.Torn_write keep) ->
     (* the crash point of the battery: a strict prefix of the record
        lands, the group is NOT acknowledged, and the store is wedged
        until recovery truncates the tear *)
     let n = max 1 (min (Bytes.length record - 1)
                      (int_of_float (keep *. float_of_int (Bytes.length record)))) in
     (try write_all s.fd s.path record 0 n with Sys_error _ -> ());
     s.size <- s.size + n;
     t.is_failed <- true;
     count_write_error t;
     raise (Sys_error (s.path ^ ": injected torn write"))
   | None ->
     (try write_all s.fd s.path record 0 (Bytes.length record)
      with Sys_error _ as e ->
        (* a real short write may have torn the tail: wedge the store *)
        t.is_failed <- true;
        count_write_error t;
        raise e));
  s.size <- s.size + Bytes.length record;
  t.appends <- t.appends + 1;
  with_metrics t (fun m -> Obs.Metric.Counter.incr m.c_appends);
  List.iter
    (fun (op, voff) ->
       match op, voff with
       | Put (k, v, stamp), Some rel ->
         apply_put t k ~seg:s.id ~off:(base + frame_len + rel)
           ~len:(String.length v)
           ~hash:(fnv_sub v 0 (String.length v))
           ~bytes:(encoded_put_bytes ~key:k ~value:v) ~stamp
       | Delete k, _ -> apply_delete t k ~bytes:(encoded_delete_bytes ~key:k)
       | Reset, _ -> apply_reset t
       | Put _, None -> assert false)
    voffs

(* ---- rotation ---- *)

let rotate_locked t =
  let s = active t in
  if s.size >= t.cfg.segment_bytes then begin
    match Option.bind t.fault (fun p -> Fault.Plan.on_write p ~site:"store.rotate") with
    | Some _ ->
      (* rotation is an optimisation; a failed one just keeps appending
         to the oversized segment *)
      count_write_error t
    | None ->
      match fresh_seg t.dir (s.id + 1) with
      | ns -> t.segs <- t.segs @ [ ns ]
      | exception Sys_error _ -> count_write_error t
  end

(* ---- eviction ---- *)

let expired t stamp =
  match t.cfg.ttl with
  | None -> false
  | Some d -> t.clock () -. stamp > d

(* Oldest-first size eviction: durable delete records, so an evicted
   entry stays evicted across recovery. *)
let evict_locked t =
  match t.cfg.max_bytes with
  | None -> ()
  | Some cap ->
    let victims = ref [] in
    while t.live_bytes > cap && not (Queue.is_empty t.order) do
      let key, seq = Queue.pop t.order in
      match Hashtbl.find_opt t.index key with
      | Some e when e.e_seq = seq ->
        (* applying the delete now keeps the loop honest about the
           remaining live bytes; the durable marker follows *)
        apply_delete t key ~bytes:(encoded_delete_bytes ~key);
        t.evictions <- t.evictions + 1;
        with_metrics t (fun m -> Obs.Metric.Counter.incr m.c_evictions);
        victims := Delete key :: !victims
      | _ -> ()   (* stale order pair: overwritten or already deleted *)
    done;
    match !victims with
    | [] -> ()
    | vs ->
      (* the markers' index effect is already applied above; appending
         them again via the index would double-count, so write the
         record without re-applying *)
      (try
         let payload = Buffer.create 64 in
         put_varint payload (List.length vs);
         List.iter (fun op -> ignore (encode_op payload op : int option)) (List.rev vs);
         let frame = Buffer.create 16 in
         put_varint frame (Buffer.length payload);
         add_hash64 frame (fnv_bytes (Buffer.to_bytes payload) 0 (Buffer.length payload));
         let record = Bytes.cat (Buffer.to_bytes frame) (Buffer.to_bytes payload) in
         let s = active t in
         (match Option.bind t.fault (fun p -> Fault.Plan.on_write p ~site:"store.append") with
          | Some _ -> count_write_error t
          | None ->
            write_all s.fd s.path record 0 (Bytes.length record);
            s.size <- s.size + Bytes.length record;
            t.appends <- t.appends + 1;
            with_metrics t (fun m -> Obs.Metric.Counter.incr m.c_appends))
       with Sys_error _ -> count_write_error t)

(* ---- compaction ---- *)

let compact_trigger t =
  let total = t.live_bytes + t.dead_bytes in
  total > 0 && t.dead_bytes >= 1024
  && float_of_int t.dead_bytes >= t.cfg.compact_ratio *. float_of_int total

(* Copy the live entries into a fresh epoch-marked segment, verify the
   copy by reading it back, then atomically retire the old segments.
   Any failure (including an injected torn write, which the read-back
   catches) aborts and keeps the old log intact. *)
let compact_locked t =
  if not t.is_failed && not t.closed then begin
    match Option.bind t.fault (fun p -> Fault.Plan.on_write p ~site:"store.compact") with
    | Some Fault.Plan.Write_error -> count_write_error t
    | fault ->
      let torn = match fault with Some (Fault.Plan.Torn_write k) -> Some k | _ -> None in
      (* read every live value back (dropping any that fails its hash),
         oldest segments first so the copy is one sequential pass *)
      let live = Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.index [] in
      let live = List.sort (fun (_, a) (_, b) -> compare a.e_seq b.e_seq) live in
      let values =
        List.filter_map
          (fun (k, e) ->
             match
               let s = find_seg t e.e_seg in
               read_at s.fd s.path e.e_off e.e_len
             with
             | b when fnv_bytes b 0 e.e_len = e.e_hash ->
               Some (k, Bytes.unsafe_to_string b, e)
             | _ | exception (Sys_error _ | Not_found | Unix.Unix_error _) ->
               t.corrupt_reads <- t.corrupt_reads + 1;
               supersede t k;
               None)
          live
      in
      let buf = Buffer.create (t.live_bytes + 1024) in
      Buffer.add_string buf magic;
      let add_record ops =
        let payload = Buffer.create 256 in
        put_varint payload (List.length ops);
        let voffs = List.map (fun op -> (op, encode_op payload op)) ops in
        let frame = Buffer.create 16 in
        put_varint frame (Buffer.length payload);
        add_hash64 frame
          (fnv_bytes (Buffer.to_bytes payload) 0 (Buffer.length payload));
        let base = Buffer.length buf + Buffer.length frame in
        Buffer.add_buffer buf frame;
        Buffer.add_buffer buf payload;
        List.map (fun (_, v) -> Option.map (fun rel -> base + rel) v) voffs
      in
      ignore (add_record [ Reset ]);
      (* chunked groups keep records bounded without a record per entry *)
      let rec chunks = function
        | [] -> []
        | l ->
          let rec take n acc = function
            | x :: tl when n > 0 -> take (n - 1) (x :: acc) tl
            | rest -> (List.rev acc, rest)
          in
          let c, rest = take 128 [] l in
          c :: chunks rest
      in
      let new_offs = Hashtbl.create (List.length values) in
      List.iter
        (fun chunk ->
           let offs =
             add_record (List.map (fun (k, v, e) -> Put (k, v, e.e_stamp)) chunk)
           in
           List.iter2
             (fun (k, _, _) off -> Hashtbl.replace new_offs k (Option.get off))
             chunk offs)
        (chunks values);
      let comp_id = (active t).id + 1 in
      let tmp = Filename.temp_file ~temp_dir:t.dir "compact" ".tmp" in
      let ok =
        try
          let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
          let content = Buffer.to_bytes buf in
          let wlen =
            match torn with
            | Some keep ->
              max 1 (min (Bytes.length content - 1)
                       (int_of_float (keep *. float_of_int (Bytes.length content))))
            | None -> Bytes.length content
          in
          Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
               write_all fd tmp content 0 wlen;
               Unix.fsync fd);
          (* read-back verification: the copy must replay to exactly the
             live set before the old segments are retired *)
          let written = read_whole tmp in
          String.length written = Buffer.length buf
          && String.sub written 0 (Buffer.length buf) = Buffer.contents buf
        with Sys_error _ | Unix.Unix_error _ -> false
      in
      if not ok then begin
        (try Sys.remove tmp with Sys_error _ -> ());
        count_write_error t
      end
      else begin
        match
          Sys.rename tmp (seg_path t.dir comp_id);
          fresh_seg t.dir (comp_id + 1)
        with
        | exception (Sys_error _ | Unix.Unix_error _) ->
          (try Sys.remove tmp with Sys_error _ -> ());
          count_write_error t
        | new_active ->
          let comp_seg = open_seg t.dir comp_id in
          let old = t.segs in
          t.segs <- [ comp_seg; new_active ];
          List.iter
            (fun (k, _, e) ->
               match Hashtbl.find_opt new_offs k with
               | Some off ->
                 Hashtbl.replace t.index k { e with e_seg = comp_id; e_off = off }
               | None -> ())
            values;
          t.dead_bytes <- 0;
          List.iter
            (fun s ->
               (try Unix.close s.fd with Unix.Unix_error _ -> ());
               try Sys.remove s.path with Sys_error _ -> ())
            old;
          t.compactions <- t.compactions + 1;
          with_metrics t (fun m -> Obs.Metric.Counter.incr m.c_compactions)
      end
  end

(* ---- commit ---- *)

let commit_locked t =
  match t.pending with
  | [] -> ()
  | ops ->
    fail_if_unusable t;
    let ops = List.rev ops in
    t.pending <- [];
    Hashtbl.reset t.pending_tbl;
    Fun.protect ~finally:(fun () -> publish_gauges t)
      (fun () ->
         append_group_locked t ops;   (* raises on failure: group discarded *)
         evict_locked t;
         if compact_trigger t then compact_locked t;
         rotate_locked t)

(* ---- recovery ---- *)

(* Replay decisions are made over full in-memory scans and the repairs
   (truncation, unlinking) land only after the scan, so a crash during
   recovery is recoverable by the next recovery. *)
let recover t =
  let names = try Sys.readdir t.dir with Sys_error _ -> [||] in
  Array.iter
    (fun n ->
       if Filename.check_suffix n ".tmp" then
         try Sys.remove (Filename.concat t.dir n) with Sys_error _ -> ())
    names;
  let ids =
    Array.to_list names
    |> List.filter_map seg_id_of_name
    |> List.sort compare
  in
  if ids <> [] then begin
    (match Option.bind t.fault (fun p -> Fault.Plan.on_write p ~site:"store.recover") with
     | Some _ -> raise (Sys_error (t.dir ^ ": injected recovery read error"))
     | None -> ());
    t.recovered_records <- 0;
    with_metrics t (fun m -> Obs.Metric.Counter.incr m.c_recoveries);
    let contents =
      List.map (fun id -> (id, read_whole (seg_path t.dir id))) ids
    in
    (* pass 1: the latest segment opening with a valid epoch reset
       supersedes everything before it *)
    let starts_with_reset (_, s) =
      String.length s >= magic_len
      && String.sub s 0 magic_len = magic
      &&
      let pos = ref magic_len in
      match parse_record s pos (String.length s) with
      | Ok ([ P_reset ], _, _) | Ok (P_reset :: _, _, _) -> true
      | _ -> false
    in
    let replay_start =
      List.fold_left
        (fun acc seg -> if starts_with_reset seg then fst seg else acc)
        (List.hd ids) contents
    in
    (* pass 2: replay in order from the epoch start; the first torn or
       corrupt record is the truncation point and ends the replay *)
    let truncate_at = ref None in
    let replayed = ref [] in
    List.iter
      (fun (id, s) ->
         if id >= replay_start && !truncate_at = None then begin
           if String.length s < magic_len || String.sub s 0 magic_len <> magic then
             truncate_at := Some (id, 0)
           else begin
             let pos = ref magic_len in
             let stop = ref false in
             while not !stop do
               match parse_record s pos (String.length s) with
               | Error `End -> stop := true
               | Error `Bad ->
                 truncate_at := Some (id, !pos);
                 stop := true
               | Ok (ops, next, start) ->
                 ignore start;
                 t.recovered_records <- t.recovered_records + 1;
                 with_metrics t (fun m -> Obs.Metric.Counter.incr m.c_recovered);
                 List.iter
                   (fun op ->
                      match op with
                      | P_reset -> apply_reset t
                      | P_del { key; bytes } -> apply_delete t key ~bytes
                      | P_put { key; voff; vlen; vhash; stamp; bytes } ->
                        if expired t stamp then begin
                          (* never index an expired entry; its bytes are
                             garbage for the next compaction *)
                          supersede t key;
                          t.dead_bytes <- t.dead_bytes + bytes;
                          t.evictions <- t.evictions + 1;
                          with_metrics t (fun m ->
                              Obs.Metric.Counter.incr m.c_evictions)
                        end
                        else
                          apply_put t key ~seg:id ~off:voff ~len:vlen ~hash:vhash
                            ~bytes ~stamp)
                   ops;
                 pos := next
             done
           end;
           replayed := id :: !replayed
         end)
      contents;
    (* repairs, now that the scan is complete *)
    (match !truncate_at with
     | None -> ()
     | Some (bad_id, off) ->
       t.truncated_records <- t.truncated_records + 1;
       with_metrics t (fun m -> Obs.Metric.Counter.incr m.c_truncated);
       (* drop everything at and past the tear: the torn record was
          never acknowledged, later segments postdate it *)
       List.iter
         (fun id ->
            if id > bad_id then
              try Sys.remove (seg_path t.dir id) with Sys_error _ -> ())
         ids;
       if off <= magic_len then
         (try Sys.remove (seg_path t.dir bad_id) with Sys_error _ -> ())
       else begin
         let fd = Unix.openfile (seg_path t.dir bad_id) [ Unix.O_WRONLY ] 0o644 in
         Fun.protect
           ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
           (fun () -> Unix.ftruncate fd off)
       end);
    (* pre-epoch leftovers from a crash between rename and unlink *)
    List.iter
      (fun id ->
         if id < replay_start then
           try Sys.remove (seg_path t.dir id) with Sys_error _ -> ())
      ids
  end;
  (* open what survived; a fresh store starts at segment 0 *)
  let ids =
    (try Sys.readdir t.dir with Sys_error _ -> [||])
    |> Array.to_list
    |> List.filter_map seg_id_of_name
    |> List.sort compare
  in
  t.segs <-
    (match ids with
     | [] -> [ fresh_seg t.dir 0 ]
     | ids -> List.map (open_seg t.dir) ids);
  publish_gauges t

(* ---- public api ---- *)

let open_ ?metrics ?fault ?(config = default_config) ?clock ~dir () =
  if config.segment_bytes < 4096 then
    invalid_arg "Log_store.open_: segment_bytes < 4096";
  if config.compact_ratio < 0.0 || config.compact_ratio > 1.0 then
    invalid_arg "Log_store.open_: compact_ratio outside [0,1]";
  let clock = Option.value clock ~default:Unix.gettimeofday in
  mkdir_p dir;
  let t =
    { dir; cfg = config; clock; fault; lock = Mutex.create ();
      index = Hashtbl.create 256; order = Queue.create (); segs = [];
      seq = 0; live_bytes = 0; dead_bytes = 0; pending = [];
      pending_tbl = Hashtbl.create 8; is_failed = false; closed = false;
      appends = 0; recovered_records = 0; truncated_records = 0;
      corrupt_reads = 0; compactions = 0; evictions = 0; write_errors = 0;
      metrics = Option.map resolve_metrics metrics }
  in
  recover t;
  t

let put t key value =
  locked t (fun () ->
      fail_if_unusable t;
      t.pending <- Put (key, value, t.clock ()) :: t.pending;
      Hashtbl.replace t.pending_tbl key (Some value))

let delete t key =
  locked t (fun () ->
      fail_if_unusable t;
      t.pending <- Delete key :: t.pending;
      Hashtbl.replace t.pending_tbl key None)

let commit t = locked t (fun () -> commit_locked t)

let set t key value =
  locked t (fun () ->
      fail_if_unusable t;
      t.pending <- Put (key, value, t.clock ()) :: t.pending;
      Hashtbl.replace t.pending_tbl key (Some value);
      commit_locked t)

let drop_expired_locked t key e =
  supersede t key;
  t.dead_bytes <- t.dead_bytes + e.e_bytes;
  t.evictions <- t.evictions + 1;
  with_metrics t (fun m -> Obs.Metric.Counter.incr m.c_evictions);
  publish_gauges t

let get t key =
  locked t (fun () ->
      if t.closed then raise (Sys_error "store is closed");
      match Hashtbl.find_opt t.pending_tbl key with
      | Some v -> v
      | None ->
        match Hashtbl.find_opt t.index key with
        | None -> None
        | Some e when expired t e.e_stamp ->
          drop_expired_locked t key e;
          None
        | Some e ->
          match
            let s = find_seg t e.e_seg in
            read_at s.fd s.path e.e_off e.e_len
          with
          | b when fnv_bytes b 0 e.e_len = e.e_hash ->
            Some (Bytes.unsafe_to_string b)
          | _ | exception (Sys_error _ | Not_found | Unix.Unix_error _) ->
            (* a corrupt span must never be served: drop the entry *)
            t.corrupt_reads <- t.corrupt_reads + 1;
            supersede t key;
            t.dead_bytes <- t.dead_bytes + e.e_bytes;
            publish_gauges t;
            None)

let mem t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.pending_tbl key with
      | Some v -> v <> None
      | None ->
        match Hashtbl.find_opt t.index key with
        | None -> false
        | Some e ->
          if expired t e.e_stamp then begin
            drop_expired_locked t key e;
            false
          end
          else true)

let entries t = locked t (fun () -> Hashtbl.length t.index)

let keys t = locked t (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) t.index [])

let compact t =
  locked t (fun () ->
      commit_locked t;
      compact_locked t;
      publish_gauges t)

let stats t =
  locked t (fun () ->
      { segments = List.length t.segs;
        entries = Hashtbl.length t.index;
        live_bytes = t.live_bytes;
        dead_bytes = t.dead_bytes;
        appends = t.appends;
        recovered_records = t.recovered_records;
        truncated_records = t.truncated_records;
        corrupt_reads = t.corrupt_reads;
        compactions = t.compactions;
        evictions = t.evictions;
        write_errors = t.write_errors })

let failed t = locked t (fun () -> t.is_failed)

let close t =
  locked t (fun () ->
      if not t.closed then begin
        (try commit_locked t with Sys_error _ -> ());
        List.iter
          (fun s -> try Unix.close s.fd with Unix.Unix_error _ -> ())
          t.segs;
        t.closed <- true
      end)
