(** Deterministic fault injection: a seeded {!Plan} threaded as an
    optional hook into filesystem writes ({!Trace.Io}, the result
    cache), scheduler worker thunks, and service request handling, so
    the serving stack's recovery ladder can be exercised reproducibly
    (the degraded-mode analogue of the LPT's overflow ladder). *)

module Plan = Plan
