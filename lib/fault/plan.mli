(** Deterministic fault injection.

    A plan is a seeded schedule of faults threaded as an optional hook
    into the filesystem, scheduler, and wire layers.  Every decision is
    a pure function of [(seed, site, n)] where [n] is the per-site
    operation counter: the k-th operation at a given site always draws
    the same fault for a given seed, regardless of thread interleaving,
    so a failing run can be replayed by seed alone.

    Sites are short dotted names chosen by the instrumented call sites
    ("cache.store", "trace.save", "sched.job", "svc.wire", and the log
    store's "store.append", "store.rotate", "store.compact",
    "store.recover").  A plan with all probabilities zero never draws
    and costs nothing.

    Injections are counted per kind (see {!counts}) and, once
    {!attach}ed to a registry, under
    [small_fault_injected_total{kind=...}]. *)

type config = {
  seed : int;
  write_fail : float;   (** P(a file write raises an EIO-style [Sys_error]) *)
  torn_write : float;   (** P(a file write lands partially yet "succeeds") *)
  crash : float;        (** P(a worker thunk raises {!Injected_crash}) *)
  delay : float;        (** P(a worker thunk sleeps before running) *)
  delay_s : float;      (** mean-ish delay duration, seconds *)
  garbage : float;      (** P(a wire request line is garbled before parsing) *)
  net_delay : float;    (** P(a routed message is delayed before sending) *)
  net_delay_s : float;  (** mean-ish network delay, seconds *)
  net_drop : float;     (** P(a routed message is silently dropped) *)
  net_dup : float;      (** P(a routed message is delivered twice) *)
  net_reorder : float;  (** P(a batch is delivered out of order) *)
  partition : float;    (** P(a one-way partition opens toward a shard) *)
  partition_s : float;  (** mean-ish partition duration, seconds *)
  slow_shard : float;   (** P(a shard stalls — CPU-stall emulation) *)
  slow_s : float;       (** mean-ish stall duration, seconds *)
  crash_restart : float;(** P(a shard process is killed mid-job) *)
}

(** Seed 0, every probability 0, [delay_s = 0.01], [net_delay_s = 0.005],
    [partition_s = 0.2], [slow_s = 0.05]. *)
val default : config

type t

(** @raise Invalid_argument if a probability is outside [0,1], if a
    mutually-exclusive group's probabilities sum past 1
    ([write_fail + torn_write], [crash + delay],
    [net_delay + net_drop + net_dup + net_reorder + partition],
    [slow_shard + crash_restart]), or a duration is negative. *)
val create : config -> t

val config : t -> config

(** Raised by job thunks on an injected crash; carries the site. *)
exception Injected_crash of string

type write_fault =
  | Write_error            (** the write must raise [Sys_error] *)
  | Torn_write of float    (** a prefix of this fraction lands, then "succeeds" *)

type job_fault =
  | Crash
  | Delay of float         (** seconds to sleep before running *)

(** One draw per call; [None] means the operation proceeds normally. *)
val on_write : t -> site:string -> write_fault option

val on_job : t -> site:string -> job_fault option

(** [on_wire t ~site line] — [Some garbled] replaces the request line:
    truncated, byte-flipped, or padded past any sane request size. *)
val on_wire : t -> site:string -> string -> string option

type net_fault =
  | Net_delay of float     (** delay the message this many seconds *)
  | Net_drop               (** swallow the message entirely *)
  | Net_dup                (** deliver the message twice *)
  | Net_reorder            (** deliver the batch's lines in reverse order *)
  | Net_partition of float (** one-way partition toward the shard, seconds *)

type shard_fault =
  | Slow_shard of float    (** stall the shard this many seconds *)
  | Crash_restart          (** kill the shard process mid-job *)

(** One draw per routed send; sites are ["net.<sid>"]. *)
val on_net : t -> site:string -> net_fault option

(** One draw per dispatch; sites are ["proc.<sid>"]. *)
val on_shard : t -> site:string -> shard_fault option

(** Injections so far, by kind name
    (["write_error"; "torn_write"; "crash"; "delay"; "garbage";
      "net_delay"; "net_drop"; "net_dup"; "net_reorder"; "partition";
      "slow_shard"; "crash_restart"]). *)
val counts : t -> (string * int) list

val total : t -> int

(** Register [small_fault_injected_total{kind=...}] counters; later
    injections increment them.  Call before injecting. *)
val attach : t -> Obs.Registry.t -> unit

(** {1 Plan files}

    {v
    (fault-plan (seed 42) (write-fail 0.1) (torn-write 0.05)
                (crash 0.1) (delay 0.05 0.002) (garbage 0.02)
                (net-delay 0.1 0.005) (net-drop 0.05) (net-dup 0.05)
                (net-reorder 0.05) (partition 0.02 0.2)
                (slow-shard 0.05 0.05) (crash-restart 0.02))
    v} *)

val to_sexp : config -> Sexp.Datum.t

val config_of_sexp : Sexp.Datum.t -> (config, string) result

(** [parse s] reads the plan-file form from a string. *)
val parse : string -> (config, string) result

(** [load path] reads and validates a plan file; unreadable files and
    malformed plans come back as [Error] with a one-line message. *)
val load : string -> (t, string) result
