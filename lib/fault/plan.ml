module D = Sexp.Datum

type config = {
  seed : int;
  write_fail : float;
  torn_write : float;
  crash : float;
  delay : float;
  delay_s : float;
  garbage : float;
  net_delay : float;
  net_delay_s : float;
  net_drop : float;
  net_dup : float;
  net_reorder : float;
  partition : float;
  partition_s : float;
  slow_shard : float;
  slow_s : float;
  crash_restart : float;
}

let default =
  { seed = 0; write_fail = 0.; torn_write = 0.; crash = 0.; delay = 0.;
    delay_s = 0.01; garbage = 0.;
    net_delay = 0.; net_delay_s = 0.005; net_drop = 0.; net_dup = 0.;
    net_reorder = 0.; partition = 0.; partition_s = 0.2;
    slow_shard = 0.; slow_s = 0.05; crash_restart = 0. }

exception Injected_crash of string

let () =
  Printexc.register_printer (function
    | Injected_crash site -> Some ("injected worker crash (" ^ site ^ ")")
    | _ -> None)

(* Kinds are indexed; names are the metric label values. *)
let kind_names =
  [| "write_error"; "torn_write"; "crash"; "delay"; "garbage";
     "net_delay"; "net_drop"; "net_dup"; "net_reorder"; "partition";
     "slow_shard"; "crash_restart" |]
let k_write_error = 0
let k_torn_write = 1
let k_crash = 2
let k_delay = 3
let k_garbage = 4
let k_net_delay = 5
let k_net_drop = 6
let k_net_dup = 7
let k_net_reorder = 8
let k_partition = 9
let k_slow_shard = 10
let k_crash_restart = 11

type t = {
  cfg : config;
  lock : Mutex.t;                            (* guards [sites] *)
  sites : (string, int Atomic.t) Hashtbl.t;  (* per-site operation counters *)
  injected : int Atomic.t array;
  mutable metrics : Obs.Metric.Counter.t array option;
}

let check_prob name p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Fault.Plan: %s must be in [0,1], got %g" name p)

let create cfg =
  check_prob "write-fail" cfg.write_fail;
  check_prob "torn-write" cfg.torn_write;
  check_prob "crash" cfg.crash;
  check_prob "delay" cfg.delay;
  check_prob "garbage" cfg.garbage;
  if cfg.write_fail +. cfg.torn_write > 1. then
    invalid_arg "Fault.Plan: write-fail + torn-write > 1";
  if cfg.crash +. cfg.delay > 1. then invalid_arg "Fault.Plan: crash + delay > 1";
  if cfg.delay_s < 0. then invalid_arg "Fault.Plan: delay seconds < 0";
  check_prob "net-delay" cfg.net_delay;
  check_prob "net-drop" cfg.net_drop;
  check_prob "net-dup" cfg.net_dup;
  check_prob "net-reorder" cfg.net_reorder;
  check_prob "partition" cfg.partition;
  check_prob "slow-shard" cfg.slow_shard;
  check_prob "crash-restart" cfg.crash_restart;
  if cfg.net_delay +. cfg.net_drop +. cfg.net_dup +. cfg.net_reorder
     +. cfg.partition > 1.
  then invalid_arg "Fault.Plan: net-delay + net-drop + net-dup + net-reorder + partition > 1";
  if cfg.slow_shard +. cfg.crash_restart > 1. then
    invalid_arg "Fault.Plan: slow-shard + crash-restart > 1";
  if cfg.net_delay_s < 0. then invalid_arg "Fault.Plan: net-delay seconds < 0";
  if cfg.partition_s < 0. then invalid_arg "Fault.Plan: partition seconds < 0";
  if cfg.slow_s < 0. then invalid_arg "Fault.Plan: slow-shard seconds < 0";
  { cfg; lock = Mutex.create (); sites = Hashtbl.create 8;
    injected = Array.init (Array.length kind_names) (fun _ -> Atomic.make 0);
    metrics = None }

let config t = t.cfg

(* ---- the deterministic draw ----

   Decision = splitmix64(fnv1a64(seed, site, n, salt)).  The per-site
   counter makes the k-th draw at a site a pure function of the seed, so
   the injection schedule replays exactly; only the assignment of draws
   to concurrent operations can vary with interleaving. *)

let fnv_prime = 0x100000001b3L
let fnv_init = 0xcbf29ce484222325L

let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let splitmix64 x =
  let open Int64 in
  let x = add x 0x9E3779B97F4A7C15L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

let draw t ~site ~n ~salt =
  let h = ref (fnv_byte fnv_init t.cfg.seed) in
  let h' = fnv_byte !h (t.cfg.seed asr 8) in
  h := h';
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) site;
  h := fnv_byte !h 0xfe;
  for i = 0 to 7 do
    h := fnv_byte !h ((n lsr (8 * i)) land 0xff)
  done;
  h := fnv_byte !h salt;
  splitmix64 !h

(* Uniform in [0,1): the top 53 bits of the mixed hash. *)
let u01 bits = Int64.to_float (Int64.shift_right_logical bits 11) /. 9007199254740992.

let next t site =
  let counter =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
    match Hashtbl.find_opt t.sites site with
    | Some a -> a
    | None ->
      let a = Atomic.make 0 in
      Hashtbl.replace t.sites site a;
      a
  in
  Atomic.fetch_and_add counter 1

let note t kind =
  Atomic.incr t.injected.(kind);
  match t.metrics with
  | Some counters -> Obs.Metric.Counter.incr counters.(kind)
  | None -> ()

(* ---- fault draws per layer ---- *)

type write_fault =
  | Write_error
  | Torn_write of float

let on_write t ~site =
  if t.cfg.write_fail <= 0. && t.cfg.torn_write <= 0. then None
  else begin
    let n = next t site in
    let u = u01 (draw t ~site ~n ~salt:0) in
    if u < t.cfg.write_fail then begin
      note t k_write_error;
      Some Write_error
    end
    else if u < t.cfg.write_fail +. t.cfg.torn_write then begin
      note t k_torn_write;
      Some (Torn_write (u01 (draw t ~site ~n ~salt:1)))
    end
    else None
  end

type job_fault =
  | Crash
  | Delay of float

let on_job t ~site =
  if t.cfg.crash <= 0. && t.cfg.delay <= 0. then None
  else begin
    let n = next t site in
    let u = u01 (draw t ~site ~n ~salt:0) in
    if u < t.cfg.crash then begin
      note t k_crash;
      Some Crash
    end
    else if u < t.cfg.crash +. t.cfg.delay then begin
      note t k_delay;
      Some (Delay (t.cfg.delay_s *. (0.5 +. u01 (draw t ~site ~n ~salt:1))))
    end
    else None
  end

type net_fault =
  | Net_delay of float
  | Net_drop
  | Net_dup
  | Net_reorder
  | Net_partition of float

let on_net t ~site =
  let c = t.cfg in
  if c.net_delay <= 0. && c.net_drop <= 0. && c.net_dup <= 0.
     && c.net_reorder <= 0. && c.partition <= 0.
  then None
  else begin
    let n = next t site in
    let u = u01 (draw t ~site ~n ~salt:0) in
    let p1 = c.net_delay in
    let p2 = p1 +. c.net_drop in
    let p3 = p2 +. c.net_dup in
    let p4 = p3 +. c.net_reorder in
    let p5 = p4 +. c.partition in
    if u < p1 then begin
      note t k_net_delay;
      Some (Net_delay (c.net_delay_s *. (0.5 +. u01 (draw t ~site ~n ~salt:1))))
    end
    else if u < p2 then begin note t k_net_drop; Some Net_drop end
    else if u < p3 then begin note t k_net_dup; Some Net_dup end
    else if u < p4 then begin note t k_net_reorder; Some Net_reorder end
    else if u < p5 then begin
      note t k_partition;
      Some (Net_partition (c.partition_s *. (0.5 +. u01 (draw t ~site ~n ~salt:1))))
    end
    else None
  end

type shard_fault =
  | Slow_shard of float
  | Crash_restart

let on_shard t ~site =
  let c = t.cfg in
  if c.slow_shard <= 0. && c.crash_restart <= 0. then None
  else begin
    let n = next t site in
    let u = u01 (draw t ~site ~n ~salt:0) in
    if u < c.slow_shard then begin
      note t k_slow_shard;
      Some (Slow_shard (c.slow_s *. (0.5 +. u01 (draw t ~site ~n ~salt:1))))
    end
    else if u < c.slow_shard +. c.crash_restart then begin
      note t k_crash_restart;
      Some Crash_restart
    end
    else None
  end

(* An oversized request big enough to trip any sane wire cap. *)
let oversize_padding = 2 * 1024 * 1024

let on_wire t ~site line =
  if t.cfg.garbage <= 0. then None
  else begin
    let n = next t site in
    if u01 (draw t ~site ~n ~salt:0) >= t.cfg.garbage then None
    else begin
      note t k_garbage;
      let r = draw t ~site ~n ~salt:1 in
      let len = String.length line in
      let pos =
        if len = 0 then 0
        else Int64.to_int (Int64.rem (Int64.shift_right_logical r 8) (Int64.of_int len))
      in
      match Int64.to_int (Int64.logand r 3L) with
      | 0 when len > 0 ->
        (* truncate mid-request *)
        Some (String.sub line 0 pos)
      | 1 | 2 when len > 0 ->
        (* flip a byte *)
        let b = Bytes.of_string line in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x20));
        Some (Bytes.to_string b)
      | _ ->
        (* oversized: pad far past the request cap *)
        Some (line ^ String.make oversize_padding 'x')
    end
  end

let counts t =
  Array.to_list (Array.mapi (fun i name -> (name, Atomic.get t.injected.(i))) kind_names)

let total t = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 t.injected

let attach t reg =
  t.metrics <-
    Some
      (Array.map
         (fun kind ->
            Obs.Registry.counter reg ~help:"injected faults by kind"
              ~labels:[ ("kind", kind) ] "small_fault_injected_total")
         kind_names)

(* ---- plan files ---- *)

let fnum f = D.str (Printf.sprintf "%g" f)

let to_sexp cfg =
  D.list
    [ D.sym "fault-plan";
      D.list [ D.sym "seed"; D.int cfg.seed ];
      D.list [ D.sym "write-fail"; fnum cfg.write_fail ];
      D.list [ D.sym "torn-write"; fnum cfg.torn_write ];
      D.list [ D.sym "crash"; fnum cfg.crash ];
      D.list [ D.sym "delay"; fnum cfg.delay; fnum cfg.delay_s ];
      D.list [ D.sym "garbage"; fnum cfg.garbage ];
      D.list [ D.sym "net-delay"; fnum cfg.net_delay; fnum cfg.net_delay_s ];
      D.list [ D.sym "net-drop"; fnum cfg.net_drop ];
      D.list [ D.sym "net-dup"; fnum cfg.net_dup ];
      D.list [ D.sym "net-reorder"; fnum cfg.net_reorder ];
      D.list [ D.sym "partition"; fnum cfg.partition; fnum cfg.partition_s ];
      D.list [ D.sym "slow-shard"; fnum cfg.slow_shard; fnum cfg.slow_s ];
      D.list [ D.sym "crash-restart"; fnum cfg.crash_restart ] ]

exception Bad of string

let bad fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt

let float_of = function
  | D.Int n -> float_of_int n
  | D.Sym s | D.Str s ->
    (match float_of_string_opt s with
     | Some f -> f
     | None -> bad "expected a number, got %s" s)
  | d -> bad "expected a number, got %s" (Sexp.to_string d)

let int_of = function
  | D.Int n -> n
  | d -> bad "expected an integer, got %s" (Sexp.to_string d)

let config_of_sexp d =
  try
    let clauses =
      match d with
      | D.Cons (D.Sym "fault-plan", rest) when D.is_list rest -> D.to_list rest
      | d -> bad "a plan is (fault-plan (clause)...), got %s" (Sexp.to_string d)
    in
    Ok
      (List.fold_left
         (fun cfg cl ->
            match cl with
            | D.Cons (D.Sym "seed", D.Cons (n, D.Nil)) -> { cfg with seed = int_of n }
            | D.Cons (D.Sym "write-fail", D.Cons (f, D.Nil)) ->
              { cfg with write_fail = float_of f }
            | D.Cons (D.Sym "torn-write", D.Cons (f, D.Nil)) ->
              { cfg with torn_write = float_of f }
            | D.Cons (D.Sym "crash", D.Cons (f, D.Nil)) -> { cfg with crash = float_of f }
            | D.Cons (D.Sym "delay", D.Cons (p, D.Cons (s, D.Nil))) ->
              { cfg with delay = float_of p; delay_s = float_of s }
            | D.Cons (D.Sym "delay", D.Cons (p, D.Nil)) -> { cfg with delay = float_of p }
            | D.Cons (D.Sym "garbage", D.Cons (f, D.Nil)) ->
              { cfg with garbage = float_of f }
            | D.Cons (D.Sym "net-delay", D.Cons (p, D.Cons (s, D.Nil))) ->
              { cfg with net_delay = float_of p; net_delay_s = float_of s }
            | D.Cons (D.Sym "net-delay", D.Cons (p, D.Nil)) ->
              { cfg with net_delay = float_of p }
            | D.Cons (D.Sym "net-drop", D.Cons (f, D.Nil)) ->
              { cfg with net_drop = float_of f }
            | D.Cons (D.Sym "net-dup", D.Cons (f, D.Nil)) ->
              { cfg with net_dup = float_of f }
            | D.Cons (D.Sym "net-reorder", D.Cons (f, D.Nil)) ->
              { cfg with net_reorder = float_of f }
            | D.Cons (D.Sym "partition", D.Cons (p, D.Cons (s, D.Nil))) ->
              { cfg with partition = float_of p; partition_s = float_of s }
            | D.Cons (D.Sym "partition", D.Cons (p, D.Nil)) ->
              { cfg with partition = float_of p }
            | D.Cons (D.Sym "slow-shard", D.Cons (p, D.Cons (s, D.Nil))) ->
              { cfg with slow_shard = float_of p; slow_s = float_of s }
            | D.Cons (D.Sym "slow-shard", D.Cons (p, D.Nil)) ->
              { cfg with slow_shard = float_of p }
            | D.Cons (D.Sym "crash-restart", D.Cons (f, D.Nil)) ->
              { cfg with crash_restart = float_of f }
            | d -> bad "unknown fault-plan clause %s" (Sexp.to_string d))
         default clauses)
  with Bad msg -> Error msg

let parse s =
  match Sexp.parse s with
  | d -> config_of_sexp d
  | exception Sexp.Reader.Parse_error msg -> Error ("parse error: " ^ msg)

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents ->
    match parse contents with
    | Error msg -> Error (path ^ ": " ^ msg)
    | Ok cfg ->
      match create cfg with
      | t -> Ok t
      | exception Invalid_argument msg -> Error (path ^ ": " ^ msg)
