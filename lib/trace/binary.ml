(* Two on-disk revisions share the event/datum wire encoding and differ
   only in framing and checksums:

   v1 ("SMTB\x01\n"): chunk header = [varint count][varint len]; one
   FNV-1a 64 trailer over every byte of the stream.

   v2 ("SMTB\x02\n"), the format written today: chunk header =
   [varint count][varint len][8-byte FNV-1a of the payload], so a
   mapped reader verifies each chunk as it decodes it — no up-front
   pass over the file — and the stream trailer covers only the magic,
   the chunk headers and the end marker (the structure), since the
   payloads carry their own sums. *)

let magic = "SMTB\x01\n"
let magic_v2 = "SMTB\x02\n"

exception Corrupt of { offset : int; reason : string }

let () =
  Printexc.register_printer (function
    | Corrupt { offset; reason } ->
      Some (Printf.sprintf "Trace.Binary.Corrupt: %s at byte %d" reason offset)
    | _ -> None)

(* ---- FNV-1a 64 ---- *)

let fnv_prime = 0x100000001b3L
let fnv_init = 0xcbf29ce484222325L
let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

let fnv_buffer h buf =
  let h = ref h in
  for i = 0 to Buffer.length buf - 1 do
    h := fnv_byte !h (Char.code (Buffer.nth buf i))
  done;
  !h

let checksum_tag = "SMCK"
let trailer_length = String.length checksum_tag + 8

let hash_to_string h =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.shift_right_logical h (8 * (7 - i))) land 0xff))

let add_hash64 buf h =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical h (8 * (7 - i))) land 0xff))
  done

(* ---- encoding primitives ----

   All integers are unsigned LEB128 varints; signed values are
   zigzag-folded first.  Strings are interned: a reference is either
   [0] (a new string follows inline: varint length + bytes, taking the
   next table index) or [1 + index] of an already-seen string. *)

let put_varint buf n =
  (* the int is treated as unsigned: lsr clears the sign bit, so a
     top-bit-set value (zigzagged min_int/max_int) terminates too *)
  let n = ref n in
  while !n < 0 || !n >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!n land 0x7f)));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.chr !n)

let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag u = (u lsr 1) lxor (- (u land 1))

type intern = {
  ids : (string, int) Hashtbl.t;
  mutable next : int;
}

let intern_create () = { ids = Hashtbl.create 64; next = 0 }

let put_string_ref t buf s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> put_varint buf (1 + id)
  | None ->
    Hashtbl.replace t.ids s t.next;
    t.next <- t.next + 1;
    put_varint buf 0;
    put_varint buf (String.length s);
    Buffer.add_string buf s

(* Datum tags: 0 nil, 1 sym (ref follows), 2 int, 3 str, 5 proper list
   (varint length + that many cars), 6 improper spine (varint length +
   cars + an explicit non-nil tail).  Tag bytes >= [small_sym_base]
   carry an already-interned symbol's index inline, so the hot symbols
   of a trace cost one byte.  Spines are length-prefixed rather than
   cons-tagged per cell: a k-element list costs k car encodings plus a
   2-3 byte header, and decoding it needs no cdr recursion. *)
let small_sym_base = 8
let small_sym_max = 255 - small_sym_base

let put_sym t buf s =
  match Hashtbl.find_opt t.ids s with
  | Some id when id <= small_sym_max -> Buffer.add_char buf (Char.chr (small_sym_base + id))
  | _ -> Buffer.add_char buf '\x01'; put_string_ref t buf s

let rec spine_length acc (d : Sexp.Datum.t) =
  match d with
  | Cons (_, rest) -> spine_length (acc + 1) rest
  | tail -> (acc, tail)

let rec put_datum t buf (d : Sexp.Datum.t) =
  match d with
  | Nil -> Buffer.add_char buf '\x00'
  | Sym s -> put_sym t buf s
  | Int n -> Buffer.add_char buf '\x02'; put_varint buf (zigzag n)
  | Str s -> Buffer.add_char buf '\x03'; put_string_ref t buf s
  | Cons _ ->
    let count, tail = spine_length 0 d in
    (match tail with
     | Nil -> Buffer.add_char buf '\x05'
     | _ -> Buffer.add_char buf '\x06');
    put_varint buf count;
    let rec cars (d : Sexp.Datum.t) =
      match d with
      | Cons (a, rest) -> put_datum t buf a; cars rest
      | _ -> ()
    in
    cars d;
    (match tail with Nil -> () | tail -> put_datum t buf tail)

let prim_tag = function
  | Event.Car -> 2
  | Event.Cdr -> 3
  | Event.Cons -> 4
  | Event.Rplaca -> 5
  | Event.Rplacd -> 6

(* Event tags: 0 call, 1 return, 2-6 the primitives. *)
let put_event t buf (e : Event.t) =
  match e with
  | Call { name; nargs } ->
    Buffer.add_char buf '\x00';
    put_string_ref t buf name;
    put_varint buf nargs
  | Return { name } ->
    Buffer.add_char buf '\x01';
    put_string_ref t buf name
  | Prim { prim; args; result } ->
    Buffer.add_char buf (Char.chr (prim_tag prim));
    put_varint buf (List.length args);
    List.iter (put_datum t buf) args;
    put_datum t buf result

(* ---- streaming writer ---- *)

type format_version = V1 | V2

type sink = {
  put : string -> unit;
  put_buf : Buffer.t -> unit;    (* frame/chunk path: no contents copy *)
}

type writer = {
  sink : sink;
  version : format_version;
  chunk_events : int;
  chunk : Buffer.t;      (* payload of the chunk being built; [Buffer.clear]
                            keeps its storage, so after the first few chunks
                            it is sized by the observed payloads and the
                            frame path stops allocating *)
  frame : Buffer.t;      (* scratch for the chunk header *)
  intern : intern;
  mutable hash : int64;  (* v1: FNV of every emitted byte; v2: FNV of the
                            magic + chunk headers + end marker only *)
  mutable pending : int;
  mutable closed : bool;
}

let wput w s =
  w.hash <- fnv_string w.hash s;
  w.sink.put s

let writer_of_sink ?(version = V2) ?(chunk_events = 4096) sink =
  if chunk_events < 1 then invalid_arg "Trace.Binary.writer: chunk_events < 1";
  let w =
    { sink; version; chunk_events; chunk = Buffer.create 4096; frame = Buffer.create 16;
      intern = intern_create (); hash = fnv_init; pending = 0; closed = false }
  in
  wput w (match version with V1 -> magic | V2 -> magic_v2);
  w

let flush_chunk w =
  if w.pending > 0 then begin
    Buffer.clear w.frame;
    put_varint w.frame w.pending;
    put_varint w.frame (Buffer.length w.chunk);
    (match w.version with
     | V2 -> add_hash64 w.frame (fnv_buffer fnv_init w.chunk)
     | V1 -> ());
    w.hash <- fnv_buffer w.hash w.frame;
    w.sink.put_buf w.frame;
    (match w.version with
     | V1 -> w.hash <- fnv_buffer w.hash w.chunk
     | V2 -> ());
    w.sink.put_buf w.chunk;
    Buffer.clear w.chunk;
    w.pending <- 0
  end

let write_event w e =
  if w.closed then invalid_arg "Trace.Binary.write_event: writer closed";
  put_event w.intern w.chunk e;
  w.pending <- w.pending + 1;
  if w.pending >= w.chunk_events then flush_chunk w

let close_writer w =
  if not w.closed then begin
    flush_chunk w;
    wput w "\x00";          (* event_count = 0: end of stream *)
    (* the trailer itself is not part of the hashed stream *)
    w.sink.put (checksum_tag ^ hash_to_string w.hash);
    w.closed <- true
  end

let channel_sink oc =
  { put = (fun s -> output_string oc s); put_buf = (fun b -> Buffer.output_buffer oc b) }

let writer ?version ?chunk_events oc = writer_of_sink ?version ?chunk_events (channel_sink oc)

(* ---- shared reader state ---- *)

(* The intern table persists across chunks, mirroring the writer's. *)
type table = {
  mutable strs : string array;
  mutable len : int;
}

let table_create () = { strs = Array.make 64 ""; len = 0 }

let table_add tbl s =
  if tbl.len = Array.length tbl.strs then begin
    let grown = Array.make (max 64 (2 * tbl.len)) "" in
    Array.blit tbl.strs 0 grown 0 tbl.len;
    tbl.strs <- grown
  end;
  tbl.strs.(tbl.len) <- s;
  tbl.len <- tbl.len + 1;
  s

let prim_of_tag_opt = function
  | 2 -> Some Event.Car
  | 3 -> Some Event.Cdr
  | 4 -> Some Event.Cons
  | 5 -> Some Event.Rplaca
  | 6 -> Some Event.Rplacd
  | _ -> None

(* ---- zero-copy sources ----

   A [source] is the whole stream as random-access bytes: either an
   mmapped [Bigarray] (O(1) startup, the file never fully materialises
   in the OCaml heap) or a plain [Bytes] fallback for non-mmap inputs
   (strings, filesystems without mmap).  All decoding below works off
   a source; offsets in [Corrupt] are absolute stream positions. *)

type view =
  | Map of (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
  | Mem of Bytes.t

type source = {
  view : view;
  slen : int;
  sversion : format_version;
}

let source_length s = s.slen
let source_version s = s.sversion
let source_mapped s = match s.view with Map _ -> true | Mem _ -> false

let corrupt_at offset reason = raise (Corrupt { offset; reason })

let sbyte src i =
  match src.view with
  | Map a -> Char.code (Bigarray.Array1.unsafe_get a i)
  | Mem b -> Char.code (Bytes.unsafe_get b i)

let ssub src pos len =
  match src.view with
  | Mem b -> Bytes.sub_string b pos len
  | Map a -> String.init len (fun i -> Bigarray.Array1.unsafe_get a (pos + i))

let fnv_span src h pos len =
  let h = ref h in
  (match src.view with
   | Mem b ->
     for i = pos to pos + len - 1 do
       h := fnv_byte !h (Char.code (Bytes.unsafe_get b i))
     done
   | Map a ->
     for i = pos to pos + len - 1 do
       h := fnv_byte !h (Char.code (Bigarray.Array1.unsafe_get a i))
     done);
  !h

let version_of_first_bytes probe =
  if probe = magic then Some V1
  else if probe = magic_v2 then Some V2
  else None

let source_of_view view slen =
  if slen < String.length magic then corrupt_at 0 "bad magic";
  let src0 = { view; slen; sversion = V2 } in
  match version_of_first_bytes (ssub src0 0 (String.length magic)) with
  | Some v -> { src0 with sversion = v }
  | None -> corrupt_at 0 "bad magic"

let source_of_string s = source_of_view (Mem (Bytes.unsafe_of_string s)) (String.length s)

let read_fd_to_bytes fd len =
  let b = Bytes.create len in
  let rec fill off =
    if off >= len then ()
    else
      match Unix.read fd b off (len - off) with
      | 0 -> corrupt_at off "file shrank while reading"
      | k -> fill (off + k)
  in
  fill 0;
  b

(* Memory-map [path] (Bytes fallback on any mmap failure, or when
   [mmap:false] is forced).  Replay startup is O(1) in the file size on
   the mapped path: nothing is read until a chunk is decoded. *)
let source_of_path ?(mmap = true) path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let len = (Unix.fstat fd).Unix.st_size in
  if len < String.length magic then corrupt_at 0 "bad magic";
  let view =
    if mmap then
      match Unix.map_file fd Bigarray.char Bigarray.c_layout false [| len |] with
      | g -> Map (Bigarray.array1_of_genarray g)
      | exception (Unix.Unix_error _ | Sys_error _) -> Mem (read_fd_to_bytes fd len)
    else Mem (read_fd_to_bytes fd len)
  in
  source_of_view view len

(* ---- flat event batches ----

   One chunk decodes into one reusable batch: a struct-of-arrays form
   with no per-event variant allocation.  Per event i:
   - [tags.(i)] packs the wire kind (low 3 bits: 0 call, 1 return,
     2..6 primitives) with the argument count ([lsl 3]);
   - [names.(i)] is the intern index of a call/return's function name
     (-1 for primitives);
   - tokens [ev_tok.(i) .. ev_tok.(i+1)) hold the event's datums (a
     primitive's arguments in order, then its result) as a preorder
     token stream.

   Token tags: 0 nil; 1 sym (value = intern index); 2 int (value,
   zigzag already undone); 3 str (value = intern index); 4 proper list
   (value = car count >= 1, the cars follow as trees); 5 improper
   spine (value = car count >= 1, cars then an explicit tail tree).
   The stream is canonical for writer-produced files, so two datums
   are structurally equal iff their token spans are identical — which
   is what lets preprocessing assign list identities without ever
   building datums for repeat arguments. *)

module Batch = struct
  type t = {
    mutable n : int;
    mutable tags : int array;
    mutable names : int array;
    mutable ev_tok : int array;    (* n + 1 entries *)
    mutable ntok : int;
    mutable tok_tag : int array;
    mutable tok_val : int array;
    tbl : table;
  }

  let ttag_nil = 0
  let ttag_sym = 1
  let ttag_int = 2
  let ttag_str = 3
  let ttag_list = 4
  let ttag_improper = 5

  let create tbl =
    { n = 0; tags = Array.make 1024 0; names = Array.make 1024 (-1);
      ev_tok = Array.make 1025 0; ntok = 0; tok_tag = Array.make 4096 0;
      tok_val = Array.make 4096 0; tbl }

  let grow a n = let g = Array.make (max n (2 * Array.length a)) 0 in
    Array.blit a 0 g 0 (Array.length a); g

  let reserve_events b n =
    if n + 1 > Array.length b.ev_tok then begin
      b.tags <- grow b.tags (n + 1);
      b.names <- grow b.names (n + 1);
      b.ev_tok <- grow b.ev_tok (n + 2)
    end

  let push_tok b tag v =
    if b.ntok = Array.length b.tok_tag then begin
      b.tok_tag <- grow b.tok_tag 0;
      b.tok_val <- grow b.tok_val 0
    end;
    b.tok_tag.(b.ntok) <- tag;
    b.tok_val.(b.ntok) <- v;
    b.ntok <- b.ntok + 1

  let length b = b.n
  let kind b i = b.tags.(i) land 7
  let nargs b i = b.tags.(i) lsr 3
  let name b i = b.tbl.strs.(b.names.(i))
  let tok_start b i = b.ev_tok.(i)
  let tok_stop b i = b.ev_tok.(i + 1)
  let tok_tag b k = b.tok_tag.(k)
  let tok_val b k = b.tok_val.(k)
  let tok_str b k = b.tbl.strs.(b.tok_val.(k))

  let rec skip_tree b k =
    match b.tok_tag.(k) with
    | 4 ->
      let count = b.tok_val.(k) in
      let k = ref (k + 1) in
      for _ = 1 to count do k := skip_tree b !k done;
      !k
    | 5 ->
      let count = b.tok_val.(k) in
      let k = ref (k + 1) in
      for _ = 1 to count + 1 do k := skip_tree b !k done;
      !k
    | _ -> k + 1

  (* Materialise the datum rooted at token [k]; returns it and the next
     token index.  Only adapters and cold paths use this. *)
  let rec datum b k : Sexp.Datum.t * int =
    match b.tok_tag.(k) with
    | 0 -> (Nil, k + 1)
    | 1 -> (Sym b.tbl.strs.(b.tok_val.(k)), k + 1)
    | 2 -> (Int b.tok_val.(k), k + 1)
    | 3 -> (Str b.tbl.strs.(b.tok_val.(k)), k + 1)
    | tag ->
      let count = b.tok_val.(k) in
      let cars = Array.make count Sexp.Datum.Nil in
      let k = ref (k + 1) in
      for i = 0 to count - 1 do
        let d, k' = datum b !k in
        cars.(i) <- d;
        k := k'
      done;
      let tail : Sexp.Datum.t =
        if tag = 4 then Nil
        else begin
          let d, k' = datum b !k in
          k := k';
          d
        end
      in
      (Array.fold_right (fun a d -> Sexp.Datum.Cons (a, d)) cars tail, !k)

  (* The thin per-event adapter: rebuild the original [Event.t]. *)
  let event b i : Event.t =
    let kd = kind b i and na = nargs b i in
    match kd with
    | 0 -> Call { name = name b i; nargs = na }
    | 1 -> Return { name = name b i }
    | kd ->
      let prim = Option.get (prim_of_tag_opt kd) in
      let k = ref (tok_start b i) in
      let args =
        List.init na (fun _ ->
            let d, k' = datum b !k in
            k := k';
            d)
      in
      let result, _ = datum b !k in
      Prim { prim; args; result }
end

(* ---- chunk decoding into a batch ---- *)

let get_varint_src src ~limit pos what =
  let n = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !pos >= limit then corrupt_at !pos (what ^ ": varint past end");
    if !shift > Sys.int_size - 1 then corrupt_at !pos (what ^ ": varint too long");
    let c = sbyte src !pos in
    incr pos;
    n := !n lor ((c land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := c land 0x80 <> 0
  done;
  !n

let get_string_id src ~limit pos tbl =
  let r = get_varint_src src ~limit pos "string ref" in
  if r = 0 then begin
    let len = get_varint_src src ~limit pos "string length" in
    if len < 0 || !pos + len > limit then corrupt_at !pos "string past chunk end";
    let s = ssub src !pos len in
    pos := !pos + len;
    ignore (table_add tbl s : string);
    tbl.len - 1
  end
  else if r - 1 < tbl.len then r - 1
  else corrupt_at !pos "string reference out of range"

let rec decode_datum_tokens src ~limit pos (b : Batch.t) =
  if !pos >= limit then corrupt_at !pos "datum past chunk end";
  let tag = sbyte src !pos in
  incr pos;
  match tag with
  | 0 -> Batch.push_tok b Batch.ttag_nil 0
  | 1 -> Batch.push_tok b Batch.ttag_sym (get_string_id src ~limit pos b.Batch.tbl)
  | 2 ->
    Batch.push_tok b Batch.ttag_int
      (unzigzag (get_varint_src src ~limit pos "int datum"))
  | 3 -> Batch.push_tok b Batch.ttag_str (get_string_id src ~limit pos b.Batch.tbl)
  | 5 | 6 ->
    let count = get_varint_src src ~limit pos "list length" in
    (* every car costs at least one byte, so a sane count fits the chunk *)
    if count < 0 || count > limit - !pos then corrupt_at !pos "list longer than chunk";
    (* normalise degenerate spines so token streams stay canonical *)
    if count = 0 then begin
      if tag = 5 then Batch.push_tok b Batch.ttag_nil 0
      else decode_datum_tokens src ~limit pos b
    end
    else begin
      Batch.push_tok b (if tag = 5 then Batch.ttag_list else Batch.ttag_improper) count;
      for _ = 1 to count do
        decode_datum_tokens src ~limit pos b
      done;
      if tag = 6 then decode_datum_tokens src ~limit pos b
    end
  | t when t >= small_sym_base ->
    let id = t - small_sym_base in
    if id < b.Batch.tbl.len then Batch.push_tok b Batch.ttag_sym id
    else corrupt_at !pos "symbol index out of range"
  | t -> corrupt_at (!pos - 1) (Printf.sprintf "datum tag %d" t)

let decode_event src ~limit pos (b : Batch.t) =
  if !pos >= limit then corrupt_at !pos "event past chunk end";
  let tag = sbyte src !pos in
  incr pos;
  let i = b.Batch.n in
  (match tag with
   | 0 ->
     let id = get_string_id src ~limit pos b.Batch.tbl in
     let nargs = get_varint_src src ~limit pos "call arity" in
     b.Batch.tags.(i) <- 0 lor (nargs lsl 3);
     b.Batch.names.(i) <- id
   | 1 ->
     let id = get_string_id src ~limit pos b.Batch.tbl in
     b.Batch.tags.(i) <- 1;
     b.Batch.names.(i) <- id
   | 2 | 3 | 4 | 5 | 6 ->
     let nargs = get_varint_src src ~limit pos "argument count" in
     (* each argument costs at least one byte *)
     if nargs < 0 || nargs > limit - !pos then
       corrupt_at !pos "argument count past chunk end";
     for _ = 1 to nargs do
       decode_datum_tokens src ~limit pos b
     done;
     decode_datum_tokens src ~limit pos b;
     b.Batch.tags.(i) <- tag lor (nargs lsl 3);
     b.Batch.names.(i) <- -1
   | t -> corrupt_at (!pos - 1) (Printf.sprintf "event tag %d" t));
  b.Batch.n <- i + 1;
  b.Batch.ev_tok.(i + 1) <- b.Batch.ntok

(* ---- batched replay reader ---- *)

type reader = {
  src : source;
  batch : Batch.t;
  mutable pos : int;
  mutable hash : int64;   (* v1: running FNV of the whole stream;
                             v2: FNV of magic + headers + end marker *)
  mutable finished : bool;
}

let read_source src =
  let tbl = table_create () in
  { src;
    batch = Batch.create tbl;
    pos = String.length magic;
    hash = fnv_span src fnv_init 0 (String.length magic);
    finished = false }

(* Read a header varint, folding its bytes into the stream hash. *)
let header_varint r what =
  let limit = r.src.slen in
  let n = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if r.pos >= limit then corrupt_at r.pos ("truncated " ^ what);
    if !shift > Sys.int_size - 1 then corrupt_at r.pos (what ^ ": varint too long");
    let c = sbyte r.src r.pos in
    r.pos <- r.pos + 1;
    r.hash <- fnv_byte r.hash c;
    n := !n lor ((c land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := c land 0x80 <> 0
  done;
  !n

let check_trailer r =
  (* Zero trailing bytes is a pre-checksum stream and is accepted;
     anything else must be a complete valid trailer — a damaged tag or
     hash must not read as "legacy".  (Bytes beyond the trailer are
     ignored, as the channel reader always did.) *)
  let available = r.src.slen - r.pos in
  if available > 0 then begin
    if available < trailer_length then corrupt_at r.pos "truncated checksum trailer";
    if ssub r.src r.pos (String.length checksum_tag) <> checksum_tag then
      corrupt_at r.pos "bad checksum trailer";
    if ssub r.src (r.pos + String.length checksum_tag) 8 <> hash_to_string r.hash then
      corrupt_at r.pos "checksum mismatch"
  end

(* Decode the next chunk into the reader's reused batch.  [decode:false]
   (the header-only path) skips payload decoding and verification and
   returns an empty batch whose event count is reported separately. *)
let next_chunk ~decode r =
  if r.finished then None
  else begin
    let count = header_varint r "chunk header" in
    if count = 0 then begin
      r.finished <- true;
      (* v1 stats walks skip payload bytes, so the whole-stream hash
         cannot be checked; the structural v2 trailer always can *)
      (match r.src.sversion, decode with
       | V1, false -> ()
       | _ -> check_trailer r);
      None
    end
    else begin
      let len = header_varint r "chunk header" in
      let expected =
        match r.src.sversion with
        | V1 -> 0L
        | V2 ->
          if r.pos + 8 > r.src.slen then corrupt_at r.pos "truncated chunk header";
          let h = ref 0L in
          for _ = 1 to 8 do
            let c = sbyte r.src r.pos in
            r.pos <- r.pos + 1;
            r.hash <- fnv_byte r.hash c;
            h := Int64.logor (Int64.shift_left !h 8) (Int64.of_int c)
          done;
          !h
      in
      (* guard the decode: a corrupt frame must not make us walk a
         multi-gigabyte span or spin on an absurd event count *)
      if len < 0 || r.pos + len > r.src.slen then
        corrupt_at r.pos "chunk length past end of file";
      if count > len then corrupt_at r.pos "more events than payload bytes";
      let payload = r.pos in
      (match r.src.sversion with
       | V1 ->
         (* the v1 trailer covers payload bytes too *)
         if decode then r.hash <- fnv_span r.src r.hash payload len
         else r.hash <- 0L  (* poisoned: stats walks skip the payload *)
       | V2 ->
         if decode && fnv_span r.src fnv_init payload len <> expected then
           corrupt_at payload "chunk checksum mismatch");
      r.pos <- payload + len;
      if decode then begin
        let b = r.batch in
        b.Batch.n <- 0;
        b.Batch.ntok <- 0;
        Batch.reserve_events b count;
        b.Batch.ev_tok.(0) <- 0;
        let p = ref payload in
        let limit = payload + len in
        for _ = 1 to count do
          decode_event r.src ~limit p b
        done;
        if !p <> limit then corrupt_at !p "chunk length mismatch"
      end;
      Some count
    end
  end

let next_batch r =
  match next_chunk ~decode:true r with
  | Some _ -> Some r.batch
  | None -> None

let iter_batches src f =
  let r = read_source src in
  let rec go () =
    match next_batch r with
    | Some b -> f b; go ()
    | None -> ()
  in
  go ()

let iter_source src f =
  iter_batches src (fun b ->
      for i = 0 to Batch.length b - 1 do
        f (Batch.event b i)
      done)

(* ---- header-only statistics ---- *)

type header_stats = {
  h_version : int;
  h_events : int;
  h_chunks : int;
  h_bytes : int;
  h_payload_bytes : int;
}

(* Chunk headers alone: total events and sizes without touching any
   payload byte.  On a v2 stream the structural trailer is still
   verified, so damaged headers are detected; v1 trailers cover the
   payloads we skip and so cannot be checked here. *)
let header_stats src =
  let r = read_source src in
  let events = ref 0 and chunks = ref 0 and payload = ref 0 in
  let rec go () =
    let before = r.pos in
    match next_chunk ~decode:false r with
    | Some count ->
      events := !events + count;
      incr chunks;
      (* payload span = advance minus the header bytes *)
      let header_len =
        let p = ref before in
        let n = ref 0 in
        (* count varint *)
        while sbyte src !p land 0x80 <> 0 do incr p; incr n done;
        incr p; incr n;
        while sbyte src !p land 0x80 <> 0 do incr p; incr n done;
        incr n;
        (match src.sversion with V1 -> !n | V2 -> !n + 8)
      in
      payload := !payload + (r.pos - before - header_len);
      go ()
    | None -> ()
  in
  go ();
  { h_version = (match src.sversion with V1 -> 1 | V2 -> 2);
    h_events = !events; h_chunks = !chunks; h_bytes = src.slen;
    h_payload_bytes = !payload }

(* Whole-trace capture statistics off the flat batches: no [Event.t] or
   datum is ever materialised. *)
let scan_stats src : Capture.stats =
  let functions = ref 0 and primitives = ref 0 in
  let depth = ref 0 and max_depth = ref 0 in
  iter_batches src (fun b ->
      for i = 0 to Batch.length b - 1 do
        match Batch.kind b i with
        | 0 ->
          incr functions;
          incr depth;
          if !depth > !max_depth then max_depth := !depth
        | 1 -> decr depth
        | _ -> incr primitives
      done);
  { Capture.functions = !functions; primitives = !primitives; max_depth = !max_depth }

(* ---- streaming channel reader (legacy path) ----

   Kept for non-seekable inputs and as the independent cross-check the
   equivalence tests compare the mapped reader against.  Reads both
   format revisions. *)

exception Local of string

let corrupt what = raise (Local what)

let prim_of_tag t =
  match prim_of_tag_opt t with
  | Some p -> p
  | None -> corrupt (Printf.sprintf "bad primitive tag %d" t)

let get_varint b pos =
  let n = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !pos >= Bytes.length b then corrupt "varint past chunk end";
    if !shift > Sys.int_size - 1 then corrupt "varint too long";
    let c = Char.code (Bytes.get b !pos) in
    incr pos;
    n := !n lor ((c land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := c land 0x80 <> 0
  done;
  !n

let get_string_ref tbl b pos =
  let r = get_varint b pos in
  if r = 0 then begin
    let len = get_varint b pos in
    if len < 0 || !pos + len > Bytes.length b then corrupt "string past chunk end";
    let s = Bytes.sub_string b !pos len in
    pos := !pos + len;
    table_add tbl s
  end
  else if r - 1 < tbl.len then tbl.strs.(r - 1)
  else corrupt "string reference out of range"

let rec get_datum tbl b pos : Sexp.Datum.t =
  if !pos >= Bytes.length b then corrupt "datum past chunk end";
  let tag = Char.code (Bytes.get b !pos) in
  incr pos;
  match tag with
  | 0 -> Nil
  | 1 -> Sym (get_string_ref tbl b pos)
  | 2 -> Int (unzigzag (get_varint b pos))
  | 3 -> Str (get_string_ref tbl b pos)
  | 5 | 6 ->
    let count = get_varint b pos in
    (* every car costs at least one byte, so a sane count fits the chunk *)
    if count < 0 || count > Bytes.length b - !pos then corrupt "list longer than chunk";
    let cars = Array.make count Sexp.Datum.Nil in
    for i = 0 to count - 1 do
      cars.(i) <- get_datum tbl b pos
    done;
    let tail : Sexp.Datum.t = if tag = 5 then Nil else get_datum tbl b pos in
    Array.fold_right (fun a d -> Sexp.Datum.Cons (a, d)) cars tail
  | t when t >= small_sym_base ->
    let id = t - small_sym_base in
    if id < tbl.len then Sym tbl.strs.(id) else corrupt "symbol index out of range"
  | t -> corrupt (Printf.sprintf "datum tag %d" t)

let get_event tbl b pos : Event.t =
  if !pos >= Bytes.length b then corrupt "event past chunk end";
  let tag = Char.code (Bytes.get b !pos) in
  incr pos;
  match tag with
  | 0 ->
    let name = get_string_ref tbl b pos in
    let nargs = get_varint b pos in
    Call { name; nargs }
  | 1 -> Return { name = get_string_ref tbl b pos }
  | 2 | 3 | 4 | 5 | 6 ->
    let prim = prim_of_tag tag in
    let nargs = get_varint b pos in
    (* each argument costs at least one byte *)
    if nargs < 0 || nargs > Bytes.length b - !pos then corrupt "argument count past chunk end";
    let args = List.init nargs (fun _ -> get_datum tbl b pos) in
    let result = get_datum tbl b pos in
    Prim { prim; args; result }
  | t -> corrupt (Printf.sprintf "event tag %d" t)

(* Fill [buf] with as many bytes as the channel still has; returns how
   many were read (used for the probe-like trailer read). *)
let read_available ic buf =
  let rec fill off =
    if off >= Bytes.length buf then off
    else
      match input ic buf off (Bytes.length buf - off) with
      | 0 -> off
      | k -> fill (off + k)
  in
  fill 0

let iter_channel ic f =
  let stream_pos () = try pos_in ic with Sys_error _ -> -1 in
  let fail reason = raise (Corrupt { offset = stream_pos (); reason }) in
  let hash = ref fnv_init in
  let version =
    match really_input_string ic (String.length magic) with
    | m ->
      (match version_of_first_bytes m with
       | Some v -> hash := fnv_string !hash m; v
       | None -> fail "bad magic")
    | exception End_of_file -> fail "bad magic"
  in
  let read_varint what =
    let n = ref 0 and shift = ref 0 and continue = ref true in
    (try
       while !continue do
         if !shift > Sys.int_size - 1 then fail (what ^ ": varint too long");
         let c = input_byte ic in
         hash := fnv_byte !hash c;
         n := !n lor ((c land 0x7f) lsl !shift);
         shift := !shift + 7;
         continue := c land 0x80 <> 0
       done
     with End_of_file -> fail ("truncated " ^ what));
    !n
  in
  let remaining () =
    match in_channel_length ic - pos_in ic with
    | n -> n
    | exception Sys_error _ -> max_int   (* non-seekable: trust the frame *)
  in
  let tbl = table_create () in
  let finished = ref false in
  while not !finished do
    let count = read_varint "chunk header" in
    if count = 0 then finished := true
    else begin
      let len = read_varint "chunk header" in
      let expected =
        match version with
        | V1 -> 0L
        | V2 ->
          let h = ref 0L in
          (try
             for _ = 1 to 8 do
               let c = input_byte ic in
               hash := fnv_byte !hash c;
               h := Int64.logor (Int64.shift_left !h 8) (Int64.of_int c)
             done
           with End_of_file -> fail "truncated chunk header");
          !h
      in
      (* guard the allocation: a corrupt frame must not make us build a
         multi-gigabyte buffer or spin on an absurd event count *)
      if len < 0 || len > remaining () then fail "chunk length past end of file";
      if count > len then fail "more events than payload bytes";
      let payload = Bytes.create len in
      (try really_input ic payload 0 len
       with End_of_file -> fail "truncated chunk payload");
      (match version with
       | V1 -> hash := fnv_string !hash (Bytes.unsafe_to_string payload)
       | V2 ->
         if fnv_string fnv_init (Bytes.unsafe_to_string payload) <> expected then
           fail "chunk checksum mismatch");
      let base = stream_pos () in
      let base = if base >= 0 then base - len else base in
      let pos = ref 0 in
      (try
         for _ = 1 to count do
           f (get_event tbl payload pos)
         done;
         if !pos <> len then corrupt "chunk length mismatch"
       with Local reason ->
         raise (Corrupt { offset = (if base >= 0 then base + !pos else -1); reason }))
    end
  done;
  (* Checksum trailer, same accept-if-absent rule as the mapped path. *)
  let trailer = Bytes.create trailer_length in
  let got = read_available ic trailer in
  if got > 0 then begin
    if got < trailer_length then fail "truncated checksum trailer";
    if Bytes.sub_string trailer 0 (String.length checksum_tag) <> checksum_tag then
      fail "bad checksum trailer";
    if Bytes.sub_string trailer (String.length checksum_tag) 8 <> hash_to_string !hash
    then fail "checksum mismatch"
  end

(* ---- whole-capture convenience ---- *)

let write_channel ?version oc capture =
  let w = writer ?version oc in
  Array.iter (write_event w) (Capture.events capture);
  close_writer w

let read_channel ic =
  let capture = Capture.create () in
  iter_channel ic (Capture.record capture);
  capture

let capture_of_source src =
  let capture = Capture.create () in
  iter_source src (Capture.record capture);
  capture

let to_string ?version capture =
  let buf = Buffer.create 65536 in
  let w =
    writer_of_sink ?version
      { put = Buffer.add_string buf; put_buf = (fun b -> Buffer.add_buffer buf b) }
  in
  Array.iter (write_event w) (Capture.events capture);
  close_writer w;
  Buffer.contents buf

let digest capture = Digest.to_hex (Digest.string (to_string capture))

let write_string_atomic path data =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "trace" ".smtb.tmp" in
  (try
     let oc = open_out_bin tmp in
     Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data);
     Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e)

let save ?fault path capture =
  match Option.bind fault (fun p -> Fault.Plan.on_write p ~site:"trace.save") with
  | Some Fault.Plan.Write_error ->
    raise (Sys_error (path ^ ": injected write error"))
  | Some (Fault.Plan.Torn_write keep) ->
    (* a lying disk: a strict prefix lands at the destination and the
       save "succeeds"; the checksums make the load catch it *)
    let data = to_string capture in
    let n = max 1 (min (String.length data - 1)
                     (int_of_float (keep *. float_of_int (String.length data)))) in
    write_string_atomic path (String.sub data 0 n)
  | None ->
    let dir = Filename.dirname path in
    let tmp = Filename.temp_file ~temp_dir:dir "trace" ".smtb.tmp" in
    (try
       let oc = open_out_bin tmp in
       Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc capture);
       Sys.rename tmp path
     with e ->
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e)

let load path = capture_of_source (source_of_path path)
