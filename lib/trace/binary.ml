let magic = "SMTB\x01\n"

exception Corrupt of { offset : int; reason : string }

let () =
  Printexc.register_printer (function
    | Corrupt { offset; reason } ->
      Some (Printf.sprintf "Trace.Binary.Corrupt: %s at byte %d" reason offset)
    | _ -> None)

(* ---- stream checksum ----

   The writer maintains an FNV-1a 64 hash of every byte it emits, from
   the magic through the end-of-stream marker, and appends it as a
   12-byte trailer ("SMCK" + 8 bytes big-endian).  The reader hashes
   what it consumes and verifies the trailer when present, so a torn
   write that lands a structurally-decodable prefix (or a flipped
   payload byte that still parses) is still detected.  Streams without
   a trailer (pre-checksum files) are accepted. *)

let fnv_prime = 0x100000001b3L
let fnv_init = 0xcbf29ce484222325L
let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

let fnv_bytes h b =
  let h = ref h in
  Bytes.iter (fun c -> h := fnv_byte !h (Char.code c)) b;
  !h

let checksum_tag = "SMCK"
let trailer_length = String.length checksum_tag + 8

let hash_to_string h =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.shift_right_logical h (8 * (7 - i))) land 0xff))

(* ---- encoding primitives ----

   All integers are unsigned LEB128 varints; signed values are
   zigzag-folded first.  Strings are interned: a reference is either
   [0] (a new string follows inline: varint length + bytes, taking the
   next table index) or [1 + index] of an already-seen string. *)

let put_varint buf n =
  (* the int is treated as unsigned: lsr clears the sign bit, so a
     top-bit-set value (zigzagged min_int/max_int) terminates too *)
  let n = ref n in
  while !n < 0 || !n >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!n land 0x7f)));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.chr !n)

let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag u = (u lsr 1) lxor (- (u land 1))

type intern = {
  ids : (string, int) Hashtbl.t;
  mutable next : int;
}

let intern_create () = { ids = Hashtbl.create 64; next = 0 }

let put_string_ref t buf s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> put_varint buf (1 + id)
  | None ->
    Hashtbl.replace t.ids s t.next;
    t.next <- t.next + 1;
    put_varint buf 0;
    put_varint buf (String.length s);
    Buffer.add_string buf s

(* Datum tags: 0 nil, 1 sym (ref follows), 2 int, 3 str, 5 proper list
   (varint length + that many cars), 6 improper spine (varint length +
   cars + an explicit non-nil tail).  Tag bytes >= [small_sym_base]
   carry an already-interned symbol's index inline, so the hot symbols
   of a trace cost one byte.  Spines are length-prefixed rather than
   cons-tagged per cell: a k-element list costs k car encodings plus a
   2-3 byte header, and decoding it needs no cdr recursion. *)
let small_sym_base = 8
let small_sym_max = 255 - small_sym_base

let put_sym t buf s =
  match Hashtbl.find_opt t.ids s with
  | Some id when id <= small_sym_max -> Buffer.add_char buf (Char.chr (small_sym_base + id))
  | _ -> Buffer.add_char buf '\x01'; put_string_ref t buf s

let rec spine_length acc (d : Sexp.Datum.t) =
  match d with
  | Cons (_, rest) -> spine_length (acc + 1) rest
  | tail -> (acc, tail)

let rec put_datum t buf (d : Sexp.Datum.t) =
  match d with
  | Nil -> Buffer.add_char buf '\x00'
  | Sym s -> put_sym t buf s
  | Int n -> Buffer.add_char buf '\x02'; put_varint buf (zigzag n)
  | Str s -> Buffer.add_char buf '\x03'; put_string_ref t buf s
  | Cons _ ->
    let count, tail = spine_length 0 d in
    (match tail with
     | Nil -> Buffer.add_char buf '\x05'
     | _ -> Buffer.add_char buf '\x06');
    put_varint buf count;
    let rec cars (d : Sexp.Datum.t) =
      match d with
      | Cons (a, rest) -> put_datum t buf a; cars rest
      | _ -> ()
    in
    cars d;
    (match tail with Nil -> () | tail -> put_datum t buf tail)

let prim_tag = function
  | Event.Car -> 2
  | Event.Cdr -> 3
  | Event.Cons -> 4
  | Event.Rplaca -> 5
  | Event.Rplacd -> 6

(* Event tags: 0 call, 1 return, 2-6 the primitives. *)
let put_event t buf (e : Event.t) =
  match e with
  | Call { name; nargs } ->
    Buffer.add_char buf '\x00';
    put_string_ref t buf name;
    put_varint buf nargs
  | Return { name } ->
    Buffer.add_char buf '\x01';
    put_string_ref t buf name
  | Prim { prim; args; result } ->
    Buffer.add_char buf (Char.chr (prim_tag prim));
    put_varint buf (List.length args);
    List.iter (put_datum t buf) args;
    put_datum t buf result

(* ---- streaming writer ---- *)

type sink = {
  put : string -> unit;
}

type writer = {
  sink : sink;
  chunk_events : int;
  chunk : Buffer.t;      (* payload of the chunk being built *)
  frame : Buffer.t;      (* scratch for the chunk header *)
  intern : intern;
  mutable hash : int64;  (* FNV-1a of every emitted byte so far *)
  mutable pending : int;
  mutable closed : bool;
}

let wput w s =
  w.hash <- fnv_string w.hash s;
  w.sink.put s

let writer_of_sink ?(chunk_events = 4096) sink =
  if chunk_events < 1 then invalid_arg "Trace.Binary.writer: chunk_events < 1";
  let w =
    { sink; chunk_events; chunk = Buffer.create 65536; frame = Buffer.create 16;
      intern = intern_create (); hash = fnv_init; pending = 0; closed = false }
  in
  wput w magic;
  w

let flush_chunk w =
  if w.pending > 0 then begin
    Buffer.clear w.frame;
    put_varint w.frame w.pending;
    put_varint w.frame (Buffer.length w.chunk);
    wput w (Buffer.contents w.frame);
    wput w (Buffer.contents w.chunk);
    Buffer.clear w.chunk;
    w.pending <- 0
  end

let write_event w e =
  if w.closed then invalid_arg "Trace.Binary.write_event: writer closed";
  put_event w.intern w.chunk e;
  w.pending <- w.pending + 1;
  if w.pending >= w.chunk_events then flush_chunk w

let close_writer w =
  if not w.closed then begin
    flush_chunk w;
    wput w "\x00";          (* event_count = 0: end of stream *)
    (* the trailer itself is not part of the hashed stream *)
    w.sink.put (checksum_tag ^ hash_to_string w.hash);
    w.closed <- true
  end

let writer ?chunk_events oc =
  writer_of_sink ?chunk_events { put = (fun s -> output_string oc s) }

(* ---- streaming reader ---- *)

(* A chunk is decoded out of one [Bytes.t] payload; the intern table
   persists across chunks as a growable array mirroring the writer's. *)
type table = {
  mutable strs : string array;
  mutable len : int;
}

let table_add tbl s =
  if tbl.len = Array.length tbl.strs then begin
    let grown = Array.make (max 64 (2 * tbl.len)) "" in
    Array.blit tbl.strs 0 grown 0 tbl.len;
    tbl.strs <- grown
  end;
  tbl.strs.(tbl.len) <- s;
  tbl.len <- tbl.len + 1;
  s

(* In-payload decode errors carry the chunk-relative position implicitly
   (the caller's [pos] ref); [iter_channel] rebases them to a stream
   offset and raises the public {!Corrupt}. *)
exception Local of string

let corrupt what = raise (Local what)

let prim_of_tag = function
  | 2 -> Event.Car
  | 3 -> Event.Cdr
  | 4 -> Event.Cons
  | 5 -> Event.Rplaca
  | 6 -> Event.Rplacd
  | t -> corrupt (Printf.sprintf "bad primitive tag %d" t)

let get_varint b pos =
  let n = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !pos >= Bytes.length b then corrupt "varint past chunk end";
    if !shift > Sys.int_size - 1 then corrupt "varint too long";
    let c = Char.code (Bytes.get b !pos) in
    incr pos;
    n := !n lor ((c land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := c land 0x80 <> 0
  done;
  !n

let get_string_ref tbl b pos =
  let r = get_varint b pos in
  if r = 0 then begin
    let len = get_varint b pos in
    if len < 0 || !pos + len > Bytes.length b then corrupt "string past chunk end";
    let s = Bytes.sub_string b !pos len in
    pos := !pos + len;
    table_add tbl s
  end
  else if r - 1 < tbl.len then tbl.strs.(r - 1)
  else corrupt "string reference out of range"

let rec get_datum tbl b pos : Sexp.Datum.t =
  if !pos >= Bytes.length b then corrupt "datum past chunk end";
  let tag = Char.code (Bytes.get b !pos) in
  incr pos;
  match tag with
  | 0 -> Nil
  | 1 -> Sym (get_string_ref tbl b pos)
  | 2 -> Int (unzigzag (get_varint b pos))
  | 3 -> Str (get_string_ref tbl b pos)
  | 5 | 6 ->
    let count = get_varint b pos in
    (* every car costs at least one byte, so a sane count fits the chunk *)
    if count < 0 || count > Bytes.length b - !pos then corrupt "list longer than chunk";
    let cars = Array.make count Sexp.Datum.Nil in
    for i = 0 to count - 1 do
      cars.(i) <- get_datum tbl b pos
    done;
    let tail : Sexp.Datum.t = if tag = 5 then Nil else get_datum tbl b pos in
    Array.fold_right (fun a d -> Sexp.Datum.Cons (a, d)) cars tail
  | t when t >= small_sym_base ->
    let id = t - small_sym_base in
    if id < tbl.len then Sym tbl.strs.(id) else corrupt "symbol index out of range"
  | t -> corrupt (Printf.sprintf "datum tag %d" t)

let get_event tbl b pos : Event.t =
  if !pos >= Bytes.length b then corrupt "event past chunk end";
  let tag = Char.code (Bytes.get b !pos) in
  incr pos;
  match tag with
  | 0 ->
    let name = get_string_ref tbl b pos in
    let nargs = get_varint b pos in
    Call { name; nargs }
  | 1 -> Return { name = get_string_ref tbl b pos }
  | 2 | 3 | 4 | 5 | 6 ->
    let prim = prim_of_tag tag in
    let nargs = get_varint b pos in
    (* each argument costs at least one byte *)
    if nargs < 0 || nargs > Bytes.length b - !pos then corrupt "argument count past chunk end";
    let args = List.init nargs (fun _ -> get_datum tbl b pos) in
    let result = get_datum tbl b pos in
    Prim { prim; args; result }
  | t -> corrupt (Printf.sprintf "event tag %d" t)

(* Fill [buf] with as many bytes as the channel still has; returns how
   many were read (used for the probe-like trailer read). *)
let read_available ic buf =
  let rec fill off =
    if off >= Bytes.length buf then off
    else
      match input ic buf off (Bytes.length buf - off) with
      | 0 -> off
      | k -> fill (off + k)
  in
  fill 0

let iter_channel ic f =
  let stream_pos () = try pos_in ic with Sys_error _ -> -1 in
  let fail reason = raise (Corrupt { offset = stream_pos (); reason }) in
  let hash = ref fnv_init in
  (match really_input_string ic (String.length magic) with
   | m when m = magic -> hash := fnv_string !hash m
   | _ -> fail "bad magic"
   | exception End_of_file -> fail "bad magic");
  let read_varint what =
    let n = ref 0 and shift = ref 0 and continue = ref true in
    (try
       while !continue do
         if !shift > Sys.int_size - 1 then fail (what ^ ": varint too long");
         let c = input_byte ic in
         hash := fnv_byte !hash c;
         n := !n lor ((c land 0x7f) lsl !shift);
         shift := !shift + 7;
         continue := c land 0x80 <> 0
       done
     with End_of_file -> fail ("truncated " ^ what));
    !n
  in
  let remaining () =
    match in_channel_length ic - pos_in ic with
    | n -> n
    | exception Sys_error _ -> max_int   (* non-seekable: trust the frame *)
  in
  let tbl = { strs = Array.make 64 ""; len = 0 } in
  let finished = ref false in
  while not !finished do
    let count = read_varint "chunk header" in
    if count = 0 then finished := true
    else begin
      let len = read_varint "chunk header" in
      (* guard the allocation: a corrupt frame must not make us build a
         multi-gigabyte buffer or spin on an absurd event count *)
      if len < 0 || len > remaining () then fail "chunk length past end of file";
      if count > len then fail "more events than payload bytes";
      let payload = Bytes.create len in
      (try really_input ic payload 0 len
       with End_of_file -> fail "truncated chunk payload");
      hash := fnv_bytes !hash payload;
      let base = stream_pos () in
      let base = if base >= 0 then base - len else base in
      let pos = ref 0 in
      (try
         for _ = 1 to count do
           f (get_event tbl payload pos)
         done;
         if !pos <> len then corrupt "chunk length mismatch"
       with Local reason ->
         raise (Corrupt { offset = (if base >= 0 then base + !pos else -1); reason }))
    end
  done;
  (* Checksum trailer.  Zero trailing bytes is a pre-checksum stream and
     is accepted; anything else must be a complete valid trailer — a
     damaged tag or hash must not read as "legacy". *)
  let trailer = Bytes.create trailer_length in
  let got = read_available ic trailer in
  if got > 0 then begin
    if got < trailer_length then fail "truncated checksum trailer";
    if Bytes.sub_string trailer 0 (String.length checksum_tag) <> checksum_tag then
      fail "bad checksum trailer";
    if Bytes.sub_string trailer (String.length checksum_tag) 8 <> hash_to_string !hash
    then fail "checksum mismatch"
  end

(* ---- whole-capture convenience ---- *)

let write_channel oc capture =
  let w = writer oc in
  Array.iter (write_event w) (Capture.events capture);
  close_writer w

let read_channel ic =
  let capture = Capture.create () in
  iter_channel ic (Capture.record capture);
  capture

let to_string capture =
  let buf = Buffer.create 65536 in
  let w = writer_of_sink { put = Buffer.add_string buf } in
  Array.iter (write_event w) (Capture.events capture);
  close_writer w;
  Buffer.contents buf

let digest capture = Digest.to_hex (Digest.string (to_string capture))

let write_string_atomic path data =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "trace" ".smtb.tmp" in
  (try
     let oc = open_out_bin tmp in
     Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data);
     Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e)

let save ?fault path capture =
  match Option.bind fault (fun p -> Fault.Plan.on_write p ~site:"trace.save") with
  | Some Fault.Plan.Write_error ->
    raise (Sys_error (path ^ ": injected write error"))
  | Some (Fault.Plan.Torn_write keep) ->
    (* a lying disk: a strict prefix lands at the destination and the
       save "succeeds"; the checksum trailer makes the load catch it *)
    let data = to_string capture in
    let n = max 1 (min (String.length data - 1)
                     (int_of_float (keep *. float_of_int (String.length data)))) in
    write_string_atomic path (String.sub data 0 n)
  | None ->
    let dir = Filename.dirname path in
    let tmp = Filename.temp_file ~temp_dir:dir "trace" ".smtb.tmp" in
    (try
       let oc = open_out_bin tmp in
       Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc capture);
       Sys.rename tmp path
     with e ->
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e)

let load path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)
