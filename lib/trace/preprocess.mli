(** Trace preprocessing (§5.2.1).

    Raw traces identify list arguments only by their s-expression form; two
    structurally identical arguments may or may not be the same heap
    object.  Following the thesis, every list argument is replaced by two
    integers: a {e unique identifier} (structurally identical lists share
    one) and a {e chaining flag}, set when the argument is the value
    returned by the previous primitive call in the trace (so it is
    certainly the same object, available "on top of the stack"). *)

type arg =
  | Atom of Sexp.Datum.t       (** a non-list argument, kept verbatim *)
  | List of { id : int; chained : bool }

type pevent =
  | Pprim of {
      prim : Event.prim;
      args : arg list;
      result : arg;             (** ids let car/cdr relate parent to child *)
    }
  | Pcall of { name : string; nargs : int }
  | Preturn of { name : string }

type t = {
  events : pevent array;
  distinct_lists : int;        (** number of unique list identifiers *)
  stats : Capture.stats;
  np_by_id : (int * int) array; (** id -> (n, p) of that list's s-expression *)
}

(** [run capture] preprocesses a captured trace. *)
val run : Capture.t -> t

(** [run_source src] preprocesses a binary trace directly off its flat
    event batches: identical output to
    [run (Binary.capture_of_source src)] — same ids, chaining flags,
    statistics and (n, p) table — but no [Event.t] is built and a datum
    is materialised only for atoms and first-seen list shapes. *)
val run_source : Binary.source -> t

(** [scan_source ~call ~return_ ~prim src] runs the id-assignment pass of
    {!run_source} without building any [pevent]: per event one callback
    fires with packed scalars.  [call]/[return_] mirror [Pcall]/[Preturn]
    (names dropped); [prim] reports the wire kind (2 car, 3 cdr, 4 cons,
    5 rplaca, 6 rplacd), the positional argument count, bitmask of
    list-valued argument positions, bitmask of chained positions (set
    only on list positions), and whether the result is a list.  Ids,
    chaining flags and the (n, p) table are computed exactly as in
    {!run_source}; the returned array maps each id to its drawable size
    [max 1 (n + p)] — the only per-id datum the simulator consumes.

    @raise Invalid_argument if a primitive has more than 24 arguments
    (positions would not fit the masks; real traces have at most 2). *)
val scan_source :
  call:(nargs:int -> unit) ->
  return_:(unit -> unit) ->
  prim:
    (kind:int -> arity:int -> list_mask:int -> chained_mask:int ->
     result_list:bool -> unit) ->
  Binary.source -> int array

(** [prim_refs t] extracts the flat stream of list-object references made
    by primitives (arguments then result, per event, ids only) — the list
    access reference stream analysed in Chapter 3. *)
val prim_refs : t -> int array
