(** Trace substrate: events as captured from the instrumented interpreter
    (§3.3.1), whole-trace statistics (Table 5.1), the unique-id + chaining
    preprocessing of §5.2.1, serialisation, and a synthetic generator for
    scale tests. *)

module Event = Event
module Capture = Capture
module Preprocess = Preprocess
module Io = Io
module Binary = Binary
module Synth = Synth
