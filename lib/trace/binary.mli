(** Compact binary trace format ("SMTB"): length-prefixed chunks of
    varint-coded events with incrementally interned symbol/function
    names, so large traces serialise to a fraction of the s-expression
    form and load without parsing text.

    Two framing revisions are read; v2 is written:
    - v1 ({!magic}, "SMTB\x01\n"): chunks of [varint event_count,
      varint byte_length, payload]; [event_count = 0] terminates the
      stream; an optional 12-byte trailer ["SMCK" ^ fnv1a64(stream)]
      (big-endian) covers every byte through the end marker.
    - v2 ({!magic_v2}, "SMTB\x02\n"): each chunk header additionally
      carries the big-endian FNV-1a 64 of its payload, verified as the
      chunk is decoded — so a memory-mapped reader needs no up-front
      pass over the file — and the trailer covers only the magic, the
      chunk headers and the end marker (the stream's structure).

    Streams without a trailer (pre-checksum files) still load.

    Within a chunk, events are tag bytes followed by varint fields; all
    integers use LEB128 (signed values zigzag-coded), and every symbol,
    function name and string is written once and referenced by table
    index afterwards (the intern table persists across chunks).  The
    reader processes one chunk at a time, so memory tracks the chunk
    size, not the file size. *)

(** The 6-byte magic prefix of a v1 binary trace. *)
val magic : string

(** The 6-byte magic prefix of a v2 binary trace (the format written). *)
val magic_v2 : string

(** Raised on a corrupt or truncated stream.  [offset] is the byte
    position in the stream where the damage was detected ([-1] when the
    channel is not seekable). *)
exception Corrupt of { offset : int; reason : string }

(** {1 Streaming writer} *)

type format_version = V1 | V2

type writer

(** [writer oc] starts a binary stream on [oc] (writes the header).
    [chunk_events] bounds how many events are buffered before a chunk is
    flushed (default 4096).  [version] defaults to {!V2}; [V1] exists
    for compatibility tests. *)
val writer : ?version:format_version -> ?chunk_events:int -> out_channel -> writer

val write_event : writer -> Event.t -> unit

(** Flushes the final partial chunk, the end-of-stream marker, and the
    checksum trailer.  The channel itself is left open for the caller to
    close. *)
val close_writer : writer -> unit

(** {1 Zero-copy sources}

    A {!source} exposes a whole stream as random-access bytes — an
    [mmap]ed region when possible, an in-memory copy otherwise — so
    replay starts without reading or materialising the file. *)

type source

(** [source_of_path path] memory-maps the file ([Bytes] fallback when
    mmap is unavailable or [~mmap:false] forces it).  O(1) in the file
    size on the mapped path.  @raise Corrupt if the magic is missing. *)
val source_of_path : ?mmap:bool -> string -> source

(** @raise Corrupt if the magic is missing. *)
val source_of_string : string -> source

val source_length : source -> int
val source_version : source -> format_version

(** Whether the source is an mmapped region (vs. the [Bytes] fallback). *)
val source_mapped : source -> bool

(** {1 Flat event batches}

    One chunk decodes into one reusable struct-of-arrays batch: packed
    [kind|nargs] tags, intern indices for names, and a flat preorder
    token stream for datums — no per-event variant allocation on the
    hot path. *)

module Batch : sig
  type t

  (** Events in the batch. *)
  val length : t -> int

  (** Wire kind of event [i]: 0 call, 1 return, 2 car, 3 cdr, 4 cons,
      5 rplaca, 6 rplacd. *)
  val kind : t -> int -> int

  (** Call arity / primitive argument count of event [i]. *)
  val nargs : t -> int -> int

  (** Function name of a call/return event. *)
  val name : t -> int -> string

  (** Token span of event [i]: a primitive's arguments in order, then
      its result, as preorder trees.  Empty for calls and returns. *)
  val tok_start : t -> int -> int

  val tok_stop : t -> int -> int

  (** Token tags: 0 nil; 1 sym; 2 int; 3 str; 4 proper list (value =
      car count >= 1); 5 improper spine (value = car count >= 1,
      followed by an explicit tail tree).  The stream is canonical:
      token spans are identical iff the datums are structurally
      equal. *)
  val tok_tag : t -> int -> int

  (** Sym/str: intern index.  Int: the value.  Lists: the car count. *)
  val tok_val : t -> int -> int

  (** The interned string behind a sym/str token. *)
  val tok_str : t -> int -> string

  (** Index just past the tree rooted at token [k]. *)
  val skip_tree : t -> int -> int

  (** Materialise the datum rooted at token [k] (cold paths only). *)
  val datum : t -> int -> Sexp.Datum.t * int

  (** Rebuild event [i] as an {!Event.t} — the thin adapter legacy
      consumers go through. *)
  val event : t -> int -> Event.t
end

(** {1 Batched replay} *)

type reader

(** [read_source src] positions a reader after the magic.  O(1). *)
val read_source : source -> reader

(** The next decoded, checksum-verified batch, or [None] at end of
    stream (after trailer verification).  The returned batch is REUSED
    by the next call — consume it before advancing.
    @raise Corrupt on damage. *)
val next_batch : reader -> Batch.t option

(** [iter_batches src f] runs [f] over every chunk's batch. *)
val iter_batches : source -> (Batch.t -> unit) -> unit

(** Per-event iteration over a source via the batch adapter. *)
val iter_source : source -> (Event.t -> unit) -> unit

(** Decode a whole source into a capture (equivalent to the legacy
    channel reader, byte-identical results). *)
val capture_of_source : source -> Capture.t

(** {1 Header-only statistics} *)

type header_stats = {
  h_version : int;
  h_events : int;
  h_chunks : int;
  h_bytes : int;          (** whole stream, trailer included *)
  h_payload_bytes : int;  (** sum of chunk payload lengths *)
}

(** Walk chunk headers only — no payload byte is read, no event is
    materialised.  On a v2 stream the structural trailer is verified;
    a v1 trailer covers the skipped payloads and cannot be checked
    here.  @raise Corrupt on damaged framing. *)
val header_stats : source -> header_stats

(** Whole-trace {!Capture.stats} off the flat batches: payloads are
    decoded and verified, but no [Event.t] or datum is allocated. *)
val scan_stats : source -> Capture.stats

(** {1 Streaming channel reader}

    The legacy path, kept for non-seekable inputs and as the
    independent cross-check for the mapped reader.  Reads both format
    revisions. *)

(** [iter_channel ic f] decodes events chunk by chunk, calling [f] on
    each.  @raise Corrupt on a corrupt or truncated stream. *)
val iter_channel : in_channel -> (Event.t -> unit) -> unit

(** {1 Whole-capture convenience} *)

val write_channel : ?version:format_version -> out_channel -> Capture.t -> unit
val read_channel : in_channel -> Capture.t

(** Atomic: encodes to a temp file in the target directory, then
    renames.  [?fault] draws from the plan at site ["trace.save"]: an
    injected write error raises [Sys_error] leaving the destination
    untouched; a torn write lands a strict prefix at the destination
    (the checksums make {!load} detect it). *)
val save : ?fault:Fault.Plan.t -> string -> Capture.t -> unit

(** Loads through a mapped source.  @raise Corrupt on a damaged file. *)
val load : string -> Capture.t

(** [to_string capture] is the full encoded stream in memory. *)
val to_string : ?version:format_version -> Capture.t -> string

(** [digest capture] is the MD5 hex digest of the binary encoding — the
    content address of a trace, used to key the server's result cache. *)
val digest : Capture.t -> string
