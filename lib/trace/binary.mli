(** Compact binary trace format ("SMTB"): length-prefixed chunks of
    varint-coded events with incrementally interned symbol/function
    names, so large traces serialise to a fraction of the s-expression
    form and load without parsing text.

    Framing:
    - the magic {!magic} ("SMTB\x01\n");
    - a sequence of chunks, each [varint event_count, varint byte_length,
      payload]; a chunk with [event_count = 0] terminates the stream;
    - an optional 12-byte trailer ["SMCK" ^ fnv1a64(stream)] (big-endian)
      covering every byte through the end marker.  Streams without a
      trailer (pre-checksum files) still load.

    Within a chunk, events are tag bytes followed by varint fields; all
    integers use LEB128 (signed values zigzag-coded), and every symbol,
    function name and string is written once and referenced by table
    index afterwards (the intern table persists across chunks).  The
    reader processes one chunk's payload at a time, so memory tracks the
    chunk size, not the file size. *)

(** The 6-byte magic prefix identifying a binary trace. *)
val magic : string

(** Raised on a corrupt or truncated stream.  [offset] is the byte
    position in the stream where the damage was detected ([-1] when the
    channel is not seekable). *)
exception Corrupt of { offset : int; reason : string }

(** {1 Streaming writer} *)

type writer

(** [writer oc] starts a binary stream on [oc] (writes the header).
    [chunk_events] bounds how many events are buffered before a chunk is
    flushed (default 4096). *)
val writer : ?chunk_events:int -> out_channel -> writer

val write_event : writer -> Event.t -> unit

(** Flushes the final partial chunk, the end-of-stream marker, and the
    checksum trailer.  The channel itself is left open for the caller to
    close. *)
val close_writer : writer -> unit

(** {1 Streaming reader} *)

(** [iter_channel ic f] decodes events chunk by chunk, calling [f] on
    each.  @raise Corrupt on a corrupt or truncated stream. *)
val iter_channel : in_channel -> (Event.t -> unit) -> unit

(** {1 Whole-capture convenience} *)

val write_channel : out_channel -> Capture.t -> unit
val read_channel : in_channel -> Capture.t

(** Atomic: encodes to a temp file in the target directory, then
    renames.  [?fault] draws from the plan at site ["trace.save"]: an
    injected write error raises [Sys_error] leaving the destination
    untouched; a torn write lands a strict prefix at the destination
    (the checksum trailer makes {!load} detect it). *)
val save : ?fault:Fault.Plan.t -> string -> Capture.t -> unit

(** @raise Corrupt on a damaged file. *)
val load : string -> Capture.t

(** [to_string capture] is the full encoded stream in memory. *)
val to_string : Capture.t -> string

(** [digest capture] is the MD5 hex digest of the binary encoding — the
    content address of a trace, used to key the server's result cache. *)
val digest : Capture.t -> string
