module D = Sexp.Datum

let event_to_datum (e : Event.t) : D.t =
  match e with
  | Prim { prim; args; result } ->
    D.list [ D.sym "p"; D.sym (Event.prim_name prim); D.list args; result ]
  | Call { name; nargs } -> D.list [ D.sym "c"; D.sym name; D.int nargs ]
  | Return { name } -> D.list [ D.sym "r"; D.sym name ]

let event_of_datum (d : D.t) : Event.t =
  match d with
  | Cons (Sym "p", Cons (Sym prim, Cons (args, Cons (result, Nil)))) ->
    (match Event.prim_of_name prim with
     | Some prim -> Prim { prim; args = D.to_list args; result }
     | None -> invalid_arg ("Trace.Io: unknown primitive " ^ prim))
  | Cons (Sym "c", Cons (Sym name, Cons (Int nargs, Nil))) -> Call { name; nargs }
  | Cons (Sym "r", Cons (Sym name, Nil)) -> Return { name }
  | _ -> invalid_arg "Trace.Io: malformed event"

type format = Sexp_lines | Binary

let write_channel oc capture =
  Array.iter
    (fun e ->
       output_string oc (Sexp.to_string (event_to_datum e));
       output_char oc '\n')
    (Capture.events capture)

let read_channel ic =
  let capture = Capture.create () in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         Capture.record capture (event_of_datum (Sexp.parse line))
     done
   with End_of_file -> ());
  capture

(* Saves are atomic: encode to a temp file in the target directory, then
   rename over the destination, so a killed run can never leave a
   truncated trace behind. *)
let save ?(format = Sexp_lines) path capture =
  match format with
  | Binary -> Binary.save path capture
  | Sexp_lines ->
    let dir = Filename.dirname path in
    let tmp = Filename.temp_file ~temp_dir:dir "trace" ".tmp" in
    (try
       let oc = open_out tmp in
       Fun.protect ~finally:(fun () -> close_out oc)
         (fun () -> write_channel oc capture);
       Sys.rename tmp path
     with e ->
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e)

(* [load] serves either format: a binary trace announces itself with the
   SMTB magic, anything else is read as datum lines. *)
let load path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let probe = Bytes.create (String.length Binary.magic) in
  let rec fill off =
    if off >= Bytes.length probe then off
    else
      match input ic probe off (Bytes.length probe - off) with
      | 0 -> off
      | k -> fill (off + k)
  in
  let got = fill 0 in
  seek_in ic 0;
  if got = Bytes.length probe && Bytes.to_string probe = Binary.magic then
    Binary.read_channel ic
  else read_channel ic
