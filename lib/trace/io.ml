module D = Sexp.Datum

exception Corrupt of { path : string; offset : int; reason : string }

let () =
  Printexc.register_printer (function
    | Corrupt { path; offset; reason } ->
      Some (Printf.sprintf "Trace.Io.Corrupt: %s: %s at byte %d" path reason offset)
    | _ -> None)

let event_to_datum (e : Event.t) : D.t =
  match e with
  | Prim { prim; args; result } ->
    D.list [ D.sym "p"; D.sym (Event.prim_name prim); D.list args; result ]
  | Call { name; nargs } -> D.list [ D.sym "c"; D.sym name; D.int nargs ]
  | Return { name } -> D.list [ D.sym "r"; D.sym name ]

let event_of_datum (d : D.t) : Event.t =
  match d with
  | Cons (Sym "p", Cons (Sym prim, Cons (args, Cons (result, Nil)))) ->
    (match Event.prim_of_name prim with
     | Some prim -> Prim { prim; args = D.to_list args; result }
     | None -> invalid_arg ("Trace.Io: unknown primitive " ^ prim))
  | Cons (Sym "c", Cons (Sym name, Cons (Int nargs, Nil))) -> Call { name; nargs }
  | Cons (Sym "r", Cons (Sym name, Nil)) -> Return { name }
  | _ -> invalid_arg "Trace.Io: malformed event"

type format = Sexp_lines | Binary

let write_channel oc capture =
  Array.iter
    (fun e ->
       output_string oc (Sexp.to_string (event_to_datum e));
       output_char oc '\n')
    (Capture.events capture)

(* Line-by-line sexp reads track the byte offset of each line so parse
   and shape errors surface as typed {!Corrupt} instead of leaking
   [Parse_error] / [Invalid_argument] to the serving layer. *)
let read_sexp_channel ~path ic =
  let capture = Capture.create () in
  let offset = ref 0 in
  (try
     while true do
       let line_start = !offset in
       let line = input_line ic in
       (* input_line consumes the newline; channels here are binary *)
       offset := !offset + String.length line + 1;
       if String.trim line <> "" then begin
         let d =
           try Sexp.parse line
           with Sexp.Reader.Parse_error msg ->
             raise (Corrupt { path; offset = line_start; reason = msg })
         in
         match event_of_datum d with
         | e -> Capture.record capture e
         | exception Invalid_argument msg ->
           raise (Corrupt { path; offset = line_start; reason = msg })
       end
     done
   with End_of_file -> ());
  capture

let read_channel ic = read_sexp_channel ~path:"<channel>" ic

let write_string_atomic path data =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "trace" ".tmp" in
  (try
     let oc = open_out_bin tmp in
     Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data);
     Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e)

(* Saves are atomic: encode to a temp file in the target directory, then
   rename over the destination, so a killed run can never leave a
   truncated trace behind.  An injected [Torn_write] deliberately
   bypasses that guarantee — it models a disk that acknowledged bytes it
   never persisted — which is exactly what the load-side checks exist
   to catch. *)
let save ?(format = Sexp_lines) ?fault path capture =
  match format with
  | Binary -> Binary.save ?fault path capture
  | Sexp_lines ->
    match Option.bind fault (fun p -> Fault.Plan.on_write p ~site:"trace.save") with
    | Some Fault.Plan.Write_error ->
      raise (Sys_error (path ^ ": injected write error"))
    | Some (Fault.Plan.Torn_write keep) ->
      let buf = Buffer.create 65536 in
      Array.iter
        (fun e ->
           Buffer.add_string buf (Sexp.to_string (event_to_datum e));
           Buffer.add_char buf '\n')
        (Capture.events capture);
      let data = Buffer.contents buf in
      let n = max 1 (min (String.length data - 1)
                       (int_of_float (keep *. float_of_int (String.length data)))) in
      write_string_atomic path (String.sub data 0 n)
    | None ->
      let dir = Filename.dirname path in
      let tmp = Filename.temp_file ~temp_dir:dir "trace" ".tmp" in
      (try
         let oc = open_out tmp in
         Fun.protect ~finally:(fun () -> close_out oc)
           (fun () -> write_channel oc capture);
         Sys.rename tmp path
       with e ->
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e)

(* Format sniffing: a binary trace announces itself with one of the
   SMTB magics, anything else is datum lines. *)
let probe_is_binary path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let probe = Bytes.create (String.length Binary.magic) in
  let rec fill off =
    if off >= Bytes.length probe then off
    else
      match input ic probe off (Bytes.length probe - off) with
      | 0 -> off
      | k -> fill (off + k)
  in
  let got = fill 0 in
  got = Bytes.length probe
  && (let m = Bytes.to_string probe in
      m = Binary.magic || m = Binary.magic_v2)

type loaded =
  | Binary_source of Binary.source
  | Sexp_capture of Capture.t

(* [open_path] sniffs the format and, for binary traces, opens a
   zero-copy mapped source instead of materialising events — the cheap
   entry point for stats, analysis and preprocessing over trace files.
   Damage in either format surfaces as {!Corrupt} carrying the path and
   byte offset. *)
let open_path path =
  if probe_is_binary path then
    try Binary_source (Binary.source_of_path path)
    with Binary.Corrupt { offset; reason } -> raise (Corrupt { path; offset; reason })
  else begin
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    Sexp_capture (read_sexp_channel ~path ic)
  end

(* [load] serves either format as a whole capture; binary traces decode
   through the mapped source. *)
let load path =
  match open_path path with
  | Sexp_capture c -> c
  | Binary_source src ->
    (try Binary.capture_of_source src
     with Binary.Corrupt { offset; reason } -> raise (Corrupt { path; offset; reason }))
