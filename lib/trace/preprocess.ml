type arg =
  | Atom of Sexp.Datum.t
  | List of { id : int; chained : bool }

type pevent =
  | Pprim of {
      prim : Event.prim;
      args : arg list;
      result : arg;
    }
  | Pcall of { name : string; nargs : int }
  | Preturn of { name : string }

type t = {
  events : pevent array;
  distinct_lists : int;
  stats : Capture.stats;
  np_by_id : (int * int) array;
}

module Dtbl = Hashtbl.Make (struct
    type t = Sexp.Datum.t

    let equal = Sexp.Datum.equal
    let hash = Sexp.Datum.hash
  end)

let run capture =
  (* [ids] maps a list's s-expression form to the id of the most recently
     created object of that shape: structurally identical arguments are
     assumed to be that latest object (the thesis's assumption), but a
     cons (or rplac) *result* is always a fresh cell, however familiar it
     looks — without this, recurring small numeric lists stitch unrelated
     structures together. *)
  let ids = Dtbl.create 1024 in
  let nps = ref [] in
  let next = ref 0 in
  let fresh_id d =
    let id = !next in
    incr next;
    Dtbl.replace ids d id;
    nps := Sexp.Metrics.np d :: !nps;
    id
  in
  let id_of d =
    match Dtbl.find_opt ids d with
    | Some id -> id
    | None -> fresh_id d
  in
  (* The previous primitive's list result id, for the chaining flag. *)
  let prev_result = ref None in
  let classify prev (d : Sexp.Datum.t) =
    match d with
    | Cons _ ->
      let id = id_of d in
      List { id; chained = prev = Some id }
    | Nil | Sym _ | Int _ | Str _ -> Atom d
  in
  let classify_result (prim : Event.prim) (d : Sexp.Datum.t) =
    match d, prim with
    | Cons _, (Event.Cons | Event.Rplaca | Event.Rplacd) ->
      List { id = fresh_id d; chained = false }
    | _, _ -> classify None d
  in
  let events =
    Array.map
      (fun (e : Event.t) ->
         match e with
         | Call { name; nargs } -> Pcall { name; nargs }
         | Return { name } -> Preturn { name }
         | Prim { prim; args; result } ->
           let prev = !prev_result in
           let args = List.map (classify prev) args in
           let result = classify_result prim result in
           prev_result := (match result with List { id; _ } -> Some id | Atom _ -> None);
           Pprim { prim; args; result })
      (Capture.events capture)
  in
  {
    events;
    distinct_lists = !next;
    stats = Capture.stats capture;
    np_by_id = Array.of_list (List.rev !nps);
  }

(* [run_source] is [run] off the flat batches of a mapped binary trace.
   The token stream of a batch is canonical — two datums are
   structurally equal iff their token spans are identical (intern ids
   are first-occurrence indices, fixed for the whole stream) — so list
   identity can be assigned from span equality alone, and a datum is
   materialised only when a list shape is seen for the first time (its
   (n, p) metrics need the tree) or an argument is an atom.  Everything
   else — the id table keys, the probe comparisons — stays in flat int
   arrays. *)
let run_source src =
  let module B = Binary.Batch in
  (* Open-addressing span -> latest-id table, replacing {!Dtbl}.  Keys
     are the token span copied as an interleaved [tag, val, ...] int
     array; probes compare the live span against stored keys without
     allocating. *)
  let cap = ref 4096 in
  let mask = ref (!cap - 1) in
  let keys = ref (Array.make !cap [||]) in
  let kids = ref (Array.make !cap 0) in
  let filled = ref 0 in
  let mix h x = (h lxor x) * 16777619 land max_int in
  let hash_key key = Array.fold_left mix 0x811c9dc5 key in
  let hash_span b k stop =
    let h = ref 0x811c9dc5 in
    for i = k to stop - 1 do
      h := mix (mix !h (B.tok_tag b i)) (B.tok_val b i)
    done;
    !h
  in
  let key_matches key b k stop =
    Array.length key = 2 * (stop - k)
    && (let ok = ref true and j = ref 0 in
        let i = ref k in
        while !ok && !i < stop do
          if key.(!j) <> B.tok_tag b !i || key.(!j + 1) <> B.tok_val b !i then
            ok := false;
          incr i;
          j := !j + 2
        done;
        !ok)
  in
  let find_slot b k stop =
    let s = ref (hash_span b k stop land !mask) in
    let continue = ref true in
    while !continue do
      let key = !keys.(!s) in
      if Array.length key = 0 || key_matches key b k stop then continue := false
      else s := (!s + 1) land !mask
    done;
    !s
  in
  let grow () =
    let ncap = 2 * !cap in
    let nmask = ncap - 1 in
    let nkeys = Array.make ncap [||] and nids = Array.make ncap 0 in
    Array.iteri
      (fun i key ->
         if Array.length key > 0 then begin
           let s = ref (hash_key key land nmask) in
           while Array.length nkeys.(!s) > 0 do
             s := (!s + 1) land nmask
           done;
           nkeys.(!s) <- key;
           nids.(!s) <- !kids.(i)
         end)
      !keys;
    keys := nkeys;
    kids := nids;
    cap := ncap;
    mask := nmask
  in
  let key_of_span b k stop =
    let a = Array.make (2 * (stop - k)) 0 in
    let j = ref 0 in
    for i = k to stop - 1 do
      a.(!j) <- B.tok_tag b i;
      a.(!j + 1) <- B.tok_val b i;
      j := !j + 2
    done;
    a
  in
  let nps = ref [] in
  let next = ref 0 in
  (* Same replace semantics as [run]: a fresh id always advances the
     counter and takes over its shape's table slot. *)
  let fresh_id b k stop =
    if 2 * (!filled + 1) >= !cap then grow ();
    let id = !next in
    incr next;
    let slot = find_slot b k stop in
    if Array.length !keys.(slot) = 0 then begin
      !keys.(slot) <- key_of_span b k stop;
      incr filled
    end;
    !kids.(slot) <- id;
    let d, _ = B.datum b k in
    nps := Sexp.Metrics.np d :: !nps;
    id
  in
  let id_of b k stop =
    let slot = find_slot b k stop in
    if Array.length !keys.(slot) = 0 then fresh_id b k stop else !kids.(slot)
  in
  (* growable pevent accumulator (total event count is not known until
     the last chunk header) *)
  let evs = ref (Array.make 1024 (Preturn { name = "" })) in
  let n_ev = ref 0 in
  let push e =
    if !n_ev = Array.length !evs then begin
      let g = Array.make (2 * !n_ev) e in
      Array.blit !evs 0 g 0 !n_ev;
      evs := g
    end;
    !evs.(!n_ev) <- e;
    incr n_ev
  in
  let functions = ref 0 and primitives = ref 0 in
  let depth = ref 0 and max_depth = ref 0 in
  let prev_result = ref None in
  Binary.iter_batches src (fun b ->
      for i = 0 to B.length b - 1 do
        match B.kind b i with
        | 0 ->
          incr functions;
          incr depth;
          if !depth > !max_depth then max_depth := !depth;
          push (Pcall { name = B.name b i; nargs = B.nargs b i })
        | 1 ->
          decr depth;
          push (Preturn { name = B.name b i })
        | kd ->
          incr primitives;
          let prim : Event.prim =
            match kd with
            | 2 -> Car
            | 3 -> Cdr
            | 4 -> Cons
            | 5 -> Rplaca
            | _ -> Rplacd
          in
          let prev = !prev_result in
          let k = ref (B.tok_start b i) in
          let rev_args = ref [] in
          for _ = 1 to B.nargs b i do
            let k0 = !k in
            let stop = B.skip_tree b k0 in
            k := stop;
            let arg =
              match B.tok_tag b k0 with
              | 4 | 5 ->
                let id = id_of b k0 stop in
                List { id; chained = prev = Some id }
              | _ ->
                let d, _ = B.datum b k0 in
                Atom d
            in
            rev_args := arg :: !rev_args
          done;
          let args = List.rev !rev_args in
          let k0 = !k in
          let stop = B.skip_tree b k0 in
          let result =
            match B.tok_tag b k0, prim with
            | (4 | 5), (Event.Cons | Event.Rplaca | Event.Rplacd) ->
              (* a cons/rplac result is a fresh cell, however familiar
                 its shape — mirrors [classify_result] *)
              List { id = fresh_id b k0 stop; chained = false }
            | (4 | 5), _ ->
              let id = id_of b k0 stop in
              List { id; chained = false }
            | _ ->
              let d, _ = B.datum b k0 in
              Atom d
          in
          prev_result :=
            (match result with List { id; _ } -> Some id | Atom _ -> None);
          push (Pprim { prim; args; result })
      done);
  {
    events = Array.sub !evs 0 !n_ev;
    distinct_lists = !next;
    stats =
      { Capture.functions = !functions;
        primitives = !primitives;
        max_depth = !max_depth };
    np_by_id = Array.of_list (List.rev !nps);
  }

(* [scan_source] is the id-assignment pass of [run_source] with the
   pevent construction stripped out: the same span-dedup table, the same
   fresh-id rules (a cons/rplac result is always a fresh cell), the same
   chaining flags — but each event is reported to a callback as packed
   scalars (positional bitmasks over the argument list), so a consumer
   can build a flat representation without any [arg list] existing.
   Only the (n, p) table survives as data, in the same id order as
   [run]/[run_source] produce. *)
let scan_source ~call ~return_ ~prim src =
  let module B = Binary.Batch in
  let cap = ref 4096 in
  let mask = ref (!cap - 1) in
  let keys = ref (Array.make !cap [||]) in
  let kids = ref (Array.make !cap 0) in
  let filled = ref 0 in
  let mix h x = (h lxor x) * 16777619 land max_int in
  let hash_key key = Array.fold_left mix 0x811c9dc5 key in
  let hash_span b k stop =
    let h = ref 0x811c9dc5 in
    for i = k to stop - 1 do
      h := mix (mix !h (B.tok_tag b i)) (B.tok_val b i)
    done;
    !h
  in
  let key_matches key b k stop =
    Array.length key = 2 * (stop - k)
    && (let ok = ref true and j = ref 0 in
        let i = ref k in
        while !ok && !i < stop do
          if key.(!j) <> B.tok_tag b !i || key.(!j + 1) <> B.tok_val b !i then
            ok := false;
          incr i;
          j := !j + 2
        done;
        !ok)
  in
  let find_slot b k stop =
    let s = ref (hash_span b k stop land !mask) in
    let continue = ref true in
    while !continue do
      let key = !keys.(!s) in
      if Array.length key = 0 || key_matches key b k stop then continue := false
      else s := (!s + 1) land !mask
    done;
    !s
  in
  let grow () =
    let ncap = 2 * !cap in
    let nmask = ncap - 1 in
    let nkeys = Array.make ncap [||] and nids = Array.make ncap 0 in
    Array.iteri
      (fun i key ->
         if Array.length key > 0 then begin
           let s = ref (hash_key key land nmask) in
           while Array.length nkeys.(!s) > 0 do
             s := (!s + 1) land nmask
           done;
           nkeys.(!s) <- key;
           nids.(!s) <- !kids.(i)
         end)
      !keys;
    keys := nkeys;
    kids := nids;
    cap := ncap;
    mask := nmask
  in
  let key_of_span b k stop =
    let a = Array.make (2 * (stop - k)) 0 in
    let j = ref 0 in
    for i = k to stop - 1 do
      a.(!j) <- B.tok_tag b i;
      a.(!j + 1) <- B.tok_val b i;
      j := !j + 2
    done;
    a
  in
  let nps = ref [] in
  let next = ref 0 in
  let fresh_id b k stop =
    if 2 * (!filled + 1) >= !cap then grow ();
    let id = !next in
    incr next;
    let slot = find_slot b k stop in
    if Array.length !keys.(slot) = 0 then begin
      !keys.(slot) <- key_of_span b k stop;
      incr filled
    end;
    !kids.(slot) <- id;
    let d, _ = B.datum b k in
    nps := Sexp.Metrics.np d :: !nps;
    id
  in
  let id_of b k stop =
    let slot = find_slot b k stop in
    if Array.length !keys.(slot) = 0 then fresh_id b k stop else !kids.(slot)
  in
  let prev_result = ref (-1) in
  Binary.iter_batches src (fun b ->
      for i = 0 to B.length b - 1 do
        match B.kind b i with
        | 0 -> call ~nargs:(B.nargs b i)
        | 1 -> return_ ()
        | kd ->
          let prev = !prev_result in
          let nargs = B.nargs b i in
          if nargs > 24 then
            invalid_arg "Preprocess.scan_source: more than 24 arguments";
          let k = ref (B.tok_start b i) in
          let list_mask = ref 0 and chained_mask = ref 0 in
          for j = 0 to nargs - 1 do
            let k0 = !k in
            let stop = B.skip_tree b k0 in
            k := stop;
            match B.tok_tag b k0 with
            | 4 | 5 ->
              let id = id_of b k0 stop in
              list_mask := !list_mask lor (1 lsl j);
              if id = prev then chained_mask := !chained_mask lor (1 lsl j)
            | _ -> ()
          done;
          let k0 = !k in
          let stop = B.skip_tree b k0 in
          let result_list =
            match B.tok_tag b k0 with
            | 4 | 5 ->
              (* a cons/rplac result is a fresh cell, however familiar
                 its shape — mirrors [classify_result] *)
              prev_result :=
                (if kd >= 4 then fresh_id b k0 stop else id_of b k0 stop);
              true
            | _ ->
              prev_result := -1;
              false
          in
          prim ~kind:kd ~arity:nargs ~list_mask:!list_mask
            ~chained_mask:!chained_mask ~result_list
      done);
  Array.of_list (List.rev_map (fun (n, p) -> max 1 (n + p)) !nps)

let prim_refs t =
  let refs = ref [] in
  Array.iter
    (function
      | Pprim { args; result; _ } ->
        List.iter (function List { id; _ } -> refs := id :: !refs | Atom _ -> ()) args;
        (match result with List { id; _ } -> refs := id :: !refs | Atom _ -> ())
      | Pcall _ | Preturn _ -> ())
    t.events;
  Array.of_list (List.rev !refs)
