(** Trace serialisation.

    Two formats share one [load] entry point:
    - {!Sexp_lines} — one datum per line, human-greppable:
      [(p <prim> (<args>...) <result>)], [(c <name> <nargs>)],
      [(r <name>)];
    - {!Binary} — the compact chunked {!Binary} format, detected on
      load by its magic prefix.

    [save] is atomic in both formats: the encoding goes to a temp file
    in the destination directory which is then renamed into place, so a
    killed run cannot leave a truncated trace behind. *)

val event_to_datum : Event.t -> Sexp.Datum.t

(** @raise Invalid_argument on a malformed event datum. *)
val event_of_datum : Sexp.Datum.t -> Event.t

type format = Sexp_lines | Binary

(** s-expression lines only; [Binary.write_channel] handles the other
    format. *)
val write_channel : out_channel -> Capture.t -> unit

val read_channel : in_channel -> Capture.t

(** [save ?format path capture] writes atomically; default {!Sexp_lines}. *)
val save : ?format:format -> string -> Capture.t -> unit

(** [load path] auto-detects the format from the file's first bytes. *)
val load : string -> Capture.t
