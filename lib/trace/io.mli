(** Trace serialisation.

    Two formats share one [load] entry point:
    - {!Sexp_lines} — one datum per line, human-greppable:
      [(p <prim> (<args>...) <result>)], [(c <name> <nargs>)],
      [(r <name>)];
    - {!Binary} — the compact chunked {!Binary} format, detected on
      load by its magic prefix.

    [save] is atomic in both formats: the encoding goes to a temp file
    in the destination directory which is then renamed into place, so a
    killed run cannot leave a truncated trace behind.  [load] verifies
    structure (and, for binary traces, the checksum trailer) and raises
    the typed {!Corrupt} on damaged input in either format — callers
    never see parser internals or [Invalid_argument]. *)

(** Raised by {!load} on truncated or garbage input.  [offset] is the
    byte position of the damaged line or chunk within the file ([-1]
    when unknown). *)
exception Corrupt of { path : string; offset : int; reason : string }

val event_to_datum : Event.t -> Sexp.Datum.t

(** @raise Invalid_argument on a malformed event datum. *)
val event_of_datum : Sexp.Datum.t -> Event.t

type format = Sexp_lines | Binary

(** s-expression lines only; [Binary.write_channel] handles the other
    format. *)
val write_channel : out_channel -> Capture.t -> unit

(** @raise Corrupt on malformed input (path reported as ["<channel>"]). *)
val read_channel : in_channel -> Capture.t

(** [save ?format ?fault path capture] writes atomically; default
    {!Sexp_lines}.  [?fault] draws at site ["trace.save"]: an injected
    write error raises [Sys_error] with the destination untouched; a
    torn write lands a strict prefix of the encoding ("lying disk"). *)
val save : ?format:format -> ?fault:Fault.Plan.t -> string -> Capture.t -> unit

(** What {!open_path} found: a binary trace as a zero-copy
    {!Binary.source}, or a sexp-lines trace already parsed into a
    capture (that format has no random-access representation). *)
type loaded =
  | Binary_source of Binary.source
  | Sexp_capture of Capture.t

(** [open_path path] auto-detects the format; binary traces open as a
    mapped source in O(1) without decoding any event.
    @raise Corrupt on a missing magic or garbage sexp input. *)
val open_path : string -> loaded

(** [load path] auto-detects the format from the file's first bytes and
    decodes everything (binary traces via the mapped source).
    @raise Corrupt on truncated or garbage input in either format. *)
val load : string -> Capture.t
