(** A minimal JSON value and printer for the service's wire format —
    just enough to stream result objects as single lines without an
    external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact single-line rendering (no spaces or newlines); floats print
    via [%.17g] so values survive a parse round-trip. *)
val to_string : t -> string

(** [member name j] is the field [name] of an object, if present. *)
val member : string -> t -> t option
