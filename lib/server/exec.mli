(** Job execution: loads and digests the trace named by a job's source,
    runs the measurement, and converts outputs between their typed form,
    the cacheable s-expression form, and the wire JSON.

    The sexp form is the cache's value format and round-trips exactly
    ([output_of_sexp (output_to_sexp o) = Ok o] — floats are stored in
    lossless [%h] notation), so a cache hit reconstructs the same typed
    result a fresh run would produce. *)

type output =
  | Stats_out of {
      events : int;
      primitives : int;
      functions : int;
      max_depth : int;
      distinct_lists : int;                   (** unique list objects *)
      mix : (Trace.Event.prim * int) list;    (** counts, all_prims order *)
    }
  | Analyze_out of {
      separation : float;
      distinct_lists : int;
      mean_n : float;
      mean_p : float;
      sets : int;
      stream_length : int;
      sets_for_50 : int;
      sets_for_80 : int;
      sets_for_95 : int;
      lru_hits : (int * float) list;          (** depth -> hit fraction *)
      car_chain_pct : float;
      cdr_chain_pct : float;
    }
  | Simulate_out of Core.Simulator.stats
  | Knee_out of {
      size : int;
      stats : Core.Simulator.stats;
    }

(** [capture_of_source s] traces the workload (memoised by the registry)
    or loads the file (either {!Trace.Io} format).
    @raise Sys_error / Invalid_argument on an unreadable source. *)
val capture_of_source : Job.source -> Trace.Capture.t

(** The trace half of the result-cache key: for a workload, the MD5 of
    its binary encoding (memoised); for a file, the MD5 of the file
    bytes. *)
val trace_digest : Job.source -> string

(** [run ?should_stop job] executes the job in the calling domain.
    [should_stop] is polled between pipeline stages (a simulation in
    flight is not interrupted); when it turns true, {!Scheduler.Stop}
    is raised. *)
val run : ?should_stop:(unit -> bool) -> Job.t -> output

val output_to_sexp : output -> Sexp.Datum.t
val output_of_sexp : Sexp.Datum.t -> (output, string) result

(** The wire rendering of a result body. *)
val output_to_json : output -> Json.t
