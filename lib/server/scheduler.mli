(** A FIFO job scheduler: a bounded submission queue (backpressure by
    rejection when full) drained by a pool of worker domains, with
    per-job timeouts, bounded retry, cancellation, and priority-based
    load shedding.

    Jobs are closures [fun ~should_stop -> ...].  Cancellation and
    timeouts are cooperative while a job runs: [should_stop ()] turns
    true once the job is cancelled or past its deadline, and a polling
    job may raise {!Stop} to abort early; a job that never polls is
    still classified [Timed_out]/[Cancelled] at completion, its result
    discarded.  Jobs still in the queue cancel immediately.

    A job submitted with [retries = n] that raises is re-run up to [n]
    more times with exponential backoff; the deadline is fixed when the
    first attempt starts, so retries spend the job's time budget rather
    than extending it.  {!shed_lower} finalises the lowest-priority
    queued job as {!Shed} to make room under overload.

    All operations are thread-safe; [await] may be called from any
    domain, any number of times. *)

type 'a t

type 'a outcome =
  | Done of 'a
  | Failed of string           (** the job raised (and exhausted any retries) *)
  | Cancelled
  | Timed_out
  | Shed                       (** evicted from the queue by {!shed_lower} *)

type 'a ticket

(** Raised (optionally) by a job that observes [should_stop () = true]. *)
exception Stop

(** [create ?metrics ?backoff ?jitter_seed ~workers ~capacity ()] spawns
    [workers] domains (at least 1) over a queue holding at most
    [capacity] pending jobs.  [backoff] is the base retry delay in
    seconds (default 0.01); attempt [k]'s failure waits
    [backoff *. 2^(k-1)] before requeueing.  With [jitter_seed], retry
    sleeps instead use seeded decorrelated jitter — uniform in
    [[backoff, 3 * previous sleep]] capped at [64 * backoff] — so
    synchronized failures don't retry in lockstep; the stream is a pure
    function of the seed, keeping schedules reproducible.

    With [metrics], the pool keeps a [small_sched_*] family in the
    registry: a queue-depth gauge (live pending jobs; returns to 0 when
    the queue drains), an in-flight gauge, queue-wait and run-time
    histograms, a [small_sched_jobs_total{outcome=...}] counter family
    (done/failed/cancelled/timed_out/rejected/shed), and
    [small_jobs_retried_total].  A worker that dies mid-job settles its
    ticket as [Failed] and stays in the pool, so the in-flight
    accounting cannot leak. *)
val create :
  ?metrics:Obs.Registry.t -> ?backoff:float -> ?jitter_seed:int ->
  workers:int -> capacity:int -> unit -> 'a t

(** [submit t ?priority ?timeout ?retries ?deadline job] enqueues;
    [Error `Queue_full] applies backpressure, [Error `Shutdown] after
    {!shutdown}.  [priority] (default 0) only matters to {!shed_lower};
    the queue itself stays FIFO.  [retries] (default 0) is the number of
    re-runs allowed after a raising attempt.  [deadline] is an
    {e absolute} [Unix.gettimeofday] cutoff that, unlike [timeout],
    also covers queue wait: a job popped past it settles [Timed_out]
    without running, and a running job's effective deadline is the
    earlier of the two. *)
val submit :
  'a t -> ?priority:int -> ?timeout:float -> ?retries:int ->
  ?deadline:float ->
  (should_stop:(unit -> bool) -> 'a) ->
  ('a ticket, [ `Queue_full | `Shutdown ]) result

(** [shed_lower t ~priority] finalises the lowest-priority queued job
    strictly below [priority] as {!Shed}; [false] if there is none.
    The overload ladder's first rung: shed cheap queued work before
    rejecting important new work. *)
val shed_lower : 'a t -> priority:int -> bool

(** Blocks until the ticket's job finishes (or is cancelled/shed). *)
val await : 'a t -> 'a ticket -> 'a outcome

(** [cancel t ticket] — [true] if the job was still queued and is now
    finalised as [Cancelled]; for a running job the cooperative flag is
    raised and the eventual outcome reports the cancellation. *)
val cancel : 'a t -> 'a ticket -> bool

type stats = {
  queued : int;                (** pending in the queue now *)
  running : int;
  completed : int;             (** includes failed/cancelled/timed out/shed *)
  rejected : int;              (** submissions refused with [`Queue_full] *)
  cancelled : int;
  timed_out : int;
  shed : int;                  (** evicted by {!shed_lower} *)
  retried : int;               (** attempts re-run after a failure *)
}

val stats : 'a t -> stats

(** Drains the queue (remaining jobs still run), then joins the worker
    domains.  Subsequent submissions are rejected. *)
val shutdown : 'a t -> unit
