(** A FIFO job scheduler: a bounded submission queue (backpressure by
    rejection when full) drained by a pool of worker domains, with
    per-job timeouts and cancellation.

    Jobs are closures [fun ~should_stop -> ...].  Cancellation and
    timeouts are cooperative while a job runs: [should_stop ()] turns
    true once the job is cancelled or past its deadline, and a polling
    job may raise {!Stop} to abort early; a job that never polls is
    still classified [Timed_out]/[Cancelled] at completion, its result
    discarded.  Jobs still in the queue cancel immediately.

    All operations are thread-safe; [await] may be called from any
    domain, any number of times. *)

type 'a t

type 'a outcome =
  | Done of 'a
  | Failed of string           (** the job raised; carries the exception text *)
  | Cancelled
  | Timed_out

type 'a ticket

(** Raised (optionally) by a job that observes [should_stop () = true]. *)
exception Stop

(** [create ?metrics ~workers ~capacity ()] spawns [workers] domains (at
    least 1) over a queue holding at most [capacity] pending jobs.

    With [metrics], the pool keeps a [small_sched_*] family in the
    registry: a queue-depth gauge (live pending jobs; returns to 0 when
    the queue drains), an in-flight gauge, queue-wait and run-time
    histograms, and a [small_sched_jobs_total{outcome=...}] counter
    family (done/failed/cancelled/timed_out/rejected).  A worker that
    dies mid-job settles its ticket as [Failed] and stays in the pool,
    so the in-flight accounting cannot leak. *)
val create :
  ?metrics:Obs.Registry.t -> workers:int -> capacity:int -> unit -> 'a t

(** [submit t ?timeout job] enqueues; [Error `Queue_full] applies
    backpressure, [Error `Shutdown] after {!shutdown}. *)
val submit :
  'a t -> ?timeout:float -> (should_stop:(unit -> bool) -> 'a) ->
  ('a ticket, [ `Queue_full | `Shutdown ]) result

(** Blocks until the ticket's job finishes (or is cancelled). *)
val await : 'a t -> 'a ticket -> 'a outcome

(** [cancel t ticket] — [true] if the job was still queued and is now
    finalised as [Cancelled]; for a running job the cooperative flag is
    raised and the eventual outcome reports the cancellation. *)
val cancel : 'a t -> 'a ticket -> bool

type stats = {
  queued : int;                (** pending in the queue now *)
  running : int;
  completed : int;             (** includes failed/cancelled/timed out *)
  rejected : int;              (** submissions refused with [`Queue_full] *)
  cancelled : int;
  timed_out : int;
}

val stats : 'a t -> stats

(** Drains the queue (remaining jobs still run), then joins the worker
    domains.  Subsequent submissions are rejected. *)
val shutdown : 'a t -> unit
