(** The simulation-job service: requests are parsed into {!Job.t}s, keyed
    by (trace digest, job digest) against the {!Result_cache}, and on a
    miss executed FIFO by the {!Scheduler}'s worker pool; results are
    stored back and streamed as one JSON object per line.

    Wire protocol (newline-delimited, over stdin/stdout or a Unix
    socket):
    - a job s-expression (see {!Job}) — answered with one result line;
    - [(batch JOB JOB ...)] — all jobs are submitted concurrently,
      answered with one result line each, in request order;
    - [(stats)] — service counters (cache hits/misses, scheduler state);
    - [(ping)] — health probe, answered [{"status":"ok","pong":true}]
      without touching the scheduler, cache, or registry;
    - [(ping (id N))] — identified probe; the pong echoes ["id":N].
      Because replies keep request order, an identified pong doubles as
      a pipeline flush marker: receiving it proves every earlier request
      on the session was either answered or never arrived;
    - [(cancel N)] — cancels the in-flight job whose [(id N)] matches.
      Fire-and-forget: no reply line of its own; the cancelled job still
      answers ([status:"cancelled"]) in its original slot;
    - [(quit)] — ends the session (and a socket server's accept loop).

    Sessions are pipelined: a reader submits requests as they arrive
    while a writer domain streams replies in request order, so control
    lines are acted on while earlier jobs still run.  A job carrying
    [(deadline S)] must finish within [S] seconds of arrival {e
    including} queue wait; an exhausted budget answers
    [status:"timeout"], and a job arriving with [S <= 0] is answered
    without queueing at all.

    Result lines:
    {v
    {"status":"ok","job":"simulate slang ...","cached":false,
     "elapsed":1.23,"result":{...}}
    {"status":"error"|"timeout"|"cancelled"|"shed"|"overloaded",...}
    v}

    Under overload the service climbs a ladder before failing work: a
    full queue first sheds the lowest-priority queued job (answered
    ["shed"]) to make room for a higher-priority submission; when
    nothing lower-priority remains, the new request itself is answered
    ["overloaded"].  Oversized or unparseable request lines come back as
    one typed error line — nothing a client sends can raise out of the
    serving loop. *)

type t

type failure =
  | Exec_failed of string     (** the job raised (after any retries) *)
  | Timed_out
  | Cancelled
  | Shed                      (** evicted from the queue under overload *)
  | Source_error of string    (** the trace source could not be read *)

type response = {
  job : Job.t;
  cached : bool;
  elapsed : float;            (** seconds; ~0 on a cache hit *)
  outcome : (Exec.output, failure) result;
}

(** [create ?cache_dir ?metrics_file ?fault ?retries ?max_request_bytes
    ?store_dir ~workers ~queue_capacity ()] — [cache_dir] persists
    results in the legacy one-file-per-entry layout, [store_dir] in the
    crash-consistent log-structured store (see {!Result_cache} — legacy
    entries found there are migrated on read); omit both for a
    memory-only cache.  [segment_bytes] and [compact_ratio] tune the log
    store.

    [fault] threads a {!Fault.Plan} through the whole stack: cache
    writes (site ["cache.store"]), worker thunks (["sched.job"]), and
    request lines (["svc.wire"]); its injection counters are registered
    in this service's registry.  [retries] (default 0) re-runs a raising
    job thunk with exponential backoff.  [max_request_bytes] (default
    1 MiB) bounds one request line; longer lines are answered with an
    error instead of being parsed.

    [shard_id] names this service as a cluster shard: every reply line
    (results, errors, pong, stats) then carries a ["shard"] field, so a
    router or load generator can attribute responses without parsing
    result bodies.

    Every service owns an {!Obs.Registry.t} threaded through its
    scheduler ([small_sched_*]) and result cache ([small_cache_*]), plus
    per-request latency and status counters ([small_svc_*]).  With
    [metrics_file], the Prometheus exposition is rewritten (atomically)
    after every handled request line and at shutdown, so an external
    scraper can read it on demand. *)
val create :
  ?cache_dir:string -> ?metrics_file:string -> ?fault:Fault.Plan.t ->
  ?shard_id:string -> ?retries:int -> ?max_request_bytes:int ->
  ?store_dir:string -> ?segment_bytes:int -> ?compact_ratio:float ->
  ?jitter_seed:int ->
  workers:int -> queue_capacity:int -> unit -> t

(** Cache lookup, then submit-and-await.  [Error `Overloaded] means the
    queue was full and shedding could not make room. *)
val run_job : t -> Job.t -> (response, [ `Overloaded | `Shutdown ]) result

(** Async form: returns a join.  The cache hit (or source error) is
    resolved immediately; a miss resolves when the pool finishes. *)
val submit : t -> Job.t -> (unit -> response, [ `Overloaded | `Shutdown ]) result

(** [handle_line t line] — one request line to response lines (a batch
    yields several).  Never raises: malformed or oversized input becomes
    an error line. *)
val handle_line : t -> string -> string list

(** The pipelined split of {!handle_line}: parsing and submission happen
    now, the returned thunk blocks until the replies are ready.  This is
    what lets a session act on [(cancel N)] mid-job. *)
val handle_line_async : t -> string -> unit -> string list

(** [cancel_wire t id] cancels the in-flight job registered under wire
    id [id]; [false] if no such job is running. *)
val cancel_wire : t -> int -> bool

(** Serves until EOF or [(quit)]; returns [true] iff [(quit)] was seen.
    Responses are flushed per line. *)
val serve_channels : t -> in_channel -> out_channel -> bool

(** [remove_stale_socket path] unlinks the socket file a killed server
    left behind.  A live server (the probe connect succeeds) or a
    non-socket file at [path] raises [Failure] instead of being
    clobbered; a missing file is fine. *)
val remove_stale_socket : string -> unit

(** [bind_socket_replacing sock path] binds [sock] under a temp name and
    renames it over [path]: the path flips atomically from any stale
    socket to the live one, so a restarting shard never leaves a window
    where the path is missing or two endpoints answer.  A live listener
    at [path] raises [Failure] first. *)
val bind_socket_replacing : Unix.file_descr -> string -> unit

(** Binds a Unix domain socket at [path] (atomically replacing a stale
    file, see {!bind_socket_replacing}) and serves connections
    sequentially until a client sends [(quit)]. *)
val serve_socket : t -> path:string -> unit

val cache : t -> Result_cache.t
val scheduler_stats : t -> Scheduler.stats

(** The service's metric registry (shared with its scheduler and cache). *)
val metrics : t -> Obs.Registry.t

(** Prometheus text exposition of {!metrics}. *)
val metrics_text : t -> string

(** Service counters plus the full registry snapshot under ["metrics"]
    (see {!Obs_json}); this is the [(stats)] response body. *)
val stats_json : t -> Json.t

(** Drains and joins the worker pool. *)
val shutdown : t -> unit
