type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape b s =
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.1f" f)
    else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Str s -> Buffer.add_char b '"'; escape b s; Buffer.add_char b '"'
  | List xs ->
    Buffer.add_char b '[';
    List.iteri (fun i x -> if i > 0 then Buffer.add_char b ','; emit b x) xs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char b ',';
         Buffer.add_char b '"'; escape b k; Buffer.add_string b "\":";
         emit b v)
      fields;
    Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  emit b j;
  Buffer.contents b

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None
