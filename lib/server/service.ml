type failure =
  | Exec_failed of string
  | Timed_out
  | Cancelled
  | Shed
  | Source_error of string

type response = {
  job : Job.t;
  cached : bool;
  elapsed : float;
  outcome : (Exec.output, failure) result;
}

type t = {
  scheduler : Exec.output Scheduler.t;
  result_cache : Result_cache.t;
  fault : Fault.Plan.t option;
  retries : int;
  max_request_bytes : int;
  metrics : Obs.Registry.t;
  req_latency : Obs.Metric.Histogram.t;
  req_ok : Obs.Metric.Counter.t;        (* small_svc_requests_total family *)
  req_error : Obs.Metric.Counter.t;
  req_timeout : Obs.Metric.Counter.t;
  req_cancelled : Obs.Metric.Counter.t;
  req_rejected : Obs.Metric.Counter.t;
  req_overloaded : Obs.Metric.Counter.t;
  req_shed : Obs.Metric.Counter.t;
  cancels : Obs.Metric.Counter.t;
  metrics_file : string option;
  shard_id : string option;         (* announced in every reply when set *)
  lock : Mutex.t;
  inflight_ids : (int, unit -> bool) Hashtbl.t;
                                    (* wire id -> cancel thunk, while running *)
  mutable jobs_executed : int;      (* cache misses actually run *)
}

let create ?cache_dir ?metrics_file ?fault ?shard_id ?(retries = 0)
    ?(max_request_bytes = 1 lsl 20) ?store_dir ?segment_bytes ?compact_ratio
    ?jitter_seed ~workers ~queue_capacity () =
  if retries < 0 then invalid_arg "Service.create: retries < 0";
  if max_request_bytes < 1 then invalid_arg "Service.create: max_request_bytes < 1";
  let metrics = Obs.Registry.create () in
  Option.iter (fun p -> Fault.Plan.attach p metrics) fault;
  let req status =
    Obs.Registry.counter metrics ~help:"job requests answered, by status"
      ~labels:[ ("status", status) ] "small_svc_requests_total"
  in
  (* retry jitter defaults to the fault plan's seed, so an injected
     failure schedule replays with the same backoff schedule *)
  let jitter_seed =
    match jitter_seed with
    | Some _ -> jitter_seed
    | None -> Option.map (fun p -> (Fault.Plan.config p).Fault.Plan.seed) fault
  in
  { scheduler =
      Scheduler.create ~metrics ?jitter_seed ~workers ~capacity:queue_capacity ();
    result_cache =
      Result_cache.create ~metrics ?dir:cache_dir ?fault ?store_dir
        ?segment_bytes ?compact_ratio ();
    fault; retries; max_request_bytes;
    metrics;
    req_latency =
      Obs.Registry.histogram metrics ~help:"seconds from request to response"
        "small_svc_request_seconds";
    req_ok = req "ok"; req_error = req "error"; req_timeout = req "timeout";
    req_cancelled = req "cancelled"; req_rejected = req "rejected";
    req_overloaded = req "overloaded"; req_shed = req "shed";
    cancels =
      Obs.Registry.counter metrics ~help:"wire (cancel N) requests honoured"
        "small_svc_cancel_requests_total";
    metrics_file; shard_id;
    lock = Mutex.create (); inflight_ids = Hashtbl.create 64; jobs_executed = 0 }

let cache t = t.result_cache
let metrics t = t.metrics
let metrics_text t = Obs.Expo.of_registry t.metrics
let scheduler_stats t = Scheduler.stats t.scheduler

(* Exposition written atomically (temp + rename), so a scraper never
   reads a half-written file. *)
let write_metrics_file t =
  match t.metrics_file with
  | None -> ()
  | Some path ->
    let text = metrics_text t in
    let dir = Filename.dirname path in
    (try
       let tmp = Filename.temp_file ~temp_dir:dir "metrics" ".tmp" in
       (try
          let oc = open_out_bin tmp in
          Fun.protect ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc text);
          Sys.rename tmp path
        with e ->
          (try Sys.remove tmp with Sys_error _ -> ());
          raise e)
     with Sys_error _ | Unix.Unix_error _ -> ())

let shutdown t =
  Scheduler.shutdown t.scheduler;
  write_metrics_file t

(* Every answered job request lands here exactly once. *)
let observe_response t (r : response) =
  Obs.Metric.Histogram.record t.req_latency r.elapsed;
  Obs.Metric.Counter.incr
    (match r.outcome with
     | Ok _ -> t.req_ok
     | Error (Exec_failed _ | Source_error _) -> t.req_error
     | Error Timed_out -> t.req_timeout
     | Error Cancelled -> t.req_cancelled
     | Error Shed -> t.req_shed);
  r

(* ---- the cache-aware submit path ---- *)

(* An injected fault hits each ATTEMPT: a crashed thunk that the
   scheduler retries draws again, so a retry can genuinely recover. *)
let wrap_thunk t job ~should_stop =
  (match Option.bind t.fault (fun p -> Fault.Plan.on_job p ~site:"sched.job") with
   | Some Fault.Plan.Crash -> raise (Fault.Plan.Injected_crash "sched.job")
   | Some (Fault.Plan.Delay s) -> Unix.sleepf s
   | None -> ());
  Exec.run ~should_stop job

(* Wire-cancel plumbing: while a job with an [(id N)] clause is in the
   scheduler, its id maps to a cancel thunk; a [(cancel N)] line read by
   a pipelined session fires it, freeing the worker domain. *)
let register_cancel t id cancel =
  Mutex.lock t.lock;
  Hashtbl.replace t.inflight_ids id cancel;
  Mutex.unlock t.lock

let unregister_cancel t id =
  Mutex.lock t.lock;
  Hashtbl.remove t.inflight_ids id;
  Mutex.unlock t.lock

let cancel_wire t id =
  Mutex.lock t.lock;
  let cancel = Hashtbl.find_opt t.inflight_ids id in
  Mutex.unlock t.lock;
  match cancel with
  | None -> false
  | Some f ->
    Obs.Metric.Counter.incr t.cancels;
    ignore (f ());
    true

let submit t (job : Job.t) =
  let now () = Unix.gettimeofday () in
  let started = now () in
  match job.deadline with
  | Some d when d <= 0. ->
    (* the budget was exhausted upstream; answer without queueing *)
    Ok
      (fun () ->
         observe_response t
           { job; cached = false; elapsed = 0.; outcome = Error Timed_out })
  | _ ->
  match
    let trace_digest = Exec.trace_digest job.source in
    Result_cache.key ~trace_digest ~job_digest:(Job.digest job)
  with
  | exception e ->
    (* an unreadable source fails without occupying the queue *)
    let failure = Source_error (Printexc.to_string e) in
    Ok
      (fun () ->
         observe_response t
           { job; cached = false; elapsed = 0.; outcome = Error failure })
  | key ->
    match Result_cache.find t.result_cache key with
    | Some stored ->
      let outcome =
        match Exec.output_of_sexp (Sexp.parse stored) with
        | Ok out -> Ok out
        | Error msg -> Error (Exec_failed ("corrupt cache entry: " ^ msg))
        | exception Sexp.Reader.Parse_error msg ->
          Error (Exec_failed ("corrupt cache entry: " ^ msg))
      in
      Ok
        (fun () ->
           observe_response t
             { job; cached = true; elapsed = now () -. started; outcome })
    | None ->
      let run = wrap_thunk t job in
      let deadline = Option.map (fun d -> started +. d) job.deadline in
      let sched_submit () =
        Scheduler.submit t.scheduler ~priority:job.priority ?timeout:job.timeout
          ~retries:t.retries ?deadline run
      in
      (* Overload ladder, rung 1: a full queue first sheds a queued job
         of strictly lower priority to make room; only when nothing can
         be shed does the caller see (overloaded). *)
      let submitted =
        match sched_submit () with
        | Error `Queue_full when Scheduler.shed_lower t.scheduler ~priority:job.priority ->
          sched_submit ()
        | r -> r
      in
      (match submitted with
       | Error `Queue_full ->
         Obs.Metric.Counter.incr t.req_overloaded;
         Error `Overloaded
       | Error `Shutdown -> Error `Shutdown
       | Ok ticket ->
         Option.iter
           (fun id ->
              register_cancel t id (fun () -> Scheduler.cancel t.scheduler ticket))
           job.wire_id;
         Ok
           (fun () ->
              let outcome =
                match Scheduler.await t.scheduler ticket with
                | Scheduler.Done out ->
                  Mutex.lock t.lock;
                  t.jobs_executed <- t.jobs_executed + 1;
                  Mutex.unlock t.lock;
                  Result_cache.store t.result_cache key
                    (Sexp.to_string (Exec.output_to_sexp out));
                  Ok out
                | Scheduler.Failed msg -> Error (Exec_failed msg)
                | Scheduler.Timed_out -> Error Timed_out
                | Scheduler.Cancelled -> Error Cancelled
                | Scheduler.Shed -> Error Shed
              in
              Option.iter (unregister_cancel t) job.wire_id;
              observe_response t
                { job; cached = false; elapsed = now () -. started; outcome }))

let run_job t job =
  match submit t job with
  | Ok join -> Ok (join ())
  | Error _ as e -> e

(* ---- wire rendering ---- *)

(* When the service runs as a cluster shard, every reply carries its
   shard id so routers and load generators can attribute hits and
   latencies without parsing the result body. *)
let shard_field t =
  match t.shard_id with
  | None -> []
  | Some id -> [ ("shard", Json.Str id) ]

(* The id leads the reply so pipelined routers can match it without
   parsing; routers strip it again before clients see the line, keeping
   routed replies byte-identical to direct ones. *)
let id_field (job : Job.t) =
  match job.wire_id with
  | None -> []
  | Some n -> [ ("id", Json.Int n) ]

let response_json t r =
  let base status rest =
    Json.Obj
      (id_field r.job
       @ ("status", Json.Str status)
         :: ("job", Json.Str (Job.describe r.job))
         :: ("cached", Json.Bool r.cached)
         :: ("elapsed", Json.Float r.elapsed)
         :: (rest @ shard_field t))
  in
  match r.outcome with
  | Ok out -> base "ok" [ ("result", Exec.output_to_json out) ]
  | Error (Exec_failed msg) -> base "error" [ ("error", Json.Str msg) ]
  | Error (Source_error msg) -> base "error" [ ("error", Json.Str msg) ]
  | Error Timed_out -> base "timeout" []
  | Error Cancelled -> base "cancelled" []
  | Error Shed -> base "shed" [ ("error", Json.Str "shed under overload") ]

let error_line t msg =
  Json.to_string
    (Json.Obj
       (("status", Json.Str "error") :: ("error", Json.Str msg) :: shard_field t))

let overloaded_line t (job : Job.t) =
  Json.to_string
    (Json.Obj
       (id_field job
        @ ("status", Json.Str "overloaded")
          :: ("job", Json.Str (Job.describe job))
          :: ("error", Json.Str "queue full, nothing lower-priority to shed")
          :: shard_field t))

let pong_line ?id t =
  let id = match id with None -> [] | Some n -> [ ("id", Json.Int n) ] in
  Json.to_string
    (Json.Obj
       (id @ ("status", Json.Str "ok") :: ("pong", Json.Bool true) :: shard_field t))

let stats_json t =
  let c = Result_cache.stats t.result_cache in
  let s = Scheduler.stats t.scheduler in
  Mutex.lock t.lock;
  let executed = t.jobs_executed in
  Mutex.unlock t.lock;
  Json.Obj
    ([ ("status", Json.Str "ok") ]
     @ shard_field t
     @ [ ("jobs_executed", Json.Int executed);
      ("cache",
       Json.Obj
         [ ("hits", Json.Int c.Result_cache.hits);
           ("disk_hits", Json.Int c.Result_cache.disk_hits);
           ("misses", Json.Int c.Result_cache.misses);
           ("stores", Json.Int c.Result_cache.stores);
           ("corrupt", Json.Int c.Result_cache.corrupt);
           ("write_errors", Json.Int c.Result_cache.write_errors);
           ("migrated", Json.Int c.Result_cache.migrated);
           ("degraded", Json.Bool c.Result_cache.degraded) ]) ]
     @ (match Result_cache.log_stats t.result_cache with
        | None -> []
        | Some ls ->
          [ ("store",
             Json.Obj
               [ ("segments", Json.Int ls.Store.Log.segments);
                 ("entries", Json.Int ls.Store.Log.entries);
                 ("live_bytes", Json.Int ls.Store.Log.live_bytes);
                 ("dead_bytes", Json.Int ls.Store.Log.dead_bytes);
                 ("appends", Json.Int ls.Store.Log.appends);
                 ("recovered_records", Json.Int ls.Store.Log.recovered_records);
                 ("truncated_records", Json.Int ls.Store.Log.truncated_records);
                 ("compactions", Json.Int ls.Store.Log.compactions);
                 ("evictions", Json.Int ls.Store.Log.evictions);
                 ("write_errors", Json.Int ls.Store.Log.write_errors) ]) ])
     @ [
        ("scheduler",
       Json.Obj
         [ ("queued", Json.Int s.Scheduler.queued);
           ("running", Json.Int s.Scheduler.running);
           ("completed", Json.Int s.Scheduler.completed);
           ("rejected", Json.Int s.Scheduler.rejected);
           ("cancelled", Json.Int s.Scheduler.cancelled);
           ("timed_out", Json.Int s.Scheduler.timed_out);
           ("shed", Json.Int s.Scheduler.shed);
           ("retried", Json.Int s.Scheduler.retried) ]);
      ("metrics", Obs_json.registry_json t.metrics) ])

let respond_async t job =
  match submit t job with
  | Ok join -> fun () -> Json.to_string (response_json t (join ()))
  | Error (`Overloaded | `Shutdown) -> fun () -> overloaded_line t job

let handle_batch_async t datums =
  (* submit everything before awaiting anything: the pool runs the batch
     concurrently while responses keep request order *)
  let joins =
    List.map
      (fun d ->
         match Job.of_sexp d with
         | Error msg -> fun () -> error_line t msg
         | Ok job -> respond_async t job)
      datums
  in
  fun () -> List.map (fun join -> join ()) joins

(* Parse and submit now; the returned thunk blocks until the replies are
   ready.  Splitting the two halves is what lets a pipelined session read
   a (cancel N) while the job it targets is still running. *)
let handle_parsed_async t line =
  let const rs = fun () -> rs in
  match Sexp.parse line with
    | exception Sexp.Reader.Parse_error msg ->
      const [ error_line t ("parse error: " ^ msg) ]
    | Sexp.Datum.Cons (Sym "stats", Nil) ->
      (* evaluated in reply order, so a stats line queued after a job
         reports that job as completed, exactly as a serial session did *)
      fun () -> [ Json.to_string (stats_json t) ]
    | Sexp.Datum.Cons (Sym "ping", Nil) ->
      (* the router's health probe: answered without touching the
         scheduler, the cache, or the registry snapshot *)
      const [ pong_line t ]
    | Sexp.Datum.Cons
        (Sym "ping",
         Cons (Cons (Sym "id", Cons (Int n, Nil)), Nil)) ->
      (* an identified ping doubles as a pipeline flush marker: its pong
         proves every earlier request on this session was either
         answered or never arrived *)
      const [ pong_line ~id:n t ]
    | Sexp.Datum.Cons (Sym "cancel", Cons (Int n, Nil)) ->
      (* fire-and-forget: no reply line of its own — the cancelled job
         still answers (status cancelled) in its original slot, so the
         session's reply ordering is undisturbed *)
      ignore (cancel_wire t n);
      const []
    | Sexp.Datum.Cons (Sym "batch", rest) when Sexp.Datum.is_list rest ->
      handle_batch_async t (Sexp.Datum.to_list rest)
    | d ->
      (match Job.of_sexp d with
       | Ok job ->
         let join = respond_async t job in
         fun () -> [ join () ]
       | Error msg -> const [ error_line t msg ])

let handle_line_async t line =
  let line = String.trim line in
  if line = "" then fun () -> []
  else begin
    (* wire fault injection garbles the request BEFORE any parsing, so
       the whole input path is exercised: truncated and byte-flipped
       lines must come back as one typed error line, oversized ones must
       trip the size cap — never an exception out of the accept loop *)
    let line =
      match Option.bind t.fault (fun p -> Fault.Plan.on_wire p ~site:"svc.wire" line) with
      | Some garbled -> garbled
      | None -> line
    in
    if String.length line > t.max_request_bytes then
      fun () ->
        [ error_line t
            (Printf.sprintf "request too large (%d bytes, cap %d)"
               (String.length line) t.max_request_bytes) ]
    else handle_parsed_async t line
  end

let handle_line t line =
  let responses = handle_line_async t line () in
  (* refresh the exposition file after every handled request, so an
     external scraper always sees the latest counters *)
  if String.trim line <> "" then write_metrics_file t;
  responses

(* How many submitted-but-unanswered requests a session may pipeline
   before the reader blocks; bounds memory without stalling routers. *)
let pipeline_depth = 128

let serve_channels t ic oc =
  (* Pipelined session: the reader half parses and submits, a writer
     domain joins tickets and writes replies in request order.  The wire
     contract — one ordered reply stream per session — is unchanged, but
     control lines ((cancel N), identified pings) are now read while
     earlier jobs are still running. *)
  let pending : (unit -> string list) Queue.t = Queue.create () in
  let pm = Mutex.create () in
  let pcv = Condition.create () in
  let done_reading = ref false in
  let write_failed = ref false in
  let writer =
    Domain.spawn (fun () ->
        let rec loop () =
          Mutex.lock pm;
          while Queue.is_empty pending && not !done_reading do
            Condition.wait pcv pm
          done;
          match Queue.take_opt pending with
          | None -> Mutex.unlock pm         (* done_reading and drained *)
          | Some join ->
            Condition.broadcast pcv;        (* reader may be depth-blocked *)
            Mutex.unlock pm;
            let replies = join () in        (* blocks until the job settles *)
            (* joins still run after a write failure so every scheduler
               ticket is observed; only the writes are skipped *)
            if not !write_failed then
              (try
                 List.iter
                   (fun r -> output_string oc r; output_char oc '\n')
                   replies;
                 flush oc
               with Sys_error _ -> write_failed := true);
            write_metrics_file t;
            loop ()
        in
        loop ())
  in
  let quit = ref false in
  (try
     while not !quit do
       let line = input_line ic in
       if String.trim line = "(quit)" then quit := true
       else begin
         let join = handle_line_async t line in
         Mutex.lock pm;
         while Queue.length pending >= pipeline_depth do
           Condition.wait pcv pm
         done;
         Queue.add join pending;
         Condition.broadcast pcv;
         Mutex.unlock pm
       end
     done
   with End_of_file -> ());
  Mutex.lock pm;
  done_reading := true;
  Condition.broadcast pcv;
  Mutex.unlock pm;
  Domain.join writer;
  !quit

(* A killed server leaves its socket file behind and a naive bind then
   fails with EADDRINUSE forever.  Probe before unlinking: a connect that
   succeeds means another server is live (refuse to hijack its socket); a
   refused connect means the file is stale and safe to remove.  Anything
   that is not a socket is left alone. *)
let remove_stale_socket path =
  match Unix.lstat path with
  | exception Unix.Unix_error (ENOENT, _, _) -> ()
  | { Unix.st_kind; _ } when st_kind <> Unix.S_SOCK ->
    failwith (Printf.sprintf "%s: exists and is not a socket" path)
  | _ ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if live then
      failwith (Printf.sprintf "%s: a server is already listening here" path)
    else (try Unix.unlink path with Unix.Unix_error _ -> ())

(* Bind via a temp name and rename over the target: the path atomically
   flips from the stale socket to the live one, so a restarting shard
   never leaves a window where the path is missing (clients ENOENT) or
   where two distinct endpoints answer (routers double-counting).  A
   live listener is still refused first. *)
let bind_socket_replacing sock path =
  (match Unix.lstat path with
   | exception Unix.Unix_error (ENOENT, _, _) -> ()
   | { Unix.st_kind; _ } when st_kind <> Unix.S_SOCK ->
     failwith (Printf.sprintf "%s: exists and is not a socket" path)
   | _ ->
     let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     let live =
       match Unix.connect fd (Unix.ADDR_UNIX path) with
       | () -> true
       | exception Unix.Unix_error _ -> false
     in
     (try Unix.close fd with Unix.Unix_error _ -> ());
     if live then
       failwith (Printf.sprintf "%s: a server is already listening here" path));
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  (try Unix.unlink tmp with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX tmp);
  match Sys.rename tmp path with
  | () -> ()
  | exception e ->
    (try Unix.unlink tmp with Unix.Unix_error _ -> ());
    raise e

let serve_socket t ~path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* only unlink what we actually bound: a refused path (regular file, a
     live server) must be left exactly as found *)
  let bound = ref false in
  Fun.protect
    ~finally:(fun () ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        if !bound then try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
       bind_socket_replacing sock path;
       bound := true;
       Unix.listen sock 16;
       let quit = ref false in
       while not !quit do
         let fd, _ = Unix.accept sock in
         let ic = Unix.in_channel_of_descr fd in
         let oc = Unix.out_channel_of_descr fd in
         (match serve_channels t ic oc with
          | q -> quit := q
          | exception Sys_error _ -> ());
         (try flush oc with Sys_error _ -> ());
         try Unix.close fd with Unix.Unix_error _ -> ()
       done)
