type failure =
  | Exec_failed of string
  | Timed_out
  | Cancelled
  | Source_error of string

type response = {
  job : Job.t;
  cached : bool;
  elapsed : float;
  outcome : (Exec.output, failure) result;
}

type t = {
  scheduler : Exec.output Scheduler.t;
  result_cache : Result_cache.t;
  metrics : Obs.Registry.t;
  req_latency : Obs.Metric.Histogram.t;
  req_ok : Obs.Metric.Counter.t;        (* small_svc_requests_total family *)
  req_error : Obs.Metric.Counter.t;
  req_timeout : Obs.Metric.Counter.t;
  req_cancelled : Obs.Metric.Counter.t;
  req_rejected : Obs.Metric.Counter.t;
  metrics_file : string option;
  lock : Mutex.t;
  mutable jobs_executed : int;      (* cache misses actually run *)
}

let create ?cache_dir ?metrics_file ~workers ~queue_capacity () =
  let metrics = Obs.Registry.create () in
  let req status =
    Obs.Registry.counter metrics ~help:"job requests answered, by status"
      ~labels:[ ("status", status) ] "small_svc_requests_total"
  in
  { scheduler = Scheduler.create ~metrics ~workers ~capacity:queue_capacity ();
    result_cache = Result_cache.create ~metrics ?dir:cache_dir ();
    metrics;
    req_latency =
      Obs.Registry.histogram metrics ~help:"seconds from request to response"
        "small_svc_request_seconds";
    req_ok = req "ok"; req_error = req "error"; req_timeout = req "timeout";
    req_cancelled = req "cancelled"; req_rejected = req "rejected";
    metrics_file;
    lock = Mutex.create (); jobs_executed = 0 }

let cache t = t.result_cache
let metrics t = t.metrics
let metrics_text t = Obs.Expo.of_registry t.metrics
let scheduler_stats t = Scheduler.stats t.scheduler

(* Exposition written atomically (temp + rename), so a scraper never
   reads a half-written file. *)
let write_metrics_file t =
  match t.metrics_file with
  | None -> ()
  | Some path ->
    let text = metrics_text t in
    let dir = Filename.dirname path in
    (try
       let tmp = Filename.temp_file ~temp_dir:dir "metrics" ".tmp" in
       (try
          let oc = open_out_bin tmp in
          Fun.protect ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc text);
          Sys.rename tmp path
        with e ->
          (try Sys.remove tmp with Sys_error _ -> ());
          raise e)
     with Sys_error _ | Unix.Unix_error _ -> ())

let shutdown t =
  Scheduler.shutdown t.scheduler;
  write_metrics_file t

(* Every answered job request lands here exactly once. *)
let observe_response t (r : response) =
  Obs.Metric.Histogram.record t.req_latency r.elapsed;
  Obs.Metric.Counter.incr
    (match r.outcome with
     | Ok _ -> t.req_ok
     | Error (Exec_failed _ | Source_error _) -> t.req_error
     | Error Timed_out -> t.req_timeout
     | Error Cancelled -> t.req_cancelled);
  r

(* ---- the cache-aware submit path ---- *)

let submit t (job : Job.t) =
  let now () = Unix.gettimeofday () in
  let started = now () in
  match
    let trace_digest = Exec.trace_digest job.source in
    Result_cache.key ~trace_digest ~job_digest:(Job.digest job)
  with
  | exception e ->
    (* an unreadable source fails without occupying the queue *)
    let failure = Source_error (Printexc.to_string e) in
    Ok
      (fun () ->
         observe_response t
           { job; cached = false; elapsed = 0.; outcome = Error failure })
  | key ->
    match Result_cache.find t.result_cache key with
    | Some stored ->
      let outcome =
        match Exec.output_of_sexp (Sexp.parse stored) with
        | Ok out -> Ok out
        | Error msg -> Error (Exec_failed ("corrupt cache entry: " ^ msg))
        | exception Sexp.Reader.Parse_error msg ->
          Error (Exec_failed ("corrupt cache entry: " ^ msg))
      in
      Ok
        (fun () ->
           observe_response t
             { job; cached = true; elapsed = now () -. started; outcome })
    | None ->
      let run ~should_stop = Exec.run ~should_stop job in
      (match Scheduler.submit t.scheduler ?timeout:job.timeout run with
       | Error _ as e ->
         Obs.Metric.Counter.incr t.req_rejected;
         e
       | Ok ticket ->
         Ok
           (fun () ->
              let outcome =
                match Scheduler.await t.scheduler ticket with
                | Scheduler.Done out ->
                  Mutex.lock t.lock;
                  t.jobs_executed <- t.jobs_executed + 1;
                  Mutex.unlock t.lock;
                  Result_cache.store t.result_cache key
                    (Sexp.to_string (Exec.output_to_sexp out));
                  Ok out
                | Scheduler.Failed msg -> Error (Exec_failed msg)
                | Scheduler.Timed_out -> Error Timed_out
                | Scheduler.Cancelled -> Error Cancelled
              in
              observe_response t
                { job; cached = false; elapsed = now () -. started; outcome }))

let run_job t job =
  match submit t job with
  | Ok join -> Ok (join ())
  | Error _ as e -> e

(* ---- wire rendering ---- *)

let response_json r =
  let base status rest =
    Json.Obj
      (("status", Json.Str status)
       :: ("job", Json.Str (Job.describe r.job))
       :: ("cached", Json.Bool r.cached)
       :: ("elapsed", Json.Float r.elapsed)
       :: rest)
  in
  match r.outcome with
  | Ok out -> base "ok" [ ("result", Exec.output_to_json out) ]
  | Error (Exec_failed msg) -> base "error" [ ("error", Json.Str msg) ]
  | Error (Source_error msg) -> base "error" [ ("error", Json.Str msg) ]
  | Error Timed_out -> base "timeout" []
  | Error Cancelled -> base "cancelled" []

let error_line msg =
  Json.to_string (Json.Obj [ ("status", Json.Str "error"); ("error", Json.Str msg) ])

let rejected_line (job : Job.t) =
  Json.to_string
    (Json.Obj
       [ ("status", Json.Str "rejected");
         ("job", Json.Str (Job.describe job));
         ("error", Json.Str "queue full") ])

let stats_json t =
  let c = Result_cache.stats t.result_cache in
  let s = Scheduler.stats t.scheduler in
  Mutex.lock t.lock;
  let executed = t.jobs_executed in
  Mutex.unlock t.lock;
  Json.Obj
    [ ("status", Json.Str "ok");
      ("jobs_executed", Json.Int executed);
      ("cache",
       Json.Obj
         [ ("hits", Json.Int c.Result_cache.hits);
           ("disk_hits", Json.Int c.Result_cache.disk_hits);
           ("misses", Json.Int c.Result_cache.misses);
           ("stores", Json.Int c.Result_cache.stores) ]);
      ("scheduler",
       Json.Obj
         [ ("queued", Json.Int s.Scheduler.queued);
           ("running", Json.Int s.Scheduler.running);
           ("completed", Json.Int s.Scheduler.completed);
           ("rejected", Json.Int s.Scheduler.rejected);
           ("cancelled", Json.Int s.Scheduler.cancelled);
           ("timed_out", Json.Int s.Scheduler.timed_out) ]);
      ("metrics", Obs_json.registry_json t.metrics) ]

let respond t job =
  match run_job t job with
  | Ok r -> Json.to_string (response_json r)
  | Error (`Queue_full | `Shutdown) -> rejected_line job

let handle_batch t datums =
  (* submit everything before awaiting anything: the pool runs the batch
     concurrently while responses keep request order *)
  let joins =
    List.map
      (fun d ->
         match Job.of_sexp d with
         | Error msg -> fun () -> error_line msg
         | Ok job ->
           (match submit t job with
            | Ok join -> fun () -> Json.to_string (response_json (join ()))
            | Error (`Queue_full | `Shutdown) -> fun () -> rejected_line job))
      datums
  in
  List.map (fun join -> join ()) joins

let handle_parsed t line =
  match Sexp.parse line with
    | exception Sexp.Reader.Parse_error msg -> [ error_line ("parse error: " ^ msg) ]
    | Sexp.Datum.Cons (Sym "stats", Nil) -> [ Json.to_string (stats_json t) ]
    | Sexp.Datum.Cons (Sym "batch", rest) when Sexp.Datum.is_list rest ->
      handle_batch t (Sexp.Datum.to_list rest)
    | d ->
      (match Job.of_sexp d with
       | Ok job -> [ respond t job ]
       | Error msg -> [ error_line msg ])

let handle_line t line =
  let line = String.trim line in
  if line = "" then []
  else begin
    let responses = handle_parsed t line in
    (* refresh the exposition file after every handled request, so an
       external scraper always sees the latest counters *)
    write_metrics_file t;
    responses
  end

let serve_channels t ic oc =
  let quit = ref false in
  (try
     while not !quit do
       let line = input_line ic in
       if String.trim line = "(quit)" then quit := true
       else
         List.iter
           (fun resp -> output_string oc resp; output_char oc '\n'; flush oc)
           (handle_line t line)
     done
   with End_of_file -> ());
  !quit

let serve_socket t ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
       Unix.bind sock (Unix.ADDR_UNIX path);
       Unix.listen sock 16;
       let quit = ref false in
       while not !quit do
         let fd, _ = Unix.accept sock in
         let ic = Unix.in_channel_of_descr fd in
         let oc = Unix.out_channel_of_descr fd in
         (match serve_channels t ic oc with
          | q -> quit := q
          | exception Sys_error _ -> ());
         (try flush oc with Sys_error _ -> ());
         try Unix.close fd with Unix.Unix_error _ -> ()
       done)
