(** smalld — the simulation-job service: typed job descriptions over the
    workload/trace/analysis/simulator stack, a bounded-FIFO scheduler on
    a pool of worker domains, a content-addressed result cache keyed by
    (trace digest, config digest), and the newline-delimited JSON wire
    protocol behind [smallsim serve]/[submit]. *)

module Json = Json
module Obs_json = Obs_json
module Job = Job
module Scheduler = Scheduler
module Result_cache = Result_cache
module Exec = Exec
module Service = Service
