(* JSON form of an Obs registry snapshot, reusing the wire Json emitter.
   One object keyed by metric name; each family carries its type, help,
   and one sample per label set (samples arrive sorted, so the shape is
   deterministic and golden-testable). *)

let value_type = function
  | Obs.Registry.Counter_v _ -> "counter"
  | Obs.Registry.Gauge_v _ -> "gauge"
  | Obs.Registry.Histogram_v _ -> "histogram"

let histogram_json (h : Obs.Metric.Histogram.snapshot) =
  let nb = Array.length h.Obs.Metric.Histogram.sbounds in
  let buckets =
    List.init (nb + 1) (fun i ->
        let le =
          if i < nb then Json.Float h.Obs.Metric.Histogram.sbounds.(i)
          else Json.Str "+Inf"
        in
        Json.Obj
          [ ("le", le);
            ("count", Json.Int h.Obs.Metric.Histogram.scounts.(i)) ])
  in
  Json.Obj
    [ ("count", Json.Int (Obs.Metric.Histogram.count h));
      ("sum", Json.Float h.Obs.Metric.Histogram.ssum);
      ("p50", Json.Float (Obs.Metric.Histogram.quantile h 0.5));
      ("p99", Json.Float (Obs.Metric.Histogram.quantile h 0.99));
      ("buckets", Json.List buckets) ]

let sample_json (s : Obs.Registry.sample) =
  Json.Obj
    [ ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.labels));
      ("value",
       match s.value with
       | Obs.Registry.Counter_v v -> Json.Int v
       | Obs.Registry.Gauge_v v -> Json.Int v
       | Obs.Registry.Histogram_v h -> histogram_json h) ]

let snapshot_json samples =
  (* group consecutive samples of one family (input is sorted by name) *)
  let rec group = function
    | [] -> []
    | (s : Obs.Registry.sample) :: _ as all ->
      let mine, rest =
        List.partition (fun (x : Obs.Registry.sample) -> x.name = s.name) all
      in
      ( s.name,
        Json.Obj
          [ ("type", Json.Str (value_type s.value));
            ("help", Json.Str s.help);
            ("samples", Json.List (List.map sample_json mine)) ] )
      :: group rest
  in
  Json.Obj (group samples)

let registry_json reg = snapshot_json (Obs.Registry.snapshot reg)
