(** Content-addressed result store.

    Keys are MD5 hex digests of [(trace digest, job digest)]; values are
    the serialised job outputs (one s-expression line).  An in-memory
    table fronts an optional disk backend, so results survive across
    processes and repeated sweeps hit the cache instead of
    re-simulating.  All operations are thread-safe.

    Two disk backends:

    - {b Legacy files} ([~dir]): one file per key
      ([<dir>/<k0k1>/<key>.result], written atomically), self-verifying
      (["SMRC1 <md5hex> <length>\n<payload>"]).  A read that fails the
      digest check quarantines the file to [*.corrupt] and reports a
      miss, so a torn write or flipped byte is recomputed, never served.
    - {b Log-structured store} ([~store_dir]): the crash-consistent
      segment log of {!Store.Log} — group-committed appends, recovery
      replay on open, copying compaction, size/TTL eviction.  A key
      missing from the log but present as a legacy [SMRC1] file in the
      same directory is served from the file and migrated into the log
      ([small_cache_migrated_total]), so pointing [--store-dir] at an
      old [--cache-dir] directory never recomputes warm entries.

    A failed disk write keeps the in-memory entry, counts
    [small_cache_write_errors_total], raises the [small_cache_degraded]
    gauge to 1 and prints a one-line warning (once) — a degraded node
    would otherwise be indistinguishable from a cold one at the next
    process start. *)

type t

(** [create ?metrics ?dir ?fault ?store_dir ... ()] — with [dir] the
    legacy one-file-per-entry backend persists there; with [store_dir]
    the log-structured store does (both directories are created on
    demand); with neither, the cache is memory-only.
    [segment_bytes], [compact_ratio], [store_max_bytes] and [store_ttl]
    tune the log store (see {!Store.Log.config}) and are ignored by the
    other backends.  With [metrics], the cache keeps [small_cache_*]
    counters in the registry (and the log store its [small_store_*]
    families).  [fault] injects write failures at site ["cache.store"]
    (legacy) and the ["store.*"] sites (log).
    @raise Invalid_argument if both [dir] and [store_dir] are given.
    @raise Sys_error if opening the log store fails. *)
val create :
  ?metrics:Obs.Registry.t -> ?dir:string -> ?fault:Fault.Plan.t ->
  ?store_dir:string -> ?segment_bytes:int -> ?compact_ratio:float ->
  ?store_max_bytes:int -> ?store_ttl:float -> unit -> t

val key : trace_digest:string -> job_digest:string -> string

(** [find t key] — [None] counts a miss; hits record whether they came
    from memory or disk.  Corrupt disk entries are quarantined (legacy)
    or dropped (log) and reported as misses. *)
val find : t -> string -> string option

val store : t -> string -> string -> unit

type stats = {
  hits : int;                  (** memory + disk *)
  disk_hits : int;             (** subset of [hits] loaded from disk *)
  misses : int;
  stores : int;
  corrupt : int;               (** disk entries quarantined on read *)
  write_errors : int;          (** failed disk writes (memory kept) *)
  migrated : int;              (** legacy entries migrated into the log store *)
  degraded : bool;             (** any disk write has failed *)
}

val stats : t -> stats

(** The backing directory, if any (legacy or log). *)
val dir : t -> string option

(** The log store behind this cache, when created with [~store_dir]. *)
val log_store : t -> Store.Log.t option

val log_stats : t -> Store.Log.stats option
