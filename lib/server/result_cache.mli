(** Content-addressed result store.

    Keys are MD5 hex digests of [(trace digest, job digest)]; values are
    the serialised job outputs (one s-expression line).  An in-memory
    table fronts an optional on-disk store (one file per key,
    [<dir>/<k0k1>/<key>.result], written atomically), so results survive
    across processes and repeated sweeps hit the cache instead of
    re-simulating.  All operations are thread-safe. *)

type t

(** [create ?metrics ?dir ()] — with [dir] the store persists there (the
    directory is created on demand); without, it is memory-only.  With
    [metrics], the cache keeps [small_cache_*] counters in the registry:
    hits (plus the disk subset), misses, stores, and bytes written to
    disk. *)
val create : ?metrics:Obs.Registry.t -> ?dir:string -> unit -> t

val key : trace_digest:string -> job_digest:string -> string

(** [find t key] — [None] counts a miss; hits record whether they came
    from memory or disk. *)
val find : t -> string -> string option

val store : t -> string -> string -> unit

type stats = {
  hits : int;                  (** memory + disk *)
  disk_hits : int;             (** subset of [hits] loaded from disk *)
  misses : int;
  stores : int;
}

val stats : t -> stats

val dir : t -> string option
