(** Content-addressed result store.

    Keys are MD5 hex digests of [(trace digest, job digest)]; values are
    the serialised job outputs (one s-expression line).  An in-memory
    table fronts an optional on-disk store (one file per key,
    [<dir>/<k0k1>/<key>.result], written atomically), so results survive
    across processes and repeated sweeps hit the cache instead of
    re-simulating.  All operations are thread-safe.

    On-disk entries are self-verifying
    (["SMRC1 <md5hex> <length>\n<payload>"]): a read that fails the
    digest check quarantines the file to [*.corrupt] and reports a miss,
    so a torn write or flipped byte is recomputed, never served.  A
    failed disk write keeps the in-memory entry and counts
    [small_cache_write_errors_total] — persistence degrades, correctness
    does not. *)

type t

(** [create ?metrics ?dir ?fault ()] — with [dir] the store persists
    there (the directory is created on demand); without, it is
    memory-only.  With [metrics], the cache keeps [small_cache_*]
    counters in the registry: hits (plus the disk subset), misses,
    stores, bytes written, corrupt entries quarantined, and failed
    writes.  [fault] injects write failures at site ["cache.store"]. *)
val create : ?metrics:Obs.Registry.t -> ?dir:string -> ?fault:Fault.Plan.t -> unit -> t

val key : trace_digest:string -> job_digest:string -> string

(** [find t key] — [None] counts a miss; hits record whether they came
    from memory or disk.  Corrupt disk entries are quarantined and
    reported as misses. *)
val find : t -> string -> string option

val store : t -> string -> string -> unit

type stats = {
  hits : int;                  (** memory + disk *)
  disk_hits : int;             (** subset of [hits] loaded from disk *)
  misses : int;
  stores : int;
  corrupt : int;               (** disk entries quarantined on read *)
  write_errors : int;          (** failed disk writes (memory kept) *)
}

val stats : t -> stats

val dir : t -> string option
