module D = Sexp.Datum

type output =
  | Stats_out of {
      events : int;
      primitives : int;
      functions : int;
      max_depth : int;
      distinct_lists : int;
      mix : (Trace.Event.prim * int) list;
    }
  | Analyze_out of {
      separation : float;
      distinct_lists : int;
      mean_n : float;
      mean_p : float;
      sets : int;
      stream_length : int;
      sets_for_50 : int;
      sets_for_80 : int;
      sets_for_95 : int;
      lru_hits : (int * float) list;
      car_chain_pct : float;
      cdr_chain_pct : float;
    }
  | Simulate_out of Core.Simulator.stats
  | Knee_out of {
      size : int;
      stats : Core.Simulator.stats;
    }

(* ---- sources ---- *)

let capture_of_source = function
  | Job.Workload w ->
    (match Workloads.Registry.find w with
     | Some w -> Workloads.Registry.trace w
     | None -> invalid_arg ("Server.Exec: unknown workload " ^ w))
  | Job.Trace_file p -> Trace.Io.load p

(* Workload digests are memoised: the registry already memoises the
   capture, but the binary encoding of a large trace is itself worth
   computing once.  File digests are over the raw bytes (cheap, and
   sensitive to the format on disk — re-encoding a trace re-keys it). *)
let digest_lock = Mutex.create ()
let workload_digests : (string, string) Hashtbl.t = Hashtbl.create 8

let trace_digest = function
  | Job.Trace_file p -> Digest.to_hex (Digest.file p)
  | Job.Workload w ->
    Mutex.lock digest_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock digest_lock) @@ fun () ->
    (match Hashtbl.find_opt workload_digests w with
     | Some d -> d
     | None ->
       let d =
         match Workloads.Registry.find w with
         | Some wl -> Trace.Binary.digest (Workloads.Registry.trace wl)
         | None -> invalid_arg ("Server.Exec: unknown workload " ^ w)
       in
       Hashtbl.replace workload_digests w d;
       d)

(* Trace files preprocess straight off the mapped source: no capture,
   no per-event allocation, O(1) open.  (Sexp-lines files have no
   random-access form and still go through a capture.) *)
let preprocessed_of_source = function
  | Job.Workload w ->
    (match Workloads.Registry.find w with
     | Some w -> Workloads.Registry.preprocessed w
     | None -> invalid_arg ("Server.Exec: unknown workload " ^ w))
  | Job.Trace_file p ->
    (match Trace.Io.open_path p with
     | Trace.Io.Binary_source src ->
       (try Trace.Preprocess.run_source src
        with Trace.Binary.Corrupt { offset; reason } ->
          raise (Trace.Io.Corrupt { path = p; offset; reason }))
     | Trace.Io.Sexp_capture c -> Trace.Preprocess.run c)

(* ---- execution ---- *)

let check should_stop = if should_stop () then raise Scheduler.Stop

let run ?(should_stop = fun () -> false) (job : Job.t) =
  check should_stop;
  match job.spec with
  | Job.Stats ->
    (* everything a stats job reports lives in the preprocessed form,
       so one (possibly zero-copy) pass serves the whole job — no
       capture is materialised for binary trace files *)
    let pre = preprocessed_of_source job.source in
    check should_stop;
    let st = pre.Trace.Preprocess.stats in
    let mix = Analysis.Prim_mix.of_preprocessed pre in
    Stats_out
      { events = Array.length pre.Trace.Preprocess.events;
        primitives = st.Trace.Capture.primitives;
        functions = st.Trace.Capture.functions;
        max_depth = st.Trace.Capture.max_depth;
        distinct_lists = pre.Trace.Preprocess.distinct_lists;
        mix = mix.Analysis.Prim_mix.counts }
  | Job.Analyze { separation } ->
    let pre = preprocessed_of_source job.source in
    check should_stop;
    let np = Analysis.Np_stats.analyze pre in
    let part = Analysis.List_sets.partition ~separation pre in
    check should_stop;
    let stream = Analysis.List_sets.set_id_stream ~separation pre in
    let lru = Analysis.Lru_stack.analyze stream in
    check should_stop;
    let ch = Analysis.Chaining.analyze pre in
    Analyze_out
      { separation;
        distinct_lists = pre.Trace.Preprocess.distinct_lists;
        mean_n = Analysis.Np_stats.mean_n np;
        mean_p = Analysis.Np_stats.mean_p np;
        sets = List.length part.Analysis.List_sets.sets;
        stream_length = part.Analysis.List_sets.stream_length;
        sets_for_50 = Analysis.List_sets.sets_for_coverage part 0.5;
        sets_for_80 = Analysis.List_sets.sets_for_coverage part 0.8;
        sets_for_95 = Analysis.List_sets.sets_for_coverage part 0.95;
        lru_hits =
          List.map (fun k -> (k, Analysis.Lru_stack.hit_fraction lru k)) [ 1; 2; 4; 8 ];
        car_chain_pct = Analysis.Chaining.car_pct ch;
        cdr_chain_pct = Analysis.Chaining.cdr_pct ch }
  | Job.Simulate config ->
    let pre = preprocessed_of_source job.source in
    check should_stop;
    Simulate_out (Core.Simulator.run config pre)
  | Job.Knee config ->
    let pre = preprocessed_of_source job.source in
    check should_stop;
    let size, stats = Core.Simulator.min_table_size config pre in
    Knee_out { size; stats }

(* ---- sexp (cache) form ----

   Outputs are stored as assoc-style clause lists; floats go through %h
   so that of_sexp . to_sexp is the identity. *)

exception Bad of string

let bad fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt

let fint = D.int
let ffloat f = D.str (Printf.sprintf "%h" f)
let fbool b = D.int (if b then 1 else 0)

let clause key args = D.list (D.sym key :: args)

let clauses_of d =
  List.map
    (function
      | D.Cons (D.Sym key, args) when D.is_list args -> (key, D.to_list args)
      | d -> bad "expected a clause, got %s" (Sexp.to_string d))
    (D.to_list d)

let get1 cls key =
  match List.assoc_opt key cls with
  | Some [ v ] -> v
  | Some _ -> bad "clause %s wants one value" key
  | None -> bad "missing clause %s" key

let gint cls key = match get1 cls key with
  | D.Int n -> n
  | d -> bad "%s: expected int, got %s" key (Sexp.to_string d)

let gfloat cls key = match get1 cls key with
  | D.Str s ->
    (match float_of_string_opt s with
     | Some f -> f
     | None -> bad "%s: bad float %s" key s)
  | d -> bad "%s: expected float, got %s" key (Sexp.to_string d)

let gbool cls key = gint cls key <> 0

let lpt_counters_to_sexp (c : Core.Lpt.counters) =
  D.list
    [ fint c.refops; fint c.ep_refops; fint c.gets; fint c.frees; fint c.hits;
      fint c.misses; fint c.pseudo_overflows; fint c.compressions;
      fint c.cycle_recoveries; fint c.peak_live; fint c.max_refcount;
      fint c.max_stack_count ]

let lpt_counters_of_sexp d : Core.Lpt.counters =
  match List.map (function D.Int n -> n | _ -> bad "lpt: ints expected") (D.to_list d) with
  | [ refops; ep_refops; gets; frees; hits; misses; pseudo_overflows;
      compressions; cycle_recoveries; peak_live; max_refcount; max_stack_count ] ->
    { refops; ep_refops; gets; frees; hits; misses; pseudo_overflows;
      compressions; cycle_recoveries; peak_live; max_refcount; max_stack_count }
  | _ -> bad "lpt: wrong arity"

let heap_counters_to_sexp (c : Core.Heap_model.counters) =
  D.list [ fint c.reads; fint c.splits; fint c.merges; fint c.reclaims;
           fint c.cells_reclaimed ]

let heap_counters_of_sexp d : Core.Heap_model.counters =
  match List.map (function D.Int n -> n | _ -> bad "heap: ints expected") (D.to_list d) with
  | [ reads; splits; merges; reclaims; cells_reclaimed ] ->
    { reads; splits; merges; reclaims; cells_reclaimed }
  | _ -> bad "heap: wrong arity"

let sim_stats_clauses (s : Core.Simulator.stats) =
  [ clause "events" [ fint s.events ];
    clause "true-overflow" [ fbool s.true_overflow ];
    clause "overflow-events" [ fint s.overflow_events ];
    clause "peak-lpt" [ fint s.peak_lpt ];
    clause "avg-lpt" [ ffloat s.avg_lpt ];
    clause "lpt" [ lpt_counters_to_sexp s.lpt ];
    clause "heap" [ heap_counters_to_sexp s.heap ];
    clause "cache-hits" [ fint s.cache_hits ];
    clause "cache-misses" [ fint s.cache_misses ];
    clause "cache-accesses" [ fint s.cache_accesses ] ]

let sim_stats_of_clauses cls : Core.Simulator.stats =
  { events = gint cls "events";
    true_overflow = gbool cls "true-overflow";
    overflow_events = gint cls "overflow-events";
    peak_lpt = gint cls "peak-lpt";
    avg_lpt = gfloat cls "avg-lpt";
    lpt = lpt_counters_of_sexp (get1 cls "lpt");
    heap = heap_counters_of_sexp (get1 cls "heap");
    cache_hits = gint cls "cache-hits";
    cache_misses = gint cls "cache-misses";
    cache_accesses = gint cls "cache-accesses" }

let output_to_sexp = function
  | Stats_out o ->
    D.list
      (D.sym "stats-out"
       :: [ clause "events" [ fint o.events ];
            clause "primitives" [ fint o.primitives ];
            clause "functions" [ fint o.functions ];
            clause "max-depth" [ fint o.max_depth ];
            clause "distinct-lists" [ fint o.distinct_lists ];
            clause "mix"
              (List.map
                 (fun (p, n) -> D.list [ D.sym (Trace.Event.prim_name p); fint n ])
                 o.mix) ])
  | Analyze_out o ->
    D.list
      (D.sym "analyze-out"
       :: [ clause "separation" [ ffloat o.separation ];
            clause "distinct-lists" [ fint o.distinct_lists ];
            clause "mean-n" [ ffloat o.mean_n ];
            clause "mean-p" [ ffloat o.mean_p ];
            clause "sets" [ fint o.sets ];
            clause "stream-length" [ fint o.stream_length ];
            clause "sets-for-50" [ fint o.sets_for_50 ];
            clause "sets-for-80" [ fint o.sets_for_80 ];
            clause "sets-for-95" [ fint o.sets_for_95 ];
            clause "lru-hits"
              (List.map (fun (k, f) -> D.list [ fint k; ffloat f ]) o.lru_hits);
            clause "car-chain" [ ffloat o.car_chain_pct ];
            clause "cdr-chain" [ ffloat o.cdr_chain_pct ] ])
  | Simulate_out s -> D.list (D.sym "simulate-out" :: sim_stats_clauses s)
  | Knee_out { size; stats } ->
    D.list (D.sym "knee-out" :: clause "size" [ fint size ] :: sim_stats_clauses stats)

let output_of_sexp d =
  try
    match d with
    | D.Cons (D.Sym "stats-out", rest) ->
      let cls = clauses_of rest in
      let mix =
        match List.assoc_opt "mix" cls with
        | None -> bad "missing clause mix"
        | Some rows ->
          List.map
            (fun row ->
               match row with
               | D.Cons (D.Sym p, D.Cons (D.Int n, D.Nil)) ->
                 (match Trace.Event.prim_of_name p with
                  | Some p -> (p, n)
                  | None -> bad "mix: unknown primitive %s" p)
               | d -> bad "mix: bad row %s" (Sexp.to_string d))
            rows
      in
      Ok
        (Stats_out
           { events = gint cls "events"; primitives = gint cls "primitives";
             functions = gint cls "functions"; max_depth = gint cls "max-depth";
             distinct_lists = gint cls "distinct-lists"; mix })
    | D.Cons (D.Sym "analyze-out", rest) ->
      let cls = clauses_of rest in
      let lru_hits =
        match List.assoc_opt "lru-hits" cls with
        | None -> bad "missing clause lru-hits"
        | Some rows ->
          List.map
            (fun row ->
               match row with
               | D.Cons (D.Int k, D.Cons (D.Str f, D.Nil)) ->
                 (match float_of_string_opt f with
                  | Some f -> (k, f)
                  | None -> bad "lru-hits: bad float %s" f)
               | d -> bad "lru-hits: bad row %s" (Sexp.to_string d))
            rows
      in
      Ok
        (Analyze_out
           { separation = gfloat cls "separation";
             distinct_lists = gint cls "distinct-lists";
             mean_n = gfloat cls "mean-n"; mean_p = gfloat cls "mean-p";
             sets = gint cls "sets"; stream_length = gint cls "stream-length";
             sets_for_50 = gint cls "sets-for-50";
             sets_for_80 = gint cls "sets-for-80";
             sets_for_95 = gint cls "sets-for-95";
             lru_hits;
             car_chain_pct = gfloat cls "car-chain";
             cdr_chain_pct = gfloat cls "cdr-chain" })
    | D.Cons (D.Sym "simulate-out", rest) ->
      Ok (Simulate_out (sim_stats_of_clauses (clauses_of rest)))
    | D.Cons (D.Sym "knee-out", rest) ->
      let cls = clauses_of rest in
      Ok (Knee_out { size = gint cls "size"; stats = sim_stats_of_clauses cls })
    | d -> Error ("unknown output form " ^ Sexp.to_string d)
  with Bad msg -> Error msg

(* ---- JSON (wire) form ---- *)

let sim_stats_json (s : Core.Simulator.stats) =
  Json.Obj
    [ ("events", Json.Int s.events);
      ("true_overflow", Json.Bool s.true_overflow);
      ("overflow_events", Json.Int s.overflow_events);
      ("peak_lpt", Json.Int s.peak_lpt);
      ("avg_lpt", Json.Float s.avg_lpt);
      ("lpt",
       Json.Obj
         [ ("refops", Json.Int s.lpt.Core.Lpt.refops);
           ("ep_refops", Json.Int s.lpt.Core.Lpt.ep_refops);
           ("gets", Json.Int s.lpt.Core.Lpt.gets);
           ("frees", Json.Int s.lpt.Core.Lpt.frees);
           ("hits", Json.Int s.lpt.Core.Lpt.hits);
           ("misses", Json.Int s.lpt.Core.Lpt.misses);
           ("pseudo_overflows", Json.Int s.lpt.Core.Lpt.pseudo_overflows);
           ("compressions", Json.Int s.lpt.Core.Lpt.compressions);
           ("cycle_recoveries", Json.Int s.lpt.Core.Lpt.cycle_recoveries);
           ("peak_live", Json.Int s.lpt.Core.Lpt.peak_live);
           ("max_refcount", Json.Int s.lpt.Core.Lpt.max_refcount);
           ("max_stack_count", Json.Int s.lpt.Core.Lpt.max_stack_count) ]);
      ("heap",
       Json.Obj
         [ ("reads", Json.Int s.heap.Core.Heap_model.reads);
           ("splits", Json.Int s.heap.Core.Heap_model.splits);
           ("merges", Json.Int s.heap.Core.Heap_model.merges);
           ("reclaims", Json.Int s.heap.Core.Heap_model.reclaims);
           ("cells_reclaimed", Json.Int s.heap.Core.Heap_model.cells_reclaimed) ]);
      ("cache_hits", Json.Int s.cache_hits);
      ("cache_misses", Json.Int s.cache_misses);
      ("cache_accesses", Json.Int s.cache_accesses) ]

let output_to_json = function
  | Stats_out o ->
    Json.Obj
      [ ("kind", Json.Str "stats");
        ("events", Json.Int o.events);
        ("primitives", Json.Int o.primitives);
        ("functions", Json.Int o.functions);
        ("max_depth", Json.Int o.max_depth);
        ("distinct_lists", Json.Int o.distinct_lists);
        ("mix",
         Json.Obj
           (List.map (fun (p, n) -> (Trace.Event.prim_name p, Json.Int n)) o.mix)) ]
  | Analyze_out o ->
    Json.Obj
      [ ("kind", Json.Str "analyze");
        ("separation", Json.Float o.separation);
        ("distinct_lists", Json.Int o.distinct_lists);
        ("mean_n", Json.Float o.mean_n);
        ("mean_p", Json.Float o.mean_p);
        ("sets", Json.Int o.sets);
        ("stream_length", Json.Int o.stream_length);
        ("sets_for_50", Json.Int o.sets_for_50);
        ("sets_for_80", Json.Int o.sets_for_80);
        ("sets_for_95", Json.Int o.sets_for_95);
        ("lru_hits",
         Json.List
           (List.map
              (fun (k, f) ->
                 Json.Obj [ ("depth", Json.Int k); ("fraction", Json.Float f) ])
              o.lru_hits));
        ("car_chain_pct", Json.Float o.car_chain_pct);
        ("cdr_chain_pct", Json.Float o.cdr_chain_pct) ]
  | Simulate_out s ->
    (match sim_stats_json s with
     | Json.Obj fields -> Json.Obj (("kind", Json.Str "simulate") :: fields)
     | j -> j)
  | Knee_out { size; stats } ->
    (match sim_stats_json stats with
     | Json.Obj fields ->
       Json.Obj (("kind", Json.Str "knee") :: ("knee_size", Json.Int size) :: fields)
     | j -> j)
