(** Typed job descriptions for the simulation service.

    A job names a trace source and a measurement over it.  The wire form
    is one s-expression per line:

    {v
    (stats (workload plagen))
    (analyze (workload slang) (separation 0.25))
    (simulate (workload slang) (size 512) (seed 3) (policy all)
              (cache 512 4) (timeout 30))
    (knee (trace-file "/tmp/editor.trace") (seed 7))
    v}

    [simulate] and [knee] accept every {!Core.Simulator.config} knob:
    [(size N)], [(policy one|all)], [(seed N)], [(arg-prob F)],
    [(loc-prob F)], [(bind-prob F)], [(read-prob F)], [(split-counts)],
    [(eager-decrement)], [(cache LINES LINE_SIZE)]; unset knobs take
    {!Core.Simulator.default_config}.  [(timeout SECONDS)] bounds the
    job's execution in the scheduler; [(priority N)] (default 0) ranks
    the job for load shedding — under overload, lower-priority queued
    jobs are shed first.  [(deadline SECONDS)] is the job's remaining
    end-to-end budget: each hop (client → router → shard) subtracts its
    own queueing before forwarding, and a hop whose budget runs out
    answers [status:"timeout"] without executing.  [(id N)] tags the
    request so its reply carries ["id":N] — routers use it to match
    pipelined replies and to target [(cancel N)]. *)

type source =
  | Workload of string         (** a built-in workload, traced on demand *)
  | Trace_file of string       (** a saved trace, either Io format *)

type spec =
  | Stats                               (** trace content + primitive mix *)
  | Analyze of { separation : float }   (** the Chapter 3 battery *)
  | Simulate of Core.Simulator.config   (** one §5.2 simulation *)
  | Knee of Core.Simulator.config       (** [Simulator.min_table_size] *)

type t = {
  source : source;
  spec : spec;
  timeout : float option;      (** seconds; [None] = no limit *)
  priority : int;              (** shed rank; higher survives overload longer *)
  deadline : float option;     (** remaining end-to-end budget, seconds;
                                   decremented at each hop *)
  wire_id : int option;        (** router-assigned request id, echoed in the
                                   reply's ["id"] field for pipelined matching *)
}

val of_sexp : Sexp.Datum.t -> (t, string) result

(** [parse line] reads the wire form. *)
val parse : string -> (t, string) result

val to_sexp : t -> Sexp.Datum.t

(** One-line human label, e.g. ["simulate slang size=512 seed=3"]. *)
val describe : t -> string

(** A canonical digest of the measurement alone (source, timeout, and
    priority excluded): the job half of the result-cache key.  Cache keys combine
    it with the trace digest, so two sources with identical content
    share cached results. *)
val digest : t -> string
