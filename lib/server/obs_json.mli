(** JSON rendering of {!Obs.Registry} snapshots for the wire protocol:
    an object keyed by metric name, each family carrying its type, help,
    and one sample per label set (histograms expanded into count / sum /
    p50 / p99 / buckets).  Sample order follows the snapshot's sorted
    order, so the output is deterministic. *)

val snapshot_json : Obs.Registry.sample list -> Json.t

(** [registry_json reg] = [snapshot_json (Obs.Registry.snapshot reg)]. *)
val registry_json : Obs.Registry.t -> Json.t
