type metric_handles = {
  m_hits : Obs.Metric.Counter.t;
  m_disk_hits : Obs.Metric.Counter.t;
  m_misses : Obs.Metric.Counter.t;
  m_stores : Obs.Metric.Counter.t;
  m_disk_bytes : Obs.Metric.Counter.t;
  m_corrupt : Obs.Metric.Counter.t;
  m_write_errors : Obs.Metric.Counter.t;
  m_degraded : Obs.Metric.Gauge.t;
  m_migrated : Obs.Metric.Counter.t;
}

(* Disk backend: the legacy one-file-per-entry layout, or the
   log-structured store (with read-through migration of any legacy
   entries already in its directory). *)
type disk =
  | No_disk
  | Files of string
  | Log of Store.Log.t * string

type t = {
  disk : disk;
  fault : Fault.Plan.t option;
  lock : Mutex.t;
  mem : (string, string) Hashtbl.t;
  metrics : metric_handles option;
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable corrupt : int;
  mutable write_errors : int;
  mutable migrated : int;
  mutable degraded : bool;
}

type stats = {
  hits : int;
  disk_hits : int;
  misses : int;
  stores : int;
  corrupt : int;
  write_errors : int;
  migrated : int;
  degraded : bool;
}

let resolve_metrics reg =
  let c name help = Obs.Registry.counter reg ~help name in
  { m_hits = c "small_cache_hits_total" "result-cache hits (memory + disk)";
    m_disk_hits = c "small_cache_disk_hits_total" "result-cache hits loaded from disk";
    m_misses = c "small_cache_misses_total" "result-cache misses";
    m_stores = c "small_cache_stores_total" "results stored";
    m_disk_bytes = c "small_cache_disk_bytes_total" "result bytes written to disk";
    m_corrupt = c "small_cache_corrupt_total" "corrupt entries quarantined on read";
    m_write_errors = c "small_cache_write_errors_total" "failed disk writes (memory kept)";
    m_degraded =
      Obs.Registry.gauge reg
        ~help:"1 once any disk write has failed: entries live only in memory \
               and the next process start will recompute them"
        "small_cache_degraded";
    m_migrated = c "small_cache_migrated_total" "legacy SMRC1 entries migrated into the log store" }

let with_metrics t f = match t.metrics with None -> () | Some m -> f m

let create ?metrics ?dir ?fault ?store_dir ?segment_bytes ?compact_ratio
    ?store_max_bytes ?store_ttl () =
  let disk =
    match dir, store_dir with
    | Some _, Some _ ->
      invalid_arg "Result_cache.create: ~dir and ~store_dir are exclusive"
    | Some d, None -> Files d
    | None, Some d ->
      let config =
        { Store.Log.segment_bytes =
            Option.value segment_bytes
              ~default:Store.Log.default_config.Store.Log.segment_bytes;
          compact_ratio =
            Option.value compact_ratio
              ~default:Store.Log.default_config.Store.Log.compact_ratio;
          max_bytes = store_max_bytes;
          ttl = store_ttl }
      in
      Log (Store.Log.open_ ?metrics ?fault ~config ~dir:d (), d)
    | None, None -> No_disk
  in
  { disk; fault; lock = Mutex.create (); mem = Hashtbl.create 64;
    metrics = Option.map resolve_metrics metrics;
    hits = 0; disk_hits = 0; misses = 0; stores = 0; corrupt = 0;
    write_errors = 0; migrated = 0; degraded = false }

let key ~trace_digest ~job_digest =
  Digest.to_hex (Digest.string (trace_digest ^ "+" ^ job_digest))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Two-level layout keeps any one directory small under big sweeps.
   The same layout inside a log store's directory is where legacy
   entries are migrated from. *)
let legacy_path dir key =
  Filename.concat (Filename.concat dir (String.sub key 0 2)) (key ^ ".result")

let path_of t key =
  match t.disk with
  | Files dir -> Some (legacy_path dir key)
  | No_disk | Log _ -> None

(* ---- on-disk entry format (legacy Files backend) ----

   "SMRC1 <md5hex-of-value> <value-length>\n<value>"

   The header binds the payload to its own digest, so a torn write, a
   flipped byte, or a foreign file in the cache directory is detected on
   read instead of being served as a result. *)

let entry_magic = "SMRC1"

let encode_entry value =
  Printf.sprintf "%s %s %d\n%s" entry_magic
    (Digest.to_hex (Digest.string value)) (String.length value) value

let decode_entry raw =
  match String.index_opt raw '\n' with
  | None -> Error "no header line"
  | Some nl ->
    match String.split_on_char ' ' (String.sub raw 0 nl) with
    | [ magic; hex; len ] ->
      if magic <> entry_magic then Error "bad magic"
      else
        let value = String.sub raw (nl + 1) (String.length raw - nl - 1) in
        (match int_of_string_opt len with
         | Some n when n = String.length value ->
           if Digest.to_hex (Digest.string value) = hex then Ok value
           else Error "digest mismatch"
         | Some _ -> Error "length mismatch"
         | None -> Error "bad length field")
    | _ -> Error "malformed header"

let read_file path =
  match open_in_bin path with
  | ic ->
    Some
      (Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
           really_input_string ic (in_channel_length ic)))
  | exception Sys_error _ -> None

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* A corrupt entry is moved aside to [path ^ ".corrupt"] (never deleted:
   the evidence is worth keeping) and the lookup becomes a miss, so the
   caller recomputes and overwrites with a good entry. *)
let quarantine (t : t) path =
  t.corrupt <- t.corrupt + 1;
  with_metrics t (fun m -> Obs.Metric.Counter.incr m.m_corrupt);
  try Sys.rename path (path ^ ".corrupt") with Sys_error _ -> ()

let write_file_atomic t path contents =
  match Option.bind t.fault (fun p -> Fault.Plan.on_write p ~site:"cache.store") with
  | Some Fault.Plan.Write_error -> raise (Sys_error (path ^ ": injected write error"))
  | fault ->
    let contents =
      match fault with
      | Some (Fault.Plan.Torn_write keep) ->
        (* lying disk: a strict prefix lands and the write "succeeds" *)
        let n = max 1 (min (String.length contents - 1)
                         (int_of_float (keep *. float_of_int (String.length contents)))) in
        String.sub contents 0 n
      | _ -> contents
    in
    let dir = Filename.dirname path in
    mkdir_p dir;
    let tmp = Filename.temp_file ~temp_dir:dir "result" ".tmp" in
    (try
       let oc = open_out_bin tmp in
       Fun.protect ~finally:(fun () -> close_out oc)
         (fun () -> output_string oc contents);
       Sys.rename tmp path
     with e ->
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e)

(* A write error degrades persistence, never correctness — but a
   degraded node looks exactly like a cold one at the next start, so
   surface it: gauge to 1 and one warning line, once. *)
let note_write_error (t : t) =
  t.write_errors <- t.write_errors + 1;
  with_metrics t (fun m -> Obs.Metric.Counter.incr m.m_write_errors);
  if not t.degraded then begin
    t.degraded <- true;
    with_metrics t (fun m -> Obs.Metric.Gauge.set m.m_degraded 1);
    let where =
      match t.disk with
      | Files d | Log (_, d) -> d
      | No_disk -> "(no dir)"
    in
    Printf.eprintf
      "smallsim: result cache degraded: disk write to %s failed; entries are \
       memory-only and will be recomputed on restart\n%!"
      where
  end

let hit (t : t) ~from_disk v =
  t.hits <- t.hits + 1;
  if from_disk then t.disk_hits <- t.disk_hits + 1;
  with_metrics t (fun m ->
      Obs.Metric.Counter.incr m.m_hits;
      if from_disk then Obs.Metric.Counter.incr m.m_disk_hits);
  Some v

(* Log-backend read-through: a key missing from the log but present as
   a legacy SMRC1 file in the same directory is served from the file
   and migrated into the log, so pointing --store-dir at an old
   --cache-dir directory never recomputes warm entries. *)
let migrate_legacy t log dir key =
  let path = legacy_path dir key in
  match read_file path with
  | None -> None
  | Some raw ->
    match decode_entry raw with
    | Error _ -> quarantine t path; None
    | Ok v ->
      (match Store.Log.set log key v with
       | () ->
         t.migrated <- t.migrated + 1;
         with_metrics t (fun m -> Obs.Metric.Counter.incr m.m_migrated);
         (try Sys.remove path with Sys_error _ -> ())
       | exception Sys_error _ -> note_write_error t);
      Some v

let find t key =
  locked t (fun () ->
      let miss () =
        t.misses <- t.misses + 1;
        with_metrics t (fun m -> Obs.Metric.Counter.incr m.m_misses);
        None
      in
      match Hashtbl.find_opt t.mem key with
      | Some v -> hit t ~from_disk:false v
      | None ->
        match t.disk with
        | No_disk -> miss ()
        | Log (log, dir) ->
          (match (try Store.Log.get log key with Sys_error _ -> None) with
           | Some v ->
             Hashtbl.replace t.mem key v;
             hit t ~from_disk:true v
           | None ->
             match migrate_legacy t log dir key with
             | Some v ->
               Hashtbl.replace t.mem key v;
               hit t ~from_disk:true v
             | None -> miss ())
        | Files _ ->
          match path_of t key with
          | None -> miss ()
          | Some path ->
            match read_file path with
            | None -> miss ()
            | Some raw ->
              match decode_entry raw with
              | Ok v ->
                Hashtbl.replace t.mem key v;
                hit t ~from_disk:true v
              | Error _ ->
                quarantine t path;
                miss ())

let store t key value =
  locked t (fun () ->
      (* the memory entry is installed unconditionally; a failed disk
         write degrades persistence, never correctness *)
      Hashtbl.replace t.mem key value;
      t.stores <- t.stores + 1;
      with_metrics t (fun m -> Obs.Metric.Counter.incr m.m_stores);
      match t.disk with
      | No_disk -> ()
      | Log (log, _) ->
        (match Store.Log.set log key value with
         | () ->
           with_metrics t (fun m ->
               Obs.Metric.Counter.add m.m_disk_bytes (String.length value))
         | exception Sys_error _ -> note_write_error t)
      | Files _ ->
        match path_of t key with
        | Some path ->
          let entry = encode_entry value in
          (match write_file_atomic t path entry with
           | () ->
             with_metrics t (fun m ->
                 Obs.Metric.Counter.add m.m_disk_bytes (String.length entry))
           | exception Sys_error _ -> note_write_error t)
        | None -> ())

let stats t =
  locked t (fun () ->
      { hits = t.hits; disk_hits = t.disk_hits; misses = t.misses;
        stores = t.stores; corrupt = t.corrupt; write_errors = t.write_errors;
        migrated = t.migrated; degraded = t.degraded })

let dir t =
  match t.disk with
  | No_disk -> None
  | Files d | Log (_, d) -> Some d

let log_store t = match t.disk with Log (l, _) -> Some l | No_disk | Files _ -> None

let log_stats t = Option.map Store.Log.stats (log_store t)
