type metric_handles = {
  m_hits : Obs.Metric.Counter.t;
  m_disk_hits : Obs.Metric.Counter.t;
  m_misses : Obs.Metric.Counter.t;
  m_stores : Obs.Metric.Counter.t;
  m_disk_bytes : Obs.Metric.Counter.t;
}

type t = {
  dir : string option;
  lock : Mutex.t;
  mem : (string, string) Hashtbl.t;
  metrics : metric_handles option;
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable stores : int;
}

type stats = {
  hits : int;
  disk_hits : int;
  misses : int;
  stores : int;
}

let resolve_metrics reg =
  let c name help = Obs.Registry.counter reg ~help name in
  { m_hits = c "small_cache_hits_total" "result-cache hits (memory + disk)";
    m_disk_hits = c "small_cache_disk_hits_total" "result-cache hits loaded from disk";
    m_misses = c "small_cache_misses_total" "result-cache misses";
    m_stores = c "small_cache_stores_total" "results stored";
    m_disk_bytes = c "small_cache_disk_bytes_total" "result bytes written to disk" }

let with_metrics t f = match t.metrics with None -> () | Some m -> f m

let create ?metrics ?dir () =
  { dir; lock = Mutex.create (); mem = Hashtbl.create 64;
    metrics = Option.map resolve_metrics metrics;
    hits = 0; disk_hits = 0; misses = 0; stores = 0 }

let key ~trace_digest ~job_digest =
  Digest.to_hex (Digest.string (trace_digest ^ "+" ^ job_digest))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Two-level layout keeps any one directory small under big sweeps. *)
let path_of t key =
  Option.map
    (fun dir -> Filename.concat (Filename.concat dir (String.sub key 0 2)) (key ^ ".result"))
    t.dir

let read_file path =
  match open_in_bin path with
  | ic ->
    Some
      (Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
           really_input_string ic (in_channel_length ic)))
  | exception Sys_error _ -> None

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_file_atomic path contents =
  let dir = Filename.dirname path in
  mkdir_p dir;
  let tmp = Filename.temp_file ~temp_dir:dir "result" ".tmp" in
  (try
     let oc = open_out_bin tmp in
     Fun.protect ~finally:(fun () -> close_out oc)
       (fun () -> output_string oc contents);
     Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e)

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.mem key with
      | Some v ->
        t.hits <- t.hits + 1;
        with_metrics t (fun m -> Obs.Metric.Counter.incr m.m_hits);
        Some v
      | None ->
        match Option.bind (path_of t key) read_file with
        | Some v ->
          Hashtbl.replace t.mem key v;
          t.hits <- t.hits + 1;
          t.disk_hits <- t.disk_hits + 1;
          with_metrics t (fun m ->
              Obs.Metric.Counter.incr m.m_hits;
              Obs.Metric.Counter.incr m.m_disk_hits);
          Some v
        | None ->
          t.misses <- t.misses + 1;
          with_metrics t (fun m -> Obs.Metric.Counter.incr m.m_misses);
          None)

let store t key value =
  locked t (fun () ->
      Hashtbl.replace t.mem key value;
      t.stores <- t.stores + 1;
      with_metrics t (fun m -> Obs.Metric.Counter.incr m.m_stores);
      match path_of t key with
      | Some path ->
        write_file_atomic path value;
        with_metrics t (fun m ->
            Obs.Metric.Counter.add m.m_disk_bytes (String.length value))
      | None -> ())

let stats t =
  locked t (fun () ->
      { hits = t.hits; disk_hits = t.disk_hits; misses = t.misses;
        stores = t.stores })

let dir t = t.dir
