type metric_handles = {
  m_hits : Obs.Metric.Counter.t;
  m_disk_hits : Obs.Metric.Counter.t;
  m_misses : Obs.Metric.Counter.t;
  m_stores : Obs.Metric.Counter.t;
  m_disk_bytes : Obs.Metric.Counter.t;
  m_corrupt : Obs.Metric.Counter.t;
  m_write_errors : Obs.Metric.Counter.t;
}

type t = {
  dir : string option;
  fault : Fault.Plan.t option;
  lock : Mutex.t;
  mem : (string, string) Hashtbl.t;
  metrics : metric_handles option;
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable corrupt : int;
  mutable write_errors : int;
}

type stats = {
  hits : int;
  disk_hits : int;
  misses : int;
  stores : int;
  corrupt : int;
  write_errors : int;
}

let resolve_metrics reg =
  let c name help = Obs.Registry.counter reg ~help name in
  { m_hits = c "small_cache_hits_total" "result-cache hits (memory + disk)";
    m_disk_hits = c "small_cache_disk_hits_total" "result-cache hits loaded from disk";
    m_misses = c "small_cache_misses_total" "result-cache misses";
    m_stores = c "small_cache_stores_total" "results stored";
    m_disk_bytes = c "small_cache_disk_bytes_total" "result bytes written to disk";
    m_corrupt = c "small_cache_corrupt_total" "corrupt entries quarantined on read";
    m_write_errors = c "small_cache_write_errors_total" "failed disk writes (memory kept)" }

let with_metrics t f = match t.metrics with None -> () | Some m -> f m

let create ?metrics ?dir ?fault () =
  { dir; fault; lock = Mutex.create (); mem = Hashtbl.create 64;
    metrics = Option.map resolve_metrics metrics;
    hits = 0; disk_hits = 0; misses = 0; stores = 0; corrupt = 0; write_errors = 0 }

let key ~trace_digest ~job_digest =
  Digest.to_hex (Digest.string (trace_digest ^ "+" ^ job_digest))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Two-level layout keeps any one directory small under big sweeps. *)
let path_of t key =
  Option.map
    (fun dir -> Filename.concat (Filename.concat dir (String.sub key 0 2)) (key ^ ".result"))
    t.dir

(* ---- on-disk entry format ----

   "SMRC1 <md5hex-of-value> <value-length>\n<value>"

   The header binds the payload to its own digest, so a torn write, a
   flipped byte, or a foreign file in the cache directory is detected on
   read instead of being served as a result. *)

let entry_magic = "SMRC1"

let encode_entry value =
  Printf.sprintf "%s %s %d\n%s" entry_magic
    (Digest.to_hex (Digest.string value)) (String.length value) value

let decode_entry raw =
  match String.index_opt raw '\n' with
  | None -> Error "no header line"
  | Some nl ->
    match String.split_on_char ' ' (String.sub raw 0 nl) with
    | [ magic; hex; len ] ->
      if magic <> entry_magic then Error "bad magic"
      else
        let value = String.sub raw (nl + 1) (String.length raw - nl - 1) in
        (match int_of_string_opt len with
         | Some n when n = String.length value ->
           if Digest.to_hex (Digest.string value) = hex then Ok value
           else Error "digest mismatch"
         | Some _ -> Error "length mismatch"
         | None -> Error "bad length field")
    | _ -> Error "malformed header"

let read_file path =
  match open_in_bin path with
  | ic ->
    Some
      (Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
           really_input_string ic (in_channel_length ic)))
  | exception Sys_error _ -> None

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* A corrupt entry is moved aside to [path ^ ".corrupt"] (never deleted:
   the evidence is worth keeping) and the lookup becomes a miss, so the
   caller recomputes and overwrites with a good entry. *)
let quarantine (t : t) path =
  t.corrupt <- t.corrupt + 1;
  with_metrics t (fun m -> Obs.Metric.Counter.incr m.m_corrupt);
  try Sys.rename path (path ^ ".corrupt") with Sys_error _ -> ()

let write_file_atomic t path contents =
  match Option.bind t.fault (fun p -> Fault.Plan.on_write p ~site:"cache.store") with
  | Some Fault.Plan.Write_error -> raise (Sys_error (path ^ ": injected write error"))
  | fault ->
    let contents =
      match fault with
      | Some (Fault.Plan.Torn_write keep) ->
        (* lying disk: a strict prefix lands and the write "succeeds" *)
        let n = max 1 (min (String.length contents - 1)
                         (int_of_float (keep *. float_of_int (String.length contents)))) in
        String.sub contents 0 n
      | _ -> contents
    in
    let dir = Filename.dirname path in
    mkdir_p dir;
    let tmp = Filename.temp_file ~temp_dir:dir "result" ".tmp" in
    (try
       let oc = open_out_bin tmp in
       Fun.protect ~finally:(fun () -> close_out oc)
         (fun () -> output_string oc contents);
       Sys.rename tmp path
     with e ->
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e)

let find t key =
  locked t (fun () ->
      let miss () =
        t.misses <- t.misses + 1;
        with_metrics t (fun m -> Obs.Metric.Counter.incr m.m_misses);
        None
      in
      match Hashtbl.find_opt t.mem key with
      | Some v ->
        t.hits <- t.hits + 1;
        with_metrics t (fun m -> Obs.Metric.Counter.incr m.m_hits);
        Some v
      | None ->
        match path_of t key with
        | None -> miss ()
        | Some path ->
          match read_file path with
          | None -> miss ()
          | Some raw ->
            match decode_entry raw with
            | Ok v ->
              Hashtbl.replace t.mem key v;
              t.hits <- t.hits + 1;
              t.disk_hits <- t.disk_hits + 1;
              with_metrics t (fun m ->
                  Obs.Metric.Counter.incr m.m_hits;
                  Obs.Metric.Counter.incr m.m_disk_hits);
              Some v
            | Error _ ->
              quarantine t path;
              miss ())

(* The memory entry is installed unconditionally; a failed disk write
   degrades persistence, never correctness. *)
let store t key value =
  locked t (fun () ->
      Hashtbl.replace t.mem key value;
      t.stores <- t.stores + 1;
      with_metrics t (fun m -> Obs.Metric.Counter.incr m.m_stores);
      match path_of t key with
      | Some path ->
        let entry = encode_entry value in
        (match write_file_atomic t path entry with
         | () ->
           with_metrics t (fun m ->
               Obs.Metric.Counter.add m.m_disk_bytes (String.length entry))
         | exception Sys_error _ ->
           t.write_errors <- t.write_errors + 1;
           with_metrics t (fun m -> Obs.Metric.Counter.incr m.m_write_errors))
      | None -> ())

let stats t =
  locked t (fun () ->
      { hits = t.hits; disk_hits = t.disk_hits; misses = t.misses;
        stores = t.stores; corrupt = t.corrupt; write_errors = t.write_errors })

let dir t = t.dir
