type 'a outcome =
  | Done of 'a
  | Failed of string
  | Cancelled
  | Timed_out

exception Stop

type 'a state =
  | Pending
  | Running
  | Finished of 'a outcome

type 'a ticket = {
  job : should_stop:(unit -> bool) -> 'a;
  timeout : float option;
  mutable state : 'a state;
  mutable stop_requested : bool;
}

type 'a t = {
  lock : Mutex.t;
  work_available : Condition.t;   (* queue gained an item, or shutdown *)
  job_finished : Condition.t;     (* some ticket reached Finished *)
  queue : 'a ticket Queue.t;
  capacity : int;
  mutable shutting_down : bool;
  mutable running : int;
  mutable completed : int;
  mutable rejected : int;
  mutable cancelled_jobs : int;
  mutable timed_out_jobs : int;
  mutable workers : unit Domain.t list;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let finalize_locked t tk outcome =
  tk.state <- Finished outcome;
  t.completed <- t.completed + 1;
  (match outcome with
   | Cancelled -> t.cancelled_jobs <- t.cancelled_jobs + 1
   | Timed_out -> t.timed_out_jobs <- t.timed_out_jobs + 1
   | Done _ | Failed _ -> ());
  Condition.broadcast t.job_finished

let run_job t tk =
  let started = Unix.gettimeofday () in
  let deadline = Option.map (fun s -> started +. s) tk.timeout in
  let past_deadline () =
    match deadline with Some d -> Unix.gettimeofday () > d | None -> false
  in
  let should_stop () = tk.stop_requested || past_deadline () in
  let outcome =
    match tk.job ~should_stop with
    | v ->
      if tk.stop_requested then Cancelled
      else if past_deadline () then Timed_out
      else Done v
    | exception Stop -> if tk.stop_requested then Cancelled else Timed_out
    | exception e -> Failed (Printexc.to_string e)
  in
  locked t (fun () ->
      t.running <- t.running - 1;
      finalize_locked t tk outcome)

let rec worker_loop t =
  let job =
    locked t (fun () ->
        while Queue.is_empty t.queue && not t.shutting_down do
          Condition.wait t.work_available t.lock
        done;
        match Queue.take_opt t.queue with
        | None -> None                       (* shutting down, queue drained *)
        | Some tk ->
          (match tk.state with
           | Finished _ -> Some None         (* cancelled while queued: skip *)
           | Pending | Running ->
             tk.state <- Running;
             t.running <- t.running + 1;
             Some (Some tk)))
  in
  match job with
  | None -> ()
  | Some None -> worker_loop t
  | Some (Some tk) ->
    run_job t tk;
    worker_loop t

let create ~workers ~capacity () =
  if capacity < 1 then invalid_arg "Scheduler.create: capacity < 1";
  let t =
    { lock = Mutex.create (); work_available = Condition.create ();
      job_finished = Condition.create (); queue = Queue.create (); capacity;
      shutting_down = false; running = 0; completed = 0; rejected = 0;
      cancelled_jobs = 0; timed_out_jobs = 0; workers = [] }
  in
  t.workers <-
    List.init (max 1 workers) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t ?timeout job =
  locked t (fun () ->
      if t.shutting_down then Error `Shutdown
      else if Queue.length t.queue >= t.capacity then begin
        t.rejected <- t.rejected + 1;
        Error `Queue_full
      end
      else begin
        let tk = { job; timeout; state = Pending; stop_requested = false } in
        Queue.push tk t.queue;
        Condition.signal t.work_available;
        Ok tk
      end)

let await t tk =
  locked t (fun () ->
      let rec wait () =
        match tk.state with
        | Finished outcome -> outcome
        | Pending | Running -> Condition.wait t.job_finished t.lock; wait ()
      in
      wait ())

let cancel t tk =
  locked t (fun () ->
      match tk.state with
      | Pending ->
        tk.stop_requested <- true;
        (* finalise now; the worker skips Finished tickets at the pop *)
        finalize_locked t tk Cancelled;
        true
      | Running -> tk.stop_requested <- true; false
      | Finished _ -> false)

type stats = {
  queued : int;
  running : int;
  completed : int;
  rejected : int;
  cancelled : int;
  timed_out : int;
}

let stats t =
  locked t (fun () ->
      (* queued counts only live tickets, not cancelled husks *)
      let live =
        Queue.fold
          (fun n (tk : _ ticket) ->
             match tk.state with Pending -> n + 1 | Running | Finished _ -> n)
          0 t.queue
      in
      { queued = live; running = t.running; completed = t.completed;
        rejected = t.rejected; cancelled = t.cancelled_jobs;
        timed_out = t.timed_out_jobs })

let shutdown t =
  let already =
    locked t (fun () ->
        let a = t.shutting_down in
        t.shutting_down <- true;
        Condition.broadcast t.work_available;
        a)
  in
  if not already then List.iter Domain.join t.workers
