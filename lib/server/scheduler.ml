type 'a outcome =
  | Done of 'a
  | Failed of string
  | Cancelled
  | Timed_out
  | Shed

exception Stop

type 'a state =
  | Pending
  | Running
  | Finished of 'a outcome

type 'a ticket = {
  job : should_stop:(unit -> bool) -> 'a;
  timeout : float option;
  priority : int;
  retries : int;                  (* additional attempts allowed after the first *)
  abs_deadline : float;           (* absolute wall-clock cutoff covering queue
                                     wait too; infinity when unset *)
  mutable attempts : int;         (* failed runs so far *)
  mutable deadline : float;       (* nan until the first run starts; then
                                     absolute, so retries never extend it *)
  mutable last_backoff : float;   (* previous retry sleep, for decorrelated jitter *)
  mutable state : 'a state;
  mutable stop_requested : bool;
  mutable submitted_at : float;   (* Obs.Span clock; 0. when unmetered *)
}

(* Handles resolved once at [create]; every hot-path touch is a single
   atomic op behind one option test.  All gauge/counter updates happen
   under the scheduler lock, in the same critical sections as the plain
   counters they mirror, so snapshot invariants (outcome counters sum to
   completed, queue depth matches live queue) hold at any instant. *)
type metric_handles = {
  queue_depth : Obs.Metric.Gauge.t;     (* live (non-cancelled) queued *)
  inflight : Obs.Metric.Gauge.t;        (* running right now *)
  queue_wait : Obs.Metric.Histogram.t;  (* submit -> start, seconds *)
  run_time : Obs.Metric.Histogram.t;    (* start -> finish, seconds *)
  done_jobs : Obs.Metric.Counter.t;     (* small_sched_jobs_total family *)
  failed_jobs : Obs.Metric.Counter.t;
  cancelled_jobs : Obs.Metric.Counter.t;
  timed_out_jobs : Obs.Metric.Counter.t;
  rejected_jobs : Obs.Metric.Counter.t;
  shed_jobs : Obs.Metric.Counter.t;
  retried : Obs.Metric.Counter.t;
}

type 'a t = {
  lock : Mutex.t;
  work_available : Condition.t;   (* queue gained an item, or shutdown *)
  job_finished : Condition.t;     (* some ticket reached Finished *)
  queue : 'a ticket Queue.t;
  capacity : int;
  backoff : float;                (* base retry backoff, seconds *)
  jitter : Util.Rng.t option;     (* decorrelated-jitter stream; draws under lock *)
  metrics : metric_handles option;
  mutable shutting_down : bool;
  mutable live_queued : int;      (* Pending tickets in the queue, husks excluded *)
  mutable running : int;
  mutable completed : int;
  mutable rejected : int;
  mutable cancelled_jobs : int;
  mutable timed_out_jobs : int;
  mutable shed_jobs : int;
  mutable retried : int;
  mutable workers : unit Domain.t list;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let resolve_metrics reg =
  let jobs outcome =
    Obs.Registry.counter reg ~help:"finalised jobs by outcome"
      ~labels:[ ("outcome", outcome) ] "small_sched_jobs_total"
  in
  { queue_depth =
      Obs.Registry.gauge reg ~help:"live jobs waiting in the queue"
        "small_sched_queue_depth";
    inflight =
      Obs.Registry.gauge reg ~help:"jobs running on worker domains"
        "small_sched_inflight";
    queue_wait =
      Obs.Registry.histogram reg ~help:"seconds from submit to start"
        "small_sched_queue_wait_seconds";
    run_time =
      Obs.Registry.histogram reg ~help:"seconds from start to finish"
        "small_sched_run_seconds";
    done_jobs = jobs "done";
    failed_jobs = jobs "failed";
    cancelled_jobs = jobs "cancelled";
    timed_out_jobs = jobs "timed_out";
    rejected_jobs = jobs "rejected";
    shed_jobs = jobs "shed";
    retried =
      Obs.Registry.counter reg ~help:"job attempts retried after a failure"
        "small_jobs_retried_total" }

let with_metrics t f = match t.metrics with None -> () | Some m -> f m

let finalize_locked t tk outcome =
  tk.state <- Finished outcome;
  t.completed <- t.completed + 1;
  (match outcome with
   | Cancelled -> t.cancelled_jobs <- t.cancelled_jobs + 1
   | Timed_out -> t.timed_out_jobs <- t.timed_out_jobs + 1
   | Shed -> t.shed_jobs <- t.shed_jobs + 1
   | Done _ | Failed _ -> ());
  with_metrics t (fun m ->
      Obs.Metric.Counter.incr
        (match outcome with
         | Done _ -> m.done_jobs
         | Failed _ -> m.failed_jobs
         | Cancelled -> m.cancelled_jobs
         | Timed_out -> m.timed_out_jobs
         | Shed -> m.shed_jobs));
  Condition.broadcast t.job_finished

(* The worker's verdict on one run: settle the ticket, or put it back. *)
type 'a verdict =
  | Settle of 'a outcome
  | Retry of string   (* the failure being retried; carries the backoff below *)

let run_job t tk =
  let started = Unix.gettimeofday () in
  (* the deadline is fixed at the FIRST start: retries spend the same
     budget, they do not extend it *)
  if Float.is_nan tk.deadline then
    tk.deadline <-
      Float.min
        (match tk.timeout with Some s -> started +. s | None -> infinity)
        tk.abs_deadline;
  let past_deadline () = Unix.gettimeofday () > tk.deadline in
  let should_stop () = tk.stop_requested || past_deadline () in
  let span = match t.metrics with Some _ -> Some (Obs.Span.start ()) | None -> None in
  let verdict =
    match tk.job ~should_stop with
    | v ->
      if tk.stop_requested then Settle Cancelled
      else if past_deadline () then Settle Timed_out
      else Settle (Done v)
    | exception Stop -> Settle (if tk.stop_requested then Cancelled else Timed_out)
    | exception e ->
      tk.attempts <- tk.attempts + 1;
      if tk.attempts <= tk.retries && not (should_stop ()) then
        Retry (Printexc.to_string e)
      else Settle (Failed (Printexc.to_string e))
  in
  let finish_run () =
    t.running <- t.running - 1;
    with_metrics t (fun m ->
        Obs.Metric.Gauge.decr m.inflight;
        match span with
        | Some s -> Obs.Span.finish s m.run_time
        | None -> ())
  in
  match verdict with
  | Settle outcome ->
    locked t (fun () ->
        finish_run ();
        finalize_locked t tk outcome)
  | Retry _ ->
    (* backoff slept on the worker outside the lock; the ticket stays
       accounted as in-flight while it waits.  With a jitter stream the
       sleep is decorrelated — uniform in [base, 3 * previous sleep],
       capped — so synchronized failures fan out instead of retrying in
       lockstep; without one it is the legacy pure exponential. *)
    let sleep_for =
      match t.jitter with
      | None -> t.backoff *. Float.pow 2. (float_of_int (tk.attempts - 1))
      | Some rng ->
        locked t (fun () ->
            let cap = t.backoff *. 64. in
            let hi = Float.max t.backoff (tk.last_backoff *. 3.) in
            let u = Util.Rng.float rng in
            let d = Float.min cap (t.backoff +. (u *. (hi -. t.backoff))) in
            tk.last_backoff <- d;
            d)
    in
    Unix.sleepf sleep_for;
    locked t (fun () ->
        if tk.stop_requested then begin
          finish_run ();
          finalize_locked t tk Cancelled
        end
        else begin
          finish_run ();
          tk.state <- Pending;
          t.retried <- t.retried + 1;
          t.live_queued <- t.live_queued + 1;
          with_metrics t (fun m ->
              Obs.Metric.Counter.incr m.retried;
              Obs.Metric.Gauge.incr m.queue_depth;
              tk.submitted_at <- Obs.Span.now ());
          Queue.push tk t.queue;
          Condition.signal t.work_available
        end)

let rec worker_loop t =
  let job =
    locked t (fun () ->
        while Queue.is_empty t.queue && not t.shutting_down do
          Condition.wait t.work_available t.lock
        done;
        match Queue.take_opt t.queue with
        | None -> None                       (* shutting down, queue drained *)
        | Some tk ->
          (match tk.state with
           | Finished _ -> Some None         (* cancelled/shed while queued: skip *)
           | Pending | Running ->
             t.live_queued <- t.live_queued - 1;
             with_metrics t (fun m ->
                 Obs.Metric.Gauge.decr m.queue_depth;
                 Obs.Metric.Histogram.record m.queue_wait
                   (Float.max 0. (Obs.Span.now () -. tk.submitted_at)));
             (* a ticket whose deadline already passed — run deadline on
                a requeue, or absolute deadline burnt by queue wait — is
                dead on arrival: settle it without burning a run *)
             let now = Unix.gettimeofday () in
             if ((not (Float.is_nan tk.deadline)) && now > tk.deadline)
                || now > tk.abs_deadline
             then begin
               finalize_locked t tk Timed_out;
               Some None
             end
             else begin
               tk.state <- Running;
               t.running <- t.running + 1;
               with_metrics t (fun m -> Obs.Metric.Gauge.incr m.inflight);
               Some (Some tk)
             end))
  in
  match job with
  | None -> ()
  | Some None -> worker_loop t
  | Some (Some tk) ->
    (* [run_job] catches everything a job can raise, but if the
       bookkeeping around it ever raises, the bare recursion would kill
       the worker domain with the ticket still Running: awaiters would
       hang and the in-flight count would never drop.  Settle the ticket
       and keep the worker alive instead. *)
    (try run_job t tk
     with e ->
       locked t (fun () ->
           match tk.state with
           | Finished _ -> ()
           | Pending | Running ->
             t.running <- t.running - 1;
             with_metrics t (fun m -> Obs.Metric.Gauge.decr m.inflight);
             finalize_locked t tk (Failed (Printexc.to_string e))));
    worker_loop t

let create ?metrics ?(backoff = 0.01) ?jitter_seed ~workers ~capacity () =
  if capacity < 1 then invalid_arg "Scheduler.create: capacity < 1";
  if backoff < 0. then invalid_arg "Scheduler.create: backoff < 0";
  let t =
    { lock = Mutex.create (); work_available = Condition.create ();
      job_finished = Condition.create (); queue = Queue.create (); capacity;
      backoff;
      jitter = Option.map (fun seed -> Util.Rng.create ~seed) jitter_seed;
      metrics = Option.map resolve_metrics metrics;
      shutting_down = false; live_queued = 0; running = 0; completed = 0;
      rejected = 0; cancelled_jobs = 0; timed_out_jobs = 0; shed_jobs = 0;
      retried = 0; workers = [] }
  in
  t.workers <-
    List.init (max 1 workers) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t ?(priority = 0) ?timeout ?(retries = 0) ?deadline job =
  if retries < 0 then invalid_arg "Scheduler.submit: retries < 0";
  locked t (fun () ->
      if t.shutting_down then Error `Shutdown
      else if t.live_queued >= t.capacity then begin
        t.rejected <- t.rejected + 1;
        with_metrics t (fun m -> Obs.Metric.Counter.incr m.rejected_jobs);
        Error `Queue_full
      end
      else begin
        let tk =
          { job; timeout; priority; retries;
            abs_deadline = Option.value deadline ~default:infinity;
            attempts = 0; deadline = Float.nan; last_backoff = 0.;
            state = Pending; stop_requested = false; submitted_at = 0. }
        in
        with_metrics t (fun m ->
            tk.submitted_at <- Obs.Span.now ();
            Obs.Metric.Gauge.incr m.queue_depth);
        t.live_queued <- t.live_queued + 1;
        Queue.push tk t.queue;
        Condition.signal t.work_available;
        Ok tk
      end)

(* Overload relief: finalise the lowest-priority queued job strictly
   below [priority] as {!Shed}, making room for a more important
   submission.  The husk stays in the queue; the pop loop skips it. *)
let shed_lower t ~priority =
  locked t (fun () ->
      let victim =
        Queue.fold
          (fun best (tk : _ ticket) ->
             match tk.state with
             | Pending when tk.priority < priority ->
               (match best with
                | Some (b : _ ticket) when b.priority <= tk.priority -> best
                | _ -> Some tk)
             | _ -> best)
          None t.queue
      in
      match victim with
      | None -> false
      | Some tk ->
        tk.stop_requested <- true;
        t.live_queued <- t.live_queued - 1;
        with_metrics t (fun m -> Obs.Metric.Gauge.decr m.queue_depth);
        finalize_locked t tk Shed;
        true)

let await t tk =
  locked t (fun () ->
      let rec wait () =
        match tk.state with
        | Finished outcome -> outcome
        | Pending | Running -> Condition.wait t.job_finished t.lock; wait ()
      in
      wait ())

let cancel t tk =
  locked t (fun () ->
      match tk.state with
      | Pending ->
        tk.stop_requested <- true;
        (* finalise now; the worker skips Finished tickets at the pop *)
        t.live_queued <- t.live_queued - 1;
        with_metrics t (fun m -> Obs.Metric.Gauge.decr m.queue_depth);
        finalize_locked t tk Cancelled;
        true
      | Running -> tk.stop_requested <- true; false
      | Finished _ -> false)

type stats = {
  queued : int;
  running : int;
  completed : int;
  rejected : int;
  cancelled : int;
  timed_out : int;
  shed : int;
  retried : int;
}

let stats t =
  locked t (fun () ->
      { queued = t.live_queued; running = t.running; completed = t.completed;
        rejected = t.rejected; cancelled = t.cancelled_jobs;
        timed_out = t.timed_out_jobs; shed = t.shed_jobs; retried = t.retried })

let shutdown t =
  let already =
    locked t (fun () ->
        let a = t.shutting_down in
        t.shutting_down <- true;
        Condition.broadcast t.work_available;
        a)
  in
  if not already then List.iter Domain.join t.workers
