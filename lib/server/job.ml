module D = Sexp.Datum

type source =
  | Workload of string
  | Trace_file of string

type spec =
  | Stats
  | Analyze of { separation : float }
  | Simulate of Core.Simulator.config
  | Knee of Core.Simulator.config

type t = {
  source : source;
  spec : spec;
  timeout : float option;
  priority : int;
  deadline : float option;
  wire_id : int option;
}

(* ---- parsing ---- *)

exception Bad of string

let bad fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt

let name_of = function
  | D.Sym s -> s
  | D.Str s -> s
  | d -> bad "expected a name, got %s" (Sexp.to_string d)

let float_of = function
  | D.Int n -> float_of_int n
  | D.Sym s | D.Str s ->
    (match float_of_string_opt s with
     | Some f -> f
     | None -> bad "expected a number, got %s" s)
  | d -> bad "expected a number, got %s" (Sexp.to_string d)

let int_of = function
  | D.Int n -> n
  | d -> bad "expected an integer, got %s" (Sexp.to_string d)

(* Each clause is [(key args...)]; returns (key, args). *)
let clause = function
  | D.Cons (D.Sym key, args) when D.is_list args -> (key, D.to_list args)
  | d -> bad "expected a (key ...) clause, got %s" (Sexp.to_string d)

let source_of_clause = function
  | ("workload", [ n ]) -> Some (Workload (name_of n))
  | ("trace-file", [ p ]) -> Some (Trace_file (name_of p))
  | _ -> None

let config_of_clauses clauses =
  List.fold_left
    (fun (cfg : Core.Simulator.config) cl ->
       match cl with
       | ("size", [ n ]) -> { cfg with table_size = int_of n }
       | ("policy", [ D.Sym "one" ]) -> { cfg with policy = Core.Lpt.Compress_one }
       | ("policy", [ D.Sym "all" ]) -> { cfg with policy = Core.Lpt.Compress_all }
       | ("policy", [ d ]) -> bad "policy must be one|all, got %s" (Sexp.to_string d)
       | ("seed", [ n ]) -> { cfg with seed = int_of n }
       | ("arg-prob", [ f ]) -> { cfg with arg_prob = float_of f }
       | ("loc-prob", [ f ]) -> { cfg with loc_prob = float_of f }
       | ("bind-prob", [ f ]) -> { cfg with bind_prob = float_of f }
       | ("read-prob", [ f ]) -> { cfg with read_prob = float_of f }
       | ("split-counts", []) -> { cfg with split_counts = true }
       | ("eager-decrement", []) -> { cfg with eager_decrement = true }
       | ("cache", [ lines; line ]) ->
         { cfg with
           cache = Some { Core.Simulator.cache_lines = int_of lines;
                          cache_line_size = int_of line } }
       | (key, _) -> bad "unknown simulate clause (%s ...)" key)
    Core.Simulator.default_config clauses

let of_sexp d =
  try
    let verb, clauses =
      match d with
      | D.Cons (D.Sym verb, rest) when D.is_list rest -> (verb, D.to_list rest)
      | d -> bad "a job is (verb (clause)...), got %s" (Sexp.to_string d)
    in
    let clauses = List.map clause clauses in
    let source =
      match List.filter_map source_of_clause clauses with
      | [ s ] -> s
      | [] -> bad "missing (workload NAME) or (trace-file PATH)"
      | _ -> bad "more than one trace source"
    in
    (match source with
     | Workload w when Workloads.Registry.find w = None ->
       bad "unknown workload %s" w
     | Workload _ | Trace_file _ -> ());
    let timeout = ref None in
    let priority = ref 0 in
    let deadline = ref None in
    let wire_id = ref None in
    let rest =
      List.filter
        (fun cl ->
           match cl with
           | ("timeout", [ f ]) -> timeout := Some (float_of f); false
           | ("priority", [ n ]) -> priority := int_of n; false
           | ("deadline", [ f ]) -> deadline := Some (float_of f); false
           | ("id", [ n ]) -> wire_id := Some (int_of n); false
           | cl -> source_of_clause cl = None)
        clauses
    in
    let spec =
      match verb, rest with
      | "stats", [] -> Stats
      | "stats", _ -> bad "stats takes no clauses beyond the source"
      | "analyze", [] -> Analyze { separation = 0.10 }
      | "analyze", [ ("separation", [ f ]) ] -> Analyze { separation = float_of f }
      | "analyze", _ -> bad "analyze accepts only (separation F)"
      | "simulate", cls -> Simulate (config_of_clauses cls)
      | "knee", cls -> Knee (config_of_clauses cls)
      | verb, _ -> bad "unknown job verb %s" verb
    in
    Ok { source; spec; timeout = !timeout; priority = !priority;
         deadline = !deadline; wire_id = !wire_id }
  with Bad msg -> Error msg

let parse line =
  match Sexp.parse line with
  | d -> of_sexp d
  | exception Sexp.Reader.Parse_error msg -> Error ("parse error: " ^ msg)

(* ---- printing ---- *)

let float_datum f =
  (* exact if integral, else full precision; the reader gives it back to
     [float_of] verbatim *)
  if Float.is_integer f && Float.abs f < 1e15 then D.int (int_of_float f)
  else D.sym (Printf.sprintf "%.17g" f)

let source_to_sexp = function
  | Workload w -> D.list [ D.sym "workload"; D.sym w ]
  | Trace_file p -> D.list [ D.sym "trace-file"; D.str p ]

let config_clauses (c : Core.Simulator.config) =
  let d = Core.Simulator.default_config in
  List.concat
    [ (if c.table_size <> d.table_size then
         [ D.list [ D.sym "size"; D.int c.table_size ] ] else []);
      (if c.policy <> d.policy then [ D.list [ D.sym "policy"; D.sym "all" ] ] else []);
      (if c.seed <> d.seed then [ D.list [ D.sym "seed"; D.int c.seed ] ] else []);
      (if c.arg_prob <> d.arg_prob then
         [ D.list [ D.sym "arg-prob"; float_datum c.arg_prob ] ] else []);
      (if c.loc_prob <> d.loc_prob then
         [ D.list [ D.sym "loc-prob"; float_datum c.loc_prob ] ] else []);
      (if c.bind_prob <> d.bind_prob then
         [ D.list [ D.sym "bind-prob"; float_datum c.bind_prob ] ] else []);
      (if c.read_prob <> d.read_prob then
         [ D.list [ D.sym "read-prob"; float_datum c.read_prob ] ] else []);
      (if c.split_counts then [ D.list [ D.sym "split-counts" ] ] else []);
      (if c.eager_decrement then [ D.list [ D.sym "eager-decrement" ] ] else []);
      (match c.cache with
       | None -> []
       | Some cc ->
         [ D.list [ D.sym "cache"; D.int cc.cache_lines; D.int cc.cache_line_size ] ]) ]

let to_sexp t =
  let verb, clauses =
    match t.spec with
    | Stats -> ("stats", [])
    | Analyze { separation } ->
      ("analyze", [ D.list [ D.sym "separation"; float_datum separation ] ])
    | Simulate c -> ("simulate", config_clauses c)
    | Knee c -> ("knee", config_clauses c)
  in
  let timeout =
    match t.timeout with
    | None -> []
    | Some f -> [ D.list [ D.sym "timeout"; float_datum f ] ]
  in
  let priority =
    if t.priority = 0 then []
    else [ D.list [ D.sym "priority"; D.int t.priority ] ]
  in
  let deadline =
    match t.deadline with
    | None -> []
    | Some f -> [ D.list [ D.sym "deadline"; float_datum f ] ]
  in
  let wire_id =
    match t.wire_id with
    | None -> []
    | Some n -> [ D.list [ D.sym "id"; D.int n ] ]
  in
  D.list
    ((D.sym verb :: source_to_sexp t.source :: clauses)
     @ timeout @ priority @ deadline @ wire_id)

let describe t =
  let src = match t.source with Workload w -> w | Trace_file p -> p in
  match t.spec with
  | Stats -> Printf.sprintf "stats %s" src
  | Analyze { separation } -> Printf.sprintf "analyze %s sep=%g" src separation
  | Simulate c -> Printf.sprintf "simulate %s size=%d seed=%d" src c.table_size c.seed
  | Knee c -> Printf.sprintf "knee %s seed=%d" src c.seed

let spec_fingerprint = function
  | Stats -> "job:v1 stats"
  | Analyze { separation } -> Printf.sprintf "job:v1 analyze sep=%h" separation
  | Simulate c -> "job:v1 simulate " ^ Core.Simulator.config_fingerprint c
  | Knee c -> "job:v1 knee " ^ Core.Simulator.config_fingerprint c

let digest t = Digest.to_hex (Digest.string (spec_fingerprint t.spec))
