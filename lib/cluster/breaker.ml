(* Per-shard circuit breaker.

   Closed counts consecutive failures; at the threshold it opens and
   stops admitting traffic.  After the cooldown the next [allow] admits
   exactly one half-open trial: a success closes the breaker, a failure
   re-arms the cooldown.  Queue depth is a soft signal — a closed
   breaker over its depth limit refuses admission without changing
   state, which is what turns the PR-4/PR-6 reactive overload ladder
   into preemptive routing-around. *)

type state = Closed | Half_open | Open

type config = {
  failures : int;
  cooldown : float;
  rtt_limit : float;
  queue_limit : int;
}

let default =
  { failures = 4; cooldown = 1.0; rtt_limit = infinity; queue_limit = 0 }

type internal = C | O

type t = {
  cfg : config;
  m : Mutex.t;
  on_open : unit -> unit;
  mutable st : internal;
  mutable consecutive : int;     (* failures since the last success (Closed) *)
  mutable opened_at : float;
  mutable trial : bool;          (* a half-open probe is in flight *)
  mutable opens : int;
  mutable last_depth : int;
}

let create ?(config = default) ?(on_open = fun () -> ()) () =
  if config.failures < 0 then invalid_arg "Breaker.create: failures < 0";
  if config.cooldown < 0. then invalid_arg "Breaker.create: cooldown < 0";
  if config.queue_limit < 0 then invalid_arg "Breaker.create: queue_limit < 0";
  { cfg = config; m = Mutex.create (); on_open;
    st = C; consecutive = 0; opened_at = 0.; trial = false; opens = 0;
    last_depth = 0 }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let now () = Unix.gettimeofday ()

let state t =
  locked t (fun () ->
      match t.st with
      | C -> Closed
      | O -> if now () -. t.opened_at >= t.cfg.cooldown then Half_open else Open)

let state_name = function
  | Closed -> "closed"
  | Half_open -> "half_open"
  | Open -> "open"

(* Stats exposure uses a numeric gauge: 0 closed, 1 half-open, 2 open. *)
let state_code = function Closed -> 0 | Half_open -> 1 | Open -> 2

let allow t =
  locked t (fun () ->
      match t.st with
      | C -> t.cfg.queue_limit = 0 || t.last_depth <= t.cfg.queue_limit
      | O ->
        if now () -. t.opened_at >= t.cfg.cooldown && not t.trial then begin
          t.trial <- true;      (* exactly one probe per cooldown window *)
          true
        end
        else false)

let open_locked t =
  (match t.st with
   | C -> t.on_open (); t.opens <- t.opens + 1
   | O -> ());
  t.st <- O;
  t.opened_at <- now ();
  t.trial <- false

let record_success t =
  locked t (fun () ->
      match t.st with
      | C -> t.consecutive <- 0
      | O ->
        if t.trial then begin
          t.st <- C;
          t.consecutive <- 0;
          t.trial <- false
        end)

let record_failure t =
  locked t (fun () ->
      match t.st with
      | C ->
        t.consecutive <- t.consecutive + 1;
        if t.cfg.failures > 0 && t.consecutive >= t.cfg.failures then
          open_locked t
      | O ->
        (* a failure while open (or of the half-open trial) re-arms the
           cooldown without re-counting an "open" transition *)
        t.opened_at <- now ();
        t.trial <- false)

let force_open t = locked t (fun () -> open_locked t)

let record_rtt t rtt =
  if Float.is_finite t.cfg.rtt_limit && rtt > t.cfg.rtt_limit then
    record_failure t
  else record_success t

let note_queue_depth t depth = locked t (fun () -> t.last_depth <- depth)

let opens t = locked t (fun () -> t.opens)
