type t = {
  vnodes : int;
  points : (int * int) array;   (* (hash, shard index), sorted by hash *)
  names : string array;
}

(* First 8 bytes of the MD5 as a non-negative int: stable across
   processes and OCaml versions, unlike Hashtbl.hash. *)
let hash s =
  let d = Digest.string s in
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v land max_int

let create ?(vnodes = 64) ids =
  if ids = [] then invalid_arg "Ring.create: no shards";
  if vnodes < 1 then invalid_arg "Ring.create: vnodes < 1";
  let names = Array.of_list ids in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun id ->
       if Hashtbl.mem seen id then
         invalid_arg ("Ring.create: duplicate shard id " ^ id);
       Hashtbl.add seen id ())
    names;
  let points =
    Array.init (Array.length names * vnodes) (fun k ->
        let i = k / vnodes and v = k mod vnodes in
        (hash (Printf.sprintf "%s#%d" names.(i) v), i))
  in
  Array.sort compare points;
  { vnodes; points; names }

let ids t = Array.to_list t.names
let size t = Array.length t.names

(* Index of the first point with hash >= h, wrapping past the top. *)
let point_at t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let owner t key = t.names.(snd t.points.(point_at t (hash key)))

let owners t key =
  let n = Array.length t.points in
  let start = point_at t (hash key) in
  let seen = Array.make (Array.length t.names) false in
  let acc = ref [] in
  let found = ref 0 in
  let i = ref 0 in
  while !found < Array.length t.names && !i < n do
    let _, s = t.points.((start + !i) mod n) in
    if not seen.(s) then begin
      seen.(s) <- true;
      incr found;
      acc := t.names.(s) :: !acc
    end;
    incr i
  done;
  List.rev !acc

let remove t id =
  let rest = List.filter (fun n -> n <> id) (ids t) in
  if List.length rest = Array.length t.names then
    invalid_arg ("Ring.remove: unknown shard " ^ id);
  if rest = [] then invalid_arg "Ring.remove: cannot remove the last shard";
  create ~vnodes:t.vnodes rest
