(** Sharded smalld: a consistent-hash ring over named shards, a
    cache-aware router speaking the newline-sexp wire protocol to N
    backend services, a shard health monitor, and a zipfian YCSB-style
    load harness — the cluster front behind [smallsim route] and
    [smallsim loadgen]. *)

module Ring = Ring
module Router = Router
module Health = Health
module Loadgen = Loadgen
module Breaker = Breaker
