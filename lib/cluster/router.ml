type endpoint =
  | Spawn of string array
  | Socket of string
  | Channels of in_channel * out_channel

type placement = Cache_aware | Hash_only | Uniform

type conn = {
  ic : in_channel;
  oc : out_channel;
}

(* One routed request.  [tried] records the shards that have actually
   seen it (set at send time), so failover and overload draining never
   bounce a job back to a shard that already refused it.  [at] is the
   live view — shards currently holding the item in flight — which is
   what deadline expiry and the hedge winner cancel against.  [id] is
   the router's wire id: every line sent to a shard carries it, every
   reply echoes it, so replies are matched by id rather than by stream
   position and a lost message is detectable. *)
type item = {
  id : int;
  line : string;                             (* the client's original line *)
  client_id : int option;                    (* client-supplied (id N), re-injected *)
  job : Server.Job.t option;                 (* parsed job, for wire rewriting *)
  kind : [ `Job of string option | `Raw ];   (* `Job carries the cache key *)
  deadline : float;                          (* absolute; [infinity] if none *)
  mutable tried : string list;
  mutable at : string list;
  mutable sent_at : float;
  mutable hedged : bool;
  mutable resends : int;
  mutable reply : string option;
  im : Mutex.t;
  icv : Condition.t;
}

type shard = {
  sid : string;
  endpoint : endpoint;
  mutable conn : conn option;
  mutable pid : int option;          (* spawned child, until reaped *)
  mutable alive : bool;
  q : item Queue.t;
  mutable inflight : int;            (* items in the batch at the shard *)
  wm : Mutex.t;                      (* write-side lock: batch payloads and
                                        control lines ((cancel), sync pings)
                                        interleave whole-line *)
  mutable disp : unit Domain.t option;
  mutable reviving : bool;           (* a revival claim is in progress *)
  mutable batch_seq : int;           (* dispatches so far, orders sync pings *)
  mutable batch_started : float;
  mutable sync_sent : float;
  mutable down_at : float;
  mutable partition_until : float;   (* chaos: one-way partition window *)
  mutable ping_ms : float;           (* last probe round-trip *)
  breaker : Breaker.t;
  routed : Obs.Metric.Counter.t;
  hits : Obs.Metric.Counter.t;       (* replies with "cached":true *)
  steals : Obs.Metric.Counter.t;     (* items stolen FROM this shard *)
  downs : Obs.Metric.Counter.t;
  lat : Obs.Metric.Histogram.t;      (* per-item round-trip, feeds hedging *)
  b_state : Obs.Metric.Gauge.t;      (* 0 closed / 1 half-open / 2 open *)
  up_g : Obs.Metric.Gauge.t;
}

type t = {
  ring : Ring.t;
  shards : shard array;
  placement : placement;
  batch_max : int;
  steal_min : int;
  fault : Fault.Plan.t option;       (* network/process chaos, seeded *)
  hedge_quantile : float;            (* 0 disables hedged execution *)
  hedge_floor : float;               (* never hedge faster than this *)
  stuck_after : float;               (* seconds before a sync ping probes a
                                        silent in-flight batch *)
  revive : bool;                     (* re-adopt crash-restarted shards *)
  metrics_file : string option;
  registry : Obs.Registry.t;
  m : Mutex.t;
  cv : Condition.t;                  (* new work / state change *)
  (* key -> shard whose result cache holds this key's value *)
  owners_tbl : (string, string) Hashtbl.t;
  digests : (string, string) Hashtbl.t;   (* trace-file path -> digest *)
  dm : Mutex.t;                           (* digest memo lock *)
  next_id : int Atomic.t;
  inflight_tbl : (int, item) Hashtbl.t;   (* router id -> live job item *)
  syncs : (int, string * int) Hashtbl.t;  (* sync ping id -> (sid, batch_seq) *)
  mutable rr : int;                       (* uniform round-robin cursor *)
  mutable stopping : bool;
  pacer_stop : bool Atomic.t;
  mutable pacer : unit Domain.t option;
  placements : (string * Obs.Metric.Counter.t) list;
  batch_seconds : Obs.Metric.Histogram.t;
  hedged_c : Obs.Metric.Counter.t;
  hedge_wins_c : Obs.Metric.Counter.t;
  expired_c : Obs.Metric.Counter.t;
  cancels_c : Obs.Metric.Counter.t;
  resends_c : Obs.Metric.Counter.t;
  revivals_c : Obs.Metric.Counter.t;
}

(* Placement decisions are capped from growing without bound on a
   long-lived router; the table is an optimisation over hash ownership,
   so dropping it only costs locality for a while. *)
let owners_cap = 1 lsl 18

(* A flush-detected loss is retried at most this many times before the
   client sees the typed shard_down reply. *)
let max_resends = 3

(* ---- wire helpers ---- *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let error_line msg =
  Server.Json.to_string
    (Server.Json.Obj
       [ ("status", Server.Json.Str "error"); ("error", Server.Json.Str msg) ])

let shard_down_line request =
  Server.Json.to_string
    (Server.Json.Obj
       [ ("status", Server.Json.Str "shard_down");
         ("error", Server.Json.Str "no healthy shard available");
         ("request", Server.Json.Str request) ])

let deadline_line request =
  Server.Json.to_string
    (Server.Json.Obj
       [ ("status", Server.Json.Str "timeout");
         ("error", Server.Json.Str "deadline exceeded in router");
         ("request", Server.Json.Str request) ])

let cancelled_line request =
  Server.Json.to_string
    (Server.Json.Obj
       [ ("status", Server.Json.Str "cancelled");
         ("error", Server.Json.Str "cancelled by client");
         ("request", Server.Json.Str request) ])

let pong_line ?id () =
  let fields =
    [ ("status", Server.Json.Str "ok");
      ("pong", Server.Json.Bool true);
      ("router", Server.Json.Bool true) ]
  in
  let fields =
    match id with
    | Some n -> ("id", Server.Json.Int n) :: fields
    | None -> fields
  in
  Server.Json.to_string (Server.Json.Obj fields)

(* Shard replies lead with the echoed wire id: [{"id":N,...].  [reply_id]
   reads it, [strip_id] removes it so routed replies stay byte-identical
   to direct-service ones. *)
let reply_id line =
  let pfx = "{\"id\":" in
  let pl = String.length pfx in
  let n = String.length line in
  if n > pl && String.sub line 0 pl = pfx then begin
    let rec go i acc =
      if i < n && line.[i] >= '0' && line.[i] <= '9' then
        go (i + 1) ((acc * 10) + (Char.code line.[i] - Char.code '0'))
      else (i, acc)
    in
    let stop, v = go pl 0 in
    if stop > pl then Some (v, stop) else None
  end
  else None

let strip_id line =
  match reply_id line with
  | Some (_, stop) when stop < String.length line && line.[stop] = ',' ->
    "{" ^ String.sub line (stop + 1) (String.length line - stop - 1)
  | _ -> line

(* ---- items ---- *)

let make_item ~id ~line ?client_id ?job ~kind ?(deadline = infinity) () =
  { id; line; client_id; job; kind; deadline;
    tried = []; at = []; sent_at = 0.; hedged = false; resends = 0;
    reply = None; im = Mutex.create (); icv = Condition.create () }

(* First reply wins: with hedged execution an item can be answered from
   two shards, and only the winner's bytes reach the client. *)
let fulfill it line =
  Mutex.lock it.im;
  let won = it.reply = None in
  if won then begin
    it.reply <- Some line;
    Condition.broadcast it.icv
  end;
  Mutex.unlock it.im;
  won

let await it =
  Mutex.lock it.im;
  while it.reply = None do
    Condition.wait it.icv it.im
  done;
  let r = Option.get it.reply in
  Mutex.unlock it.im;
  r

let try_reply it =
  Mutex.lock it.im;
  let r = it.reply in
  Mutex.unlock it.im;
  r

(* Re-inject the client's own (id N) into a reply whose router id was
   stripped, so a routed client sees exactly what a direct one would. *)
let present it line =
  match it.client_id with
  | None -> line
  | Some n ->
    let len = String.length line in
    if len >= 2 && line.[0] = '{' then
      if line = "{}" then "{\"id\":" ^ string_of_int n ^ "}"
      else "{\"id\":" ^ string_of_int n ^ "," ^ String.sub line 1 (len - 1)
    else line

(* The line actually sent to a shard: the job re-serialised with the
   router's wire id and the remaining deadline budget (absolute budget
   decremented by time already spent queued and routed — the propagation
   half of deadline enforcement; the shard's scheduler enforces the
   remainder, the router's pacer enforces the total). *)
let wire_line it now =
  match it.job with
  | None -> it.line
  | Some job ->
    let deadline =
      if it.deadline = infinity then None
      else Some (Float.max 0. (it.deadline -. now))
    in
    Sexp.to_string
      (Server.Job.to_sexp
         { job with Server.Job.wire_id = Some it.id; deadline })

(* ---- connections ---- *)

let open_endpoint s =
  match s.endpoint with
  | Channels (ic, oc) -> { ic; oc }
  | Socket path ->
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
    { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  | Spawn argv ->
    (* child stdin/stdout pipes; the parent ends stay close-on-exec so
       sibling shards never hold each other's descriptors open *)
    let in_r, in_w = Unix.pipe ~cloexec:true () in
    let out_r, out_w = Unix.pipe ~cloexec:true () in
    let pid = Unix.create_process argv.(0) argv in_r out_w Unix.stderr in
    Unix.close in_r;
    Unix.close out_w;
    s.pid <- Some pid;
    { ic = Unix.in_channel_of_descr out_r; oc = Unix.out_channel_of_descr in_w }

(* Nudge a shard whose dispatcher may be blocked in [input_line]: for a
   socket (ic and oc share one fd) a shutdown wakes the reader with EOF;
   for pipes/channels, closing our write end EOFs the shard's stdin so
   its serve loop returns and closes the read side.  Never touches [ic]
   — [close_in] from another domain would block on the channel lock the
   reader holds. *)
let nudge_conn s c =
  match s.endpoint with
  | Socket _ ->
    (try Unix.shutdown (Unix.descr_of_out_channel c.oc) Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ | Sys_error _ -> ())
  | Spawn _ | Channels _ -> ( try close_out c.oc with Sys_error _ -> ())

(* Full close, only ever from the shard's own dispatcher (so nobody is
   blocked reading [ic]).  A socket's fd is closed exactly once — via
   [oc] — and [ic] is left to the GC, so a reused fd number can never be
   closed out from under another session. *)
let close_conn s c =
  match s.endpoint with
  | Socket _ ->
    (try Unix.shutdown (Unix.descr_of_out_channel c.oc) Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ | Sys_error _ -> ());
    (try close_out c.oc with Sys_error _ -> ())
  | Spawn _ | Channels _ ->
    (try close_out c.oc with Sys_error _ -> ());
    (try close_in c.ic with Sys_error _ -> ())

let get_conn s =
  match s.conn with
  | Some c -> c
  | None ->
    let c = open_endpoint s in
    s.conn <- Some c;
    c

(* Reap a spawned child: grace for a polite (quit), then SIGKILL. *)
let reap_child s =
  match s.pid with
  | None -> ()
  | Some pid ->
    s.pid <- None;
    let rec wait tries =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
        if tries <= 0 then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
        end
        else begin
          Unix.sleepf 0.05;
          wait (tries - 1)
        end
      | _ -> ()
      | exception Unix.Unix_error _ -> ()
    in
    wait 40

(* A whole control line ((cancel N), sync (ping (id N))) on the shard's
   write side, interleaving with batch payloads under the write lock.
   During a chaos partition window toward this shard, control traffic is
   swallowed like everything else. *)
let send_control s line =
  if Unix.gettimeofday () < s.partition_until then ()
  else
    match s.conn with
    | None -> ()
    | Some c ->
      Mutex.lock s.wm;
      (try
         output_string c.oc line;
         output_char c.oc '\n';
         flush c.oc
       with Sys_error _ | Unix.Unix_error _ -> ());
      Mutex.unlock s.wm

(* ---- placement (all under t.m) ---- *)

let shard_by_id t sid = Array.to_list t.shards |> List.find (fun s -> s.sid = sid)

let find_shard t sid =
  Array.to_list t.shards |> List.find_opt (fun s -> s.sid = sid)

let count_placement t kind n =
  match List.assoc_opt kind t.placements with
  | Some c -> Obs.Metric.Counter.add c n
  | None -> ()

let enqueue_locked t s it ~kind =
  Obs.Metric.Counter.incr s.routed;
  count_placement t kind 1;
  Queue.add it s.q;
  Condition.broadcast t.cv

(* Admission through the shard's circuit breaker.  Callers arrange that
   the first admitted shard actually receives the job, so a half-open
   trial slot is never consumed without traffic. *)
let breaker_admits s = Breaker.allow s.breaker

(* The next healthy shard this item has not yet been sent to, in ring
   preference order for its key (any order for keyless/uniform items).
   Breaker-refusing shards are passed over while an admitted one exists;
   when every candidate's breaker refuses, the router fails open on
   liveness alone — refusing all traffic would be worse than risking a
   slow shard. *)
let next_candidate_locked t it =
  let pref =
    match it.kind with
    | `Job (Some key) when t.placement <> Uniform -> Ring.owners t.ring key
    | _ -> Array.to_list (Array.map (fun s -> s.sid) t.shards)
  in
  let live sid =
    let s = shard_by_id t sid in
    s.alive && not (List.mem sid it.tried)
  in
  match List.find_opt (fun sid -> live sid && breaker_admits (shard_by_id t sid)) pref with
  | Some sid -> Some (shard_by_id t sid)
  | None -> List.find_opt live pref |> Option.map (shard_by_id t)

let choose_initial_locked t key =
  let alive = Array.to_list t.shards |> List.filter (fun s -> s.alive) in
  if alive = [] then None
  else
    let pick_rr () =
      t.rr <- t.rr + 1;
      let n = List.length alive in
      let start = t.rr mod n in
      let rec go i =
        if i >= n then List.nth alive start  (* all breakers refused: fail open *)
        else
          let s = List.nth alive ((start + i) mod n) in
          if breaker_admits s then s else go (i + 1)
      in
      go 0
    in
    match t.placement, key with
    | Uniform, _ | _, None -> Some (pick_rr (), "uniform")
    | (Cache_aware | Hash_only), Some key ->
      let cache_owner =
        if t.placement = Cache_aware then Hashtbl.find_opt t.owners_tbl key
        else None
      in
      let owner_admitted =
        match cache_owner with
        | Some sid ->
          let s = shard_by_id t sid in
          if s.alive && breaker_admits s then Some s else None
        | None -> None
      in
      (match owner_admitted with
       | Some s -> Some (s, "cache")
       | None ->
         let pref = Ring.owners t.ring key in
         let first = List.nth_opt pref 0 in
         let tag sid = if Some sid = first then "hash" else "failover" in
         (match
            List.find_opt
              (fun sid ->
                 let s = shard_by_id t sid in
                 s.alive && breaker_admits s)
              pref
          with
          | Some sid -> Some (shard_by_id t sid, tag sid)
          | None ->
            (match List.find_opt (fun sid -> (shard_by_id t sid).alive) pref with
             | Some sid -> Some (shard_by_id t sid, tag sid)
             | None -> None)))

(* Reroute a job that its shard failed or refused; [fallback] is the
   reply when no healthy shard remains (typed shard_down for a death,
   the shard's own overloaded reply for a drain). *)
let reroute_locked t it ~kind ~fallback =
  match it.kind with
  | `Raw -> ignore (fulfill it fallback)
  | `Job _ ->
    (match next_candidate_locked t it with
     | Some s' -> enqueue_locked t s' it ~kind
     | None -> ignore (fulfill it (present it fallback)))

let mark_down_locked t s =
  if s.alive then begin
    s.alive <- false;
    s.down_at <- Unix.gettimeofday ();
    Obs.Metric.Counter.incr s.downs;
    Obs.Metric.Gauge.set s.up_g 0;
    (* conviction: a dead shard's breaker opens immediately, so placement
       avoids it the moment it revives until it proves itself *)
    Breaker.force_open s.breaker;
    (match s.conn with Some c -> nudge_conn s c | None -> ());
    (* sync pings in flight toward a dead shard will never pong *)
    let stale =
      Hashtbl.fold
        (fun id (sid, _) acc -> if sid = s.sid then id :: acc else acc)
        t.syncs []
    in
    List.iter (Hashtbl.remove t.syncs) stale;
    let pending = List.of_seq (Queue.to_seq s.q) in
    Queue.clear s.q;
    List.iter
      (fun it ->
         if try_reply it = None then
           reroute_locked t it ~kind:"failover" ~fallback:(shard_down_line it.line))
      pending;
    Condition.broadcast t.cv
  end

(* ---- reply handling ---- *)

(* A shard's reply for an in-flight item: strip the wire id, settle the
   first-wins race, update cache ownership (hinted handoff — the winner,
   hedge target or not, owns the key now) and cancel the losing copy. *)
let handle_reply t s it line =
  let now = Unix.gettimeofday () in
  let cancels = ref [] in
  Mutex.lock t.m;
  s.inflight <- max 0 (s.inflight - 1);
  it.at <- List.filter (fun x -> x <> s.sid) it.at;
  let rtt = now -. it.sent_at in
  (match it.kind with
   | `Raw ->
     Breaker.record_rtt s.breaker rtt;
     s.ping_ms <- rtt *. 1000.;
     ignore (fulfill it (strip_id line))
   | `Job _ ->
     if it.sent_at > 0. then Obs.Metric.Histogram.record s.lat rtt;
     Breaker.record_success s.breaker;
     if contains line "\"status\":\"overloaded\""
     && try_reply it = None
     && next_candidate_locked t it <> None then
       (* the PR 4 ladder, cluster rung: drain refused work to a
          healthy shard instead of bouncing the client *)
       reroute_locked t it ~kind:"drain" ~fallback:(strip_id line)
     else begin
       let won = fulfill it (present it (strip_id line)) in
       if won then begin
         (match it.kind with
          | `Job (Some key) when contains line "\"status\":\"ok\"" ->
            if Hashtbl.length t.owners_tbl > owners_cap then
              Hashtbl.reset t.owners_tbl;
            Hashtbl.replace t.owners_tbl key s.sid
          | _ -> ());
         if contains line "\"cached\":true" then Obs.Metric.Counter.incr s.hits;
         if it.hedged then Obs.Metric.Counter.incr t.hedge_wins_c;
         List.iter (fun sid -> cancels := (sid, it.id) :: !cancels) it.at
       end
     end);
  Mutex.unlock t.m;
  List.iter
    (fun (sid, id) ->
       match find_shard t sid with
       | Some s' ->
         Obs.Metric.Counter.incr t.cancels_c;
         send_control s' ("(cancel " ^ string_of_int id ^ ")")
       | None -> ())
    !cancels

(* A sync pong arrived while requests sent before it are still
   unanswered: the shard's ordered reply stream proves those requests
   never reached it (chaos drop, partition, torn write).  Retry each a
   bounded number of times, then give the client the typed reply. *)
let flush_lost t s pending =
  Mutex.lock t.m;
  Breaker.record_failure s.breaker;
  let items = Hashtbl.fold (fun _ it acc -> it :: acc) pending [] in
  Hashtbl.reset pending;
  List.iter
    (fun it ->
       s.inflight <- max 0 (s.inflight - 1);
       it.at <- List.filter (fun x -> x <> s.sid) it.at;
       match it.kind with
       | `Raw -> ()  (* a lost probe stays unanswered: the health monitor's
                        overdue deadline is the conviction path *)
       | `Job _ ->
         if try_reply it = None then begin
           it.resends <- it.resends + 1;
           Obs.Metric.Counter.incr t.resends_c;
           if it.resends > max_resends then
             ignore (fulfill it (present it (shard_down_line it.line)))
           else begin
             (* the loss was transient: this shard may be retried *)
             it.tried <- List.filter (fun x -> x <> s.sid) it.tried;
             match next_candidate_locked t it with
             | Some s' -> enqueue_locked t s' it ~kind:"resend"
             | None -> ignore (fulfill it (present it (shard_down_line it.line)))
           end
         end)
    items;
  Condition.broadcast t.cv;
  Mutex.unlock t.m

(* ---- dispatcher ---- *)

(* Steal half the longest queue (>= steal_min) onto idle shard [s],
   preferring items the victim holds no cached result for — stealing a
   cache-owned key would convert its hit into a miss on the thief. *)
let steal_locked t s =
  if t.steal_min <= 0 then false
  else begin
    let best = ref None in
    Array.iter
      (fun v ->
         if v != s && v.alive then begin
           let len = Queue.length v.q in
           if len >= t.steal_min then
             match !best with
             | Some (_, blen) when blen >= len -> ()
             | _ -> best := Some (v, len)
         end)
      t.shards;
    match !best with
    | None -> false
    | Some (v, len) ->
      let k = (len + 1) / 2 in
      let all = List.of_seq (Queue.to_seq v.q) in
      Queue.clear v.q;
      let owned it =
        match it.kind with
        | `Job (Some key) -> Hashtbl.find_opt t.owners_tbl key = Some v.sid
        | _ -> false
      in
      let take_last n l =
        let len = List.length l in
        if len <= n then l else List.filteri (fun i _ -> i >= len - n) l
      in
      let free, held = List.partition (fun it -> not (owned it)) all in
      let stolen =
        if List.length free >= k then take_last k free
        else free @ take_last (k - List.length free) held
      in
      let kept = List.filter (fun it -> not (List.memq it stolen)) all in
      List.iter (fun it -> Queue.add it v.q) kept;
      List.iter (fun it -> Queue.add it s.q) stolen;
      Obs.Metric.Counter.add v.steals (List.length stolen);
      count_placement t "steal" (List.length stolen);
      not (Queue.is_empty s.q)
  end

(* Pop the next live item: hedge-winner husks are dropped, queued items
   past their deadline are answered with the typed timeout right here —
   running dead-on-arrival work would burn a shard slot for a reply
   nobody is waiting on. *)
let rec pop_live t s =
  match Queue.take_opt s.q with
  | None -> None
  | Some it ->
    if try_reply it <> None then pop_live t s
    else if Unix.gettimeofday () > it.deadline then begin
      Obs.Metric.Counter.incr t.expired_c;
      ignore (fulfill it (present it (deadline_line it.line)));
      pop_live t s
    end
    else Some it

(* Take the next micro-batch: a Raw line travels alone (its reply count
   differs from a job's), jobs group up to batch_max.  Marks each item
   as tried at this shard.  May return [] when the queue held only
   husks. *)
let take_batch_locked t s =
  match pop_live t s with
  | None -> []
  | Some first ->
    first.tried <- s.sid :: first.tried;
    (match first.kind with
     | `Raw -> [ first ]
     | `Job _ ->
       let rec grab acc n =
         if n >= t.batch_max || Queue.is_empty s.q then List.rev acc
         else
           match Queue.peek s.q with
           | { kind = `Raw; _ } -> List.rev acc
           | _ ->
             (match pop_live t s with
              | None -> List.rev acc
              | Some it ->
                it.tried <- s.sid :: it.tried;
                grab (it :: acc) (n + 1))
       in
       first :: grab [] 1)

(* Chaos: kill the shard process mid-batch (Spawn), or sever the
   connection (Socket/Channels) — the dispatcher then observes exactly
   what a real crash looks like.  Whether the shard comes back is the
   revive policy's business, not the fault's. *)
let chaos_crash s =
  match s.endpoint, s.pid with
  | Spawn _, Some pid ->
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
  | _ ->
    (match s.conn with Some c -> nudge_conn s c | None -> ())

let process t s batch seq =
  let site_net = "net." ^ s.sid and site_proc = "proc." ^ s.sid in
  let net =
    match t.fault with None -> None | Some p -> Fault.Plan.on_net p ~site:site_net
  in
  let proc_f =
    match t.fault with None -> None | Some p -> Fault.Plan.on_shard p ~site:site_proc
  in
  (match net with
   | Some (Fault.Plan.Net_partition d) ->
     s.partition_until <- Unix.gettimeofday () +. d
   | _ -> ());
  let result =
    try
      let conn = get_conn s in
      let now = Unix.gettimeofday () in
      let partitioned = now < s.partition_until in
      let lines =
        match batch, net with
        | [ it ], _ -> [ wire_line it now ]
        | items, Some Fault.Plan.Net_reorder ->
          (* deliver the batch's lines individually, in reverse — the
             id-matched read loop reassembles the answers *)
          List.rev_map (fun it -> wire_line it now) items
        | items, _ ->
          [ "(batch "
            ^ String.concat " " (List.map (fun it -> wire_line it now) items)
            ^ ")" ]
      in
      Mutex.lock s.wm;
      (try
         let emit l = output_string conn.oc l; output_char conn.oc '\n' in
         (match net, partitioned with
          | _, true | Some Fault.Plan.Net_drop, _ -> ()   (* swallowed *)
          | Some (Fault.Plan.Net_delay d), _ ->
            Unix.sleepf d;
            List.iter emit lines
          | Some Fault.Plan.Net_dup, _ ->
            List.iter emit lines;
            List.iter emit lines
          | _ -> List.iter emit lines);
         flush conn.oc;
         Mutex.unlock s.wm
       with e -> Mutex.unlock s.wm; raise e);
      (match proc_f with
       | Some (Fault.Plan.Slow_shard d) -> Unix.sleepf d
       | Some Fault.Plan.Crash_restart -> chaos_crash s
       | None -> ());
      (* id-matched read loop: replies may be out of order (reorder
         chaos), duplicated (dup chaos) or missing (drop/partition); a
         sync pong ordered after this batch proves anything still
         pending was lost *)
      let pending = Hashtbl.create 16 in
      List.iter (fun it -> Hashtbl.replace pending it.id it) batch;
      let order = ref batch in
      let t0 = Unix.gettimeofday () in
      let rec read_loop () =
        if Hashtbl.length pending = 0 then ()
        else begin
          let line = input_line conn.ic in
          (match reply_id line with
           | Some (id, _) when Hashtbl.mem pending id ->
             let it = Hashtbl.find pending id in
             Hashtbl.remove pending id;
             order := List.filter (fun o -> o.id <> id) !order;
             handle_reply t s it line
           | Some (id, _) ->
             let sync =
               Mutex.lock t.m;
               let r = Hashtbl.find_opt t.syncs id in
               (match r with Some _ -> Hashtbl.remove t.syncs id | None -> ());
               Mutex.unlock t.m;
               r
             in
             (match sync with
              | Some (_, sseq) when sseq >= seq && Hashtbl.length pending > 0 ->
                flush_lost t s pending
              | _ -> ())   (* stale sync, or a dup-chaos echo: ignore *)
           | None ->
             (* an id-less line from an ordered stream answers the oldest
                outstanding request *)
             (match !order with
              | it :: rest when Hashtbl.mem pending it.id ->
                order := rest;
                Hashtbl.remove pending it.id;
                handle_reply t s it line
              | _ -> ()));
          read_loop ()
        end
      in
      read_loop ();
      Ok (Unix.gettimeofday () -. t0)
    with End_of_file | Sys_error _ | Unix.Unix_error _ -> Error ()
  in
  match result with
  | Error () ->
    (* shard gone mid-flight: declare it down and fail the batch over *)
    Mutex.lock t.m;
    s.inflight <- 0;
    mark_down_locked t s;
    List.iter
      (fun it ->
         it.at <- List.filter (fun x -> x <> s.sid) it.at;
         if try_reply it = None then
           reroute_locked t it ~kind:"failover" ~fallback:(shard_down_line it.line))
      batch;
    Condition.broadcast t.cv;
    Mutex.unlock t.m
  | Ok dt ->
    Obs.Metric.Histogram.record t.batch_seconds dt;
    Mutex.lock t.m;
    s.inflight <- 0;
    Condition.broadcast t.cv;
    Mutex.unlock t.m

let teardown t s =
  Mutex.lock t.m;
  let conn =
    match s.conn, s.endpoint with
    | (Some _ as c), _ -> c
    (* adopted channels we never spoke to still need the quit/close, or
       the far side's serve loop blocks on its read forever *)
    | None, Channels (ic, oc) -> Some { ic; oc }
    | None, (Spawn _ | Socket _) -> None
  in
  s.conn <- None;
  Mutex.unlock t.m;
  (match conn with
   | None -> ()
   | Some c ->
     (match s.endpoint with
      | Spawn _ | Channels _ ->
        (* owned shards get a polite quit so their serve loop returns *)
        (try
           output_string c.oc "(quit)\n";
           flush c.oc
         with Sys_error _ | Unix.Unix_error _ -> ())
      | Socket _ -> ());
     close_conn s c);
  reap_child s

let dispatcher t s =
  let rec loop () =
    Mutex.lock t.m;
    let rec decide () =
      if not s.alive then `Exit
      else if not (Queue.is_empty s.q) then `Work
      else if steal_locked t s then `Work
      else if t.stopping then `Exit
      else begin
        Condition.wait t.cv t.m;
        decide ()
      end
    in
    match decide () with
    | `Exit ->
      Mutex.unlock t.m;
      teardown t s
    | `Work ->
      (match take_batch_locked t s with
       | [] ->
         Mutex.unlock t.m;
         loop ()
       | batch ->
         s.inflight <- List.length batch;
         s.batch_seq <- s.batch_seq + 1;
         s.batch_started <- Unix.gettimeofday ();
         s.sync_sent <- 0.;
         let seq = s.batch_seq in
         List.iter
           (fun it ->
              it.sent_at <- s.batch_started;
              it.at <- s.sid :: it.at)
           batch;
         Mutex.unlock t.m;
         process t s batch seq;
         loop ())
  in
  loop ()

(* ---- the pacer ---- *)

(* The hedge trigger for a shard: twice its observed per-item latency
   quantile, floored — hedging against noise would double load for
   nothing.  Needs a minimum sample count before it trusts the
   histogram. *)
let hedge_trigger t s =
  let snap = Obs.Metric.Histogram.snapshot s.lat in
  if Obs.Metric.Histogram.count snap < 16 then infinity
  else
    Float.max t.hedge_floor
      (2. *. Obs.Metric.Histogram.quantile snap t.hedge_quantile)

let write_metrics t =
  match t.metrics_file with
  | None -> ()
  | Some path ->
    let text = Obs.Expo.of_registry t.registry in
    let dir = Filename.dirname path in
    (try
       let tmp = Filename.temp_file ~temp_dir:dir "metrics" ".tmp" in
       (try
          let oc = open_out_bin tmp in
          Fun.protect ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc text);
          Sys.rename tmp path
        with e ->
          (try Sys.remove tmp with Sys_error _ -> ());
          raise e)
     with Sys_error _ | Unix.Unix_error _ -> ())

(* One pacer sweep: expire deadlines (and cancel the shard-side work),
   trigger hedges on slow in-flight items, sync-ping silent shards so
   lost messages surface, refresh breaker gauges, collect revive
   candidates.  Control sends happen after t.m is released. *)
let pacer_once t =
  let now = Unix.gettimeofday () in
  let cancels = ref [] in
  let syncs_out = ref [] in
  let revive_candidates = ref [] in
  Mutex.lock t.m;
  let actions = ref [] in
  Hashtbl.iter
    (fun id it ->
       if try_reply it <> None then actions := `Forget id :: !actions
       else if now > it.deadline then actions := `Expire (id, it) :: !actions
       else if
         t.hedge_quantile > 0. && not it.hedged && it.sent_at > 0.
         && (match it.at with [ _ ] -> true | _ -> false)
       then begin
         match it.at with
         | [ sid ] ->
           (match find_shard t sid with
            | Some s when now -. it.sent_at > hedge_trigger t s ->
              (match next_candidate_locked t it with
               | Some s' ->
                 it.hedged <- true;
                 Obs.Metric.Counter.incr t.hedged_c;
                 enqueue_locked t s' it ~kind:"hedge"
               | None -> ())
            | _ -> ())
         | _ -> ()
       end)
    t.inflight_tbl;
  List.iter
    (function
      | `Forget id -> Hashtbl.remove t.inflight_tbl id
      | `Expire (id, it) ->
        Hashtbl.remove t.inflight_tbl id;
        if fulfill it (present it (deadline_line it.line)) then begin
          Obs.Metric.Counter.incr t.expired_c;
          (* cross-wire cancel: free the shard workers still running it *)
          List.iter (fun sid -> cancels := (sid, it.id) :: !cancels) it.at
        end)
    !actions;
  Array.iter
    (fun s ->
       if s.alive && s.inflight > 0 && s.conn <> None then begin
         let last = Float.max s.batch_started s.sync_sent in
         if now -. last > t.stuck_after then begin
           let id = Atomic.fetch_and_add t.next_id 1 in
           Hashtbl.replace t.syncs id (s.sid, s.batch_seq);
           s.sync_sent <- now;
           syncs_out := (s, id) :: !syncs_out
         end
       end;
       Breaker.note_queue_depth s.breaker (Queue.length s.q);
       Obs.Metric.Gauge.set s.b_state
         (Breaker.state_code (Breaker.state s.breaker));
       Obs.Metric.Gauge.set s.up_g (if s.alive then 1 else 0);
       if
         t.revive && not t.stopping && not s.alive
         && now -. s.down_at > 0.25
         && (match s.endpoint with Channels _ -> false | _ -> true)
       then revive_candidates := s :: !revive_candidates)
    t.shards;
  Mutex.unlock t.m;
  List.iter
    (fun (sid, id) ->
       match find_shard t sid with
       | Some s ->
         Obs.Metric.Counter.incr t.cancels_c;
         send_control s ("(cancel " ^ string_of_int id ^ ")")
       | None -> ())
    !cancels;
  List.iter
    (fun (s, id) -> send_control s ("(ping (id " ^ string_of_int id ^ "))"))
    !syncs_out;
  !revive_candidates

(* Exclusive dispatcher-join: [s.disp] is taken under t.m, so a revival
   and a shutdown can never both join the same domain. *)
let take_disp t s =
  Mutex.lock t.m;
  let d = s.disp in
  s.disp <- None;
  Mutex.unlock t.m;
  match d with Some d -> Domain.join d | None -> ()

(* Re-adopt a crash-restarted shard: join the old dispatcher (it tore
   the dead connection down), probe reachability for socket endpoints,
   then mark alive and spawn a fresh dispatcher.  The breaker stays
   open-til-proven, so the revived shard earns traffic back through its
   half-open trial rather than getting a thundering herd. *)
let revive_shard t s =
  let claimed =
    Mutex.lock t.m;
    let ok = (not s.alive) && not s.reviving && not t.stopping in
    if ok then s.reviving <- true;
    Mutex.unlock t.m;
    ok
  in
  if not claimed then false
  else begin
    take_disp t s;
    let reachable =
      match s.endpoint with
      | Spawn _ -> true   (* get_conn respawns lazily *)
      | Channels _ -> false
      | Socket path ->
        (match Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 with
         | fd ->
           (match Unix.connect fd (Unix.ADDR_UNIX path) with
            | () ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              true
            | exception Unix.Unix_error _ ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              false)
         | exception Unix.Unix_error _ -> false)
    in
    Mutex.lock t.m;
    let did =
      if not reachable || t.stopping then begin
        s.down_at <- Unix.gettimeofday ();   (* back off before the next try *)
        false
      end
      else begin
        s.conn <- None;
        s.pid <- None;
        s.alive <- true;
        s.inflight <- 0;
        s.partition_until <- 0.;
        s.sync_sent <- 0.;
        Obs.Metric.Counter.incr t.revivals_c;
        Obs.Metric.Gauge.set s.up_g 1;
        s.disp <- Some (Domain.spawn (fun () -> dispatcher t s));
        Condition.broadcast t.cv;
        true
      end
    in
    s.reviving <- false;
    Mutex.unlock t.m;
    did
  end

let pacer t =
  let tick = Float.max 0.002 (Float.min 0.02 (t.stuck_after /. 4.)) in
  let last_metrics = ref 0. in
  let rec loop () =
    if Atomic.get t.pacer_stop then ()
    else begin
      let candidates = pacer_once t in
      List.iter (fun s -> ignore (revive_shard t s)) candidates;
      let now = Unix.gettimeofday () in
      if t.metrics_file <> None && now -. !last_metrics > 0.5 then begin
        last_metrics := now;
        write_metrics t
      end;
      Unix.sleepf tick;
      loop ()
    end
  in
  loop ()

(* ---- construction ---- *)

let create ?(vnodes = 64) ?(batch_max = 16) ?(steal_min = 2)
    ?(placement = Cache_aware) ?metrics ?fault ?(hedge_quantile = 0.)
    ?(hedge_floor = 0.01) ?(breaker = Breaker.default) ?(stuck_after = 1.0)
    ?(revive = false) ?metrics_file ~shards () =
  if shards = [] then invalid_arg "Router.create: no shards";
  if batch_max < 1 then invalid_arg "Router.create: batch_max < 1";
  if hedge_quantile < 0. || hedge_quantile >= 1. then
    invalid_arg "Router.create: hedge_quantile outside [0, 1)";
  if stuck_after <= 0. then invalid_arg "Router.create: stuck_after <= 0";
  (* a dead shard must surface as a broken write, not kill the router *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let metrics = match metrics with Some r -> r | None -> Obs.Registry.create () in
  let ring = Ring.create ~vnodes (List.map fst shards) in
  let shard_of (sid, endpoint) =
    let c name help =
      Obs.Registry.counter metrics ~help ~labels:[ ("shard", sid) ] name
    in
    let opens =
      Obs.Registry.counter metrics
        ~help:"circuit-breaker closed-to-open transitions"
        ~labels:[ ("shard", sid) ] "small_breaker_open_total"
    in
    { sid; endpoint; conn = None; pid = None; alive = true;
      q = Queue.create (); inflight = 0; wm = Mutex.create (); disp = None;
      reviving = false; batch_seq = 0; batch_started = 0.; sync_sent = 0.; down_at = 0.;
      partition_until = 0.; ping_ms = 0.;
      breaker =
        Breaker.create ~config:breaker
          ~on_open:(fun () -> Obs.Metric.Counter.incr opens) ();
      routed = c "small_router_requests_total" "requests routed to this shard";
      hits = c "small_router_hits_total" "replies served from this shard's cache";
      steals = c "small_router_steals_total" "queued jobs stolen from this shard";
      downs = c "small_router_shard_down_total" "times this shard was marked down";
      lat =
        Obs.Registry.histogram metrics
          ~help:"per-item shard round-trip seconds"
          ~labels:[ ("shard", sid) ]
          ~bounds:Obs.Metric.Histogram.fine_latency_bounds
          "small_router_shard_seconds";
      b_state =
        Obs.Registry.gauge metrics
          ~help:"circuit-breaker state: 0 closed, 1 half-open, 2 open"
          ~labels:[ ("shard", sid) ] "small_breaker_state";
      up_g =
        Obs.Registry.gauge metrics ~help:"1 while the shard is considered alive"
          ~labels:[ ("shard", sid) ] "small_shard_up" }
  in
  let placements =
    List.map
      (fun kind ->
         ( kind,
           Obs.Registry.counter metrics
             ~help:"routing decisions, by placement kind"
             ~labels:[ ("kind", kind) ] "small_router_placement_total" ))
      [ "cache"; "hash"; "uniform"; "failover"; "drain"; "steal"; "hedge";
        "resend" ]
  in
  let c0 name help = Obs.Registry.counter metrics ~help name in
  let t =
    { ring; shards = Array.of_list (List.map shard_of shards);
      placement; batch_max; steal_min; fault; hedge_quantile; hedge_floor;
      stuck_after; revive; metrics_file; registry = metrics;
      m = Mutex.create (); cv = Condition.create ();
      owners_tbl = Hashtbl.create 1024;
      digests = Hashtbl.create 16; dm = Mutex.create ();
      next_id = Atomic.make 1;
      inflight_tbl = Hashtbl.create 256;
      syncs = Hashtbl.create 16;
      rr = -1; stopping = false;
      pacer_stop = Atomic.make false; pacer = None;
      placements;
      batch_seconds =
        Obs.Registry.histogram metrics
          ~help:"shard round-trip seconds per micro-batch"
          "small_router_batch_seconds";
      hedged_c = c0 "small_router_hedged_total" "jobs re-issued to a second shard";
      hedge_wins_c =
        c0 "small_router_hedge_wins_total" "hedged jobs won by the second copy";
      expired_c =
        c0 "small_router_deadline_expired_total"
          "jobs answered with the router's deadline timeout";
      cancels_c = c0 "small_router_cancels_total" "cancel messages sent to shards";
      resends_c =
        c0 "small_router_resends_total" "requests retried after a detected loss";
      revivals_c =
        c0 "small_router_revivals_total" "shards re-adopted after a crash" }
  in
  Array.iter (fun s -> s.disp <- Some (Domain.spawn (fun () -> dispatcher t s)))
    t.shards;
  t.pacer <- Some (Domain.spawn (fun () -> pacer t));
  t

(* ---- routing keys ---- *)

(* The placement key is exactly the shard-local result-cache key, so
   "route to the cached result" and "the shard will hit its cache" agree
   by construction.  Trace-file digests are memoised per path. *)
let placement_key t (job : Server.Job.t) =
  let trace_digest () =
    match job.source with
    | Server.Job.Trace_file path ->
      Mutex.lock t.dm;
      let memo = Hashtbl.find_opt t.digests path in
      Mutex.unlock t.dm;
      (match memo with
       | Some d -> d
       | None ->
         let d = Server.Exec.trace_digest job.source in
         Mutex.lock t.dm;
         Hashtbl.replace t.digests path d;
         Mutex.unlock t.dm;
         d)
    | Server.Job.Workload _ -> Server.Exec.trace_digest job.source
  in
  match trace_digest () with
  | d -> Some (Server.Result_cache.key ~trace_digest:d ~job_digest:(Server.Job.digest job))
  | exception _ -> None

(* ---- the public request path ---- *)

let submit_line t line =
  match Sexp.parse line with
  | exception Sexp.Reader.Parse_error msg ->
    let r = error_line ("parse error: " ^ msg) in
    fun () -> r
  | d ->
    (match Server.Job.of_sexp d with
     | Error msg ->
       let r = error_line msg in
       fun () -> r
     | Ok job ->
       let key = placement_key t job in
       let id = Atomic.fetch_and_add t.next_id 1 in
       let now = Unix.gettimeofday () in
       let deadline =
         match job.Server.Job.deadline with
         | Some d -> now +. d
         | None -> infinity
       in
       let it =
         make_item ~id ~line ?client_id:job.Server.Job.wire_id ~job
           ~kind:(`Job key) ~deadline ()
       in
       if deadline <= now then begin
         (* the budget was spent before the job ever reached placement *)
         Obs.Metric.Counter.incr t.expired_c;
         ignore (fulfill it (present it (deadline_line line)));
         fun () -> await it
       end
       else begin
         Mutex.lock t.m;
         if t.stopping then begin
           Mutex.unlock t.m;
           let r = error_line "router is shutting down" in
           fun () -> r
         end
         else
           match choose_initial_locked t key with
           | None ->
             Mutex.unlock t.m;
             let r = present it (shard_down_line line) in
             fun () -> r
           | Some (s, kind) ->
             Hashtbl.replace t.inflight_tbl id it;
             enqueue_locked t s it ~kind;
             Mutex.unlock t.m;
             fun () -> await it
       end)

(* Cancel every in-flight job carrying the client's (id N): answer the
   client with the typed cancelled reply and forward cross-wire cancels
   to any shard still running a copy. *)
let cancel_client t n =
  let cancels = ref [] in
  Mutex.lock t.m;
  Hashtbl.iter
    (fun _ it ->
       if it.client_id = Some n && try_reply it = None then
         if fulfill it (present it (cancelled_line it.line)) then
           List.iter (fun sid -> cancels := (sid, it.id) :: !cancels) it.at)
    t.inflight_tbl;
  Mutex.unlock t.m;
  List.iter
    (fun (sid, id) ->
       match find_shard t sid with
       | Some s ->
         Obs.Metric.Counter.incr t.cancels_c;
         send_control s ("(cancel " ^ string_of_int id ^ ")")
       | None -> ())
    !cancels

let resilience_json t =
  let c = Obs.Metric.Counter.get in
  Server.Json.Obj
    [ ("hedged", Server.Json.Int (c t.hedged_c));
      ("hedge_wins", Server.Json.Int (c t.hedge_wins_c));
      ("deadline_expired", Server.Json.Int (c t.expired_c));
      ("cancels", Server.Json.Int (c t.cancels_c));
      ("resends", Server.Json.Int (c t.resends_c));
      ("revivals", Server.Json.Int (c t.revivals_c)) ]

let stats_json t =
  Mutex.lock t.m;
  let shard_objs =
    Array.to_list t.shards
    |> List.map (fun s ->
        ( s.sid,
          Server.Json.Obj
            [ ("alive", Server.Json.Bool s.alive);
              ("breaker",
               Server.Json.Str (Breaker.state_name (Breaker.state s.breaker)));
              ("breaker_opens", Server.Json.Int (Breaker.opens s.breaker));
              ("ping_ms", Server.Json.Float s.ping_ms);
              ("routed", Server.Json.Int (Obs.Metric.Counter.get s.routed));
              ("hits", Server.Json.Int (Obs.Metric.Counter.get s.hits));
              ("stolen_from", Server.Json.Int (Obs.Metric.Counter.get s.steals));
              ("downs", Server.Json.Int (Obs.Metric.Counter.get s.downs));
              ("queued", Server.Json.Int (Queue.length s.q));
              ("inflight", Server.Json.Int s.inflight) ] ))
  in
  let healthy =
    Array.fold_left (fun n s -> if s.alive then n + 1 else n) 0 t.shards
  in
  let owner_keys = Hashtbl.length t.owners_tbl in
  Mutex.unlock t.m;
  Server.Json.Obj
    [ ("status", Server.Json.Str "ok");
      ("router", Server.Json.Bool true);
      ("shards_total", Server.Json.Int (Array.length t.shards));
      ("shards_healthy", Server.Json.Int healthy);
      (* size of the cache-aware placement map: shard stores must keep
         key lookups cheap for this table to stay warm and useful *)
      ("owner_keys", Server.Json.Int owner_keys);
      ("resilience", resilience_json t);
      ("placement",
       Server.Json.Obj
         (List.map
            (fun (k, c) -> (k, Server.Json.Int (Obs.Metric.Counter.get c)))
            t.placements));
      ("shards", Server.Json.Obj shard_objs) ]

(* (ping) or (ping (id N)) *)
let ping_id rest =
  let rec find d =
    match d with
    | Sexp.Datum.Cons
        (Sexp.Datum.Cons
           (Sexp.Datum.Sym "id",
            Sexp.Datum.Cons (Sexp.Datum.Int n, Sexp.Datum.Nil)), _) ->
      Some n
    | Sexp.Datum.Cons (_, tl) -> find tl
    | _ -> None
  in
  find rest

let handle_line t line =
  let line = String.trim line in
  if line = "" then []
  else
    match Sexp.parse line with
    | exception Sexp.Reader.Parse_error msg -> [ error_line ("parse error: " ^ msg) ]
    | Sexp.Datum.Cons (Sym "stats", Nil) -> [ Server.Json.to_string (stats_json t) ]
    | Sexp.Datum.Cons (Sym "ping", rest) -> [ pong_line ?id:(ping_id rest) () ]
    | Sexp.Datum.Cons (Sym "cancel", Cons (Int n, Nil)) ->
      (* fire-and-forget, mirroring the shard protocol: no reply line —
         the cancelled job answers in its own slot *)
      cancel_client t n;
      []
    | Sexp.Datum.Cons (Sym "batch", rest) when Sexp.Datum.is_list rest ->
      (* route every job before awaiting any reply: the shards run the
         batch concurrently, replies keep request order *)
      let joins =
        List.map (fun d -> submit_line t (Sexp.to_string d)) (Sexp.Datum.to_list rest)
      in
      List.map (fun j -> j ()) joins
    | _ -> [ submit_line t line () ]

(* ---- health surface ---- *)

let shard_ids t = Array.to_list t.shards |> List.map (fun s -> s.sid)

let alive_ids t =
  Mutex.lock t.m;
  let ids = Array.to_list t.shards |> List.filter (fun s -> s.alive) in
  Mutex.unlock t.m;
  List.map (fun s -> s.sid) ids

let spawned_pids t =
  Mutex.lock t.m;
  let ps =
    Array.to_list t.shards
    |> List.filter_map (fun s ->
        match s.pid with Some pid when s.alive -> Some (s.sid, pid) | _ -> None)
  in
  Mutex.unlock t.m;
  ps

let is_idle t sid =
  Mutex.lock t.m;
  let r =
    match find_shard t sid with
    | Some s -> s.alive && Queue.is_empty s.q && s.inflight = 0
    | None -> false
  in
  Mutex.unlock t.m;
  r

let probe t sid =
  Mutex.lock t.m;
  let r =
    match find_shard t sid with
    | Some s when s.alive ->
      let id = Atomic.fetch_and_add t.next_id 1 in
      let it =
        make_item ~id ~line:("(ping (id " ^ string_of_int id ^ "))")
          ~kind:`Raw ()
      in
      Queue.add it s.q;
      Condition.broadcast t.cv;
      Some (fun () -> try_reply it)
    | _ -> None
  in
  Mutex.unlock t.m;
  r

let shard_ping_ms t sid =
  Mutex.lock t.m;
  let r =
    match find_shard t sid with
    | Some s when s.ping_ms > 0. -> Some s.ping_ms
    | _ -> None
  in
  Mutex.unlock t.m;
  r

let mark_down t sid =
  Mutex.lock t.m;
  (match find_shard t sid with
   | Some s -> mark_down_locked t s
   | None -> ());
  Mutex.unlock t.m

let kill t sid =
  (match find_shard t sid with
   | Some { pid = Some pid; _ } ->
     (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
   | _ -> ());
  mark_down t sid

let revive t sid =
  match find_shard t sid with
  | None -> false
  | Some s ->
    let eligible =
      Mutex.lock t.m;
      let e = (not s.alive) && not t.stopping in
      Mutex.unlock t.m;
      e
    in
    eligible && revive_shard t s

(* ---- serving ---- *)

let serve_channels t ic oc =
  let quit = ref false in
  (try
     while not !quit do
       let line = input_line ic in
       if String.trim line = "(quit)" then quit := true
       else
         List.iter
           (fun resp -> output_string oc resp; output_char oc '\n'; flush oc)
           (handle_line t line)
     done
   with End_of_file -> ());
  !quit

let serve_socket t ~path =
  (* every router-held fd must be close-on-exec: shard children are
     spawned while sessions are live, and an inherited copy of a client
     connection would keep it open after the session closes — the client
     then never sees EOF *)
  let sock = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let stop = Atomic.make false in
  let sm = Mutex.create () in
  let sessions = ref [] in
  (* only unlink what we actually bound: a refused path (regular file, a
     live server) must be left exactly as found *)
  let bound = ref false in
  Fun.protect
    ~finally:(fun () ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        (if !bound then try Unix.unlink path with Unix.Unix_error _ -> ());
        Mutex.lock sm;
        let ds = !sessions in
        sessions := [];
        Mutex.unlock sm;
        List.iter Domain.join ds)
    (fun () ->
       Server.Service.bind_socket_replacing sock path;
       bound := true;
       Unix.listen sock 64;
       while not (Atomic.get stop) do
         match Unix.accept sock with
         | exception Unix.Unix_error _ -> Atomic.set stop true
         | fd, _ ->
           (try Unix.set_close_on_exec fd with Unix.Unix_error _ -> ());
           if Atomic.get stop then (try Unix.close fd with Unix.Unix_error _ -> ())
           else begin
             let d =
               Domain.spawn (fun () ->
                   let ic = Unix.in_channel_of_descr fd in
                   let oc = Unix.out_channel_of_descr fd in
                   (match serve_channels t ic oc with
                    | true ->
                      Atomic.set stop true;
                      (* a throwaway connection unblocks the accept loop *)
                      (try
                         let c = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
                         (try Unix.connect c (Unix.ADDR_UNIX path)
                          with Unix.Unix_error _ -> ());
                         Unix.close c
                       with Unix.Unix_error _ -> ())
                    | false -> ()
                    | exception Sys_error _ -> ());
                   (try flush oc with Sys_error _ -> ());
                   try Unix.close fd with Unix.Unix_error _ -> ())
             in
             Mutex.lock sm;
             sessions := d :: !sessions;
             Mutex.unlock sm
           end
       done)

let shutdown t =
  Mutex.lock t.m;
  let first = not t.stopping in
  t.stopping <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  if first then begin
    (* dispatchers first: the pacer keeps sync-pinging stuck shards so a
       read loop blocked on a chaos-dropped payload can still drain *)
    Array.iter (take_disp t) t.shards;
    Atomic.set t.pacer_stop true;
    (match t.pacer with Some d -> Domain.join d | None -> ());
    (* a revival racing the stop may have spawned one more dispatcher;
       it sees [stopping], drains, and exits *)
    Array.iter (take_disp t) t.shards;
    write_metrics t
  end
