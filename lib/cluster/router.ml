type endpoint =
  | Spawn of string array
  | Socket of string
  | Channels of in_channel * out_channel

type placement = Cache_aware | Hash_only | Uniform

type conn = {
  ic : in_channel;
  oc : out_channel;
}

(* One routed request.  [tried] records the shards that have actually
   seen it (set at send time), so failover and overload draining never
   bounce a job back to a shard that already refused it. *)
type item = {
  line : string;
  kind : [ `Job of string option | `Raw ];   (* `Job carries the cache key *)
  mutable tried : string list;
  mutable reply : string option;
  im : Mutex.t;
  icv : Condition.t;
}

type shard = {
  sid : string;
  endpoint : endpoint;
  mutable conn : conn option;
  mutable pid : int option;          (* spawned child, until reaped *)
  mutable alive : bool;
  q : item Queue.t;
  mutable inflight : int;            (* items in the batch at the shard *)
  routed : Obs.Metric.Counter.t;
  hits : Obs.Metric.Counter.t;       (* replies with "cached":true *)
  steals : Obs.Metric.Counter.t;     (* items stolen FROM this shard *)
  downs : Obs.Metric.Counter.t;
}

type t = {
  ring : Ring.t;
  shards : shard array;
  placement : placement;
  batch_max : int;
  steal_min : int;
  m : Mutex.t;
  cv : Condition.t;                  (* new work / state change *)
  (* key -> shard whose result cache holds this key's value *)
  owners_tbl : (string, string) Hashtbl.t;
  digests : (string, string) Hashtbl.t;   (* trace-file path -> digest *)
  dm : Mutex.t;                           (* digest memo lock *)
  mutable rr : int;                       (* uniform round-robin cursor *)
  mutable stopping : bool;
  mutable dispatchers : unit Domain.t list;
  placements : (string * Obs.Metric.Counter.t) list;
  batch_seconds : Obs.Metric.Histogram.t;
}

(* Placement decisions are capped from growing without bound on a
   long-lived router; the table is an optimisation over hash ownership,
   so dropping it only costs locality for a while. *)
let owners_cap = 1 lsl 18

(* ---- wire helpers ---- *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let error_line msg =
  Server.Json.to_string
    (Server.Json.Obj
       [ ("status", Server.Json.Str "error"); ("error", Server.Json.Str msg) ])

let shard_down_line request =
  Server.Json.to_string
    (Server.Json.Obj
       [ ("status", Server.Json.Str "shard_down");
         ("error", Server.Json.Str "no healthy shard available");
         ("request", Server.Json.Str request) ])

let pong_line =
  Server.Json.to_string
    (Server.Json.Obj
       [ ("status", Server.Json.Str "ok");
         ("pong", Server.Json.Bool true);
         ("router", Server.Json.Bool true) ])

(* ---- items ---- *)

let make_item ~line ~kind =
  { line; kind; tried = []; reply = None; im = Mutex.create (); icv = Condition.create () }

let fulfill it line =
  Mutex.lock it.im;
  it.reply <- Some line;
  Condition.broadcast it.icv;
  Mutex.unlock it.im

let await it =
  Mutex.lock it.im;
  while it.reply = None do
    Condition.wait it.icv it.im
  done;
  let r = Option.get it.reply in
  Mutex.unlock it.im;
  r

let try_reply it =
  Mutex.lock it.im;
  let r = it.reply in
  Mutex.unlock it.im;
  r

(* ---- connections ---- *)

let open_endpoint s =
  match s.endpoint with
  | Channels (ic, oc) -> { ic; oc }
  | Socket path ->
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
    { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  | Spawn argv ->
    (* child stdin/stdout pipes; the parent ends stay close-on-exec so
       sibling shards never hold each other's descriptors open *)
    let in_r, in_w = Unix.pipe ~cloexec:true () in
    let out_r, out_w = Unix.pipe ~cloexec:true () in
    let pid = Unix.create_process argv.(0) argv in_r out_w Unix.stderr in
    Unix.close in_r;
    Unix.close out_w;
    s.pid <- Some pid;
    { ic = Unix.in_channel_of_descr out_r; oc = Unix.out_channel_of_descr in_w }

(* Nudge a shard whose dispatcher may be blocked in [input_line]: for a
   socket (ic and oc share one fd) a shutdown wakes the reader with EOF;
   for pipes/channels, closing our write end EOFs the shard's stdin so
   its serve loop returns and closes the read side.  Never touches [ic]
   — [close_in] from another domain would block on the channel lock the
   reader holds. *)
let nudge_conn s c =
  match s.endpoint with
  | Socket _ ->
    (try Unix.shutdown (Unix.descr_of_out_channel c.oc) Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ | Sys_error _ -> ())
  | Spawn _ | Channels _ -> ( try close_out c.oc with Sys_error _ -> ())

(* Full close, only ever from the shard's own dispatcher (so nobody is
   blocked reading [ic]).  A socket's fd is closed exactly once — via
   [oc] — and [ic] is left to the GC, so a reused fd number can never be
   closed out from under another session. *)
let close_conn s c =
  match s.endpoint with
  | Socket _ ->
    (try Unix.shutdown (Unix.descr_of_out_channel c.oc) Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ | Sys_error _ -> ());
    (try close_out c.oc with Sys_error _ -> ())
  | Spawn _ | Channels _ ->
    (try close_out c.oc with Sys_error _ -> ());
    (try close_in c.ic with Sys_error _ -> ())

let get_conn s =
  match s.conn with
  | Some c -> c
  | None ->
    let c = open_endpoint s in
    s.conn <- Some c;
    c

(* Reap a spawned child: grace for a polite (quit), then SIGKILL. *)
let reap_child s =
  match s.pid with
  | None -> ()
  | Some pid ->
    s.pid <- None;
    let rec wait tries =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
        if tries <= 0 then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
        end
        else begin
          Unix.sleepf 0.05;
          wait (tries - 1)
        end
      | _ -> ()
      | exception Unix.Unix_error _ -> ()
    in
    wait 40

(* ---- placement (all under t.m) ---- *)

let shard_by_id t sid = Array.to_list t.shards |> List.find (fun s -> s.sid = sid)

let count_placement t kind n =
  match List.assoc_opt kind t.placements with
  | Some c -> Obs.Metric.Counter.add c n
  | None -> ()

let enqueue_locked t s it ~kind =
  Obs.Metric.Counter.incr s.routed;
  count_placement t kind 1;
  Queue.add it s.q;
  Condition.broadcast t.cv

(* The next healthy shard this item has not yet been sent to, in ring
   preference order for its key (any order for keyless/uniform items). *)
let next_candidate_locked t it =
  let pref =
    match it.kind with
    | `Job (Some key) when t.placement <> Uniform -> Ring.owners t.ring key
    | _ -> Array.to_list (Array.map (fun s -> s.sid) t.shards)
  in
  List.find_opt
    (fun sid ->
       let s = shard_by_id t sid in
       s.alive && not (List.mem sid it.tried))
    pref
  |> Option.map (shard_by_id t)

let choose_initial_locked t key =
  let alive = Array.to_list t.shards |> List.filter (fun s -> s.alive) in
  if alive = [] then None
  else
    match t.placement, key with
    | Uniform, _ | _, None ->
      t.rr <- t.rr + 1;
      Some (List.nth alive (t.rr mod List.length alive), "uniform")
    | (Cache_aware | Hash_only), Some key ->
      let cache_owner =
        if t.placement = Cache_aware then Hashtbl.find_opt t.owners_tbl key
        else None
      in
      (match cache_owner with
       | Some sid when (shard_by_id t sid).alive -> Some (shard_by_id t sid, "cache")
       | _ ->
         let pref = Ring.owners t.ring key in
         (match List.find_opt (fun sid -> (shard_by_id t sid).alive) pref with
          | Some sid when Some sid = List.nth_opt pref 0 ->
            Some (shard_by_id t sid, "hash")
          | Some sid -> Some (shard_by_id t sid, "failover")
          | None -> None))

(* Reroute a job that its shard failed or refused; [fallback] is the
   reply when no healthy shard remains (typed shard_down for a death,
   the shard's own overloaded reply for a drain). *)
let reroute_locked t it ~kind ~fallback =
  match it.kind with
  | `Raw -> fulfill it fallback
  | `Job _ ->
    (match next_candidate_locked t it with
     | Some s' -> enqueue_locked t s' it ~kind
     | None -> fulfill it fallback)

let mark_down_locked t s =
  if s.alive then begin
    s.alive <- false;
    Obs.Metric.Counter.incr s.downs;
    (match s.conn with Some c -> nudge_conn s c | None -> ());
    let pending = List.of_seq (Queue.to_seq s.q) in
    Queue.clear s.q;
    List.iter
      (fun it ->
         reroute_locked t it ~kind:"failover" ~fallback:(shard_down_line it.line))
      pending;
    Condition.broadcast t.cv
  end

(* ---- dispatcher ---- *)

(* Steal half the longest queue (>= steal_min) onto idle shard [s],
   preferring items the victim holds no cached result for — stealing a
   cache-owned key would convert its hit into a miss on the thief. *)
let steal_locked t s =
  if t.steal_min <= 0 then false
  else begin
    let best = ref None in
    Array.iter
      (fun v ->
         if v != s && v.alive then begin
           let len = Queue.length v.q in
           if len >= t.steal_min then
             match !best with
             | Some (_, blen) when blen >= len -> ()
             | _ -> best := Some (v, len)
         end)
      t.shards;
    match !best with
    | None -> false
    | Some (v, len) ->
      let k = (len + 1) / 2 in
      let all = List.of_seq (Queue.to_seq v.q) in
      Queue.clear v.q;
      let owned it =
        match it.kind with
        | `Job (Some key) -> Hashtbl.find_opt t.owners_tbl key = Some v.sid
        | _ -> false
      in
      let take_last n l =
        let len = List.length l in
        if len <= n then l else List.filteri (fun i _ -> i >= len - n) l
      in
      let free, held = List.partition (fun it -> not (owned it)) all in
      let stolen =
        if List.length free >= k then take_last k free
        else free @ take_last (k - List.length free) held
      in
      let kept = List.filter (fun it -> not (List.memq it stolen)) all in
      List.iter (fun it -> Queue.add it v.q) kept;
      List.iter (fun it -> Queue.add it s.q) stolen;
      Obs.Metric.Counter.add v.steals (List.length stolen);
      count_placement t "steal" (List.length stolen);
      not (Queue.is_empty s.q)
  end

(* Take the next micro-batch: a Raw line travels alone (its reply count
   differs from a job's), jobs group up to batch_max.  Marks each item
   as tried at this shard. *)
let take_batch_locked t s =
  let first = Queue.pop s.q in
  first.tried <- s.sid :: first.tried;
  match first.kind with
  | `Raw -> [ first ]
  | `Job _ ->
    let rec grab acc n =
      if n >= t.batch_max || Queue.is_empty s.q then List.rev acc
      else
        match Queue.peek s.q with
        | { kind = `Raw; _ } -> List.rev acc
        | _ ->
          let it = Queue.pop s.q in
          it.tried <- s.sid :: it.tried;
          grab (it :: acc) (n + 1)
    in
    first :: grab [] 1

let process t s batch =
  let result =
    try
      let conn = get_conn s in
      let payload =
        match batch with
        | [ it ] -> it.line
        | items ->
          "(batch " ^ String.concat " " (List.map (fun it -> it.line) items) ^ ")"
      in
      let t0 = Unix.gettimeofday () in
      output_string conn.oc payload;
      output_char conn.oc '\n';
      flush conn.oc;
      let replies = List.map (fun it -> (it, input_line conn.ic)) batch in
      Ok (replies, Unix.gettimeofday () -. t0)
    with End_of_file | Sys_error _ | Unix.Unix_error _ -> Error ()
  in
  match result with
  | Error () ->
    (* shard gone mid-flight: declare it down and fail the batch over *)
    Mutex.lock t.m;
    s.inflight <- 0;
    mark_down_locked t s;
    List.iter
      (fun it ->
         reroute_locked t it ~kind:"failover" ~fallback:(shard_down_line it.line))
      batch;
    Condition.broadcast t.cv;
    Mutex.unlock t.m
  | Ok (replies, dt) ->
    Obs.Metric.Histogram.record t.batch_seconds dt;
    Mutex.lock t.m;
    s.inflight <- 0;
    List.iter
      (fun (it, reply) ->
         if contains reply "\"status\":\"overloaded\""
         && next_candidate_locked t it <> None then
           (* the PR 4 ladder, cluster rung: drain refused work to a
              healthy shard instead of bouncing the client *)
           reroute_locked t it ~kind:"drain" ~fallback:reply
         else begin
           (match it.kind with
            | `Job (Some key) when contains reply "\"status\":\"ok\"" ->
              if Hashtbl.length t.owners_tbl > owners_cap then
                Hashtbl.reset t.owners_tbl;
              Hashtbl.replace t.owners_tbl key s.sid
            | _ -> ());
           if contains reply "\"cached\":true" then Obs.Metric.Counter.incr s.hits;
           fulfill it reply
         end)
      replies;
    Condition.broadcast t.cv;
    Mutex.unlock t.m

let teardown t s =
  Mutex.lock t.m;
  let conn =
    match s.conn, s.endpoint with
    | (Some _ as c), _ -> c
    (* adopted channels we never spoke to still need the quit/close, or
       the far side's serve loop blocks on its read forever *)
    | None, Channels (ic, oc) -> Some { ic; oc }
    | None, (Spawn _ | Socket _) -> None
  in
  s.conn <- None;
  Mutex.unlock t.m;
  (match conn with
   | None -> ()
   | Some c ->
     (match s.endpoint with
      | Spawn _ | Channels _ ->
        (* owned shards get a polite quit so their serve loop returns *)
        (try
           output_string c.oc "(quit)\n";
           flush c.oc
         with Sys_error _ | Unix.Unix_error _ -> ())
      | Socket _ -> ());
     close_conn s c);
  reap_child s

let dispatcher t s =
  let rec loop () =
    Mutex.lock t.m;
    let rec decide () =
      if not s.alive then `Exit
      else if not (Queue.is_empty s.q) then `Work
      else if steal_locked t s then `Work
      else if t.stopping then `Exit
      else begin
        Condition.wait t.cv t.m;
        decide ()
      end
    in
    match decide () with
    | `Exit ->
      Mutex.unlock t.m;
      teardown t s
    | `Work ->
      let batch = take_batch_locked t s in
      s.inflight <- List.length batch;
      Mutex.unlock t.m;
      process t s batch;
      loop ()
  in
  loop ()

(* ---- construction ---- *)

let create ?(vnodes = 64) ?(batch_max = 16) ?(steal_min = 2)
    ?(placement = Cache_aware) ?metrics ~shards () =
  if shards = [] then invalid_arg "Router.create: no shards";
  if batch_max < 1 then invalid_arg "Router.create: batch_max < 1";
  (* a dead shard must surface as a broken write, not kill the router *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let metrics = match metrics with Some r -> r | None -> Obs.Registry.create () in
  let ring = Ring.create ~vnodes (List.map fst shards) in
  let shard_of (sid, endpoint) =
    let c name help =
      Obs.Registry.counter metrics ~help ~labels:[ ("shard", sid) ] name
    in
    { sid; endpoint; conn = None; pid = None; alive = true;
      q = Queue.create (); inflight = 0;
      routed = c "small_router_requests_total" "requests routed to this shard";
      hits = c "small_router_hits_total" "replies served from this shard's cache";
      steals = c "small_router_steals_total" "queued jobs stolen from this shard";
      downs = c "small_router_shard_down_total" "times this shard was marked down" }
  in
  let placements =
    List.map
      (fun kind ->
         ( kind,
           Obs.Registry.counter metrics
             ~help:"routing decisions, by placement kind"
             ~labels:[ ("kind", kind) ] "small_router_placement_total" ))
      [ "cache"; "hash"; "uniform"; "failover"; "drain"; "steal" ]
  in
  let t =
    { ring; shards = Array.of_list (List.map shard_of shards);
      placement; batch_max; steal_min;
      m = Mutex.create (); cv = Condition.create ();
      owners_tbl = Hashtbl.create 1024;
      digests = Hashtbl.create 16; dm = Mutex.create ();
      rr = -1; stopping = false; dispatchers = [];
      placements;
      batch_seconds =
        Obs.Registry.histogram metrics
          ~help:"shard round-trip seconds per micro-batch"
          "small_router_batch_seconds" }
  in
  t.dispatchers <-
    Array.to_list (Array.map (fun s -> Domain.spawn (fun () -> dispatcher t s)) t.shards);
  t

(* ---- routing keys ---- *)

(* The placement key is exactly the shard-local result-cache key, so
   "route to the cached result" and "the shard will hit its cache" agree
   by construction.  Trace-file digests are memoised per path. *)
let placement_key t (job : Server.Job.t) =
  let trace_digest () =
    match job.source with
    | Server.Job.Trace_file path ->
      Mutex.lock t.dm;
      let memo = Hashtbl.find_opt t.digests path in
      Mutex.unlock t.dm;
      (match memo with
       | Some d -> d
       | None ->
         let d = Server.Exec.trace_digest job.source in
         Mutex.lock t.dm;
         Hashtbl.replace t.digests path d;
         Mutex.unlock t.dm;
         d)
    | Server.Job.Workload _ -> Server.Exec.trace_digest job.source
  in
  match trace_digest () with
  | d -> Some (Server.Result_cache.key ~trace_digest:d ~job_digest:(Server.Job.digest job))
  | exception _ -> None

(* ---- the public request path ---- *)

let submit_line t line =
  match Sexp.parse line with
  | exception Sexp.Reader.Parse_error msg ->
    let r = error_line ("parse error: " ^ msg) in
    fun () -> r
  | d ->
    (match Server.Job.of_sexp d with
     | Error msg ->
       let r = error_line msg in
       fun () -> r
     | Ok job ->
       let key = placement_key t job in
       let it = make_item ~line ~kind:(`Job key) in
       Mutex.lock t.m;
       if t.stopping then begin
         Mutex.unlock t.m;
         let r = error_line "router is shutting down" in
         fun () -> r
       end
       else
         match choose_initial_locked t key with
         | None ->
           Mutex.unlock t.m;
           let r = shard_down_line line in
           fun () -> r
         | Some (s, kind) ->
           enqueue_locked t s it ~kind;
           Mutex.unlock t.m;
           fun () -> await it)

let stats_json t =
  Mutex.lock t.m;
  let shard_objs =
    Array.to_list t.shards
    |> List.map (fun s ->
        ( s.sid,
          Server.Json.Obj
            [ ("alive", Server.Json.Bool s.alive);
              ("routed", Server.Json.Int (Obs.Metric.Counter.get s.routed));
              ("hits", Server.Json.Int (Obs.Metric.Counter.get s.hits));
              ("stolen_from", Server.Json.Int (Obs.Metric.Counter.get s.steals));
              ("downs", Server.Json.Int (Obs.Metric.Counter.get s.downs));
              ("queued", Server.Json.Int (Queue.length s.q));
              ("inflight", Server.Json.Int s.inflight) ] ))
  in
  let healthy =
    Array.fold_left (fun n s -> if s.alive then n + 1 else n) 0 t.shards
  in
  let owner_keys = Hashtbl.length t.owners_tbl in
  Mutex.unlock t.m;
  Server.Json.Obj
    [ ("status", Server.Json.Str "ok");
      ("router", Server.Json.Bool true);
      ("shards_total", Server.Json.Int (Array.length t.shards));
      ("shards_healthy", Server.Json.Int healthy);
      (* size of the cache-aware placement map: shard stores must keep
         key lookups cheap for this table to stay warm and useful *)
      ("owner_keys", Server.Json.Int owner_keys);
      ("placement",
       Server.Json.Obj
         (List.map
            (fun (k, c) -> (k, Server.Json.Int (Obs.Metric.Counter.get c)))
            t.placements));
      ("shards", Server.Json.Obj shard_objs) ]

let handle_line t line =
  let line = String.trim line in
  if line = "" then []
  else
    match Sexp.parse line with
    | exception Sexp.Reader.Parse_error msg -> [ error_line ("parse error: " ^ msg) ]
    | Sexp.Datum.Cons (Sym "stats", Nil) -> [ Server.Json.to_string (stats_json t) ]
    | Sexp.Datum.Cons (Sym "ping", Nil) -> [ pong_line ]
    | Sexp.Datum.Cons (Sym "batch", rest) when Sexp.Datum.is_list rest ->
      (* route every job before awaiting any reply: the shards run the
         batch concurrently, replies keep request order *)
      let joins =
        List.map (fun d -> submit_line t (Sexp.to_string d)) (Sexp.Datum.to_list rest)
      in
      List.map (fun j -> j ()) joins
    | _ -> [ submit_line t line () ]

(* ---- health surface ---- *)

let shard_ids t = Array.to_list t.shards |> List.map (fun s -> s.sid)

let alive_ids t =
  Mutex.lock t.m;
  let ids = Array.to_list t.shards |> List.filter (fun s -> s.alive) in
  Mutex.unlock t.m;
  List.map (fun s -> s.sid) ids

let spawned_pids t =
  Mutex.lock t.m;
  let ps =
    Array.to_list t.shards
    |> List.filter_map (fun s ->
        match s.pid with Some pid when s.alive -> Some (s.sid, pid) | _ -> None)
  in
  Mutex.unlock t.m;
  ps

let is_idle t sid =
  Mutex.lock t.m;
  let r =
    match Array.to_list t.shards |> List.find_opt (fun s -> s.sid = sid) with
    | Some s -> s.alive && Queue.is_empty s.q && s.inflight = 0
    | None -> false
  in
  Mutex.unlock t.m;
  r

let probe t sid =
  Mutex.lock t.m;
  let r =
    match Array.to_list t.shards |> List.find_opt (fun s -> s.sid = sid) with
    | Some s when s.alive ->
      let it = make_item ~line:"(ping)" ~kind:`Raw in
      Queue.add it s.q;
      Condition.broadcast t.cv;
      Some (fun () -> try_reply it)
    | _ -> None
  in
  Mutex.unlock t.m;
  r

let mark_down t sid =
  Mutex.lock t.m;
  (match Array.to_list t.shards |> List.find_opt (fun s -> s.sid = sid) with
   | Some s -> mark_down_locked t s
   | None -> ());
  Mutex.unlock t.m

let kill t sid =
  (match
     Array.to_list t.shards |> List.find_opt (fun s -> s.sid = sid)
   with
   | Some { pid = Some pid; _ } ->
     (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
   | _ -> ());
  mark_down t sid

(* ---- serving ---- *)

let serve_channels t ic oc =
  let quit = ref false in
  (try
     while not !quit do
       let line = input_line ic in
       if String.trim line = "(quit)" then quit := true
       else
         List.iter
           (fun resp -> output_string oc resp; output_char oc '\n'; flush oc)
           (handle_line t line)
     done
   with End_of_file -> ());
  !quit

let serve_socket t ~path =
  Server.Service.remove_stale_socket path;
  (* every router-held fd must be close-on-exec: shard children are
     spawned while sessions are live, and an inherited copy of a client
     connection would keep it open after the session closes — the client
     then never sees EOF *)
  let sock = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let stop = Atomic.make false in
  let sm = Mutex.create () in
  let sessions = ref [] in
  Fun.protect
    ~finally:(fun () ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        Mutex.lock sm;
        let ds = !sessions in
        sessions := [];
        Mutex.unlock sm;
        List.iter Domain.join ds)
    (fun () ->
       Unix.bind sock (Unix.ADDR_UNIX path);
       Unix.listen sock 64;
       while not (Atomic.get stop) do
         match Unix.accept sock with
         | exception Unix.Unix_error _ -> Atomic.set stop true
         | fd, _ ->
           (try Unix.set_close_on_exec fd with Unix.Unix_error _ -> ());
           if Atomic.get stop then (try Unix.close fd with Unix.Unix_error _ -> ())
           else begin
             let d =
               Domain.spawn (fun () ->
                   let ic = Unix.in_channel_of_descr fd in
                   let oc = Unix.out_channel_of_descr fd in
                   (match serve_channels t ic oc with
                    | true ->
                      Atomic.set stop true;
                      (* a throwaway connection unblocks the accept loop *)
                      (try
                         let c = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
                         (try Unix.connect c (Unix.ADDR_UNIX path)
                          with Unix.Unix_error _ -> ());
                         Unix.close c
                       with Unix.Unix_error _ -> ())
                    | false -> ()
                    | exception Sys_error _ -> ());
                   (try flush oc with Sys_error _ -> ());
                   try Unix.close fd with Unix.Unix_error _ -> ())
             in
             Mutex.lock sm;
             sessions := d :: !sessions;
             Mutex.unlock sm
           end
       done)

let shutdown t =
  Mutex.lock t.m;
  let first = not t.stopping in
  t.stopping <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  if first then List.iter Domain.join t.dispatchers
