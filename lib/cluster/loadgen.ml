type mode =
  | Closed
  | Open of float

type config = {
  requests : int;
  clients : int;
  universe : int;
  theta : float;
  seed : int;
  mode : mode;
  workload : string;
  size : int;
  deadline : float option;   (* per-job (deadline S) budget *)
}

let default =
  { requests = 512; clients = 4; universe = 64; theta = 0.99; seed = 1;
    mode = Closed; workload = "slang"; size = 256; deadline = None }

type report = {
  wall_seconds : float;
  issued : int;
  ok : int;
  cached : int;
  overloaded : int;
  shard_down : int;
  timeouts : int;     (* typed deadline replies: expected under chaos, not failures *)
  cancelled : int;
  failed : int;
  throughput : float;
  mean_ms : float;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  by_shard : (string * int) list;
}

(* ---- zipf ---- *)

(* Inverse-CDF sampling: P(rank i) proportional to 1/(i+1)^theta.  The CDF is
   precomputed once; each draw is one uniform float and a binary search. *)
let sampler ~theta ~n =
  if n < 1 then invalid_arg "Loadgen.sampler: n < 1";
  if theta < 0.0 then invalid_arg "Loadgen.sampler: negative theta";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) theta);
    cdf.(i) <- !acc
  done;
  let total = !acc in
  fun rng ->
    let u = Util.Rng.float rng *. total in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo

(* ---- reply classification ---- *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let shard_of reply =
  let marker = "\"shard\":\"" in
  let mn = String.length marker in
  let rec find i =
    if i + mn > String.length reply then None
    else if String.sub reply i mn = marker then
      let j = ref (i + mn) in
      while !j < String.length reply && reply.[!j] <> '"' do incr j done;
      Some (String.sub reply (i + mn) (!j - (i + mn)))
    else find (i + 1)
  in
  find 0

(* ---- per-client tallies, merged at the end ---- *)

type tally = {
  mutable t_issued : int;
  mutable t_ok : int;
  mutable t_cached : int;
  mutable t_overloaded : int;
  mutable t_shard_down : int;
  mutable t_timeout : int;
  mutable t_cancelled : int;
  mutable t_failed : int;
  mutable t_sum : float;
  shards : (string, int) Hashtbl.t;
}

let tally () =
  { t_issued = 0; t_ok = 0; t_cached = 0; t_overloaded = 0; t_shard_down = 0;
    t_timeout = 0; t_cancelled = 0; t_failed = 0; t_sum = 0.0;
    shards = Hashtbl.create 8 }

let classify ty reply dt =
  ty.t_issued <- ty.t_issued + 1;
  ty.t_sum <- ty.t_sum +. dt;
  if contains reply "\"status\":\"ok\"" then begin
    ty.t_ok <- ty.t_ok + 1;
    if contains reply "\"cached\":true" then ty.t_cached <- ty.t_cached + 1
  end
  else if contains reply "\"status\":\"overloaded\"" then
    ty.t_overloaded <- ty.t_overloaded + 1
  else if contains reply "\"status\":\"shard_down\"" then
    ty.t_shard_down <- ty.t_shard_down + 1
  else if contains reply "\"status\":\"timeout\"" then
    ty.t_timeout <- ty.t_timeout + 1
  else if contains reply "\"status\":\"cancelled\"" then
    ty.t_cancelled <- ty.t_cancelled + 1
  else ty.t_failed <- ty.t_failed + 1;
  match shard_of reply with
  | None -> ()
  | Some sid ->
    Hashtbl.replace ty.shards sid
      (1 + Option.value ~default:0 (Hashtbl.find_opt ty.shards sid))

(* ---- the harness ---- *)

let job_line cfg rank =
  let deadline =
    match cfg.deadline with
    | Some d -> Printf.sprintf " (deadline %g)" d
    | None -> ""
  in
  Printf.sprintf "(simulate (workload %s) (size %d) (seed %d)%s)"
    cfg.workload cfg.size rank deadline

let run ?after ~submit cfg =
  if cfg.requests < 1 then invalid_arg "Loadgen.run: requests < 1";
  if cfg.clients < 1 then invalid_arg "Loadgen.run: clients < 1";
  let hist =
    Obs.Metric.Histogram.create
      ~bounds:Obs.Metric.Histogram.fine_latency_bounds ()
  in
  let zipf = sampler ~theta:cfg.theta ~n:cfg.universe in
  let completions = Atomic.make 0 in
  let hook_done = Atomic.make false in
  let on_completion () =
    let n = Atomic.fetch_and_add completions 1 + 1 in
    match after with
    | Some (k, f) when n >= k ->
      if Atomic.compare_and_set hook_done false true then f ()
    | _ -> ()
  in
  (* closed loop: clients race on a shared budget; open loop: request i
     fires at t0 + i/rate, client (i mod clients) owns it *)
  let budget = Atomic.make cfg.requests in
  let t0 = Unix.gettimeofday () in
  let client idx =
    let rng = ref (Util.Rng.create ~seed:(cfg.seed * 7919 + idx)) in
    let ty = tally () in
    (match cfg.mode with
     | Closed ->
       let rec go () =
         if Atomic.fetch_and_add budget (-1) > 0 then begin
           let line = job_line cfg (zipf !rng) in
           let start = Unix.gettimeofday () in
           let reply = submit line () in
           let dt = Unix.gettimeofday () -. start in
           Obs.Metric.Histogram.record hist dt;
           classify ty reply dt;
           on_completion ();
           go ()
         end
       in
       go ()
     | Open rate ->
       if rate <= 0.0 then invalid_arg "Loadgen.run: open-loop rate <= 0";
       let i = ref idx in
       while !i < cfg.requests do
         let intended = t0 +. (float_of_int !i /. rate) in
         let now = Unix.gettimeofday () in
         if intended > now then Unix.sleepf (intended -. now);
         let line = job_line cfg (zipf !rng) in
         let reply = submit line () in
         (* latency from the intended arrival: waiting in our own queue
            counts against the server, not in its favour *)
         let dt = Unix.gettimeofday () -. intended in
         Obs.Metric.Histogram.record hist dt;
         classify ty reply dt;
         on_completion ();
         i := !i + cfg.clients
       done);
    ty
  in
  let tallies =
    if cfg.clients = 1 then [ client 0 ]
    else
      List.init cfg.clients (fun idx -> Domain.spawn (fun () -> client idx))
      |> List.map Domain.join
  in
  let wall = Unix.gettimeofday () -. t0 in
  let sum f = List.fold_left (fun a ty -> a + f ty) 0 tallies in
  let by_shard = Hashtbl.create 8 in
  List.iter
    (fun ty ->
       Hashtbl.iter
         (fun sid n ->
            Hashtbl.replace by_shard sid
              (n + Option.value ~default:0 (Hashtbl.find_opt by_shard sid)))
         ty.shards)
    tallies;
  let snap = Obs.Metric.Histogram.snapshot hist in
  let q p = Obs.Metric.Histogram.quantile snap p *. 1000.0 in
  let issued = sum (fun ty -> ty.t_issued) in
  { wall_seconds = wall;
    issued;
    ok = sum (fun ty -> ty.t_ok);
    cached = sum (fun ty -> ty.t_cached);
    overloaded = sum (fun ty -> ty.t_overloaded);
    shard_down = sum (fun ty -> ty.t_shard_down);
    timeouts = sum (fun ty -> ty.t_timeout);
    cancelled = sum (fun ty -> ty.t_cancelled);
    failed = sum (fun ty -> ty.t_failed);
    throughput = (if wall > 0.0 then float_of_int issued /. wall else 0.0);
    mean_ms =
      (if issued > 0 then
         List.fold_left (fun a ty -> a +. ty.t_sum) 0.0 tallies
         /. float_of_int issued *. 1000.0
       else 0.0);
    p50_ms = q 0.5;
    p99_ms = q 0.99;
    p999_ms = q 0.999;
    by_shard =
      Hashtbl.fold (fun sid n acc -> (sid, n) :: acc) by_shard []
      |> List.sort compare }

(* ---- rendering ---- *)

let report_text r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "requests   %d in %.2fs  (%.1f req/s)\n"
       r.issued r.wall_seconds r.throughput);
  Buffer.add_string b
    (Printf.sprintf
       "status     ok %d (cached %d)  overloaded %d  shard_down %d  timeout %d  \
        cancelled %d  failed %d\n"
       r.ok r.cached r.overloaded r.shard_down r.timeouts r.cancelled r.failed);
  Buffer.add_string b
    (Printf.sprintf "latency ms mean %.3f  p50 %.3f  p99 %.3f  p999 %.3f\n"
       r.mean_ms r.p50_ms r.p99_ms r.p999_ms);
  List.iter
    (fun (sid, n) ->
       Buffer.add_string b (Printf.sprintf "shard      %-12s %d replies\n" sid n))
    r.by_shard;
  Buffer.contents b

let report_json r =
  Server.Json.Obj
    [ ("status", Server.Json.Str "ok");
      ("wall_seconds", Server.Json.Float r.wall_seconds);
      ("issued", Server.Json.Int r.issued);
      ("ok", Server.Json.Int r.ok);
      ("cached", Server.Json.Int r.cached);
      ("overloaded", Server.Json.Int r.overloaded);
      ("shard_down", Server.Json.Int r.shard_down);
      ("timeouts", Server.Json.Int r.timeouts);
      ("cancelled", Server.Json.Int r.cancelled);
      ("failed", Server.Json.Int r.failed);
      ("throughput", Server.Json.Float r.throughput);
      ("latency_ms",
       Server.Json.Obj
         [ ("mean", Server.Json.Float r.mean_ms);
           ("p50", Server.Json.Float r.p50_ms);
           ("p99", Server.Json.Float r.p99_ms);
           ("p999", Server.Json.Float r.p999_ms) ]);
      ("by_shard",
       Server.Json.Obj
         (List.map (fun (sid, n) -> (sid, Server.Json.Int n)) r.by_shard)) ]
