(** The cluster front: consistent-hash, cache-aware routing of job
    requests onto N backend smalld shards speaking the newline-sexp wire
    protocol.

    Each shard is a connection — a spawned [smallsim serve --stdio]
    child, a Unix-socket server, or a pre-connected channel pair (tests,
    benches) — owned by one dispatcher domain.  Requests are enqueued
    per shard; a dispatcher drains its queue in micro-batches (one
    [(batch ...)] line exploits the shard's worker pool), so queued work
    is visible and an idle shard's dispatcher steals from the longest
    queue.

    Placement, per job:
    - {b cache-aware} (default): the shard that last produced this key's
      result (so a repeat config lands on the shard whose cache holds
      it), falling back on ring ownership;
    - {b hash}: ring ownership only;
    - {b uniform}: round-robin — the locality-blind baseline the load
      harness measures against.

    The overload ladder extends PR 4's: a shard answering [overloaded]
    has the request drained to the next healthy shard in ring preference
    order; a dead shard (connection error, health-check verdict) has its
    queue failed over likewise; only when no healthy shard remains does
    the client see a typed [shard_down] reply.  All replies otherwise
    pass through byte-for-byte, so a cluster run is byte-identical to a
    single-process one (modulo ["shard"]/["elapsed"] fields). *)

type t

type endpoint =
  | Spawn of string array
      (** argv of a child process serving the wire protocol on stdio;
          argv.(0) is the executable path *)
  | Socket of string                         (** Unix-socket server path *)
  | Channels of in_channel * out_channel     (** pre-connected (tests) *)

type placement = Cache_aware | Hash_only | Uniform

(** [create ?vnodes ?batch_max ?steal_min ?placement ?metrics ~shards ()]
    connects (lazily) to the named shards and spawns one dispatcher
    domain per shard.  [batch_max] (default 16) bounds a micro-batch;
    [steal_min] (default 2) is the queue length at which an idle
    dispatcher steals (half the victim's queue, preferring jobs the
    victim holds no cached result for); [0] disables stealing.
    [metrics] receives the [small_router_*] families.  SIGPIPE is set to
    ignore (a dead shard must surface as an error, not kill the
    router). *)
val create :
  ?vnodes:int -> ?batch_max:int -> ?steal_min:int -> ?placement:placement ->
  ?metrics:Obs.Registry.t -> shards:(string * endpoint) list -> unit -> t

(** [submit_line t line] routes one job request line; the returned join
    blocks until the reply line.  Malformed jobs are answered
    immediately; an unroutable job (no healthy shard) yields the typed
    [shard_down] line. *)
val submit_line : t -> string -> unit -> string

(** One request line to reply lines, mirroring {!Server.Service.handle_line}:
    jobs route to shards, [(batch ...)] fans out and preserves order,
    [(stats)] answers with router stats, [(ping)] with a pong. *)
val handle_line : t -> string -> string list

(** Router-level stats: placement counts and per-shard
    alive/routed/hits/steals/queue depth. *)
val stats_json : t -> Server.Json.t

val shard_ids : t -> string list
val alive_ids : t -> string list

(** Spawned children still considered alive, as [(shard id, pid)]. *)
val spawned_pids : t -> (string * int) list

(** No job queued or in flight at the shard. *)
val is_idle : t -> string -> bool

(** [probe t sid] enqueues a [(ping)] on the shard's wire (FIFO with
    jobs); the returned thunk polls the reply without blocking.  [None]
    if the shard is down. *)
val probe : t -> string -> (unit -> string option) option

(** Declares a shard dead: closes its connection (waking a blocked
    dispatcher), fails its health probes, and reroutes its queued jobs
    to the next healthy shard (typed [shard_down] replies when none
    remains). *)
val mark_down : t -> string -> unit

(** [kill t sid] — SIGKILL a spawned shard (tests, fault drills), then
    {!mark_down} it. *)
val kill : t -> string -> unit

(** Serves the wire protocol until EOF or [(quit)]; [true] iff quit. *)
val serve_channels : t -> in_channel -> out_channel -> bool

(** Binds [path] (stale files removed, live servers refused — see
    {!Server.Service.remove_stale_socket}) and serves {e concurrent}
    sessions, one domain each, until some client sends [(quit)]. *)
val serve_socket : t -> path:string -> unit

(** Drains every queue, politely quits spawned/adopted shards, reaps
    children, joins the dispatchers.  Idempotent. *)
val shutdown : t -> unit
