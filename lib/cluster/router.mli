(** The cluster front: consistent-hash, cache-aware routing of job
    requests onto N backend smalld shards speaking the newline-sexp wire
    protocol.

    Each shard is a connection — a spawned [smallsim serve --stdio]
    child, a Unix-socket server, or a pre-connected channel pair (tests,
    benches) — owned by one dispatcher domain.  Requests are enqueued
    per shard; a dispatcher drains its queue in micro-batches (one
    [(batch ...)] line exploits the shard's worker pool), so queued work
    is visible and an idle shard's dispatcher steals from the longest
    queue.

    Placement, per job:
    - {b cache-aware} (default): the shard that last produced this key's
      result (so a repeat config lands on the shard whose cache holds
      it), falling back on ring ownership;
    - {b hash}: ring ownership only;
    - {b uniform}: round-robin — the locality-blind baseline the load
      harness measures against.

    The overload ladder extends PR 4's: a shard answering [overloaded]
    has the request drained to the next healthy shard in ring preference
    order; a dead shard (connection error, health-check verdict) has its
    queue failed over likewise; only when no healthy shard remains does
    the client see a typed [shard_down] reply.  All replies otherwise
    pass through byte-for-byte, so a cluster run is byte-identical to a
    single-process one (modulo ["shard"]/["elapsed"] fields).

    Resilience layer (this module's second half):
    - {b deadline propagation}: a job's [(deadline S)] budget becomes an
      absolute deadline at admission; each hop re-serialises the job
      with the remaining budget, the shard's scheduler enforces its
      share, and the router's pacer answers the typed timeout and sends
      a cross-wire [(cancel N)] so the shard worker is freed;
    - {b hedged execution}: an in-flight job outliving twice its shard's
      latency quantile is re-issued to the next ring owner; the first
      answer wins, the loser is cancelled, and the cache-owner table is
      updated to the winner (hinted handoff);
    - {b circuit breakers}: per-shard {!Breaker}s fed by reply
      outcomes, probe RTTs and queue depth gate placement (failing open
      when every breaker refuses), with [small_breaker_*] metrics;
    - {b loss detection}: every routed line carries a wire id; a silent
      shard is sync-pinged, and the ordered reply stream turns the pong
      into proof that still-pending requests were dropped — they are
      re-sent a bounded number of times;
    - {b chaos}: with a {!Fault.Plan.t}, sends draw network faults
      (delay/drop/dup/reorder/one-way partition) at sites [net.<sid>]
      and process faults (slow-shard stall, crash-restart) at
      [proc.<sid>];
    - {b revival}: when enabled, crash-restarted spawn/socket shards are
      re-adopted by a pacer sweep, their breakers open until proven. *)

type t

type endpoint =
  | Spawn of string array
      (** argv of a child process serving the wire protocol on stdio;
          argv.(0) is the executable path *)
  | Socket of string                         (** Unix-socket server path *)
  | Channels of in_channel * out_channel     (** pre-connected (tests) *)

type placement = Cache_aware | Hash_only | Uniform

(** [create ?vnodes ?batch_max ?steal_min ?placement ?metrics ~shards ()]
    connects (lazily) to the named shards and spawns one dispatcher
    domain per shard plus one pacer domain.  [batch_max] (default 16)
    bounds a micro-batch; [steal_min] (default 2) is the queue length at
    which an idle dispatcher steals (half the victim's queue, preferring
    jobs the victim holds no cached result for); [0] disables stealing.
    [metrics] receives the [small_router_*]/[small_breaker_*] families.

    Resilience knobs: [fault] injects seeded network/process chaos on
    the shard wires; [hedge_quantile] (default 0 = off) is the per-shard
    latency quantile whose doubling triggers a hedge, floored at
    [hedge_floor] seconds (default 0.01); [breaker] configures the
    per-shard circuit breakers; [stuck_after] (default 1.0) is the
    silence, in seconds, after which an in-flight batch is sync-pinged
    for loss detection; [revive] (default false) re-adopts
    crash-restarted spawn/socket shards; [metrics_file] makes the pacer
    write the Prometheus exposition there (atomic rename), twice a
    second and at shutdown.

    SIGPIPE is set to ignore (a dead shard must surface as an error, not
    kill the router). *)
val create :
  ?vnodes:int -> ?batch_max:int -> ?steal_min:int -> ?placement:placement ->
  ?metrics:Obs.Registry.t -> ?fault:Fault.Plan.t -> ?hedge_quantile:float ->
  ?hedge_floor:float -> ?breaker:Breaker.config -> ?stuck_after:float ->
  ?revive:bool -> ?metrics_file:string -> shards:(string * endpoint) list ->
  unit -> t

(** [submit_line t line] routes one job request line; the returned join
    blocks until the reply line.  Malformed jobs are answered
    immediately; an unroutable job (no healthy shard) yields the typed
    [shard_down] line. *)
val submit_line : t -> string -> unit -> string

(** One request line to reply lines, mirroring {!Server.Service.handle_line}:
    jobs route to shards, [(batch ...)] fans out and preserves order,
    [(stats)] answers with router stats, [(ping)]/[(ping (id N))] with a
    pong.  [(cancel N)] answers every in-flight job the client tagged
    [(id N)] with the typed cancelled reply (in its own slot — no reply
    line for the cancel itself) and forwards cross-wire cancels to the
    shards still running copies. *)
val handle_line : t -> string -> string list

(** [cancel_client t n] — the [(cancel n)] control path, directly. *)
val cancel_client : t -> int -> unit

(** Router-level stats: placement counts and per-shard
    alive/routed/hits/steals/queue depth. *)
val stats_json : t -> Server.Json.t

val shard_ids : t -> string list
val alive_ids : t -> string list

(** Spawned children still considered alive, as [(shard id, pid)]. *)
val spawned_pids : t -> (string * int) list

(** No job queued or in flight at the shard. *)
val is_idle : t -> string -> bool

(** [probe t sid] enqueues an identified [(ping (id N))] on the shard's
    wire (FIFO with jobs); the returned thunk polls the reply without
    blocking.  [None] if the shard is down.  The pong's round-trip feeds
    the shard's circuit breaker and {!shard_ping_ms}. *)
val probe : t -> string -> (unit -> string option) option

(** Last probe round-trip, in milliseconds; [None] before the first. *)
val shard_ping_ms : t -> string -> float option

(** Declares a shard dead: closes its connection (waking a blocked
    dispatcher), fails its health probes, and reroutes its queued jobs
    to the next healthy shard (typed [shard_down] replies when none
    remains). *)
val mark_down : t -> string -> unit

(** [kill t sid] — SIGKILL a spawned shard (tests, fault drills), then
    {!mark_down} it. *)
val kill : t -> string -> unit

(** [revive t sid] — re-adopt a down shard now (the pacer does this
    periodically when [revive:true]): joins the dead dispatcher, probes
    socket endpoints for reachability, then spawns a fresh dispatcher.
    [false] if the shard is alive, unreachable, a [Channels] endpoint,
    or the router is stopping. *)
val revive : t -> string -> bool

(** Serves the wire protocol until EOF or [(quit)]; [true] iff quit. *)
val serve_channels : t -> in_channel -> out_channel -> bool

(** Binds [path] (stale files removed, live servers refused — see
    {!Server.Service.remove_stale_socket}) and serves {e concurrent}
    sessions, one domain each, until some client sends [(quit)]. *)
val serve_socket : t -> path:string -> unit

(** Drains every queue, politely quits spawned/adopted shards, reaps
    children, joins the dispatchers.  Idempotent. *)
val shutdown : t -> unit
