(** Consistent-hash ring over named shards.

    Each shard contributes [vnodes] points on a 62-bit hash circle; a
    key is owned by the shard whose point follows the key's hash.  The
    defining property: removing one shard from an [n]-shard ring remaps
    only the keys that shard owned (about [1/n] of them) — every other
    key keeps its owner, which is what makes per-shard result caches
    survive membership churn.

    The ring is immutable; health filtering is the caller's business
    (walk {!owners} and pick the first healthy shard). *)

type t

(** [create ?vnodes ids] — [ids] must be non-empty and distinct.
    [vnodes] (default 64) trades placement smoothness for lookup-table
    size. *)
val create : ?vnodes:int -> string list -> t

val ids : t -> string list
val size : t -> int

(** The shard owning [key]. *)
val owner : t -> string -> string

(** All shards in preference order for [key]: the owner first, then the
    distinct shards met walking the circle — the failover order. *)
val owners : t -> string -> string list

(** [remove t id] — the ring without shard [id].
    @raise Invalid_argument if [id] is the last shard or not a member. *)
val remove : t -> string -> t

(** The stable 62-bit key hash (exposed for tests). *)
val hash : string -> int
