(** YCSB-style load harness for a routed (or single-process) smalld.

    Requests are [simulate] jobs drawn from a universe of [universe]
    distinct configurations whose popularity is zipfian with skew
    [theta] (0.99, the YCSB default) — a small hot set dominates, which
    is exactly the regime where cache-aware placement pays: the hot keys
    keep landing on the shard whose result cache already holds them.

    Two driving modes:
    - {b closed-loop}: [clients] concurrent clients, each submitting its
      next request the moment the previous reply arrives — measures
      capacity;
    - {b open-loop}: requests fired at a target aggregate rate on fixed
      intended arrival times; latency is measured {e from the intended
      arrival}, so queueing delay is charged to the server rather than
      silently absorbed (the coordinated-omission correction).

    Latencies land in an {!Obs} histogram with
    {!Obs.Metric.Histogram.fine_latency_bounds}, from which the report
    interpolates p50/p99/p999. *)

type mode =
  | Closed
  | Open of float   (** aggregate target rate, requests/second *)

type config = {
  requests : int;       (** total requests to issue *)
  clients : int;        (** concurrent client domains *)
  universe : int;       (** distinct job configurations *)
  theta : float;        (** zipfian skew; 0 = uniform popularity *)
  seed : int;           (** drives both popularity and client streams *)
  mode : mode;
  workload : string;    (** built-in workload the jobs simulate *)
  size : int;           (** simulated memory size knob *)
  deadline : float option;
  (** attach a [(deadline S)] budget to every job; an overrun earns the
      typed timeout reply, tallied in {!report.timeouts} *)
}

(** 512 requests, 4 clients, 64 configs, theta 0.99, seed 1, closed
    loop, workload ["slang"], size 256, no deadline. *)
val default : config

type report = {
  wall_seconds : float;
  issued : int;
  ok : int;
  cached : int;         (** ok replies served from a shard result cache *)
  overloaded : int;
  shard_down : int;
  timeouts : int;       (** typed deadline overruns — expected under chaos *)
  cancelled : int;      (** typed cancellations *)
  failed : int;         (** every other non-ok status *)
  throughput : float;   (** completed requests / wall second *)
  mean_ms : float;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  by_shard : (string * int) list;   (** replies per shard id, sorted *)
}

(** [sampler ~theta ~n] — a zipfian rank sampler over [0..n-1]; rank 0
    is the most popular.  [theta = 0] degenerates to uniform.  Exposed
    for tests. *)
val sampler : theta:float -> n:int -> Util.Rng.t -> int

(** [run ~submit cfg] drives the harness against [submit] (typically
    {!Router.submit_line}[ t] or a single-service wrapper).  [submit]
    must be callable from several domains.

    [after] — [(k, f)]: run [f] once, just after the [k]-th reply
    arrives (fault drills: kill a shard mid-run).  *)
val run :
  ?after:int * (unit -> unit) ->
  submit:(string -> unit -> string) -> config -> report

val report_text : report -> string
val report_json : report -> Server.Json.t
