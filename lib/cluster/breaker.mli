(** Per-shard circuit breaker: the preemptive half of the overload
    ladder.

    Closed admits traffic and counts consecutive failures; at
    [failures] it opens.  Open refuses admission for [cooldown]
    seconds, after which {!allow} admits exactly one half-open trial —
    a success closes the breaker, a failure re-arms the cooldown.
    Queue depth is a soft signal: a closed breaker whose last noted
    depth exceeds [queue_limit] refuses admission without changing
    state.  All operations are thread-safe. *)

type t

type state = Closed | Half_open | Open

type config = {
  failures : int;       (** consecutive failures to open; 0 disables *)
  cooldown : float;     (** seconds open before a half-open trial *)
  rtt_limit : float;    (** a ping RTT above this counts as a failure;
                            [infinity] disables *)
  queue_limit : int;    (** soft depth cap while closed; 0 disables *)
}

(** [failures = 4], [cooldown = 1.0], [rtt_limit = infinity],
    [queue_limit = 0]. *)
val default : config

(** [on_open] fires on each closed-to-open transition (metrics hook). *)
val create : ?config:config -> ?on_open:(unit -> unit) -> unit -> t

(** Time-aware view: an open breaker past its cooldown reads
    [Half_open].  Does not consume the half-open trial. *)
val state : t -> state

val state_name : state -> string

(** 0 closed, 1 half-open, 2 open — the gauge encoding. *)
val state_code : state -> int

(** May this shard receive new work?  In the half-open window this
    consumes the single trial slot. *)
val allow : t -> bool

val record_success : t -> unit
val record_failure : t -> unit

(** [record_rtt t rtt] — success below [rtt_limit], failure above. *)
val record_rtt : t -> float -> unit

val note_queue_depth : t -> int -> unit

(** Open immediately — the conviction path (a dead shard), bypassing
    the failure count. *)
val force_open : t -> unit

(** Closed-to-open transitions so far. *)
val opens : t -> int
