(** Shard health monitoring for a {!Router}.

    One monitor domain periodically checks every live shard:
    - a {e spawned} shard whose child process has exited is declared
      dead immediately (reaped via [waitpid WNOHANG]);
    - an idle shard is probed with a wire-level [(ping)]; a probe still
      unanswered after [down_after] seconds declares the shard dead.

    Probes ride the shard's own request queue, so a shard that is merely
    {e busy} never has a timeout held against it: the deadline is only
    armed when the shard was idle at probe time.  Declaring a shard dead
    goes through {!Router.mark_down} (spawned children are SIGKILLed
    first), which drains its queue onto the surviving shards. *)

type t

(** [start ?interval ?down_after router] spawns the monitor domain.
    [interval] (default 0.25s) is the check period; [down_after]
    (default 2s) is the unanswered-probe deadline. *)
val start : ?interval:float -> ?down_after:float -> Router.t -> t

(** Shards this monitor has declared dead, oldest first. *)
val deaths : t -> string list

(** Stops and joins the monitor domain.  Idempotent. *)
val stop : t -> unit
