type probe = {
  poll : unit -> string option;
  deadline : float option;   (* armed only if the shard was idle at send *)
}

type t = {
  router : Router.t;
  interval : float;
  down_after : float;
  m : Mutex.t;
  mutable stopping : bool;
  mutable dead : string list;   (* newest first *)
  mutable domain : unit Domain.t option;
}

let declare_dead t sid =
  (* kill (not just mark_down): a SIGKILL is the only wake-up that works
     on a spawned child that is alive but wedged *)
  Router.kill t.router sid;
  Mutex.lock t.m;
  if not (List.mem sid t.dead) then t.dead <- sid :: t.dead;
  Mutex.unlock t.m

let child_exited pid =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true
  | exception Unix.Unix_error _ -> false

let check t probes =
  (* real deaths first: an exited child needs no probe to convict it *)
  List.iter
    (fun (sid, pid) -> if child_exited pid then declare_dead t sid)
    (Router.spawned_pids t.router);
  let now = Unix.gettimeofday () in
  List.filter_map
    (fun sid ->
       if not (List.mem sid (Router.alive_ids t.router)) then None
       else
         match List.assoc_opt sid probes with
         | Some p ->
           (match p.poll () with
            | Some _ -> None                        (* answered; re-probe next tick *)
            | None ->
              (match p.deadline with
               | Some d when now > d ->
                 declare_dead t sid;
                 None
               | _ -> Some (sid, p)))               (* still waiting *)
         | None ->
           let idle = Router.is_idle t.router sid in
           (match Router.probe t.router sid with
            | None -> None
            | Some poll ->
              let deadline = if idle then Some (now +. t.down_after) else None in
              Some (sid, { poll; deadline })))
    (Router.shard_ids t.router)

let rec loop t probes =
  Mutex.lock t.m;
  let stop = t.stopping in
  if not stop then begin
    (* a sleep the stopper can interrupt *)
    let wake = Unix.gettimeofday () +. t.interval in
    let rec nap () =
      if (not t.stopping) && Unix.gettimeofday () < wake then begin
        Mutex.unlock t.m;
        Unix.sleepf 0.02;
        Mutex.lock t.m;
        nap ()
      end
    in
    nap ()
  end;
  let stop = t.stopping in
  Mutex.unlock t.m;
  if not stop then loop t (check t probes)

let start ?(interval = 0.25) ?(down_after = 2.0) router =
  let t =
    { router; interval; down_after;
      m = Mutex.create ();
      stopping = false; dead = []; domain = None }
  in
  t.domain <- Some (Domain.spawn (fun () -> loop t []));
  t

let deaths t =
  Mutex.lock t.m;
  let d = t.dead in
  Mutex.unlock t.m;
  List.rev d

let stop t =
  Mutex.lock t.m;
  t.stopping <- true;
  let d = t.domain in
  t.domain <- None;
  Mutex.unlock t.m;
  match d with None -> () | Some dom -> Domain.join dom
