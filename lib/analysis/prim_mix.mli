(** Execution frequencies of the primitive Lisp functions (§3.3.1,
    Figure 3.1): the fraction of all traced primitives that are car, cdr,
    cons, rplaca and rplacd. *)

type result = {
  counts : (Trace.Event.prim * int) list;  (** in {!Trace.Event.all_prims} order *)
  total : int;
}

val analyze : Trace.Capture.t -> result

(** Same counts off the flat batches of a mapped binary trace — no
    event or datum is materialised. *)
val analyze_source : Trace.Binary.source -> result

(** Same counts off a preprocessed trace. *)
val of_preprocessed : Trace.Preprocess.t -> result

(** [pct r prim] as a percentage of all traced primitives. *)
val pct : result -> Trace.Event.prim -> float
