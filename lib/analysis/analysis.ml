(** Chapter 3 analyses over preprocessed traces: primitive mix (Fig 3.1),
    n/p statistics (Table 3.1, Figs 3.3), list-set partitioning and its
    coverage/lifetime curves (Figs 3.4–3.6, 3.8–3.13), LRU stack distances
    over list sets (Fig 3.7) and primitive chaining (Table 3.2). *)

module Fenwick = Fenwick
module Prim_mix = Prim_mix
module Np_stats = Np_stats
module List_sets = List_sets
module Lru_stack = Lru_stack
module Chaining = Chaining
