(** LRU stack-distance analysis (§3.3.2.3, Figure 3.7), after Mattson's
    one-pass stack algorithm [Matt70a]: a single pass over the reference
    stream yields the hit counts of every LRU stack size at once.

    A reference's stack distance is the (1-based) depth of its item in the
    LRU stack at access time; first-time references have infinite distance
    (recorded separately).  The success rate of an LRU buffer of size [k]
    is the fraction of references with distance <= k. *)

type result = {
  distances : (int, int) Hashtbl.t;  (** distance -> reference count *)
  cold : int;                        (** first-time references *)
  total : int;
}

(** One pass via the Olken/Bennett–Kruskal algorithm — a {!Fenwick} tree
    counts the distinct items between consecutive accesses of the same
    item — O(n log n) over an n-reference stream. *)
val analyze : int array -> result

(** The direct move-to-front list simulation, O(stream × distinct items).
    Produces identical results to {!analyze} (enforced by a property
    test); kept as the independent reference implementation. *)
val analyze_naive : int array -> result

(** [hit_fraction r k] = fraction of all references at stack distance
    <= [k]. *)
val hit_fraction : result -> int -> float

(** [curve r ~max_depth] returns [(depth, cumulative fraction)] points for
    depths 1..max_depth — the Figure 3.7 plot. *)
val curve : result -> max_depth:int -> (float * float) list

(** Reference implementation (explicit stack simulation per size) for
    cross-checking in tests: returns hits for a single stack size. *)
val naive_hits : int array -> size:int -> int
