(** Fenwick (binary indexed) tree over [0, n): point updates and prefix
    sums in O(log n).

    The locality analyses use one as the holes-counting structure of the
    Olken/Bennett–Kruskal stack-distance algorithm: one slot per access
    timestamp, a 1 marking the *latest* access of each distinct item, so
    a range sum counts the distinct items touched inside a window. *)

type t

(** [create n] is a tree of [n] slots, all zero. *)
val create : int -> t

val length : t -> int

(** [add t i delta] adds [delta] to slot [i]. *)
val add : t -> int -> int -> unit

(** [prefix t i] is the sum of slots with index < [i] (so [prefix t 0]
    is 0 and [prefix t (length t)] is the total). *)
val prefix : t -> int -> int

(** [range t lo hi] is the sum of slots in [lo, hi). *)
val range : t -> int -> int -> int

val total : t -> int
