(* Classic 1-based Fenwick layout: tree.(i) owns the (i land -i) slots
   ending at i.  Slot indices are 0-based at the interface. *)

type t = {
  tree : int array;   (* tree.(0) unused *)
  n : int;
}

let create n =
  if n < 0 then invalid_arg "Fenwick.create: negative size";
  { tree = Array.make (n + 1) 0; n }

let length t = t.n

let add t i delta =
  if i < 0 || i >= t.n then invalid_arg "Fenwick.add: index out of bounds";
  let i = ref (i + 1) in
  while !i <= t.n do
    t.tree.(!i) <- t.tree.(!i) + delta;
    i := !i + (!i land - !i)
  done

let prefix t i =
  if i < 0 || i > t.n then invalid_arg "Fenwick.prefix: index out of bounds";
  let s = ref 0 in
  let i = ref i in
  while !i > 0 do
    s := !s + t.tree.(!i);
    i := !i - (!i land - !i)
  done;
  !s

let range t lo hi = if hi <= lo then 0 else prefix t hi - prefix t lo

let total t = prefix t t.n
