type result = {
  counts : (Trace.Event.prim * int) list;
  total : int;
}

let analyze capture =
  let tbl = Hashtbl.create 8 in
  let total = ref 0 in
  Array.iter
    (fun (e : Trace.Event.t) ->
       match e with
       | Prim { prim; _ } ->
         incr total;
         Hashtbl.replace tbl prim (1 + Option.value ~default:0 (Hashtbl.find_opt tbl prim))
       | Call _ | Return _ -> ())
    (Trace.Capture.events capture);
  {
    counts =
      List.map
        (fun p -> (p, Option.value ~default:0 (Hashtbl.find_opt tbl p)))
        Trace.Event.all_prims;
    total = !total;
  }

(* Same counts off the flat batches of a mapped binary trace: the wire
   kind is the primitive tag, so no event is materialised. *)
let analyze_source src =
  let module B = Trace.Binary.Batch in
  let car = ref 0 and cdr = ref 0 and cons = ref 0 in
  let rplaca = ref 0 and rplacd = ref 0 in
  Trace.Binary.iter_batches src (fun b ->
      for i = 0 to B.length b - 1 do
        match B.kind b i with
        | 2 -> incr car
        | 3 -> incr cdr
        | 4 -> incr cons
        | 5 -> incr rplaca
        | 6 -> incr rplacd
        | _ -> ()
      done);
  let counts =
    List.map
      (fun (p : Trace.Event.prim) ->
         ( p,
           match p with
           | Car -> !car
           | Cdr -> !cdr
           | Cons -> !cons
           | Rplaca -> !rplaca
           | Rplacd -> !rplacd ))
      Trace.Event.all_prims
  in
  { counts; total = !car + !cdr + !cons + !rplaca + !rplacd }

(* And off an already-preprocessed trace (primitive identity survives
   preprocessing untouched). *)
let of_preprocessed (p : Trace.Preprocess.t) =
  let tbl = Hashtbl.create 8 in
  let total = ref 0 in
  Array.iter
    (function
      | Trace.Preprocess.Pprim { prim; _ } ->
        incr total;
        Hashtbl.replace tbl prim
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl prim))
      | Trace.Preprocess.Pcall _ | Trace.Preprocess.Preturn _ -> ())
    p.Trace.Preprocess.events;
  {
    counts =
      List.map
        (fun p -> (p, Option.value ~default:0 (Hashtbl.find_opt tbl p)))
        Trace.Event.all_prims;
    total = !total;
  }

let pct r prim =
  if r.total = 0 then 0.
  else
    100.
    *. float_of_int (Option.value ~default:0 (List.assoc_opt prim r.counts))
    /. float_of_int r.total
