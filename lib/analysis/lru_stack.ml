type result = {
  distances : (int, int) Hashtbl.t;
  cold : int;
  total : int;
}

let bump distances d =
  Hashtbl.replace distances d
    (1 + Option.value ~default:0 (Hashtbl.find_opt distances d))

(* Olken/Bennett–Kruskal: a Fenwick tree over access timestamps holds a 1
   at the *latest* access of each distinct item, so the stack distance of
   a re-reference at time [t] to an item last seen at [lt] is one plus the
   number of marks strictly between them — O(log n) per access instead of
   the move-to-front list walk. *)
let analyze stream =
  let n = Array.length stream in
  let distances = Hashtbl.create 64 in
  let cold = ref 0 in
  let last = Hashtbl.create 64 in
  let marks = Fenwick.create n in
  Array.iteri
    (fun t x ->
       (match Hashtbl.find_opt last x with
        | Some lt ->
          bump distances (1 + Fenwick.range marks (lt + 1) t);
          Fenwick.add marks lt (-1)
        | None -> incr cold);
       Fenwick.add marks t 1;
       Hashtbl.replace last x t)
    stream;
  { distances; cold = !cold; total = n }

(* Move-to-front list; the position of an item at access time is its stack
   distance.  O(stream * distinct) — kept as the independent reference the
   Fenwick version is cross-checked against. *)
let analyze_naive stream =
  let distances = Hashtbl.create 64 in
  let cold = ref 0 in
  let stack = ref [] in
  Array.iter
    (fun x ->
       let rec remove depth acc = function
         | [] -> None
         | y :: rest ->
           if y = x then Some (depth, List.rev_append acc rest)
           else remove (depth + 1) (y :: acc) rest
       in
       match remove 1 [] !stack with
       | Some (depth, rest) ->
         bump distances depth;
         stack := x :: rest
       | None ->
         incr cold;
         stack := x :: !stack)
    stream;
  { distances; cold = !cold; total = Array.length stream }

let hit_fraction r k =
  if r.total = 0 then 0.
  else begin
    let hits = ref 0 in
    Hashtbl.iter (fun d c -> if d <= k then hits := !hits + c) r.distances;
    float_of_int !hits /. float_of_int r.total
  end

let curve r ~max_depth =
  List.init max_depth (fun i ->
      let k = i + 1 in
      (float_of_int k, hit_fraction r k))

(* Explicit LRU buffer as a depth-bounded index array kept in recency
   order: a linear scan finds the item, an overlapping blit moves it to
   the front.  Same O(stream * size) bound as the old list walk but no
   allocation and contiguous traversal. *)
let naive_hits stream ~size =
  if size <= 0 then 0
  else begin
    let stack = Array.make size 0 in
    let depth = ref 0 in
    let hits = ref 0 in
    Array.iter
      (fun x ->
         let pos = ref (-1) in
         (try
            for i = 0 to !depth - 1 do
              if stack.(i) = x then begin
                pos := i;
                raise Exit
              end
            done
          with Exit -> ());
         if !pos >= 0 then begin
           incr hits;
           Array.blit stack 0 stack 1 !pos
         end
         else begin
           let d = min size (!depth + 1) in
           Array.blit stack 0 stack 1 (d - 1);
           depth := d
         end;
         stack.(0) <- x)
      stream;
    !hits
  end
