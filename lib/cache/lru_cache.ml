(* Int-indexed LRU: slots 0..lines-1 carry the resident tags, threaded
   through a doubly-linked recency list held as parallel [prev]/[next]
   int arrays (-1 = nil), with an open-addressing int hash mapping a
   line tag to its slot.  The previous implementation linked boxed
   [node] records through [option]s and resolved tags with
   [Hashtbl.find_opt] — two allocations per access, on a path the
   simulator may take once per primitive event.  This layout allocates
   only at [create]. *)

type t = {
  lines : int;
  line_size : int;
  tags : int array;            (* slot -> resident tag *)
  prev : int array;            (* recency list, most recent at [head] *)
  next : int array;
  mutable head : int;
  mutable tail : int;
  mutable resident : int;
  (* tag -> slot, linear probing; capacity >= 4x lines keeps clusters
     short.  [hused] marks filled positions so any int is a valid tag. *)
  hmask : int;
  htag : int array;
  hslot : int array;
  hused : Bytes.t;
  mutable hits : int;
  mutable misses : int;
}

let create ~lines ~line_size =
  if lines <= 0 || line_size <= 0 then
    invalid_arg "Lru_cache.create: lines and line_size must be positive";
  let hcap =
    let rec pow2 n = if n >= 4 * lines then n else pow2 (2 * n) in
    pow2 16
  in
  { lines; line_size;
    tags = Array.make lines 0;
    prev = Array.make lines (-1);
    next = Array.make lines (-1);
    head = -1; tail = -1; resident = 0;
    hmask = hcap - 1;
    htag = Array.make hcap 0;
    hslot = Array.make hcap 0;
    hused = Bytes.make hcap '\000';
    hits = 0; misses = 0 }

let lines t = t.lines
let line_size t = t.line_size

(* Fibonacci hashing; multiplication wraps, the mask keeps it positive. *)
let hash_pos t tag = (tag * 0x2545F491) land t.hmask

(* Position of [tag] in the hash, or -1. *)
let find t tag =
  let p = ref (hash_pos t tag) in
  let r = ref (-2) in
  while !r = -2 do
    if Bytes.unsafe_get t.hused !p = '\000' then r := -1
    else if Array.unsafe_get t.htag !p = tag then r := !p
    else p := (!p + 1) land t.hmask
  done;
  !r

let insert t tag slot =
  let p = ref (hash_pos t tag) in
  while Bytes.unsafe_get t.hused !p = '\001' do
    p := (!p + 1) land t.hmask
  done;
  Bytes.unsafe_set t.hused !p '\001';
  Array.unsafe_set t.htag !p tag;
  Array.unsafe_set t.hslot !p slot

(* Delete by emptying the position and re-inserting the rest of its
   probe cluster — clusters stay tiny at <= 1/4 load. *)
let remove t tag =
  let p = find t tag in
  Bytes.unsafe_set t.hused p '\000';
  let q = ref ((p + 1) land t.hmask) in
  while Bytes.unsafe_get t.hused !q = '\001' do
    let mtag = Array.unsafe_get t.htag !q in
    let mslot = Array.unsafe_get t.hslot !q in
    Bytes.unsafe_set t.hused !q '\000';
    insert t mtag mslot;
    q := (!q + 1) land t.hmask
  done

let unlink t slot =
  let p = Array.unsafe_get t.prev slot in
  let n = Array.unsafe_get t.next slot in
  if p >= 0 then Array.unsafe_set t.next p n else t.head <- n;
  if n >= 0 then Array.unsafe_set t.prev n p else t.tail <- p

let push_front t slot =
  Array.unsafe_set t.prev slot (-1);
  Array.unsafe_set t.next slot t.head;
  if t.head >= 0 then Array.unsafe_set t.prev t.head slot else t.tail <- slot;
  t.head <- slot

let tag_of t addr = if addr >= 0 then addr / t.line_size else ((addr + 1) / t.line_size) - 1

let access t addr =
  let tag = tag_of t addr in
  let p = find t tag in
  if p >= 0 then begin
    t.hits <- t.hits + 1;
    let slot = Array.unsafe_get t.hslot p in
    unlink t slot;
    push_front t slot;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    let slot =
      if t.resident = t.lines then begin
        let victim = t.tail in
        unlink t victim;
        remove t (Array.unsafe_get t.tags victim);
        victim
      end
      else begin
        let s = t.resident in
        t.resident <- t.resident + 1;
        s
      end
    in
    Array.unsafe_set t.tags slot tag;
    insert t tag slot;
    push_front t slot;
    false
  end

let hits t = t.hits
let misses t = t.misses
let accesses t = t.hits + t.misses

let hit_rate t =
  let total = accesses t in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

let occupancy t = t.resident

let mem t addr = find t (tag_of t addr) >= 0
