type result = {
  hits : int;
  misses : int;
  hit_rate : float;
}

let predicted d =
  let n, p = Sexp.Metrics.np d in
  (n + p, (3 * n) + (3 * p) + 1)

(* Drive the touch pattern of an ordered traversal through a real LPT.
   First touch of an internal node performs the split (get_car, a miss)
   and fetches the cdr child (get_cdr, a hit — accounted to the node's
   second touch); the third touch re-reads the car field (a hit).  A leaf
   touch is satisfied by the existing entry: one hit, no table mutation.
   The op sequence is the same for all three orders (§5.3.1), only the
   visit position differs. *)
let simulate ?table_size ~order (d : Sexp.Datum.t) =
  let n, p = Sexp.Metrics.np d in
  let default_size = (4 * (n + p + 1)) + 16 in
  let size = Option.value ~default:default_size table_size in
  let heap = Heap_model.create ~seed:7 () in
  let lpt =
    Lpt.create ~size ~policy:Lpt.Compress_one ~split_counts:false
      ~eager_decrement:false ~heap ~seed:11 ()
  in
  ignore order;
  let leaf_hits = ref 0 in
  let root = Lpt.read_in lpt ~size:(n + p) in
  Lpt.stack_incr lpt root;
  let rec walk id (t : Sexp.Tree.t) =
    match t with
    | Leaf _ -> incr leaf_hits
    | Node (a, b) ->
      (* touch 1: split *)
      let car =
        match Lpt.get_car lpt id with
        | Lpt.Hit c | Lpt.Miss c -> c
        | Lpt.Hit_atom -> assert false (* traversal never stores atom fields *)
      in
      (* the cdr fetch is the node's touch 2 *)
      let cdr =
        match Lpt.get_cdr lpt id with
        | Lpt.Hit c | Lpt.Miss c -> c
        | Lpt.Hit_atom -> assert false
      in
      walk car a;
      walk cdr b;
      (* touch 3: on the way back up *)
      ignore (Lpt.get_car lpt id)
  in
  walk root (Sexp.Tree.of_datum d);
  let c = Lpt.counters lpt in
  let hits = c.Lpt.hits + !leaf_hits in
  let misses = c.Lpt.misses in
  { hits; misses;
    hit_rate =
      (if hits + misses = 0 then 0.
       else float_of_int hits /. float_of_int (hits + misses)) }
