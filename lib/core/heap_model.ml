(* Head cells already holding an object.  Membership is only ever added
   (reclaim keeps the cell "used" — a reclaimed head is not reoccupied
   by [place]), so the live representation is a growable bitset over
   the address space: it replays the exact address sequence the former
   hashtable produced while costing a bit test per probe instead of a
   bucket chain, and allocating only on the rare doubling.  The
   hashtable representation survives behind [~legacy_occupancy] so the
   simulator's reference kernel can preserve the pre-bitset cost model
   as a benchmark baseline — both representations answer membership
   identically, so every address (and every downstream stat) is the
   same either way. *)
type occupancy =
  | Bits of { mutable bits : Bytes.t }
  | Table of (int, unit) Hashtbl.t

type t = {
  rng : Util.Rng.t;
  mutable next_addr : int;
  used : occupancy;
  mutable reads : int;
  mutable splits : int;
  mutable merges : int;
  mutable reclaims : int;
  mutable cells_reclaimed : int;
}

let create ?(legacy_occupancy = false) ~seed () =
  let used =
    if legacy_occupancy then Table (Hashtbl.create 1024)
    else Bits { bits = Bytes.make 1024 '\000' }
  in
  { rng = Util.Rng.create ~seed; next_addr = 0; used;
    reads = 0; splits = 0; merges = 0; reclaims = 0; cells_reclaimed = 0 }

let mark t a =
  match t.used with
  | Table h -> Hashtbl.replace h a ()
  | Bits b ->
    let byte = a lsr 3 in
    if byte >= Bytes.length b.bits then begin
      let n = ref (Bytes.length b.bits) in
      while !n <= byte do n := 2 * !n done;
      let grown = Bytes.make !n '\000' in
      Bytes.blit b.bits 0 grown 0 (Bytes.length b.bits);
      b.bits <- grown
    end;
    Bytes.unsafe_set b.bits byte
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get b.bits byte) lor (1 lsl (a land 7))))

let is_used t a =
  match t.used with
  | Table h -> Hashtbl.mem h a
  | Bits b ->
    let byte = a lsr 3 in
    byte < Bytes.length b.bits
    && Char.code (Bytes.unsafe_get b.bits byte) land (1 lsl (a land 7)) <> 0

let bump t size =
  let addr = t.next_addr in
  t.next_addr <- t.next_addr + max 1 size;
  mark t addr;
  addr

(* Place a part near [near]: distinct objects occupy distinct head cells,
   so the candidate slides forward past occupied ones. *)
let place t ~near =
  let rec slide a = if is_used t a then slide (a + 1) else a in
  let addr = slide near in
  mark t addr;
  addr

let read_in t ~size =
  t.reads <- t.reads + 1;
  bump t size

let assign t ~size = bump t size

(* Clark's distance shapes: cdr pointers are overwhelmingly at distance 1
   (lists stay linearised); car pointers reach further, with a short
   geometric tail. *)
let cdr_distance t =
  if Util.Rng.bool t.rng ~p:0.8 then 1
  else begin
    let rec tail d = if d > 40 || Util.Rng.bool t.rng ~p:0.35 then d else tail (d + 1) in
    tail 2
  end

let car_distance t =
  let rec tail d = if d > 60 || Util.Rng.bool t.rng ~p:0.25 then d else tail (d + 1) in
  tail 2

let split t ~addr =
  t.splits <- t.splits + 1;
  let cdr = place t ~near:(addr + cdr_distance t) in
  let car = place t ~near:(addr + car_distance t) in
  (car, cdr)

let merge t a b =
  t.merges <- t.merges + 1;
  (* The merged object is rooted at a fresh cell pointing at both parts. *)
  ignore b;
  ignore a;
  bump t 1

let reclaim t ~addr ~size =
  ignore addr;
  t.reclaims <- t.reclaims + 1;
  t.cells_reclaimed <- t.cells_reclaimed + max 0 size

type counters = {
  reads : int;
  splits : int;
  merges : int;
  reclaims : int;
  cells_reclaimed : int;
}

let counters (t : t) =
  { reads = t.reads; splits = t.splits; merges = t.merges; reclaims = t.reclaims;
    cells_reclaimed = t.cells_reclaimed }
