type policy = Compress_one | Compress_all

exception True_overflow

let unset = -1

(* A car/cdr field holding an atom value rather than another entry: the
   field is *set* (accesses hit) but there is no child identifier. *)
let atom_child = -2

type t = {
  table_size : int;
  policy : policy;
  split_counts : bool;
  eager_decrement : bool;
  heap : Heap_model.t;
  rng : Util.Rng.t;
  (* hooks for a concrete backing heap (see {!Lp}) *)
  on_split : parent:int -> car:int -> cdr:int -> unit;
  on_merge : parent:int -> car:int -> cdr:int -> unit;
  on_free : int -> unit;
  (* entry fields, indexed by identifier *)
  car : int array;
  cdr : int array;
  refc : int array;            (* internal refs; plus EP refs unless split_counts *)
  addr : int array;            (* heap address; free-list link when free *)
  sizes : int array;           (* object size in cells *)
  free_flag : Bytes.t;
  stackbit : Bytes.t;          (* split-count mode *)
  ep_count : int array;        (* split-count mode: stack references *)
  mutable free_head : int;
  mutable scan_ptr : int;      (* rotating Compress-One scan position *)
  mutable live : int;
  (* counters *)
  mutable refops : int;
  mutable ep_refops : int;
  mutable gets : int;
  mutable frees : int;
  mutable hits : int;
  mutable misses : int;
  mutable pseudo_overflows : int;
  mutable compressions : int;
  mutable cycle_recoveries : int;
  mutable peak_live : int;
  mutable max_refcount : int;
  mutable max_stack_count : int;
}

let nop3 ~parent:_ ~car:_ ~cdr:_ = ()

let create ?(on_split = nop3) ?(on_merge = nop3) ?(on_free = fun _ -> ())
    ~size ~policy ~split_counts ~eager_decrement ~heap ~seed () =
  if size < 4 then invalid_arg "Lpt.create: table too small";
  let t =
    {
      table_size = size; policy; split_counts; eager_decrement; heap;
      rng = Util.Rng.create ~seed;
      on_split; on_merge; on_free;
      car = Array.make size unset;
      cdr = Array.make size unset;
      refc = Array.make size 0;
      addr = Array.make size unset;
      sizes = Array.make size 0;
      free_flag = Bytes.make size '\001';
      stackbit = Bytes.make size '\000';
      ep_count = Array.make size 0;
      free_head = 0;
      scan_ptr = 0;
      live = 0;
      refops = 0; ep_refops = 0; gets = 0; frees = 0; hits = 0; misses = 0;
      pseudo_overflows = 0; compressions = 0; cycle_recoveries = 0; peak_live = 0;
      max_refcount = 0; max_stack_count = 0;
    }
  in
  (* Thread the initial free stack through the addr field (§4.3.2.1). *)
  for i = 0 to size - 2 do
    t.addr.(i) <- i + 1
  done;
  t.addr.(size - 1) <- unset;
  t

let size t = t.table_size
let live t = t.live

(* Hot-path accesses go through [Array.unsafe_get]/[unsafe_set]:
   identifiers flowing table-internally (free-list links, car/cdr
   fields, split/compress products) are in range by construction, and
   each public id-taking entry point validates its argument once with
   [check] before entering the unchecked region. *)
let check t id fn =
  if id < 0 || id >= t.table_size then invalid_arg (fn ^ ": id out of range")

let uget = Array.unsafe_get
let uset = Array.unsafe_set

let is_live_u t id = Bytes.unsafe_get t.free_flag id = '\000'

let is_live t id =
  check t id "Lpt.is_live";
  is_live_u t id

let refcount t id =
  check t id "Lpt.refcount";
  uget t.refc id + (if t.split_counts then uget t.ep_count id else 0)

let address t id =
  check t id "Lpt.address";
  uget t.addr id

let object_size t id =
  check t id "Lpt.object_size";
  uget t.sizes id

let has_stack_ref t id = t.split_counts && Bytes.unsafe_get t.stackbit id = '\001'

(* ---- freeing ---- *)

let rec free_entry t id =
  t.on_free id;
  t.frees <- t.frees + 1;
  t.live <- t.live - 1;
  if uget t.addr id >= 0 then
    Heap_model.reclaim t.heap ~addr:(uget t.addr id) ~size:(uget t.sizes id);
  Bytes.unsafe_set t.free_flag id '\001';
  Bytes.unsafe_set t.stackbit id '\000';
  uset t.ep_count id 0;
  uset t.refc id 0;
  if t.eager_decrement then begin
    (* Naive policy: decrement the children right now (recursively). *)
    let car = uget t.car id and cdr = uget t.cdr id in
    uset t.car id unset;
    uset t.cdr id unset;
    uset t.addr id t.free_head;
    t.free_head <- id;
    if car >= 0 then decr_internal t car;
    if cdr >= 0 then decr_internal t cdr
  end
  else begin
    (* Lazy policy: children keep their counts until this entry is
       reused; only the free-stack push happens now. *)
    uset t.addr id t.free_head;
    t.free_head <- id
  end

and decr_internal t id =
  if not (is_live_u t id) then ()  (* deferred decrement raced a cycle sweep *)
  else begin
    t.refops <- t.refops + 1;
    uset t.refc id (uget t.refc id - 1);
    if uget t.refc id <= 0 && not (has_stack_ref t id) then free_entry t id
  end

let incr_internal t id =
  t.refops <- t.refops + 1;
  let rc = uget t.refc id + 1 in
  uset t.refc id rc;
  let total = if t.split_counts then rc + uget t.ep_count id else rc in
  if total > t.max_refcount then t.max_refcount <- total

(* ---- compression (Fig 4.8) ---- *)

let compressible t id =
  is_live t id
  && t.car.(id) >= 0 && t.cdr.(id) >= 0
  && t.car.(id) <> t.cdr.(id)
  &&
  let c = t.car.(id) and d = t.cdr.(id) in
  is_live t c && is_live t d
  && t.refc.(c) = 1 && t.refc.(d) = 1
  && (not (has_stack_ref t c)) && (not (has_stack_ref t d))
  && t.car.(c) = unset && t.cdr.(c) = unset
  && t.car.(d) = unset && t.cdr.(d) = unset

let compress_entry t id =
  let c = t.car.(id) and d = t.cdr.(id) in
  t.on_merge ~parent:id ~car:c ~cdr:d;
  let merged = Heap_model.merge t.heap t.addr.(c) t.addr.(d) in
  t.addr.(id) <- merged;
  t.sizes.(id) <- t.sizes.(c) + t.sizes.(d) + 1;
  t.car.(id) <- unset;
  t.cdr.(id) <- unset;
  (* Dropping the internal references frees both children. *)
  decr_internal t c;
  decr_internal t d;
  t.compressions <- t.compressions + 1

(* Returns true if at least one pair was compressed.  The Compress-One
   scan resumes where the previous one stopped (a rotating pointer), so
   successive overflows spread compression over the whole table instead
   of repeatedly sacrificing the same low-numbered — often hot — pairs. *)
let compress t =
  match t.policy with
  | Compress_one ->
    let found = ref false in
    (try
       for k = 0 to t.table_size - 1 do
         let id = (t.scan_ptr + k) mod t.table_size in
         if compressible t id then begin
           compress_entry t id;
           t.scan_ptr <- (id + 1) mod t.table_size;
           found := true;
           raise Exit
         end
       done
     with Exit -> ());
    !found
  | Compress_all ->
    let any = ref false in
    let progress = ref true in
    while !progress do
      progress := false;
      for id = 0 to t.table_size - 1 do
        if compressible t id then begin
          compress_entry t id;
          any := true;
          progress := true
        end
      done
    done;
    !any

(* ---- cycle recovery (§4.3.2.3) ---- *)

let break_cycles t =
  (* Entries are externally referenced if their count exceeds their
     internal in-degree (or the StackBit is set).  Mark from those; any
     unmarked live entry belongs to dead cycles. *)
  let indegree = Array.make t.table_size 0 in
  for id = 0 to t.table_size - 1 do
    if is_live t id then begin
      if t.car.(id) >= 0 && is_live t t.car.(id) then
        indegree.(t.car.(id)) <- indegree.(t.car.(id)) + 1;
      if t.cdr.(id) >= 0 && is_live t t.cdr.(id) then
        indegree.(t.cdr.(id)) <- indegree.(t.cdr.(id)) + 1
    end
  done;
  let marked = Bytes.make t.table_size '\000' in
  let rec mark id =
    if is_live t id && Bytes.get marked id = '\000' then begin
      Bytes.set marked id '\001';
      if t.car.(id) >= 0 then mark t.car.(id);
      if t.cdr.(id) >= 0 then mark t.cdr.(id)
    end
  in
  for id = 0 to t.table_size - 1 do
    if is_live t id && (has_stack_ref t id || t.refc.(id) > indegree.(id)) then mark id
  done;
  let freed = ref 0 in
  for id = 0 to t.table_size - 1 do
    if is_live t id && Bytes.get marked id = '\000' then begin
      (* Clear fields first so freeing does not cascade into the cycle. *)
      t.car.(id) <- unset;
      t.cdr.(id) <- unset;
      free_entry t id;
      incr freed
    end
  done;
  if !freed > 0 then t.cycle_recoveries <- t.cycle_recoveries + 1;
  !freed > 0

(* ---- allocation ---- *)

(* Pop the free-list head, or -1 when empty.  The option the previous
   version returned boxed every allocation. *)
let pop_free t =
  if t.free_head = unset then unset
  else begin
    let id = t.free_head in
    t.free_head <- uget t.addr id;
    (* Deferred child decrements happen on reuse (§4.3.2.1). *)
    let car = uget t.car id and cdr = uget t.cdr id in
    uset t.car id unset;
    uset t.cdr id unset;
    if not t.eager_decrement then begin
      if car >= 0 then decr_internal t car;
      if cdr >= 0 then decr_internal t cdr
    end;
    id
  end

let rec alloc_entry t =
  let id = pop_free t in
  if id >= 0 then begin
    Bytes.unsafe_set t.free_flag id '\000';
    Bytes.unsafe_set t.stackbit id '\000';
    uset t.ep_count id 0;
    uset t.refc id 0;
    uset t.addr id unset;
    uset t.sizes id 0;
    t.live <- t.live + 1;
    if t.live > t.peak_live then t.peak_live <- t.live;
    t.gets <- t.gets + 1;
    id
  end
  else begin
    t.pseudo_overflows <- t.pseudo_overflows + 1;
    if compress t then alloc_entry t
    else if break_cycles t then alloc_entry t
    else raise True_overflow
  end

let read_in t ~size =
  let id = alloc_entry t in
  uset t.addr id (Heap_model.read_in t.heap ~size);
  uset t.sizes id size;
  id

(* [cons_i] is [cons] on raw child identifiers, a negative standing for
   an atom half — the flat simulation kernel calls it with no options
   to match on and none to build. *)
let cons_i t ~car ~cdr =
  let id = alloc_entry t in
  (* cons is pure endo-structure: the "address" is assigned for the cache
     comparison only; no heap read occurs (Fig 4.7). *)
  uset t.addr id (Heap_model.assign t.heap ~size:1);
  uset t.sizes id
    (1
     + (if car >= 0 then uget t.sizes car else 0)
     + (if cdr >= 0 then uget t.sizes cdr else 0));
  (* both fields are always set by a cons (Fig 4.7): an atom half is the
     atom-child marker, so later accesses hit *)
  if car >= 0 then begin
    uset t.car id car;
    incr_internal t car
  end
  else uset t.car id atom_child;
  if cdr >= 0 then begin
    uset t.cdr id cdr;
    incr_internal t cdr
  end
  else uset t.cdr id atom_child;
  id

let cons t ~car ~cdr =
  (match car with Some c -> check t c "Lpt.cons" | None -> ());
  (match cdr with Some d -> check t d "Lpt.cons" | None -> ());
  cons_i t
    ~car:(match car with Some c -> c | None -> -1)
    ~cdr:(match cdr with Some d -> d | None -> -1)

type access = Hit of int | Hit_atom | Miss of int

(* Split the object behind [id], creating entries for both parts with one
   internal reference each (Fig 4.5). *)
let split t id =
  t.misses <- t.misses + 1;
  let parent_addr = if uget t.addr id >= 0 then uget t.addr id else 0 in
  let car_addr, cdr_addr = Heap_model.split t.heap ~addr:parent_addr in
  let s = uget t.sizes id in
  let car_size = if s <= 1 then 0 else Util.Rng.int t.rng s in
  let cdr_size = if s <= 1 then 0 else s - 1 - car_size in
  let c = alloc_entry t in
  uset t.addr c car_addr;
  uset t.sizes c car_size;
  incr_internal t c;
  let d = alloc_entry t in
  uset t.addr d cdr_addr;
  uset t.sizes d cdr_size;
  incr_internal t d;
  uset t.car id c;
  uset t.cdr id d;
  t.on_split ~parent:id ~car:c ~cdr:d;
  (c, d)

(* The [_i] accessors answer with the raw field encoding — the part's
   identifier, or [atom_child] ([-2]) for an atom part — so the flat
   kernel branches on a sign test instead of a variant; a miss splits
   exactly as the boxed accessors do (and its product is always a real
   identifier, never an atom). *)
let get_car_i t id =
  check t id "Lpt.get_car_i";
  if uget t.car id = unset then begin
    let c, _ = split t id in
    c
  end
  else begin
    t.hits <- t.hits + 1;
    uget t.car id
  end

let get_cdr_i t id =
  check t id "Lpt.get_cdr_i";
  if uget t.cdr id = unset then begin
    let _, d = split t id in
    d
  end
  else begin
    t.hits <- t.hits + 1;
    uget t.cdr id
  end

let get_car t id =
  check t id "Lpt.get_car";
  if uget t.car id = unset then begin
    let c, _ = split t id in
    Miss c
  end
  else begin
    t.hits <- t.hits + 1;
    if uget t.car id = atom_child then Hit_atom else Hit (uget t.car id)
  end

let get_cdr t id =
  check t id "Lpt.get_cdr";
  if uget t.cdr id = unset then begin
    let _, d = split t id in
    Miss d
  end
  else begin
    t.hits <- t.hits + 1;
    if uget t.cdr id = atom_child then Hit_atom else Hit (uget t.cdr id)
  end

(* [child]: the incoming part's identifier, or any negative for an atom
   value. *)
let replace_i t id ~field child =
  let fields = match field with `Car -> t.car | `Cdr -> t.cdr in
  let was_hit =
    if uget fields id <> unset then begin
      t.hits <- t.hits + 1;
      true
    end
    else begin
      ignore (split t id);
      false
    end
  in
  (* Incr the incoming child before decring the old one: replacing a part
     with itself must not transiently free it.  An atom value still sets
     the field (later accesses hit), it just names no entry.  [fields] is
     re-read after the split above may have filled it. *)
  if child >= 0 then incr_internal t child;
  let old = uget fields id in
  uset fields id (if child >= 0 then child else atom_child);
  if old >= 0 then decr_internal t old;
  was_hit

let rplaca_i t id child =
  check t id "Lpt.rplaca_i";
  replace_i t id ~field:`Car child

let rplacd_i t id child =
  check t id "Lpt.rplacd_i";
  replace_i t id ~field:`Cdr child

let as_child = function Some c -> c | None -> -1

let rplaca t id child = rplaca_i t id (as_child child)
let rplacd t id child = rplacd_i t id (as_child child)

(* ---- EP-side reference management ---- *)

let stack_incr t id =
  check t id "Lpt.stack_incr";
  if t.split_counts then begin
    t.ep_refops <- t.ep_refops + 1;
    let ep = uget t.ep_count id + 1 in
    uset t.ep_count id ep;
    if ep > t.max_stack_count then t.max_stack_count <- ep;
    if ep = 1 then begin
      (* 0 -> 1 transition: tell the LP to set the StackBit. *)
      t.refops <- t.refops + 1;
      Bytes.unsafe_set t.stackbit id '\001'
    end
  end
  else incr_internal t id

let stack_decr t id =
  check t id "Lpt.stack_decr";
  if t.split_counts then begin
    if not (is_live_u t id) then ()
    else begin
      t.ep_refops <- t.ep_refops + 1;
      let ep = uget t.ep_count id - 1 in
      uset t.ep_count id ep;
      if ep = 0 then begin
        (* 1 -> 0 transition: tell the LP to clear the StackBit. *)
        t.refops <- t.refops + 1;
        Bytes.unsafe_set t.stackbit id '\000';
        if uget t.refc id <= 0 then free_entry t id
      end
    end
  end
  else decr_internal t id

let peek_car t id =
  check t id "Lpt.peek_car";
  if uget t.car id >= 0 then Some (uget t.car id) else None

let peek_cdr t id =
  check t id "Lpt.peek_cdr";
  if uget t.cdr id >= 0 then Some (uget t.cdr id) else None

let car_is_set t id =
  check t id "Lpt.car_is_set";
  uget t.car id <> unset

let cdr_is_set t id =
  check t id "Lpt.cdr_is_set";
  uget t.cdr id <> unset

type counters = {
  refops : int;
  ep_refops : int;
  gets : int;
  frees : int;
  hits : int;
  misses : int;
  pseudo_overflows : int;
  compressions : int;
  cycle_recoveries : int;
  peak_live : int;
  max_refcount : int;
  max_stack_count : int;
}

let counters (t : t) =
  { refops = t.refops; ep_refops = t.ep_refops; gets = t.gets; frees = t.frees;
    hits = t.hits; misses = t.misses; pseudo_overflows = t.pseudo_overflows;
    compressions = t.compressions; cycle_recoveries = t.cycle_recoveries;
    peak_live = t.peak_live; max_refcount = t.max_refcount;
    max_stack_count = t.max_stack_count }

(* The counters above are plain per-table ints (the hot path stays
   lock-free and single-owner); observability folds them into a shared
   registry only at recording points, so concurrent recorders from
   several tables never lose increments. *)
let record_metrics (t : t) reg =
  let c name help v = Obs.Metric.Counter.add (Obs.Registry.counter reg ~help name) v in
  c "small_lpt_hits_total" "LPT accesses answered from a set car/cdr field" t.hits;
  c "small_lpt_misses_total" "LPT accesses that split an unexpanded object" t.misses;
  c "small_lpt_refops_total" "LP-side reference-count operations" t.refops;
  c "small_lpt_ep_refops_total" "EP-side (split-count) reference operations" t.ep_refops;
  c "small_lpt_gets_total" "LPT entry allocations" t.gets;
  c "small_lpt_frees_total" "refcount reclamations (entries freed)" t.frees;
  c "small_lpt_compress_total" "pairs compressed on pseudo-overflow" t.compressions;
  c "small_lpt_pseudo_overflows_total" "allocations that found the table full"
    t.pseudo_overflows;
  c "small_lpt_cycle_recoveries_total" "cycle-recovery sweeps that freed entries"
    t.cycle_recoveries;
  Obs.Metric.Gauge.set_max
    (Obs.Registry.gauge reg ~help:"peak live LPT entries" "small_lpt_peak_live")
    t.peak_live
