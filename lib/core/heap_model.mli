(** Heap memory controller model (§4.3.3).

    The controller owns the raw list heap: it reads list data in, splits
    an object into its car and cdr parts, merges two objects back into
    one, and reclaims space.  For the trace-driven evaluation only its
    {e address behaviour} matters (the cache comparison of §5.2.5), so the
    model assigns simulated cell addresses: fresh objects are laid out at
    a bump counter; split children land at small pointer distances from
    the parent, following the shape of Clark's measured distance
    distributions (short, mass at distance 1). *)

type t

(** [legacy_occupancy] keeps the occupied-head-cell set in the hashtable
    representation the model used before the bitset rewrite — the
    simulator's reference kernel selects it to preserve the pre-rewrite
    cost model as a benchmark baseline.  Addresses (hence all stats) are
    identical under both representations. *)
val create : ?legacy_occupancy:bool -> seed:int -> unit -> t

(** [read_in t ~size] allocates a fresh object of [size] cells, returning
    its address. *)
val read_in : t -> size:int -> int

(** [assign t ~size] reserves an address range without counting a heap
    read — used to give cons's endo-structural entries a simulated
    address for the cache comparison (they involve no heap activity,
    Fig 4.7). *)
val assign : t -> size:int -> int

(** [split t ~addr] splits the object at [addr]; returns the addresses of
    its car and cdr parts. *)
val split : t -> addr:int -> int * int

(** [merge t a b] merges two objects; returns the merged object's
    address. *)
val merge : t -> int -> int -> int

(** [reclaim t ~addr ~size] queues an object's space for reuse (free
    requests are served "whenever convenient", §4.3.3.1 — the model only
    counts them). *)
val reclaim : t -> addr:int -> size:int -> unit

type counters = {
  reads : int;
  splits : int;
  merges : int;
  reclaims : int;
  cells_reclaimed : int;
}

val counters : t -> counters
