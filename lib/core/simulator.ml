type cache_config = {
  cache_lines : int;
  cache_line_size : int;
}

type config = {
  table_size : int;
  policy : Lpt.policy;
  arg_prob : float;
  loc_prob : float;
  bind_prob : float;
  read_prob : float;
  seed : int;
  split_counts : bool;
  eager_decrement : bool;
  cache : cache_config option;
}

let default_config =
  { table_size = 2048; policy = Lpt.Compress_one; arg_prob = 0.6; loc_prob = 0.3;
    bind_prob = 0.01; read_prob = 0.01; seed = 1; split_counts = false;
    eager_decrement = false; cache = None }

(* The fingerprint spells out every field so that adding one forces a
   revisit here; bump the leading version when the simulation semantics
   change under an unchanged config. *)
let render_fingerprint c =
  Printf.sprintf
    "simconfig:v1 size=%d policy=%s arg=%h loc=%h bind=%h read=%h seed=%d \
     split=%b eager=%b cache=%s"
    c.table_size
    (match c.policy with Lpt.Compress_one -> "one" | Lpt.Compress_all -> "all")
    c.arg_prob c.loc_prob c.bind_prob c.read_prob c.seed c.split_counts
    c.eager_decrement
    (match c.cache with
     | None -> "none"
     | Some cc -> Printf.sprintf "%d/%d" cc.cache_lines cc.cache_line_size)

(* Sweep loops and the server's cache lookups fingerprint the same few
   configs over and over, so the Printf + MD5 round runs once per
   structural config.  The table is capped and guarded for the threaded
   server's worker pool.  At the cap one cold entry is evicted by a
   second-chance (CLOCK) sweep over the insertion queue — entries
   re-fingerprinted since their last sweep survive, so a sweep's working
   set stays memoized even when a pathological caller churns through
   thousands of distinct configs. *)
type fp_entry = { pair : string * string; mutable hot : bool }

let fp_memo : (config, fp_entry) Hashtbl.t = Hashtbl.create 64
let fp_order : config Queue.t = Queue.create ()
let fp_memo_mutex = Mutex.create ()
let fp_memo_cap = 4096

(* Called with the mutex held and the table at capacity: pop queue
   entries, re-queueing (and cooling) hot ones, until a cold entry is
   evicted.  Terminates within two sweeps of the queue — the first pass
   cools every entry it skips. *)
let fp_evict_one () =
  let evicted = ref false in
  while not !evicted do
    match Queue.take_opt fp_order with
    | None -> evicted := true  (* queue out of sync; nothing to evict *)
    | Some key ->
      (match Hashtbl.find_opt fp_memo key with
       | None -> ()  (* stale queue entry for an already-evicted key *)
       | Some e when e.hot ->
         e.hot <- false;
         Queue.push key fp_order
       | Some _ ->
         Hashtbl.remove fp_memo key;
         evicted := true)
  done

let fingerprint_and_digest c =
  Mutex.lock fp_memo_mutex;
  let cached = Hashtbl.find_opt fp_memo c in
  (match cached with Some e -> e.hot <- true | None -> ());
  Mutex.unlock fp_memo_mutex;
  match cached with
  | Some e -> e.pair
  | None ->
    let fp = render_fingerprint c in
    let pair = (fp, Digest.to_hex (Digest.string fp)) in
    Mutex.lock fp_memo_mutex;
    if not (Hashtbl.mem fp_memo c) then begin
      if Hashtbl.length fp_memo >= fp_memo_cap then fp_evict_one ();
      Hashtbl.replace fp_memo c { pair; hot = false };
      Queue.push c fp_order
    end;
    Mutex.unlock fp_memo_mutex;
    pair

let config_fingerprint c = fst (fingerprint_and_digest c)
let config_digest c = snd (fingerprint_and_digest c)

let fingerprint_memoized c =
  Mutex.lock fp_memo_mutex;
  let r = Hashtbl.mem fp_memo c in
  Mutex.unlock fp_memo_mutex;
  r

type stats = {
  events : int;
  true_overflow : bool;       (** overflow mode was entered at least once *)
  overflow_events : int;      (** primitive events served in overflow mode *)
  peak_lpt : int;
  avg_lpt : float;
  lpt : Lpt.counters;
  heap : Heap_model.counters;
  cache_hits : int;
  cache_misses : int;
  cache_accesses : int;
}

(* Per-event observability: with a registry attached, each primitive
   event records the live-entry count into an occupancy histogram; the
   activity counters are folded in once at the end of the run (they are
   already kept by the LPT/heap), so detached runs pay only one option
   match per event and the simulated stats are bit-identical either
   way — the registry never touches the RNG or the simulation state. *)
let record_run_metrics ~lpt ~heap ~cache ~overflow_entries ~overflow_events reg
    ~events =
  Lpt.record_metrics lpt reg;
  let c name help v = Obs.Metric.Counter.add (Obs.Registry.counter reg ~help name) v in
  c "small_sim_events_total" "primitive events simulated" events;
  c "small_sim_overflow_entries_total" "transitions into LPT-bypass overflow mode"
    overflow_entries;
  c "small_sim_overflow_events_total" "primitive events served in overflow mode"
    overflow_events;
  let h = Heap_model.counters heap in
  c "small_sim_heap_reads_total" "heap-controller object read-ins" h.Heap_model.reads;
  c "small_sim_heap_reclaims_total" "heap reclamations (refcount frees)"
    h.Heap_model.reclaims;
  c "small_sim_heap_cells_reclaimed_total" "heap cells reclaimed"
    h.Heap_model.cells_reclaimed;
  (match cache with
   | None -> ()
   | Some cache ->
     c "small_sim_cache_hits_total" "data-cache hits" (Cache.Lru_cache.hits cache);
     c "small_sim_cache_misses_total" "data-cache misses" (Cache.Lru_cache.misses cache))

let make_occupancy metrics =
  (* a Local accumulator keeps the per-event cost to plain-field writes;
     it is flushed before the end-of-run counter fold *)
  Option.map
    (fun reg ->
       Obs.Metric.Histogram.Local.create
         (Obs.Registry.histogram reg ~help:"live LPT entries sampled per event"
            ~bounds:Obs.Metric.Histogram.default_size_bounds
            "small_sim_lpt_occupancy"))
    metrics

let build_stats ~events ~entered_overflow ~overflow_events ~occupancy_sum ~samples
    ~lpt ~heap ~cache =
  let counters = Lpt.counters lpt in
  {
    events;
    true_overflow = entered_overflow;
    overflow_events;
    peak_lpt = counters.Lpt.peak_live;
    avg_lpt = (if samples = 0 then 0. else occupancy_sum /. float_of_int samples);
    lpt = counters;
    heap = Heap_model.counters heap;
    cache_hits = (match cache with Some c -> Cache.Lru_cache.hits c | None -> 0);
    cache_misses = (match cache with Some c -> Cache.Lru_cache.misses c | None -> 0);
    cache_accesses = (match cache with Some c -> Cache.Lru_cache.accesses c | None -> 0);
  }

(* ---------------------------------------------------------------- *)
(* Reference kernel: the original boxed interpreter over
   [Preprocess.pevent]s.  Kept verbatim as the correctness oracle for
   the flat kernel below — the equivalence battery in the test suite
   and the [sim.hotloop] bench both check byte-identical stats.

   The reference deliberately keeps the original [int64]-boxed
   splitmix64 too: [Util.Rng] has since been rewritten over untagged
   halves, and running the reference on the boxed generator both
   preserves the true before-the-rewrite baseline for the bench and
   cross-validates the rewrite end to end — the two generators must
   emit bit-identical streams for the stats to match. *)

module Boxed_rng = struct
  type t = { mutable state : int64 }

  let create ~seed = { state = Int64.of_int seed }

  (* splitmix64 step *)
  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int t bound =
    if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

  let float t =
    Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

  let bool t ~p = float t < p
end

(* One stack item: a binding whose value is a list object (LPT id). *)
type item = { mutable id : int }

type state = {
  cfg : config;
  rng : Boxed_rng.t;
  lpt : Lpt.t;
  heap : Heap_model.t;
  cache : Cache.Lru_cache.t option;
  trace : Trace.Preprocess.t;
  (* the binding stack: a growable array of items, plus frame markers *)
  mutable stack : item array;
  mutable sp : int;
  mutable frames : (int * int) list;   (* (frame base, nargs) newest first *)
  mutable prev_result : int option;    (* LPT id of last primitive result *)
  mutable occupancy_sum : float;
  mutable samples : int;
  mutable overflow_mode : bool;        (* LPT bypassed after true overflow *)
  mutable overflow_events : int;
  mutable entered_overflow : bool;
  mutable overflow_entries : int;      (* transitions into overflow mode *)
}

let push_item st id =
  if st.sp = Array.length st.stack then begin
    let grown = Array.make (2 * st.sp) { id = -1 } in
    Array.blit st.stack 0 grown 0 st.sp;
    st.stack <- grown
  end;
  st.stack.(st.sp) <- { id };
  st.sp <- st.sp + 1;
  Lpt.stack_incr st.lpt id

(* Draw a size for a freshly read list from the trace's own n/p data. *)
let draw_size st =
  let nps = st.trace.Trace.Preprocess.np_by_id in
  if Array.length nps = 0 then 4
  else begin
    let n, p = nps.(Boxed_rng.int st.rng (Array.length nps)) in
    max 1 (n + p)
  end

let fresh_list st =
  Lpt.read_in st.lpt ~size:(draw_size st)

(* Replace the binding of [item] with a freshly read list (ReadProb). *)
let reread st item =
  let fresh = fresh_list st in
  Lpt.stack_incr st.lpt fresh;
  let old = item.id in
  item.id <- fresh;
  Lpt.stack_decr st.lpt old;
  fresh

(* Argument selection (§5.2.1): chained -> previous result; otherwise a
   function argument / local / non-local picked by probability, possibly
   re-read. *)
let select_arg st ~chained =
  match st.prev_result with
  | Some id when chained && Lpt.is_live st.lpt id -> id
  | _ ->
    if st.sp = 0 then begin
      (* empty stack: conjure a top-level binding *)
      let id = fresh_list st in
      push_item st id;
      id
    end
    else begin
      let base, nargs = match st.frames with f :: _ -> f | [] -> (0, 0) in
      let pick lo hi =
        (* inclusive bounds; assumes lo <= hi *)
        st.stack.(lo + Boxed_rng.int st.rng (hi - lo + 1))
      in
      let u = Boxed_rng.float st.rng in
      let item =
        if u < st.cfg.arg_prob && nargs > 0 && base + nargs <= st.sp then
          pick base (base + nargs - 1)                  (* a function argument *)
        else if u < st.cfg.arg_prob +. st.cfg.loc_prob && base + nargs < st.sp then
          pick (base + nargs) (st.sp - 1)               (* a local *)
        else if base > 0 then pick 0 (base - 1)         (* a non-local *)
        else pick 0 (st.sp - 1)
      in
      if Boxed_rng.bool st.rng ~p:st.cfg.read_prob then reread st item
      else if Lpt.is_live st.lpt item.id then item.id
      else reread st item (* stale binding (shouldn't happen); repair *)
    end

(* Result binding: BindProb -> overwrite a random stack variable, else
   push on top of the stack. *)
let bind_result st id =
  st.prev_result <- Some id;
  if st.sp > 0 && Boxed_rng.bool st.rng ~p:st.cfg.bind_prob then begin
    let item = st.stack.(Boxed_rng.int st.rng st.sp) in
    Lpt.stack_incr st.lpt id;
    let old = item.id in
    item.id <- id;
    Lpt.stack_decr st.lpt old
  end
  else push_item st id

let cache_touch st id =
  match st.cache with
  | None -> ()
  | Some cache -> ignore (Cache.Lru_cache.access cache (Lpt.address st.lpt id))

let is_list_arg = function
  | Trace.Preprocess.List _ -> true
  | Trace.Preprocess.Atom _ -> false

let chained_arg = function
  | Trace.Preprocess.List { chained; _ } -> chained
  | Trace.Preprocess.Atom _ -> false

let result_is_list = function
  | Trace.Preprocess.List _ -> true
  | Trace.Preprocess.Atom _ -> false

let simulate_prim st (prim : Trace.Event.prim) args result =
  (* Map the trace's list arguments onto simulated objects. *)
  let list_args = List.filter is_list_arg args in
  let select a = select_arg st ~chained:(chained_arg a) in
  match prim, list_args with
  | Trace.Event.Car, (a :: _) ->
    let id = select a in
    cache_touch st id;
    (match Lpt.get_car st.lpt id with
     | Lpt.Hit c | Lpt.Miss c ->
       if result_is_list result then bind_result st c
       else st.prev_result <- None
     | Lpt.Hit_atom -> st.prev_result <- None)
  | Trace.Event.Cdr, (a :: _) ->
    let id = select a in
    cache_touch st id;
    (match Lpt.get_cdr st.lpt id with
     | Lpt.Hit c | Lpt.Miss c ->
       if result_is_list result then bind_result st c
       else st.prev_result <- None
     | Lpt.Hit_atom -> st.prev_result <- None)
  | Trace.Event.Cons, _ ->
    (* args in trace order; atoms contribute no LPT child *)
    let children =
      List.map (fun a -> if is_list_arg a then Some (select a) else None) args
    in
    let car, cdr =
      match children with
      | [ c; d ] -> (c, d)
      | [ c ] -> (c, None)
      | _ -> (None, None)
    in
    let id = Lpt.cons st.lpt ~car ~cdr in
    bind_result st id
  | Trace.Event.Rplaca, (a :: rest) ->
    let id = select a in
    cache_touch st id;
    (* the replacement value: a list only if the trace's second argument
       was one *)
    let value =
      match args with
      | _ :: v :: _ when is_list_arg v ->
        (match rest with v' :: _ -> Some (select v') | [] -> None)
      | _ -> None
    in
    ignore (Lpt.rplaca st.lpt id value);
    bind_result st id
  | Trace.Event.Rplacd, (a :: rest) ->
    let id = select a in
    cache_touch st id;
    let value =
      match args with
      | _ :: v :: _ when is_list_arg v ->
        (match rest with v' :: _ -> Some (select v') | [] -> None)
      | _ -> None
    in
    ignore (Lpt.rplacd st.lpt id value);
    bind_result st id
  | (Trace.Event.Car | Trace.Event.Cdr | Trace.Event.Rplaca | Trace.Event.Rplacd), [] ->
    (* the traced argument was an atom (e.g. car of nil): no list activity *)
    st.prev_result <- None

let simulate_call st nargs =
  let base = st.sp in
  (* Each argument is a binding to something older on the stack. *)
  for _ = 1 to nargs do
    let id =
      if st.sp > 0 then st.stack.(Boxed_rng.int st.rng st.sp).id else fresh_list st
    in
    push_item st id
  done;
  (* A random number of locals, similarly bound. *)
  let locals = Boxed_rng.int st.rng 3 in
  for _ = 1 to locals do
    let id =
      if st.sp > 0 then st.stack.(Boxed_rng.int st.rng st.sp).id else fresh_list st
    in
    push_item st id
  done;
  st.frames <- (base, nargs) :: st.frames

let simulate_return st =
  match st.frames with
  | [] -> ()  (* return below trace start: ignore *)
  | (base, _) :: rest ->
    (* Pop every item of the frame, decrementing its reference. *)
    while st.sp > base do
      st.sp <- st.sp - 1;
      Lpt.stack_decr st.lpt st.stack.(st.sp).id
    done;
    st.frames <- rest;
    (* The previous result may have been popped with the frame. *)
    (match st.prev_result with
     | Some id when not (Lpt.is_live st.lpt id) -> st.prev_result <- None
     | _ -> ())

let run_reference ?metrics cfg trace =
  let heap = Heap_model.create ~legacy_occupancy:true ~seed:(cfg.seed * 7919 + 1) () in
  let lpt =
    Lpt.create ~size:cfg.table_size ~policy:cfg.policy ~split_counts:cfg.split_counts
      ~eager_decrement:cfg.eager_decrement ~heap ~seed:(cfg.seed * 104729 + 3) ()
  in
  let cache =
    Option.map
      (fun c -> Cache.Lru_cache.create ~lines:c.cache_lines ~line_size:c.cache_line_size)
      cfg.cache
  in
  let st =
    { cfg; rng = Boxed_rng.create ~seed:cfg.seed; lpt; heap; cache; trace;
      stack = Array.make 1024 { id = -1 }; sp = 0; frames = []; prev_result = None;
      occupancy_sum = 0.; samples = 0; overflow_mode = false; overflow_events = 0;
      entered_overflow = false; overflow_entries = 0 }
  in
  (* resolved once: the hot loop sees a plain option *)
  let occupancy = make_occupancy metrics in
  let events = ref 0 in
  (* Seed the top level with a few read-in bindings. *)
  (try
     for _ = 1 to 8 do
       push_item st (fresh_list st)
     done
   with Lpt.True_overflow ->
     st.overflow_mode <- true;
     st.entered_overflow <- true;
     st.overflow_entries <- st.overflow_entries + 1);
  Array.iter
    (fun (e : Trace.Preprocess.pevent) ->
       match e with
       | Pcall { nargs; _ } -> simulate_call st nargs
       | Preturn _ -> simulate_return st
       | Pprim { prim; args; result } ->
         incr events;
         (* In overflow mode the EP bypasses the LPT, working in raw heap
            addresses (§4.3.2.3); the mode ends once table space frees up
            through returns. *)
         if st.overflow_mode then begin
           st.overflow_events <- st.overflow_events + 1;
           st.prev_result <- None;
           if Lpt.live st.lpt <= (9 * cfg.table_size) / 10 then
             st.overflow_mode <- false
         end
         else begin
           try simulate_prim st prim args result
           with Lpt.True_overflow ->
             st.overflow_mode <- true;
             st.entered_overflow <- true;
             st.overflow_entries <- st.overflow_entries + 1;
             st.overflow_events <- st.overflow_events + 1;
             st.prev_result <- None
         end;
         st.occupancy_sum <- st.occupancy_sum +. float_of_int (Lpt.live st.lpt);
         st.samples <- st.samples + 1;
         match occupancy with
         | None -> ()
         | Some l ->
           Obs.Metric.Histogram.Local.record l (float_of_int (Lpt.live st.lpt)))
    trace.Trace.Preprocess.events;
  (match occupancy with
   | None -> ()
   | Some l -> Obs.Metric.Histogram.Local.flush l);
  (match metrics with
   | None -> ()
   | Some reg ->
     record_run_metrics ~lpt ~heap ~cache ~overflow_entries:st.overflow_entries
       ~overflow_events:st.overflow_events reg ~events:!events);
  build_stats ~events:!events ~entered_overflow:st.entered_overflow
    ~overflow_events:st.overflow_events ~occupancy_sum:st.occupancy_sum
    ~samples:st.samples ~lpt ~heap ~cache

(* ---------------------------------------------------------------- *)
(* Flat kernel.

   One packed int per trace event carries everything the interpreter
   above extracts from a [pevent] with [List.filter]/[List.map] per
   event: argument selection never looks at a list argument's identity
   (ids reach the simulator only through the chaining flags, already
   folded in by preprocessing), so a primitive reduces to

     bits 0..2   wire kind (0 call / 1 return / 2..6 prim)
     bit  3      result-is-list          (prims; calls: nargs from bit 3)
     bits 4..11  positional argument count
     bits 12..35 list-argument position mask
     bits 36..59 chained position mask

   and the per-id (n, p) table to a plain size array indexed by a
   uniform draw.  State flattens the same way: the binding stack is an
   int array (no per-push [item] box), frames are parallel base/nargs
   arrays under a frame pointer, the previous result is an int with -1
   for "none".  Bernoulli draws compare {!Util.Rng.unit_53} against
   thresholds pre-scaled by 2^53 — the identical predicate, no float
   box.  Steady state allocates nothing; the stats are byte-identical
   to [run_reference] by construction (same RNG draw sequence, same
   LPT/heap/cache calls in the same order). *)

type packed = {
  p_codes : int array;    (* one packed int per trace event *)
  p_sizes : int array;    (* id -> max 1 (n + p), the draw_size table *)
}

let packed_events p = Array.length p.p_codes

let encode_prim ~kind ~arity ~list_mask ~chained_mask ~result_list =
  if arity > 24 then
    invalid_arg "Simulator.pack: primitive arity beyond 24 unsupported";
  kind
  lor (if result_list then 8 else 0)
  lor (arity lsl 4)
  lor (list_mask lsl 12)
  lor (chained_mask lsl 36)

let pack (trace : Trace.Preprocess.t) =
  let codes =
    Array.map
      (fun (e : Trace.Preprocess.pevent) ->
         match e with
         | Pcall { nargs; _ } -> 0 lor (nargs lsl 3)
         | Preturn _ -> 1
         | Pprim { prim; args; result } ->
           let kind =
             match prim with
             | Trace.Event.Car -> 2
             | Trace.Event.Cdr -> 3
             | Trace.Event.Cons -> 4
             | Trace.Event.Rplaca -> 5
             | Trace.Event.Rplacd -> 6
           in
           let arity = List.length args in
           let lmask = ref 0 and cmask = ref 0 in
           List.iteri
             (fun p (a : Trace.Preprocess.arg) ->
                match a with
                | List { chained; _ } ->
                  lmask := !lmask lor (1 lsl p);
                  if chained then cmask := !cmask lor (1 lsl p)
                | Atom _ -> ())
             args;
           encode_prim ~kind ~arity ~list_mask:!lmask ~chained_mask:!cmask
             ~result_list:(result_is_list result))
      trace.Trace.Preprocess.events
  in
  { p_codes = codes;
    p_sizes =
      Array.map (fun (n, p) -> max 1 (n + p)) trace.Trace.Preprocess.np_by_id }

let pack_source src =
  let codes = ref (Array.make 1024 0) in
  let n = ref 0 in
  let push code =
    if !n = Array.length !codes then begin
      let g = Array.make (2 * !n) 0 in
      Array.blit !codes 0 g 0 !n;
      codes := g
    end;
    !codes.(!n) <- code;
    incr n
  in
  let sizes =
    Trace.Preprocess.scan_source src
      ~call:(fun ~nargs -> push (0 lor (nargs lsl 3)))
      ~return_:(fun () -> push 1)
      ~prim:(fun ~kind ~arity ~list_mask ~chained_mask ~result_list ->
          push (encode_prim ~kind ~arity ~list_mask ~chained_mask ~result_list))
  in
  { p_codes = Array.sub !codes 0 !n; p_sizes = sizes }

(* All-float single-field record: flat representation, so updating the
   accumulator stores a raw double instead of boxing one per event. *)
type facc = { mutable acc : float }

type fstate = {
  fcfg : config;
  frng : Util.Rng.t;
  flpt : Lpt.t;
  fheap : Heap_model.t;
  fcache : Cache.Lru_cache.t option;
  fsizes : int array;
  mutable fstack : int array;        (* binding stack: LPT ids *)
  mutable fsp : int;
  mutable fbase : int array;         (* frame bases, newest at ffp-1 *)
  mutable fnargs : int array;
  mutable ffp : int;
  mutable fprev : int;               (* previous result id; -1 = none *)
  (* Bernoulli thresholds, pre-scaled by 2^53 (read-only) *)
  t_arg : float;
  t_arg_loc : float;
  t_read : float;
  t_bind : float;
  mutable fovf : bool;
  mutable fovf_events : int;
  mutable fentered : bool;
  mutable fovf_entries : int;
}

let scale_53 = 9007199254740992.0

let fpush st id =
  if st.fsp = Array.length st.fstack then begin
    let grown = Array.make (2 * st.fsp) (-1) in
    Array.blit st.fstack 0 grown 0 st.fsp;
    st.fstack <- grown
  end;
  Array.unsafe_set st.fstack st.fsp id;
  st.fsp <- st.fsp + 1;
  Lpt.stack_incr st.flpt id

let fdraw_size st =
  let n = Array.length st.fsizes in
  if n = 0 then 4 else Array.unsafe_get st.fsizes (Util.Rng.int st.frng n)

let ffresh st = Lpt.read_in st.flpt ~size:(fdraw_size st)

let freread st slot =
  let fresh = ffresh st in
  Lpt.stack_incr st.flpt fresh;
  let old = Array.unsafe_get st.fstack slot in
  Array.unsafe_set st.fstack slot fresh;
  Lpt.stack_decr st.flpt old;
  fresh

let fselect st chained =
  let prev = st.fprev in
  if chained && prev >= 0 && Lpt.is_live st.flpt prev then prev
  else if st.fsp = 0 then begin
    let id = ffresh st in
    fpush st id;
    id
  end
  else begin
    let framed = st.ffp > 0 in
    let base = if framed then Array.unsafe_get st.fbase (st.ffp - 1) else 0 in
    let nargs = if framed then Array.unsafe_get st.fnargs (st.ffp - 1) else 0 in
    let u = float_of_int (Util.Rng.unit_53 st.frng) in
    let slot =
      if u < st.t_arg && nargs > 0 && base + nargs <= st.fsp then
        base + Util.Rng.int st.frng nargs                 (* a function argument *)
      else if u < st.t_arg_loc && base + nargs < st.fsp then
        base + nargs + Util.Rng.int st.frng (st.fsp - base - nargs)  (* a local *)
      else if base > 0 then Util.Rng.int st.frng base     (* a non-local *)
      else Util.Rng.int st.frng st.fsp
    in
    if float_of_int (Util.Rng.unit_53 st.frng) < st.t_read then freread st slot
    else begin
      let id = Array.unsafe_get st.fstack slot in
      if Lpt.is_live st.flpt id then id
      else freread st slot (* stale binding (shouldn't happen); repair *)
    end
  end

let fbind st id =
  st.fprev <- id;
  if st.fsp > 0 && float_of_int (Util.Rng.unit_53 st.frng) < st.t_bind then begin
    let slot = Util.Rng.int st.frng st.fsp in
    Lpt.stack_incr st.flpt id;
    let old = Array.unsafe_get st.fstack slot in
    Array.unsafe_set st.fstack slot id;
    Lpt.stack_decr st.flpt old
  end
  else fpush st id

let fcache_touch st id =
  match st.fcache with
  | None -> ()
  | Some cache -> ignore (Cache.Lru_cache.access cache (Lpt.address st.flpt id))

let fcall st nargs =
  let base = st.fsp in
  for _ = 1 to nargs do
    let id =
      if st.fsp > 0 then
        Array.unsafe_get st.fstack (Util.Rng.int st.frng st.fsp)
      else ffresh st
    in
    fpush st id
  done;
  let locals = Util.Rng.int st.frng 3 in
  for _ = 1 to locals do
    let id =
      if st.fsp > 0 then
        Array.unsafe_get st.fstack (Util.Rng.int st.frng st.fsp)
      else ffresh st
    in
    fpush st id
  done;
  if st.ffp = Array.length st.fbase then begin
    let gb = Array.make (2 * st.ffp) 0 and gn = Array.make (2 * st.ffp) 0 in
    Array.blit st.fbase 0 gb 0 st.ffp;
    Array.blit st.fnargs 0 gn 0 st.ffp;
    st.fbase <- gb;
    st.fnargs <- gn
  end;
  Array.unsafe_set st.fbase st.ffp base;
  Array.unsafe_set st.fnargs st.ffp nargs;
  st.ffp <- st.ffp + 1

let freturn st =
  if st.ffp > 0 then begin
    st.ffp <- st.ffp - 1;
    let base = Array.unsafe_get st.fbase st.ffp in
    while st.fsp > base do
      st.fsp <- st.fsp - 1;
      Lpt.stack_decr st.flpt (Array.unsafe_get st.fstack st.fsp)
    done;
    if st.fprev >= 0 && not (Lpt.is_live st.flpt st.fprev) then st.fprev <- -1
  end

let rec lowest_bit_pos m i = if m land 1 = 1 then i else lowest_bit_pos (m lsr 1) (i + 1)

let fprim st code =
  let kind = code land 7 in
  let lmask = (code lsr 12) land 0xFFFFFF in
  if kind <= 3 then begin
    (* car / cdr: the first list argument feeds the access *)
    if lmask = 0 then st.fprev <- -1
    else begin
      let cmask = code lsr 36 in
      let a = lowest_bit_pos lmask 0 in
      let id = fselect st ((cmask lsr a) land 1 = 1) in
      fcache_touch st id;
      let c =
        if kind = 2 then Lpt.get_car_i st.flpt id else Lpt.get_cdr_i st.flpt id
      in
      if c >= 0 && code land 8 <> 0 then fbind st c else st.fprev <- -1
    end
  end
  else if kind = 4 then begin
    (* cons: children from positions 0/1 (trace order); selects for any
       further list positions still run, their results discarded, to
       match the reference's List.map over all args *)
    let cmask = code lsr 36 in
    let arity = (code lsr 4) land 0xFF in
    let car =
      if arity >= 1 && lmask land 1 = 1 then fselect st (cmask land 1 = 1)
      else -1
    in
    let cdr =
      if arity >= 2 && lmask land 2 <> 0 then fselect st (cmask land 2 <> 0)
      else -1
    in
    for p = 2 to arity - 1 do
      if (lmask lsr p) land 1 = 1 then
        ignore (fselect st ((cmask lsr p) land 1 = 1))
    done;
    let keep = arity <= 2 in
    let id =
      Lpt.cons_i st.flpt
        ~car:(if keep then car else -1)
        ~cdr:(if keep then cdr else -1)
    in
    fbind st id
  end
  else begin
    (* rplaca / rplacd *)
    if lmask = 0 then st.fprev <- -1
    else begin
      let cmask = code lsr 36 in
      let arity = (code lsr 4) land 0xFF in
      let a = lowest_bit_pos lmask 0 in
      let id = fselect st ((cmask lsr a) land 1 = 1) in
      fcache_touch st id;
      (* the replacement value: a list only if the trace's second
         positional argument was one AND a second list argument exists *)
      let rest = lmask land (lmask - 1) in
      let value =
        if arity >= 2 && lmask land 2 <> 0 && rest <> 0 then begin
          let v = lowest_bit_pos rest 0 in
          fselect st ((cmask lsr v) land 1 = 1)
        end
        else -1
      in
      if kind = 5 then ignore (Lpt.rplaca_i st.flpt id value)
      else ignore (Lpt.rplacd_i st.flpt id value);
      fbind st id
    end
  end

let run_packed ?metrics cfg packed =
  let heap = Heap_model.create ~seed:(cfg.seed * 7919 + 1) () in
  let lpt =
    Lpt.create ~size:cfg.table_size ~policy:cfg.policy ~split_counts:cfg.split_counts
      ~eager_decrement:cfg.eager_decrement ~heap ~seed:(cfg.seed * 104729 + 3) ()
  in
  let cache =
    Option.map
      (fun c -> Cache.Lru_cache.create ~lines:c.cache_lines ~line_size:c.cache_line_size)
      cfg.cache
  in
  let st =
    { fcfg = cfg; frng = Util.Rng.create ~seed:cfg.seed; flpt = lpt; fheap = heap;
      fcache = cache; fsizes = packed.p_sizes;
      fstack = Array.make 1024 (-1); fsp = 0;
      fbase = Array.make 256 0; fnargs = Array.make 256 0; ffp = 0;
      fprev = -1;
      t_arg = cfg.arg_prob *. scale_53;
      t_arg_loc = (cfg.arg_prob +. cfg.loc_prob) *. scale_53;
      t_read = cfg.read_prob *. scale_53;
      t_bind = cfg.bind_prob *. scale_53;
      fovf = false; fovf_events = 0; fentered = false; fovf_entries = 0 }
  in
  let occupancy = make_occupancy metrics in
  let occ = { acc = 0.0 } in
  let samples = ref 0 in
  let events = ref 0 in
  (* Seed the top level with a few read-in bindings. *)
  (try
     for _ = 1 to 8 do
       fpush st (ffresh st)
     done
   with Lpt.True_overflow ->
     st.fovf <- true;
     st.fentered <- true;
     st.fovf_entries <- st.fovf_entries + 1);
  let codes = packed.p_codes in
  let ncodes = Array.length codes in
  let ovf_exit = (9 * cfg.table_size) / 10 in
  for i = 0 to ncodes - 1 do
    let code = Array.unsafe_get codes i in
    let kind = code land 7 in
    if kind = 0 then fcall st (code lsr 3)
    else if kind = 1 then freturn st
    else begin
      incr events;
      (* In overflow mode the EP bypasses the LPT, working in raw heap
         addresses (§4.3.2.3); the mode ends once table space frees up
         through returns. *)
      if st.fovf then begin
        st.fovf_events <- st.fovf_events + 1;
        st.fprev <- -1;
        if Lpt.live st.flpt <= ovf_exit then st.fovf <- false
      end
      else begin
        try fprim st code
        with Lpt.True_overflow ->
          st.fovf <- true;
          st.fentered <- true;
          st.fovf_entries <- st.fovf_entries + 1;
          st.fovf_events <- st.fovf_events + 1;
          st.fprev <- -1
      end;
      occ.acc <- occ.acc +. float_of_int (Lpt.live st.flpt);
      incr samples;
      match occupancy with
      | None -> ()
      | Some l -> Obs.Metric.Histogram.Local.record l (float_of_int (Lpt.live st.flpt))
    end
  done;
  (match occupancy with
   | None -> ()
   | Some l -> Obs.Metric.Histogram.Local.flush l);
  (match metrics with
   | None -> ()
   | Some reg ->
     record_run_metrics ~lpt ~heap ~cache ~overflow_entries:st.fovf_entries
       ~overflow_events:st.fovf_events reg ~events:!events);
  build_stats ~events:!events ~entered_overflow:st.fentered
    ~overflow_events:st.fovf_events ~occupancy_sum:occ.acc ~samples:!samples
    ~lpt ~heap ~cache

let run ?metrics cfg trace = run_packed ?metrics cfg (pack trace)

let run_source ?metrics cfg src = run_packed ?metrics cfg (pack_source src)

let lpt_hit_rate (stats : stats) =
  let total = stats.lpt.Lpt.hits + stats.lpt.Lpt.misses in
  if total = 0 then 0. else float_of_int stats.lpt.Lpt.hits /. float_of_int total

let cache_hit_rate (stats : stats) =
  if stats.cache_accesses = 0 then 0.
  else float_of_int stats.cache_hits /. float_of_int stats.cache_accesses

let overflow_free (stats : stats) =
  (not stats.true_overflow) && stats.lpt.Lpt.pseudo_overflows = 0

let min_table_size ?(jobs = 1) ?metrics cfg trace =
  (* Double until overflow-free, then bisect down to the knee.  With
     [jobs] > 1 the probe runs go through [Util.Parallel]: the doubling
     phase probes a batch of sizes at once, and the bisection phase
     speculatively evaluates the next levels of its decision tree in
     parallel — both walk the same decision sequence as the sequential
     search, so the result is identical for every [jobs]. *)
  (* Probes share the registry: with [jobs] > 1 several domains record
     into the same counters at once — safe by construction, and the
     search decisions never read the metrics, so the result is
     registry-independent. *)
  (* The trace is packed once; every probe replays the same immutable
     int arrays (shared across probe domains). *)
  let packed = pack trace in
  let probe size = run_packed ?metrics { cfg with table_size = size } packed in
  let rec grow size =
    if jobs <= 1 then begin
      let stats = probe size in
      if overflow_free stats then (size, stats) else grow (2 * size)
    end
    else begin
      let batch = List.init jobs (fun i -> size * (1 lsl i)) in
      let stats = Util.Parallel.map ~domains:jobs probe batch in
      match
        List.find_opt
          (fun (_, st) -> overflow_free st)
          (List.combine batch stats)
      with
      | Some (sz, st) -> (sz, st)
      | None -> grow (size * (1 lsl jobs))
    end
  in
  let hi, hi_stats = grow 64 in
  (* All candidate midpoints of the next [depth] bisection levels: the
     root midpoint plus, recursively, the midpoints of both halves. *)
  let rec candidates depth lo hi acc =
    if depth = 0 || hi - lo <= 1 then acc
    else begin
      let mid = (lo + hi) / 2 in
      candidates (depth - 1) lo mid (candidates (depth - 1) mid hi (mid :: acc))
    end
  in
  let depth =
    let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
    max 1 (log2 (jobs + 1))
  in
  let rec bisect lo hi hi_stats =
    (* invariant: hi is overflow-free, lo is not (or lo = hi) *)
    if hi - lo <= 1 then (hi, hi_stats)
    else if jobs <= 1 then begin
      let mid = (lo + hi) / 2 in
      let stats = probe mid in
      if overflow_free stats then bisect lo mid stats else bisect mid hi hi_stats
    end
    else begin
      let sizes = List.sort_uniq compare (candidates depth lo hi []) in
      let results =
        List.combine sizes (Util.Parallel.map ~domains:jobs probe sizes)
      in
      (* Resolve [depth] sequential decisions from the precomputed runs. *)
      let rec walk d lo hi hi_stats =
        if d = 0 || hi - lo <= 1 then bisect lo hi hi_stats
        else begin
          let mid = (lo + hi) / 2 in
          let stats = List.assoc mid results in
          if overflow_free stats then walk (d - 1) lo mid stats
          else walk (d - 1) mid hi hi_stats
        end
      in
      walk depth lo hi hi_stats
    end
  in
  bisect (hi / 2) hi hi_stats
