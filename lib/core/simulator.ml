type cache_config = {
  cache_lines : int;
  cache_line_size : int;
}

type config = {
  table_size : int;
  policy : Lpt.policy;
  arg_prob : float;
  loc_prob : float;
  bind_prob : float;
  read_prob : float;
  seed : int;
  split_counts : bool;
  eager_decrement : bool;
  cache : cache_config option;
}

let default_config =
  { table_size = 2048; policy = Lpt.Compress_one; arg_prob = 0.6; loc_prob = 0.3;
    bind_prob = 0.01; read_prob = 0.01; seed = 1; split_counts = false;
    eager_decrement = false; cache = None }

(* The fingerprint spells out every field so that adding one forces a
   revisit here; bump the leading version when the simulation semantics
   change under an unchanged config. *)
let render_fingerprint c =
  Printf.sprintf
    "simconfig:v1 size=%d policy=%s arg=%h loc=%h bind=%h read=%h seed=%d \
     split=%b eager=%b cache=%s"
    c.table_size
    (match c.policy with Lpt.Compress_one -> "one" | Lpt.Compress_all -> "all")
    c.arg_prob c.loc_prob c.bind_prob c.read_prob c.seed c.split_counts
    c.eager_decrement
    (match c.cache with
     | None -> "none"
     | Some cc -> Printf.sprintf "%d/%d" cc.cache_lines cc.cache_line_size)

(* Sweep loops and the server's cache lookups fingerprint the same few
   configs over and over, so the Printf + MD5 round runs once per
   structural config.  The table is capped (a sweep touches at most a
   few hundred configs; the reset only guards a pathological caller)
   and guarded for the threaded server's worker pool. *)
let fp_memo : (config, string * string) Hashtbl.t = Hashtbl.create 64
let fp_memo_mutex = Mutex.create ()
let fp_memo_cap = 4096

let fingerprint_and_digest c =
  Mutex.lock fp_memo_mutex;
  let cached = Hashtbl.find_opt fp_memo c in
  Mutex.unlock fp_memo_mutex;
  match cached with
  | Some pair -> pair
  | None ->
    let fp = render_fingerprint c in
    let pair = (fp, Digest.to_hex (Digest.string fp)) in
    Mutex.lock fp_memo_mutex;
    if Hashtbl.length fp_memo >= fp_memo_cap then Hashtbl.reset fp_memo;
    Hashtbl.replace fp_memo c pair;
    Mutex.unlock fp_memo_mutex;
    pair

let config_fingerprint c = fst (fingerprint_and_digest c)
let config_digest c = snd (fingerprint_and_digest c)

type stats = {
  events : int;
  true_overflow : bool;       (** overflow mode was entered at least once *)
  overflow_events : int;      (** primitive events served in overflow mode *)
  peak_lpt : int;
  avg_lpt : float;
  lpt : Lpt.counters;
  heap : Heap_model.counters;
  cache_hits : int;
  cache_misses : int;
  cache_accesses : int;
}

(* One stack item: a binding whose value is a list object (LPT id). *)
type item = { mutable id : int }

type state = {
  cfg : config;
  rng : Util.Rng.t;
  lpt : Lpt.t;
  heap : Heap_model.t;
  cache : Cache.Lru_cache.t option;
  trace : Trace.Preprocess.t;
  (* the binding stack: a growable array of items, plus frame markers *)
  mutable stack : item array;
  mutable sp : int;
  mutable frames : (int * int) list;   (* (frame base, nargs) newest first *)
  mutable prev_result : int option;    (* LPT id of last primitive result *)
  mutable occupancy_sum : float;
  mutable samples : int;
  mutable overflow_mode : bool;        (* LPT bypassed after true overflow *)
  mutable overflow_events : int;
  mutable entered_overflow : bool;
  mutable overflow_entries : int;      (* transitions into overflow mode *)
}

let push_item st id =
  if st.sp = Array.length st.stack then begin
    let grown = Array.make (2 * st.sp) { id = -1 } in
    Array.blit st.stack 0 grown 0 st.sp;
    st.stack <- grown
  end;
  st.stack.(st.sp) <- { id };
  st.sp <- st.sp + 1;
  Lpt.stack_incr st.lpt id

(* Draw a size for a freshly read list from the trace's own n/p data. *)
let draw_size st =
  let nps = st.trace.Trace.Preprocess.np_by_id in
  if Array.length nps = 0 then 4
  else begin
    let n, p = nps.(Util.Rng.int st.rng (Array.length nps)) in
    max 1 (n + p)
  end

let fresh_list st =
  Lpt.read_in st.lpt ~size:(draw_size st)

(* Replace the binding of [item] with a freshly read list (ReadProb). *)
let reread st item =
  let fresh = fresh_list st in
  Lpt.stack_incr st.lpt fresh;
  let old = item.id in
  item.id <- fresh;
  Lpt.stack_decr st.lpt old;
  fresh

(* Argument selection (§5.2.1): chained -> previous result; otherwise a
   function argument / local / non-local picked by probability, possibly
   re-read. *)
let select_arg st ~chained =
  match st.prev_result with
  | Some id when chained && Lpt.is_live st.lpt id -> id
  | _ ->
    if st.sp = 0 then begin
      (* empty stack: conjure a top-level binding *)
      let id = fresh_list st in
      push_item st id;
      id
    end
    else begin
      let base, nargs = match st.frames with f :: _ -> f | [] -> (0, 0) in
      let pick lo hi =
        (* inclusive bounds; assumes lo <= hi *)
        st.stack.(lo + Util.Rng.int st.rng (hi - lo + 1))
      in
      let u = Util.Rng.float st.rng in
      let item =
        if u < st.cfg.arg_prob && nargs > 0 && base + nargs <= st.sp then
          pick base (base + nargs - 1)                  (* a function argument *)
        else if u < st.cfg.arg_prob +. st.cfg.loc_prob && base + nargs < st.sp then
          pick (base + nargs) (st.sp - 1)               (* a local *)
        else if base > 0 then pick 0 (base - 1)         (* a non-local *)
        else pick 0 (st.sp - 1)
      in
      if Util.Rng.bool st.rng ~p:st.cfg.read_prob then reread st item
      else if Lpt.is_live st.lpt item.id then item.id
      else reread st item (* stale binding (shouldn't happen); repair *)
    end

(* Result binding: BindProb -> overwrite a random stack variable, else
   push on top of the stack. *)
let bind_result st id =
  st.prev_result <- Some id;
  if st.sp > 0 && Util.Rng.bool st.rng ~p:st.cfg.bind_prob then begin
    let item = st.stack.(Util.Rng.int st.rng st.sp) in
    Lpt.stack_incr st.lpt id;
    let old = item.id in
    item.id <- id;
    Lpt.stack_decr st.lpt old
  end
  else push_item st id

let cache_touch st id =
  match st.cache with
  | None -> ()
  | Some cache -> ignore (Cache.Lru_cache.access cache (Lpt.address st.lpt id))

let is_list_arg = function
  | Trace.Preprocess.List _ -> true
  | Trace.Preprocess.Atom _ -> false

let chained_arg = function
  | Trace.Preprocess.List { chained; _ } -> chained
  | Trace.Preprocess.Atom _ -> false

let result_is_list = function
  | Trace.Preprocess.List _ -> true
  | Trace.Preprocess.Atom _ -> false

let simulate_prim st (prim : Trace.Event.prim) args result =
  (* Map the trace's list arguments onto simulated objects. *)
  let list_args = List.filter is_list_arg args in
  let select a = select_arg st ~chained:(chained_arg a) in
  match prim, list_args with
  | Trace.Event.Car, (a :: _) ->
    let id = select a in
    cache_touch st id;
    (match Lpt.get_car st.lpt id with
     | Lpt.Hit c | Lpt.Miss c ->
       if result_is_list result then bind_result st c
       else st.prev_result <- None
     | Lpt.Hit_atom -> st.prev_result <- None)
  | Trace.Event.Cdr, (a :: _) ->
    let id = select a in
    cache_touch st id;
    (match Lpt.get_cdr st.lpt id with
     | Lpt.Hit c | Lpt.Miss c ->
       if result_is_list result then bind_result st c
       else st.prev_result <- None
     | Lpt.Hit_atom -> st.prev_result <- None)
  | Trace.Event.Cons, _ ->
    (* args in trace order; atoms contribute no LPT child *)
    let children =
      List.map (fun a -> if is_list_arg a then Some (select a) else None) args
    in
    let car, cdr =
      match children with
      | [ c; d ] -> (c, d)
      | [ c ] -> (c, None)
      | _ -> (None, None)
    in
    let id = Lpt.cons st.lpt ~car ~cdr in
    bind_result st id
  | Trace.Event.Rplaca, (a :: rest) ->
    let id = select a in
    cache_touch st id;
    (* the replacement value: a list only if the trace's second argument
       was one *)
    let value =
      match args with
      | _ :: v :: _ when is_list_arg v ->
        (match rest with v' :: _ -> Some (select v') | [] -> None)
      | _ -> None
    in
    ignore (Lpt.rplaca st.lpt id value);
    bind_result st id
  | Trace.Event.Rplacd, (a :: rest) ->
    let id = select a in
    cache_touch st id;
    let value =
      match args with
      | _ :: v :: _ when is_list_arg v ->
        (match rest with v' :: _ -> Some (select v') | [] -> None)
      | _ -> None
    in
    ignore (Lpt.rplacd st.lpt id value);
    bind_result st id
  | (Trace.Event.Car | Trace.Event.Cdr | Trace.Event.Rplaca | Trace.Event.Rplacd), [] ->
    (* the traced argument was an atom (e.g. car of nil): no list activity *)
    st.prev_result <- None

let simulate_call st nargs =
  let base = st.sp in
  (* Each argument is a binding to something older on the stack. *)
  for _ = 1 to nargs do
    let id =
      if st.sp > 0 then st.stack.(Util.Rng.int st.rng st.sp).id else fresh_list st
    in
    push_item st id
  done;
  (* A random number of locals, similarly bound. *)
  let locals = Util.Rng.int st.rng 3 in
  for _ = 1 to locals do
    let id =
      if st.sp > 0 then st.stack.(Util.Rng.int st.rng st.sp).id else fresh_list st
    in
    push_item st id
  done;
  st.frames <- (base, nargs) :: st.frames

let simulate_return st =
  match st.frames with
  | [] -> ()  (* return below trace start: ignore *)
  | (base, _) :: rest ->
    (* Pop every item of the frame, decrementing its reference. *)
    while st.sp > base do
      st.sp <- st.sp - 1;
      Lpt.stack_decr st.lpt st.stack.(st.sp).id
    done;
    st.frames <- rest;
    (* The previous result may have been popped with the frame. *)
    (match st.prev_result with
     | Some id when not (Lpt.is_live st.lpt id) -> st.prev_result <- None
     | _ -> ())

(* Per-event observability: with a registry attached, each primitive
   event records the live-entry count into an occupancy histogram; the
   activity counters are folded in once at the end of the run (they are
   already kept by the LPT/heap), so detached runs pay only one option
   match per event and the simulated stats are bit-identical either
   way — the registry never touches the RNG or the simulation state. *)
let record_run_metrics st reg ~events =
  Lpt.record_metrics st.lpt reg;
  let c name help v = Obs.Metric.Counter.add (Obs.Registry.counter reg ~help name) v in
  c "small_sim_events_total" "primitive events simulated" events;
  c "small_sim_overflow_entries_total" "transitions into LPT-bypass overflow mode"
    st.overflow_entries;
  c "small_sim_overflow_events_total" "primitive events served in overflow mode"
    st.overflow_events;
  let h = Heap_model.counters st.heap in
  c "small_sim_heap_reads_total" "heap-controller object read-ins" h.Heap_model.reads;
  c "small_sim_heap_reclaims_total" "heap reclamations (refcount frees)"
    h.Heap_model.reclaims;
  c "small_sim_heap_cells_reclaimed_total" "heap cells reclaimed"
    h.Heap_model.cells_reclaimed;
  (match st.cache with
   | None -> ()
   | Some cache ->
     c "small_sim_cache_hits_total" "data-cache hits" (Cache.Lru_cache.hits cache);
     c "small_sim_cache_misses_total" "data-cache misses" (Cache.Lru_cache.misses cache))

let run ?metrics cfg trace =
  let heap = Heap_model.create ~seed:(cfg.seed * 7919 + 1) in
  let lpt =
    Lpt.create ~size:cfg.table_size ~policy:cfg.policy ~split_counts:cfg.split_counts
      ~eager_decrement:cfg.eager_decrement ~heap ~seed:(cfg.seed * 104729 + 3) ()
  in
  let cache =
    Option.map
      (fun c -> Cache.Lru_cache.create ~lines:c.cache_lines ~line_size:c.cache_line_size)
      cfg.cache
  in
  let st =
    { cfg; rng = Util.Rng.create ~seed:cfg.seed; lpt; heap; cache; trace;
      stack = Array.make 1024 { id = -1 }; sp = 0; frames = []; prev_result = None;
      occupancy_sum = 0.; samples = 0; overflow_mode = false; overflow_events = 0;
      entered_overflow = false; overflow_entries = 0 }
  in
  (* resolved once: the hot loop sees a plain option *)
  (* a Local accumulator keeps the per-event cost to plain-field writes;
     it is flushed before the end-of-run counter fold below *)
  let occupancy =
    Option.map
      (fun reg ->
         Obs.Metric.Histogram.Local.create
           (Obs.Registry.histogram reg ~help:"live LPT entries sampled per event"
              ~bounds:Obs.Metric.Histogram.default_size_bounds
              "small_sim_lpt_occupancy"))
      metrics
  in
  let events = ref 0 in
  (* Seed the top level with a few read-in bindings. *)
  (try
     for _ = 1 to 8 do
       push_item st (fresh_list st)
     done
   with Lpt.True_overflow ->
     st.overflow_mode <- true;
     st.entered_overflow <- true;
     st.overflow_entries <- st.overflow_entries + 1);
  Array.iter
    (fun (e : Trace.Preprocess.pevent) ->
       match e with
       | Pcall { nargs; _ } -> simulate_call st nargs
       | Preturn _ -> simulate_return st
       | Pprim { prim; args; result } ->
         incr events;
         (* In overflow mode the EP bypasses the LPT, working in raw heap
            addresses (§4.3.2.3); the mode ends once table space frees up
            through returns. *)
         if st.overflow_mode then begin
           st.overflow_events <- st.overflow_events + 1;
           st.prev_result <- None;
           if Lpt.live st.lpt <= (9 * cfg.table_size) / 10 then
             st.overflow_mode <- false
         end
         else begin
           try simulate_prim st prim args result
           with Lpt.True_overflow ->
             st.overflow_mode <- true;
             st.entered_overflow <- true;
             st.overflow_entries <- st.overflow_entries + 1;
             st.overflow_events <- st.overflow_events + 1;
             st.prev_result <- None
         end;
         st.occupancy_sum <- st.occupancy_sum +. float_of_int (Lpt.live st.lpt);
         st.samples <- st.samples + 1;
         match occupancy with
         | None -> ()
         | Some l ->
           Obs.Metric.Histogram.Local.record l (float_of_int (Lpt.live st.lpt)))
    trace.Trace.Preprocess.events;
  (match occupancy with
   | None -> ()
   | Some l -> Obs.Metric.Histogram.Local.flush l);
  (match metrics with
   | None -> ()
   | Some reg -> record_run_metrics st reg ~events:!events);
  let counters = Lpt.counters lpt in
  {
    events = !events;
    true_overflow = st.entered_overflow;
    overflow_events = st.overflow_events;
    peak_lpt = counters.Lpt.peak_live;
    avg_lpt = (if st.samples = 0 then 0. else st.occupancy_sum /. float_of_int st.samples);
    lpt = counters;
    heap = Heap_model.counters heap;
    cache_hits = (match cache with Some c -> Cache.Lru_cache.hits c | None -> 0);
    cache_misses = (match cache with Some c -> Cache.Lru_cache.misses c | None -> 0);
    cache_accesses = (match cache with Some c -> Cache.Lru_cache.accesses c | None -> 0);
  }

let lpt_hit_rate (stats : stats) =
  let total = stats.lpt.Lpt.hits + stats.lpt.Lpt.misses in
  if total = 0 then 0. else float_of_int stats.lpt.Lpt.hits /. float_of_int total

let cache_hit_rate (stats : stats) =
  if stats.cache_accesses = 0 then 0.
  else float_of_int stats.cache_hits /. float_of_int stats.cache_accesses

let overflow_free (stats : stats) =
  (not stats.true_overflow) && stats.lpt.Lpt.pseudo_overflows = 0

let min_table_size ?(jobs = 1) ?metrics cfg trace =
  (* Double until overflow-free, then bisect down to the knee.  With
     [jobs] > 1 the probe runs go through [Util.Parallel]: the doubling
     phase probes a batch of sizes at once, and the bisection phase
     speculatively evaluates the next levels of its decision tree in
     parallel — both walk the same decision sequence as the sequential
     search, so the result is identical for every [jobs]. *)
  (* Probes share the registry: with [jobs] > 1 several domains record
     into the same counters at once — safe by construction, and the
     search decisions never read the metrics, so the result is
     registry-independent. *)
  let probe size = run ?metrics { cfg with table_size = size } trace in
  let rec grow size =
    if jobs <= 1 then begin
      let stats = probe size in
      if overflow_free stats then (size, stats) else grow (2 * size)
    end
    else begin
      let batch = List.init jobs (fun i -> size * (1 lsl i)) in
      let stats = Util.Parallel.map ~domains:jobs probe batch in
      match
        List.find_opt
          (fun (_, st) -> overflow_free st)
          (List.combine batch stats)
      with
      | Some (sz, st) -> (sz, st)
      | None -> grow (size * (1 lsl jobs))
    end
  in
  let hi, hi_stats = grow 64 in
  (* All candidate midpoints of the next [depth] bisection levels: the
     root midpoint plus, recursively, the midpoints of both halves. *)
  let rec candidates depth lo hi acc =
    if depth = 0 || hi - lo <= 1 then acc
    else begin
      let mid = (lo + hi) / 2 in
      candidates (depth - 1) lo mid (candidates (depth - 1) mid hi (mid :: acc))
    end
  in
  let depth =
    let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
    max 1 (log2 (jobs + 1))
  in
  let rec bisect lo hi hi_stats =
    (* invariant: hi is overflow-free, lo is not (or lo = hi) *)
    if hi - lo <= 1 then (hi, hi_stats)
    else if jobs <= 1 then begin
      let mid = (lo + hi) / 2 in
      let stats = probe mid in
      if overflow_free stats then bisect lo mid stats else bisect mid hi hi_stats
    end
    else begin
      let sizes = List.sort_uniq compare (candidates depth lo hi []) in
      let results =
        List.combine sizes (Util.Parallel.map ~domains:jobs probe sizes)
      in
      (* Resolve [depth] sequential decisions from the precomputed runs. *)
      let rec walk d lo hi hi_stats =
        if d = 0 || hi - lo <= 1 then bisect lo hi hi_stats
        else begin
          let mid = (lo + hi) / 2 in
          let stats = List.assoc mid results in
          if overflow_free stats then walk (d - 1) lo mid stats
          else walk (d - 1) mid hi hi_stats
        end
      in
      walk depth lo hi hi_stats
    end
  in
  bisect (hi / 2) hi hi_stats
