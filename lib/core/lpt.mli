(** The List Processor Table (LPT) — the heart of the SMALL architecture
    (§4.3.2).

    Each entry virtualises one list object: [(identifier, car, cdr,
    reference count, heap address, mark)] (Figure 4.2).  The car/cdr
    fields cache the identifiers of the object's parts, so repeated
    accesses are satisfied without touching the heap; the first access
    {e splits} the heap object (Figure 4.5).  [cons] builds purely
    endo-structural entries with no heap activity (Figure 4.7).

    Table space is managed by reference counting with the thesis's two
    optimisations (§4.3.2.1): freed entries go on a {e free stack} linked
    through the address field, and the children of a freed entry are only
    decremented when the entry is {e reused} (lazy child decrement) —
    both freeing and allocation are O(1).  [eager_decrement] selects the
    naive recursive policy instead, for the RecRefops comparison of
    Table 5.2.

    On {e pseudo overflow} (no free entry but compressible pairs exist)
    the table is compressed by merging leaf children into their parent
    (Figure 4.8), under the Compress-One or Compress-All policy (§5.2.3).
    If nothing is compressible, a mark-sweep pass breaks reference-count
    cycles (§4.3.2.3); if that too frees nothing, {!True_overflow} is
    raised.

    With [split_counts] (the Table 5.3 optimisation), stack-originated
    references are counted in an EP-side table and the LPT keeps only a
    [StackBit] per entry, slashing EP–LP reference-count traffic. *)

type policy = Compress_one | Compress_all

exception True_overflow

type t

(** The optional hooks let a concrete backing heap mirror table surgery
    (see {!Lp}): [on_split] fires after a split has created both child
    entries, [on_merge] just before a compression frees a parent's
    children, and [on_free] as an entry is reclaimed (its fields still
    intact under the lazy policy). *)
val create :
  ?on_split:(parent:int -> car:int -> cdr:int -> unit) ->
  ?on_merge:(parent:int -> car:int -> cdr:int -> unit) ->
  ?on_free:(int -> unit) ->
  size:int ->
  policy:policy ->
  split_counts:bool ->
  eager_decrement:bool ->
  heap:Heap_model.t ->
  seed:int ->
  unit ->
  t

val size : t -> int

(** Entries currently in use. *)
val live : t -> int

(** [read_in t ~size] performs a readlist: heap I/O plus a fresh entry
    with reference count 1 (the EP's handle).  [size] is the object's
    size in cells. *)
val read_in : t -> size:int -> int

(** [cons t ~car ~cdr] allocates an endo-structural entry whose children
    are the given entries ([None] for atom halves, stored as atom-valued
    fields so later accesses hit); no heap activity.  The entry starts
    with no references — the caller binds it via {!stack_incr}. *)
val cons : t -> car:int option -> cdr:int option -> int

type access =
  | Hit of int     (** satisfied from the table: the part's identifier *)
  | Hit_atom      (** satisfied from the table: the part is an atom value *)
  | Miss of int    (** split performed; the requested part's identifier *)

(** [get_car t id] / [get_cdr t id]: a [Hit] is satisfied from the table;
    a [Miss] splits the heap object, creating entries for both parts
    (each with count 1, the internal reference), and returns the
    requested part. *)
val get_car : t -> int -> access

val get_cdr : t -> int -> access

(** [rplaca t id child] / [rplacd t id child] replace a part; splits first
    if the field is not set (returns [false] on such a miss, [true] on a
    hit).  [None] stores an atom (clears the field). *)
val rplaca : t -> int -> int option -> bool

val rplacd : t -> int -> int option -> bool

(** {2 Flat accessors}

    Allocation-free variants for the simulation hot loop: counters and
    table effects are identical to the boxed forms, only the answer's
    encoding changes.  [get_car_i]/[get_cdr_i] return the part's
    identifier, or [-2] (the atom-child marker) when the part is an
    atom value — a miss splits exactly like {!get_car} and always
    yields a real identifier.  [cons_i]/[rplaca_i]/[rplacd_i] take a
    child identifier directly, any negative standing for an atom. *)

val get_car_i : t -> int -> int

val get_cdr_i : t -> int -> int

val cons_i : t -> car:int -> cdr:int -> int

val rplaca_i : t -> int -> int -> bool

val rplacd_i : t -> int -> int -> bool

(** EP-side reference management: a stack binding to [id] appears /
    disappears.  Routed to the entry's count, or to the EP-side split
    count table when [split_counts] is on. *)
val stack_incr : t -> int -> unit

val stack_decr : t -> int -> unit

(** Non-counting introspection: the child identifier currently cached in
    a field ([None] for unset or atom-valued fields), and whether the
    field is set at all.  Used by the concrete List Processor; these do
    not touch the hit/miss counters. *)
val peek_car : t -> int -> int option

val peek_cdr : t -> int -> int option
val car_is_set : t -> int -> bool
val cdr_is_set : t -> int -> bool

(** Total references to [id] (internal + stack). *)
val refcount : t -> int -> int

val is_live : t -> int -> bool

(** Simulated heap/cache address of the entry's object (§5.2.5). *)
val address : t -> int -> int

(** Object size in cells. *)
val object_size : t -> int -> int

type counters = {
  refops : int;           (** LP-side reference-count operations *)
  ep_refops : int;        (** EP-side (split-count mode) operations *)
  gets : int;             (** entry allocations *)
  frees : int;            (** counts reaching zero *)
  hits : int;             (** car/cdr/rplac requests satisfied in-table *)
  misses : int;           (** requests that required a split *)
  pseudo_overflows : int;
  compressions : int;     (** pairs of entries compressed *)
  cycle_recoveries : int; (** mark-sweep passes that freed cycles *)
  peak_live : int;
  max_refcount : int;
  max_stack_count : int;  (** split-count mode: max EP-side count *)
}

val counters : t -> counters

(** Fold this table's counters into an {!Obs.Registry.t}: counter adds
    for the activity totals plus a monotone peak-live gauge.  Safe to
    call from several domains over one shared registry (e.g. parallel
    knee probes); counters then accumulate across tables. *)
val record_metrics : t -> Obs.Registry.t -> unit
