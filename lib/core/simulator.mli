(** Trace-driven simulator of the SMALL architecture (§5.2.1).

    The simulator monitors the LPT and the EP's control-cum-binding stack
    over the function calls and list primitives of a preprocessed trace.
    List identity in the trace is only statistical, so arguments are
    selected exactly as in the thesis: a chained argument is the previous
    primitive's result (on top of the stack); otherwise an argument of the
    current function (probability [arg_prob]), a local ([loc_prob]), or a
    non-local (the remainder) is drawn from the simulated stack, and with
    probability [read_prob] the selected variable is assumed to have been
    freshly read in.  Results are bound to a random stack variable with
    probability [bind_prob], else pushed.  Function calls push one bound
    item per argument plus a random number of locals; returns pop the
    frame with the matching reference-count decrements.

    New list sizes are drawn from the trace's own n/p distribution, and a
    fully associative LRU data cache can be run in parallel over
    heap-model addresses for the §5.2.5 comparison. *)

type cache_config = {
  cache_lines : int;
  cache_line_size : int;       (** in two-pointer cells *)
}

type config = {
  table_size : int;
  policy : Lpt.policy;
  arg_prob : float;
  loc_prob : float;
  bind_prob : float;
  read_prob : float;
  seed : int;
  split_counts : bool;
  eager_decrement : bool;
  cache : cache_config option;
}

(** The thesis's control settings: ArgProb 0.6, LocProb 0.3, BindProb and
    ReadProb 0.01, Compress-One, 2048 entries, split counts off. *)
val default_config : config

(** A canonical, version-tagged textual form of every config field
    (floats in lossless [%h] notation).  Two configs fingerprint equally
    iff a run over the same trace is guaranteed to produce the same
    stats. *)
val config_fingerprint : config -> string

(** MD5 hex of {!config_fingerprint} — the config half of the server's
    content-addressed result-cache key. *)
val config_digest : config -> string

(** Whether [c]'s fingerprint is currently memoized (test hook for the
    memo's second-chance eviction; not meaningful to ordinary callers). *)
val fingerprint_memoized : config -> bool

type stats = {
  events : int;              (** primitive events simulated *)
  true_overflow : bool;      (** overflow mode was entered at least once *)
  overflow_events : int;     (** primitive events served in (degraded)
                                 overflow mode, with the LPT bypassed *)
  peak_lpt : int;
  avg_lpt : float;
  lpt : Lpt.counters;
  heap : Heap_model.counters;
  cache_hits : int;
  cache_misses : int;
  cache_accesses : int;
}

(** {2 Packed traces}

    The hot loop consumes a {e packed} trace: one int per event encoding
    everything argument selection needs (wire kind, argument count,
    list/chained position masks, result-is-list), plus the id -> size
    table for fresh read-ins.  Packing is a cheap one-shot scan;
    replaying a packed trace allocates nothing at steady state. *)

type packed

(** Number of events in the packed trace. *)
val packed_events : packed -> int

(** [pack trace] packs a preprocessed trace.  @raise Invalid_argument on
    a primitive with more than 24 arguments (real traces have ≤ 2). *)
val pack : Trace.Preprocess.t -> packed

(** [pack_source src] packs a binary trace directly off its flat event
    batches via {!Trace.Preprocess.scan_source}: identical packing to
    [pack (Trace.Preprocess.run_source src)] with no intermediate
    [pevent] array. *)
val pack_source : Trace.Binary.source -> packed

(** [run_packed ?metrics config packed] replays a packed trace through
    the allocation-free flat kernel.  Stats are byte-identical to
    {!run_reference} over the trace the packing came from. *)
val run_packed : ?metrics:Obs.Registry.t -> config -> packed -> stats

(** [run ?metrics config trace] simulates the whole trace — equivalent
    to [run_packed config (pack trace)].  With [metrics] attached, the
    run folds its activity into the registry ([small_sim_*] and
    [small_lpt_*] series, including a per-event occupancy histogram);
    the registry is write-only for the simulator, so the returned stats
    are bit-identical with and without it, and a detached run pays only
    one option test per event. *)
val run : ?metrics:Obs.Registry.t -> config -> Trace.Preprocess.t -> stats

(** [run_source ?metrics config src] simulates a binary trace end to end
    without materialising events: [run_packed config (pack_source src)]. *)
val run_source : ?metrics:Obs.Registry.t -> config -> Trace.Binary.source -> stats

(** The original boxed interpreter over [Trace.Preprocess.pevent]s, kept
    as the correctness oracle for the flat kernel: {!run} must produce
    byte-identical stats.  Exercised by the equivalence test battery and
    the [sim.hotloop] bench; not intended for production callers. *)
val run_reference : ?metrics:Obs.Registry.t -> config -> Trace.Preprocess.t -> stats

val lpt_hit_rate : stats -> float
val cache_hit_rate : stats -> float

(** [min_table_size ?jobs ?metrics config trace] searches for the knee of
    Figure 5.1: the smallest table size (within the probe sequence) at
    which no overflow of any kind occurs, by doubling then bisecting.
    Returns the size and the stats of the run at that size.

    With [jobs] > 1 the probe simulations run on a [Util.Parallel] pool —
    the doubling phase probes whole batches of sizes at once and the
    bisection phase speculatively evaluates the next levels of its
    decision tree — while following the same decision sequence as the
    sequential search, so the result is identical for every [jobs].

    [metrics] is shared by every probe run (concurrent probes record
    into it at once); the search result does not depend on it. *)
val min_table_size :
  ?jobs:int -> ?metrics:Obs.Registry.t -> config -> Trace.Preprocess.t ->
  int * stats
