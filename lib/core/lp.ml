module D = Sexp.Datum

type part =
  | Obj of int
  | Val of D.t

type side = Car | Cdr

type t = {
  store : Heap.Store.t;
  symtab : Heap.Symtab.t;
  mutable lpt : Lpt.t option;         (* set right after creation *)
  (* id -> the heap word materialising the object: [Some w] while the
     object lives (unsplit) in the heap; [None] for endo-structure and
     for parents whose cell was consumed by a split *)
  words : (int, Heap.Word.t option) Hashtbl.t;
  (* atom payloads of fields set to atom-child by cons/rplac *)
  payloads : (int * side, D.t) Hashtbl.t;
}

let lpt t = Option.get t.lpt

let word t id = Option.join (Hashtbl.find_opt t.words id)

(* ---- heap controller duties (§4.3.3) ---- *)

(* Free the cell tree materialising a dying object (§4.3.3.1). *)
let release_tree t (w : Heap.Word.t) =
  let rec go (w : Heap.Word.t) =
    match w with
    | Nil | Sym _ | Int _ -> ()
    | Ptr a ->
      let car = Heap.Store.car t.store a in
      let cdr = Heap.Store.cdr t.store a in
      Heap.Store.release t.store a;
      go car;
      go cdr
  in
  go w

let on_free t id =
  (match word t id with
   | Some w -> release_tree t w
   | None -> ());
  Hashtbl.remove t.words id;
  Hashtbl.remove t.payloads (id, Car);
  Hashtbl.remove t.payloads (id, Cdr)

(* A split consumes the parent cell and hands its two words to the fresh
   child entries (§4.3.3.2). *)
let on_split t ~parent ~car ~cdr =
  match word t parent with
  | Some (Heap.Word.Ptr a) ->
    let car_w = Heap.Store.car t.store a in
    let cdr_w = Heap.Store.cdr t.store a in
    Heap.Store.release t.store a;
    Hashtbl.replace t.words parent None;
    Hashtbl.replace t.words car (Some car_w);
    Hashtbl.replace t.words cdr (Some cdr_w)
  | Some w ->
    (* splitting an atom object: both parts are nil (car/cdr of an atom
       is an EP-level error; the LP stays consistent) *)
    ignore w;
    Hashtbl.replace t.words parent None;
    Hashtbl.replace t.words car (Some Heap.Word.Nil);
    Hashtbl.replace t.words cdr (Some Heap.Word.Nil)
  | None ->
    Hashtbl.replace t.words car (Some Heap.Word.Nil);
    Hashtbl.replace t.words cdr (Some Heap.Word.Nil)

(* A compression writes the parent back as one fresh heap cell whose
   halves are the children's words (merge, Fig 4.8 / §4.3.3.2). *)
let on_merge t ~parent ~car ~cdr =
  let half child side =
    match word t child with
    | Some w -> w
    | None ->
      (* an atom-child payload or an empty half *)
      (match Hashtbl.find_opt t.payloads (parent, side) with
       | Some d -> Heap.Linearize.store_naive t.symtab t.store d
       | None -> Heap.Word.Nil)
  in
  let cell =
    Heap.Store.alloc t.store ~car:(half car Car) ~cdr:(half cdr Cdr)
  in
  (* the children die via the compression's decrements; their trees now
     belong to the merged cell, so forget their words first *)
  Hashtbl.replace t.words car None;
  Hashtbl.replace t.words cdr None;
  Hashtbl.replace t.words parent (Some (Heap.Word.Ptr cell))

let create ?(lpt_size = 1024) ?(heap_cells = 65536) () =
  let t =
    { store = Heap.Store.create ~capacity:heap_cells;
      symtab = Heap.Symtab.create ();
      lpt = None;
      words = Hashtbl.create 256;
      payloads = Hashtbl.create 64 }
  in
  let heap = Heap_model.create ~seed:23 () in
  let lpt =
    Lpt.create
      ~on_split:(fun ~parent ~car ~cdr -> on_split t ~parent ~car ~cdr)
      ~on_merge:(fun ~parent ~car ~cdr -> on_merge t ~parent ~car ~cdr)
      ~on_free:(fun id -> on_free t id)
      ~size:lpt_size ~policy:Lpt.Compress_one ~split_counts:false
      ~eager_decrement:false ~heap ~seed:29 ()
  in
  t.lpt <- Some lpt;
  t

let read_in t d =
  if D.is_atom d then invalid_arg "Lp.read_in: atoms are EP values, not list objects";
  let n, p = Sexp.Metrics.np d in
  let id = Lpt.read_in (lpt t) ~size:(max 1 (n + p)) in
  Hashtbl.replace t.words id (Some (Heap.Linearize.store_naive t.symtab t.store d));
  Lpt.stack_incr (lpt t) id;
  id

(* Render an entry as a part for the EP: lists stay identifiers, atoms
   are immediate values. *)
let part_of t id =
  match word t id with
  | Some (Heap.Word.Ptr _) | None -> Obj id
  | Some w -> Val (Heap.Linearize.read t.symtab t.store w)

let guard_list t id name =
  if not (Lpt.is_live (lpt t) id) then
    invalid_arg (Printf.sprintf "Lp.%s: dead identifier %d" name id);
  match word t id with
  | Some (Heap.Word.Ptr _) | None -> ()
  | Some _ -> invalid_arg (Printf.sprintf "Lp.%s: identifier %d holds an atom" name id)

let car t id =
  guard_list t id "car";
  match Lpt.get_car (lpt t) id with
  | Lpt.Hit c | Lpt.Miss c -> part_of t c
  | Lpt.Hit_atom ->
    Val (Option.value ~default:D.Nil (Hashtbl.find_opt t.payloads (id, Car)))

let cdr t id =
  guard_list t id "cdr";
  match Lpt.get_cdr (lpt t) id with
  | Lpt.Hit c | Lpt.Miss c -> part_of t c
  | Lpt.Hit_atom ->
    Val (Option.value ~default:D.Nil (Hashtbl.find_opt t.payloads (id, Cdr)))

let child_of = function
  | Obj id -> Some id
  | Val _ -> None

let cons t a d =
  let id = Lpt.cons (lpt t) ~car:(child_of a) ~cdr:(child_of d) in
  Hashtbl.replace t.words id None;
  (match a with Val v -> Hashtbl.replace t.payloads (id, Car) v | Obj _ -> ());
  (match d with Val v -> Hashtbl.replace t.payloads (id, Cdr) v | Obj _ -> ());
  Lpt.stack_incr (lpt t) id;
  id

let rplac side t id v =
  guard_list t id (match side with Car -> "rplaca" | Cdr -> "rplacd");
  let child = child_of v in
  (match side with
   | Car -> ignore (Lpt.rplaca (lpt t) id child)
   | Cdr -> ignore (Lpt.rplacd (lpt t) id child));
  (match v with
   | Val d -> Hashtbl.replace t.payloads (id, side) d
   | Obj _ -> Hashtbl.remove t.payloads (id, side))

let rplaca t id v = rplac Car t id v
let rplacd t id v = rplac Cdr t id v

let retain t id = Lpt.stack_incr (lpt t) id
let release t id = Lpt.stack_decr (lpt t) id

let externalize t id =
  let rec ext visited id =
    if List.memq id visited then D.Sym "<cycle>"
    else begin
      let visited = id :: visited in
      let table = lpt t in
      if Lpt.car_is_set table id || Lpt.cdr_is_set table id then begin
        let half peek is_set side =
          match peek table id with
          | Some child -> ext visited child
          | None ->
            if is_set table id then
              Option.value ~default:D.Nil (Hashtbl.find_opt t.payloads (id, side))
            else D.Nil  (* half never materialised *)
        in
        D.Cons
          (half Lpt.peek_car Lpt.car_is_set Car,
           half Lpt.peek_cdr Lpt.cdr_is_set Cdr)
      end
      else
        match word t id with
        | Some w -> Heap.Linearize.read t.symtab t.store w
        | None -> D.Nil
    end
  in
  ext [] id

let is_live t id = Lpt.is_live (lpt t) id

let heap_live t = Heap.Store.live t.store

let lpt_counters t = Lpt.counters (lpt t)
