type workload = {
  name : string;
  description : string;
  source : string;
  input : Sexp.Datum.t list;
}

let all =
  [ { name = "plagen"; description = "PLA generator (traffic-light controller)";
      source = Plagen.source; input = Plagen.input };
    { name = "slang"; description = "gate-level circuit simulator (BCD decoder)";
      source = Slang.source; input = Slang.input };
    { name = "lyra"; description = "VLSI design-rule checker";
      source = Lyra.source; input = Lyra.input };
    { name = "editor"; description = "structure editor session";
      source = Editor.source; input = Editor.input };
    { name = "pearl"; description = "record database with in-place updates";
      source = Pearl.source; input = Pearl.input } ]

let find name = List.find_opt (fun w -> w.name = name) all

(* One lock guards both caches: bench sections now run under
   [Util.Parallel], so concurrent first requests for a workload must not
   race the tables (or trace the same program twice).  The lock is held
   across the fill, serialising cache misses; hits after warm-up only
   pay the lock/unlock. *)
let cache_lock = Mutex.create ()

let with_cache_lock f =
  Mutex.lock cache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_lock) f

let trace_cache : (string, Trace.Capture.t) Hashtbl.t = Hashtbl.create 8

let trace_unlocked w =
  match Hashtbl.find_opt trace_cache w.name with
  | Some c -> c
  | None ->
    let c = Lisp.Tracer.trace_program ~input:w.input w.source in
    Hashtbl.replace trace_cache w.name c;
    c

let trace w = with_cache_lock (fun () -> trace_unlocked w)

let prep_cache : (string, Trace.Preprocess.t) Hashtbl.t = Hashtbl.create 8

let preprocessed w =
  with_cache_lock (fun () ->
      match Hashtbl.find_opt prep_cache w.name with
      | Some p -> p
      | None ->
        let p = Trace.Preprocess.run (trace_unlocked w) in
        Hashtbl.replace prep_cache w.name p;
        p)

let simulation_suite () = List.filter (fun w -> w.name <> "pearl") all
