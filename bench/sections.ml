(* Every table and figure of the thesis's evaluation, regenerated from
   our own workload traces and simulators.  Each section prints the same
   rows/series the thesis reports; EXPERIMENTS.md records the comparison
   against the published numbers. *)

let registry : (string * string * (unit -> unit)) list ref = ref []

let register name description fn = registry := (name, description, fn) :: !registry

let all () = List.rev !registry

(* ---------- Chapter 3 ---------- *)

let () =
  register "fig3.1" "Execution frequencies of primitive Lisp functions" @@ fun () ->
  let rows =
    List.map
      (fun w ->
         let mix = Analysis.Prim_mix.analyze (Workloads.Registry.trace w) in
         let p prim = Context.pct1 (Analysis.Prim_mix.pct mix prim) in
         [ w.Workloads.Registry.name; p Trace.Event.Car; p Trace.Event.Cdr;
           p Trace.Event.Cons; p Trace.Event.Rplaca; p Trace.Event.Rplacd;
           Context.int_s mix.Analysis.Prim_mix.total ])
      (Context.chapter3_suite ())
  in
  Util.Series.print_rows
    ~title:"Fig 3.1 — primitive mix per trace (% of traced primitives)"
    ~header:[ "trace"; "car%"; "cdr%"; "cons%"; "rplaca%"; "rplacd%"; "total" ]
    rows

let () =
  register "table3.1" "Average values of n and p" @@ fun () ->
  let rows =
    List.map
      (fun w ->
         let np = Analysis.Np_stats.analyze (Workloads.Registry.preprocessed w) in
         [ w.Workloads.Registry.name;
           Context.pct (Analysis.Np_stats.mean_n np);
           Context.pct (Analysis.Np_stats.mean_p np) ])
      (Context.chapter3_suite ())
  in
  Util.Series.print_rows ~title:"Table 3.1 — average n and p per trace"
    ~header:[ "trace"; "mean n"; "mean p" ] rows

let () =
  register "fig3.3" "Distribution of n and p over lists" @@ fun () ->
  let series_of extract label =
    List.map
      (fun w ->
         let np = Analysis.Np_stats.analyze (Workloads.Registry.preprocessed w) in
         Util.Series.make ~label:(w.Workloads.Registry.name ^ label)
           (List.filteri (fun i _ -> i mod 3 = 0) (extract np)))
      (Context.chapter3_suite ())
  in
  Util.Series.print_ascii ~title:"Fig 3.3a — cumulative distribution of n over lists"
    (series_of Analysis.Np_stats.n_cumulative "");
  Util.Series.print_ascii ~title:"Fig 3.3b — cumulative distribution of p over lists"
    (series_of Analysis.Np_stats.p_cumulative "")

let partition_all separation =
  Util.Parallel.map
    (fun w ->
       (w.Workloads.Registry.name,
        Analysis.List_sets.partition ~separation (Workloads.Registry.preprocessed w)))
    (Context.chapter3_suite ())

let () =
  register "fig3.4" "Distribution of lists over list sets (coverage)" @@ fun () ->
  let parts = partition_all 0.10 in
  let series =
    List.map
      (fun (name, r) ->
         let pts =
           List.filter (fun (k, _) -> k <= 100.) (Analysis.List_sets.coverage_curve r)
         in
         Util.Series.make ~label:name pts)
      parts
  in
  Util.Series.print_ascii
    ~title:"Fig 3.4 — cumulative reference coverage vs number of list sets (10% sep)"
    series;
  Util.Series.print_rows
    ~title:"Fig 3.4 — list sets needed to cover 50% / 80% / 95% of references"
    ~header:[ "trace"; "sets"; "for 50%"; "for 80%"; "for 95%" ]
    (List.map
       (fun (name, r) ->
          [ name; Context.int_s (List.length r.Analysis.List_sets.sets);
            Context.int_s (Analysis.List_sets.sets_for_coverage r 0.5);
            Context.int_s (Analysis.List_sets.sets_for_coverage r 0.8);
            Context.int_s (Analysis.List_sets.sets_for_coverage r 0.95) ])
       parts)

let () =
  register "fig3.5" "Distribution of list-set lifetimes over list sets" @@ fun () ->
  let parts = partition_all 0.10 in
  Util.Series.print_ascii
    ~title:"Fig 3.5 — cumulative fraction of list sets vs lifetime (% of trace)"
    (List.map
       (fun (name, r) ->
          Util.Series.make ~label:name (Analysis.List_sets.lifetime_over_sets r))
       parts);
  Util.Series.print_rows
    ~title:"Fig 3.5 — fraction of list sets below lifetime thresholds"
    ~header:[ "trace"; "<10% life"; "<60% life"; ">90% life" ]
    (List.map
       (fun (name, r) ->
          let frac below =
            let sets = r.Analysis.List_sets.sets in
            let len = float_of_int (max 1 r.Analysis.List_sets.stream_length) in
            let n =
              List.length
                (List.filter
                   (fun s ->
                      100. *. float_of_int (Analysis.List_sets.lifetime s) /. len
                      < below)
                   sets)
            in
            float_of_int n /. float_of_int (max 1 (List.length sets))
          in
          [ name; Context.pct (100. *. frac 10.); Context.pct (100. *. frac 60.);
            Context.pct (100. *. (1. -. frac 90.)) ])
       parts)

let () =
  register "fig3.6" "Distribution of list-set lifetimes over references" @@ fun () ->
  let parts = partition_all 0.10 in
  Util.Series.print_ascii
    ~title:"Fig 3.6 — cumulative fraction of references vs their set's lifetime"
    (List.map
       (fun (name, r) ->
          Util.Series.make ~label:name (Analysis.List_sets.lifetime_over_refs r))
       parts)

let () =
  register "fig3.7" "List-set LRU stack distances" @@ fun () ->
  let rows, series =
    List.split
      (Util.Parallel.map
         (fun w ->
            let stream =
              Analysis.List_sets.set_id_stream ~separation:0.10
                (Workloads.Registry.preprocessed w)
            in
            let lru = Analysis.Lru_stack.analyze stream in
            let name = w.Workloads.Registry.name in
            let frac k = Analysis.Lru_stack.hit_fraction lru k in
            ( [ name; Context.pct (100. *. frac 1); Context.pct (100. *. frac 2);
                Context.pct (100. *. frac 4); Context.pct (100. *. frac 8) ],
              Util.Series.make ~label:name (Analysis.Lru_stack.curve lru ~max_depth:12) ))
         (Context.chapter3_suite ()))
  in
  Util.Series.print_ascii
    ~title:"Fig 3.7 — cumulative list-set accesses vs LRU stack depth" series;
  Util.Series.print_rows ~title:"Fig 3.7 — captured accesses at stack depths (%)"
    ~header:[ "trace"; "depth 1"; "depth 2"; "depth 4"; "depth 8" ] rows

let () =
  register "table3.2" "Percentage of CxR calls inside a function chain" @@ fun () ->
  Util.Series.print_rows
    ~title:"Table 3.2 — % of car/cdr calls that occurred inside a function chain"
    ~header:[ "trace"; "CAR%"; "CDR%" ]
    (List.map
       (fun w ->
          let r = Analysis.Chaining.analyze (Workloads.Registry.preprocessed w) in
          [ w.Workloads.Registry.name; Context.pct (Analysis.Chaining.car_pct r);
            Context.pct (Analysis.Chaining.cdr_pct r) ])
       (Context.chapter3_suite ()))

let () =
  register "fig3.8-10" "Sensitivity: varying separation constraint (slang)" @@ fun () ->
  let pre = Context.pre "slang" in
  let seps = [ 0.05; 0.10; 0.25; 0.50; 1.00 ] in
  let parts =
    Util.Parallel.map (fun s -> (s, Analysis.List_sets.partition ~separation:s pre)) seps
  in
  Util.Series.print_rows
    ~title:"Figs 3.8-3.10 — slang list-set partition vs separation constraint"
    ~header:[ "separation"; "sets"; "for 80%"; "median life%"; "refs in >50% life" ]
    (List.map
       (fun (s, r) ->
          let len = float_of_int (max 1 r.Analysis.List_sets.stream_length) in
          let lifetimes =
            List.sort Float.compare
              (List.map
                 (fun set -> 100. *. float_of_int (Analysis.List_sets.lifetime set) /. len)
                 r.Analysis.List_sets.sets)
          in
          let median =
            match lifetimes with
            | [] -> 0.
            | l -> List.nth l (List.length l / 2)
          in
          let refs_long =
            List.fold_left
              (fun acc set ->
                 if 100. *. float_of_int (Analysis.List_sets.lifetime set) /. len > 50.
                 then acc + set.Analysis.List_sets.size
                 else acc)
              0 r.Analysis.List_sets.sets
          in
          [ Printf.sprintf "%.0f%%" (100. *. s);
            Context.int_s (List.length r.Analysis.List_sets.sets);
            Context.int_s (Analysis.List_sets.sets_for_coverage r 0.8);
            Context.pct median;
            Context.pct
              (100. *. float_of_int refs_long /. float_of_int r.Analysis.List_sets.stream_length) ])
       parts);
  Util.Series.print_ascii
    ~title:"Figs 3.8 — slang coverage curves under different separations"
    (List.map
       (fun (s, r) ->
          Util.Series.make ~label:(Printf.sprintf "%.0f%%" (100. *. s))
            (List.filter (fun (k, _) -> k <= 60.) (Analysis.List_sets.coverage_curve r)))
       parts)

let () =
  register "fig3.11-13" "Sensitivity: fixed absolute separation constraint" @@ fun () ->
  (* the window is 10% of the *shortest* trace, applied to all *)
  let suite = Context.chapter5_suite () in
  let shortest =
    List.fold_left
      (fun acc w ->
         min acc
           (Array.length (Trace.Preprocess.prim_refs (Workloads.Registry.preprocessed w))))
      max_int suite
  in
  let window = max 1 (shortest / 10) in
  Util.Series.print_rows
    ~title:
      (Printf.sprintf
         "Figs 3.11-3.13 — fixed separation window of %d references (10%% of shortest)"
         window)
    ~header:[ "trace"; "refs"; "sets"; "for 80%"; "window as % of trace" ]
    (Util.Parallel.map
       (fun w ->
          let pre = Workloads.Registry.preprocessed w in
          let refs = Array.length (Trace.Preprocess.prim_refs pre) in
          let r = Analysis.List_sets.partition_abs ~window pre in
          [ w.Workloads.Registry.name; Context.int_s refs;
            Context.int_s (List.length r.Analysis.List_sets.sets);
            Context.int_s (Analysis.List_sets.sets_for_coverage r 0.8);
            Context.pct (100. *. float_of_int window /. float_of_int refs) ])
       suite)

(* ---------- Chapter 5 ---------- *)

let () =
  register "table5.1" "Content of the four simulation traces" @@ fun () ->
  Util.Series.print_rows
    ~title:"Table 5.1 — trace content (user functions, primitives, max call depth)"
    ~header:[ "trace"; "functions"; "primitives"; "max depth" ]
    (List.map
       (fun w ->
          let st = Trace.Capture.stats (Workloads.Registry.trace w) in
          [ w.Workloads.Registry.name; Context.int_s st.Trace.Capture.functions;
            Context.int_s st.Trace.Capture.primitives;
            Context.int_s st.Trace.Capture.max_depth ])
       (Context.chapter5_suite ()))

let () =
  register "fig5.1" "Peak LPT usage vs table size (the knee curve)" @@ fun () ->
  let traces = [ "plagen"; "slang"; "editor" ] in
  List.iter
    (fun name ->
       let k = Context.knee name in
       let sizes =
         List.sort_uniq compare
           [ max 8 (k / 4); max 8 (k / 2); max 8 (3 * k / 4); k; 2 * k; 4 * k ]
       in
       let rows =
         List.map
           (fun (size, stats) ->
              [ Context.int_s size; Context.int_s stats.Core.Simulator.peak_lpt;
                (if stats.Core.Simulator.true_overflow then "TRUE OVERFLOW"
                 else if stats.Core.Simulator.lpt.Core.Lpt.pseudo_overflows > 0 then
                   Printf.sprintf "%d pseudo" stats.Core.Simulator.lpt.Core.Lpt.pseudo_overflows
                 else "clean") ])
           (Context.sweep sizes name)
       in
       Util.Series.print_rows
         ~title:(Printf.sprintf "Fig 5.1 — %s: peak LPT usage vs size (knee at %d)" name k)
         ~header:[ "table size"; "peak usage"; "overflow" ] rows)
    traces

let () =
  register "fig5.2" "Maximum LPT occupancy levels over seeds" @@ fun () ->
  let seeds = [ 1; 7; 13; 23; 42; 77; 101; 137 ] in
  Util.Series.print_rows
    ~title:
      (Printf.sprintf
         "Fig 5.2 — knee (max occupancy) intervals over %d random access patterns"
         (List.length seeds))
    ~header:[ "trace"; "min knee"; "max knee" ]
    (List.map
       (fun w ->
          let knees = Context.seed_knees w.Workloads.Registry.name seeds in
          [ w.Workloads.Registry.name;
            Context.int_s (List.fold_left min max_int knees);
            Context.int_s (List.fold_left max 0 knees) ])
       (Context.chapter5_suite ()))

let () =
  register "fig5.3" "LPT behaviour under the two pseudo-overflow policies" @@ fun () ->
  List.iter
    (fun name ->
       let pre = Context.pre name in
       let k = Context.knee name in
       let sizes =
         List.sort_uniq compare
           [ max 8 (k / 2); max 8 (5 * k / 8); max 8 (3 * k / 4); max 8 (7 * k / 8); k ]
       in
       let run policy size =
         Core.Simulator.run
           { Core.Simulator.default_config with table_size = size; policy } pre
       in
       Util.Series.print_rows
         ~title:(Printf.sprintf "Fig 5.3 — %s: average LPT occupancy by policy" name)
         ~header:[ "size"; "Compress-One avg"; "Compress-All avg"; "C-One ovf"; "C-All ovf" ]
         (Util.Parallel.map
            (fun size ->
               let one = run Core.Lpt.Compress_one size in
               let all = run Core.Lpt.Compress_all size in
               [ Context.int_s size;
                 Context.pct one.Core.Simulator.avg_lpt;
                 Context.pct all.Core.Simulator.avg_lpt;
                 Context.int_s one.Core.Simulator.lpt.Core.Lpt.pseudo_overflows;
                 Context.int_s all.Core.Simulator.lpt.Core.Lpt.pseudo_overflows ])
            sizes))
    [ "slang"; "editor" ]

let () =
  register "table5.2" "LPT activity (Refops, Gets, Frees, RecRefops)" @@ fun () ->
  Util.Series.print_rows
    ~title:
      "Table 5.2 — reference-count traffic: lazy child decrement (Refops) vs naive recursive (RecRefops)"
    ~header:[ "trace"; "Refops"; "Gets"; "Frees"; "RecRefops"; "increase" ]
    (Util.Parallel.map
       (fun w ->
          let pre = Workloads.Registry.preprocessed w in
          let lazy_ = Core.Simulator.run Core.Simulator.default_config pre in
          let eager =
            Core.Simulator.run
              { Core.Simulator.default_config with eager_decrement = true } pre
          in
          let refops = lazy_.Core.Simulator.lpt.Core.Lpt.refops in
          let recrefops = eager.Core.Simulator.lpt.Core.Lpt.refops in
          [ w.Workloads.Registry.name; Context.int_s refops;
            Context.int_s lazy_.Core.Simulator.lpt.Core.Lpt.gets;
            Context.int_s lazy_.Core.Simulator.lpt.Core.Lpt.frees;
            Context.int_s recrefops;
            Printf.sprintf "+%.0f%%"
              (100. *. (float_of_int recrefops /. float_of_int (max 1 refops) -. 1.)) ])
       (Context.chapter5_suite ()))

let () =
  register "table5.3" "Evaluation of split reference counts" @@ fun () ->
  Util.Series.print_rows
    ~title:
      "Table 5.3 — LP-side refcount ops: all counts in the LPT (Then) vs stack counts in the EP (Now)"
    ~header:[ "trace"; "Refops Then"; "Refops Now"; "reduction"; "MaxCount Then"; "MaxCount Now" ]
    (Util.Parallel.map
       (fun w ->
          let pre = Workloads.Registry.preprocessed w in
          let plain = Core.Simulator.run Core.Simulator.default_config pre in
          let split =
            Core.Simulator.run
              { Core.Simulator.default_config with split_counts = true } pre
          in
          let then_ = plain.Core.Simulator.lpt.Core.Lpt.refops in
          let now = split.Core.Simulator.lpt.Core.Lpt.refops in
          [ w.Workloads.Registry.name; Context.int_s then_; Context.int_s now;
            Printf.sprintf "%.1fx" (float_of_int then_ /. float_of_int (max 1 now));
            Context.int_s plain.Core.Simulator.lpt.Core.Lpt.max_refcount;
            Context.int_s split.Core.Simulator.lpt.Core.Lpt.max_refcount ])
       (Context.chapter5_suite ()))

let table5_4_sizes name =
  (* the paper's comparison sizes sit below the knee, where both
     structures are under capacity pressure *)
  let k = Context.knee name in
  List.sort_uniq compare [ max 16 (k / 4); max 16 (k / 2); max 16 (3 * k / 4) ]

let () =
  register "table5.4" "Comparison with a data cache (equal entries, unit lines)" @@ fun () ->
  let rows =
    List.concat_map
      (fun w ->
         let name = w.Workloads.Registry.name in
         let pre = Workloads.Registry.preprocessed w in
         Util.Parallel.map
           (fun size ->
              let stats =
                Core.Simulator.run
                  { Core.Simulator.default_config with
                    table_size = size;
                    cache = Some { Core.Simulator.cache_lines = size; cache_line_size = 1 } }
                  pre
              in
              [ name; Context.int_s size;
                Context.int_s stats.Core.Simulator.lpt.Core.Lpt.misses;
                Context.pct (100. *. Core.Simulator.lpt_hit_rate stats);
                Context.int_s stats.Core.Simulator.cache_misses;
                Context.pct (100. *. Core.Simulator.cache_hit_rate stats);
                Printf.sprintf "%.2f"
                  (float_of_int stats.Core.Simulator.cache_misses
                   /. float_of_int (max 1 stats.Core.Simulator.lpt.Core.Lpt.misses));
                (if stats.Core.Simulator.overflow_events > 0 then
                   Printf.sprintf "(%d ovf evts)" stats.Core.Simulator.overflow_events
                 else "") ])
           (table5_4_sizes name))
      (Context.chapter5_suite ())
  in
  Util.Series.print_rows
    ~title:"Table 5.4 — LPT vs fully associative LRU data cache (line = one cell)"
    ~header:[ "trace"; "size"; "LPT misses"; "LPT hit%"; "cache misses"; "cache hit%"; "miss ratio"; "" ]
    rows

let () =
  register "fig5.4" "Hit rates for LPT and data cache (slang sweep)" @@ fun () ->
  let pre = Context.pre "slang" in
  let k = Context.knee "slang" in
  let sizes =
    List.sort_uniq compare
      [ max 16 (k / 4); max 16 (k / 2); max 16 (3 * k / 4); k; 3 * k / 2; 2 * k ]
  in
  let points =
    Util.Parallel.map
      (fun size ->
         let stats =
           Core.Simulator.run
             { Core.Simulator.default_config with
               table_size = size;
               cache = Some { Core.Simulator.cache_lines = size; cache_line_size = 1 } }
             pre
         in
         (size, stats))
      sizes
  in
  Util.Series.print_ascii ~title:"Fig 5.4 — slang: hit rate vs LPT/cache size"
    [ Util.Series.make ~label:"LPT"
        (List.map
           (fun (s, st) -> (float_of_int s, 100. *. Core.Simulator.lpt_hit_rate st))
           points);
      Util.Series.make ~label:"cache"
        (List.map
           (fun (s, st) -> (float_of_int s, 100. *. Core.Simulator.cache_hit_rate st))
           points) ];
  Util.Series.print_rows ~title:"Fig 5.4 — slang hit rates by size"
    ~header:[ "size"; "LPT hit%"; "cache hit%" ]
    (List.map
       (fun (s, st) ->
          [ Context.int_s s; Context.pct (100. *. Core.Simulator.lpt_hit_rate st);
            Context.pct (100. *. Core.Simulator.cache_hit_rate st) ])
       points)

let () =
  register "fig5.5" "Cache-miss / LPT-miss ratio vs cache line size" @@ fun () ->
  (* the modified model of §5.2.5: cache entries are half the size of LPT
     entries (twice the cells for the same total size), line sizes 1-16 *)
  let traces = [ "lyra"; "slang"; "editor" ] in
  List.iter
    (fun name ->
       let pre = Context.pre name in
       let k = Context.knee name in
       let sizes = List.sort_uniq compare [ k; 2 * k ] in
       let runs =
         List.concat_map (fun size -> List.map (fun line -> (size, line)) [ 1; 2; 4; 8; 16 ])
           sizes
       in
       let rows =
         Util.Parallel.map
           (fun (size, line) ->
              let cells = 2 * size in
              let stats =
                Core.Simulator.run
                  { Core.Simulator.default_config with
                    table_size = size;
                    cache =
                      Some
                        { Core.Simulator.cache_lines = max 1 (cells / line);
                          cache_line_size = line } }
                  pre
              in
              let ratio =
                float_of_int stats.Core.Simulator.cache_misses
                /. float_of_int (max 1 stats.Core.Simulator.lpt.Core.Lpt.misses)
              in
              [ Context.int_s size; Context.int_s line; Context.pct ratio ])
           runs
       in
       Util.Series.print_rows
         ~title:
           (Printf.sprintf
              "Fig 5.5 — %s: cache/LPT miss ratio vs line size (half-size cache entries)"
              name)
         ~header:[ "LPT size"; "line size"; "miss ratio" ] rows)
    traces

let () =
  register "table5.5" "Sensitivity to the probability parameters (slang)" @@ fun () ->
  let pre = Context.pre "slang" in
  (* run just under the knee so the statistics remain parameter-sensitive *)
  let base =
    { Core.Simulator.default_config with
      table_size = max 64 (4 * Context.knee "slang" / 5) }
  in
  let variants =
    [ ("Control", base);
      ("HiArg", { base with arg_prob = 0.85; loc_prob = 0.125 });
      ("HiLoc", { base with arg_prob = 0.30; loc_prob = 0.60 });
      ("HiRead", { base with read_prob = 0.03 });
      ("HiBind", { base with bind_prob = 0.03 }) ]
  in
  let stats =
    Util.Parallel.map (fun (label, cfg) -> (label, Core.Simulator.run cfg pre)) variants
  in
  let row name f = name :: List.map (fun (_, st) -> f st) stats in
  Util.Series.print_rows
    ~title:"Table 5.5 — sensitivity of the simulation to the probability parameters"
    ~header:("statistic" :: List.map fst stats)
    [ row "Ave LPT count" (fun st -> Context.pct st.Core.Simulator.avg_lpt);
      row "Max LPT count" (fun st -> Context.int_s st.Core.Simulator.peak_lpt);
      row "LPT hits" (fun st -> Context.int_s st.Core.Simulator.lpt.Core.Lpt.hits);
      row "Max refcount" (fun st -> Context.int_s st.Core.Simulator.lpt.Core.Lpt.max_refcount);
      row "Refops" (fun st -> Context.int_s st.Core.Simulator.lpt.Core.Lpt.refops) ]

let () =
  register "sec5.3.1" "Ordered traversals: the guaranteed 75% hit rate" @@ fun () ->
  let samples =
    [ "(a b c (d e) f g)"; "(((a b) c d) e f g)"; "(a (b (c (d e) f) g))" ]
  in
  let big = Sexp.Datum.of_ints (List.init 500 (fun i -> i)) in
  Util.Series.print_rows
    ~title:"§5.3.1 — ordered traversal through the LPT: hits/misses vs prediction"
    ~header:[ "list"; "order"; "hits"; "misses"; "predicted"; "hit rate" ]
    (List.concat_map
       (fun src ->
          let d = Sexp.parse src in
          let pm, ph = Core.Traversal.predicted d in
          List.map
            (fun (oname, order) ->
               let r = Core.Traversal.simulate ~order d in
               [ src; oname; Context.int_s r.Core.Traversal.hits;
                 Context.int_s r.Core.Traversal.misses;
                 Printf.sprintf "%d/%d" ph pm;
                 Context.pct (100. *. r.Core.Traversal.hit_rate) ])
            [ ("pre", Sexp.Tree.Pre); ("in", Sexp.Tree.In); ("post", Sexp.Tree.Post) ])
       samples
     @ [ (let r = Core.Traversal.simulate ~order:Sexp.Tree.In big in
          [ "(0 1 ... 499)"; "in"; Context.int_s r.Core.Traversal.hits;
            Context.int_s r.Core.Traversal.misses; "-";
            Context.pct (100. *. r.Core.Traversal.hit_rate) ]) ])

(* ---------- ablations ---------- *)

let () =
  register "ablation.freelist" "Free-list discipline: LIFO stack vs FIFO queue" @@ fun () ->
  (* §4.3.2.1 argues for a free *stack* so the most recently freed entry
     is reused first, minimising the window in which lazily-deferred
     children occupy space.  Measure cell-footprint of a churning
     allocator under both disciplines. *)
  let churn discipline =
    let s = Heap.Store.create ~capacity:4096 in
    Heap.Store.set_discipline s discipline;
    let rng = Util.Rng.create ~seed:5 in
    let held = ref [] in
    let distinct = Hashtbl.create 256 in
    for _ = 1 to 20_000 do
      if Util.Rng.bool rng ~p:0.55 || !held = [] then begin
        let a = Heap.Store.alloc s ~car:Heap.Word.Nil ~cdr:Heap.Word.Nil in
        Hashtbl.replace distinct a ();
        held := a :: !held
      end
      else begin
        match !held with
        | a :: rest ->
          Heap.Store.release s a;
          held := rest
        | [] -> ()
      end
    done;
    Hashtbl.length distinct
  in
  Util.Series.print_rows
    ~title:"Ablation — distinct cells touched by a churning allocator (smaller = hotter reuse)"
    ~header:[ "discipline"; "distinct cells" ]
    [ [ "LIFO stack"; Context.int_s (churn Heap.Store.Lifo) ];
      [ "FIFO queue"; Context.int_s (churn Heap.Store.Fifo) ] ]

let () =
  register "ablation.binding" "Environment strategies: deep vs shallow vs value cache" @@ fun () ->
  let run strategy =
    let i = Lisp.Interp.create ~strategy () in
    Lisp.Prelude.load i;
    let w = Context.workload "editor" in
    Lisp.Interp.provide_input i w.Workloads.Registry.input;
    ignore (Lisp.Interp.run_program i w.Workloads.Registry.source);
    Lisp.Env.counters (Lisp.Interp.env i)
  in
  Util.Series.print_rows
    ~title:"Ablation — name lookup cost on the editor workload (§2.3.2)"
    ~header:[ "strategy"; "lookups"; "probes"; "cache hits"; "binds" ]
    (List.map
       (fun (name, strategy) ->
          let c = run strategy in
          [ name; Context.int_s c.Lisp.Env.lookups; Context.int_s c.Lisp.Env.probes;
            Context.int_s c.Lisp.Env.cache_hits; Context.int_s c.Lisp.Env.binds ])
       [ ("deep", Lisp.Env.Deep); ("shallow", Lisp.Env.Shallow);
         ("value-cache", Lisp.Env.Value_cache) ])

let () =
  register "ablation.repr" "List representation space costs on real lists" @@ fun () ->
  (* encode the distinct lists of the editor trace under each scheme *)
  let w = Context.workload "editor" in
  let capture = Workloads.Registry.trace w in
  let module Dtbl = Hashtbl in
  let seen = Dtbl.create 256 in
  Array.iter
    (fun (e : Trace.Event.t) ->
       match e with
       | Prim { args; _ } ->
         List.iter
           (fun (a : Sexp.Datum.t) ->
              match a with
              | Cons _ when Sexp.Datum.is_list a && Sexp.Metrics.n a > 0 ->
                (try
                   let eps_ok = Repr.Eps.encode a in
                   ignore eps_ok;
                   Dtbl.replace seen a ()
                 with Invalid_argument _ -> ())
              | _ -> ())
           args
       | Call _ | Return _ -> ())
    (Trace.Capture.events capture);
  let totals = Array.make 5 0 in
  let count = ref 0 in
  Dtbl.iter
    (fun d () ->
       if !count < 400 then begin
         incr count;
         let s = Repr.Cost.summarize d in
         totals.(0) <- totals.(0) + s.Repr.Cost.two_pointer_bits;
         totals.(1) <- totals.(1) + s.Repr.Cost.cdr_coded_bits;
         totals.(2) <- totals.(2) + s.Repr.Cost.linked_vector_bits;
         totals.(3) <- totals.(3) + s.Repr.Cost.cdar_bits;
         totals.(4) <- totals.(4) + s.Repr.Cost.eps_bits
       end)
    seen;
  Util.Series.print_rows
    ~title:
      (Printf.sprintf "Ablation — space for %d distinct editor lists (bits, lower = better)"
         !count)
    ~header:[ "scheme"; "total bits"; "vs two-pointer" ]
    (List.map
       (fun (name, ix) ->
          [ name; Context.int_s totals.(ix);
            Printf.sprintf "%.2fx"
              (float_of_int totals.(ix) /. float_of_int (max 1 totals.(0))) ])
       [ ("two-pointer", 0); ("cdr-coded", 1); ("linked-vector", 2); ("cdar", 3);
         ("eps", 4) ])

let () =
  register "ablation.weights" "Multilisp reference management message traffic" @@ fun () ->
  let run scheme combining =
    let t = Multilisp.Refweight.create ~flush_at:8 ~nodes:8 ~scheme ~combining () in
    let rng = Util.Rng.create ~seed:2026 in
    let all = ref [] in
    for _ = 1 to 60 do
      let _obj, r = Multilisp.Refweight.create_object t ~node:(Util.Rng.int rng 8) in
      let refs = ref [ r ] in
      for _ = 1 to 15 do
        let pick = List.nth !refs (Util.Rng.int rng (List.length !refs)) in
        refs := Multilisp.Refweight.copy_ref t pick ~to_node:(Util.Rng.int rng 8) :: !refs
      done;
      all := !refs @ !all
    done;
    List.iter (fun r -> Multilisp.Refweight.drop_ref t r) !all;
    Multilisp.Refweight.flush t;
    Multilisp.Refweight.messages t
  in
  Util.Series.print_rows
    ~title:"Ablation — Ch 6 distributed reference management (60 objects x 15 copies, 8 nodes)"
    ~header:[ "scheme"; "messages" ]
    [ [ "naive counting"; Context.int_s (run Multilisp.Refweight.Naive false) ];
      [ "reference weighting"; Context.int_s (run Multilisp.Refweight.Weighted false) ];
      [ "weighting + combining"; Context.int_s (run Multilisp.Refweight.Weighted true) ] ]

let () =
  register "ablation.isa" "Compiled vs interpreted execution (Figs 4.14/4.15)" @@ fun () ->
  let programs =
    [ ("fact 12",
       "(def fact (lambda (x) (cond ((= x 0) 1) (t (* x (fact (- x 1))))))) (fact 12)");
      ("fib 15",
       "(def fib (lambda (n) (cond ((lessp n 2) n) (t (+ (fib (- n 1)) (fib (- n 2))))))) (fib 15)");
      ("list walk",
       "(prog (l n) (setq l (quote (a b c d e f g h i j k l m n o p))) (setq n 0) loop (cond ((null l) (return n))) (setq n (add1 n)) (setq l (cdr l)) (go loop))") ]
  in
  let workload_rows =
    (* whole benchmark programs compiled onto the machine (prelude
       included); plagen/lyra use lambda arguments, outside the subset *)
    List.map
      (fun name ->
         let w = Option.get (Workloads.Registry.find name) in
         let src = Lisp.Prelude.source ^ "\n" ^ w.Workloads.Registry.source in
         let prog = Machine.Compile.parse_and_compile src in
         let em =
           Machine.Emulator.create ~lpt_size:16384 ~input:w.Workloads.Registry.input prog
         in
         let result =
           match Machine.Emulator.run em with
           | Some v -> Sexp.to_string (Machine.Emulator.datum_of em v)
           | None -> "-"
         in
         let interp = Lisp.Interp.create () in
         Lisp.Prelude.load interp;
         Lisp.Interp.provide_input interp w.Workloads.Registry.input;
         ignore (Lisp.Interp.run_program interp w.Workloads.Registry.source);
         let c = Machine.Emulator.lpt_counters em in
         [ "workload " ^ name; result;
           Context.int_s (Machine.Emulator.instructions em);
           Context.int_s (Lisp.Interp.steps interp);
           Context.int_s c.Core.Lpt.refops; Context.int_s c.Core.Lpt.gets ])
      [ "pearl"; "editor"; "slang" ]
  in
  Util.Series.print_rows
    ~title:"Ablation — stack-machine emulation vs interpretation"
    ~header:[ "program"; "result"; "instructions"; "interp steps"; "LP refops"; "LP gets" ]
    (List.map
       (fun (label, src) ->
          let prog = Machine.Compile.parse_and_compile src in
          let em = Machine.Emulator.create prog in
          let result =
            match Machine.Emulator.run em with
            | Some v -> Sexp.to_string (Machine.Emulator.datum_of em v)
            | None -> "-"
          in
          let interp = Lisp.Interp.create () in
          ignore (Lisp.Interp.run_program interp src);
          let c = Machine.Emulator.lpt_counters em in
          [ label; result; Context.int_s (Machine.Emulator.instructions em);
            Context.int_s (Lisp.Interp.steps interp);
            Context.int_s c.Core.Lpt.refops; Context.int_s c.Core.Lpt.gets ])
       programs
     @ workload_rows)

let () =
  register "clark" "Clark's static pointer statistics on workload heaps" @@ fun () ->
  (* Clark [Clar77a]: car pointers point mostly at atoms and lists (3:1
     atoms:lists), cdr pointers at lists and nil (3:1), rarely at atoms;
     linearised lists keep cdr distances at 1.  Measure the same over our
     workloads' input structures loaded by the linearising allocator. *)
  let rows =
    List.map
      (fun w ->
         let store = Heap.Store.create ~capacity:200_000 in
         let tab = Heap.Symtab.create () in
         let roots =
           List.filter_map
             (fun (d : Sexp.Datum.t) ->
                match d with
                | Cons _ -> Some (Heap.Linearize.store_linear tab store d)
                | _ -> None)
             w.Workloads.Registry.input
         in
         let totals =
           List.fold_left
             (fun (ca, cl, cn, da, dl, dn, lin, cells) root ->
                let s = Heap.Linearize.pointer_stats store ~root in
                let cdr_total =
                  List.fold_left (fun acc (_, c) -> acc + c) 0 s.Heap.Linearize.distances
                in
                let at1 =
                  Option.value ~default:0 (List.assoc_opt 1 s.Heap.Linearize.distances)
                in
                ( ca + s.Heap.Linearize.car_to_atom, cl + s.Heap.Linearize.car_to_list,
                  cn + s.Heap.Linearize.car_to_nil, da + s.Heap.Linearize.cdr_to_atom,
                  dl + s.Heap.Linearize.cdr_to_list, dn + s.Heap.Linearize.cdr_to_nil,
                  lin + at1, cells + cdr_total ))
             (0, 0, 0, 0, 0, 0, 0, 0) roots
         in
         let ca, cl, cn, da, dl, dn, lin, cdrs = totals in
         let pct a b = if a + b = 0 then "-" else Printf.sprintf "%.1f:1" (float_of_int a /. float_of_int (max 1 b)) in
         [ w.Workloads.Registry.name;
           pct ca cl;             (* car atoms : lists *)
           Context.int_s cn;      (* car -> nil (Clark: rare) *)
           pct dl dn;             (* cdr lists : nil *)
           Context.int_s da;      (* cdr -> atom (Clark: rare) *)
           (if cdrs = 0 then "-" else Context.pct (100. *. float_of_int lin /. float_of_int cdrs)) ])
      (Context.chapter3_suite ())
  in
  Util.Series.print_rows
    ~title:"Clark's static study — pointer targets over linearised workload inputs"
    ~header:[ "trace"; "car atom:list"; "car->nil"; "cdr list:nil"; "cdr->atom"; "cdr dist-1 %" ]
    rows

let () =
  register "ablation.gc" "Heap maintenance: mark-sweep vs refcount vs copying" @@ fun () ->
  (* a churn benchmark: keep a rotating window of live chains while
     allocating far more than the window, under each collector *)
  let total_allocs = 30_000 and window = 64 and chain = 12 in
  (* mark-sweep over a Store *)
  let ms () =
    let store = Heap.Store.create ~capacity:4096 in
    let live = Array.make window Heap.Word.Nil in
    let collections = ref 0 in
    let build () =
      let rec go k tail =
        if k = 0 then tail
        else
          match Heap.Store.alloc store ~car:(Heap.Word.Int k) ~cdr:tail with
          | a -> go (k - 1) (Heap.Word.Ptr a)
          | exception Heap.Store.Out_of_memory ->
            incr collections;
            ignore (Heap.Marksweep.collect store ~roots:(tail :: Array.to_list live));
            go k tail
      in
      go chain Heap.Word.Nil
    in
    for i = 0 to (total_allocs / chain) - 1 do
      live.(i mod window) <- build ()
    done;
    Printf.sprintf "%d collections" !collections
  in
  (* refcounting over a Store (lazy policy) *)
  let rc () =
    let store = Heap.Store.create ~capacity:4096 in
    let rcm = Heap.Refcount.create store ~policy:Heap.Refcount.Lazy in
    let live = Array.make window (-1) in
    let build () =
      let rec go k tail =
        if k = 0 then tail
        else
          let a =
            Heap.Refcount.alloc rcm
              ~car:(Heap.Word.Int k)
              ~cdr:(match tail with -1 -> Heap.Word.Nil | t -> Heap.Word.Ptr t)
          in
          (match tail with -1 -> () | t -> Heap.Refcount.decr rcm t);
          go (k - 1) a
      in
      go chain (-1)
    in
    for i = 0 to (total_allocs / chain) - 1 do
      let head = build () in
      (match live.(i mod window) with -1 -> () | old -> Heap.Refcount.decr rcm old);
      live.(i mod window) <- head
    done;
    Printf.sprintf "%d refops, %d reclaims" (Heap.Refcount.refops rcm)
      (Heap.Refcount.reclaimed rcm)
  in
  (* incremental copying *)
  let cp () =
    let gc = Heap.Copying.create ~semispace:2048 ~increment:4 in
    let live = Array.init window (fun _ -> Heap.Copying.add_root gc Heap.Word.Nil) in
    let build () =
      let rec go k tail =
        if k = 0 then tail
        else go (k - 1) (Heap.Word.Ptr (Heap.Copying.alloc gc ~car:(Heap.Word.Int k) ~cdr:tail))
      in
      go chain Heap.Word.Nil
    in
    for i = 0 to (total_allocs / chain) - 1 do
      Heap.Copying.set_root gc live.(i mod window) (build ())
    done;
    let c = Heap.Copying.counters gc in
    Printf.sprintf "%d flips, %d copied, max pause %d" c.Heap.Copying.flips
      c.Heap.Copying.copied c.Heap.Copying.max_pause
  in
  Util.Series.print_rows
    ~title:
      (Printf.sprintf
         "Ablation — heap maintenance under churn (%d cells allocated, %d-chain window of %d)"
         total_allocs chain window)
    ~header:[ "collector"; "activity" ]
    [ [ "mark-sweep (stop the world)"; ms () ];
      [ "reference counting (lazy)"; rc () ];
      [ "copying (incremental, k=4)"; cp () ] ]

let () =
  register "ablation.counts" "Truncated reference counts: recovery vs width (M3L)" @@ fun () ->
  (* [Sans82a]: a 3-bit count reclaims ~98% of garbage.  Sweep the count
     width under a sharing-heavy churn and measure what counting alone
     recovers before the backup collector runs. *)
  let run width =
    let store = Heap.Store.create ~capacity:8192 in
    let sc = Heap.Small_counts.create store ~width in
    let rng = Util.Rng.create ~seed:16 in
    for _ = 1 to 600 do
      let cells =
        List.init 8 (fun i -> Heap.Small_counts.alloc sc ~car:(Heap.Word.Int i) ~cdr:Heap.Word.Nil)
      in
      List.iter
        (fun a ->
           (* transient sharing bursts saturate narrow counts *)
           if Util.Rng.bool rng ~p:0.15 then begin
             let burst = 2 + Util.Rng.int rng 12 in
             for _ = 1 to burst do Heap.Small_counts.incr sc a done;
             for _ = 1 to burst do Heap.Small_counts.decr sc a done
           end)
        cells;
      List.iter (fun a -> Heap.Small_counts.decr sc a) cells
    done;
    ignore (Heap.Small_counts.backup_sweep sc ~roots:[]);
    let c = Heap.Small_counts.counters sc in
    (Heap.Small_counts.count_recovery_rate sc, c.Heap.Small_counts.saturations)
  in
  Util.Series.print_rows
    ~title:"Ablation — garbage recovered by counting alone, by count width"
    ~header:[ "count bits"; "recovered by counts"; "saturating increments" ]
    (List.map
       (fun width ->
          let rate, sats = run width in
          [ Context.int_s width; Printf.sprintf "%.1f%%" (100. *. rate);
            Context.int_s sats ])
       [ 1; 2; 3; 4; 6 ])

let () =
  register "fig3.2" "Significance of n and p: the worked examples" @@ fun () ->
  (* the two lists of Figure 3.2 under every representation scheme *)
  Util.Series.print_rows
    ~title:"Fig 3.2 — space for the two worked examples, by scheme"
    ~header:[ "list"; "n"; "p"; "2-ptr cells"; "cdr cells"; "struct cells";
              "2-ptr bits"; "cdr bits"; "cdar bits"; "eps bits" ]
    (List.map
       (fun src ->
          let d = Sexp.parse src in
          let s = Repr.Cost.summarize d in
          [ src; Context.int_s s.Repr.Cost.n; Context.int_s s.Repr.Cost.p;
            Context.int_s s.Repr.Cost.two_pointer_cells;
            Context.int_s s.Repr.Cost.cdr_coded_cells;
            Context.int_s s.Repr.Cost.structure_coded_cells;
            Context.int_s s.Repr.Cost.two_pointer_bits;
            Context.int_s s.Repr.Cost.cdr_coded_bits;
            Context.int_s s.Repr.Cost.cdar_bits;
            Context.int_s s.Repr.Cost.eps_bits ])
       [ "(a b c (d e) f g)"; "(a (b (c (d e) f) g))" ])

let () =
  register "traceio" "Trace store: zero-copy mmap replay vs the legacy reader" @@ fun () ->
  (* Two experiments on one large synthetic trace.  First the store
     comparison (sexp vs binary bytes, write and load time), then the
     replay pipelines over the binary file:
     - legacy: open a channel and decode the whole stream into a
       capture before any event is visible ([Trace.Binary.read_channel],
       what [Trace.Io.load] did before mmap);
     - mapped: [source_of_path] (mmap, O(1)) and flat batch iteration —
       startup is the time to the first decoded batch, replay never
       materialises an event.
     SMALLSIM_BENCH_SMOKE=1 (CI) shrinks the trace, and then a mapped
     replay slower than the legacy reader fails the bench; with
     SMALLSIM_BENCH_REPLAY_OUT=FILE the measurements land as JSON (the
     BENCH_replay.json trajectory). *)
  let smoke = Sys.getenv_opt "SMALLSIM_BENCH_SMOKE" <> None in
  let length = if smoke then 60_000 else 400_000 in
  let capture = Trace.Synth.generate { Trace.Synth.default with length } in
  let events = Trace.Capture.length capture in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let best_of n f =
    let best = ref infinity in
    for _ = 1 to n do
      let _, s = time f in
      if s < !best then best := s
    done;
    !best
  in
  let alloc_of f =
    let before = Gc.allocated_bytes () in
    ignore (f ());
    Gc.allocated_bytes () -. before
  in
  let mb bytes = bytes /. (1024. *. 1024.) in
  let measure format suffix =
    let path = Filename.temp_file "smallsim-trace" suffix in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
         let (), write_s = time (fun () -> Trace.Io.save ~format path capture) in
         let bytes = (Unix.stat path).Unix.st_size in
         let best = ref infinity in
         for _ = 1 to 3 do
           let loaded, load_s = time (fun () -> Trace.Io.load path) in
           if Trace.Capture.length loaded <> events then
             failwith "traceio: reloaded trace has the wrong length";
           if load_s < !best then best := load_s
         done;
         (bytes, write_s, !best))
  in
  let s_bytes, s_write, s_load = measure Trace.Io.Sexp_lines ".trace" in
  let b_bytes, b_write, b_load = measure Trace.Io.Binary ".btrace" in
  let row label (bytes, write_s, load_s) speedup =
    [ label; Context.int_s bytes; Printf.sprintf "%.4f" write_s;
      Printf.sprintf "%.4f" load_s; speedup ]
  in
  Util.Series.print_rows
    ~title:(Printf.sprintf "Trace store — sexp vs binary on a %d-event synthetic trace" events)
    ~header:[ "format"; "bytes"; "write s"; "load s"; "load speedup" ]
    [ row "sexp lines" (s_bytes, s_write, s_load) "1.00x";
      row "binary" (b_bytes, b_write, b_load)
        (Printf.sprintf "%.2fx" (s_load /. Float.max b_load 1e-9)) ];
  (* ---- replay pipelines over the binary file ---- *)
  let path = Filename.temp_file "smallsim-replay" ".smtb" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Trace.Io.save ~format:Trace.Io.Binary path capture;
  let file_bytes = (Unix.stat path).Unix.st_size in
  let reps = if smoke then 3 else 5 in
  let legacy_load () =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
         let c = Trace.Binary.read_channel ic in
         if Trace.Capture.length c <> events then
           failwith "traceio: legacy reader saw the wrong event count")
  in
  let mapped_startup () =
    let r = Trace.Binary.read_source (Trace.Binary.source_of_path path) in
    if Trace.Binary.next_batch r = None && events > 0 then
      failwith "traceio: mapped reader produced no batch"
  in
  let batch_replay () =
    let n = ref 0 in
    Trace.Binary.iter_batches (Trace.Binary.source_of_path path) (fun b ->
        n := !n + Trace.Binary.Batch.length b);
    if !n <> events then failwith "traceio: batch replay saw the wrong event count"
  in
  let legacy_s = best_of reps legacy_load in
  let startup_s = best_of reps mapped_startup in
  let replay_s = best_of reps batch_replay in
  let legacy_alloc = alloc_of legacy_load in
  let batch_alloc = alloc_of batch_replay in
  let header_stats () = ignore (Trace.Binary.header_stats (Trace.Binary.source_of_path path)) in
  let stats_s = best_of reps header_stats in
  let pre_reps = if smoke then 1 else 2 in
  let pre_run_s = best_of pre_reps (fun () -> ignore (Trace.Preprocess.run capture)) in
  let pre_src_s =
    best_of pre_reps (fun () ->
        ignore (Trace.Preprocess.run_source (Trace.Binary.source_of_path path)))
  in
  let startup_speedup = legacy_s /. Float.max startup_s 1e-9 in
  let replay_speedup = legacy_s /. Float.max replay_s 1e-9 in
  Util.Series.print_rows
    ~title:
      (Printf.sprintf "Replay — legacy whole-file reader vs zero-copy batches (%d events, %d bytes)"
         events file_bytes)
    ~header:[ "pipeline"; "startup s"; "full replay s"; "alloc MB"; "replay speedup" ]
    [ [ "legacy read_channel"; Printf.sprintf "%.4f" legacy_s;
        Printf.sprintf "%.4f" legacy_s; Printf.sprintf "%.1f" (mb legacy_alloc);
        "1.00x" ];
      [ "mmap + flat batches"; Printf.sprintf "%.6f" startup_s;
        Printf.sprintf "%.4f" replay_s; Printf.sprintf "%.1f" (mb batch_alloc);
        Printf.sprintf "%.2fx" replay_speedup ] ];
  Printf.printf "replay startup: %.6fs mapped vs %.4fs legacy (%.0fx); \
                 header-only stats: %.6fs\n"
    startup_s legacy_s startup_speedup stats_s;
  Printf.printf "preprocess: run %.4fs vs run_source %.4fs (%.2fx)\n"
    pre_run_s pre_src_s (pre_run_s /. Float.max pre_src_s 1e-9);
  (match Sys.getenv_opt "SMALLSIM_BENCH_REPLAY_OUT" with
   | None -> ()
   | Some file ->
     let oc = open_out file in
     Printf.fprintf oc
       "{\"bench\": \"replay\", \"smoke\": %b, \"events\": %d, \"file_bytes\": %d,\n\
       \ \"legacy_load_s\": %.6f, \"legacy_alloc_mb\": %.2f,\n\
       \ \"mapped_startup_s\": %.6f, \"startup_speedup\": %.1f,\n\
       \ \"batch_replay_s\": %.6f, \"batch_alloc_mb\": %.2f, \"replay_speedup\": %.2f,\n\
       \ \"header_stats_s\": %.6f,\n\
       \ \"preprocess_run_s\": %.6f, \"preprocess_run_source_s\": %.6f}\n"
       smoke events file_bytes legacy_s (mb legacy_alloc) startup_s startup_speedup
       replay_s (mb batch_alloc) replay_speedup stats_s pre_run_s pre_src_s;
     close_out oc;
     Printf.printf "wrote %s\n" file);
  if smoke && replay_s > legacy_s then
    failwith
      (Printf.sprintf
         "traceio: mapped replay (%.4fs) slower than the legacy reader (%.4fs)"
         replay_s legacy_s)

let () =
  register "sim.hotloop" "Simulation kernel: flat packed replay vs the boxed reference" @@ fun () ->
  (* The allocation-free simulation core against the boxed interpreter it
     replaced, on one large synthetic trace.  Stats equality between the
     two kernels is asserted unconditionally — the speedup is only
     meaningful if the simulation is bit-identical.  SMALLSIM_BENCH_SMOKE=1
     (CI) shrinks the trace and gates: the flat kernel must not be slower
     than the reference, and must stay under the per-event minor-allocation
     ceiling (16 words).  With SMALLSIM_BENCH_SIM_OUT=FILE the
     measurements land as JSON (the BENCH_sim.json trajectory). *)
  let smoke = Sys.getenv_opt "SMALLSIM_BENCH_SMOKE" <> None in
  let length = if smoke then 60_000 else 400_000 in
  let capture = Trace.Synth.generate { Trace.Synth.default with length } in
  let pre = Trace.Preprocess.run capture in
  let cfg = Core.Simulator.default_config in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let best_of n f =
    let best = ref infinity in
    for _ = 1 to n do
      let _, s = time f in
      if s < !best then best := s
    done;
    !best
  in
  let reps = if smoke then 3 else 5 in
  let packed, pack_s = time (fun () -> Core.Simulator.pack pre) in
  let events = Core.Simulator.packed_events packed in
  let prims = (Trace.Capture.stats capture).Trace.Capture.primitives in
  (* correctness gate first: byte-identical stats, always enforced *)
  let s_ref = Core.Simulator.run_reference cfg pre in
  let s_flat = Core.Simulator.run_packed cfg packed in
  if compare s_ref s_flat <> 0 then
    failwith "sim.hotloop: flat kernel diverges from the reference stats";
  let ref_s = best_of reps (fun () -> ignore (Core.Simulator.run_reference cfg pre)) in
  let flat_s = best_of reps (fun () -> ignore (Core.Simulator.run_packed cfg packed)) in
  (* end-to-end off a binary file: pack_source + replay, no pevent array *)
  let path = Filename.temp_file "smallsim-simbench" ".smtb" in
  let src_s =
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
         Trace.Io.save ~format:Trace.Io.Binary path capture;
         let run_src () =
           let s =
             Core.Simulator.run_source cfg (Trace.Binary.source_of_path path)
           in
           if compare s s_ref <> 0 then
             failwith "sim.hotloop: run_source diverges from the reference stats"
         in
         best_of reps run_src)
  in
  (* per-primitive-event minor allocation of the flat kernel (the
     reference allocates stack items, options and draws per event) *)
  let alloc_per_event f =
    let before = Gc.allocated_bytes () in
    ignore (f ());
    (Gc.allocated_bytes () -. before) /. float_of_int (max 1 prims)
  in
  let ref_alloc = alloc_per_event (fun () -> Core.Simulator.run_reference cfg pre) in
  let flat_alloc = alloc_per_event (fun () -> Core.Simulator.run_packed cfg packed) in
  let speedup = ref_s /. Float.max flat_s 1e-9 in
  let eps f = float_of_int prims /. Float.max f 1e-9 in
  Util.Series.print_rows
    ~title:
      (Printf.sprintf
         "Simulation kernel — boxed reference vs flat packed (%d events, %d prims)"
         events prims)
    ~header:[ "kernel"; "run s"; "prims/s"; "alloc B/prim"; "speedup" ]
    [ [ "boxed reference"; Printf.sprintf "%.4f" ref_s;
        Printf.sprintf "%.0f" (eps ref_s); Printf.sprintf "%.1f" ref_alloc;
        "1.00x" ];
      [ "flat packed"; Printf.sprintf "%.4f" flat_s;
        Printf.sprintf "%.0f" (eps flat_s); Printf.sprintf "%.1f" flat_alloc;
        Printf.sprintf "%.2fx" speedup ] ];
  Printf.printf "pack: %.4fs once per trace; run_source end-to-end: %.4fs\n"
    pack_s src_s;
  (match Sys.getenv_opt "SMALLSIM_BENCH_SIM_OUT" with
   | None -> ()
   | Some file ->
     let oc = open_out file in
     Printf.fprintf oc
       "{\"bench\": \"sim\", \"smoke\": %b, \"events\": %d, \"prims\": %d,\n\
       \ \"reference_run_s\": %.6f, \"reference_alloc_b_per_prim\": %.1f,\n\
       \ \"flat_run_s\": %.6f, \"flat_alloc_b_per_prim\": %.2f,\n\
       \ \"speedup\": %.2f, \"pack_s\": %.6f, \"run_source_s\": %.6f,\n\
       \ \"flat_prims_per_s\": %.0f}\n"
       smoke events prims ref_s ref_alloc flat_s flat_alloc speedup pack_s src_s
       (eps flat_s);
     close_out oc;
     Printf.printf "wrote %s\n" file);
  (* 16 words = 128 bytes on 64-bit: the issue's steady-state ceiling *)
  if smoke && flat_alloc > 128.0 then
    failwith
      (Printf.sprintf
         "sim.hotloop: flat kernel allocates %.1f B/prim (ceiling 128)"
         flat_alloc);
  if smoke && flat_s > ref_s then
    failwith
      (Printf.sprintf
         "sim.hotloop: flat kernel (%.4fs) slower than the reference (%.4fs)"
         flat_s ref_s)

let () =
  register "obs.overhead" "Metrics instrumentation: simulation throughput cost" @@ fun () ->
  (* the observability layer promises to be near-free when no registry is
     attached and within a few percent when one is: time the same slang
     simulation bare and instrumented, best-of-N to shed scheduler noise.
     SMALLSIM_BENCH_SMOKE=1 (CI) cuts the repetitions down. *)
  let pre = Context.pre "slang" in
  let events = Array.length (Trace.Preprocess.prim_refs pre) in
  let config = { Core.Simulator.default_config with table_size = 2048 } in
  let reps = if Sys.getenv_opt "SMALLSIM_BENCH_SMOKE" <> None then 3 else 7 in
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (f () : Core.Simulator.stats);
    Unix.gettimeofday () -. t0
  in
  (* warm the trace/minor-heap state before timing anything *)
  ignore (Core.Simulator.run config pre : Core.Simulator.stats);
  let reg = Obs.Registry.create () in
  (* interleave the repetitions so both variants see the same machine
     load; best-of sheds the scheduler noise *)
  let bare = ref infinity and instrumented = ref infinity in
  for _ = 1 to reps do
    bare := Float.min !bare (time (fun () -> Core.Simulator.run config pre));
    instrumented :=
      Float.min !instrumented
        (time (fun () -> Core.Simulator.run ~metrics:reg config pre))
  done;
  let bare = !bare and instrumented = !instrumented in
  let throughput s = float_of_int events /. Float.max s 1e-9 /. 1e6 in
  let overhead = 100. *. (instrumented /. Float.max bare 1e-9 -. 1.) in
  Util.Series.print_rows
    ~title:
      (Printf.sprintf
         "Observability — slang simulation (%d events, table 2048, best of %d)"
         events reps)
    ~header:[ "variant"; "seconds"; "Mevents/s"; "overhead" ]
    [ [ "bare"; Printf.sprintf "%.4f" bare;
        Printf.sprintf "%.2f" (throughput bare); "-" ];
      [ "instrumented"; Printf.sprintf "%.4f" instrumented;
        Printf.sprintf "%.2f" (throughput instrumented);
        Printf.sprintf "%+.2f%%" overhead ] ]

let () =
  register "cluster.loadgen" "Sharded smalld: zipfian load vs placement policy" @@ fun () ->
  (* the routed service under a YCSB-style zipfian load: the same
     workload against a 2-shard in-process cluster under cache-aware and
     uniform placement.  The hot keys of a skewed popularity curve keep
     landing on the shard that already caches them, so the cache-aware
     run should show materially more shard-cache hits at comparable
     tails.  SMALLSIM_BENCH_SMOKE=1 (CI) shrinks the request count; with
     SMALLSIM_BENCH_CLUSTER_OUT=FILE the measurements land as JSON (the
     BENCH_cluster.json trajectory). *)
  let smoke = Sys.getenv_opt "SMALLSIM_BENCH_SMOKE" <> None in
  let requests = if smoke then 96 else 384 in
  let universe = if smoke then 24 else 48 in
  let shard ?fault ?(workers = 2) sid =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let svc =
      Server.Service.create ?fault ~shard_id:sid ~workers ~queue_capacity:64 ()
    in
    let d =
      Domain.spawn (fun () ->
          let ic = Unix.in_channel_of_descr b in
          let oc = Unix.out_channel_of_descr (Unix.dup b) in
          ignore (Server.Service.serve_channels svc ic oc);
          Server.Service.shutdown svc;
          (try close_out oc with Sys_error _ -> ());
          (try close_in ic with Sys_error _ -> ()))
    in
    let ic = Unix.in_channel_of_descr a in
    let oc = Unix.out_channel_of_descr (Unix.dup a) in
    ((sid, Cluster.Router.Channels (ic, oc)), d)
  in
  let drive placement =
    let shards, domains = List.split [ shard "s0"; shard "s1" ] in
    let t = Cluster.Router.create ~placement ~steal_min:0 ~shards () in
    Fun.protect
      ~finally:(fun () ->
          Cluster.Router.shutdown t;
          List.iter Domain.join domains)
      (fun () ->
         Cluster.Loadgen.run
           ~submit:(Cluster.Router.submit_line t)
           { Cluster.Loadgen.default with
             requests; universe; clients = 4; theta = 0.99; seed = 3;
             workload = "slang"; size = 256 })
  in
  let aware = drive Cluster.Router.Cache_aware in
  let uniform = drive Cluster.Router.Uniform in
  (* slow-shard hedging drill: the same uniform routing, but 30% of
     s1's uncached jobs sleep ~400 ms (a deterministic service-side
     fault plan) — the stuck-straggler regime hedging is built for.  The
     hedged router re-issues any job outliving twice its shard's
     observed latency quantile to the other shard and keeps whichever
     reply lands first, so the laggards' tail collapses to roughly the
     trigger age plus one fast compute.  (A *uniformly* slow shard is
     deliberately not drilled here: it inflates its own quantile until
     the trigger never beats natural completion — that regime belongs to
     the breaker, not the hedge.)  Jobs are (nearly) all distinct — a
     result-cache hit skips the worker thunk and with it the injected
     delay, which would mask the very tail the drill is about. *)
  let drill_requests = if smoke then 96 else 192 in
  let slow_plan =
    Fault.Plan.create
      { Fault.Plan.default with Fault.Plan.seed = 11; delay = 0.3; delay_s = 0.4 }
  in
  let drive_drill ~hedge =
    (* 4 workers per shard: with 4 closed-loop clients nothing queues on
       the slow shard, so its latency is the injected delay itself rather
       than a mix of delay and queueing — the quantile the hedge trigger
       doubles stays meaningful *)
    let shards, domains =
      List.split [ shard ~workers:4 "s0"; shard ~fault:slow_plan ~workers:4 "s1" ]
    in
    let hedge_quantile = if hedge then 0.25 else 0.0 in
    let t =
      Cluster.Router.create ~placement:Cluster.Router.Uniform ~steal_min:0
        ~hedge_quantile ~hedge_floor:0.01 ~shards ()
    in
    Fun.protect
      ~finally:(fun () ->
          Cluster.Router.shutdown t;
          List.iter Domain.join domains)
      (fun () ->
         let cfg =
           { Cluster.Loadgen.default with
             requests = drill_requests; universe = 4 * drill_requests;
             clients = 4; theta = 0.0; seed = 5; workload = "slang";
             size = 256 }
         in
         (* unmeasured warm phase at a different job size: the hedge
            trigger sits out until a shard has 16 latency samples, and
            those must reflect real compute — warm jobs are distinct (a
            cached sub-ms reply would drag the quantile, and with it the
            trigger, toward zero) and must not collide with measured
            ones (the result caches would then serve the measured run
            without ever touching a delayed worker) *)
         ignore
           (Cluster.Loadgen.run ~submit:(Cluster.Router.submit_line t)
              { cfg with requests = 48; universe = 192; size = 128; seed = 4 }
             : Cluster.Loadgen.report);
         let r = Cluster.Loadgen.run ~submit:(Cluster.Router.submit_line t) cfg in
         let hedges =
           match
             Option.bind
               (Server.Json.member "resilience" (Cluster.Router.stats_json t))
               (Server.Json.member "hedged")
           with
           | Some (Server.Json.Int n) -> n
           | _ -> 0
         in
         (r, hedges))
  in
  let unhedged, _ = drive_drill ~hedge:false in
  let hedged, hedges = drive_drill ~hedge:true in
  let row label (r : Cluster.Loadgen.report) =
    [ label; Context.int_s r.Cluster.Loadgen.ok;
      Context.int_s r.Cluster.Loadgen.cached;
      Printf.sprintf "%.1f" r.Cluster.Loadgen.throughput;
      Printf.sprintf "%.2f" r.Cluster.Loadgen.p50_ms;
      Printf.sprintf "%.2f" r.Cluster.Loadgen.p99_ms;
      Printf.sprintf "%.2f" r.Cluster.Loadgen.p999_ms ]
  in
  Util.Series.print_rows
    ~title:
      (Printf.sprintf
         "Cluster — %d zipfian requests (theta 0.99, universe %d) on 2 shards, by placement"
         requests universe)
    ~header:[ "placement"; "ok"; "shard-cache hits"; "req/s"; "p50 ms"; "p99 ms"; "p999 ms" ]
    [ row "cache-aware" aware; row "uniform" uniform ];
  let drill_row label hedges (r : Cluster.Loadgen.report) =
    [ label; Context.int_s r.Cluster.Loadgen.ok; Context.int_s hedges;
      Printf.sprintf "%.1f" r.Cluster.Loadgen.throughput;
      Printf.sprintf "%.2f" r.Cluster.Loadgen.p50_ms;
      Printf.sprintf "%.2f" r.Cluster.Loadgen.p99_ms;
      Printf.sprintf "%.2f" r.Cluster.Loadgen.p999_ms ]
  in
  Util.Series.print_rows
    ~title:
      (Printf.sprintf
         "Cluster — slow-shard drill: %d distinct requests, 30%% of s1 jobs +~400 ms, hedged vs not"
         drill_requests)
    ~header:[ "router"; "ok"; "hedges"; "req/s"; "p50 ms"; "p99 ms"; "p999 ms" ]
    [ drill_row "unhedged" 0 unhedged; drill_row "hedged" hedges hedged ];
  (match Sys.getenv_opt "SMALLSIM_BENCH_CLUSTER_OUT" with
   | None -> ()
   | Some file ->
     let oc = open_out file in
     let emit label (r : Cluster.Loadgen.report) =
       Printf.sprintf
         "\"%s\": {\"ok\": %d, \"cached\": %d, \"throughput_rps\": %.1f,\n\
         \  \"mean_ms\": %.3f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"p999_ms\": %.3f}"
         label r.Cluster.Loadgen.ok r.Cluster.Loadgen.cached
         r.Cluster.Loadgen.throughput r.Cluster.Loadgen.mean_ms
         r.Cluster.Loadgen.p50_ms r.Cluster.Loadgen.p99_ms r.Cluster.Loadgen.p999_ms
     in
     Printf.fprintf oc
       "{\"bench\": \"cluster\", \"smoke\": %b, \"shards\": 2, \"requests\": %d,\n\
       \ \"universe\": %d, \"theta\": 0.99, \"clients\": 4,\n\
       \ %s,\n %s,\n\
       \ \"slow_shard_drill\": {\"hedges\": %d,\n\
       \  %s,\n  %s}}\n"
       smoke requests universe (emit "cache_aware" aware) (emit "uniform" uniform)
       hedges (emit "unhedged" unhedged) (emit "hedged" hedged);
     close_out oc;
     Printf.printf "wrote %s\n" file);
  if smoke && aware.Cluster.Loadgen.cached <= uniform.Cluster.Loadgen.cached then
    failwith
      (Printf.sprintf
         "cluster: cache-aware placement hit the shard caches no more than uniform \
          routing (%d vs %d)"
         aware.Cluster.Loadgen.cached uniform.Cluster.Loadgen.cached);
  if smoke && hedges = 0 then
    failwith "cluster: slow-shard drill triggered no hedges";
  if smoke && hedged.Cluster.Loadgen.p99_ms >= unhedged.Cluster.Loadgen.p99_ms then
    failwith
      (Printf.sprintf
         "cluster: hedged p99 did not beat the unhedged baseline under a slow \
          shard (%.2f ms vs %.2f ms)"
         hedged.Cluster.Loadgen.p99_ms unhedged.Cluster.Loadgen.p99_ms)

let () =
  register "store" "Result store: legacy one-file-per-entry vs log-structured" @@ fun () ->
  (* the two Result_cache disk backends under the same workload: N
     stores on a cold cache, then N warm gets from a cold process (every
     get comes off the disk), plus the open/recovery cost over the
     populated directory — including a log reopen over a torn tail.
     SMALLSIM_BENCH_SMOKE=1 (CI) shrinks N and gates the log store at
     parity-or-better on warm gets; SMALLSIM_BENCH_STORE_OUT=FILE emits
     the measurements as JSON (the BENCH_store.json trajectory). *)
  let smoke = Sys.getenv_opt "SMALLSIM_BENCH_SMOKE" <> None in
  let n = if smoke then 400 else 4000 in
  let temp_dir prefix =
    let d = Filename.temp_file prefix "" in
    Sys.remove d;
    Sys.mkdir d 0o755;
    d
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let key i =
    Server.Result_cache.key ~trace_digest:(string_of_int i) ~job_digest:"bench"
  in
  let value i =
    Printf.sprintf "(result %d %s)" i (String.make (96 + (i mod 7) * 8) 'r')
  in
  let bench make =
    let dir = temp_dir "bench_store" in
    let writer = make dir in
    let _, store_s =
      time (fun () ->
          for i = 0 to n - 1 do
            Server.Result_cache.store writer (key i) (value i)
          done)
    in
    (* a cold process over the populated directory: open (log: recovery
       replay), then every get is a disk read *)
    let reader, open_s = time (fun () -> make dir) in
    let misses = ref 0 in
    let _, get_s =
      time (fun () ->
          for i = 0 to n - 1 do
            match Server.Result_cache.find reader (key i) with
            | Some v when v = value i -> ()
            | _ -> incr misses
          done)
    in
    if !misses > 0 then
      failwith (Printf.sprintf "store bench: %d lost or corrupt entries" !misses);
    (dir, store_s, open_s, get_s)
  in
  let ldir, l_store, l_open, l_get =
    bench (fun dir -> Server.Result_cache.create ~dir ())
  in
  let sdir, s_store, s_open, s_get =
    bench (fun dir -> Server.Result_cache.create ~store_dir:dir ())
  in
  (* recovery over a torn tail: garbage appended to the live segment
     must be truncated away without losing one acknowledged entry *)
  let seg =
    Sys.readdir sdir |> Array.to_list
    |> List.filter (fun e -> Filename.check_suffix e ".smsg")
    |> List.sort compare |> List.rev |> List.hd |> Filename.concat sdir
  in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 seg in
  output_string oc (String.make 64 '\xff');
  close_out oc;
  let torn, torn_open_s =
    time (fun () -> Server.Result_cache.create ~store_dir:sdir ())
  in
  let recovered = ref 0 in
  for i = 0 to n - 1 do
    if Server.Result_cache.find torn (key i) = Some (value i) then incr recovered
  done;
  let truncated =
    match Server.Result_cache.log_stats torn with
    | Some ls -> ls.Store.Log.truncated_records
    | None -> 0
  in
  let per_s count s = float_of_int count /. Float.max s 1e-9 in
  Util.Series.print_rows
    ~title:
      (Printf.sprintf "Result store — %d entries (~128B), cold-process warm gets" n)
    ~header:[ "backend"; "stores/s"; "open ms"; "warm gets/s" ]
    [ [ "legacy files"; Printf.sprintf "%.0f" (per_s n l_store);
        Printf.sprintf "%.2f" (l_open *. 1e3);
        Printf.sprintf "%.0f" (per_s n l_get) ];
      [ "log-structured"; Printf.sprintf "%.0f" (per_s n s_store);
        Printf.sprintf "%.2f" (s_open *. 1e3);
        Printf.sprintf "%.0f" (per_s n s_get) ] ];
  Util.Series.print_rows
    ~title:"Log store — recovery over a torn tail"
    ~header:[ "recovered"; "truncated records"; "reopen ms" ]
    [ [ Printf.sprintf "%d/%d" !recovered n; string_of_int truncated;
        Printf.sprintf "%.2f" (torn_open_s *. 1e3) ] ];
  (match Sys.getenv_opt "SMALLSIM_BENCH_STORE_OUT" with
   | None -> ()
   | Some file ->
     let oc = open_out file in
     Printf.fprintf oc
       "{\"bench\": \"store\", \"smoke\": %b, \"entries\": %d,\n\
       \ \"legacy\": {\"stores_per_s\": %.0f, \"open_ms\": %.3f, \"warm_gets_per_s\": %.0f},\n\
       \ \"log\": {\"stores_per_s\": %.0f, \"open_ms\": %.3f, \"warm_gets_per_s\": %.0f},\n\
       \ \"torn_recovery\": {\"recovered\": %d, \"truncated_records\": %d, \"reopen_ms\": %.3f}}\n"
       smoke n (per_s n l_store) (l_open *. 1e3) (per_s n l_get)
       (per_s n s_store) (s_open *. 1e3) (per_s n s_get)
       !recovered truncated (torn_open_s *. 1e3);
     close_out oc;
     Printf.printf "wrote %s\n" file);
  rm_rf ldir;
  rm_rf sdir;
  if !recovered <> n then
    failwith
      (Printf.sprintf "store: torn-tail recovery lost %d acknowledged entries"
         (n - !recovered));
  if truncated < 1 then
    failwith "store: the appended garbage tail was not truncated";
  if smoke && per_s n s_get < per_s n l_get then
    failwith
      (Printf.sprintf
         "store: log-structured warm gets slower than legacy (%.0f/s vs %.0f/s)"
         (per_s n s_get) (per_s n l_get))

let () =
  register "ablation.cluster" "Multi-node SMALL: placement vs interconnect traffic" @@ fun () ->
  (* walk a list from its owner node vs from across the machine (Fig 6.1's
     cost structure), and measure weighted-reference message costs of
     scattering and dropping references *)
  let walk_cost ~remote =
    let t = Multilisp.Cluster.create ~nodes:2 ~combining:false () in
    let h = Multilisp.Cluster.read_in t ~node:0 (Sexp.Datum.of_ints (List.init 64 Fun.id)) in
    let start = if remote then Multilisp.Cluster.send t h ~to_node:1 else h in
    let rec walk part =
      match part with
      | Multilisp.Cluster.Ref r ->
        ignore (Multilisp.Cluster.car t r);
        walk (Multilisp.Cluster.cdr t r)
      | Multilisp.Cluster.Imm _ -> ()
    in
    walk (Multilisp.Cluster.Ref start);
    Multilisp.Cluster.counters t
  in
  let local = walk_cost ~remote:false in
  let remote = walk_cost ~remote:true in
  Util.Series.print_rows
    ~title:"Ablation — walking a 64-element list on a 2-node SMALL"
    ~header:[ "placement"; "accesses"; "messages" ]
    [ [ "owner node";
        Context.int_s local.Multilisp.Cluster.local_accesses;
        Context.int_s local.Multilisp.Cluster.messages ];
      [ "remote node";
        Context.int_s remote.Multilisp.Cluster.remote_accesses;
        Context.int_s remote.Multilisp.Cluster.messages ] ]
