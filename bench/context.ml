(* Shared, lazily computed inputs for the bench sections: workload traces
   are expensive to produce (an interpreted run each), so they are
   generated once per process via the registry's caches. *)

let workload name = Option.get (Workloads.Registry.find name)

let chapter3_suite () = Workloads.Registry.all

(* Chapter 5 uses the four larger traces (the thesis dropped PEARL). *)
let chapter5_suite () = Workloads.Registry.simulation_suite ()

let trace name = Workloads.Registry.trace (workload name)
let pre name = Workloads.Registry.preprocessed (workload name)

let pct x = Printf.sprintf "%.2f" x
let pct1 x = Printf.sprintf "%.1f" x
let int_s = string_of_int

(* The shared job service: simulation sweeps and knee searches go through
   its scheduler (worker pool) and content-addressed result cache, so a
   second bench run over the same traces and configs is cache-warm.  The
   on-disk store defaults to .smallsim-cache; point SMALLSIM_BENCH_CACHE
   elsewhere (or run with it unset in a scratch dir) to start cold. *)
let service =
  lazy
    (let cache_dir =
       match Sys.getenv_opt "SMALLSIM_BENCH_CACHE" with
       | Some d -> d
       | None -> ".smallsim-cache"
     in
     let t =
       Server.Service.create ~cache_dir
         ~workers:(Util.Parallel.default_domains ())
         ~queue_capacity:4096 ()
     in
     at_exit (fun () -> Server.Service.shutdown t);
     t)

let simulate_job config name =
  { Server.Job.source = Server.Job.Workload name;
    spec = Server.Job.Simulate config;
    timeout = None; priority = 0; deadline = None; wire_id = None }

(* Submit-all-then-await: the pool runs the batch concurrently while the
   results come back in request order.  A rejected or failed job falls
   back to running inline. *)
let through_service jobs fallback unpack =
  let joins =
    List.map (fun job -> (job, Server.Service.submit (Lazy.force service) job)) jobs
  in
  List.map
    (fun (job, submitted) ->
       match submitted with
       | Error (`Overloaded | `Shutdown) -> fallback job
       | Ok join ->
         (match (join ()).Server.Service.outcome with
          | Ok out ->
            (match unpack out with Some v -> v | None -> fallback job)
          | Error _ -> fallback job))
    joins

let sweep ?(config = Core.Simulator.default_config) sizes trace_name =
  let with_size size = { config with Core.Simulator.table_size = size } in
  List.combine sizes
    (through_service
       (List.map (fun size -> simulate_job (with_size size) trace_name) sizes)
       (fun job ->
          match job.Server.Job.spec with
          | Server.Job.Simulate cfg -> Core.Simulator.run cfg (pre trace_name)
          | _ -> assert false)
       (function Server.Exec.Simulate_out stats -> Some stats | _ -> None))

(* Knee (minimum overflow-free size) searches per (trace, seed), also
   cache-backed; [seed_knees] submits the whole seed batch at once. *)
let seed_knees ?(config = Core.Simulator.default_config) name seeds =
  let job seed =
    { Server.Job.source = Server.Job.Workload name;
      spec = Server.Job.Knee { config with Core.Simulator.seed };
      timeout = None; priority = 0; deadline = None; wire_id = None }
  in
  through_service
    (List.map job seeds)
    (fun job ->
       match job.Server.Job.spec with
       | Server.Job.Knee cfg -> fst (Core.Simulator.min_table_size cfg (pre name))
       | _ -> assert false)
    (function Server.Exec.Knee_out { size; _ } -> Some size | _ -> None)

(* Representative sizes bracketing each trace's knee (found once).  The
   per-process table sits in front of the service's result cache, which
   may now be probed from several domains at once. *)
let knee_cache : (string, int) Hashtbl.t = Hashtbl.create 8
let knee_lock = Mutex.create ()

let knee name =
  Mutex.lock knee_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock knee_lock) @@ fun () ->
  match Hashtbl.find_opt knee_cache name with
  | Some k -> k
  | None ->
    let k =
      match seed_knees name [ Core.Simulator.default_config.Core.Simulator.seed ] with
      | [ k ] -> k
      | _ -> assert false
    in
    Hashtbl.replace knee_cache name k;
    k
