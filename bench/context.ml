(* Shared, lazily computed inputs for the bench sections: workload traces
   are expensive to produce (an interpreted run each), so they are
   generated once per process via the registry's caches. *)

let workload name = Option.get (Workloads.Registry.find name)

let chapter3_suite () = Workloads.Registry.all

(* Chapter 5 uses the four larger traces (the thesis dropped PEARL). *)
let chapter5_suite () = Workloads.Registry.simulation_suite ()

let trace name = Workloads.Registry.trace (workload name)
let pre name = Workloads.Registry.preprocessed (workload name)

let pct x = Printf.sprintf "%.2f" x
let pct1 x = Printf.sprintf "%.1f" x
let int_s = string_of_int

(* A size sweep for one trace: run at [sizes], return stats per size.
   The independent runs go through the work pool (a no-op until the
   harness raises the default domain count via --jobs). *)
let sweep ?(config = Core.Simulator.default_config) sizes trace =
  Util.Parallel.map
    (fun size ->
       (size, Core.Simulator.run { config with Core.Simulator.table_size = size } trace))
    sizes

(* Representative sizes bracketing each trace's knee (found once).  The
   cache is shared across sections, which may now probe it from several
   domains at once. *)
let knee_cache : (string, int) Hashtbl.t = Hashtbl.create 8
let knee_lock = Mutex.create ()

let knee name =
  Mutex.lock knee_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock knee_lock) @@ fun () ->
  match Hashtbl.find_opt knee_cache name with
  | Some k -> k
  | None ->
    let k, _ =
      Core.Simulator.min_table_size
        ~jobs:(Util.Parallel.default_domains ())
        Core.Simulator.default_config (pre name)
    in
    Hashtbl.replace knee_cache name k;
    k
