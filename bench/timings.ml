(* Bechamel micro-benchmarks of the hot paths: LPT operation cost, cache
   access cost, Mattson stack analysis (Fenwick vs move-to-front),
   list-set partitioning and the interpreter itself.  Run with
   `dune exec bench/main.exe -- --timings`. *)

open Bechamel
open Toolkit

let lpt_ops =
  Test.make ~name:"lpt: read_in + car + cdr + release"
    (Staged.stage (fun () ->
         let heap = Core.Heap_model.create ~seed:1 () in
         let lpt =
           Core.Lpt.create ~size:512 ~policy:Core.Lpt.Compress_one
             ~split_counts:false ~eager_decrement:false ~heap ~seed:2 ()
         in
         for _ = 1 to 100 do
           let id = Core.Lpt.read_in lpt ~size:6 in
           Core.Lpt.stack_incr lpt id;
           ignore (Core.Lpt.get_car lpt id);
           ignore (Core.Lpt.get_cdr lpt id);
           Core.Lpt.stack_decr lpt id
         done))

let cache_ops =
  let cache = Cache.Lru_cache.create ~lines:512 ~line_size:4 in
  let rng = Util.Rng.create ~seed:3 in
  Test.make ~name:"cache: 100 LRU accesses"
    (Staged.stage (fun () ->
         for _ = 1 to 100 do
           ignore (Cache.Lru_cache.access cache (Util.Rng.int rng 8192))
         done))

let synth_trace = lazy (Trace.Synth.generate { Trace.Synth.default with length = 2000 })

let preprocess =
  Test.make ~name:"trace: preprocess 2k-event capture"
    (Staged.stage (fun () -> ignore (Trace.Preprocess.run (Lazy.force synth_trace))))

let list_sets =
  let pre = lazy (Trace.Preprocess.run (Lazy.force synth_trace)) in
  Test.make ~name:"analysis: list-set partition"
    (Staged.stage (fun () ->
         ignore (Analysis.List_sets.partition (Lazy.force pre))))

(* The acceptance stream for the locality engine: 50k references over a
   few hundred distinct set ids, the regime of the Chapter 3 figures on
   long synthetic traces.  The Fenwick [analyze] must beat the
   move-to-front [analyze_naive] by >= 5x here. *)
let lru_stream =
  lazy
    (let rng = Util.Rng.create ~seed:11 in
     Array.init 50_000 (fun _ -> Util.Rng.int rng 256))

let lru_fenwick =
  Test.make ~name:"analysis: stack distances, 50k refs (Fenwick)"
    (Staged.stage (fun () ->
         ignore (Analysis.Lru_stack.analyze (Lazy.force lru_stream))))

let lru_naive =
  Test.make ~name:"analysis: stack distances, 50k refs (naive MTF)"
    (Staged.stage (fun () ->
         ignore (Analysis.Lru_stack.analyze_naive (Lazy.force lru_stream))))

let simulator =
  let pre = lazy (Trace.Preprocess.run (Lazy.force synth_trace)) in
  Test.make ~name:"simulator: 2k-event SMALL run"
    (Staged.stage (fun () ->
         ignore (Core.Simulator.run Core.Simulator.default_config (Lazy.force pre))))

let interpreter =
  Test.make ~name:"interp: (fib 12)"
    (Staged.stage (fun () ->
         let i = Lisp.Interp.create () in
         ignore
           (Lisp.Interp.run_program i
              "(def fib (lambda (n) (cond ((lessp n 2) n) (t (+ (fib (- n 1)) (fib (- n 2))))))) (fib 12)")))

let emulator =
  let prog =
    Machine.Compile.parse_and_compile
      "(def fib (lambda (n) (cond ((lessp n 2) n) (t (+ (fib (- n 1)) (fib (- n 2))))))) (fib 12)"
  in
  Test.make ~name:"machine: compiled (fib 12)"
    (Staged.stage (fun () ->
         ignore (Machine.Emulator.run (Machine.Emulator.create prog))))

(* Runs the whole suite, prints one line per test and returns
   [(name, ns_per_run)] pairs ([None] when OLS produced no estimate) so
   the harness can serialise them with --json. *)
let benchmark () =
  let tests =
    [ lpt_ops; cache_ops; preprocess; list_sets; lru_fenwick; lru_naive;
      simulator; interpreter; emulator ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  List.concat_map
    (fun test ->
       let results = Benchmark.all cfg instances test in
       let ols =
         Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
           (Instance.monotonic_clock) results
       in
       Hashtbl.fold
         (fun name result acc ->
            match Bechamel.Analyze.OLS.estimates result with
            | Some [ est ] ->
              Printf.printf "  %-48s %12.0f ns/run\n" name est;
              (name, Some est) :: acc
            | _ ->
              Printf.printf "  %-48s (no estimate)\n" name;
              (name, None) :: acc)
         ols [])
    tests
