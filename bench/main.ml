(* The benchmark harness: regenerates every table and figure of the
   thesis's evaluation (see DESIGN.md's per-experiment index) and, with
   --timings, runs the bechamel micro-benchmarks.

   Usage:
     dune exec bench/main.exe                 # every section
     dune exec bench/main.exe -- fig3.4 table5.2
     dune exec bench/main.exe -- --list
     dune exec bench/main.exe -- --timings
     dune exec bench/main.exe -- --jobs 8     # multicore sweeps/dispatch
     dune exec bench/main.exe -- --json out.json   # machine-readable results *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json ~file ~jobs ~sections ~timings =
  let oc = open_out file in
  let item (name, secs) =
    Printf.sprintf "    {\"name\": \"%s\", \"seconds\": %.4f}" (json_escape name) secs
  in
  let timing (name, est) =
    Printf.sprintf "    {\"name\": \"%s\", \"ns_per_run\": %s}" (json_escape name)
      (match est with Some ns -> Printf.sprintf "%.1f" ns | None -> "null")
  in
  Printf.fprintf oc "{\n  \"jobs\": %d,\n  \"sections\": [\n%s\n  ],\n  \"timings\": [\n%s\n  ]\n}\n"
    jobs
    (String.concat ",\n" (List.map item sections))
    (String.concat ",\n" (List.map timing timings));
  close_out oc;
  Printf.printf "wrote %s\n" file

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse args (jobs, json, rest) =
    match args with
    | "--jobs" :: n :: tl ->
      let n =
        match int_of_string_opt n with
        | Some n when n >= 1 -> n
        | _ -> Printf.eprintf "--jobs expects a positive integer, got %s\n" n; exit 2
      in
      parse tl (n, json, rest)
    | [ "--jobs" ] -> Printf.eprintf "--jobs expects an argument\n"; exit 2
    | "--json" :: file :: tl -> parse tl (jobs, Some file, rest)
    | [ "--json" ] -> Printf.eprintf "--json expects a file argument\n"; exit 2
    | a :: tl -> parse tl (jobs, json, a :: rest)
    | [] -> (jobs, json, List.rev rest)
  in
  let jobs, json, args = parse args (1, None, []) in
  Util.Parallel.set_default_domains jobs;
  let sections = Sections.all () in
  if List.mem "--list" args then begin
    print_endline "available sections:";
    List.iter (fun (name, descr, _) -> Printf.printf "  %-14s %s\n" name descr) sections;
    print_endline "  --timings      bechamel micro-benchmarks";
    print_endline "  --jobs N       run sweeps and section dispatch on N domains";
    print_endline "  --json FILE    write per-section wall-clock (and timings) as JSON"
  end
  else begin
    let wanted = List.filter (fun a -> a <> "--timings") args in
    let selected =
      if wanted = [] then sections
      else
        List.filter_map
          (fun name ->
             match List.find_opt (fun (n, _, _) -> n = name) sections with
             | Some s -> Some s
             | None ->
               Printf.eprintf "unknown section %s (try --list)\n" name;
               None)
          wanted
    in
    let t0 = Unix.gettimeofday () in
    let section_times =
      if jobs <= 1 then
        (* sequential: stream each section's output as it runs *)
        List.map
          (fun (name, descr, fn) ->
             Printf.printf "\n################ %s — %s\n" name descr;
             let t = Unix.gettimeofday () in
             fn ();
             let dt = Unix.gettimeofday () -. t in
             Printf.printf "[%s done in %.1fs]\n" name dt;
             (name, dt))
          selected
      else begin
        (* parallel dispatch: each worker captures its section's output,
           the main domain prints everything in registry order *)
        let results =
          Util.Parallel.map ~domains:jobs
            (fun (name, descr, fn) ->
               let t = Unix.gettimeofday () in
               let out = Util.Series.with_capture fn in
               (name, descr, out, Unix.gettimeofday () -. t))
            selected
        in
        List.map
          (fun (name, descr, out, dt) ->
             Printf.printf "\n################ %s — %s\n%s[%s done in %.1fs]\n"
               name descr out name dt;
             (name, dt))
          results
      end
    in
    let timings =
      if List.mem "--timings" args then begin
        print_endline "\n################ timings (bechamel)";
        Timings.benchmark ()
      end
      else []
    in
    Printf.printf "\nall sections done in %.1fs\n" (Unix.gettimeofday () -. t0);
    match json with
    | Some file -> write_json ~file ~jobs ~sections:section_times ~timings
    | None -> ()
  end
