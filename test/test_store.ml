(* Log-structured store tests: the kill-mid-commit crash battery (a
   reopen at every byte offset of a torn final record and at every
   single-byte flip must recover a prefix-consistent state and never
   lose an acknowledged group or serve a corrupt value), seeded
   fault-plan workloads over every store.* injection site,
   legacy-vs-log equivalence and SMRC1 migration, compaction/eviction
   properties with exact dead-byte accounting and a concurrent reader,
   the cache-degraded regression, and a service-level reopen. *)

module L = Store.Log
module P = Fault.Plan
module RC = Server.Result_cache

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc contents)

(* The full observable state, via the public interface only. *)
let state_of t =
  L.keys t
  |> List.filter_map (fun k -> Option.map (fun v -> (k, v)) (L.get t k))
  |> List.sort compare

let model_state m =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) m [] |> List.sort compare

let pp_state st =
  String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) st)

let check_state msg expected t =
  Alcotest.(check string) msg (pp_state expected) (pp_state (state_of t))

(* no rotation, no auto-compaction: the battery truncates the one
   segment the workload wrote *)
let flat_config =
  { L.segment_bytes = 1 lsl 20; compact_ratio = 1.0; max_bytes = None; ttl = None }

(* ---- basics ---- *)

let test_roundtrip () =
  let dir = temp_dir "store_rt" in
  let s = L.open_ ~dir () in
  L.set s "alpha" "one";
  L.set s "beta" "two";
  Alcotest.(check (option string)) "get" (Some "one") (L.get s "alpha");
  Alcotest.(check bool) "mem" true (L.mem s "beta");
  L.set s "alpha" "uno";
  Alcotest.(check (option string)) "overwrite" (Some "uno") (L.get s "alpha");
  L.delete s "beta";
  Alcotest.(check (option string)) "pending delete visible" None (L.get s "beta");
  L.commit s;
  Alcotest.(check int) "entries" 1 (L.entries s);
  (* binary values round-trip byte-exactly *)
  let blob = String.init 257 (fun i -> Char.chr (i mod 256)) in
  L.set s "blob" blob;
  Alcotest.(check (option string)) "binary value" (Some blob) (L.get s "blob");
  L.close s;
  let s2 = L.open_ ~dir () in
  Alcotest.(check (option string)) "survives reopen" (Some "uno") (L.get s2 "alpha");
  Alcotest.(check (option string)) "delete survives reopen" None (L.get s2 "beta");
  Alcotest.(check (option string)) "binary survives reopen" (Some blob)
    (L.get s2 "blob");
  let st = L.stats s2 in
  Alcotest.(check bool) "recovery replayed records" true (st.L.recovered_records > 0);
  Alcotest.(check int) "clean log loses nothing" 0 st.L.truncated_records;
  L.close s2;
  rm_rf dir

let test_read_your_writes () =
  let dir = temp_dir "store_ryw" in
  let s = L.open_ ~dir () in
  L.put s "k" "pending";
  Alcotest.(check (option string)) "uncommitted visible" (Some "pending")
    (L.get s "k");
  Alcotest.(check bool) "uncommitted mem" true (L.mem s "k");
  L.commit s;
  L.close s;
  rm_rf dir

(* ---- the crash battery ----

   Random workloads of grouped puts/deletes/overwrites; for each, the
   final commit's record is truncated at EVERY byte offset and the
   store reopened: the recovered state must be exactly the state before
   the final group (a mid-record crash means that commit never
   returned, so it was never acknowledged), and the untruncated log
   must replay to the state after it.  Byte flips over the whole file
   must recover SOME acknowledged prefix — never a corrupt value. *)

type wop = Wput of string * string | Wdel of string

let apply_group s model group =
  List.iter
    (function
      | Wput (k, v) -> L.put s k v
      | Wdel k -> L.delete s k)
    group;
  L.commit s;
  List.iter
    (function
      | Wput (k, v) -> Hashtbl.replace model k v
      | Wdel k -> Hashtbl.remove model k)
    group

let gen_groups rng ~groups =
  let keys = Array.init 12 (fun i -> Printf.sprintf "key%02d" i) in
  let gen_group ~final =
    let n = 1 + Random.State.int rng 4 in
    List.init n (fun i ->
        let k = keys.(Random.State.int rng (Array.length keys)) in
        (* a group always opens with a put, so the store never empties
           and the final record is never trivially small *)
        if i > 0 && Random.State.int rng 4 = 0 && not final then Wdel k
        else
          Wput (k, Printf.sprintf "v%d-%s" (Random.State.int rng 1000)
                  (String.make (8 + Random.State.int rng 24) 'x')))
  in
  List.init groups (fun i -> gen_group ~final:(i = groups - 1))

(* Rebuild [dst] as a copy of [src] with the named segment truncated to
   [cut] bytes.  [dst] is wiped first: a previous reopen may have
   repaired (truncated, deleted) the files. *)
let copy_truncated ~src ~dst ~seg_name ~cut =
  Array.iter
    (fun n -> try Sys.remove (Filename.concat dst n) with Sys_error _ -> ())
    (Sys.readdir dst);
  Array.iter
    (fun n ->
       let body = read_file (Filename.concat src n) in
       let body = if n = seg_name then String.sub body 0 cut else body in
       write_file (Filename.concat dst n) body)
    (Sys.readdir src)

let crash_points = ref 0

let test_torn_record_battery () =
  let seg_name = "seg-00000000.smsg" in
  let scratch = temp_dir "store_cut" in
  for seed = 1 to 12 do
    let rng = Random.State.make [| 0xbeef; seed |] in
    let groups = gen_groups rng ~groups:(4 + Random.State.int rng 5) in
    let dir = temp_dir "store_battery" in
    let s = L.open_ ~config:flat_config ~dir () in
    let model = Hashtbl.create 16 in
    let rec split = function
      | [ last ] -> ([], last)
      | g :: rest -> let init, last = split rest in (g :: init, last)
      | [] -> assert false
    in
    let init, final = split groups in
    List.iter (apply_group s model) init;
    let before = model_state model in
    let l0 = String.length (read_file (Filename.concat dir seg_name)) in
    apply_group s model final;
    let after = model_state model in
    L.close s;
    let l1 = String.length (read_file (Filename.concat dir seg_name)) in
    Alcotest.(check bool) "final group appended" true (l1 > l0);
    for cut = l0 to l1 - 1 do
      incr crash_points;
      copy_truncated ~src:dir ~dst:scratch ~seg_name ~cut;
      let r = L.open_ ~config:flat_config ~dir:scratch () in
      check_state
        (Printf.sprintf "seed %d cut %d/%d: exactly the acknowledged prefix"
           seed cut l1)
        before r;
      (if cut > l0 then
         let st = L.stats r in
         Alcotest.(check bool) "torn tail was truncated" true
           (st.L.truncated_records > 0));
      L.close r
    done;
    (* the untruncated log replays the final group too *)
    copy_truncated ~src:dir ~dst:scratch ~seg_name ~cut:l1;
    let r = L.open_ ~config:flat_config ~dir:scratch () in
    check_state (Printf.sprintf "seed %d: full log has the final group" seed)
      after r;
    L.close r;
    rm_rf dir
  done;
  rm_rf scratch

let test_byte_flip_battery () =
  let seg_name = "seg-00000000.smsg" in
  let scratch = temp_dir "store_flip" in
  for seed = 1 to 3 do
    let rng = Random.State.make [| 0xf11b; seed |] in
    let groups = gen_groups rng ~groups:8 in
    let dir = temp_dir "store_flipsrc" in
    let s = L.open_ ~config:flat_config ~dir () in
    let model = Hashtbl.create 16 in
    (* snapshot after every commit: a flip must land on one of these *)
    let empty_snapshot = pp_state (model_state model) in
    let snapshots =
      empty_snapshot
      :: List.map
        (fun g -> apply_group s model g; pp_state (model_state model))
        groups
    in
    L.close s;
    let body = read_file (Filename.concat dir seg_name) in
    for pos = 0 to String.length body - 1 do
      incr crash_points;
      let flipped = Bytes.of_string body in
      Bytes.set flipped pos (Char.chr (Char.code body.[pos] lxor 0x40));
      Array.iter
        (fun n -> try Sys.remove (Filename.concat scratch n) with Sys_error _ -> ())
        (Sys.readdir scratch);
      write_file (Filename.concat scratch seg_name) (Bytes.to_string flipped);
      let r = L.open_ ~config:flat_config ~dir:scratch () in
      let got = pp_state (state_of r) in
      if not (List.mem got snapshots) then
        Alcotest.failf
          "seed %d flip at %d: recovered state is not an acknowledged prefix: %s"
          seed pos got;
      L.close r
    done;
    rm_rf dir
  done;
  rm_rf scratch;
  (* the ISSUE's floor: the batteries together must generate >= 1000
     distinct crash points per run *)
  Alcotest.(check bool)
    (Printf.sprintf "crash battery generated %d points (>= 1000)" !crash_points)
    true (!crash_points >= 1000)

(* ---- seeded fault-plan workloads: every store.* site ---- *)

let faulty_cfg seed =
  { P.default with seed; write_fail = 0.2; torn_write = 0.15; delay_s = 0.0 }

let test_fault_plan_workloads () =
  let injected = ref 0 in
  for seed = 1 to 8 do
    let rng = Random.State.make [| 0xfa17; seed |] in
    let dir = temp_dir "store_fault" in
    let config =
      { L.segment_bytes = 4096; compact_ratio = 0.3; max_bytes = None; ttl = None }
    in
    let model = Hashtbl.create 16 in
    let store = ref (L.open_ ~fault:(P.create (faulty_cfg seed)) ~config ~dir ()) in
    for i = 0 to 199 do
      let k = Printf.sprintf "k%02d" (Random.State.int rng 16) in
      (match Random.State.int rng 10 with
       | 0 ->
         (* a deletion group: acknowledged iff commit returns *)
         (try
            L.delete !store k;
            L.commit !store;
            Hashtbl.remove model k
          with Sys_error _ -> incr injected)
       | 1 -> (try L.compact !store with Sys_error _ -> incr injected)
       | _ ->
         let v = Printf.sprintf "v%d-%s" i (String.make (Random.State.int rng 64) 'y') in
         (try
            L.set !store k v;
            Hashtbl.replace model k v
          with Sys_error _ -> incr injected));
      (* a torn append wedges the store: reopen (fault-free) and the
         recovered state must be exactly the acknowledged operations *)
      if L.failed !store then begin
        L.close !store;
        store := L.open_ ~config ~dir ();
        check_state (Printf.sprintf "seed %d op %d: post-crash recovery" seed i)
          (model_state model) !store
      end
    done;
    L.close !store;
    let r = L.open_ ~config ~dir () in
    check_state (Printf.sprintf "seed %d: final recovery" seed)
      (model_state model) r;
    L.close r;
    rm_rf dir
  done;
  Alcotest.(check bool) "the plans actually injected faults" true (!injected > 0)

let test_recovery_fault_site () =
  let dir = temp_dir "store_recsite" in
  let s = L.open_ ~dir () in
  L.set s "stable" "value";
  L.close s;
  let all_fail =
    P.create { P.default with seed = 7; write_fail = 1.0; delay_s = 0.0 }
  in
  (match L.open_ ~fault:all_fail ~dir () with
   | _ -> Alcotest.fail "recovery under a read fault must raise"
   | exception Sys_error _ -> ());
  (* the failed recovery mutated nothing: a clean open has everything *)
  let r = L.open_ ~dir () in
  Alcotest.(check (option string)) "state intact after failed recovery"
    (Some "value") (L.get r "stable");
  L.close r;
  rm_rf dir

(* ---- legacy vs log equivalence, and SMRC1 migration ---- *)

let cache_key i = RC.key ~trace_digest:(string_of_int (i mod 8)) ~job_digest:"eq"

let prop_equivalence =
  QCheck.Test.make ~name:"legacy and log caches answer identically" ~count:40
    QCheck.(list (pair (0 -- 7) (option string_printable)))
    (fun ops ->
       let ldir = temp_dir "eq_files" and sdir = temp_dir "eq_log" in
       Fun.protect ~finally:(fun () -> rm_rf ldir; rm_rf sdir) @@ fun () ->
       let legacy = RC.create ~dir:ldir () in
       let log = RC.create ~store_dir:sdir () in
       List.iter
         (fun (i, op) ->
            let k = cache_key i in
            match op with
            | Some v -> RC.store legacy k v; RC.store log k v
            | None ->
              if RC.find legacy k <> RC.find log k then
                QCheck.Test.fail_reportf "find diverged on key %d" i)
         ops;
       (* cold processes over the same directories agree too *)
       let legacy2 = RC.create ~dir:ldir () in
       let log2 = RC.create ~store_dir:sdir () in
       List.for_all
         (fun i -> RC.find legacy2 (cache_key i) = RC.find log2 (cache_key i))
         [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let test_migration () =
  let dir = temp_dir "migrate" in
  (* a legacy cache populates the directory with SMRC1 files *)
  let old = RC.create ~dir () in
  let k1 = RC.key ~trace_digest:"t1" ~job_digest:"j" in
  let k2 = RC.key ~trace_digest:"t2" ~job_digest:"j" in
  RC.store old k1 "legacy one";
  RC.store old k2 "legacy two";
  (* pointing the log store at the same directory reads through *)
  let reg = Obs.Registry.create () in
  let c = RC.create ~metrics:reg ~store_dir:dir () in
  Alcotest.(check (option string)) "read through" (Some "legacy one") (RC.find c k1);
  Alcotest.(check int) "counted as disk hit" 1 (RC.stats c).RC.disk_hits;
  Alcotest.(check int) "counted as migrated" 1 (RC.stats c).RC.migrated;
  Alcotest.(check int) "small_cache_migrated_total" 1
    (Obs.Metric.Counter.get (Obs.Registry.counter reg "small_cache_migrated_total"));
  (* the migrated entry now lives in the log: a cold process finds it
     even with the legacy file gone *)
  let c2 = RC.create ~store_dir:dir () in
  Alcotest.(check (option string)) "migrated entry served from the log"
    (Some "legacy one") (RC.find c2 k1);
  Alcotest.(check (option string)) "unread legacy entry still reads through"
    (Some "legacy two") (RC.find c2 k2);
  Alcotest.(check int) "no recompute: all hits" 0 (RC.stats c2).RC.misses;
  (match RC.log_stats c2 with
   | Some ls -> Alcotest.(check bool) "log recovered the migrated entry" true
                  (ls.L.recovered_records > 0)
   | None -> Alcotest.fail "expected a log-backed cache");
  (* both backends on one directory is a configuration error *)
  (match RC.create ~dir ~store_dir:dir () with
   | _ -> Alcotest.fail "dir + store_dir must be rejected"
   | exception Invalid_argument _ -> ());
  rm_rf dir

(* ---- compaction and eviction properties ---- *)

type cop = Cset of int * int | Cdel of int | Ccompact

let cop_gen =
  QCheck.Gen.(
    frequency
      [ (6, map2 (fun k n -> Cset (k, n)) (int_bound 9) (int_bound 80));
        (2, map (fun k -> Cdel k) (int_bound 9));
        (1, return Ccompact) ])

let pp_cop = function
  | Cset (k, n) -> Printf.sprintf "set %d (%d bytes)" k n
  | Cdel k -> Printf.sprintf "del %d" k
  | Ccompact -> "compact"

let prop_compaction_accounting =
  QCheck.Test.make ~name:"live set = model; dead-byte accounting is exact"
    ~count:60
    (QCheck.make ~print:QCheck.Print.(list pp_cop) QCheck.Gen.(list_size (1 -- 60) cop_gen))
    (fun ops ->
       let dir = temp_dir "compact_acct" in
       Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
       let config =
         (* auto-compaction off (ratio 1 + a live floor): only explicit
            Ccompact compacts, so the expected dead count is exact *)
         { L.segment_bytes = 1 lsl 20; compact_ratio = 1.0;
           max_bytes = None; ttl = None }
       in
       let s = L.open_ ~config ~dir () in
       let model = Hashtbl.create 8 in
       let live = ref 0 and dead = ref 0 in
       let key k = Printf.sprintf "ck%d" k in
       let value k n = Printf.sprintf "%d:%s" k (String.make n 'z') in
       List.iter
         (fun op ->
            (match op with
             | Cset (k, n) ->
               let key = key k and v = value k n in
               let bytes = L.encoded_put_bytes ~key ~value:v in
               (match Hashtbl.find_opt model key with
                | Some old ->
                  let ob = L.encoded_put_bytes ~key ~value:old in
                  dead := !dead + ob;
                  live := !live - ob
                | None -> ());
               Hashtbl.replace model key v;
               live := !live + bytes;
               L.set s key v
             | Cdel k ->
               let key = key k in
               (match Hashtbl.find_opt model key with
                | Some old ->
                  let ob = L.encoded_put_bytes ~key ~value:old in
                  dead := !dead + ob;
                  live := !live - ob
                | None -> ());
               dead := !dead + L.encoded_delete_bytes ~key;
               Hashtbl.remove model key;
               L.delete s key;
               L.commit s
             | Ccompact ->
               L.compact s;
               dead := 0);
            let st = L.stats s in
            if st.L.live_bytes <> !live then
              QCheck.Test.fail_reportf "after %s: live %d, expected %d"
                (pp_cop op) st.L.live_bytes !live;
            if st.L.dead_bytes <> !dead then
              QCheck.Test.fail_reportf "after %s: dead %d, expected %d"
                (pp_cop op) st.L.dead_bytes !dead;
            if st.L.entries <> Hashtbl.length model then
              QCheck.Test.fail_reportf "after %s: %d entries, expected %d"
                (pp_cop op) st.L.entries (Hashtbl.length model))
         ops;
       let final = model_state model in
       let ok1 = state_of s = final in
       L.close s;
       (* recovery replays to the same state AND the same accounting *)
       let r = L.open_ ~config ~dir () in
       let st = L.stats r in
       let ok2 =
         state_of r = final && st.L.live_bytes = !live && st.L.dead_bytes = !dead
       in
       L.close r;
       ok1 && ok2)

let test_concurrent_reader_during_compaction () =
  let dir = temp_dir "compact_reader" in
  let config =
    { L.segment_bytes = 1 lsl 20; compact_ratio = 1.0; max_bytes = None; ttl = None }
  in
  let s = L.open_ ~config ~dir () in
  let stable = List.init 32 (fun i -> (Printf.sprintf "stable%02d" i, Printf.sprintf "sv%d" i)) in
  List.iter (fun (k, v) -> L.set s k v) stable;
  let bad = Atomic.make 0 in
  let stop = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        let n = ref 0 in
        while not (Atomic.get stop) do
          List.iter
            (fun (k, v) ->
               incr n;
               match L.get s k with
               | Some got when got = v -> ()
               | _ -> Atomic.incr bad)
            stable
        done;
        !n)
  in
  (* churn + repeated compaction while the reader hammers stable keys *)
  for round = 0 to 19 do
    for i = 0 to 15 do
      L.set s (Printf.sprintf "churn%02d" i) (Printf.sprintf "r%d-%d" round i)
    done;
    L.compact s
  done;
  Atomic.set stop true;
  let reads = Domain.join reader in
  Alcotest.(check int) "no missing or partial reads during compaction" 0
    (Atomic.get bad);
  Alcotest.(check bool) "the reader actually read" true (reads > 0);
  Alcotest.(check bool) "compactions ran" true ((L.stats s).L.compactions >= 20);
  L.close s;
  rm_rf dir

let test_size_eviction () =
  let dir = temp_dir "evict" in
  let key i = Printf.sprintf "e%02d" i in
  let value i = Printf.sprintf "%d:%s" i (String.make (10 + (i mod 5) * 7) 'w') in
  let bytes i = L.encoded_put_bytes ~key:(key i) ~value:(value i) in
  let cap = bytes 7 + bytes 8 + bytes 9 + 4 in
  let config =
    { L.segment_bytes = 1 lsl 20; compact_ratio = 1.0;
      max_bytes = Some cap; ttl = None }
  in
  let s = L.open_ ~config ~dir () in
  (* the same incremental rule the store applies: after each insert,
     drop oldest until under the cap *)
  let expected = Queue.create () in
  let total = ref 0 in
  for i = 0 to 9 do
    L.set s (key i) (value i);
    Queue.push i expected;
    total := !total + bytes i;
    while !total > cap do
      let victim = Queue.pop expected in
      total := !total - bytes victim
    done
  done;
  let survivors = List.of_seq (Queue.to_seq expected) in
  let expect_state =
    List.sort compare (List.map (fun i -> (key i, value i)) survivors)
  in
  check_state "oldest entries evicted, newest kept" expect_state s;
  Alcotest.(check bool) "live bytes bounded" true ((L.stats s).L.live_bytes <= cap);
  Alcotest.(check bool) "evictions counted" true ((L.stats s).L.evictions > 0);
  L.close s;
  (* durable deletes: an evicted entry stays evicted across recovery *)
  let r = L.open_ ~config ~dir () in
  check_state "no resurrection after reopen" expect_state r;
  L.close r;
  rm_rf dir

let test_ttl_expiry () =
  let dir = temp_dir "ttl" in
  let now = ref 1000.0 in
  let config =
    { L.segment_bytes = 1 lsl 20; compact_ratio = 1.0;
      max_bytes = None; ttl = Some 10.0 }
  in
  let clock () = !now in
  let s = L.open_ ~config ~clock ~dir () in
  L.set s "old" "stale";
  now := 1005.0;
  Alcotest.(check (option string)) "fresh enough" (Some "stale") (L.get s "old");
  now := 1015.0;
  L.set s "new" "current";
  Alcotest.(check (option string)) "expired on read" None (L.get s "old");
  Alcotest.(check bool) "expiry counted as eviction" true ((L.stats s).L.evictions > 0);
  L.close s;
  (* recovery skips expired entries instead of indexing them *)
  let r = L.open_ ~config ~clock ~dir () in
  Alcotest.(check (option string)) "not resurrected by recovery" None (L.get r "old");
  Alcotest.(check (option string)) "live entry recovered" (Some "current")
    (L.get r "new");
  Alcotest.(check int) "only the live entry is indexed" 1 (L.entries r);
  L.close r;
  rm_rf dir

(* ---- the degraded-cache regression (satellite fix) ---- *)

let always_fail =
  P.create { P.default with seed = 3; write_fail = 1.0; delay_s = 0.0 }

let check_degraded ~make_cache name =
  let reg = Obs.Registry.create () in
  let c = make_cache reg in
  let k = RC.key ~trace_digest:"t" ~job_digest:"degraded" in
  Alcotest.(check bool) (name ^ ": fresh cache not degraded") false
    (RC.stats c).RC.degraded;
  Alcotest.(check int) (name ^ ": gauge starts 0") 0
    (Obs.Metric.Gauge.get (Obs.Registry.gauge reg "small_cache_degraded"));
  RC.store c k "value";
  (* memory still serves; the degradation is visible, not silent *)
  Alcotest.(check (option string)) (name ^ ": memory entry kept") (Some "value")
    (RC.find c k);
  Alcotest.(check bool) (name ^ ": stats flag degraded") true (RC.stats c).RC.degraded;
  Alcotest.(check bool) (name ^ ": write errors counted") true
    ((RC.stats c).RC.write_errors > 0);
  Alcotest.(check int) (name ^ ": small_cache_degraded raised") 1
    (Obs.Metric.Gauge.get (Obs.Registry.gauge reg "small_cache_degraded"))

let test_degraded_gauge_files () =
  let dir = temp_dir "degraded_files" in
  check_degraded "files"
    ~make_cache:(fun reg -> RC.create ~metrics:reg ~dir ~fault:always_fail ());
  rm_rf dir

let test_degraded_gauge_log () =
  let dir = temp_dir "degraded_log" in
  (* the plan would also fail recovery reads, but an empty directory
     never draws at store.recover — only the appends fail *)
  check_degraded "log"
    ~make_cache:(fun reg -> RC.create ~metrics:reg ~store_dir:dir ~fault:always_fail ());
  rm_rf dir

(* ---- service-level reopen over the log store ---- *)

let synth_capture = lazy (Trace.Synth.generate { Trace.Synth.default with length = 2000 })

let saved_trace = lazy (
  let path = Filename.temp_file "storesynth" ".smtb" in
  Trace.Io.save ~format:Trace.Io.Binary path (Lazy.force synth_capture);
  path)

let sim_job seed =
  { Server.Job.source = Server.Job.Trace_file (Lazy.force saved_trace);
    spec = Server.Job.Simulate { Core.Simulator.default_config with table_size = 64; seed };
    timeout = None; priority = 0; deadline = None; wire_id = None }

let ok = function
  | Ok v -> v
  | Error _ -> Alcotest.fail "unexpected submit error"

let test_service_over_log_store () =
  let dir = temp_dir "svc_store" in
  let run f =
    let svc =
      Server.Service.create ~store_dir:dir ~workers:2 ~queue_capacity:16 ()
    in
    Fun.protect ~finally:(fun () -> Server.Service.shutdown svc) (fun () -> f svc)
  in
  let first =
    run @@ fun svc ->
    let r = ok (Server.Service.run_job svc (sim_job 5)) in
    Alcotest.(check bool) "cold run executes" false r.Server.Service.cached;
    r
  in
  ignore first;
  (* a new process over the same store directory: recovery replays the
     stored result and the re-serve is a warm disk hit, no recompute *)
  run @@ fun svc ->
  (match RC.log_stats (Server.Service.cache svc) with
   | Some ls ->
     Alcotest.(check bool) "recovery replayed the stored result" true
       (ls.L.recovered_records > 0)
   | None -> Alcotest.fail "expected a log-backed cache");
  let r = ok (Server.Service.run_job svc (sim_job 5)) in
  Alcotest.(check bool) "warm re-serve hits the recovered entry" true
    r.Server.Service.cached;
  Alcotest.(check int) "counted as a disk hit" 1
    (RC.stats (Server.Service.cache svc)).RC.disk_hits;
  rm_rf dir

let () =
  Alcotest.run "store"
    [ ("basics",
       [ Alcotest.test_case "roundtrip and reopen" `Quick test_roundtrip;
         Alcotest.test_case "read-your-writes" `Quick test_read_your_writes ]);
      ("crash battery",
       [ Alcotest.test_case "torn final record, every offset" `Quick
           test_torn_record_battery;
         Alcotest.test_case "single-byte flips, every position" `Quick
           test_byte_flip_battery;
         Alcotest.test_case "seeded fault-plan workloads" `Quick
           test_fault_plan_workloads;
         Alcotest.test_case "recovery fault site mutates nothing" `Quick
           test_recovery_fault_site ]);
      ("equivalence",
       [ QCheck_alcotest.to_alcotest prop_equivalence;
         Alcotest.test_case "SMRC1 migration" `Quick test_migration ]);
      ("compaction",
       [ QCheck_alcotest.to_alcotest prop_compaction_accounting;
         Alcotest.test_case "concurrent reader during compaction" `Quick
           test_concurrent_reader_during_compaction ]);
      ("eviction",
       [ Alcotest.test_case "size eviction is durable" `Quick test_size_eviction;
         Alcotest.test_case "ttl expiry" `Quick test_ttl_expiry ]);
      ("degraded cache",
       [ Alcotest.test_case "files backend raises the gauge" `Quick
           test_degraded_gauge_files;
         Alcotest.test_case "log backend raises the gauge" `Quick
           test_degraded_gauge_log ]);
      ("service",
       [ Alcotest.test_case "reopen serves recovered entries" `Quick
           test_service_over_log_store ]) ]
