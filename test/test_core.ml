(* Tests for the SMALL core: LPT mechanics (allocation, reference
   counting with lazy child decrement, split/hit caching, compression,
   cycle recovery, split reference counts), the heap-controller model,
   the trace-driven simulator and the ordered-traversal analysis. *)

let mk_lpt ?(size = 16) ?(policy = Core.Lpt.Compress_one) ?(split_counts = false)
    ?(eager = false) () =
  let heap = Core.Heap_model.create ~seed:3 () in
  ( Core.Lpt.create ~size ~policy ~split_counts ~eager_decrement:eager ~heap ~seed:17 (),
    heap )

(* ---- heap model ---- *)

let test_heap_model () =
  let h = Core.Heap_model.create ~seed:1 () in
  let a = Core.Heap_model.read_in h ~size:5 in
  let b = Core.Heap_model.read_in h ~size:3 in
  Alcotest.(check bool) "objects get disjoint ranges" true (b >= a + 5);
  let car, cdr = Core.Heap_model.split h ~addr:b in
  Alcotest.(check bool) "split children land near the parent" true
    (car > b && car <= b + 50 && cdr > b && cdr <= b + 50);
  let c = Core.Heap_model.counters h in
  Alcotest.(check int) "reads" 2 c.Core.Heap_model.reads;
  Alcotest.(check int) "splits" 1 c.Core.Heap_model.splits

(* ---- LPT basics ---- *)

let test_lpt_readin_and_free () =
  let lpt, _ = mk_lpt () in
  let id = Core.Lpt.read_in lpt ~size:4 in
  Core.Lpt.stack_incr lpt id;
  Alcotest.(check int) "live" 1 (Core.Lpt.live lpt);
  Alcotest.(check int) "one get" 1 (Core.Lpt.counters lpt).Core.Lpt.gets;
  Core.Lpt.stack_decr lpt id;
  Alcotest.(check int) "freed on zero" 0 (Core.Lpt.live lpt);
  Alcotest.(check bool) "not live" false (Core.Lpt.is_live lpt id)

let test_lpt_split_hit_miss () =
  let lpt, _ = mk_lpt () in
  let id = Core.Lpt.read_in lpt ~size:6 in
  Core.Lpt.stack_incr lpt id;
  (* first car access misses and splits; both children materialise *)
  (match Core.Lpt.get_car lpt id with
   | Core.Lpt.Miss _ -> ()
   | Hit _ | Hit_atom -> Alcotest.fail "first access must miss");
  Alcotest.(check int) "split created both children" 3 (Core.Lpt.live lpt);
  (* subsequent car and cdr are hits (Fig 4.5 / §5.3.1) *)
  (match Core.Lpt.get_car lpt id with
   | Core.Lpt.Hit _ | Core.Lpt.Hit_atom -> ()
   | Miss _ -> Alcotest.fail "second access must hit");
  (match Core.Lpt.get_cdr lpt id with
   | Core.Lpt.Hit _ | Core.Lpt.Hit_atom -> ()
   | Miss _ -> Alcotest.fail "cdr after split must hit");
  let c = Core.Lpt.counters lpt in
  Alcotest.(check int) "hits" 2 c.Core.Lpt.hits;
  Alcotest.(check int) "misses" 1 c.Core.Lpt.misses

let test_lpt_cons_no_heap () =
  let lpt, heap = mk_lpt () in
  let a = Core.Lpt.read_in lpt ~size:2 in
  Core.Lpt.stack_incr lpt a;
  let b = Core.Lpt.read_in lpt ~size:2 in
  Core.Lpt.stack_incr lpt b;
  let reads_before = (Core.Heap_model.counters heap).Core.Heap_model.reads in
  let z = Core.Lpt.cons lpt ~car:(Some a) ~cdr:(Some b) in
  Core.Lpt.stack_incr lpt z;
  Alcotest.(check int) "cons is pure endo-structure: no heap read"
    reads_before (Core.Heap_model.counters heap).Core.Heap_model.reads;
  (* consing counts one internal reference on each child *)
  Alcotest.(check int) "a referenced by z and the stack" 2 (Core.Lpt.refcount lpt a);
  (* accessing the cons is a hit immediately *)
  (match Core.Lpt.get_car lpt z with
   | Core.Lpt.Hit c -> Alcotest.(check int) "car is a" a c
   | Miss _ | Hit_atom -> Alcotest.fail "cons car must hit")

let test_lpt_lazy_child_decrement () =
  let lpt, _ = mk_lpt () in
  let a = Core.Lpt.read_in lpt ~size:2 in
  Core.Lpt.stack_incr lpt a;
  let z = Core.Lpt.cons lpt ~car:(Some a) ~cdr:None in
  Core.Lpt.stack_incr lpt z;
  Core.Lpt.stack_decr lpt z;
  (* z is freed, but a's count from z survives until z's slot is reused *)
  Alcotest.(check bool) "z freed" false (Core.Lpt.is_live lpt z);
  Alcotest.(check int) "a still holds z's deferred reference" 2 (Core.Lpt.refcount lpt a);
  (* z sits on top of the free stack: the next alloc reuses it *)
  let fresh = Core.Lpt.read_in lpt ~size:1 in
  Alcotest.(check int) "LIFO reuse of the freed entry" z fresh;
  Alcotest.(check int) "deferred decrement happened on reuse" 1 (Core.Lpt.refcount lpt a)

let test_lpt_eager_decrement () =
  let lpt, _ = mk_lpt ~eager:true () in
  let a = Core.Lpt.read_in lpt ~size:2 in
  Core.Lpt.stack_incr lpt a;
  let z = Core.Lpt.cons lpt ~car:(Some a) ~cdr:None in
  Core.Lpt.stack_incr lpt z;
  Core.Lpt.stack_decr lpt z;
  Alcotest.(check int) "eager: child decremented immediately" 1 (Core.Lpt.refcount lpt a)

let test_lpt_rplaca () =
  let lpt, _ = mk_lpt () in
  let x = Core.Lpt.read_in lpt ~size:4 in
  Core.Lpt.stack_incr lpt x;
  let y = Core.Lpt.read_in lpt ~size:2 in
  Core.Lpt.stack_incr lpt y;
  (* rplaca before any split: miss, split first (Fig 4.6) *)
  let hit = Core.Lpt.rplaca lpt x (Some y) in
  Alcotest.(check bool) "first rplaca misses" false hit;
  (match Core.Lpt.get_car lpt x with
   | Core.Lpt.Hit c -> Alcotest.(check int) "car replaced" y c
   | Miss _ | Hit_atom -> Alcotest.fail "must hit after rplaca");
  Alcotest.(check int) "y gains the internal reference" 2 (Core.Lpt.refcount lpt y);
  (* replace with an atom: field cleared, y released by the table *)
  let hit2 = Core.Lpt.rplaca lpt x None in
  Alcotest.(check bool) "second rplaca hits" true hit2;
  Alcotest.(check int) "y dropped to the stack reference" 1 (Core.Lpt.refcount lpt y)

let test_lpt_rplaca_same_child () =
  (* replacing a part with itself must not transiently free it *)
  let lpt, _ = mk_lpt () in
  let x = Core.Lpt.read_in lpt ~size:4 in
  Core.Lpt.stack_incr lpt x;
  let y = Core.Lpt.read_in lpt ~size:2 in
  ignore (Core.Lpt.rplaca lpt x (Some y));   (* y: internal ref only *)
  ignore (Core.Lpt.rplaca lpt x (Some y));
  Alcotest.(check bool) "y survives self-replacement" true (Core.Lpt.is_live lpt y);
  Alcotest.(check int) "single internal reference" 1 (Core.Lpt.refcount lpt y)

(* ---- overflow handling ---- *)

let test_pseudo_overflow_compression () =
  (* Fill a tiny table with a compressible parent, then allocate: the
     pseudo overflow must be resolved by compression (Fig 4.8). *)
  let lpt, _ = mk_lpt ~size:4 () in
  let parent = Core.Lpt.read_in lpt ~size:8 in
  Core.Lpt.stack_incr lpt parent;
  ignore (Core.Lpt.get_car lpt parent);  (* splits: 3 live, children leaf refc=1 *)
  let filler = Core.Lpt.read_in lpt ~size:1 in
  Core.Lpt.stack_incr lpt filler;
  Alcotest.(check int) "table full" 4 (Core.Lpt.live lpt);
  (* next allocation triggers compression of parent's children *)
  let fresh = Core.Lpt.read_in lpt ~size:1 in
  Core.Lpt.stack_incr lpt fresh;
  let c = Core.Lpt.counters lpt in
  Alcotest.(check int) "one pseudo overflow" 1 c.Core.Lpt.pseudo_overflows;
  Alcotest.(check int) "one compression" 1 c.Core.Lpt.compressions;
  Alcotest.(check bool) "parent survives compression" true (Core.Lpt.is_live lpt parent);
  (* the parent's fields are gone: the next access re-splits (make room
     for the two child entries first) *)
  Core.Lpt.stack_decr lpt fresh;
  (match Core.Lpt.get_car lpt parent with
   | Core.Lpt.Miss _ -> ()
   | Hit _ | Hit_atom -> Alcotest.fail "compressed parent must miss")

let test_true_overflow () =
  (* a table full of stack-referenced leaves cannot be compressed *)
  let lpt, _ = mk_lpt ~size:4 () in
  for _ = 1 to 4 do
    Core.Lpt.stack_incr lpt (Core.Lpt.read_in lpt ~size:1)
  done;
  Alcotest.check_raises "true overflow" Core.Lpt.True_overflow (fun () ->
      ignore (Core.Lpt.read_in lpt ~size:1))

let test_cycle_recovery () =
  (* build a 2-cycle via rplacd, drop the external reference, fill the
     table: the allocator must break the dead cycle rather than
     truly overflow (§4.3.2.3) *)
  let lpt, _ = mk_lpt ~size:6 () in
  let a = Core.Lpt.read_in lpt ~size:2 in
  Core.Lpt.stack_incr lpt a;
  let b = Core.Lpt.cons lpt ~car:None ~cdr:(Some a) in
  Core.Lpt.stack_incr lpt b;
  ignore (Core.Lpt.rplaca lpt a (Some b));  (* may split a first *)
  (* drop the stack refs: a and b now only reference each other *)
  Core.Lpt.stack_decr lpt a;
  Core.Lpt.stack_decr lpt b;
  Alcotest.(check bool) "cycle keeps itself alive" true
    (Core.Lpt.is_live lpt a && Core.Lpt.is_live lpt b);
  (* exhaust the table; allocation must reclaim the cycle *)
  let rec fill acc =
    match Core.Lpt.read_in lpt ~size:1 with
    | id -> Core.Lpt.stack_incr lpt id; if List.length acc < 10 then fill (id :: acc) else acc
    | exception Core.Lpt.True_overflow -> acc
  in
  ignore (fill []);
  let c = Core.Lpt.counters lpt in
  Alcotest.(check bool) "cycle recovery ran" true (c.Core.Lpt.cycle_recoveries >= 1)

(* ---- split reference counts (Table 5.3) ---- *)

let test_split_counts () =
  let lpt, _ = mk_lpt ~split_counts:true () in
  let id = Core.Lpt.read_in lpt ~size:2 in
  let before = (Core.Lpt.counters lpt).Core.Lpt.refops in
  (* many stack refs: only the 0->1 transition reaches the LP *)
  for _ = 1 to 10 do
    Core.Lpt.stack_incr lpt id
  done;
  let c = Core.Lpt.counters lpt in
  Alcotest.(check int) "one LP refop (the StackBit set)" 1 (c.Core.Lpt.refops - before);
  Alcotest.(check int) "ten EP-side ops" 10 c.Core.Lpt.ep_refops;
  Alcotest.(check int) "max stack count tracked" 10 c.Core.Lpt.max_stack_count;
  (* dropping all of them: entry dies on the last *)
  for _ = 1 to 10 do
    Core.Lpt.stack_decr lpt id
  done;
  Alcotest.(check bool) "freed once stack refs vanish" false (Core.Lpt.is_live lpt id)

let test_split_counts_vs_plain_refops () =
  (* the split scheme must slash LP refcount traffic (Table 5.3) *)
  let traffic split_counts =
    let lpt, _ = mk_lpt ~size:64 ~split_counts () in
    for _ = 1 to 10 do
      let id = Core.Lpt.read_in lpt ~size:2 in
      for _ = 1 to 20 do
        Core.Lpt.stack_incr lpt id
      done;
      for _ = 1 to 20 do
        Core.Lpt.stack_decr lpt id
      done
    done;
    (Core.Lpt.counters lpt).Core.Lpt.refops
  in
  Alcotest.(check bool) "near order-of-magnitude reduction" true
    (traffic false > 5 * traffic true)

(* ---- simulator ---- *)

let synth_trace ?(length = 4000) ?(seed = 42) () =
  Trace.Preprocess.run (Trace.Synth.generate { Trace.Synth.default with length; seed })

(* The fingerprint is the cache-key contract: its exact text must not
   drift (a drift silently invalidates every persisted result), and the
   memoized digest must be the plain MD5 of it. *)
let test_config_fingerprint_text () =
  Alcotest.(check string) "golden fingerprint"
    "simconfig:v1 size=2048 policy=one arg=0x1.3333333333333p-1 \
     loc=0x1.3333333333333p-2 bind=0x1.47ae147ae147bp-7 \
     read=0x1.47ae147ae147bp-7 seed=1 split=false eager=false cache=none"
    (Core.Simulator.config_fingerprint Core.Simulator.default_config);
  let c =
    { Core.Simulator.default_config with
      table_size = 512; seed = 7; split_counts = true;
      cache = Some { Core.Simulator.cache_lines = 64; cache_line_size = 4 } }
  in
  Alcotest.(check string) "golden fingerprint with cache"
    "simconfig:v1 size=512 policy=one arg=0x1.3333333333333p-1 \
     loc=0x1.3333333333333p-2 bind=0x1.47ae147ae147bp-7 \
     read=0x1.47ae147ae147bp-7 seed=7 split=true eager=false cache=64/4"
    (Core.Simulator.config_fingerprint c)

let test_config_digest_memoized () =
  let c = Core.Simulator.default_config in
  Alcotest.(check string) "digest is MD5 of the fingerprint"
    (Digest.to_hex (Digest.string (Core.Simulator.config_fingerprint c)))
    (Core.Simulator.config_digest c);
  (* memoization: structurally equal configs share one rendered string *)
  let c' = { c with table_size = c.Core.Simulator.table_size } in
  Alcotest.(check bool) "fingerprint is computed once per config" true
    (Core.Simulator.config_fingerprint c == Core.Simulator.config_fingerprint c');
  Alcotest.(check bool) "distinct configs digest differently" true
    (Core.Simulator.config_digest c
     <> Core.Simulator.config_digest { c with Core.Simulator.seed = 2 })

let test_simulator_runs () =
  let trace = synth_trace () in
  let stats = Core.Simulator.run Core.Simulator.default_config trace in
  Alcotest.(check bool) "no overflow at 2048 entries" false stats.Core.Simulator.true_overflow;
  Alcotest.(check bool) "simulated all prims" true (stats.Core.Simulator.events > 3900);
  Alcotest.(check bool) "some hits" true (stats.Core.Simulator.lpt.Core.Lpt.hits > 0);
  Alcotest.(check bool) "some misses" true (stats.Core.Simulator.lpt.Core.Lpt.misses > 0);
  Alcotest.(check bool) "peak within table" true
    (stats.Core.Simulator.peak_lpt <= 2048);
  Alcotest.(check bool) "avg <= peak" true
    (stats.Core.Simulator.avg_lpt <= float_of_int stats.Core.Simulator.peak_lpt)

let test_simulator_deterministic () =
  let trace = synth_trace () in
  let s1 = Core.Simulator.run Core.Simulator.default_config trace in
  let s2 = Core.Simulator.run Core.Simulator.default_config trace in
  Alcotest.(check int) "same refops" s1.Core.Simulator.lpt.Core.Lpt.refops
    s2.Core.Simulator.lpt.Core.Lpt.refops;
  Alcotest.(check int) "same peak" s1.Core.Simulator.peak_lpt s2.Core.Simulator.peak_lpt

let test_simulator_seed_sensitivity () =
  let trace = synth_trace () in
  let s1 = Core.Simulator.run Core.Simulator.default_config trace in
  let s2 = Core.Simulator.run { Core.Simulator.default_config with seed = 99 } trace in
  Alcotest.(check bool) "different seeds, different runs" true
    (s1.Core.Simulator.lpt.Core.Lpt.refops <> s2.Core.Simulator.lpt.Core.Lpt.refops
     || s1.Core.Simulator.peak_lpt <> s2.Core.Simulator.peak_lpt)

let test_simulator_knee () =
  (* Fig 5.1's shape: below the knee the peak equals the table size
     (pseudo overflows clamp it); above it, growing the table leaves the
     peak unchanged *)
  let trace = synth_trace ~length:3000 () in
  let size, at_knee = Core.Simulator.min_table_size Core.Simulator.default_config trace in
  Alcotest.(check bool) "knee found" true (size > 4);
  Alcotest.(check int) "overflow-free at the knee" 0
    at_knee.Core.Simulator.lpt.Core.Lpt.pseudo_overflows;
  let bigger =
    Core.Simulator.run { Core.Simulator.default_config with table_size = 2 * size } trace
  in
  Alcotest.(check int) "peak is flat past the knee" at_knee.Core.Simulator.peak_lpt
    bigger.Core.Simulator.peak_lpt;
  let smaller =
    Core.Simulator.run { Core.Simulator.default_config with table_size = max 8 (size / 2) }
      trace
  in
  Alcotest.(check bool) "below the knee: overflows happen" true
    (smaller.Core.Simulator.lpt.Core.Lpt.pseudo_overflows > 0
     || smaller.Core.Simulator.true_overflow)

let test_knee_jobs_invariant () =
  (* the parallel probe runs must walk the same decision sequence as the
     sequential search: identical knee for every jobs count *)
  let trace = synth_trace ~length:3000 () in
  let seq, _ = Core.Simulator.min_table_size ~jobs:1 Core.Simulator.default_config trace in
  List.iter
    (fun jobs ->
       let par, stats =
         Core.Simulator.min_table_size ~jobs Core.Simulator.default_config trace
       in
       Alcotest.(check int) (Printf.sprintf "same knee with %d jobs" jobs) seq par;
       Alcotest.(check int) "overflow-free at the knee" 0
         stats.Core.Simulator.lpt.Core.Lpt.pseudo_overflows)
    [ 2; 3; 5 ]

let test_simulator_compress_all_lower_avg () =
  (* §5.2.3: Compress-All keeps average occupancy at or below
     Compress-One's (when overflows actually occur) *)
  let trace = synth_trace ~length:3000 () in
  let size, _ = Core.Simulator.min_table_size Core.Simulator.default_config trace in
  let small = max 16 (size * 2 / 3) in
  let run policy =
    Core.Simulator.run
      { Core.Simulator.default_config with table_size = small; policy } trace
  in
  let one = run Core.Lpt.Compress_one in
  let all = run Core.Lpt.Compress_all in
  if one.Core.Simulator.true_overflow || all.Core.Simulator.true_overflow then ()
  else
    Alcotest.(check bool) "compress-all <= compress-one average" true
      (all.Core.Simulator.avg_lpt <= one.Core.Simulator.avg_lpt +. 1.0)

let test_simulator_cache_comparison () =
  let trace = synth_trace () in
  let cfg =
    { Core.Simulator.default_config with
      table_size = 512;
      cache = Some { Core.Simulator.cache_lines = 512; cache_line_size = 1 } }
  in
  let stats = Core.Simulator.run cfg trace in
  Alcotest.(check bool) "cache exercised" true (stats.Core.Simulator.cache_accesses > 0);
  Alcotest.(check bool) "rates in range" true
    (Core.Simulator.lpt_hit_rate stats >= 0.
     && Core.Simulator.lpt_hit_rate stats <= 1.
     && Core.Simulator.cache_hit_rate stats >= 0.
     && Core.Simulator.cache_hit_rate stats <= 1.)

(* ---- traversal analysis (§5.3.1) ---- *)

let test_traversal_matches_prediction () =
  List.iter
    (fun src ->
       let d = Sexp.parse src in
       let misses_p, hits_p = Core.Traversal.predicted d in
       List.iter
         (fun order ->
            let r = Core.Traversal.simulate ~order d in
            Alcotest.(check int) (src ^ " misses") misses_p r.Core.Traversal.misses;
            Alcotest.(check int) (src ^ " hits") hits_p r.Core.Traversal.hits)
         [ Sexp.Tree.Pre; Sexp.Tree.In; Sexp.Tree.Post ])
    [ "(a)"; "(a b c)"; "(a (b c) d)"; "(((a b) c d) e f g)"; "(a (b (c (d e) f) g))" ]

let test_traversal_rate_approaches_75 () =
  let d = Sexp.Datum.of_ints (List.init 200 (fun i -> i)) in
  let r = Core.Traversal.simulate ~order:Sexp.Tree.Pre d in
  Alcotest.(check bool) "hit rate ~ 75%" true
    (Float.abs (r.Core.Traversal.hit_rate -. 0.75) < 0.01)

let gen_pure_list =
  QCheck.Gen.(
    let atom = map (fun n -> Sexp.Datum.Int n) (int_range 0 9) in
    let rec go depth =
      if depth = 0 then atom
      else
        frequency
          [ (3, atom);
            (2, int_range 1 5 >>= fun len ->
             map Sexp.Datum.list (list_repeat len (go (depth - 1)))) ]
    in
    int_range 1 6 >>= fun len -> map Sexp.Datum.list (list_repeat len (go 3)))

let prop_traversal =
  QCheck.Test.make ~name:"traversal simulation = n+p / 3n+3p+1 prediction" ~count:100
    (QCheck.make ~print:Sexp.to_string gen_pure_list) (fun d ->
      let misses_p, hits_p = Core.Traversal.predicted d in
      let r = Core.Traversal.simulate ~order:Sexp.Tree.In d in
      r.Core.Traversal.misses = misses_p && r.Core.Traversal.hits = hits_p)

let prop_overflow_mode_completes =
  (* whatever the table size, the simulator must process every primitive
     event (degrading to overflow mode rather than truncating) *)
  QCheck.Test.make ~name:"simulator completes at any table size" ~count:25
    QCheck.(4 -- 200) (fun size ->
      let trace = synth_trace ~length:1500 () in
      let stats =
        Core.Simulator.run { Core.Simulator.default_config with table_size = size } trace
      in
      stats.Core.Simulator.events
      = (let p = ref 0 in
         Array.iter
           (function Trace.Preprocess.Pprim _ -> incr p | _ -> ())
           trace.Trace.Preprocess.events;
         !p)
      && stats.Core.Simulator.peak_lpt <= size)

let prop_lpt_refcount_sanity =
  (* after an arbitrary sequence of reads/conses/drops, live entries have
     positive refcounts and the free list never overlaps live entries *)
  QCheck.Test.make ~name:"LPT conserves entries" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 60) (0 -- 2))
    (fun ops ->
      let lpt, _ = mk_lpt ~size:256 () in
      let held = ref [] in
      List.iter
        (fun op ->
           match op with
           | 0 ->
             let id = Core.Lpt.read_in lpt ~size:2 in
             Core.Lpt.stack_incr lpt id;
             held := id :: !held
           | 1 ->
             (match !held with
              | a :: b :: _ ->
                let z = Core.Lpt.cons lpt ~car:(Some a) ~cdr:(Some b) in
                Core.Lpt.stack_incr lpt z;
                held := z :: !held
              | _ -> ())
           | _ ->
             (match !held with
              | id :: rest ->
                Core.Lpt.stack_decr lpt id;
                held := rest
              | [] -> ()))
        ops;
      (* every held id is live with refcount >= 1 *)
      List.for_all
        (fun id -> Core.Lpt.is_live lpt id && Core.Lpt.refcount lpt id >= 1)
        !held)

let () =
  Alcotest.run "core"
    [ ("heap_model", [ Alcotest.test_case "addresses" `Quick test_heap_model ]);
      ("lpt",
       [ Alcotest.test_case "read-in and free" `Quick test_lpt_readin_and_free;
         Alcotest.test_case "split hit/miss" `Quick test_lpt_split_hit_miss;
         Alcotest.test_case "cons without heap" `Quick test_lpt_cons_no_heap;
         Alcotest.test_case "lazy child decrement" `Quick test_lpt_lazy_child_decrement;
         Alcotest.test_case "eager decrement" `Quick test_lpt_eager_decrement;
         Alcotest.test_case "rplaca" `Quick test_lpt_rplaca;
         Alcotest.test_case "rplaca same child" `Quick test_lpt_rplaca_same_child ]);
      ("overflow",
       [ Alcotest.test_case "pseudo overflow compresses" `Quick test_pseudo_overflow_compression;
         Alcotest.test_case "true overflow" `Quick test_true_overflow;
         Alcotest.test_case "cycle recovery" `Quick test_cycle_recovery ]);
      ("split_counts",
       [ Alcotest.test_case "stackbit transitions" `Quick test_split_counts;
         Alcotest.test_case "traffic reduction" `Quick test_split_counts_vs_plain_refops ]);
      ("simulator",
       [ Alcotest.test_case "fingerprint text" `Quick test_config_fingerprint_text;
         Alcotest.test_case "digest memoized" `Quick test_config_digest_memoized;
         Alcotest.test_case "runs" `Quick test_simulator_runs;
         Alcotest.test_case "deterministic" `Quick test_simulator_deterministic;
         Alcotest.test_case "seed sensitivity" `Quick test_simulator_seed_sensitivity;
         Alcotest.test_case "knee" `Quick test_simulator_knee;
         Alcotest.test_case "knee jobs-invariant" `Quick test_knee_jobs_invariant;
         Alcotest.test_case "compression policy" `Quick test_simulator_compress_all_lower_avg;
         Alcotest.test_case "cache comparison" `Quick test_simulator_cache_comparison ]);
      ("traversal",
       [ Alcotest.test_case "matches prediction" `Quick test_traversal_matches_prediction;
         Alcotest.test_case "75% limit" `Quick test_traversal_rate_approaches_75 ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_traversal; prop_lpt_refcount_sanity; prop_overflow_mode_completes ]) ]
