(* Tests for the Util.Parallel work pool: [map] must agree with
   [List.map] — same results, same order — for every domain count, keep
   balancing deterministic under uneven work, and re-raise worker
   exceptions. *)

let domains_under_test = [ 1; 2; 3; 8 ]

let test_map_matches_list_map () =
  List.iter
    (fun domains ->
       List.iter
         (fun n ->
            let xs = List.init n (fun i -> i) in
            Alcotest.(check (list int))
              (Printf.sprintf "square map, %d items, %d domains" n domains)
              (List.map (fun x -> x * x) xs)
              (Util.Parallel.map ~domains (fun x -> x * x) xs))
         [ 0; 1; 2; 7; 100 ])
    domains_under_test

let test_map_uneven_work () =
  (* items that take visibly different times must still land in order *)
  let xs = List.init 40 (fun i -> i) in
  let slow x =
    let spin = if x mod 7 = 0 then 20_000 else 10 in
    let acc = ref 0 in
    for i = 1 to spin do
      acc := !acc + (i mod 3)
    done;
    ignore !acc;
    2 * x
  in
  List.iter
    (fun domains ->
       Alcotest.(check (list int))
         (Printf.sprintf "uneven work, %d domains" domains)
         (List.map slow xs)
         (Util.Parallel.map ~domains slow xs))
    domains_under_test

let prop_map_equals_list_map =
  QCheck.Test.make ~name:"Parallel.map = List.map for any domain count" ~count:50
    QCheck.(pair (list int) (1 -- 8))
    (fun (xs, domains) ->
      Util.Parallel.map ~domains (fun x -> (x * 31) lxor 5) xs
      = List.map (fun x -> (x * 31) lxor 5) xs)

exception Boom

let test_exception_propagates () =
  List.iter
    (fun domains ->
       Alcotest.check_raises
         (Printf.sprintf "worker exception re-raised, %d domains" domains) Boom
         (fun () ->
            ignore
              (Util.Parallel.map ~domains
                 (fun x -> if x = 13 then raise Boom else x)
                 (List.init 20 (fun i -> i)))))
    domains_under_test

let test_nested_map_degrades () =
  (* a map inside a worker must fall back to sequential, not spawn *)
  let outer =
    Util.Parallel.map ~domains:4
      (fun i -> Util.Parallel.map ~domains:4 (fun j -> (i * 10) + j) [ 1; 2; 3 ])
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list (list int)))
    "nested results correct"
    [ [ 11; 12; 13 ]; [ 21; 22; 23 ]; [ 31; 32; 33 ]; [ 41; 42; 43 ] ]
    outer

let test_default_domains () =
  let saved = Util.Parallel.default_domains () in
  Util.Parallel.set_default_domains 3;
  Alcotest.(check int) "default set" 3 (Util.Parallel.default_domains ());
  Alcotest.(check (list int)) "map uses default" [ 2; 4; 6 ]
    (Util.Parallel.map (fun x -> 2 * x) [ 1; 2; 3 ]);
  Util.Parallel.set_default_domains 0;
  Alcotest.(check int) "clamped to 1" 1 (Util.Parallel.default_domains ());
  Util.Parallel.set_default_domains saved

let () =
  Alcotest.run "parallel"
    [ ("map",
       [ Alcotest.test_case "matches List.map" `Quick test_map_matches_list_map;
         Alcotest.test_case "uneven work, stable order" `Quick test_map_uneven_work;
         QCheck_alcotest.to_alcotest prop_map_equals_list_map;
         Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
         Alcotest.test_case "nested maps degrade" `Quick test_nested_map_degrades;
         Alcotest.test_case "default domain count" `Quick test_default_domains ]) ]
