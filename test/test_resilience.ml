(* Tests for the cluster resilience layer: the seeded chaos battery
   (network delay/drop/dup/reorder/partition plus slow-shard and
   crash-restart process faults) checked against a fault-free oracle,
   deadline propagation and router-side expiry, wire cancellation,
   hedged execution, circuit-breaker state, shard death mid-flight, the
   load-harness timeout accounting, and socket-shard revival.

   The chaos invariant, from the fault model: under any seeded plan,
   every submitted job gets exactly one reply; an [ok] reply is
   byte-identical to the fault-free run (modulo the answering shard,
   wall-clock, and cache flags); every other reply is one of the typed
   degradations.  No job is ever acked-and-lost. *)

module Router = Cluster.Router
module Breaker = Cluster.Breaker
module LG = Cluster.Loadgen

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ---- reply normalisation (see test_routing.ml) ---- *)

let strip name line =
  let marker = Printf.sprintf ",\"%s\":" name in
  let mn = String.length marker in
  let rec find i =
    if i + mn > String.length line then line
    else if String.sub line i mn = marker then begin
      let j = ref (i + mn) in
      if !j < String.length line && line.[!j] = '"' then begin
        incr j;
        while !j < String.length line && line.[!j] <> '"' do incr j done;
        incr j
      end
      else
        while !j < String.length line && line.[!j] <> ',' && line.[!j] <> '}' do
          incr j
        done;
      String.sub line 0 i ^ String.sub line !j (String.length line - !j)
    end
    else find (i + 1)
  in
  find 0

(* Fields that legitimately differ between a faulted routed run and the
   clean direct one: the answering shard, wall-clock, and whether the
   result came from a cache (a re-run or hedge may warm it anywhere). *)
let normalise line =
  let decache s =
    let marker = "\"cached\":true" in
    let mn = String.length marker in
    let b = Buffer.create (String.length s) in
    let i = ref 0 in
    while !i < String.length s do
      if !i + mn <= String.length s && String.sub s !i mn = marker then begin
        Buffer.add_string b "\"cached\":false";
        i := !i + mn
      end
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    Buffer.contents b
  in
  decache (strip "elapsed" (strip "shard" line))

let member path json =
  List.fold_left
    (fun acc name ->
       match acc with
       | Some j -> Server.Json.member name j
       | None -> None)
    (Some json) path

let int_at path json =
  match member path json with
  | Some (Server.Json.Int n) -> n
  | _ -> Alcotest.fail ("missing int field " ^ String.concat "." path)

(* ---- in-process shards ---- *)

let in_process_shard ?fault sid =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let svc =
    Server.Service.create ?fault ~shard_id:sid ~workers:2 ~queue_capacity:32 ()
  in
  let d =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr b in
        let oc = Unix.out_channel_of_descr (Unix.dup b) in
        ignore (Server.Service.serve_channels svc ic oc);
        Server.Service.shutdown svc;
        (try close_out oc with Sys_error _ -> ());
        (try close_in ic with Sys_error _ -> ()))
  in
  let ic = Unix.in_channel_of_descr a in
  let oc = Unix.out_channel_of_descr (Unix.dup a) in
  ((sid, Router.Channels (ic, oc)), d)

let with_router ?(n = 2) ?placement ?steal_min ?batch_max ?fault
    ?hedge_quantile ?hedge_floor ?breaker ?stuck_after ?svc_fault f =
  let shards, domains =
    List.split
      (List.init n (fun i -> in_process_shard ?fault:svc_fault (Printf.sprintf "s%d" i)))
  in
  let t =
    Router.create ?placement ?steal_min ?batch_max ?fault ?hedge_quantile
      ?hedge_floor ?breaker ?stuck_after ~shards ()
  in
  Fun.protect
    ~finally:(fun () ->
        Router.shutdown t;
        List.iter Domain.join domains)
    (fun () -> f t)

(* ---- jobs and the fault-free oracle ---- *)

let saved_synth_trace =
  lazy
    (let path = Filename.temp_file "resilience" ".smtb" in
     Trace.Io.save ~format:Trace.Io.Binary path
       (Trace.Synth.generate { Trace.Synth.default with length = 3000 });
     path)

let job_line ?deadline ?id seed =
  let extra =
    (match deadline with
     | Some d -> Printf.sprintf " (deadline %g)" d
     | None -> "")
    ^ (match id with Some n -> Printf.sprintf " (id %d)" n | None -> "")
  in
  Printf.sprintf "(simulate (trace-file \"%s\") (size 64) (seed %d)%s)"
    (Lazy.force saved_synth_trace) seed extra

(* The oracle: each seed's reply from a clean single-process service,
   normalised.  Computed once; chaos runs must reproduce these bytes. *)
let oracle =
  lazy
    (let svc = Server.Service.create ~workers:2 ~queue_capacity:32 () in
     Fun.protect
       ~finally:(fun () -> Server.Service.shutdown svc)
       (fun () ->
          let tbl = Hashtbl.create 64 in
          for seed = 0 to 63 do
            match Server.Service.handle_line svc (job_line seed) with
            | [ reply ] -> Hashtbl.replace tbl seed (normalise reply)
            | _ -> Alcotest.fail "oracle: one reply expected"
          done;
          tbl))

let expect_seed seed = Hashtbl.find (Lazy.force oracle) seed

let typed_statuses =
  [ "\"status\":\"overloaded\""; "\"status\":\"shard_down\"";
    "\"status\":\"timeout\""; "\"status\":\"cancelled\"" ]

let check_reply ~what seed reply =
  if contains reply "\"status\":\"ok\"" then
    Alcotest.(check string)
      (Printf.sprintf "%s: ok reply for seed %d matches the oracle" what seed)
      (expect_seed seed) (normalise reply)
  else
    Alcotest.(check bool)
      (Printf.sprintf "%s: non-ok reply for seed %d is typed (%s)" what seed reply)
      true
      (List.exists (contains reply) typed_statuses)

(* ---- the chaos battery ---- *)

(* 64 seeded plans x 16 jobs = 1024 scenarios: every routed send draws
   network chaos, every dispatch draws process chaos, and each job must
   still resolve to oracle bytes or a typed degradation.  Crash-restart
   on a [Channels] shard is a permanent death (nothing respawns a
   socketpair), so a run can legitimately end with both shards down —
   the typed [shard_down] arm — but most runs complete ok. *)
let chaos_config seed =
  { Fault.Plan.default with
    Fault.Plan.seed;
    net_delay = 0.10; net_delay_s = 0.002;
    net_drop = 0.05;
    net_dup = 0.05;
    net_reorder = 0.05;
    partition = 0.02; partition_s = 0.05;
    slow_shard = 0.05; slow_s = 0.02;
    crash_restart = 0.02 }

let test_chaos_battery () =
  let runs = 64 and jobs = 16 in
  let scenarios = ref 0 in
  let ok_total = ref 0 in
  for run = 0 to runs - 1 do
    let plan = Fault.Plan.create (chaos_config run) in
    with_router ~n:2 ~fault:plan ~stuck_after:0.05 ~hedge_quantile:0.5
      ~hedge_floor:0.02 @@ fun t ->
    let joins =
      List.init jobs (fun seed ->
          (seed, Router.submit_line t (job_line ~deadline:30.0 seed)))
    in
    List.iter
      (fun (seed, join) ->
         let reply = join () in
         incr scenarios;
         if contains reply "\"status\":\"ok\"" then incr ok_total;
         check_reply ~what:(Printf.sprintf "plan %d" run) seed reply)
      joins
  done;
  Alcotest.(check bool)
    (Printf.sprintf "battery covered %d scenarios (>= 1000)" !scenarios)
    true (!scenarios >= 1000);
  Alcotest.(check bool)
    (Printf.sprintf "most scenarios complete ok (%d/%d)" !ok_total !scenarios)
    true (!ok_total > !scenarios / 2)

(* ---- deadline propagation ---- *)

let test_deadline_immediate () =
  with_router ~n:1 @@ fun t ->
  let reply = Router.submit_line t (job_line ~deadline:0.000001 0) () in
  Alcotest.(check bool) "already-expired budget earns the typed timeout" true
    (contains reply "\"status\":\"timeout\"");
  (* the shard is untouched and still serves *)
  let ok = Router.submit_line t (job_line 1) () in
  Alcotest.(check string) "shard still healthy afterwards" (expect_seed 1)
    (normalise ok)

let test_deadline_expires_in_router () =
  (* a total one-way partition: every send toward the shard (jobs, sync
     pings, cancels) is swallowed, so only the router's pacer can answer
     — the deadline must fire there, with its distinguishing message *)
  let plan =
    Fault.Plan.create
      { Fault.Plan.default with Fault.Plan.partition = 1.0; partition_s = 2.0 }
  in
  with_router ~n:1 ~fault:plan @@ fun t ->
  let t0 = Unix.gettimeofday () in
  let reply = Router.submit_line t (job_line ~deadline:0.1 0) () in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "typed timeout from the router" true
    (contains reply "\"status\":\"timeout\""
     && contains reply "deadline exceeded in router");
  Alcotest.(check bool)
    (Printf.sprintf "answered near the deadline, not the partition (%.3fs)" dt)
    true (dt < 5.0);
  let stats = Router.stats_json t in
  Alcotest.(check bool) "deadline expiry counted" true
    (int_at [ "resilience"; "deadline_expired" ] stats >= 1)

(* ---- wire cancellation ---- *)

let test_wire_cancel () =
  (* the shard sleeps ~0.5s on every job, so the cancel races nothing *)
  let slow =
    Fault.Plan.create
      { Fault.Plan.default with Fault.Plan.delay = 1.0; delay_s = 0.5 }
  in
  with_router ~n:1 ~svc_fault:slow @@ fun t ->
  let join = Router.submit_line t (job_line ~id:77 0) in
  Unix.sleepf 0.05;
  Router.cancel_client t 77;
  let reply = join () in
  Alcotest.(check bool) "typed cancelled reply in the job's own slot" true
    (contains reply "\"status\":\"cancelled\""
     && contains reply "cancelled by client");
  let stats = Router.stats_json t in
  Alcotest.(check bool) "cross-wire cancel forwarded" true
    (int_at [ "resilience"; "cancels" ] stats >= 1)

(* ---- hedged execution ---- *)

let test_hedging_under_slow_shards () =
  (* ~30% of dispatches stall 0.1s; with warm latency histograms the
     pacer hedges the stalled jobs onto the other shard and the fast
     copy wins.  All replies must still be oracle bytes. *)
  let plan =
    Fault.Plan.create
      { Fault.Plan.default with
        Fault.Plan.seed = 5; slow_shard = 0.3; slow_s = 0.1 }
  in
  with_router ~n:2 ~placement:Router.Uniform ~fault:plan ~hedge_quantile:0.5
    ~hedge_floor:0.02 @@ fun t ->
  (* warm: enough sequential jobs that both shards pass the 16-sample
     floor the hedge trigger requires *)
  for seed = 0 to 39 do
    check_reply ~what:"hedge warm" seed (Router.submit_line t (job_line seed) ())
  done;
  for seed = 40 to 55 do
    check_reply ~what:"hedge probe" seed (Router.submit_line t (job_line seed) ())
  done;
  let stats = Router.stats_json t in
  Alcotest.(check bool)
    (Printf.sprintf "hedges fired (%d)" (int_at [ "resilience"; "hedged" ] stats))
    true
    (int_at [ "resilience"; "hedged" ] stats >= 1)

(* ---- circuit breaker unit ---- *)

let test_breaker_states () =
  let cfg =
    { Breaker.failures = 2; cooldown = 0.05; rtt_limit = 0.1; queue_limit = 3 }
  in
  let opened = ref 0 in
  let b = Breaker.create ~config:cfg ~on_open:(fun () -> incr opened) () in
  Alcotest.(check bool) "closed admits" true (Breaker.allow b);
  Breaker.record_failure b;
  Alcotest.(check bool) "one failure stays closed" true (Breaker.allow b);
  Breaker.record_failure b;
  Alcotest.(check string) "opens at the failure threshold" "open"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check bool) "open refuses" false (Breaker.allow b);
  Alcotest.(check int) "transition counted" 1 (Breaker.opens b);
  Alcotest.(check int) "hook fired" 1 !opened;
  Unix.sleepf 0.06;
  Alcotest.(check string) "cooldown elapses to half-open" "half_open"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check bool) "half-open admits one trial" true (Breaker.allow b);
  Alcotest.(check bool) "the trial slot is consumed" false (Breaker.allow b);
  Breaker.record_success b;
  Alcotest.(check string) "trial success closes" "closed"
    (Breaker.state_name (Breaker.state b));
  Alcotest.(check bool) "closed again admits" true (Breaker.allow b);
  (* a failed trial re-arms the cooldown *)
  Breaker.record_failure b;
  Breaker.record_failure b;
  Unix.sleepf 0.06;
  Alcotest.(check bool) "second trial admitted" true (Breaker.allow b);
  Breaker.record_failure b;
  Alcotest.(check bool) "failed trial refuses again" false (Breaker.allow b);
  Alcotest.(check string) "re-armed open" "open"
    (Breaker.state_name (Breaker.state b))

let test_breaker_rtt_and_queue () =
  let cfg =
    { Breaker.failures = 2; cooldown = 10.0; rtt_limit = 0.1; queue_limit = 3 }
  in
  let b = Breaker.create ~config:cfg () in
  Breaker.record_rtt b 0.5;
  Breaker.record_rtt b 0.5;
  Alcotest.(check string) "slow RTTs open the breaker" "open"
    (Breaker.state_name (Breaker.state b));
  let b2 = Breaker.create ~config:cfg () in
  Breaker.record_rtt b2 0.5;
  Breaker.record_rtt b2 0.01;
  Breaker.record_rtt b2 0.5;
  Alcotest.(check string) "a fast RTT resets the streak" "closed"
    (Breaker.state_name (Breaker.state b2));
  Breaker.note_queue_depth b2 9;
  Alcotest.(check bool) "deep queue refuses admission" false (Breaker.allow b2);
  Alcotest.(check string) "without changing state" "closed"
    (Breaker.state_name (Breaker.state b2));
  Breaker.note_queue_depth b2 1;
  Alcotest.(check bool) "drained queue admits again" true (Breaker.allow b2);
  Breaker.force_open b2;
  Alcotest.(check string) "force_open is the conviction path" "open"
    (Breaker.state_name (Breaker.state b2));
  Alcotest.(check bool) "and refuses" false (Breaker.allow b2)

(* ---- shard death mid-flight (qcheck) ---- *)

let prop_death_rerun_once =
  QCheck.Test.make ~count:12
    ~name:"jobs on a shard killed mid-flight re-run once, byte-identical"
    QCheck.(pair (0 -- 1000) (0 -- 25))
    (fun (_seed, delay_ms) ->
       with_router ~n:2 @@ fun t ->
       let joins =
         List.init 10 (fun seed -> (seed, Router.submit_line t (job_line seed)))
       in
       Unix.sleepf (float_of_int delay_ms /. 1000.0);
       Router.mark_down t "s0";
       (* exactly one reply per job (the join returns once), and every
          reply carries the oracle bytes: a job the dead shard already
          ran is not double-answered, a job it lost is re-run on the
          survivor *)
       List.for_all
         (fun (seed, join) ->
            let reply = join () in
            contains reply "\"status\":\"ok\""
            && String.equal (expect_seed seed) (normalise reply))
         joins)

(* ---- loadgen accounting for the new typed replies ---- *)

let test_loadgen_timeout_accounting () =
  let calls = Atomic.make 0 in
  let saw_deadline = Atomic.make false in
  let submit line () =
    if contains line "(deadline 2.5)" then Atomic.set saw_deadline true;
    match Atomic.fetch_and_add calls 1 mod 4 with
    | 0 -> "{\"status\":\"ok\",\"cached\":false,\"shard\":\"s0\"}"
    | 1 -> "{\"status\":\"timeout\",\"error\":\"deadline exceeded in router\"}"
    | 2 -> "{\"status\":\"cancelled\",\"shard\":\"s1\"}"
    | _ -> "{\"status\":\"overloaded\",\"shard\":\"s1\"}"
  in
  let cfg =
    { LG.default with
      LG.requests = 80; clients = 4; universe = 8; seed = 3;
      deadline = Some 2.5 }
  in
  let r = LG.run ~submit cfg in
  Atomic.set calls (Atomic.get calls);
  Alcotest.(check bool) "jobs carry the configured deadline" true
    (Atomic.get saw_deadline);
  Alcotest.(check int) "statuses partition the replies" 80
    (r.LG.ok + r.LG.overloaded + r.LG.shard_down + r.LG.timeouts + r.LG.cancelled
     + r.LG.failed);
  Alcotest.(check int) "timeouts tallied in their own bucket" 20 r.LG.timeouts;
  Alcotest.(check int) "cancellations tallied in their own bucket" 20
    r.LG.cancelled;
  Alcotest.(check int) "typed degradations are not failures" 0 r.LG.failed;
  let json = Server.Json.to_string (LG.report_json r) in
  Alcotest.(check bool) "report carries the new buckets" true
    (contains json "\"timeouts\":20" && contains json "\"cancelled\":20")

(* ---- socket shard crash-restart and revival ---- *)

let test_socket_revive_no_double_count () =
  let path = Filename.temp_file "resilience" ".sock" in
  Sys.remove path;
  let serve_at path =
    let svc = Server.Service.create ~shard_id:"b0" ~workers:2 ~queue_capacity:32 () in
    let d =
      Domain.spawn (fun () ->
          Server.Service.serve_socket svc ~path;
          Server.Service.shutdown svc)
    in
    let deadline = Unix.gettimeofday () +. 5.0 in
    while not (Sys.file_exists path) && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.01
    done;
    Alcotest.(check bool) "server bound its socket" true (Sys.file_exists path);
    d
  in
  let quit_at path =
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | fd ->
      (try
         Unix.connect fd (Unix.ADDR_UNIX path);
         let oc = Unix.out_channel_of_descr fd in
         output_string oc "(quit)\n";
         flush oc;
         close_out oc
       with Unix.Unix_error _ | Sys_error _ ->
         (try Unix.close fd with Unix.Unix_error _ -> ()))
  in
  let d1 = serve_at path in
  let t = Router.create ~shards:[ ("b0", Router.Socket path) ] () in
  let d2 =
    Fun.protect
      ~finally:(fun () -> Router.shutdown t)
      (fun () ->
         let r1 = Router.submit_line t (job_line 1) () in
         Alcotest.(check string) "served before the crash" (expect_seed 1)
           (normalise r1);
         (* crash: the shard dies and its socket goes away *)
         Router.mark_down t "b0";
         quit_at path;
         Domain.join d1;
         let down = Router.submit_line t (job_line 2) () in
         Alcotest.(check bool) "down window answers typed shard_down" true
           (contains down "\"status\":\"shard_down\"");
         (* restart: a fresh process binds the same path (atomic replace
            of anything stale), and the router re-adopts it *)
         let d2 = serve_at path in
         Alcotest.(check bool) "revive re-adopts the returned shard" true
           (Router.revive t "b0");
         Alcotest.(check (list string)) "alive again" [ "b0" ]
           (Router.alive_ids t);
         let r2 = Router.submit_line t (job_line 3) () in
         Alcotest.(check string) "served after the restart" (expect_seed 3)
           (normalise r2);
         let stats = Router.stats_json t in
         Alcotest.(check int) "no double-count: the shard exists once" 1
           (int_at [ "shards_total" ] stats);
         Alcotest.(check int) "and is healthy once" 1
           (int_at [ "shards_healthy" ] stats);
         Alcotest.(check int) "each served job routed exactly once" 2
           (int_at [ "shards"; "b0"; "routed" ] stats);
         Alcotest.(check bool) "revival counted" true
           (int_at [ "resilience"; "revivals" ] stats >= 1);
         d2)
  in
  (* the shard serves sessions sequentially, so the quit can only be
     accepted once the router's own connection is gone — after shutdown *)
  quit_at path;
  Domain.join d2

let () =
  Alcotest.run "resilience"
    [ ("chaos",
       [ Alcotest.test_case "seeded battery vs fault-free oracle" `Slow
           test_chaos_battery ]);
      ("deadline",
       [ Alcotest.test_case "expired budget answers immediately" `Quick
           test_deadline_immediate;
         Alcotest.test_case "router expiry under total partition" `Quick
           test_deadline_expires_in_router ]);
      ("cancel",
       [ Alcotest.test_case "wire cancel frees the slot" `Quick test_wire_cancel ]);
      ("hedging",
       [ Alcotest.test_case "slow dispatches get hedged" `Quick
           test_hedging_under_slow_shards ]);
      ("breaker",
       [ Alcotest.test_case "state machine" `Quick test_breaker_states;
         Alcotest.test_case "rtt and queue signals" `Quick
           test_breaker_rtt_and_queue ]);
      ("death",
       [ QCheck_alcotest.to_alcotest prop_death_rerun_once ]);
      ("loadgen",
       [ Alcotest.test_case "timeout and cancel buckets" `Quick
           test_loadgen_timeout_accounting ]);
      ("revive",
       [ Alcotest.test_case "socket crash-restart without double-count" `Quick
           test_socket_revive_no_double_count ]) ]
