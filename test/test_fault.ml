(* Fault-injection tests: deterministic seeded plans, scheduler
   retry/backoff/deadline behaviour, priority shedding and the service
   overload ladder, crash-safe cache persistence under torn and failed
   writes, wire-garbage handling, and the 60-job storm acceptance test
   (every job completes with a fault-free-identical result or a typed
   error; the pool survives). *)

module P = Fault.Plan
module Sch = Server.Scheduler

let ok = function
  | Ok v -> v
  | Error _ -> Alcotest.fail "unexpected submit error"

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

(* ---- the plan itself ---- *)

let mixed_cfg seed =
  { P.default with seed; write_fail = 0.2; torn_write = 0.15; crash = 0.2;
    delay = 0.2; delay_s = 0.001; garbage = 0.4 }

let write_seq plan site n =
  List.init n (fun _ ->
      match P.on_write plan ~site with
      | None -> "-"
      | Some P.Write_error -> "E"
      | Some (P.Torn_write f) -> Printf.sprintf "T%.4f" f)

let job_seq plan site n =
  List.init n (fun _ ->
      match P.on_job plan ~site with
      | None -> "-"
      | Some P.Crash -> "C"
      | Some (P.Delay s) -> Printf.sprintf "D%.5f" s)

let test_plan_deterministic () =
  let a = P.create (mixed_cfg 42) and b = P.create (mixed_cfg 42) in
  Alcotest.(check (list string)) "same seed, same write schedule"
    (write_seq a "cache.store" 300) (write_seq b "cache.store" 300);
  Alcotest.(check (list string)) "same seed, same job schedule"
    (job_seq a "sched.job" 300) (job_seq b "sched.job" 300);
  let c = P.create (mixed_cfg 43) in
  Alcotest.(check bool) "different seed, different schedule" true
    (write_seq (P.create (mixed_cfg 42)) "cache.store" 300
     <> write_seq c "cache.store" 300);
  (* sites draw independent streams *)
  let d = P.create (mixed_cfg 42) in
  Alcotest.(check bool) "sites are independent streams" true
    (write_seq d "cache.store" 300 <> write_seq d "trace.save" 300)

let test_plan_rates () =
  let plan = P.create { P.default with seed = 7; write_fail = 0.3; torn_write = 0.2 } in
  let n = 2000 in
  let faults =
    List.length (List.filter (fun s -> s <> "-") (write_seq plan "s" n))
  in
  let rate = float_of_int faults /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "injection rate %.3f tracks 0.5" rate) true
    (rate > 0.44 && rate < 0.56);
  Alcotest.(check int) "counts agree with draws" faults (P.total plan)

let test_plan_validation () =
  let bad cfg =
    match P.create cfg with
    | (_ : P.t) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "probability > 1 rejected" true
    (bad { P.default with write_fail = 1.5 });
  Alcotest.(check bool) "negative probability rejected" true
    (bad { P.default with crash = -0.1 });
  Alcotest.(check bool) "write_fail + torn_write > 1 rejected" true
    (bad { P.default with write_fail = 0.7; torn_write = 0.7 });
  Alcotest.(check bool) "negative delay rejected" true
    (bad { P.default with delay_s = -1. })

let test_plan_file_roundtrip () =
  let cfg = mixed_cfg 99 in
  (match P.config_of_sexp (P.to_sexp cfg) with
   | Ok back -> Alcotest.(check bool) "sexp round-trip" true (back = cfg)
   | Error msg -> Alcotest.fail msg);
  let path = Filename.temp_file "plan" ".sexp" in
  let oc = open_out path in
  output_string oc (Sexp.to_string (P.to_sexp cfg));
  close_out oc;
  (match P.load path with
   | Ok plan -> Alcotest.(check bool) "loaded config matches" true (P.config plan = cfg)
   | Error msg -> Alcotest.fail msg);
  Sys.remove path;
  (match P.load "/nonexistent/fault.plan" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing plan file must be an error");
  let path = Filename.temp_file "plan" ".sexp" in
  let oc = open_out path in
  output_string oc "(not-a-plan)";
  close_out oc;
  (match P.load path with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "malformed plan must be an error");
  Sys.remove path

(* ---- scheduler: retry, deadline, shed ---- *)

let test_retry_recovers () =
  let reg = Obs.Registry.create () in
  let s = Sch.create ~metrics:reg ~backoff:0.001 ~workers:1 ~capacity:4 () in
  let attempts = Atomic.make 0 in
  let t =
    ok
      (Sch.submit s ~retries:3 (fun ~should_stop:_ ->
           if Atomic.fetch_and_add attempts 1 < 2 then failwith "flaky" else 7))
  in
  (match Sch.await s t with
   | Sch.Done 7 -> ()
   | _ -> Alcotest.fail "flaky job must succeed within its retry budget");
  Alcotest.(check int) "two retries burned" 2 (Sch.stats s).Sch.retried;
  Alcotest.(check int) "three attempts run" 3 (Atomic.get attempts);
  Alcotest.(check int) "small_jobs_retried_total" 2
    (Obs.Metric.Counter.get (Obs.Registry.counter reg "small_jobs_retried_total"));
  Sch.shutdown s

let test_retry_budget_exhausted () =
  let s = Sch.create ~backoff:0.001 ~workers:1 ~capacity:4 () in
  let attempts = Atomic.make 0 in
  let t =
    ok
      (Sch.submit s ~retries:2 (fun ~should_stop:_ ->
           Atomic.incr attempts;
           failwith "always"))
  in
  (match Sch.await s t with
   | Sch.Failed msg ->
     Alcotest.(check bool) "failure text survives retries" true (contains msg "always")
   | _ -> Alcotest.fail "exhausted budget must be Failed");
  Alcotest.(check int) "1 + 2 retries attempts" 3 (Atomic.get attempts);
  Sch.shutdown s

(* The deadline is fixed at the FIRST attempt's start: a raising job
   cannot buy itself unbounded time through its retry budget. *)
let test_retry_respects_deadline () =
  let s = Sch.create ~backoff:0.02 ~workers:1 ~capacity:4 () in
  let attempts = Atomic.make 0 in
  let t =
    ok
      (Sch.submit s ~timeout:0.05 ~retries:1000 (fun ~should_stop:_ ->
           Atomic.incr attempts;
           Unix.sleepf 0.02;
           failwith "flaky"))
  in
  (match Sch.await s t with
   | Sch.Timed_out | Sch.Failed _ -> ()
   | _ -> Alcotest.fail "job past its deadline must not keep retrying");
  Alcotest.(check bool)
    (Printf.sprintf "deadline bounded the retries (%d attempts)" (Atomic.get attempts))
    true
    (Atomic.get attempts < 10);
  Sch.shutdown s

let test_shed_lower () =
  let reg = Obs.Registry.create () in
  let s = Sch.create ~metrics:reg ~workers:1 ~capacity:2 () in
  let gate = Atomic.make false in
  let blocker ~should_stop:_ =
    while not (Atomic.get gate) do
      Domain.cpu_relax ()
    done;
    0
  in
  let t_run = ok (Sch.submit s blocker) in
  let rec wait_running n =
    if (Sch.stats s).Sch.running = 1 then ()
    else if n = 0 then Alcotest.fail "blocker never started"
    else (Unix.sleepf 0.002; wait_running (n - 1))
  in
  wait_running 2000;
  let t_low = ok (Sch.submit s ~priority:0 (fun ~should_stop:_ -> 1)) in
  let t_mid = ok (Sch.submit s ~priority:1 (fun ~should_stop:_ -> 2)) in
  (match Sch.submit s (fun ~should_stop:_ -> 3) with
   | Error `Queue_full -> ()
   | _ -> Alcotest.fail "queue must be full");
  (* shedding picks the LOWEST priority strictly below the bar *)
  Alcotest.(check bool) "shed makes room" true (Sch.shed_lower s ~priority:2);
  (match Sch.await s t_low with
   | Sch.Shed -> ()
   | _ -> Alcotest.fail "lowest-priority job must be the one shed");
  let t_new = ok (Sch.submit s ~priority:2 (fun ~should_stop:_ -> 4)) in
  (* nothing strictly below priority 0 remains *)
  Alcotest.(check bool) "no victim below lowest" false (Sch.shed_lower s ~priority:0);
  Atomic.set gate true;
  (match Sch.await s t_run, Sch.await s t_mid, Sch.await s t_new with
   | Sch.Done 0, Sch.Done 2, Sch.Done 4 -> ()
   | _ -> Alcotest.fail "surviving jobs must complete");
  Alcotest.(check int) "shed counted" 1 (Sch.stats s).Sch.shed;
  Alcotest.(check int) "shed outcome metric" 1
    (Obs.Metric.Counter.get
       (Obs.Registry.counter reg ~labels:[ ("outcome", "shed") ]
          "small_sched_jobs_total"));
  Sch.shutdown s

(* ---- result cache: detect, quarantine, recompute ---- *)

let cache_file dir key = Filename.concat (Filename.concat dir (String.sub key 0 2)) (key ^ ".result")

let test_cache_detects_corruption () =
  let dir = temp_dir "faultcache" in
  let reg = Obs.Registry.create () in
  let c = Server.Result_cache.create ~dir () in
  let k = Server.Result_cache.key ~trace_digest:"t" ~job_digest:"j" in
  Server.Result_cache.store c k "precious result";
  let path = cache_file dir k in
  (* flip one payload byte on disk *)
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string raw in
  let pos = Bytes.length b - 3 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  (* a fresh instance (cold memory) must detect, quarantine, and miss *)
  let c2 = Server.Result_cache.create ~metrics:reg ~dir () in
  Alcotest.(check (option string)) "corrupt entry is a miss" None
    (Server.Result_cache.find c2 k);
  Alcotest.(check int) "corrupt counted" 1
    (Server.Result_cache.stats c2).Server.Result_cache.corrupt;
  Alcotest.(check int) "small_cache_corrupt_total" 1
    (Obs.Metric.Counter.get (Obs.Registry.counter reg "small_cache_corrupt_total"));
  Alcotest.(check bool) "quarantined alongside" true
    (Sys.file_exists (path ^ ".corrupt"));
  Alcotest.(check bool) "bad entry removed" false (Sys.file_exists path);
  (* recompute-and-store heals the entry *)
  Server.Result_cache.store c2 k "precious result";
  let c3 = Server.Result_cache.create ~dir () in
  Alcotest.(check (option string)) "healed entry readable" (Some "precious result")
    (Server.Result_cache.find c3 k)

let test_cache_rejects_foreign_file () =
  let dir = temp_dir "faultcache" in
  let k = Server.Result_cache.key ~trace_digest:"x" ~job_digest:"y" in
  let path = cache_file dir k in
  let rec mkdir_p d =
    if not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mkdir_p (Filename.dirname path);
  let oc = open_out_bin path in
  output_string oc "just some bytes, no header";
  close_out oc;
  let c = Server.Result_cache.create ~dir () in
  Alcotest.(check (option string)) "headerless file is a miss" None
    (Server.Result_cache.find c k);
  Alcotest.(check int) "counted corrupt" 1
    (Server.Result_cache.stats c).Server.Result_cache.corrupt

let test_cache_torn_write_detected () =
  let dir = temp_dir "faultcache" in
  let plan = P.create { P.default with seed = 5; torn_write = 1.0 } in
  let c = Server.Result_cache.create ~dir ~fault:plan () in
  let k = Server.Result_cache.key ~trace_digest:"t" ~job_digest:"torn" in
  Server.Result_cache.store c k "a value that will tear on disk";
  (* same instance still serves from memory (degraded, not wrong) *)
  Alcotest.(check (option string)) "memory entry survives"
    (Some "a value that will tear on disk") (Server.Result_cache.find c k);
  (* a fresh instance sees the torn file, quarantines, misses *)
  let c2 = Server.Result_cache.create ~dir () in
  Alcotest.(check (option string)) "torn disk entry never served" None
    (Server.Result_cache.find c2 k);
  Alcotest.(check int) "quarantined" 1
    (Server.Result_cache.stats c2).Server.Result_cache.corrupt

let test_cache_write_error_degrades () =
  let dir = temp_dir "faultcache" in
  let reg = Obs.Registry.create () in
  let plan = P.create { P.default with seed = 5; write_fail = 1.0 } in
  let c = Server.Result_cache.create ~metrics:reg ~dir ~fault:plan () in
  let k = Server.Result_cache.key ~trace_digest:"t" ~job_digest:"werr" in
  Server.Result_cache.store c k "value";
  Alcotest.(check (option string)) "memory entry kept" (Some "value")
    (Server.Result_cache.find c k);
  Alcotest.(check int) "write error counted" 1
    (Server.Result_cache.stats c).Server.Result_cache.write_errors;
  Alcotest.(check int) "small_cache_write_errors_total" 1
    (Obs.Metric.Counter.get (Obs.Registry.counter reg "small_cache_write_errors_total"));
  Alcotest.(check bool) "nothing landed on disk" false
    (Sys.file_exists (cache_file dir k))

(* Kill-mid-store: a concurrent reader over the same directory must only
   ever observe a full value or a miss — never a partial write.  The
   torn-write fault makes half-written files actually land, so this
   exercises the read-side digest check, not just rename atomicity. *)
let test_cache_no_partial_reads () =
  let dir = temp_dir "faultcache" in
  let plan = P.create { P.default with seed = 21; torn_write = 0.5 } in
  let value i = Printf.sprintf "value-%d-%s" i (String.make 64 'v') in
  let keys =
    Array.init 8 (fun i ->
        Server.Result_cache.key ~trace_digest:"t"
          ~job_digest:(Printf.sprintf "j%d" i))
  in
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let c = Server.Result_cache.create ~dir ~fault:plan () in
        for round = 1 to 50 do
          Array.iteri (fun i k -> Server.Result_cache.store c k (value i)) keys;
          ignore round
        done;
        Atomic.set stop true)
  in
  let anomalies = ref [] in
  while not (Atomic.get stop) do
    (* a fresh instance per sweep: always reads the disk, cold memory *)
    let reader = Server.Result_cache.create ~dir () in
    Array.iteri
      (fun i k ->
         match Server.Result_cache.find reader k with
         | None -> ()
         | Some v when v = value i -> ()
         | Some v ->
           anomalies := Printf.sprintf "key %d: %d bytes" i (String.length v) :: !anomalies)
      keys
  done;
  Domain.join writer;
  Alcotest.(check (list string)) "no partial value ever observed" [] !anomalies

(* ---- service: wire garbage, overload ladder, storm ---- *)

let synth_capture = lazy (Trace.Synth.generate { Trace.Synth.default with length = 2000 })

let saved_trace = lazy (
  let path = Filename.temp_file "faultsynth" ".smtb" in
  Trace.Io.save ~format:Trace.Io.Binary path (Lazy.force synth_capture);
  path)

let sim_job ?(priority = 0) seed =
  { Server.Job.source = Server.Job.Trace_file (Lazy.force saved_trace);
    spec =
      Server.Job.Simulate { Core.Simulator.default_config with table_size = 64; seed };
    timeout = None; priority; deadline = None; wire_id = None }

let test_wire_garbage_never_escapes () =
  let plan = P.create { P.default with seed = 17; garbage = 1.0 } in
  let svc = Server.Service.create ~fault:plan ~workers:1 ~queue_capacity:8 () in
  Fun.protect ~finally:(fun () -> Server.Service.shutdown svc) @@ fun () ->
  let request = Sexp.to_string (Server.Job.to_sexp (sim_job 1)) in
  let oversize_seen = ref false in
  for _ = 1 to 40 do
    (* every line is garbled (truncated, byte-flipped, or oversized);
       each must yield exactly one well-formed response line *)
    match Server.Service.handle_line svc request with
    | [ resp ] ->
      Alcotest.(check bool) "response is a status line" true
        (contains resp "\"status\":");
      if contains resp "request too large" then oversize_seen := true
    | other ->
      Alcotest.failf "expected one response line, got %d" (List.length other)
  done;
  Alcotest.(check bool) "the oversize arm was exercised" true !oversize_seen;
  let counts = P.counts plan in
  Alcotest.(check int) "every line drew a garbage fault" 40
    (List.assoc "garbage" counts)

let test_overload_ladder () =
  (* delay 1.0 keeps the single worker busy long enough to fill the queue *)
  let plan = P.create { P.default with seed = 3; delay = 1.0; delay_s = 0.5 } in
  let svc = Server.Service.create ~fault:plan ~workers:1 ~queue_capacity:1 () in
  Fun.protect ~finally:(fun () -> Server.Service.shutdown svc) @@ fun () ->
  let join_a = ok (Server.Service.submit svc (sim_job ~priority:0 1)) in
  (* give the worker a moment to pop job A, leaving the queue empty *)
  let rec wait_started n =
    if (Server.Service.scheduler_stats svc).Sch.running = 1 then ()
    else if n = 0 then Alcotest.fail "first job never started"
    else (Unix.sleepf 0.002; wait_started (n - 1))
  in
  wait_started 2000;
  let join_b = ok (Server.Service.submit svc (sim_job ~priority:0 2)) in
  (* rung 1: a higher-priority job sheds the queued lower one *)
  let join_c = ok (Server.Service.submit svc (sim_job ~priority:1 3)) in
  (match (join_b ()).Server.Service.outcome with
   | Error Server.Service.Shed -> ()
   | _ -> Alcotest.fail "queued low-priority job must be shed");
  (* rung 2: nothing lower-priority queued -> (overloaded) *)
  (match Server.Service.submit svc (sim_job ~priority:0 4) with
   | Error `Overloaded -> ()
   | Error `Shutdown -> Alcotest.fail "not shutting down"
   | Ok _ -> Alcotest.fail "equal-priority submit must be overloaded");
  (match (join_a ()).Server.Service.outcome, (join_c ()).Server.Service.outcome with
   | Ok _, Ok _ -> ()
   | _ -> Alcotest.fail "running and high-priority jobs must complete");
  let s = Server.Service.scheduler_stats svc in
  Alcotest.(check int) "one job shed" 1 s.Sch.shed;
  let shed_status =
    Obs.Metric.Counter.get
      (Obs.Registry.counter (Server.Service.metrics svc)
         ~labels:[ ("status", "shed") ] "small_svc_requests_total")
  in
  Alcotest.(check int) "shed status counted" 1 shed_status

(* The acceptance storm: 60 mixed jobs through a service under a seeded
   plan injecting fs-write failures, torn writes, worker crashes, and
   delays.  Every job must come back with either a result byte-identical
   to the fault-free run or a typed error; the pool must survive; and a
   later fault-free service over the same cache directory must never
   serve a corrupt entry. *)
let storm_seeds = List.init 60 (fun i -> i + 1)

let reference_results = lazy (
  let svc = Server.Service.create ~workers:4 ~queue_capacity:128 () in
  Fun.protect ~finally:(fun () -> Server.Service.shutdown svc) @@ fun () ->
  let joins =
    List.map (fun seed -> (seed, ok (Server.Service.submit svc (sim_job seed))))
      storm_seeds
  in
  List.map
    (fun (seed, join) ->
       match (join ()).Server.Service.outcome with
       | Ok out -> (seed, Server.Json.to_string (Server.Exec.output_to_json out))
       | Error _ -> Alcotest.fail "fault-free reference job failed")
    joins)

let storm_plan () =
  P.create
    { P.default with
      seed = 2718; write_fail = 0.15; torn_write = 0.1; crash = 0.2; delay = 0.1;
      delay_s = 0.002 }

let run_storm svc =
  let reference = Lazy.force reference_results in
  let joins =
    List.map (fun seed -> (seed, ok (Server.Service.submit svc (sim_job seed))))
      storm_seeds
  in
  let oks = ref 0 and errors = ref 0 in
  List.iter
    (fun (seed, join) ->
       match (join ()).Server.Service.outcome with
       | Ok out ->
         incr oks;
         Alcotest.(check string)
           (Printf.sprintf "seed %d result identical to fault-free run" seed)
           (List.assoc seed reference)
           (Server.Json.to_string (Server.Exec.output_to_json out))
       | Error
           ( Server.Service.Exec_failed _ | Server.Service.Timed_out
           | Server.Service.Cancelled | Server.Service.Shed
           | Server.Service.Source_error _ ) -> incr errors)
    joins;
  (!oks, !errors)

let test_storm_under_faults () =
  let dir = temp_dir "faultstorm" in
  let plan = storm_plan () in
  let svc =
    Server.Service.create ~cache_dir:dir ~fault:plan ~retries:3 ~workers:4
      ~queue_capacity:128 ()
  in
  let oks, errors =
    Fun.protect ~finally:(fun () -> Server.Service.shutdown svc) @@ fun () ->
    let r = run_storm svc in
    (* the pool survived: a fresh job still completes *)
    (match (ok (Server.Service.submit svc (sim_job 999)) ()).Server.Service.outcome with
     | Ok _ | Error _ -> ());
    Alcotest.(check int) "no stuck jobs" 0
      (Server.Service.scheduler_stats svc).Sch.running;
    Alcotest.(check bool) "faults were actually injected" true (P.total plan > 0);
    Alcotest.(check bool) "crashes forced retries" true
      ((Server.Service.scheduler_stats svc).Sch.retried > 0);
    r
  in
  Alcotest.(check int) "every job answered" 60 (oks + errors);
  (* retry budget 3 vs crash rate 0.2: near-certain full success; leave
     slack for the rare exhausted budget rather than flake *)
  Alcotest.(check bool)
    (Printf.sprintf "almost all jobs recovered (%d ok, %d typed errors)" oks errors)
    true (oks >= 55);
  (* a fault-free service over the same (possibly damaged) cache dir
     must recompute quarantined entries, never serve them *)
  let svc2 = Server.Service.create ~cache_dir:dir ~workers:4 ~queue_capacity:128 () in
  let oks2, errors2 =
    Fun.protect ~finally:(fun () -> Server.Service.shutdown svc2) @@ fun () ->
    run_storm svc2
  in
  Alcotest.(check int) "clean pass over damaged cache: all ok" 60 oks2;
  Alcotest.(check int) "clean pass over damaged cache: no errors" 0 errors2

(* With one worker the whole execution is sequential, so the injection
   schedule maps to jobs identically across runs: the per-kind counts
   must reproduce exactly from the seed. *)
let test_storm_schedule_reproducible () =
  let one_run () =
    let plan = storm_plan () in
    let svc = Server.Service.create ~fault:plan ~retries:3 ~workers:1 ~queue_capacity:128 () in
    Fun.protect ~finally:(fun () -> Server.Service.shutdown svc) @@ fun () ->
    let joins =
      List.map (fun seed -> ok (Server.Service.submit svc (sim_job seed)))
        (List.init 20 (fun i -> i + 1))
    in
    List.iter (fun join -> ignore (join () : Server.Service.response)) joins;
    P.counts plan
  in
  Alcotest.(check (list (pair string int))) "same seed, same injected schedule"
    (one_run ()) (one_run ())

let () =
  Alcotest.run "fault"
    [ ("plan",
       [ Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
         Alcotest.test_case "rates" `Quick test_plan_rates;
         Alcotest.test_case "validation" `Quick test_plan_validation;
         Alcotest.test_case "plan files" `Quick test_plan_file_roundtrip ]);
      ("scheduler",
       [ Alcotest.test_case "retry recovers" `Quick test_retry_recovers;
         Alcotest.test_case "retry budget" `Quick test_retry_budget_exhausted;
         Alcotest.test_case "retry deadline" `Quick test_retry_respects_deadline;
         Alcotest.test_case "shed lower" `Quick test_shed_lower ]);
      ("cache",
       [ Alcotest.test_case "detect + quarantine + recompute" `Quick
           test_cache_detects_corruption;
         Alcotest.test_case "foreign file" `Quick test_cache_rejects_foreign_file;
         Alcotest.test_case "torn write detected" `Quick test_cache_torn_write_detected;
         Alcotest.test_case "write error degrades" `Quick test_cache_write_error_degrades;
         Alcotest.test_case "no partial reads" `Quick test_cache_no_partial_reads ]);
      ("service",
       [ Alcotest.test_case "wire garbage" `Quick test_wire_garbage_never_escapes;
         Alcotest.test_case "overload ladder" `Quick test_overload_ladder;
         Alcotest.test_case "storm under faults" `Slow test_storm_under_faults;
         Alcotest.test_case "reproducible schedule" `Slow test_storm_schedule_reproducible ]) ]
