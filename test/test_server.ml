(* Tests for the job service: scheduler ordering/backpressure/timeouts/
   cancellation, the content-addressed result cache (memory and disk),
   job parsing and digesting, and the end-to-end guarantee that served
   results are identical to direct Core.Simulator runs. *)

module Sch = Server.Scheduler
module D = Sexp.Datum

let ok = function
  | Ok v -> v
  | Error _ -> Alcotest.fail "unexpected submit error"

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let wait_for ?(tries = 2000) pred =
  let rec go n =
    if pred () then ()
    else if n = 0 then Alcotest.fail "condition never became true"
    else begin
      Unix.sleepf 0.002;
      go (n - 1)
    end
  in
  go tries

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

(* ---- scheduler ---- *)

let test_fifo_order () =
  let s = Sch.create ~workers:1 ~capacity:16 () in
  let order = ref [] in
  let lock = Mutex.create () in
  let tickets =
    List.map
      (fun i ->
         ok
           (Sch.submit s (fun ~should_stop:_ ->
                Mutex.lock lock;
                order := i :: !order;
                Mutex.unlock lock;
                i)))
      [ 1; 2; 3; 4; 5 ]
  in
  List.iteri
    (fun idx t ->
       match Sch.await s t with
       | Sch.Done v -> Alcotest.(check int) "result" (idx + 1) v
       | _ -> Alcotest.fail "job did not complete")
    tickets;
  Alcotest.(check (list int)) "single worker runs FIFO" [ 1; 2; 3; 4; 5 ]
    (List.rev !order);
  Sch.shutdown s

let test_backpressure () =
  let s = Sch.create ~workers:1 ~capacity:1 () in
  let gate = Atomic.make false in
  let blocker ~should_stop:_ =
    while not (Atomic.get gate) do
      Domain.cpu_relax ()
    done;
    0
  in
  let t1 = ok (Sch.submit s blocker) in
  wait_for (fun () -> (Sch.stats s).Sch.running = 1);
  let t2 = ok (Sch.submit s (fun ~should_stop:_ -> 1)) in
  (match Sch.submit s (fun ~should_stop:_ -> 2) with
   | Error `Queue_full -> ()
   | Ok _ | Error `Shutdown -> Alcotest.fail "expected Queue_full");
  Alcotest.(check int) "rejection counted" 1 (Sch.stats s).Sch.rejected;
  Atomic.set gate true;
  (match Sch.await s t1, Sch.await s t2 with
   | Sch.Done 0, Sch.Done 1 -> ()
   | _ -> Alcotest.fail "queued jobs must still run");
  Sch.shutdown s

let test_timeout () =
  let s = Sch.create ~workers:1 ~capacity:4 () in
  (* a polling job aborts early via Stop *)
  let t1 =
    ok
      (Sch.submit s ~timeout:0.05 (fun ~should_stop ->
           while not (should_stop ()) do
             Unix.sleepf 0.002
           done;
           raise Sch.Stop))
  in
  (match Sch.await s t1 with
   | Sch.Timed_out -> ()
   | _ -> Alcotest.fail "polling job must time out");
  (* a non-polling job is classified at completion, result discarded *)
  let t2 =
    ok (Sch.submit s ~timeout:0.01 (fun ~should_stop:_ -> Unix.sleepf 0.05; 7))
  in
  (match Sch.await s t2 with
   | Sch.Timed_out -> ()
   | _ -> Alcotest.fail "overdue job must be classified Timed_out");
  Alcotest.(check int) "timeouts counted" 2 (Sch.stats s).Sch.timed_out;
  Sch.shutdown s

let test_cancel () =
  let s = Sch.create ~workers:1 ~capacity:4 () in
  let gate = Atomic.make false in
  let t1 =
    ok
      (Sch.submit s (fun ~should_stop ->
           while not (Atomic.get gate) && not (should_stop ()) do
             Unix.sleepf 0.002
           done;
           if should_stop () then raise Sch.Stop;
           0))
  in
  wait_for (fun () -> (Sch.stats s).Sch.running = 1);
  let t2 = ok (Sch.submit s (fun ~should_stop:_ -> 1)) in
  Alcotest.(check bool) "pending job cancels immediately" true (Sch.cancel s t2);
  (match Sch.await s t2 with
   | Sch.Cancelled -> ()
   | _ -> Alcotest.fail "cancelled pending job");
  Alcotest.(check bool) "running job only gets the flag" false (Sch.cancel s t1);
  (match Sch.await s t1 with
   | Sch.Cancelled -> ()
   | _ -> Alcotest.fail "polling job must observe cancellation");
  Sch.shutdown s

let test_failure_capture () =
  let s = Sch.create ~workers:1 ~capacity:4 () in
  let t = ok (Sch.submit s (fun ~should_stop:_ -> failwith "boom")) in
  (match Sch.await s t with
   | Sch.Failed msg ->
     Alcotest.(check bool) "exception text captured" true (contains msg "boom")
   | _ -> Alcotest.fail "raising job must be Failed");
  Sch.shutdown s

(* A thunk that raises must settle its ticket as Failed, restore the
   in-flight accounting, and leave the worker alive for the next job. *)
let test_failure_keeps_pool_usable () =
  let reg = Obs.Registry.create () in
  let s = Sch.create ~metrics:reg ~workers:1 ~capacity:4 () in
  let t1 = ok (Sch.submit s (fun ~should_stop:_ -> failwith "die")) in
  (match Sch.await s t1 with
   | Sch.Failed _ -> ()
   | _ -> Alcotest.fail "raising job must be Failed");
  let t2 = ok (Sch.submit s (fun ~should_stop:_ -> 9)) in
  (match Sch.await s t2 with
   | Sch.Done 9 -> ()
   | _ -> Alcotest.fail "the worker must survive a raising thunk");
  Alcotest.(check int) "running accounting restored" 0 (Sch.stats s).Sch.running;
  let gauge name =
    Obs.Metric.Gauge.get (Obs.Registry.gauge reg name)
  in
  Alcotest.(check int) "in-flight gauge restored" 0 (gauge "small_sched_inflight");
  Alcotest.(check int) "queue-depth gauge empty" 0 (gauge "small_sched_queue_depth");
  Sch.shutdown s

(* N jobs across mixed outcomes on a shared registry: the per-outcome
   counters must sum to N and the gauges must settle back to zero. *)
let test_scheduler_metrics_concurrent () =
  let reg = Obs.Registry.create () in
  let s = Sch.create ~metrics:reg ~workers:4 ~capacity:128 () in
  let submitted = ref 0 in
  let tickets = ref [] in
  let push t = incr submitted; tickets := t :: !tickets in
  for i = 1 to 60 do
    match i mod 4 with
    | 0 -> push (ok (Sch.submit s (fun ~should_stop:_ -> i)))
    | 1 -> push (ok (Sch.submit s (fun ~should_stop:_ -> failwith "boom")))
    | 2 ->
      push
        (ok
           (Sch.submit s ~timeout:0.005 (fun ~should_stop ->
                while not (should_stop ()) do
                  Unix.sleepf 0.001
                done;
                raise Sch.Stop)))
    | _ ->
      let t =
        ok
          (Sch.submit s (fun ~should_stop ->
               Unix.sleepf 0.002;
               if should_stop () then raise Sch.Stop;
               i))
      in
      ignore (Sch.cancel s t : bool);
      push t
  done;
  List.iter (fun t -> ignore (Sch.await s t : int Sch.outcome)) !tickets;
  let counter labels =
    Obs.Metric.Counter.get
      (Obs.Registry.counter reg ~labels "small_sched_jobs_total")
  in
  let outcomes =
    List.map (fun o -> counter [ ("outcome", o) ])
      [ "done"; "failed"; "timed_out"; "cancelled" ]
  in
  Alcotest.(check int) "per-outcome counters sum to N" !submitted
    (List.fold_left ( + ) 0 outcomes);
  Alcotest.(check bool) "every class was exercised" true
    (List.for_all (fun c -> c > 0) outcomes);
  Alcotest.(check int) "rejected stays zero" 0
    (counter [ ("outcome", "rejected") ]);
  let gauge name = Obs.Metric.Gauge.get (Obs.Registry.gauge reg name) in
  Alcotest.(check int) "queue depth settled to zero" 0 (gauge "small_sched_queue_depth");
  Alcotest.(check int) "in-flight settled to zero" 0 (gauge "small_sched_inflight");
  (* wait/run histograms saw every job that reached a worker *)
  let hist_count name =
    match
      List.find_opt
        (fun (x : Obs.Registry.sample) -> x.Obs.Registry.name = name)
        (Obs.Registry.snapshot reg)
    with
    | Some { value = Obs.Registry.Histogram_v h; _ } ->
      Obs.Metric.Histogram.count h
    | _ -> Alcotest.fail (name ^ " not registered")
  in
  Alcotest.(check bool) "queue waits recorded" true
    (hist_count "small_sched_queue_wait_seconds" > 0);
  Alcotest.(check bool) "run times recorded" true
    (hist_count "small_sched_run_seconds" > 0);
  Sch.shutdown s

(* ---- result cache ---- *)

let test_cache_memory_accounting () =
  let c = Server.Result_cache.create () in
  let k = Server.Result_cache.key ~trace_digest:"t" ~job_digest:"j" in
  Alcotest.(check (option string)) "miss" None (Server.Result_cache.find c k);
  Server.Result_cache.store c k "value";
  Alcotest.(check (option string)) "hit" (Some "value") (Server.Result_cache.find c k);
  let st = Server.Result_cache.stats c in
  Alcotest.(check int) "hits" 1 st.Server.Result_cache.hits;
  Alcotest.(check int) "misses" 1 st.Server.Result_cache.misses;
  Alcotest.(check int) "stores" 1 st.Server.Result_cache.stores;
  Alcotest.(check int) "no disk" 0 st.Server.Result_cache.disk_hits

let test_cache_disk_persistence () =
  let dir = temp_dir "rescache" in
  let k = Server.Result_cache.key ~trace_digest:"td" ~job_digest:"jd" in
  let c1 = Server.Result_cache.create ~dir () in
  Server.Result_cache.store c1 k "persisted";
  (* a fresh instance over the same directory must find it on disk *)
  let c2 = Server.Result_cache.create ~dir () in
  Alcotest.(check (option string)) "disk hit" (Some "persisted")
    (Server.Result_cache.find c2 k);
  let st = Server.Result_cache.stats c2 in
  Alcotest.(check int) "counted as disk hit" 1 st.Server.Result_cache.disk_hits;
  (* and the second lookup is served from memory *)
  ignore (Server.Result_cache.find c2 k);
  let st = Server.Result_cache.stats c2 in
  Alcotest.(check int) "second hit from memory" 1 st.Server.Result_cache.disk_hits;
  Alcotest.(check int) "both hits counted" 2 st.Server.Result_cache.hits

let test_cache_metrics () =
  let reg = Obs.Registry.create () in
  let dir = temp_dir "rescache-metrics" in
  let c = Server.Result_cache.create ~metrics:reg ~dir () in
  let k = Server.Result_cache.key ~trace_digest:"t" ~job_digest:"j" in
  ignore (Server.Result_cache.find c k : string option);
  Server.Result_cache.store c k "0123456789";
  ignore (Server.Result_cache.find c k : string option);
  let counter name =
    Obs.Metric.Counter.get (Obs.Registry.counter reg name)
  in
  Alcotest.(check int) "miss counted" 1 (counter "small_cache_misses_total");
  Alcotest.(check int) "store counted" 1 (counter "small_cache_stores_total");
  Alcotest.(check int) "hit counted" 1 (counter "small_cache_hits_total");
  (* the self-verifying entry = "SMRC1 <32-hex> <len>\n" header + payload *)
  Alcotest.(check int) "bytes written to disk" (6 + 32 + 1 + 2 + 1 + 10)
    (counter "small_cache_disk_bytes_total");
  (* a fresh instance over the same directory counts the disk hit *)
  let reg2 = Obs.Registry.create () in
  let c2 = Server.Result_cache.create ~metrics:reg2 ~dir () in
  ignore (Server.Result_cache.find c2 k : string option);
  let counter2 name =
    Obs.Metric.Counter.get (Obs.Registry.counter reg2 name)
  in
  Alcotest.(check int) "disk hit counted" 1 (counter2 "small_cache_disk_hits_total");
  Alcotest.(check int) "disk hit is a hit" 1 (counter2 "small_cache_hits_total")

let test_cache_key_shape () =
  let k1 = Server.Result_cache.key ~trace_digest:"a" ~job_digest:"b" in
  let k2 = Server.Result_cache.key ~trace_digest:"a" ~job_digest:"c" in
  Alcotest.(check int) "md5 hex" 32 (String.length k1);
  Alcotest.(check bool) "job digest matters" true (k1 <> k2)

(* ---- jobs ---- *)

let test_job_parse () =
  let job =
    match
      Server.Job.parse
        "(simulate (workload slang) (size 512) (policy all) (seed 3) (timeout 5))"
    with
    | Ok j -> j
    | Error msg -> Alcotest.fail msg
  in
  (match job.Server.Job.source with
   | Server.Job.Workload w -> Alcotest.(check string) "source" "slang" w
   | _ -> Alcotest.fail "expected workload source");
  (match job.Server.Job.spec with
   | Server.Job.Simulate cfg ->
     Alcotest.(check int) "size" 512 cfg.Core.Simulator.table_size;
     Alcotest.(check int) "seed" 3 cfg.Core.Simulator.seed;
     Alcotest.(check bool) "policy" true
       (cfg.Core.Simulator.policy = Core.Lpt.Compress_all)
   | _ -> Alcotest.fail "expected simulate spec");
  Alcotest.(check (option (float 1e-9))) "timeout" (Some 5.) job.Server.Job.timeout

let test_job_sexp_roundtrip () =
  List.iter
    (fun line ->
       let job = Result.get_ok (Server.Job.parse line) in
       let again =
         match Server.Job.of_sexp (Server.Job.to_sexp job) with
         | Ok j -> j
         | Error msg -> Alcotest.fail ("re-parse failed: " ^ msg)
       in
       Alcotest.(check string) ("digest stable: " ^ line) (Server.Job.digest job)
         (Server.Job.digest again);
       Alcotest.(check string) ("describe stable: " ^ line)
         (Server.Job.describe job) (Server.Job.describe again))
    [ "(stats (workload plagen))";
      "(analyze (workload slang) (separation 0.25))";
      "(simulate (workload editor) (size 256) (seed 9) (cache 128 4) (split-counts))";
      "(knee (workload lyra) (seed 7) (eager-decrement))" ]

let test_job_errors () =
  (match Server.Job.parse "(simulate (workload nosuch))" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown workload must be rejected");
  (match Server.Job.parse "(simulate (size 64))" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing source must be rejected");
  (match Server.Job.parse "(simulate (workload slang) (frobnicate 1))" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown clause must be rejected")

let test_job_digest_semantics () =
  let j line = Result.get_ok (Server.Job.parse line) in
  let base = j "(simulate (workload slang) (size 512))" in
  Alcotest.(check string) "timeout is not part of the measurement"
    (Server.Job.digest base)
    (Server.Job.digest (j "(simulate (workload slang) (size 512) (timeout 9))"));
  Alcotest.(check string) "source is not part of the job half"
    (Server.Job.digest base)
    (Server.Job.digest (j "(simulate (workload editor) (size 512))"));
  Alcotest.(check bool) "config is" true
    (Server.Job.digest base <> Server.Job.digest (j "(simulate (workload slang) (size 256))"))

(* ---- exec output codec ---- *)

let synth_capture = lazy (Trace.Synth.generate { Trace.Synth.default with length = 3000 })

let test_output_sexp_roundtrip () =
  let pre = Trace.Preprocess.run (Lazy.force synth_capture) in
  let stats =
    Core.Simulator.run { Core.Simulator.default_config with table_size = 64 } pre
  in
  List.iter
    (fun out ->
       match Server.Exec.output_of_sexp (Server.Exec.output_to_sexp out) with
       | Ok back -> Alcotest.(check bool) "lossless round-trip" true (out = back)
       | Error msg -> Alcotest.fail ("decode failed: " ^ msg))
    [ Server.Exec.Simulate_out stats;
      Server.Exec.Knee_out { size = 96; stats } ]

(* ---- service end-to-end ---- *)

let with_service ?cache_dir f =
  let svc = Server.Service.create ?cache_dir ~workers:2 ~queue_capacity:32 () in
  Fun.protect ~finally:(fun () -> Server.Service.shutdown svc) (fun () -> f svc)

let saved_synth_trace = lazy (
  let path = Filename.temp_file "synth" ".smtb" in
  Trace.Io.save ~format:Trace.Io.Binary path (Lazy.force synth_capture);
  path)

let sim_config seed = { Core.Simulator.default_config with table_size = 64; seed }

let sim_job seed =
  { Server.Job.source = Server.Job.Trace_file (Lazy.force saved_synth_trace);
    spec = Server.Job.Simulate (sim_config seed);
    timeout = None; priority = 0; deadline = None; wire_id = None }

let result_bytes (r : Server.Service.response) =
  match r.Server.Service.outcome with
  | Ok out -> Server.Json.to_string (Server.Exec.output_to_json out)
  | Error _ -> Alcotest.fail "job failed"

let direct_bytes seed =
  let pre = Trace.Preprocess.run (Lazy.force synth_capture) in
  Server.Json.to_string
    (Server.Exec.output_to_json
       (Server.Exec.Simulate_out (Core.Simulator.run (sim_config seed) pre)))

let test_service_matches_direct_runs () =
  with_service @@ fun svc ->
  let seeds = [ 1; 2; 3; 4 ] in
  (* submit the whole batch before awaiting: the jobs run concurrently *)
  let joins = List.map (fun seed -> ok (Server.Service.submit svc (sim_job seed))) seeds in
  List.iter2
    (fun seed join ->
       let r = join () in
       Alcotest.(check bool) "first runs are not cached" false r.Server.Service.cached;
       Alcotest.(check string)
         (Printf.sprintf "seed %d byte-identical to a direct run" seed)
         (direct_bytes seed) (result_bytes r))
    seeds joins

let test_service_cache_hit () =
  let dir = temp_dir "svccache" in
  let first =
    with_service ~cache_dir:dir @@ fun svc ->
    let r = ok (Server.Service.run_job svc (sim_job 1)) in
    Alcotest.(check bool) "cold run executes" false r.Server.Service.cached;
    result_bytes r
  in
  (* same job again: served from memory cache without re-simulation *)
  with_service ~cache_dir:dir @@ fun svc ->
  let r1 = ok (Server.Service.run_job svc (sim_job 1)) in
  Alcotest.(check bool) "resubmission across processes hits disk" true
    r1.Server.Service.cached;
  Alcotest.(check string) "cached bytes identical" first (result_bytes r1);
  let st = Server.Result_cache.stats (Server.Service.cache svc) in
  Alcotest.(check int) "counted as a disk hit" 1 st.Server.Result_cache.disk_hits;
  let r2 = ok (Server.Service.run_job svc (sim_job 1)) in
  Alcotest.(check bool) "second resubmission hits memory" true r2.Server.Service.cached;
  Alcotest.(check int) "nothing was executed"
    0 (Server.Service.scheduler_stats svc).Sch.completed

let test_handle_line () =
  with_service @@ fun svc ->
  (match Server.Service.handle_line svc "  " with
   | [] -> ()
   | _ -> Alcotest.fail "blank lines are ignored");
  (match Server.Service.handle_line svc "(not a job" with
   | [ line ] ->
     Alcotest.(check bool) "parse errors answered in-band" true
       (String.length line > 0 && String.sub line 0 1 = "{")
   | _ -> Alcotest.fail "one error line expected");
  (match Server.Service.handle_line svc "(stats)" with
   | [ line ] ->
     Alcotest.(check bool) "stats is a json object" true (String.sub line 0 1 = "{")
   | _ -> Alcotest.fail "one stats line expected");
  let path = Lazy.force saved_synth_trace in
  let batch =
    Printf.sprintf
      "(batch (simulate (trace-file \"%s\") (size 64) (seed 1)) (simulate (trace-file \"%s\") (size 64) (seed 2)))"
      path path
  in
  match Server.Service.handle_line svc batch with
  | [ a; b ] ->
    Alcotest.(check bool) "both ok" true
      (contains a "\"status\":\"ok\"" && contains b "\"status\":\"ok\"");
    Alcotest.(check bool) "request order kept" true
      (contains a "seed=1" && contains b "seed=2")
  | other ->
    Alcotest.fail (Printf.sprintf "expected 2 batch responses, got %d" (List.length other))

(* ---- wire framing and cluster hooks ---- *)

let test_ping_and_shard_field () =
  with_service @@ fun svc ->
  (match Server.Service.handle_line svc "(ping)" with
   | [ l ] ->
     Alcotest.(check bool) "pong" true (contains l "\"pong\":true");
     Alcotest.(check bool) "no shard field unless named" false
       (contains l "\"shard\":")
   | _ -> Alcotest.fail "one pong line expected");
  let shard = Server.Service.create ~shard_id:"s7" ~workers:1 ~queue_capacity:4 () in
  Fun.protect
    ~finally:(fun () -> Server.Service.shutdown shard)
    (fun () ->
       List.iter
         (fun req ->
            match Server.Service.handle_line shard req with
            | [ l ] ->
              Alcotest.(check bool)
                (req ^ " reply carries the shard id") true
                (contains l "\"shard\":\"s7\"")
            | _ -> Alcotest.fail "one reply line expected")
         [ "(ping)"; "(stats)"; "(not a job" ])

(* The wire protocol is newline-framed: a request arriving one byte per
   [write] (worst-case short writes, e.g. through a loaded socket) must
   produce byte-identical replies to the whole-line submission. *)
let test_framing_tiny_writes () =
  let strip_elapsed line =
    let marker = ",\"elapsed\":" in
    let mn = String.length marker in
    let rec find i =
      if i + mn > String.length line then line
      else if String.sub line i mn = marker then begin
        let j = ref (i + mn) in
        while !j < String.length line && line.[!j] <> ',' && line.[!j] <> '}' do
          incr j
        done;
        String.sub line 0 i ^ String.sub line !j (String.length line - !j)
      end
      else find (i + 1)
    in
    find 0
  in
  let path = Lazy.force saved_synth_trace in
  let requests =
    [ Printf.sprintf "(simulate (trace-file \"%s\") (size 64) (seed 31))" path;
      Printf.sprintf
        "(batch (simulate (trace-file \"%s\") (size 64) (seed 32)) (simulate (trace-file \"%s\") (size 64) (seed 33)))"
        path path;
      "(ping)" ]
  in
  let direct =
    with_service @@ fun svc ->
    List.concat_map (fun r -> Server.Service.handle_line svc r) requests
  in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let svc = Server.Service.create ~workers:2 ~queue_capacity:32 () in
  let server =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr b in
        let oc = Unix.out_channel_of_descr (Unix.dup b) in
        ignore (Server.Service.serve_channels svc ic oc);
        Server.Service.shutdown svc;
        (try close_out oc with Sys_error _ -> ());
        (try close_in ic with Sys_error _ -> ()))
  in
  let ic = Unix.in_channel_of_descr a in
  let write_byte_by_byte s =
    String.iter
      (fun ch ->
         let n = Unix.write a (Bytes.make 1 ch) 0 1 in
         Alcotest.(check int) "one byte written" 1 n)
      (s ^ "\n")
  in
  let replies =
    List.concat_map
      (fun req ->
         write_byte_by_byte req;
         (* a batch answers one line per element *)
         let expected = if contains req "(batch" then 2 else 1 in
         List.init expected (fun _ -> input_line ic))
      requests
  in
  write_byte_by_byte "(quit)";
  Domain.join server;
  (try close_in ic with Sys_error _ -> ());
  List.iter2
    (fun d r ->
       Alcotest.(check string) "tiny-write reply byte-identical"
         (strip_elapsed d) (strip_elapsed r))
    direct replies

let test_remove_stale_socket () =
  (* missing file: fine *)
  let path = Filename.temp_file "stale" ".sock" in
  Sys.remove path;
  Server.Service.remove_stale_socket path;
  (* a stale socket file (bound, listener gone): removed *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.close fd;
  Alcotest.(check bool) "socket file left behind" true (Sys.file_exists path);
  Server.Service.remove_stale_socket path;
  Alcotest.(check bool) "stale socket removed" false (Sys.file_exists path);
  (* a regular file is NOT clobbered *)
  let reg = Filename.temp_file "notasock" ".txt" in
  (match Server.Service.remove_stale_socket reg with
   | () -> Alcotest.fail "regular file must not be treated as a stale socket"
   | exception Failure msg ->
     Alcotest.(check bool) "diagnostic names the path" true (contains msg reg));
  Alcotest.(check bool) "regular file untouched" true (Sys.file_exists reg);
  Sys.remove reg;
  (* a live listener is refused, not unlinked *)
  let live = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind live (Unix.ADDR_UNIX path);
  Unix.listen live 1;
  (match Server.Service.remove_stale_socket path with
   | () -> Alcotest.fail "live server must not be clobbered"
   | exception Failure msg ->
     Alcotest.(check bool) "diagnostic says listening" true
       (contains msg "already listening"));
  Alcotest.(check bool) "live socket untouched" true (Sys.file_exists path);
  Unix.close live;
  Sys.remove path

let () =
  Alcotest.run "server"
    [ ("scheduler",
       [ Alcotest.test_case "fifo order" `Quick test_fifo_order;
         Alcotest.test_case "backpressure" `Quick test_backpressure;
         Alcotest.test_case "timeout" `Quick test_timeout;
         Alcotest.test_case "cancel" `Quick test_cancel;
         Alcotest.test_case "failure" `Quick test_failure_capture;
         Alcotest.test_case "failure keeps pool usable" `Quick
           test_failure_keeps_pool_usable;
         Alcotest.test_case "metrics under concurrency" `Quick
           test_scheduler_metrics_concurrent ]);
      ("result cache",
       [ Alcotest.test_case "memory accounting" `Quick test_cache_memory_accounting;
         Alcotest.test_case "disk persistence" `Quick test_cache_disk_persistence;
         Alcotest.test_case "metrics" `Quick test_cache_metrics;
         Alcotest.test_case "key shape" `Quick test_cache_key_shape ]);
      ("jobs",
       [ Alcotest.test_case "parse" `Quick test_job_parse;
         Alcotest.test_case "sexp roundtrip" `Quick test_job_sexp_roundtrip;
         Alcotest.test_case "errors" `Quick test_job_errors;
         Alcotest.test_case "digest semantics" `Quick test_job_digest_semantics ]);
      ("exec", [ Alcotest.test_case "output sexp roundtrip" `Quick test_output_sexp_roundtrip ]);
      ("service",
       [ Alcotest.test_case "matches direct runs" `Quick test_service_matches_direct_runs;
         Alcotest.test_case "cache hit" `Quick test_service_cache_hit;
         Alcotest.test_case "wire handling" `Quick test_handle_line ]);
      ("wire",
       [ Alcotest.test_case "ping and shard field" `Quick test_ping_and_shard_field;
         Alcotest.test_case "framing under tiny writes" `Quick
           test_framing_tiny_writes;
         Alcotest.test_case "stale socket removal" `Quick test_remove_stale_socket ]) ]
