(* Tests for the Chapter 3 analyses: primitive mix, n/p statistics,
   list-set partitioning (with its separation constraint), LRU stack
   distances (Mattson vs naive simulation) and chaining detection. *)

module D = Sexp.Datum
module E = Trace.Event

let mk_capture events =
  let c = Trace.Capture.create () in
  List.iter (Trace.Capture.record c) events;
  c

let prim p args result = E.Prim { prim = p; args; result }

(* ---- primitive mix (Fig 3.1) ---- *)

let test_prim_mix () =
  let c =
    mk_capture
      [ prim E.Car [ Sexp.parse "(a)" ] (D.sym "a");
        prim E.Car [ Sexp.parse "(b)" ] (D.sym "b");
        prim E.Cdr [ Sexp.parse "(a)" ] D.Nil;
        prim E.Cons [ D.int 1; D.Nil ] (Sexp.parse "(1)");
        E.Call { name = "f"; nargs = 0 } ]
  in
  let mix = Analysis.Prim_mix.analyze c in
  Alcotest.(check int) "total" 4 mix.Analysis.Prim_mix.total;
  Alcotest.(check (float 0.01)) "car 50%" 50. (Analysis.Prim_mix.pct mix E.Car);
  Alcotest.(check (float 0.01)) "cdr 25%" 25. (Analysis.Prim_mix.pct mix E.Cdr);
  Alcotest.(check (float 0.01)) "rplaca 0%" 0. (Analysis.Prim_mix.pct mix E.Rplaca)

(* ---- n/p statistics (Table 3.1) ---- *)

let test_np_stats () =
  let l1 = Sexp.parse "(a b c (d e) f g)" (* n=7 p=1 *) in
  let l2 = Sexp.parse "(x y)" (* n=2 p=0 *) in
  let c =
    mk_capture
      [ prim E.Car [ l1 ] (D.sym "a");
        prim E.Car [ l2 ] (D.sym "x");
        prim E.Car [ l1 ] (D.sym "a") (* dynamic stats: counted again *) ]
  in
  let st = Analysis.Np_stats.analyze (Trace.Preprocess.run c) in
  Alcotest.(check (float 0.01)) "mean n over references" ((7. +. 7. +. 2.) /. 3.)
    (Analysis.Np_stats.mean_n st);
  Alcotest.(check (float 0.01)) "mean p" (2. /. 3.) (Analysis.Np_stats.mean_p st)

(* ---- list sets (§3.3.2) ---- *)

(* A trace over two unrelated list families, accessed in interleaved
   bursts. *)
let family_trace () =
  let a = Sexp.parse "(a1 a2 a3 a4)" in
  let b = Sexp.parse "(b1 b2 b3 b4)" in
  let rec tails d = if D.is_nil d then [] else d :: tails (D.cdr d) in
  let walk l =
    List.concat_map
      (fun t -> [ prim E.Cdr [ t ] (D.cdr t); prim E.Car [ t ] (D.car t) ])
      (tails l)
  in
  mk_capture (walk a @ walk b @ walk a)

let test_list_sets_two_families () =
  let p = Trace.Preprocess.run (family_trace ()) in
  let r = Analysis.List_sets.partition ~separation:1.0 p in
  (* with an unbounded window the two families form exactly two sets *)
  Alcotest.(check int) "two structural locales" 2 (List.length r.Analysis.List_sets.sets);
  let sizes =
    List.sort compare (List.map (fun s -> s.Analysis.List_sets.size) r.Analysis.List_sets.sets)
  in
  (* every reference lands in a set *)
  Alcotest.(check int) "all refs covered" r.Analysis.List_sets.stream_length
    (List.fold_left ( + ) 0 sizes);
  (* family a is walked twice, so its set is the bigger one *)
  (match sizes with
   | [ small; large ] -> Alcotest.(check bool) "a-family set dominates" true (large > small)
   | _ -> Alcotest.fail "expected two sets")

let test_list_sets_separation () =
  (* with a tiny window, the second burst on family a opens a NEW set *)
  let p = Trace.Preprocess.run (family_trace ()) in
  let tight = Analysis.List_sets.partition_abs ~window:2 p in
  Alcotest.(check bool) "tight window splits sets" true
    (List.length tight.Analysis.List_sets.sets > 2)

let test_list_sets_lifetime () =
  let p = Trace.Preprocess.run (family_trace ()) in
  let r = Analysis.List_sets.partition ~separation:1.0 p in
  List.iter
    (fun s ->
       Alcotest.(check bool) "lifetime within stream" true
         (Analysis.List_sets.lifetime s >= 0
          && Analysis.List_sets.lifetime s < r.Analysis.List_sets.stream_length))
    r.Analysis.List_sets.sets

let test_coverage_curve () =
  let p = Trace.Preprocess.run (family_trace ()) in
  let r = Analysis.List_sets.partition ~separation:1.0 p in
  let curve = Analysis.List_sets.coverage_curve r in
  (* monotone, ends at 1.0 *)
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (monotone curve);
  (match List.rev curve with
   | (_, last) :: _ -> Alcotest.(check (float 0.0001)) "covers everything" 1.0 last
   | [] -> Alcotest.fail "empty curve");
  Alcotest.(check int) "one set suffices for 50%" 1
    (Analysis.List_sets.sets_for_coverage r 0.5)

let test_set_id_stream () =
  let p = Trace.Preprocess.run (family_trace ()) in
  let stream = Analysis.List_sets.set_id_stream ~separation:1.0 p in
  Alcotest.(check int) "one set id per reference"
    (Array.length (Trace.Preprocess.prim_refs p))
    (Array.length stream);
  let distinct = List.sort_uniq compare (Array.to_list stream) in
  Alcotest.(check int) "two distinct sets" 2 (List.length distinct)

(* ---- Fenwick tree ---- *)

let test_fenwick_basic () =
  let t = Analysis.Fenwick.create 8 in
  Alcotest.(check int) "empty total" 0 (Analysis.Fenwick.total t);
  Analysis.Fenwick.add t 0 3;
  Analysis.Fenwick.add t 3 5;
  Analysis.Fenwick.add t 7 1;
  Analysis.Fenwick.add t 3 (-2);
  Alcotest.(check int) "prefix 0" 0 (Analysis.Fenwick.prefix t 0);
  Alcotest.(check int) "prefix 1" 3 (Analysis.Fenwick.prefix t 1);
  Alcotest.(check int) "prefix 4" 6 (Analysis.Fenwick.prefix t 4);
  Alcotest.(check int) "range [3,8)" 4 (Analysis.Fenwick.range t 3 8);
  Alcotest.(check int) "empty range" 0 (Analysis.Fenwick.range t 5 5);
  Alcotest.(check int) "total" 7 (Analysis.Fenwick.total t)

let prop_fenwick_prefix_sums =
  (* prefix sums must match a plain array fold under random updates *)
  QCheck.Test.make ~name:"Fenwick prefix = array fold" ~count:200
    QCheck.(list (pair (0 -- 31) (-5 -- 5)))
    (fun updates ->
      let n = 32 in
      let t = Analysis.Fenwick.create n in
      let reference = Array.make n 0 in
      List.iter
        (fun (i, d) ->
           Analysis.Fenwick.add t i d;
           reference.(i) <- reference.(i) + d)
        updates;
      let ok = ref true in
      for i = 0 to n do
        let expect = Array.fold_left ( + ) 0 (Array.sub reference 0 i) in
        if Analysis.Fenwick.prefix t i <> expect then ok := false
      done;
      !ok)

(* ---- LRU stack distances (Fig 3.7) ---- *)

let test_lru_basic () =
  let r = Analysis.Lru_stack.analyze [| 1; 2; 1; 3; 2; 1 |] in
  (* 1@d? accesses: 1 cold; 2 cold; 1 dist2; 3 cold; 2 dist3; 1 dist3 *)
  Alcotest.(check int) "cold misses" 3 r.Analysis.Lru_stack.cold;
  Alcotest.(check (float 0.001)) "depth-2 captures 1/6" (1. /. 6.)
    (Analysis.Lru_stack.hit_fraction r 2);
  Alcotest.(check (float 0.001)) "depth-3 captures 3/6" 0.5
    (Analysis.Lru_stack.hit_fraction r 3)

let sorted_histogram r =
  List.sort compare
    (Hashtbl.fold (fun d c acc -> (d, c) :: acc) r.Analysis.Lru_stack.distances [])

(* Streams of several lengths and alphabet widths: the Fenwick engine
   must reproduce the move-to-front reference exactly — same distance
   histogram, same cold-miss and total counts. *)
let prop_fenwick_equals_mtf =
  let stream_gen =
    QCheck.Gen.(
      int_range 1 48 >>= fun alphabet ->
      int_range 0 1500 >>= fun len ->
      list_size (return len) (int_range 0 (alphabet - 1)))
  in
  QCheck.Test.make ~name:"Fenwick analyze = move-to-front analyze_naive" ~count:100
    (QCheck.make ~print:QCheck.Print.(list int) stream_gen)
    (fun xs ->
      let stream = Array.of_list xs in
      let fast = Analysis.Lru_stack.analyze stream in
      let slow = Analysis.Lru_stack.analyze_naive stream in
      fast.Analysis.Lru_stack.cold = slow.Analysis.Lru_stack.cold
      && fast.Analysis.Lru_stack.total = slow.Analysis.Lru_stack.total
      && sorted_histogram fast = sorted_histogram slow)

let prop_mattson_equals_naive =
  (* the one-pass distances must reproduce per-size stack simulation *)
  QCheck.Test.make ~name:"Mattson = naive LRU simulation" ~count:100
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 0 60) (0 -- 8)) (1 -- 6))
    (fun (xs, size) ->
      let stream = Array.of_list xs in
      let r = Analysis.Lru_stack.analyze stream in
      let hits_mattson =
        int_of_float
          (Float.round
             (Analysis.Lru_stack.hit_fraction r size *. float_of_int r.Analysis.Lru_stack.total))
      in
      hits_mattson = Analysis.Lru_stack.naive_hits stream ~size)

(* ---- chaining (Table 3.2) ---- *)

let test_chaining () =
  let l = Sexp.parse "(a b c)" and tail = Sexp.parse "(b c)" in
  let c =
    mk_capture
      [ prim E.Cdr [ l ] tail;
        prim E.Car [ tail ] (D.sym "b");  (* chained *)
        prim E.Car [ l ] (D.sym "a") ]    (* not chained *)
  in
  let r = Analysis.Chaining.analyze (Trace.Preprocess.run c) in
  Alcotest.(check int) "car total" 2 r.Analysis.Chaining.car_total;
  Alcotest.(check int) "car chained" 1 r.Analysis.Chaining.car_chained;
  Alcotest.(check (float 0.01)) "car pct" 50. (Analysis.Chaining.car_pct r);
  Alcotest.(check (float 0.01)) "cdr pct" 0. (Analysis.Chaining.cdr_pct r)

let test_chaining_synth_levels () =
  (* the synthetic generator's chain_prob should show up in the measured
     chaining percentage *)
  let measure chain_prob =
    let cap =
      Trace.Synth.generate { Trace.Synth.default with length = 4000; chain_prob }
    in
    Analysis.Chaining.all_pct (Analysis.Chaining.analyze (Trace.Preprocess.run cap))
  in
  let low = measure 0.05 and high = measure 0.7 in
  Alcotest.(check bool) "higher chain_prob, more chaining" true (high > low +. 20.)

let () =
  Alcotest.run "analysis"
    [ ("prim_mix", [ Alcotest.test_case "percentages" `Quick test_prim_mix ]);
      ("np_stats", [ Alcotest.test_case "means over distinct lists" `Quick test_np_stats ]);
      ("list_sets",
       [ Alcotest.test_case "two families" `Quick test_list_sets_two_families;
         Alcotest.test_case "separation constraint" `Quick test_list_sets_separation;
         Alcotest.test_case "lifetimes" `Quick test_list_sets_lifetime;
         Alcotest.test_case "coverage curve" `Quick test_coverage_curve;
         Alcotest.test_case "set id stream" `Quick test_set_id_stream ]);
      ("fenwick",
       [ Alcotest.test_case "point adds and prefix sums" `Quick test_fenwick_basic;
         QCheck_alcotest.to_alcotest prop_fenwick_prefix_sums ]);
      ("lru",
       [ Alcotest.test_case "distances" `Quick test_lru_basic;
         QCheck_alcotest.to_alcotest prop_fenwick_equals_mtf;
         QCheck_alcotest.to_alcotest prop_mattson_equals_naive ]);
      ("chaining",
       [ Alcotest.test_case "flags aggregated" `Quick test_chaining;
         Alcotest.test_case "responds to chain_prob" `Quick test_chaining_synth_levels ]) ]
