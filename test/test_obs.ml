(* Tests for the observability layer: histogram properties under qcheck
   (conservation, monotone CDF, quantile bounds, merge commutativity),
   multi-domain counter/histogram stress (no lost increments), golden
   Prometheus exposition and JSON snapshot shapes, the extended (stats)
   response, and the regression that attaching a registry never changes
   simulation results. *)

module H = Obs.Metric.Histogram

let bounds_small = [| 0.1; 1.; 10. |]

let snapshot_of values =
  let h = H.create ~bounds:bounds_small () in
  List.iter (H.record h) values;
  H.snapshot h

(* ---- qcheck histogram properties ---- *)

let values_gen = QCheck.list_of_size (QCheck.Gen.int_range 0 200) (QCheck.float_range (-5.) 50.)

let prop_conservation =
  QCheck.Test.make ~count:200 ~name:"recorded count is conserved" values_gen
    (fun values ->
       let s = snapshot_of values in
       H.count s = List.length values)

let prop_monotone_cdf =
  QCheck.Test.make ~count:200 ~name:"cumulative counts are non-decreasing" values_gen
    (fun values ->
       let cum = H.cumulative (snapshot_of values) in
       let ok = ref true in
       Array.iteri (fun i c -> if i > 0 && c < cum.(i - 1) then ok := false) cum;
       !ok && (Array.length cum = 0 || cum.(Array.length cum - 1) = List.length values))

(* Recompute the rank's bucket independently and check the interpolated
   estimate never leaves it (the overflow bucket pins to its lower
   bound). *)
let quantile_in_bucket s q =
  let total = H.count s in
  if total = 0 then H.quantile s q = 0.
  else begin
    let est = H.quantile s q in
    let rank =
      Stdlib.max 1 (Stdlib.min total (int_of_float (ceil (q *. float_of_int total))))
    in
    let cum = H.cumulative s in
    let rec bucket i = if cum.(i) >= rank then i else bucket (i + 1) in
    let i = bucket 0 in
    let nb = Array.length s.H.sbounds in
    let lower = if i = 0 then 0. else s.H.sbounds.(i - 1) in
    if i >= nb then est = lower else est >= lower && est <= s.H.sbounds.(i)
  end

let prop_quantile_bounds =
  QCheck.Test.make ~count:200 ~name:"quantile stays inside its bucket"
    (QCheck.pair values_gen (QCheck.float_range (-0.5) 1.5))
    (fun (values, q) -> quantile_in_bucket (snapshot_of values) q)

let prop_merge_commutes =
  QCheck.Test.make ~count:200 ~name:"merge is commutative"
    (QCheck.pair values_gen values_gen)
    (fun (a, b) ->
       let sa = snapshot_of a and sb = snapshot_of b in
       H.merge sa sb = H.merge sb sa)

let prop_merge_is_union =
  QCheck.Test.make ~count:200 ~name:"merge equals recording the union"
    (QCheck.pair values_gen values_gen)
    (fun (a, b) ->
       let m = H.merge (snapshot_of a) (snapshot_of b) in
       let u = snapshot_of (a @ b) in
       m.H.scounts = u.H.scounts && H.count m = H.count u)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_conservation; prop_monotone_cdf; prop_quantile_bounds;
      prop_merge_commutes; prop_merge_is_union ]

(* ---- multi-domain stress: no lost increments ---- *)

let test_counter_stress () =
  let c = Obs.Metric.Counter.create () in
  let per_domain = 50_000 and domains = 4 in
  let spawn () =
    Domain.spawn (fun () ->
        for _ = 1 to per_domain do
          Obs.Metric.Counter.incr c
        done)
  in
  List.iter Domain.join (List.init domains (fun _ -> spawn ()));
  Alcotest.(check int) "every increment lands" (domains * per_domain)
    (Obs.Metric.Counter.get c)

let test_histogram_stress () =
  let h = H.create ~bounds:bounds_small () in
  let per_domain = 20_000 and domains = 4 in
  (* each domain records a different constant, so per-bucket counts and
     the sum are both exactly checkable *)
  let values = [| 0.05; 0.5; 5.0; 50.0 |] in
  let spawn i =
    Domain.spawn (fun () ->
        for _ = 1 to per_domain do
          H.record h values.(i)
        done)
  in
  List.iter Domain.join (List.init domains spawn);
  let s = H.snapshot h in
  Alcotest.(check int) "no lost records" (domains * per_domain) (H.count s);
  Array.iter (Alcotest.(check int) "one domain per bucket" per_domain) s.H.scounts;
  let expected_sum =
    float_of_int per_domain *. Array.fold_left ( +. ) 0. values
  in
  Alcotest.(check (float 1e-6)) "no lost sum" expected_sum s.H.ssum

let test_gauge_set_max_stress () =
  let g = Obs.Metric.Gauge.create () in
  let spawn lo =
    Domain.spawn (fun () ->
        for v = lo to lo + 10_000 do
          Obs.Metric.Gauge.set_max g v
        done)
  in
  List.iter Domain.join (List.map spawn [ 0; 5_000; 90_000; 40_000 ]);
  Alcotest.(check int) "highest value wins" 100_000 (Obs.Metric.Gauge.get g)

let test_local_accumulator () =
  let direct = H.create ~bounds:bounds_small () in
  let batched = H.create ~bounds:bounds_small () in
  let l = H.Local.create batched in
  let values = [ 0.05; 0.05; 0.3; 5.; 5.; 5.; 100.; 0.3 ] in
  List.iter (fun v -> H.record direct v; H.Local.record l v) values;
  Alcotest.(check int) "nothing published before flush" 0 (H.count (H.snapshot batched));
  H.Local.flush l;
  let ds = H.snapshot direct and bs = H.snapshot batched in
  Alcotest.(check bool) "flush equals direct recording" true
    (ds.H.scounts = bs.H.scounts && Float.abs (ds.H.ssum -. bs.H.ssum) < 1e-9);
  H.Local.flush l;
  Alcotest.(check int) "second flush publishes nothing" (List.length values)
    (H.count (H.snapshot batched))

(* ---- registry semantics ---- *)

let test_registry_get_or_create () =
  let reg = Obs.Registry.create () in
  let a = Obs.Registry.counter reg ~help:"first" "reg_demo_total" in
  let b = Obs.Registry.counter reg ~help:"ignored later" "reg_demo_total" in
  Obs.Metric.Counter.incr a;
  Obs.Metric.Counter.incr b;
  Alcotest.(check int) "same handle" 2 (Obs.Metric.Counter.get a);
  (match Obs.Registry.snapshot reg with
   | [ s ] ->
     Alcotest.(check string) "help from first registration" "first" s.Obs.Registry.help
   | _ -> Alcotest.fail "one sample expected");
  (* same name, different kind: refused *)
  (match Obs.Registry.gauge reg "reg_demo_total" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "kind mismatch must be invalid_arg");
  (match Obs.Registry.counter reg "not a name" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "invalid names must be refused")

(* ---- golden exposition / JSON ---- *)

let golden_registry () =
  let reg = Obs.Registry.create () in
  Obs.Metric.Counter.add (Obs.Registry.counter reg ~help:"requests served" "demo_requests_total") 3;
  Obs.Metric.Gauge.set (Obs.Registry.gauge reg ~help:"jobs waiting" "demo_queue_depth") 2;
  let jobs outcome =
    Obs.Registry.counter reg ~help:"jobs by outcome"
      ~labels:[ ("outcome", outcome) ] "demo_jobs_total"
  in
  Obs.Metric.Counter.add (jobs "done") 1;
  Obs.Metric.Counter.add (jobs "failed") 2;
  let h =
    Obs.Registry.histogram reg ~help:"latency" ~bounds:bounds_small
      "demo_latency_seconds"
  in
  H.record h 0.05;
  H.record h 5.0;
  reg

let test_golden_exposition () =
  let expected =
    String.concat "\n"
      [ "# HELP demo_jobs_total jobs by outcome";
        "# TYPE demo_jobs_total counter";
        "demo_jobs_total{outcome=\"done\"} 1";
        "demo_jobs_total{outcome=\"failed\"} 2";
        "# HELP demo_latency_seconds latency";
        "# TYPE demo_latency_seconds histogram";
        "demo_latency_seconds_bucket{le=\"0.1\"} 1";
        "demo_latency_seconds_bucket{le=\"1\"} 1";
        "demo_latency_seconds_bucket{le=\"10\"} 2";
        "demo_latency_seconds_bucket{le=\"+Inf\"} 2";
        "demo_latency_seconds_sum 5.05";
        "demo_latency_seconds_count 2";
        "# HELP demo_queue_depth jobs waiting";
        "# TYPE demo_queue_depth gauge";
        "demo_queue_depth 2";
        "# HELP demo_requests_total requests served";
        "# TYPE demo_requests_total counter";
        "demo_requests_total 3";
        "" ]
  in
  Alcotest.(check string) "exposition text is pinned" expected
    (Obs.Expo.of_registry (golden_registry ()))

let test_exposition_escaping () =
  let reg = Obs.Registry.create () in
  Obs.Metric.Counter.incr
    (Obs.Registry.counter reg ~help:"line one\nback\\slash"
       ~labels:[ ("path", "a\"b\\c\nd") ] "esc_total");
  let expected =
    "# HELP esc_total line one\\nback\\\\slash\n"
    ^ "# TYPE esc_total counter\n"
    ^ "esc_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"
  in
  Alcotest.(check string) "help and label values escaped" expected
    (Obs.Expo.of_registry reg)

let test_golden_json () =
  let module J = Server.Json in
  let reg = Obs.Registry.create () in
  (* representable floats only, so the emitted text is exact *)
  let h =
    Obs.Registry.histogram reg ~help:"latency" ~bounds:[| 0.5; 1.; 2. |]
      "demo_latency_seconds"
  in
  H.record h 0.5;
  H.record h 2.0;
  Obs.Metric.Counter.add (Obs.Registry.counter reg ~help:"requests" "demo_requests_total") 3;
  let expected =
    J.Obj
      [ ("demo_latency_seconds",
         J.Obj
           [ ("type", J.Str "histogram");
             ("help", J.Str "latency");
             ("samples",
              J.List
                [ J.Obj
                    [ ("labels", J.Obj []);
                      ("value",
                       J.Obj
                         [ ("count", J.Int 2);
                           ("sum", J.Float 2.5);
                           ("p50", J.Float 0.5);
                           ("p99", J.Float 2.);
                           ("buckets",
                            J.List
                              [ J.Obj [ ("le", J.Float 0.5); ("count", J.Int 1) ];
                                J.Obj [ ("le", J.Float 1.); ("count", J.Int 0) ];
                                J.Obj [ ("le", J.Float 2.); ("count", J.Int 1) ];
                                J.Obj [ ("le", J.Str "+Inf"); ("count", J.Int 0) ] ]) ]) ] ]) ]);
        ("demo_requests_total",
         J.Obj
           [ ("type", J.Str "counter");
             ("help", J.Str "requests");
             ("samples",
              J.List [ J.Obj [ ("labels", J.Obj []); ("value", J.Int 3) ] ]) ]) ]
  in
  Alcotest.(check string) "snapshot json is pinned" (J.to_string expected)
    (J.to_string (Server.Obs_json.registry_json reg))

(* ---- the extended (stats) response ---- *)

let test_stats_shape () =
  let svc = Server.Service.create ~workers:1 ~queue_capacity:4 () in
  Fun.protect ~finally:(fun () -> Server.Service.shutdown svc) @@ fun () ->
  let module J = Server.Json in
  match Server.Service.stats_json svc with
  | J.Obj fields ->
    Alcotest.(check (list string)) "top-level keys"
      [ "status"; "jobs_executed"; "cache"; "scheduler"; "metrics" ]
      (List.map fst fields);
    (match List.assoc "metrics" fields with
     | J.Obj families ->
       Alcotest.(check (list string)) "registered families on a fresh service"
         [ "small_cache_corrupt_total"; "small_cache_degraded";
           "small_cache_disk_bytes_total";
           "small_cache_disk_hits_total"; "small_cache_hits_total";
           "small_cache_migrated_total";
           "small_cache_misses_total"; "small_cache_stores_total";
           "small_cache_write_errors_total"; "small_jobs_retried_total";
           "small_sched_inflight"; "small_sched_jobs_total";
           "small_sched_queue_depth"; "small_sched_queue_wait_seconds";
           "small_sched_run_seconds"; "small_svc_cancel_requests_total";
           "small_svc_request_seconds"; "small_svc_requests_total" ]
         (List.map fst families)
     | _ -> Alcotest.fail "metrics must be an object")
  | _ -> Alcotest.fail "(stats) must be an object"

(* ---- determinism: a registry never changes simulation results ---- *)

let synth_pre =
  lazy
    (Trace.Preprocess.run
       (Trace.Synth.generate { Trace.Synth.default with length = 3000 }))

let sim_bytes stats =
  Sexp.to_string (Server.Exec.output_to_sexp (Server.Exec.Simulate_out stats))

let test_run_determinism () =
  let pre = Lazy.force synth_pre in
  let cfg = { Core.Simulator.default_config with table_size = 64 } in
  let bare = Core.Simulator.run cfg pre in
  let reg = Obs.Registry.create () in
  let instrumented = Core.Simulator.run ~metrics:reg cfg pre in
  Alcotest.(check string) "stats byte-identical with a registry attached"
    (sim_bytes bare) (sim_bytes instrumented);
  Alcotest.(check string) "cache key unchanged"
    (Core.Simulator.config_digest cfg) (Core.Simulator.config_digest cfg);
  (* and the registry really saw the run *)
  let events =
    List.find_map
      (fun (s : Obs.Registry.sample) ->
         match s.value with
         | Obs.Registry.Counter_v v when s.name = "small_sim_events_total" -> Some v
         | _ -> None)
      (Obs.Registry.snapshot reg)
  in
  Alcotest.(check (option int)) "events counted" (Some bare.Core.Simulator.events)
    events

let test_knee_determinism () =
  let pre = Lazy.force synth_pre in
  let cfg = { Core.Simulator.default_config with table_size = 16 } in
  let k_seq, s_seq = Core.Simulator.min_table_size ~jobs:1 cfg pre in
  let reg = Obs.Registry.create () in
  (* several domains share one registry while probing: the search result
     must not care *)
  let k_par, s_par = Core.Simulator.min_table_size ~jobs:4 ~metrics:reg cfg pre in
  Alcotest.(check int) "same knee across jobs and registries" k_seq k_par;
  Alcotest.(check string) "same stats" (sim_bytes s_seq) (sim_bytes s_par)

(* ---- spans ---- *)

let test_span_monotone () =
  let prev = ref 0. in
  for _ = 1 to 10_000 do
    let t = Obs.Span.now () in
    if t < !prev then Alcotest.fail "Span.now went backwards";
    prev := t
  done;
  let s = Obs.Span.start () in
  Alcotest.(check bool) "elapsed is non-negative" true (Obs.Span.elapsed s >= 0.);
  let h = H.create () in
  let v = Obs.Span.time h (fun () -> 42) in
  Alcotest.(check int) "time passes the result through" 42 v;
  Alcotest.(check int) "time records once" 1 (H.count (H.snapshot h))

let () =
  Alcotest.run "obs"
    [ ("histogram properties", qcheck_cases);
      ("concurrency",
       [ Alcotest.test_case "counter stress" `Quick test_counter_stress;
         Alcotest.test_case "histogram stress" `Quick test_histogram_stress;
         Alcotest.test_case "gauge set_max stress" `Quick test_gauge_set_max_stress;
         Alcotest.test_case "local accumulator" `Quick test_local_accumulator ]);
      ("registry",
       [ Alcotest.test_case "get or create" `Quick test_registry_get_or_create ]);
      ("golden",
       [ Alcotest.test_case "prometheus exposition" `Quick test_golden_exposition;
         Alcotest.test_case "exposition escaping" `Quick test_exposition_escaping;
         Alcotest.test_case "json snapshot" `Quick test_golden_json;
         Alcotest.test_case "(stats) shape" `Quick test_stats_shape ]);
      ("determinism",
       [ Alcotest.test_case "run with/without registry" `Quick test_run_determinism;
         Alcotest.test_case "knee across jobs" `Quick test_knee_determinism ]);
      ("span", [ Alcotest.test_case "monotone clock" `Quick test_span_monotone ]) ]
