(* Tests for the cluster layer: consistent-hash ring properties (owner
   stability, minimal remap on shard removal), the zipfian sampler, and
   the cache-aware router over in-process shards — byte-identity with a
   single-process service, cache-aware vs uniform placement, failover
   after shard death, and the load-harness accounting. *)

module Ring = Cluster.Ring
module Router = Cluster.Router
module LG = Cluster.Loadgen

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ---- ring ---- *)

let ids4 = [ "a"; "b"; "c"; "d" ]

let key i = Printf.sprintf "key-%d" i

let test_ring_owners () =
  let r = Ring.create ids4 in
  Alcotest.(check (list string)) "ids kept" ids4 (Ring.ids r);
  for i = 0 to 199 do
    let o = Ring.owner r (key i) in
    let os = Ring.owners r (key i) in
    Alcotest.(check string) "owner heads the preference order" o (List.hd os);
    Alcotest.(check (list string)) "preference order covers every shard" ids4
      (List.sort compare os);
    (* determinism: a second ring built from the same ids agrees *)
    Alcotest.(check string) "placement is a pure function of ids"
      o (Ring.owner (Ring.create ids4) (key i))
  done

let test_ring_balance () =
  let r = Ring.create ids4 in
  let counts = Hashtbl.create 4 in
  for i = 0 to 999 do
    let o = Ring.owner r (key i) in
    Hashtbl.replace counts o (1 + Option.value ~default:0 (Hashtbl.find_opt counts o))
  done;
  List.iter
    (fun id ->
       let n = Option.value ~default:0 (Hashtbl.find_opt counts id) in
       Alcotest.(check bool)
         (Printf.sprintf "shard %s owns a non-trivial share (%d/1000)" id n)
         true
         (n > 50))
    ids4

let test_ring_minimal_remap () =
  let r = Ring.create ids4 in
  let r' = Ring.remove r "c" in
  Alcotest.(check (list string)) "member removed" [ "a"; "b"; "d" ] (Ring.ids r');
  let moved = ref 0 in
  for i = 0 to 999 do
    let before = Ring.owner r (key i) in
    if before = "c" then incr moved
    else
      (* the defining property: keys the removed shard did not own keep
         their owner, so surviving shards keep their caches *)
      Alcotest.(check string)
        (Printf.sprintf "%s keeps its owner" (key i))
        before (Ring.owner r' (key i))
  done;
  Alcotest.(check bool) "some keys did move" true (!moved > 0);
  Alcotest.(check bool)
    (Printf.sprintf "only ~1/4 of keys remap (%d/1000)" !moved)
    true
    (!moved < 500)

let test_ring_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Ring.create: no shards")
    (fun () -> ignore (Ring.create []));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Ring.create: duplicate shard id a") (fun () ->
      ignore (Ring.create [ "a"; "a" ]));
  let r = Ring.create [ "a" ] in
  Alcotest.check_raises "last shard"
    (Invalid_argument "Ring.remove: cannot remove the last shard") (fun () ->
      ignore (Ring.remove r "a"))

(* ---- zipf sampler ---- *)

let test_zipf_skew_and_determinism () =
  let n = 32 in
  let sample = LG.sampler ~theta:0.99 ~n in
  let rng = Util.Rng.create ~seed:7 in
  let counts = Array.make n 0 in
  for _ = 1 to 4000 do
    let r = sample rng in
    Alcotest.(check bool) "rank in range" true (r >= 0 && r < n);
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 is the mode" true
    (Array.for_all (fun c -> c <= counts.(0)) counts);
  Alcotest.(check bool)
    (Printf.sprintf "zipf 0.99 is skewed (rank 0 drew %d/4000)" counts.(0))
    true
    (counts.(0) > 2 * (4000 / n));
  (* same seed, same stream *)
  let a = Util.Rng.create ~seed:11 and b = Util.Rng.create ~seed:11 in
  for _ = 1 to 100 do
    Alcotest.(check int) "deterministic" (sample a) (sample b)
  done

let test_zipf_uniform_degenerate () =
  let n = 8 in
  let sample = LG.sampler ~theta:0.0 ~n in
  let rng = Util.Rng.create ~seed:3 in
  let counts = Array.make n 0 in
  for _ = 1 to 4000 do
    let r = sample rng in
    counts.(r) <- counts.(r) + 1
  done;
  Array.iteri
    (fun i c ->
       Alcotest.(check bool)
         (Printf.sprintf "theta 0: rank %d near uniform (%d/4000)" i c)
         true
         (c > 4000 / n / 2 && c < 4000 / n * 2))
    counts

(* ---- in-process shards ---- *)

(* A shard is a Service speaking the wire protocol over a socketpair,
   served by its own domain.  The write sides are dup'd so the channel
   pairs never share an fd (each side is closed exactly once). *)
let in_process_shard sid =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let svc = Server.Service.create ~shard_id:sid ~workers:2 ~queue_capacity:32 () in
  let d =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr b in
        let oc = Unix.out_channel_of_descr (Unix.dup b) in
        ignore (Server.Service.serve_channels svc ic oc);
        Server.Service.shutdown svc;
        (try close_out oc with Sys_error _ -> ());
        (try close_in ic with Sys_error _ -> ()))
  in
  let ic = Unix.in_channel_of_descr a in
  let oc = Unix.out_channel_of_descr (Unix.dup a) in
  ((sid, Router.Channels (ic, oc)), d)

let with_router ?(n = 2) ?placement ?steal_min ?batch_max f =
  let shards, domains =
    List.split (List.init n (fun i -> in_process_shard (Printf.sprintf "s%d" i)))
  in
  let t = Router.create ?placement ?steal_min ?batch_max ~shards () in
  Fun.protect
    ~finally:(fun () ->
        Router.shutdown t;
        List.iter Domain.join domains)
    (fun () -> f t)

(* A small synthetic trace keeps each simulate job at milliseconds. *)
let saved_synth_trace =
  lazy
    (let path = Filename.temp_file "routing" ".smtb" in
     Trace.Io.save ~format:Trace.Io.Binary path
       (Trace.Synth.generate { Trace.Synth.default with length = 3000 });
     path)

let job_line seed =
  Printf.sprintf "(simulate (trace-file \"%s\") (size 64) (seed %d))"
    (Lazy.force saved_synth_trace) seed

(* Strip the two fields that legitimately differ between a routed and a
   direct run: wall-clock [elapsed] and the answering [shard]. *)
let strip_volatile line =
  let strip name line =
    let marker = Printf.sprintf ",\"%s\":" name in
    let mn = String.length marker in
    let rec find i =
      if i + mn > String.length line then line
      else if String.sub line i mn = marker then begin
        let j = ref (i + mn) in
        if !j < String.length line && line.[!j] = '"' then begin
          incr j;
          while !j < String.length line && line.[!j] <> '"' do incr j done;
          incr j
        end
        else
          while
            !j < String.length line && line.[!j] <> ',' && line.[!j] <> '}'
          do
            incr j
          done;
        String.sub line 0 i ^ String.sub line !j (String.length line - !j)
      end
      else find (i + 1)
    in
    find 0
  in
  strip "elapsed" (strip "shard" line)

let test_router_matches_direct () =
  let seeds = [ 1; 2; 3; 4; 5; 6 ] in
  let direct_svc = Server.Service.create ~workers:2 ~queue_capacity:32 () in
  let direct =
    Fun.protect
      ~finally:(fun () -> Server.Service.shutdown direct_svc)
      (fun () ->
         List.concat_map
           (fun s -> Server.Service.handle_line direct_svc (job_line s))
           seeds)
  in
  with_router ~n:2 @@ fun t ->
  let routed = List.concat_map (fun s -> Router.handle_line t (job_line s)) seeds in
  List.iter2
    (fun d r ->
       Alcotest.(check string) "routed reply byte-identical to direct"
         (strip_volatile d) (strip_volatile r))
    direct routed;
  (* the same jobs as one (batch ...): replies keep request order *)
  let batch =
    "(batch " ^ String.concat " " (List.map job_line seeds) ^ ")"
  in
  let batched = Router.handle_line t batch in
  Alcotest.(check int) "one reply per batch element" (List.length seeds)
    (List.length batched);
  (* the first loop warmed the cluster, so the batch replies are cache
     hits; modulo the cached flag they are the direct bytes, in order *)
  let decache s =
    let marker = "\"cached\":true" in
    let mn = String.length marker in
    let b = Buffer.create (String.length s) in
    let i = ref 0 in
    while !i < String.length s do
      if !i + mn <= String.length s && String.sub s !i mn = marker then begin
        Buffer.add_string b "\"cached\":false";
        i := !i + mn
      end
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    Buffer.contents b
  in
  List.iter2
    (fun d r ->
       Alcotest.(check string) "batched reply matches direct, in request order"
         (decache (strip_volatile d))
         (decache (strip_volatile r)))
    direct batched

let test_router_stats_and_ping () =
  with_router ~n:2 @@ fun t ->
  (match Router.handle_line t "(ping)" with
   | [ l ] ->
     Alcotest.(check bool) "pong" true
       (contains l "\"pong\":true" && contains l "\"router\":true")
   | _ -> Alcotest.fail "one pong line expected");
  match Router.handle_line t "(stats)" with
  | [ l ] ->
    Alcotest.(check bool) "router stats" true
      (contains l "\"router\":true" && contains l "\"shards_total\":2")
  | _ -> Alcotest.fail "one stats line expected"

let member path json =
  List.fold_left
    (fun acc name ->
       match acc with
       | Some j -> Server.Json.member name j
       | None -> None)
    (Some json) path

let int_at path json =
  match member path json with
  | Some (Server.Json.Int n) -> n
  | _ -> Alcotest.fail ("missing int field " ^ String.concat "." path)

let test_cache_aware_placement () =
  with_router ~n:2 @@ fun t ->
  let first = Router.submit_line t (job_line 42) () in
  Alcotest.(check bool) "cold run executes" true
    (contains first "\"cached\":false");
  let shard_of reply =
    if contains reply "\"shard\":\"s0\"" then "s0"
    else if contains reply "\"shard\":\"s1\"" then "s1"
    else Alcotest.fail "reply names no shard"
  in
  let home = shard_of first in
  for _ = 1 to 4 do
    let r = Router.submit_line t (job_line 42) () in
    Alcotest.(check bool) "repeat is a cache hit" true (contains r "\"cached\":true");
    Alcotest.(check string) "repeat lands on the owning shard" home (shard_of r)
  done;
  let stats = Router.stats_json t in
  Alcotest.(check bool) "cache placements counted" true
    (int_at [ "placement"; "cache" ] stats >= 4)

(* The acceptance experiment, in miniature: a zipfian key stream over
   2 shards.  Cache-aware placement executes each distinct config once
   cluster-wide; uniform round-robin warms every shard's cache
   separately, so it must see materially fewer hits. *)
let run_zipf_stream t ~requests ~universe =
  let sample = LG.sampler ~theta:0.99 ~n:universe in
  let rng = Util.Rng.create ~seed:9 in
  let hits = ref 0 in
  for _ = 1 to requests do
    let r = Router.submit_line t (job_line (sample rng)) () in
    Alcotest.(check bool) "reply ok" true (contains r "\"status\":\"ok\"");
    if contains r "\"cached\":true" then incr hits
  done;
  !hits

let test_cache_aware_beats_uniform () =
  let requests = 80 and universe = 24 in
  let cache_hits =
    with_router ~n:2 ~placement:Router.Cache_aware ~steal_min:0 @@ fun t ->
    run_zipf_stream t ~requests ~universe
  in
  let uniform_hits =
    with_router ~n:2 ~placement:Router.Uniform ~steal_min:0 @@ fun t ->
    run_zipf_stream t ~requests ~universe
  in
  Alcotest.(check bool)
    (Printf.sprintf "cache-aware hits (%d/%d) beat uniform (%d/%d)" cache_hits
       requests uniform_hits requests)
    true
    (cache_hits > uniform_hits)

let test_failover_and_shard_down () =
  with_router ~n:2 @@ fun t ->
  (* warm both shards *)
  List.iter (fun s -> ignore (Router.submit_line t (job_line s) ())) [ 1; 2; 3 ];
  Alcotest.(check (list string)) "both alive" [ "s0"; "s1" ] (Router.alive_ids t);
  Router.mark_down t "s0";
  Alcotest.(check (list string)) "one survivor" [ "s1" ] (Router.alive_ids t);
  (* every job, including ones s0 owned, now completes on s1 *)
  List.iter
    (fun s ->
       let r = Router.submit_line t (job_line s) () in
       Alcotest.(check bool) "degraded service stays ok" true
         (contains r "\"status\":\"ok\"" && contains r "\"shard\":\"s1\""))
    [ 1; 2; 3; 4 ];
  Router.mark_down t "s1";
  let r = Router.submit_line t (job_line 9) () in
  Alcotest.(check bool) "no shard left: typed shard_down" true
    (contains r "\"status\":\"shard_down\"")

let test_work_stealing_counts () =
  (* one hot shard: all keys forced to s0 by hashing?  Simpler: uniform
     placement with stealing on and more jobs than one shard drains
     instantly — the steal counter is the observable *)
  with_router ~n:2 ~placement:Router.Cache_aware ~steal_min:1 @@ fun t ->
  let seeds = List.init 24 (fun i -> 100 + i) in
  let joins = List.map (fun s -> Router.submit_line t (job_line s)) seeds in
  List.iter (fun j -> ignore (j ())) joins;
  let stats = Router.stats_json t in
  let s0 = int_at [ "shards"; "s0"; "routed" ] stats in
  let s1 = int_at [ "shards"; "s1"; "routed" ] stats in
  Alcotest.(check int) "every job routed exactly once" 24 (s0 + s1);
  Alcotest.(check bool) "both shards participated" true (s0 > 0 && s1 > 0)

(* ---- load harness accounting (driven against a scripted backend) ---- *)

let test_loadgen_accounting () =
  let calls = Atomic.make 0 in
  let submit line () =
    ignore line;
    let n = Atomic.fetch_and_add calls 1 in
    if n mod 3 = 0 then
      "{\"status\":\"ok\",\"cached\":true,\"shard\":\"s0\"}"
    else if n mod 7 = 0 then "{\"status\":\"overloaded\",\"shard\":\"s1\"}"
    else "{\"status\":\"ok\",\"cached\":false,\"shard\":\"s1\"}"
  in
  let fired = Atomic.make 0 in
  let cfg =
    { LG.default with LG.requests = 90; clients = 3; universe = 8; seed = 5 }
  in
  let r = LG.run ~after:(10, fun () -> Atomic.incr fired) ~submit cfg in
  Alcotest.(check int) "every request issued" 90 r.LG.issued;
  Alcotest.(check int) "statuses partition the replies" 90
    (r.LG.ok + r.LG.overloaded + r.LG.shard_down + r.LG.failed);
  Alcotest.(check bool) "cache hits counted" true (r.LG.cached > 0);
  Alcotest.(check bool) "overloads counted" true (r.LG.overloaded > 0);
  Alcotest.(check int) "shard attribution covers every reply" 90
    (List.fold_left (fun a (_, n) -> a + n) 0 r.LG.by_shard);
  Alcotest.(check int) "after-hook fired exactly once" 1 (Atomic.get fired);
  Alcotest.(check bool) "throughput positive" true (r.LG.throughput > 0.0);
  Alcotest.(check bool) "quantiles ordered" true
    (r.LG.p50_ms <= r.LG.p99_ms && r.LG.p99_ms <= r.LG.p999_ms)

let test_loadgen_open_loop () =
  let submit _line () = "{\"status\":\"ok\",\"cached\":false,\"shard\":\"s0\"}" in
  let cfg =
    { LG.default with
      LG.requests = 40; clients = 2; universe = 4; seed = 2;
      mode = LG.Open 2000.0 }
  in
  let r = LG.run ~submit cfg in
  Alcotest.(check int) "open loop issues every request" 40 r.LG.issued;
  Alcotest.(check int) "all ok" 40 r.LG.ok;
  let json = Server.Json.to_string (LG.report_json r) in
  Alcotest.(check bool) "json report carries the quantiles" true
    (contains json "\"p999\"" && contains json "\"throughput\"");
  let text = LG.report_text r in
  Alcotest.(check bool) "text report carries the quantiles" true
    (contains text "p999" && contains text "req/s")

let () =
  Alcotest.run "routing"
    [ ("ring",
       [ Alcotest.test_case "owners" `Quick test_ring_owners;
         Alcotest.test_case "balance" `Quick test_ring_balance;
         Alcotest.test_case "minimal remap" `Quick test_ring_minimal_remap;
         Alcotest.test_case "validation" `Quick test_ring_validation ]);
      ("zipf",
       [ Alcotest.test_case "skew and determinism" `Quick
           test_zipf_skew_and_determinism;
         Alcotest.test_case "uniform degenerate" `Quick
           test_zipf_uniform_degenerate ]);
      ("router",
       [ Alcotest.test_case "matches direct service" `Quick
           test_router_matches_direct;
         Alcotest.test_case "stats and ping" `Quick test_router_stats_and_ping;
         Alcotest.test_case "cache-aware placement" `Quick
           test_cache_aware_placement;
         Alcotest.test_case "cache-aware beats uniform" `Quick
           test_cache_aware_beats_uniform;
         Alcotest.test_case "failover and shard_down" `Quick
           test_failover_and_shard_down;
         Alcotest.test_case "work distribution" `Quick test_work_stealing_counts ]);
      ("loadgen",
       [ Alcotest.test_case "accounting" `Quick test_loadgen_accounting;
         Alcotest.test_case "open loop" `Quick test_loadgen_open_loop ]) ]
