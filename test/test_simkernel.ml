(* The allocation-free simulation kernel against its boxed reference:
   the unboxed splitmix64 against the original int64 stream, the
   weighted draw, the fingerprint memo's second-chance eviction, a
   qcheck battery proving [run]/[run_packed]/[run_source] byte-identical
   to [run_reference] across random configs, and the flat kernel's
   steady-state allocation ceiling. *)

(* ---- Rng: the untagged-halves rewrite must emit the original int64
   splitmix64 stream bit for bit.  The reference below is the previous
   implementation, kept verbatim. *)

module Int64_rng = struct
  type t = { mutable state : int64 }

  let create ~seed = { state = Int64.of_int seed }

  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int t bound =
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

  let float t =
    Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0
end

let test_rng_streams_exact () =
  List.iter
    (fun seed ->
       let r = Util.Rng.create ~seed in
       let r' = Int64_rng.create ~seed in
       for i = 0 to 4_999 do
         (* interleave the draw kinds so state stays in lockstep *)
         match i mod 4 with
         | 0 ->
           let bound = 1 + (i mod 1000) in
           Alcotest.(check int)
             (Printf.sprintf "int seed=%d i=%d" seed i)
             (Int64_rng.int r' bound) (Util.Rng.int r bound)
         | 1 ->
           Alcotest.(check (float 0.))
             (Printf.sprintf "float seed=%d i=%d" seed i)
             (Int64_rng.float r') (Util.Rng.float r)
         | 2 ->
           (* unit_53 is float's numerator: 53 high bits of the output *)
           Alcotest.(check int)
             (Printf.sprintf "unit_53 seed=%d i=%d" seed i)
             (Int64.to_int (Int64.shift_right_logical (Int64_rng.next r') 11))
             (Util.Rng.unit_53 r)
         | _ ->
           (* huge bounds exercise the int64 fallback of [int] *)
           let bound = max_int - (i mod 7) in
           Alcotest.(check int)
             (Printf.sprintf "big-bound seed=%d i=%d" seed i)
             (Int64_rng.int r' bound) (Util.Rng.int r bound)
       done)
    [ 0; 1; 42; -1; 123456789; max_int; min_int ]

let test_rng_split_exact () =
  let r = Util.Rng.create ~seed:99 in
  let r' = Int64_rng.create ~seed:99 in
  let s = Util.Rng.split r in
  let s' = Int64_rng.{ state = Int64_rng.next r' } in
  for i = 0 to 499 do
    Alcotest.(check int)
      (Printf.sprintf "split stream i=%d" i)
      (Int64_rng.int s' 1_000_003) (Util.Rng.int s 1_000_003);
    Alcotest.(check int)
      (Printf.sprintf "parent stream i=%d" i)
      (Int64_rng.int r' 1_000_003) (Util.Rng.int r 1_000_003)
  done

(* ---- Rng.weighted: one draw, correct bucket, no Exit plumbing ---- *)

let test_weighted_buckets () =
  let r = Util.Rng.create ~seed:7 in
  let counts = Array.make 3 0 in
  for _ = 1 to 10_000 do
    let i = Util.Rng.weighted r [| 1.0; 0.0; 3.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight bucket never drawn" 0 counts.(1);
  Alcotest.(check bool) "light bucket drawn" true (counts.(0) > 1_500);
  Alcotest.(check bool) "heavy bucket dominates" true (counts.(2) > counts.(0));
  Alcotest.(check int) "all draws land" 10_000 (counts.(0) + counts.(1) + counts.(2))

let test_weighted_single_draw_and_edges () =
  (* weighted consumes exactly one draw: the next value of a twin
     generator must follow in lockstep *)
  let r = Util.Rng.create ~seed:11 in
  let twin = Util.Rng.create ~seed:11 in
  ignore (Util.Rng.float twin);
  ignore (Util.Rng.weighted r [| 0.2; 0.8 |]);
  Alcotest.(check int) "exactly one draw consumed"
    (Util.Rng.int twin 1_000_000) (Util.Rng.int r 1_000_000);
  (* a single bucket always wins, whatever the draw *)
  let r = Util.Rng.create ~seed:13 in
  for _ = 1 to 100 do
    Alcotest.(check int) "single bucket" 0 (Util.Rng.weighted r [| 42.0 |])
  done;
  Alcotest.check_raises "all-zero weights rejected"
    (Invalid_argument "Rng.weighted: weights sum to zero") (fun () ->
      ignore (Util.Rng.weighted (Util.Rng.create ~seed:1) [| 0.0; 0.0 |]))

(* ---- fingerprint memo: hot keys survive the cap ---- *)

let test_fingerprint_memo_hot_keys_survive () =
  let base = Core.Simulator.default_config in
  (* distinct hot configs, fingerprinted once to enter the memo *)
  let hot =
    List.init 8 (fun i -> { base with seed = 900_000 + i; table_size = 64 + i })
  in
  List.iter (fun c -> ignore (Core.Simulator.config_fingerprint c)) hot;
  (* churn far past the cap, re-touching the hot set as a sweep would *)
  for i = 1 to 3 * 4096 do
    ignore (Core.Simulator.config_digest { base with seed = i; table_size = 1024 });
    if i mod 256 = 0 then
      List.iter (fun c -> ignore (Core.Simulator.config_fingerprint c)) hot
  done;
  List.iter
    (fun c ->
       Alcotest.(check bool) "hot config still memoized" true
         (Core.Simulator.fingerprint_memoized c))
    hot;
  (* and the memo still returns the physically-identical pair *)
  let c = List.hd hot in
  Alcotest.(check bool) "memoized result shared" true
    (Core.Simulator.config_fingerprint c == Core.Simulator.config_fingerprint c)

(* ---- flat kernel == boxed reference, byte for byte ---- *)

let synth_pre ?(length = 2_500) ~seed () =
  Trace.Preprocess.run (Trace.Synth.generate { Trace.Synth.default with length; seed })

let check_stats_equal what (a : Core.Simulator.stats) (b : Core.Simulator.stats) =
  if compare a b <> 0 then
    Alcotest.failf "%s: flat kernel stats differ from the reference" what

let gen_config =
  QCheck.Gen.(
    let* table_size = int_range 48 4096 in
    let* policy = oneofl [ Core.Lpt.Compress_one; Core.Lpt.Compress_all ] in
    let* split_counts = bool in
    let* eager_decrement = bool in
    let* cache =
      oneof
        [ return None;
          (let* lines = int_range 1 64 in
           let* line_size = int_range 1 8 in
           return
             (Some
                { Core.Simulator.cache_lines = lines; cache_line_size = line_size })) ]
    in
    let* seed = int_range 1 100_000 in
    let* arg_prob = float_range 0.1 0.8 in
    let* loc_prob = float_range 0.05 (0.99 -. arg_prob) in
    let* bind_prob = float_range 0.0 0.2 in
    let* read_prob = float_range 0.0 0.2 in
    return
      { Core.Simulator.table_size; policy; arg_prob; loc_prob; bind_prob; read_prob;
        seed; split_counts; eager_decrement; cache })

let print_config c = Core.Simulator.config_fingerprint c

let prop_flat_matches_reference =
  QCheck.Test.make ~name:"run_packed = run_reference on random configs" ~count:60
    (QCheck.make ~print:print_config gen_config) (fun cfg ->
      let pre = synth_pre ~seed:(1 + (cfg.Core.Simulator.seed mod 5)) () in
      let s_ref = Core.Simulator.run_reference cfg pre in
      let s_flat = Core.Simulator.run cfg pre in
      compare s_ref s_flat = 0)

let prop_run_source_matches_reference =
  QCheck.Test.make ~name:"run_source = run_reference over the binary store" ~count:12
    (QCheck.make ~print:print_config gen_config) (fun cfg ->
      let capture =
        Trace.Synth.generate
          { Trace.Synth.default with
            length = 2_000; seed = 1 + (cfg.Core.Simulator.seed mod 5) }
      in
      let path = Filename.temp_file "smallsim-simkernel" ".smtb" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
           Trace.Io.save ~format:Trace.Io.Binary path capture;
           let s_ref =
             Core.Simulator.run_reference cfg (Trace.Preprocess.run capture)
           in
           let s_src =
             Core.Simulator.run_source cfg (Trace.Binary.source_of_path path)
           in
           compare s_ref s_src = 0))

let test_flat_matches_reference_deep () =
  (* a long trace through tight tables: overflow mode, compression and
     cycle recovery all crossed, on both policies with metrics attached
     on one side (the registry must not perturb the stats) *)
  List.iter
    (fun (policy, table_size, split_counts) ->
       let cfg =
         { Core.Simulator.default_config with
           policy; table_size; split_counts; seed = 5 }
       in
       let pre = synth_pre ~length:12_000 ~seed:3 () in
       let reg = Obs.Registry.create () in
       let s_ref = Core.Simulator.run_reference cfg pre in
       let s_flat = Core.Simulator.run ~metrics:reg cfg pre in
       check_stats_equal
         (Printf.sprintf "policy=%s size=%d split=%b"
            (match policy with Core.Lpt.Compress_one -> "one" | _ -> "all")
            table_size split_counts)
         s_ref s_flat)
    [ (Core.Lpt.Compress_one, 96, false); (Core.Lpt.Compress_all, 96, true);
      (Core.Lpt.Compress_one, 2048, true); (Core.Lpt.Compress_all, 512, false) ]

let test_pack_source_equals_pack () =
  let capture = Trace.Synth.generate { Trace.Synth.default with length = 3_000 } in
  let path = Filename.temp_file "smallsim-pack" ".smtb" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       Trace.Io.save ~format:Trace.Io.Binary path capture;
       let p = Core.Simulator.pack (Trace.Preprocess.run capture) in
       let p' = Core.Simulator.pack_source (Trace.Binary.source_of_path path) in
       Alcotest.(check int) "event counts" (Core.Simulator.packed_events p)
         (Core.Simulator.packed_events p');
       let cfg = { Core.Simulator.default_config with table_size = 256; seed = 8 } in
       check_stats_equal "pack_source replay"
         (Core.Simulator.run_packed cfg p) (Core.Simulator.run_packed cfg p'))

(* ---- steady-state allocation ceiling of the flat kernel ---- *)

let test_flat_allocation_ceiling () =
  match Sys.backend_type with
  | Sys.Bytecode | Sys.Other _ ->
    () (* the ceiling is a native-code property *)
  | Sys.Native ->
    let pre = synth_pre ~length:40_000 ~seed:6 () in
    let packed = Core.Simulator.pack pre in
    let prims =
      (Trace.Synth.generate { Trace.Synth.default with length = 40_000; seed = 6 }
       |> Trace.Capture.stats).Trace.Capture.primitives
    in
    let cfg = { Core.Simulator.default_config with table_size = 8192 } in
    ignore (Core.Simulator.run_packed cfg packed);
    let before = Gc.allocated_bytes () in
    ignore (Core.Simulator.run_packed cfg packed);
    let per_event = (Gc.allocated_bytes () -. before) /. float_of_int prims in
    if per_event > 128.0 then
      Alcotest.failf "flat kernel allocates %.1f bytes/prim (ceiling 128)" per_event

let () =
  Alcotest.run "simkernel"
    [ ("rng",
       [ Alcotest.test_case "streams exact vs int64 reference" `Quick
           test_rng_streams_exact;
         Alcotest.test_case "split streams exact" `Quick test_rng_split_exact;
         Alcotest.test_case "weighted buckets" `Quick test_weighted_buckets;
         Alcotest.test_case "weighted single draw and edges" `Quick
           test_weighted_single_draw_and_edges ]);
      ("fingerprint memo",
       [ Alcotest.test_case "hot keys survive churn" `Quick
           test_fingerprint_memo_hot_keys_survive ]);
      ("equivalence",
       [ Alcotest.test_case "deep configs byte-identical" `Quick
           test_flat_matches_reference_deep;
         Alcotest.test_case "pack_source = pack" `Quick test_pack_source_equals_pack ]);
      ("allocation",
       [ Alcotest.test_case "steady-state ceiling" `Quick test_flat_allocation_ceiling ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_flat_matches_reference; prop_run_source_matches_reference ]) ]
