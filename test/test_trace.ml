(* Tests for the trace substrate: capture statistics, serialisation
   round-trips, the §5.2.1 preprocessing (unique ids + chaining flags) and
   the synthetic generator. *)

module D = Sexp.Datum
module E = Trace.Event

let mk_capture events =
  let c = Trace.Capture.create () in
  List.iter (Trace.Capture.record c) events;
  c

let prim p args result = E.Prim { prim = p; args; result }

let test_stats () =
  let c =
    mk_capture
      [ E.Call { name = "f"; nargs = 1 };
        prim E.Car [ Sexp.parse "(a b)" ] (D.sym "a");
        E.Call { name = "g"; nargs = 2 };
        prim E.Cdr [ Sexp.parse "(a b)" ] (Sexp.parse "(b)");
        E.Return { name = "g" };
        E.Return { name = "f" } ]
  in
  let st = Trace.Capture.stats c in
  Alcotest.(check int) "functions" 2 st.Trace.Capture.functions;
  Alcotest.(check int) "primitives" 2 st.Trace.Capture.primitives;
  Alcotest.(check int) "max depth" 2 st.Trace.Capture.max_depth

let test_capture_growth () =
  let c = Trace.Capture.create () in
  for i = 1 to 5000 do
    Trace.Capture.record c (prim E.Cons [ D.int i ] (D.list [ D.int i ]))
  done;
  Alcotest.(check int) "all recorded" 5000 (Trace.Capture.length c)

let test_io_roundtrip () =
  let c =
    mk_capture
      [ E.Call { name = "f"; nargs = 1 };
        prim E.Cons [ D.sym "a"; Sexp.parse "(b)" ] (Sexp.parse "(a b)");
        prim E.Rplaca [ Sexp.parse "(a b)"; D.int 3 ] (Sexp.parse "(3 b)");
        E.Return { name = "f" } ]
  in
  let path = Filename.temp_file "trace" ".txt" in
  Trace.Io.save path c;
  let c' = Trace.Io.load path in
  Sys.remove path;
  Alcotest.(check int) "same length" (Trace.Capture.length c) (Trace.Capture.length c');
  Array.iteri
    (fun i e ->
       let d1 = Trace.Io.event_to_datum e in
       let d2 = Trace.Io.event_to_datum (Trace.Capture.events c').(i) in
       Alcotest.(check bool) (Printf.sprintf "event %d" i) true (D.equal d1 d2))
    (Trace.Capture.events c)

let test_io_rejects_malformed () =
  Alcotest.check_raises "bad event"
    (Invalid_argument "Trace.Io: malformed event") (fun () ->
      ignore (Trace.Io.event_of_datum (Sexp.parse "(x y)")))

(* ---- binary format ---- *)

let captures_equal c c' =
  Trace.Capture.length c = Trace.Capture.length c'
  && Array.for_all2
       (fun a b -> D.equal (Trace.Io.event_to_datum a) (Trace.Io.event_to_datum b))
       (Trace.Capture.events c) (Trace.Capture.events c')

let test_binary_roundtrip_synth () =
  (* a real-sized stream through small chunks, so the intern table is
     exercised across many chunk boundaries *)
  let c = Trace.Synth.generate { Trace.Synth.default with length = 3000 } in
  let path = Filename.temp_file "trace" ".smtb" in
  let oc = open_out_bin path in
  let w = Trace.Binary.writer ~chunk_events:100 oc in
  Array.iter (Trace.Binary.write_event w) (Trace.Capture.events c);
  Trace.Binary.close_writer w;
  close_out oc;
  let c' = Trace.Io.load path in
  Sys.remove path;
  Alcotest.(check bool) "multi-chunk round-trip" true (captures_equal c c')

let test_binary_edge_datums () =
  let c =
    mk_capture
      [ E.Call { name = "Weird Name"; nargs = 0 };
        prim E.Cons [ D.int (-1); D.str "with \"quotes\" and \n" ]
          (D.cons (D.int max_int) (D.int min_int));
        (* improper spine and deep nesting *)
        prim E.Car [ Sexp.parse "((a . b) (c d . e))" ] (Sexp.parse "(a . b)");
        prim E.Cdr [ D.Nil ] D.Nil;
        prim E.Rplacd [ Sexp.parse "(((((x)))))"; D.sym "y" ] (Sexp.parse "(((((x)))))");
        E.Return { name = "Weird Name" } ]
  in
  let path = Filename.temp_file "trace" ".smtb" in
  Trace.Io.save ~format:Trace.Io.Binary path c;
  let c' = Trace.Io.load path in
  Sys.remove path;
  Alcotest.(check int) "length" (Trace.Capture.length c) (Trace.Capture.length c');
  Array.iteri
    (fun i e ->
       Alcotest.(check bool) (Printf.sprintf "event %d" i) true
         (e = (Trace.Capture.events c').(i)))
    (Trace.Capture.events c)

let test_binary_digest () =
  let c = Trace.Synth.generate { Trace.Synth.default with length = 200 } in
  let c2 = Trace.Synth.generate { Trace.Synth.default with length = 200 } in
  Alcotest.(check string) "equal captures digest alike"
    (Trace.Binary.digest c) (Trace.Binary.digest c2);
  Trace.Capture.record c2 (prim E.Car [ Sexp.parse "(z)" ] (D.sym "z"));
  Alcotest.(check bool) "an extra event changes the digest" true
    (Trace.Binary.digest c <> Trace.Binary.digest c2)

let test_binary_rejects_corrupt () =
  let path = Filename.temp_file "trace" ".smtb" in
  let oc = open_out_bin path in
  output_string oc Trace.Binary.magic;
  output_string oc "\x05\x03garbage";   (* 5 events claimed, 3 payload bytes *)
  close_out oc;
  let raised =
    match Trace.Io.load path with
    | _ -> false
    | exception Trace.Io.Corrupt { path = p; offset; reason } ->
      p = path && offset >= 0 && reason <> ""
  in
  Sys.remove path;
  Alcotest.(check bool) "corrupt stream rejected with typed error" true raised

(* Satellite: a valid binary trace truncated at EVERY byte boundary must
   load as Corrupt — never crash, hang, or silently yield a trace. *)
let test_binary_truncation_everywhere () =
  let c = Trace.Synth.generate { Trace.Synth.default with length = 120; seed = 9 } in
  let data = Trace.Binary.to_string c in
  let dir = Filename.temp_file "tracetrunc" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "t.smtb" in
  for cut = 0 to String.length data - 1 do
    let oc = open_out_bin path in
    output_string oc (String.sub data 0 cut);
    close_out oc;
    match Trace.Io.load path with
    | c' ->
      (* two legal silent loads: the empty prefix (sexp format, zero
         events), and stripping exactly the 12-byte trailer — a valid
         pre-checksum stream whose every event landed *)
      if cut = 0 then
        Alcotest.(check int) "empty prefix loads as empty sexp trace"
          0 (Trace.Capture.length c')
      else if cut = String.length data - 12 then
        Alcotest.(check bool) "trailer-stripped stream is still complete"
          true (captures_equal c c')
      else Alcotest.failf "truncation at %d/%d loaded silently" cut (String.length data)
    | exception Trace.Io.Corrupt { path = p; offset = _; reason = _ } ->
      Alcotest.(check string) "corrupt error names the file" path p
  done;
  Sys.remove path;
  Sys.rmdir dir

let test_sexp_corrupt_offsets () =
  let path = Filename.temp_file "trace" ".trace" in
  let oc = open_out_bin path in
  output_string oc "(c f 1)\n(((\n";
  close_out oc;
  (match Trace.Io.load path with
   | _ -> Alcotest.fail "garbage line accepted"
   | exception Trace.Io.Corrupt { offset; _ } ->
     Alcotest.(check int) "offset points at the bad line" 8 offset);
  let oc = open_out_bin path in
  output_string oc "(c f 1)\n(x y)\n";
  close_out oc;
  (match Trace.Io.load path with
   | _ -> Alcotest.fail "malformed event accepted"
   | exception Trace.Io.Corrupt { offset; _ } ->
     Alcotest.(check int) "offset points at the bad event" 8 offset);
  Sys.remove path

let test_binary_checksum_catches_bitflip () =
  let c = Trace.Synth.generate { Trace.Synth.default with length = 80; seed = 3 } in
  let data = Trace.Binary.to_string c in
  let path = Filename.temp_file "trace" ".smtb" in
  let caught = ref 0 and clean = ref 0 in
  for pos = String.length Trace.Binary.magic to String.length data - 1 do
    let b = Bytes.of_string data in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
    let oc = open_out_bin path in
    output_bytes oc b;
    close_out oc;
    match Trace.Io.load path with
    | _ -> incr clean
    | exception Trace.Io.Corrupt _ -> incr caught
  done;
  Sys.remove path;
  (* with the checksum trailer, every single-bit flip must be caught *)
  Alcotest.(check int) "every bit-flip detected" 0 !clean;
  Alcotest.(check bool) "some flips exercised" true (!caught > 0)

let test_save_is_atomic () =
  let dir = Filename.temp_file "tracedir" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "t.trace" in
  let c = mk_capture [ prim E.Car [ Sexp.parse "(a)" ] (D.sym "a") ] in
  Trace.Io.save path c;
  let c2 = mk_capture [ prim E.Cdr [ Sexp.parse "(a b)" ] (Sexp.parse "(b)") ] in
  Trace.Io.save ~format:Trace.Io.Binary path c2;   (* overwrite in place *)
  Alcotest.(check bool) "overwritten content wins" true
    (captures_equal c2 (Trace.Io.load path));
  Alcotest.(check (list string)) "no temp files left behind" [ "t.trace" ]
    (List.sort compare (Array.to_list (Sys.readdir dir)));
  Sys.remove path;
  Sys.rmdir dir

(* ---- preprocessing ---- *)

let test_preprocess_ids () =
  let l1 = Sexp.parse "(a b)" and l2 = Sexp.parse "(c d)" in
  let c =
    mk_capture
      [ prim E.Car [ l1 ] (D.sym "a");
        prim E.Car [ l2 ] (D.sym "c");
        prim E.Cdr [ l1 ] (Sexp.parse "(b)") ]
  in
  let p = Trace.Preprocess.run c in
  Alcotest.(check int) "distinct lists: (a b), (c d), (b)" 3 p.Trace.Preprocess.distinct_lists;
  (* first and third events reference the same id *)
  let id_of_event i =
    match p.Trace.Preprocess.events.(i) with
    | Trace.Preprocess.Pprim { args = [ List { id; _ } ]; _ } -> id
    | _ -> Alcotest.fail "expected a single list arg"
  in
  Alcotest.(check int) "structurally equal args share ids" (id_of_event 0) (id_of_event 2);
  Alcotest.(check bool) "different lists get different ids" true
    (id_of_event 0 <> id_of_event 1)

let test_preprocess_chaining () =
  let l = Sexp.parse "(a b c)" in
  let tail = Sexp.parse "(b c)" in
  let c =
    mk_capture
      [ prim E.Cdr [ l ] tail;
        (* chained: argument = previous result *)
        prim E.Car [ tail ] (D.sym "b");
        (* not chained: argument repeats the first list *)
        prim E.Car [ l ] (D.sym "a") ]
  in
  let p = Trace.Preprocess.run c in
  let chained_of i =
    match p.Trace.Preprocess.events.(i) with
    | Trace.Preprocess.Pprim { args = [ List { chained; _ } ]; _ } -> chained
    | _ -> Alcotest.fail "expected list arg"
  in
  Alcotest.(check bool) "second event chained" true (chained_of 1);
  Alcotest.(check bool) "third event not chained" false (chained_of 2)

let test_preprocess_chaining_across_calls () =
  (* function call/return events between two prims do not break chaining
     (§3.3.2.3: no pointer creation happens in between) *)
  let l = Sexp.parse "(a b)" and tail = Sexp.parse "(b)" in
  let c =
    mk_capture
      [ prim E.Cdr [ l ] tail;
        E.Call { name = "f"; nargs = 1 };
        prim E.Car [ tail ] (D.sym "b") ]
  in
  let p = Trace.Preprocess.run c in
  (match p.Trace.Preprocess.events.(2) with
   | Trace.Preprocess.Pprim { args = [ List { chained; _ } ]; _ } ->
     Alcotest.(check bool) "chained across the call" true chained
   | _ -> Alcotest.fail "expected list arg")

let test_preprocess_atoms () =
  let c = mk_capture [ prim E.Cons [ D.int 1; Sexp.parse "(2)" ] (Sexp.parse "(1 2)") ] in
  let p = Trace.Preprocess.run c in
  (match p.Trace.Preprocess.events.(0) with
   | Trace.Preprocess.Pprim { args = [ Atom (D.Int 1); List _ ]; result = List _; _ } -> ()
   | _ -> Alcotest.fail "atom argument must stay an atom");
  Alcotest.(check int) "np table sized by distinct lists"
    p.Trace.Preprocess.distinct_lists
    (Array.length p.Trace.Preprocess.np_by_id)

let test_prim_refs () =
  let l = Sexp.parse "(a b)" in
  let c =
    mk_capture
      [ prim E.Cdr [ l ] (Sexp.parse "(b)");
        E.Call { name = "f"; nargs = 0 };
        prim E.Cons [ D.int 1; l ] (D.cons (D.int 1) l) ]
  in
  let refs = Trace.Preprocess.prim_refs (Trace.Preprocess.run c) in
  (* cdr: arg + list result = 2; cons: 1 list arg + result = 2 *)
  Alcotest.(check int) "reference stream length" 4 (Array.length refs)

(* ---- synthetic generator ---- *)

let test_synth_deterministic () =
  let cfg = { Trace.Synth.default with length = 500 } in
  let a = Trace.Synth.generate cfg and b = Trace.Synth.generate cfg in
  Alcotest.(check int) "same length" (Trace.Capture.length a) (Trace.Capture.length b);
  let da = Array.map Trace.Io.event_to_datum (Trace.Capture.events a) in
  let db = Array.map Trace.Io.event_to_datum (Trace.Capture.events b) in
  Alcotest.(check bool) "identical streams from one seed" true
    (Array.for_all2 D.equal da db)

let test_synth_valid_semantics () =
  (* every car/cdr event's result must actually be the car/cdr of its
     argument *)
  let cap = Trace.Synth.generate { Trace.Synth.default with length = 2000 } in
  Array.iter
    (fun (e : E.t) ->
       match e with
       | E.Prim { prim = E.Car; args = [ a ]; result } ->
         Alcotest.(check bool) "car semantics" true (D.equal result (D.car a))
       | E.Prim { prim = E.Cdr; args = [ a ]; result } ->
         Alcotest.(check bool) "cdr semantics" true (D.equal result (D.cdr a))
       | E.Prim { prim = E.Cons; args = [ a; d ]; result } ->
         Alcotest.(check bool) "cons semantics" true (D.equal result (D.cons a d))
       | _ -> ())
    (Trace.Capture.events cap)

let test_synth_balanced_calls () =
  let cap = Trace.Synth.generate { Trace.Synth.default with length = 3000 } in
  let depth = ref 0 in
  Array.iter
    (fun (e : E.t) ->
       match e with
       | E.Call _ -> incr depth
       | E.Return _ ->
         decr depth;
         Alcotest.(check bool) "never returns below zero" true (!depth >= 0)
       | E.Prim _ -> ())
    (Trace.Capture.events cap);
  Alcotest.(check int) "calls balanced at end" 0 !depth

let test_synth_mix_profiles () =
  let share prim cfg =
    let mix = Analysis.Prim_mix.analyze (Trace.Synth.generate { cfg with Trace.Synth.length = 4000 }) in
    Analysis.Prim_mix.pct mix prim
  in
  Alcotest.(check bool) "cons-heavy profile really is" true
    (share E.Cons Trace.Synth.cons_heavy > share E.Cons Trace.Synth.default +. 5.);
  Alcotest.(check bool) "rplac-heavy profile really is" true
    (share E.Rplaca Trace.Synth.rplac_heavy +. share E.Rplacd Trace.Synth.rplac_heavy
     > 20.)

let prop_io_roundtrip =
  QCheck.Test.make ~name:"io event datum round-trip" ~count:100
    (QCheck.make
       (QCheck.Gen.oneof
          [ QCheck.Gen.return (E.Call { name = "fn"; nargs = 2 });
            QCheck.Gen.return (E.Return { name = "fn" });
            QCheck.Gen.map
              (fun n -> prim E.Cons [ D.int n; Sexp.parse "(x)" ] (D.list [ D.int n; D.sym "x" ]))
              (QCheck.Gen.int_range 0 100) ]))
    (fun e ->
      let d = Trace.Io.event_to_datum e in
      D.equal d (Trace.Io.event_to_datum (Trace.Io.event_of_datum d)))

(* Random event streams: [Binary.write . Binary.read = id], cross-checked
   against the sexp-lines codec over the same capture.  Atoms are kept
   inside what the sexp reader round-trips exactly (lower-case symbols,
   ints, nil), so both codecs must agree with the original and with each
   other. *)
let gen_datum =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let atom =
          oneof
            [ return D.Nil;
              map D.int (int_range (-1000) 1000);
              map D.sym (oneofl [ "a"; "b"; "x"; "longer-symbol" ]) ]
        in
        if n <= 0 then atom
        else
          frequency
            [ (2, atom);
              (3,
               map2
                 (fun elems tail -> List.fold_right D.cons elems tail)
                 (list_size (int_range 1 4) (self (n / 2)))
                 (oneof [ return D.Nil; map D.int (int_range 0 9) ])) ]))

let gen_event =
  QCheck.Gen.(
    frequency
      [ (1, map2 (fun name nargs -> E.Call { name; nargs })
             (oneofl [ "f"; "g"; "h" ]) (int_range 0 4));
        (1, map (fun name -> E.Return { name }) (oneofl [ "f"; "g"; "h" ]));
        (4,
         map3
           (fun p args result -> prim p args result)
           (oneofl [ E.Car; E.Cdr; E.Cons; E.Rplaca; E.Rplacd ])
           (list_size (int_range 0 3) gen_datum)
           gen_datum) ])

let prop_binary_roundtrip =
  QCheck.Test.make ~name:"binary round-trip matches sexp codec" ~count:60
    (QCheck.make QCheck.Gen.(list_size (int_range 0 40) gen_event))
    (fun events ->
      let c = mk_capture events in
      let via format suffix =
        let path = Filename.temp_file "trace" suffix in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
             Trace.Io.save ~format path c;
             Trace.Io.load path)
      in
      let b = via Trace.Io.Binary ".smtb" in
      let s = via Trace.Io.Sexp_lines ".trace" in
      captures_equal c b && captures_equal c s && captures_equal b s)

(* Fuzz the decoder: random byte-flips and truncations of a valid
   encoded stream must load as either a typed Corrupt or a valid capture
   — never any other exception, crash, or hang. *)
let prop_binary_fuzz_corruption =
  QCheck.Test.make ~name:"corrupted binary streams fail typed or load" ~count:200
    (QCheck.make
       QCheck.Gen.(
         triple
           (list_size (int_range 1 30) gen_event)
           (list_size (int_range 0 6) (pair (int_range 0 10_000) (int_range 1 255)))
           (opt (int_range 0 10_000))))
    (fun (events, flips, trunc) ->
      let data = Trace.Binary.to_string (mk_capture events) in
      let b = Bytes.of_string data in
      List.iter
        (fun (pos, x) ->
           let pos = pos mod Bytes.length b in
           Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor x)))
        flips;
      let mutated =
        match trunc with
        | Some cut -> Bytes.sub_string b 0 (cut mod (Bytes.length b + 1))
        | None -> Bytes.to_string b
      in
      let path = Filename.temp_file "tracefuzz" ".smtb" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
           let oc = open_out_bin path in
           output_string oc mutated;
           close_out oc;
           match Trace.Io.load path with
           | (_ : Trace.Capture.t) -> true
           | exception Trace.Io.Corrupt _ -> true
           | exception _ -> false))

let () =
  Alcotest.run "trace"
    [ ("capture",
       [ Alcotest.test_case "stats" `Quick test_stats;
         Alcotest.test_case "growth" `Quick test_capture_growth ]);
      ("io",
       [ Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
         Alcotest.test_case "malformed" `Quick test_io_rejects_malformed;
         Alcotest.test_case "atomic save" `Quick test_save_is_atomic ]);
      ("binary",
       [ Alcotest.test_case "multi-chunk roundtrip" `Quick test_binary_roundtrip_synth;
         Alcotest.test_case "edge datums" `Quick test_binary_edge_datums;
         Alcotest.test_case "digest" `Quick test_binary_digest;
         Alcotest.test_case "corrupt stream" `Quick test_binary_rejects_corrupt;
         Alcotest.test_case "truncation everywhere" `Quick test_binary_truncation_everywhere;
         Alcotest.test_case "sexp corrupt offsets" `Quick test_sexp_corrupt_offsets;
         Alcotest.test_case "checksum catches bit-flips" `Quick
           test_binary_checksum_catches_bitflip ]);
      ("preprocess",
       [ Alcotest.test_case "unique ids" `Quick test_preprocess_ids;
         Alcotest.test_case "chaining" `Quick test_preprocess_chaining;
         Alcotest.test_case "chaining across calls" `Quick test_preprocess_chaining_across_calls;
         Alcotest.test_case "atoms" `Quick test_preprocess_atoms;
         Alcotest.test_case "prim refs" `Quick test_prim_refs ]);
      ("synth",
       [ Alcotest.test_case "deterministic" `Quick test_synth_deterministic;
         Alcotest.test_case "valid semantics" `Quick test_synth_valid_semantics;
         Alcotest.test_case "balanced calls" `Quick test_synth_balanced_calls;
         Alcotest.test_case "mix profiles" `Quick test_synth_mix_profiles ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_io_roundtrip;
         QCheck_alcotest.to_alcotest prop_binary_roundtrip;
         QCheck_alcotest.to_alcotest prop_binary_fuzz_corruption ]) ]
