(* End-to-end CLI error discipline: every failure — bad arguments, a
   missing or corrupt trace, an unreadable fault plan — exits 2 with a
   short diagnostic on stderr, never a backtrace.  Runs the real
   executable (a dune rule dependency) via the shell. *)

let exe = "../bin/smallsim.exe"

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* [run args] -> (exit code, stderr lines); stdout is discarded. *)
let run args =
  let err = Filename.temp_file "clierr" ".txt" in
  let code = Sys.command (Printf.sprintf "%s %s >/dev/null 2>%s" exe args err) in
  let ic = open_in err in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove err;
  (code, List.rev !lines)

let check_failure ?expect name args =
  let code, lines = run args in
  Alcotest.(check int) (name ^ ": exit code") 2 code;
  Alcotest.(check bool) (name ^ ": stderr not empty") true (lines <> []);
  (* a backtrace would add "Raised at ..." lines *)
  List.iter
    (fun l ->
       Alcotest.(check bool) (name ^ ": no backtrace") false
         (contains l "Raised at" || contains l "Called from"))
    lines;
  match expect with
  | None -> ()
  | Some needle ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: stderr mentions %S" name needle)
      true
      (List.exists (fun l -> contains l needle) lines)

let one_line name args expect =
  let code, lines = run args in
  Alcotest.(check int) (name ^ ": exit code") 2 code;
  Alcotest.(check int) (name ^ ": exactly one stderr line") 1 (List.length lines);
  Alcotest.(check bool)
    (Printf.sprintf "%s: line mentions %S" name expect)
    true
    (contains (List.hd lines) expect)

let test_missing_source () =
  one_line "analyze without a source" "analyze" "need --workload or --trace"

let test_missing_trace_file () =
  check_failure "nonexistent trace file" "analyze -t /nonexistent/trace.smtb"

let test_corrupt_trace () =
  let path = Filename.temp_file "clibad" ".trace" in
  let oc = open_out_bin path in
  output_string oc "((((((((( this is not a trace";
  close_out oc;
  one_line "corrupt trace" (Printf.sprintf "analyze -t %s" (Filename.quote path))
    "Corrupt";
  Sys.remove path

let test_truncated_binary_trace () =
  let capture = Trace.Synth.generate { Trace.Synth.default with length = 200 } in
  let path = Filename.temp_file "clitrunc" ".smtb" in
  Trace.Io.save ~format:Trace.Io.Binary path capture;
  let ic = open_in_bin path in
  let full = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full / 2));
  close_out oc;
  one_line "truncated binary trace"
    (Printf.sprintf "simulate -t %s" (Filename.quote path))
    "Corrupt";
  Sys.remove path

let test_missing_fault_plan () =
  one_line "missing fault plan" "serve --stdio --fault-plan /nonexistent/plan.sexp"
    "bad fault plan"

let test_malformed_fault_plan () =
  let path = Filename.temp_file "cliplan" ".sexp" in
  let oc = open_out path in
  output_string oc "(fault-plan (seed banana))";
  close_out oc;
  one_line "malformed fault plan"
    (Printf.sprintf "serve --stdio --fault-plan %s" (Filename.quote path))
    "bad fault plan";
  Sys.remove path

let test_invalid_fault_rate () =
  let path = Filename.temp_file "cliplan" ".sexp" in
  let oc = open_out path in
  output_string oc "(fault-plan (seed 1) (write-fail 2.5))";
  close_out oc;
  one_line "out-of-range fault rate"
    (Printf.sprintf "serve --stdio --fault-plan %s" (Filename.quote path))
    "bad fault plan";
  Sys.remove path

let test_bad_retries () =
  one_line "negative retries" "serve --stdio --retries=-1"
    "--retries must be non-negative"

let test_unknown_option () =
  check_failure "unknown option" "simulate --frobnicate"

let test_unknown_command () =
  check_failure "unknown command" "transmogrify"

let test_success_paths () =
  let code, _ = run "workloads" in
  Alcotest.(check int) "workloads exits 0" 0 code;
  let code, _ = run "--version" in
  Alcotest.(check int) "--version exits 0" 0 code

(* Regression for the header-only stats path: `trace --stats` over a
   multi-MB binary trace must succeed quickly through the real CLI —
   the event count comes from chunk headers and preprocessing runs off
   the flat batches, with no event materialisation. *)
let test_trace_stats_large_binary () =
  let capture = Trace.Synth.generate { Trace.Synth.default with length = 300_000 } in
  let path = Filename.temp_file "clibig" ".smtb" in
  Trace.Io.save ~format:Trace.Io.Binary path capture;
  let ic = open_in_bin path in
  let size = in_channel_length ic in
  close_in ic;
  Alcotest.(check bool) "trace is multi-MB" true (size > 2_000_000);
  let code, lines =
    run (Printf.sprintf "trace --stats -t %s" (Filename.quote path))
  in
  Sys.remove path;
  Alcotest.(check int) "trace --stats exits 0" 0 code;
  Alcotest.(check (list string)) "no stderr noise" [] lines

(* [run_out args] -> (exit code, stdout lines); stderr is discarded. *)
let run_out args =
  let out = Filename.temp_file "cliout" ".txt" in
  let code = Sys.command (Printf.sprintf "%s %s >%s 2>/dev/null" exe args out) in
  let ic = open_in out in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove out;
  (code, List.rev !lines)

let temp_sock () =
  let p = Filename.temp_file "clisock" ".sock" in
  Sys.remove p;
  p

(* ---- cluster CLI surface ---- *)

let test_submit_fails_fast_without_retries () =
  let sock = temp_sock () in
  let t0 = Unix.gettimeofday () in
  one_line "refused connection, no retries"
    (Printf.sprintf "submit --socket %s --connect-retries 0 '(ping)'"
       (Filename.quote sock))
    "cannot connect";
  Alcotest.(check bool) "no backoff delay was paid" true
    (Unix.gettimeofday () -. t0 < 1.0)

let test_submit_backoff_reaches_late_server () =
  let sock = temp_sock () in
  (* the server comes up ~300ms AFTER submit starts: only the
     exponential backoff bridges the gap *)
  let server =
    Printf.sprintf
      "(sleep 0.3; exec %s serve --socket %s --workers 1 --queue 4) >/dev/null 2>&1 &"
      exe (Filename.quote sock)
  in
  Alcotest.(check int) "server launcher ok" 0 (Sys.command server);
  let code, lines = run_out (Printf.sprintf "submit --socket %s '(ping)'" (Filename.quote sock)) in
  Alcotest.(check int) "submit succeeds despite the late bind" 0 code;
  Alcotest.(check bool) "pong came back" true
    (List.exists (fun l -> contains l "\"pong\":true") lines);
  let code, _ = run_out (Printf.sprintf "submit --socket %s '(quit)'" (Filename.quote sock)) in
  Alcotest.(check int) "quit delivered" 0 code;
  (* the server unlinks its socket on the way out *)
  let gone = ref false in
  (try
     for _ = 1 to 100 do
       if not (Sys.file_exists sock) then begin gone := true; raise Exit end;
       Unix.sleepf 0.02
     done
   with Exit -> ());
  Alcotest.(check bool) "socket cleaned up" true !gone

let test_serve_refuses_regular_file_socket () =
  let path = Filename.temp_file "clinotsock" ".txt" in
  (* the serve banner precedes the failure on stderr, so don't count lines *)
  check_failure ~expect:"not a socket" "regular file where the socket goes"
    (Printf.sprintf "serve --socket %s --workers 1" (Filename.quote path));
  Alcotest.(check bool) "file untouched" true (Sys.file_exists path);
  Sys.remove path

let test_serve_replaces_stale_socket () =
  let sock = temp_sock () in
  (* leave a stale socket file behind, as a SIGKILLed server would *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX sock);
  Unix.close fd;
  let server =
    Printf.sprintf "exec %s serve --socket %s --workers 1 --queue 4 >/dev/null 2>&1 &"
      exe (Filename.quote sock)
  in
  Alcotest.(check int) "server launcher ok" 0 (Sys.command server);
  let code, lines =
    run_out (Printf.sprintf "submit --socket %s '(ping)'" (Filename.quote sock))
  in
  Alcotest.(check int) "server bound over the stale socket" 0 code;
  Alcotest.(check bool) "and answers" true
    (List.exists (fun l -> contains l "\"pong\":true") lines);
  ignore (run_out (Printf.sprintf "submit --socket %s '(quit)'" (Filename.quote sock)))

let test_route_cluster_end_to_end () =
  let sock = temp_sock () in
  let router =
    Printf.sprintf
      "exec %s route --socket %s --shards 2 --shard-workers 1 >/dev/null 2>&1 &"
      exe (Filename.quote sock)
  in
  Alcotest.(check int) "router launcher ok" 0 (Sys.command router);
  let code, lines =
    run_out
      (Printf.sprintf
         "submit --socket %s '(simulate (workload plagen) (size 48) (seed 1))'"
         (Filename.quote sock))
  in
  Alcotest.(check int) "routed job ok" 0 code;
  Alcotest.(check bool) "reply names its shard" true
    (List.exists
       (fun l -> contains l "\"status\":\"ok\"" && contains l "\"shard\":\"s")
       lines);
  (* the same job again: a cache hit on the owning shard *)
  let _, lines2 =
    run_out
      (Printf.sprintf
         "submit --socket %s '(simulate (workload plagen) (size 48) (seed 1))'"
         (Filename.quote sock))
  in
  Alcotest.(check bool) "repeat served from the shard cache" true
    (List.exists (fun l -> contains l "\"cached\":true") lines2);
  ignore (run_out (Printf.sprintf "submit --socket %s '(quit)'" (Filename.quote sock)))

let test_loadgen_bad_args () =
  one_line "loadgen rejects unknown workload" "loadgen --workload nosuch --requests 4"
    "unknown workload";
  one_line "loadgen rejects zero requests" "loadgen --requests 0"
    "--requests must be at least 1"

let () =
  Alcotest.run "cli"
    [ ("errors",
       [ Alcotest.test_case "missing source" `Quick test_missing_source;
         Alcotest.test_case "missing trace file" `Quick test_missing_trace_file;
         Alcotest.test_case "corrupt trace" `Quick test_corrupt_trace;
         Alcotest.test_case "truncated binary trace" `Quick test_truncated_binary_trace;
         Alcotest.test_case "missing fault plan" `Quick test_missing_fault_plan;
         Alcotest.test_case "malformed fault plan" `Quick test_malformed_fault_plan;
         Alcotest.test_case "out-of-range fault rate" `Quick test_invalid_fault_rate;
         Alcotest.test_case "negative retries" `Quick test_bad_retries;
         Alcotest.test_case "unknown option" `Quick test_unknown_option;
         Alcotest.test_case "unknown command" `Quick test_unknown_command;
         Alcotest.test_case "success paths" `Quick test_success_paths;
         Alcotest.test_case "trace --stats on a large binary trace" `Quick
           test_trace_stats_large_binary ]);
      ("cluster",
       [ Alcotest.test_case "submit fails fast without retries" `Quick
           test_submit_fails_fast_without_retries;
         Alcotest.test_case "submit backoff reaches a late server" `Quick
           test_submit_backoff_reaches_late_server;
         Alcotest.test_case "serve refuses a regular file" `Quick
           test_serve_refuses_regular_file_socket;
         Alcotest.test_case "serve replaces a stale socket" `Quick
           test_serve_replaces_stale_socket;
         Alcotest.test_case "route end to end" `Quick test_route_cluster_end_to_end;
         Alcotest.test_case "loadgen argument validation" `Quick
           test_loadgen_bad_args ]) ]
