(* End-to-end CLI error discipline: every failure — bad arguments, a
   missing or corrupt trace, an unreadable fault plan — exits 2 with a
   short diagnostic on stderr, never a backtrace.  Runs the real
   executable (a dune rule dependency) via the shell. *)

let exe = "../bin/smallsim.exe"

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* [run args] -> (exit code, stderr lines); stdout is discarded. *)
let run args =
  let err = Filename.temp_file "clierr" ".txt" in
  let code = Sys.command (Printf.sprintf "%s %s >/dev/null 2>%s" exe args err) in
  let ic = open_in err in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove err;
  (code, List.rev !lines)

let check_failure ?expect name args =
  let code, lines = run args in
  Alcotest.(check int) (name ^ ": exit code") 2 code;
  Alcotest.(check bool) (name ^ ": stderr not empty") true (lines <> []);
  (* a backtrace would add "Raised at ..." lines *)
  List.iter
    (fun l ->
       Alcotest.(check bool) (name ^ ": no backtrace") false
         (contains l "Raised at" || contains l "Called from"))
    lines;
  match expect with
  | None -> ()
  | Some needle ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: stderr mentions %S" name needle)
      true
      (List.exists (fun l -> contains l needle) lines)

let one_line name args expect =
  let code, lines = run args in
  Alcotest.(check int) (name ^ ": exit code") 2 code;
  Alcotest.(check int) (name ^ ": exactly one stderr line") 1 (List.length lines);
  Alcotest.(check bool)
    (Printf.sprintf "%s: line mentions %S" name expect)
    true
    (contains (List.hd lines) expect)

let test_missing_source () =
  one_line "analyze without a source" "analyze" "need --workload or --trace"

let test_missing_trace_file () =
  check_failure "nonexistent trace file" "analyze -t /nonexistent/trace.smtb"

let test_corrupt_trace () =
  let path = Filename.temp_file "clibad" ".trace" in
  let oc = open_out_bin path in
  output_string oc "((((((((( this is not a trace";
  close_out oc;
  one_line "corrupt trace" (Printf.sprintf "analyze -t %s" (Filename.quote path))
    "Corrupt";
  Sys.remove path

let test_truncated_binary_trace () =
  let capture = Trace.Synth.generate { Trace.Synth.default with length = 200 } in
  let path = Filename.temp_file "clitrunc" ".smtb" in
  Trace.Io.save ~format:Trace.Io.Binary path capture;
  let ic = open_in_bin path in
  let full = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full / 2));
  close_out oc;
  one_line "truncated binary trace"
    (Printf.sprintf "simulate -t %s" (Filename.quote path))
    "Corrupt";
  Sys.remove path

let test_missing_fault_plan () =
  one_line "missing fault plan" "serve --stdio --fault-plan /nonexistent/plan.sexp"
    "bad fault plan"

let test_malformed_fault_plan () =
  let path = Filename.temp_file "cliplan" ".sexp" in
  let oc = open_out path in
  output_string oc "(fault-plan (seed banana))";
  close_out oc;
  one_line "malformed fault plan"
    (Printf.sprintf "serve --stdio --fault-plan %s" (Filename.quote path))
    "bad fault plan";
  Sys.remove path

let test_invalid_fault_rate () =
  let path = Filename.temp_file "cliplan" ".sexp" in
  let oc = open_out path in
  output_string oc "(fault-plan (seed 1) (write-fail 2.5))";
  close_out oc;
  one_line "out-of-range fault rate"
    (Printf.sprintf "serve --stdio --fault-plan %s" (Filename.quote path))
    "bad fault plan";
  Sys.remove path

let test_bad_retries () =
  one_line "negative retries" "serve --stdio --retries=-1"
    "--retries must be non-negative"

let test_unknown_option () =
  check_failure "unknown option" "simulate --frobnicate"

let test_unknown_command () =
  check_failure "unknown command" "transmogrify"

let test_success_paths () =
  let code, _ = run "workloads" in
  Alcotest.(check int) "workloads exits 0" 0 code;
  let code, _ = run "--version" in
  Alcotest.(check int) "--version exits 0" 0 code

(* Regression for the header-only stats path: `trace --stats` over a
   multi-MB binary trace must succeed quickly through the real CLI —
   the event count comes from chunk headers and preprocessing runs off
   the flat batches, with no event materialisation. *)
let test_trace_stats_large_binary () =
  let capture = Trace.Synth.generate { Trace.Synth.default with length = 300_000 } in
  let path = Filename.temp_file "clibig" ".smtb" in
  Trace.Io.save ~format:Trace.Io.Binary path capture;
  let ic = open_in_bin path in
  let size = in_channel_length ic in
  close_in ic;
  Alcotest.(check bool) "trace is multi-MB" true (size > 2_000_000);
  let code, lines =
    run (Printf.sprintf "trace --stats -t %s" (Filename.quote path))
  in
  Sys.remove path;
  Alcotest.(check int) "trace --stats exits 0" 0 code;
  Alcotest.(check (list string)) "no stderr noise" [] lines

let () =
  Alcotest.run "cli"
    [ ("errors",
       [ Alcotest.test_case "missing source" `Quick test_missing_source;
         Alcotest.test_case "missing trace file" `Quick test_missing_trace_file;
         Alcotest.test_case "corrupt trace" `Quick test_corrupt_trace;
         Alcotest.test_case "truncated binary trace" `Quick test_truncated_binary_trace;
         Alcotest.test_case "missing fault plan" `Quick test_missing_fault_plan;
         Alcotest.test_case "malformed fault plan" `Quick test_malformed_fault_plan;
         Alcotest.test_case "out-of-range fault rate" `Quick test_invalid_fault_rate;
         Alcotest.test_case "negative retries" `Quick test_bad_retries;
         Alcotest.test_case "unknown option" `Quick test_unknown_option;
         Alcotest.test_case "unknown command" `Quick test_unknown_command;
         Alcotest.test_case "success paths" `Quick test_success_paths;
         Alcotest.test_case "trace --stats on a large binary trace" `Quick
           test_trace_stats_large_binary ]) ]
