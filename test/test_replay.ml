(* Zero-copy replay: equivalence of the mapped, Bytes-fallback and
   legacy streaming readers; corruption fuzz of the mapped path; the
   header-only stats path; and the determinism regression that flat-batch
   preprocessing (and simulation on top of it) is byte-identical to the
   capture-based pipeline. *)

module D = Sexp.Datum
module E = Trace.Event
module B = Trace.Binary

let mk_capture events =
  let c = Trace.Capture.create () in
  List.iter (Trace.Capture.record c) events;
  c

let prim p args result = E.Prim { prim = p; args; result }

let captures_equal c c' =
  Trace.Capture.length c = Trace.Capture.length c'
  && Array.for_all2
       (fun a b -> D.equal (Trace.Io.event_to_datum a) (Trace.Io.event_to_datum b))
       (Trace.Capture.events c) (Trace.Capture.events c')

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let with_temp_trace data f =
  let path = Filename.temp_file "replay" ".smtb" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       write_file path data;
       f path)

(* Decode [data] through each reader. *)
let via_mapped path = B.capture_of_source (B.source_of_path path)
let via_bytes path = B.capture_of_source (B.source_of_path ~mmap:false path)
let via_string data = B.capture_of_source (B.source_of_string data)

let via_channel path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> B.read_channel ic)

let encode ?version ?(chunk_events = 4096) capture =
  let buf = Buffer.create 4096 in
  let path = Filename.temp_file "replayenc" ".smtb" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       let oc = open_out_bin path in
       let w = B.writer ?version ~chunk_events oc in
       Array.iter (B.write_event w) (Trace.Capture.events capture);
       B.close_writer w;
       close_out oc;
       let ic = open_in_bin path in
       Buffer.add_string buf (really_input_string ic (in_channel_length ic));
       close_in ic;
       Buffer.contents buf)

(* ---- reader equivalence ---- *)

let check_all_readers name capture data =
  with_temp_trace data (fun path ->
      Alcotest.(check bool) (name ^ ": mapped") true
        (captures_equal capture (via_mapped path));
      Alcotest.(check bool) (name ^ ": bytes fallback") true
        (captures_equal capture (via_bytes path));
      Alcotest.(check bool) (name ^ ": string source") true
        (captures_equal capture (via_string data));
      Alcotest.(check bool) (name ^ ": legacy channel") true
        (captures_equal capture (via_channel path)))

let test_readers_agree_synth () =
  let c = Trace.Synth.generate { Trace.Synth.default with length = 3000; seed = 7 } in
  check_all_readers "v2 multi-chunk" c (encode ~chunk_events:100 c);
  check_all_readers "v1 multi-chunk" c (encode ~version:B.V1 ~chunk_events:100 c)

let test_readers_agree_edge_chunking () =
  let c = Trace.Synth.generate { Trace.Synth.default with length = 64; seed = 11 } in
  (* one event per chunk, and everything in one chunk *)
  check_all_readers "chunk_events=1" c (encode ~chunk_events:1 c);
  check_all_readers "chunk_events=4096" c (encode ~chunk_events:4096 c)

let test_trailerless_legacy_files () =
  (* strip the 12-byte trailer: a pre-checksum file, both revisions *)
  let c = Trace.Synth.generate { Trace.Synth.default with length = 200; seed = 5 } in
  List.iter
    (fun version ->
       let data = encode ?version c in
       let stripped = String.sub data 0 (String.length data - 12) in
       check_all_readers "trailer-less" c stripped)
    [ None; Some B.V1 ]

let test_empty_trace () =
  let c = mk_capture [] in
  check_all_readers "empty" c (encode c)

(* ---- the batch adapter ---- *)

let test_batch_adapter_roundtrip () =
  let c =
    mk_capture
      [ E.Call { name = "Weird Name"; nargs = 0 };
        prim E.Cons [ D.int (-1); D.str "s \"q\" \n" ]
          (D.cons (D.int max_int) (D.int min_int));
        prim E.Car [ Sexp.parse "((a . b) (c d . e))" ] (Sexp.parse "(a . b)");
        prim E.Cdr [ D.Nil ] D.Nil;
        prim E.Rplacd [ Sexp.parse "(((((x)))))"; D.sym "y" ] (Sexp.parse "(((((x)))))");
        E.Return { name = "Weird Name" } ]
  in
  let data = encode c in
  let events = ref [] in
  B.iter_source (B.source_of_string data) (fun e -> events := e :: !events);
  let events = Array.of_list (List.rev !events) in
  Alcotest.(check int) "length" (Trace.Capture.length c) (Array.length events);
  Array.iteri
    (fun i e ->
       Alcotest.(check bool) (Printf.sprintf "event %d" i) true
         (e = (Trace.Capture.events c).(i)))
    events

(* ---- header-only statistics ---- *)

let test_header_stats_no_decode () =
  (* a multi-MB trace: the header walk must answer without decoding
     payloads or materialising events — asserted by an allocation
     budget far below the file size *)
  let c = Trace.Synth.generate { Trace.Synth.default with length = 300_000; seed = 2 } in
  let data = encode c in
  Alcotest.(check bool) "trace is multi-MB" true (String.length data > 2_000_000);
  with_temp_trace data (fun path ->
      let src = B.source_of_path path in
      let before = Gc.allocated_bytes () in
      let hs = B.header_stats src in
      let allocated = Gc.allocated_bytes () -. before in
      Alcotest.(check int) "events from headers" (Trace.Capture.length c)
        hs.B.h_events;
      Alcotest.(check int) "stream length" (String.length data) hs.B.h_bytes;
      Alcotest.(check bool) "several chunks" true (hs.B.h_chunks > 10);
      Alcotest.(check bool)
        (Printf.sprintf "header walk allocates little (%.0f bytes)" allocated)
        true
        (allocated < 1_000_000.));
  (* and scan_stats agrees with the capture-side statistics *)
  let st = Trace.Capture.stats c in
  let st' = B.scan_stats (B.source_of_string data) in
  Alcotest.(check bool) "scan_stats matches capture stats" true (st = st')

let test_header_stats_detects_damage () =
  let c = Trace.Synth.generate { Trace.Synth.default with length = 500; seed = 4 } in
  let data = encode c in
  (* flip a byte inside a chunk *header* (just past the magic): the
     structural trailer must catch it even though payloads are skipped *)
  let b = Bytes.of_string data in
  Bytes.set b 6 (Char.chr (Char.code (Bytes.get b 6) lxor 1));
  match B.header_stats (B.source_of_string (Bytes.to_string b)) with
  | _ -> Alcotest.fail "damaged header accepted"
  | exception B.Corrupt _ -> ()

(* ---- corruption fuzz of the mapped path ---- *)

let gen_datum =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let atom =
          oneof
            [ return D.Nil;
              map D.int (int_range (-1000) 1000);
              map D.sym (oneofl [ "a"; "b"; "x"; "longer-symbol" ]);
              map D.str (oneofl [ ""; "s"; "two words" ]) ]
        in
        if n <= 0 then atom
        else
          frequency
            [ (2, atom);
              (3,
               map2
                 (fun elems tail -> List.fold_right D.cons elems tail)
                 (list_size (int_range 1 4) (self (n / 2)))
                 (oneof [ return D.Nil; map D.int (int_range 0 9) ])) ]))

let gen_event =
  QCheck.Gen.(
    frequency
      [ (1, map2 (fun name nargs -> E.Call { name; nargs })
             (oneofl [ "f"; "g"; "h" ]) (int_range 0 4));
        (1, map (fun name -> E.Return { name }) (oneofl [ "f"; "g"; "h" ]));
        (4,
         map3
           (fun p args result -> prim p args result)
           (oneofl [ E.Car; E.Cdr; E.Cons; E.Rplaca; E.Rplacd ])
           (list_size (int_range 0 3) gen_datum)
           gen_datum) ])

let prop_readers_equivalent =
  QCheck.Test.make ~name:"mapped = bytes = string = channel readers" ~count:60
    (QCheck.make
       QCheck.Gen.(pair (list_size (int_range 0 50) gen_event) (int_range 1 16)))
    (fun (events, chunk_events) ->
      let c = mk_capture events in
      let data = encode ~chunk_events c in
      with_temp_trace data (fun path ->
          captures_equal c (via_mapped path)
          && captures_equal c (via_bytes path)
          && captures_equal c (via_string data)
          && captures_equal c (via_channel path)))

(* Byte-flips and truncations of a valid stream, decoded through the
   mapped reader: must yield a typed Corrupt or a valid capture — never
   another exception, crash or hang.  Exercises both the mmap and
   Bytes-fallback views. *)
let prop_mapped_fuzz_corruption =
  QCheck.Test.make ~name:"corrupted streams fail typed on the mapped path"
    ~count:200
    (QCheck.make
       QCheck.Gen.(
         quad
           (list_size (int_range 1 30) gen_event)
           (list_size (int_range 0 6) (pair (int_range 0 10_000) (int_range 1 255)))
           (opt (int_range 0 10_000))
           bool))
    (fun (events, flips, trunc, use_mmap) ->
      let data = encode (mk_capture events) in
      let b = Bytes.of_string data in
      List.iter
        (fun (pos, x) ->
           let pos = pos mod Bytes.length b in
           Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor x)))
        flips;
      let mutated =
        match trunc with
        | Some cut -> Bytes.sub_string b 0 (cut mod (Bytes.length b + 1))
        | None -> Bytes.to_string b
      in
      with_temp_trace mutated (fun path ->
          match B.capture_of_source (B.source_of_path ~mmap:use_mmap path) with
          | (_ : Trace.Capture.t) -> true
          | exception B.Corrupt _ -> true
          | exception _ -> false))

(* Every single-bit flip in a v2 stream must be caught by the mapped
   reader (per-chunk FNV for payloads, the structural trailer for
   framing) — the mapped-path twin of the channel-reader test. *)
let test_mapped_checksum_catches_bitflip () =
  let c = Trace.Synth.generate { Trace.Synth.default with length = 80; seed = 3 } in
  let data = encode c in
  let clean = ref 0 and caught = ref 0 in
  for pos = String.length B.magic to String.length data - 1 do
    let b = Bytes.of_string data in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
    match B.capture_of_source (B.source_of_string (Bytes.to_string b)) with
    | _ -> incr clean
    | exception B.Corrupt _ -> incr caught
  done;
  Alcotest.(check int) "every bit-flip detected" 0 !clean;
  Alcotest.(check bool) "some flips exercised" true (!caught > 0)

(* The lib/fault battery against the mapped reader: a torn write (a
   lying disk landing a strict prefix, injected at site "trace.save")
   must never yield silently wrong data — every load either raises the
   typed Corrupt or, when the tear fell exactly on the trailer, the
   complete stream. *)
let test_torn_write_detected_by_mapped_reader () =
  let c = Trace.Synth.generate { Trace.Synth.default with length = 400; seed = 12 } in
  let detected = ref 0 in
  for seed = 1 to 20 do
    let plan = Fault.Plan.create { Fault.Plan.default with seed; torn_write = 1.0 } in
    let path = Filename.temp_file "torn" ".smtb" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
         B.save ~fault:plan path c;
         match via_mapped path with
         | c' ->
           Alcotest.(check bool) "a silent load is the complete stream" true
             (captures_equal c c')
         | exception B.Corrupt _ -> incr detected)
  done;
  Alcotest.(check bool) "torn writes detected" true (!detected >= 15)

(* ---- preprocessing determinism ---- *)

let preprocessed_equal (a : Trace.Preprocess.t) (b : Trace.Preprocess.t) =
  a.Trace.Preprocess.events = b.Trace.Preprocess.events
  && a.Trace.Preprocess.distinct_lists = b.Trace.Preprocess.distinct_lists
  && a.Trace.Preprocess.stats = b.Trace.Preprocess.stats
  && a.Trace.Preprocess.np_by_id = b.Trace.Preprocess.np_by_id

let test_run_source_matches_run_synth () =
  List.iter
    (fun (length, seed) ->
       let c = Trace.Synth.generate { Trace.Synth.default with length; seed } in
       let data = encode ~chunk_events:256 c in
       let p1 = Trace.Preprocess.run c in
       let p2 = Trace.Preprocess.run_source (B.source_of_string data) in
       Alcotest.(check bool)
         (Printf.sprintf "identical preprocessing (len %d seed %d)" length seed)
         true (preprocessed_equal p1 p2))
    [ (2000, 1); (5000, 42); (1000, 9) ]

let prop_run_source_matches_run =
  QCheck.Test.make ~name:"run_source = run . capture" ~count:60
    (QCheck.make
       QCheck.Gen.(pair (list_size (int_range 0 60) gen_event) (int_range 1 8)))
    (fun (events, chunk_events) ->
      let c = mk_capture events in
      let data = encode ~chunk_events c in
      preprocessed_equal (Trace.Preprocess.run c)
        (Trace.Preprocess.run_source (B.source_of_string data)))

(* The end-to-end determinism regression: simulator output over a binary
   trace is identical whichever pipeline fed it. *)
let test_simulator_identical_over_source () =
  let c = Trace.Synth.generate { Trace.Synth.default with length = 4000; seed = 6 } in
  let data = encode c in
  let pre_capture = Trace.Preprocess.run c in
  let pre_source = Trace.Preprocess.run_source (B.source_of_string data) in
  List.iter
    (fun cfg ->
       let s1 = Core.Simulator.run cfg pre_capture in
       let s2 = Core.Simulator.run cfg pre_source in
       Alcotest.(check bool) "identical simulator stats" true (s1 = s2))
    [ Core.Simulator.default_config;
      { Core.Simulator.default_config with table_size = 128; seed = 3 };
      { Core.Simulator.default_config with
        split_counts = true;
        cache = Some { Core.Simulator.cache_lines = 64; cache_line_size = 2 } } ]

(* Prim-mix parity across the three ways of counting. *)
let test_prim_mix_parity () =
  let c = Trace.Synth.generate { Trace.Synth.default with length = 3000; seed = 8 } in
  let data = encode c in
  let src () = B.source_of_string data in
  let m1 = Analysis.Prim_mix.analyze c in
  let m2 = Analysis.Prim_mix.analyze_source (src ()) in
  let m3 = Analysis.Prim_mix.of_preprocessed (Trace.Preprocess.run_source (src ())) in
  Alcotest.(check bool) "analyze = analyze_source" true (m1 = m2);
  Alcotest.(check bool) "analyze = of_preprocessed" true (m1 = m3)

let () =
  Alcotest.run "replay"
    [ ("equivalence",
       [ Alcotest.test_case "synth both revisions" `Quick test_readers_agree_synth;
         Alcotest.test_case "edge chunking" `Quick test_readers_agree_edge_chunking;
         Alcotest.test_case "trailer-less legacy" `Quick test_trailerless_legacy_files;
         Alcotest.test_case "empty trace" `Quick test_empty_trace;
         Alcotest.test_case "batch adapter" `Quick test_batch_adapter_roundtrip ]);
      ("header-stats",
       [ Alcotest.test_case "no decode, no materialisation" `Quick
           test_header_stats_no_decode;
         Alcotest.test_case "detects header damage" `Quick
           test_header_stats_detects_damage ]);
      ("corruption",
       [ Alcotest.test_case "mapped path catches bit-flips" `Quick
           test_mapped_checksum_catches_bitflip;
         Alcotest.test_case "torn writes detected" `Quick
           test_torn_write_detected_by_mapped_reader ]);
      ("determinism",
       [ Alcotest.test_case "run_source = run (synth)" `Quick
           test_run_source_matches_run_synth;
         Alcotest.test_case "simulator identical" `Quick
           test_simulator_identical_over_source;
         Alcotest.test_case "prim mix parity" `Quick test_prim_mix_parity ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_readers_equivalent;
         QCheck_alcotest.to_alcotest prop_mapped_fuzz_corruption;
         QCheck_alcotest.to_alcotest prop_run_source_matches_run ]) ]
