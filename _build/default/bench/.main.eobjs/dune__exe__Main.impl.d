bench/main.ml: Array List Printf Sections Sys Timings Unix
