bench/main.mli:
