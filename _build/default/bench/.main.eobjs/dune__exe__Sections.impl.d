bench/sections.ml: Analysis Array Context Core Float Fun Hashtbl Heap Lisp List Machine Multilisp Option Printf Repr Sexp Trace Util Workloads
