bench/context.ml: Core Hashtbl List Option Printf Workloads
