bench/timings.ml: Analysis Analyze Bechamel Benchmark Cache Core Hashtbl Instance Lazy Lisp List Machine Measure Printf Staged Test Time Toolkit Trace Util
