(* The benchmark harness: regenerates every table and figure of the
   thesis's evaluation (see DESIGN.md's per-experiment index) and, with
   --timings, runs the bechamel micro-benchmarks.

   Usage:
     dune exec bench/main.exe                 # every section
     dune exec bench/main.exe -- fig3.4 table5.2
     dune exec bench/main.exe -- --list
     dune exec bench/main.exe -- --timings *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let sections = Sections.all () in
  if List.mem "--list" args then begin
    print_endline "available sections:";
    List.iter (fun (name, descr, _) -> Printf.printf "  %-14s %s\n" name descr) sections;
    print_endline "  --timings      bechamel micro-benchmarks"
  end
  else begin
    let wanted = List.filter (fun a -> a <> "--timings") args in
    let selected =
      if wanted = [] then sections
      else
        List.filter_map
          (fun name ->
             match List.find_opt (fun (n, _, _) -> n = name) sections with
             | Some s -> Some s
             | None ->
               Printf.eprintf "unknown section %s (try --list)\n" name;
               None)
          wanted
    in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (name, descr, fn) ->
         Printf.printf "\n################ %s — %s\n" name descr;
         let t = Unix.gettimeofday () in
         fn ();
         Printf.printf "[%s done in %.1fs]\n" name (Unix.gettimeofday () -. t))
      selected;
    if List.mem "--timings" args then begin
      print_endline "\n################ timings (bechamel)";
      Timings.benchmark ()
    end;
    Printf.printf "\nall sections done in %.1fs\n" (Unix.gettimeofday () -. t0)
  end
