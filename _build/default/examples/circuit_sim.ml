(* Circuit simulation end to end — the SLANG scenario of the thesis.

   Runs the BCD-to-decimal decoder workload in the mini-Lisp, shows the
   decoded outputs, then pushes the captured trace through the Chapter 3
   locality analyses and a Chapter 5 SMALL-vs-cache simulation.

   Run with: dune exec examples/circuit_sim.exe *)

let () =
  let w = Option.get (Workloads.Registry.find "slang") in
  Printf.printf "workload: %s — %s\n\n" w.Workloads.Registry.name
    w.Workloads.Registry.description;

  (* Run it directly to see the simulated circuit at work. *)
  let interp = Lisp.Interp.create () in
  Lisp.Prelude.load interp;
  Lisp.Interp.provide_input interp w.Workloads.Registry.input;
  let result = Lisp.Interp.run_program interp w.Workloads.Registry.source in
  Printf.printf "vectors simulated: %s\n" (Lisp.Value.to_string result);

  (* Decode one digit explicitly. *)
  (match w.Workloads.Registry.input with
   | _ :: netlist :: outs :: _ ->
     Lisp.Interp.provide_input interp
       [ netlist; outs; Sexp.Datum.of_ints [ 0; 1; 1; 1 ] ];
     let one =
       Lisp.Interp.run_program interp "(sim-vector 38 (read) (read) (read))"
     in
     Printf.printf "decoder output for BCD 0111: %s\n\n" (Lisp.Value.to_string one)
   | _ -> ());

  (* Characterise the trace (Fig 3.1 / Table 3.1 view). *)
  let capture = Workloads.Registry.trace w in
  let pre = Workloads.Registry.preprocessed w in
  let mix = Analysis.Prim_mix.analyze capture in
  let np = Analysis.Np_stats.analyze pre in
  Printf.printf "trace: %d primitives; cons share %.1f%% (SLANG is the cons outlier)\n"
    mix.Analysis.Prim_mix.total
    (Analysis.Prim_mix.pct mix Trace.Event.Cons);
  Printf.printf "lists touched: mean n = %.1f, mean p = %.1f\n\n"
    (Analysis.Np_stats.mean_n np) (Analysis.Np_stats.mean_p np);

  (* Structural locality: the list-set partition. *)
  let sets = Analysis.List_sets.partition pre in
  Printf.printf "list sets: %d; the %d largest cover 80%% of all references\n"
    (List.length sets.Analysis.List_sets.sets)
    (Analysis.List_sets.sets_for_coverage sets 0.8);
  let stream = Analysis.List_sets.set_id_stream pre in
  let lru = Analysis.Lru_stack.analyze stream in
  Printf.printf "LRU stack depth 4 captures %.0f%% of list-set accesses\n\n"
    (100. *. Analysis.Lru_stack.hit_fraction lru 4);

  (* SMALL vs a data cache of the same size (Table 5.4's comparison). *)
  List.iter
    (fun size ->
       let sim =
         Core.Simulator.run
           { Core.Simulator.default_config with
             table_size = size;
             cache = Some { Core.Simulator.cache_lines = size; cache_line_size = 1 } }
           pre
       in
       Printf.printf
         "size %4d: LPT hit rate %.2f%% (%d misses) vs cache %.2f%% (%d misses)\n"
         size
         (100. *. Core.Simulator.lpt_hit_rate sim)
         sim.Core.Simulator.lpt.Core.Lpt.misses
         (100. *. Core.Simulator.cache_hit_rate sim)
         sim.Core.Simulator.cache_misses)
    [ 64; 128; 256; 512 ]
