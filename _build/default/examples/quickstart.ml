(* Quickstart: the public API in five minutes.

   1. evaluate Lisp with the interpreter;
   2. trace its list-primitive activity;
   3. analyse the trace (Chapter 3);
   4. drive the SMALL simulator with it (Chapter 5);
   5. compile a function to the SMALL stack machine and run it (§4.3.4).

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Evaluate some Lisp. *)
  let interp = Lisp.Interp.create () in
  Lisp.Prelude.load interp;
  let v =
    Lisp.Interp.run_program interp
      "(def fact (lambda (n) (cond ((zerop n) 1) (t (* n (fact (sub1 n)))))))
       (fact 12)"
  in
  Printf.printf "interpreted (fact 12)      = %s\n" (Lisp.Value.to_string v);

  (* 2. Trace a list-manipulating program. *)
  let capture =
    Lisp.Tracer.trace_program
      "(def flat (lambda (e)
         (cond ((null e) nil)
               ((atom e) (cons e nil))
               (t (append (flat (car e)) (flat (cdr e)))))))
       (flat (quote (a (b (c d)) (e))))"
  in
  let stats = Trace.Capture.stats capture in
  Printf.printf "traced primitives          = %d (max call depth %d)\n"
    stats.Trace.Capture.primitives stats.Trace.Capture.max_depth;

  (* 3. Chapter 3 analyses. *)
  let pre = Trace.Preprocess.run capture in
  let mix = Analysis.Prim_mix.analyze capture in
  Printf.printf "primitive mix              = car %.0f%% / cdr %.0f%% / cons %.0f%%\n"
    (Analysis.Prim_mix.pct mix Trace.Event.Car)
    (Analysis.Prim_mix.pct mix Trace.Event.Cdr)
    (Analysis.Prim_mix.pct mix Trace.Event.Cons);
  let sets = Analysis.List_sets.partition pre in
  Printf.printf "list sets                  = %d over %d references\n"
    (List.length sets.Analysis.List_sets.sets)
    sets.Analysis.List_sets.stream_length;

  (* 4. Simulate the SMALL architecture on the trace. *)
  let sim =
    Core.Simulator.run
      { Core.Simulator.default_config with table_size = 256 } pre
  in
  Printf.printf "SMALL LPT hit rate         = %.1f%% (peak occupancy %d entries)\n"
    (100. *. Core.Simulator.lpt_hit_rate sim) sim.Core.Simulator.peak_lpt;

  (* 5. Compile to the SMALL instruction set and emulate. *)
  let prog =
    Machine.Compile.parse_and_compile
      "(def fact (lambda (x) (cond ((= x 0) 1) (t (* x (fact (- x 1))))))) (fact 12)"
  in
  let em = Machine.Emulator.create prog in
  (match Machine.Emulator.run em with
   | Some v ->
     Printf.printf "compiled (fact 12)         = %s in %d instructions\n"
       (Sexp.to_string (Machine.Emulator.datum_of em v))
       (Machine.Emulator.instructions em)
   | None -> print_endline "compiled run produced no value");
  let c = Machine.Emulator.lpt_counters em in
  Printf.printf "EP-LP traffic of the run   = %d refcount ops, %d entry allocations\n"
    c.Core.Lpt.refops c.Core.Lpt.gets
