(* SMALL Multilisp — the Chapter 6 extensions demonstrated.

   Compares distributed reference-management message traffic (naive
   counting vs reference weighting vs weighting with combining queues)
   on a sharing-heavy workload, then estimates the parallel speedup a
   future-based evaluator could extract from a Lisp expression tree.

   Run with: dune exec examples/multilisp_demo.exe *)

module R = Multilisp.Refweight
module F = Multilisp.Futures

let distributed_workload scheme combining =
  let t = R.create ~flush_at:8 ~nodes:8 ~scheme ~combining () in
  let rng = Util.Rng.create ~seed:2026 in
  (* 50 shared objects, copied around the machine and then released *)
  let all_refs = ref [] in
  for _ = 1 to 50 do
    let _obj, r = R.create_object t ~node:(Util.Rng.int rng 8) in
    let refs = ref [ r ] in
    for _ = 1 to 20 do
      let pick = List.nth !refs (Util.Rng.int rng (List.length !refs)) in
      refs := R.copy_ref t pick ~to_node:(Util.Rng.int rng 8) :: !refs
    done;
    all_refs := !refs @ !all_refs
  done;
  List.iter (fun r -> R.drop_ref t r) !all_refs;
  R.flush t;
  R.messages t

let () =
  print_endline "distributed reference management (50 objects x 20 copies, 8 nodes):";
  let naive = distributed_workload R.Naive false in
  let weighted = distributed_workload R.Weighted false in
  let combined = distributed_workload R.Weighted true in
  Printf.printf "  naive counting:            %5d messages\n" naive;
  Printf.printf "  reference weighting:       %5d messages (%.1fx fewer)\n" weighted
    (float_of_int naive /. float_of_int (max 1 weighted));
  Printf.printf "  weighting + combining:     %5d messages (%.1fx fewer)\n\n" combined
    (float_of_int naive /. float_of_int (max 1 combined));

  print_endline "future-based parallel evaluation (pcall over a divide-and-conquer tree):";
  (* a balanced divide-and-conquer computation, e.g. parallel tree sum *)
  let rec dnc depth =
    if depth = 0 then F.leaf 4 else F.node 2 [ dnc (depth - 1); dnc (depth - 1) ]
  in
  let task = dnc 8 in
  Printf.printf "  total work %d, critical path %d\n" (F.sequential_time task)
    (F.critical_path task);
  List.iter
    (fun p ->
       Printf.printf "  %3d processors: makespan %5d, speedup %.2fx\n" p
         (F.makespan task ~processors:p) (F.speedup task ~processors:p))
    [ 1; 2; 4; 8; 16; 64 ];

  (* and on a real expression shape: the arguments of each call fork *)
  let expr = Sexp.parse "(f (g (h 1 2) (h 3 4)) (g (h 5 6) (h 7 8)) (k 9))" in
  let t = F.of_expr expr in
  Printf.printf "\nexpression %s:\n  speedup on 4 processors = %.2fx\n"
    (Sexp.to_string expr) (F.speedup t ~processors:4);

  (* a 3-node SMALL machine: structure built across nodes (Fig 6.1) *)
  print_endline "\na 3-node SMALL machine:";
  let module C = Multilisp.Cluster in
  let cl = C.create ~nodes:3 ~combining:true () in
  let left = C.read_in cl ~node:0 (Sexp.parse "(alpha beta)") in
  let right = C.read_in cl ~node:1 (Sexp.parse "(gamma)") in
  let z =
    C.cons cl ~at:2 (C.Ref (C.send cl left ~to_node:2))
      (C.Ref (C.send cl right ~to_node:2))
  in
  Printf.printf "  cons across nodes 0,1 at node 2 = %s\n"
    (Sexp.to_string (C.externalize cl z));
  let c = C.counters cl in
  Printf.printf "  interconnect: %d messages, %d remote accesses (copies were free)\n"
    c.C.messages c.C.remote_accesses
