examples/circuit_sim.ml: Analysis Core Lisp List Option Printf Sexp Trace Workloads
