examples/list_processor.ml: Core List Printf Sexp
