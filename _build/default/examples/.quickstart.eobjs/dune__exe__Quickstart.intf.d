examples/quickstart.mli:
