examples/quickstart.ml: Analysis Core Lisp List Machine Printf Sexp Trace
