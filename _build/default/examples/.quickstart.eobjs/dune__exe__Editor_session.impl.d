examples/editor_session.ml: Analysis Core Lisp List Option Printf Repr Sexp String Workloads
