examples/lpt_vs_cache.ml: Core List Option Printf Trace Workloads
