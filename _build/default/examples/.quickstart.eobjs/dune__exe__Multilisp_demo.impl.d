examples/multilisp_demo.ml: List Multilisp Printf Sexp Util
