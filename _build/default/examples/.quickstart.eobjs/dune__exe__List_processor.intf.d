examples/list_processor.mli:
