examples/multilisp_demo.mli:
