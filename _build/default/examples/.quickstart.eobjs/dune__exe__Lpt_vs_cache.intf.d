examples/lpt_vs_cache.mli:
