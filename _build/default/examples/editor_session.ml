(* Structure-editing session — the EDITOR scenario.

   Applies an editing script to a nested function body and shows how the
   workload's unusually complex lists (the Table 3.1 outlier) drive the
   representation trade-offs of §2.3.3: the same body is encoded under
   every representation scheme and the space costs compared.

   Run with: dune exec examples/editor_session.exe *)

let () =
  let w = Option.get (Workloads.Registry.find "editor") in
  Printf.printf "workload: %s — %s\n\n" w.Workloads.Registry.name
    w.Workloads.Registry.description;

  (* Run the session and show the command outputs. *)
  let interp = Lisp.Interp.create () in
  Lisp.Prelude.load interp;
  Lisp.Interp.provide_input interp w.Workloads.Registry.input;
  let result = Lisp.Interp.run_program interp w.Workloads.Registry.source in
  Printf.printf "commands executed; script result = %s\n" (Lisp.Value.to_string result);
  let outputs = Lisp.Interp.output interp in
  Printf.printf "sample command outputs: %s\n\n"
    (String.concat ", "
       (List.map Sexp.to_string (List.filteri (fun i _ -> i < 6) outputs)));

  (* The edited body is the kind of list EDITOR manipulates: measure it. *)
  (match w.Workloads.Registry.input with
   | body :: _ ->
     let n, p = Sexp.Metrics.np body in
     Printf.printf "edited body: n = %d symbols, p = %d internal pairs, depth %d\n"
       n p (Sexp.Datum.depth body);
     (* Representation shoot-out on this body (Fig 3.2's trade-off); the
        structure-coded schemes cannot express nil elements, so stand in
        a symbol for nils in element (car) position *)
     let rec expressible (d : Sexp.Datum.t) : Sexp.Datum.t =
       match d with
       | Cons (Nil, x) -> Cons (Sexp.Datum.sym "none", expressible x)
       | Cons (a, x) -> Cons (expressible a, expressible x)
       | Nil | Sym _ | Int _ | Str _ -> d
     in
     let s = Repr.Cost.summarize (expressible body) in
     Printf.printf "two-pointer cells %d (%d bits), cdr-coded %d cells (%d bits),\n"
       s.Repr.Cost.two_pointer_cells s.Repr.Cost.two_pointer_bits
       s.Repr.Cost.cdr_coded_cells s.Repr.Cost.cdr_coded_bits;
     Printf.printf "structure-coded %d cells (CDAR %d bits, EPS %d bits)\n\n"
       s.Repr.Cost.structure_coded_cells s.Repr.Cost.cdar_bits s.Repr.Cost.eps_bits
   | [] -> ());

  (* EDITOR's complex lists also make the guaranteed-75%% traversal bound
     of §5.3.1 interesting: check it on the body (the analysis assumes
     non-nil atoms, so reuse the expressible form). *)
  (match w.Workloads.Registry.input with
   | body :: _ ->
     let rec expressible (d : Sexp.Datum.t) : Sexp.Datum.t =
       match d with
       | Cons (Nil, x) -> Cons (Sexp.Datum.sym "none", expressible x)
       | Cons (a, x) -> Cons (expressible a, expressible x)
       | Nil | Sym _ | Int _ | Str _ -> d
     in
     let body = expressible body in
     let r = Core.Traversal.simulate ~order:Sexp.Tree.In body in
     let misses_p, hits_p = Core.Traversal.predicted body in
     Printf.printf
       "full in-order traversal through the LPT: %d hits / %d misses (predicted %d/%d), rate %.1f%%\n"
       r.Core.Traversal.hits r.Core.Traversal.misses hits_p misses_p
       (100. *. r.Core.Traversal.hit_rate)
   | [] -> ());

  (* And its n/p outlier status against the rest of the suite. *)
  print_newline ();
  List.iter
    (fun w ->
       let np = Analysis.Np_stats.analyze (Workloads.Registry.preprocessed w) in
       Printf.printf "%-8s mean n = %6.2f   mean p = %5.2f\n"
         w.Workloads.Registry.name (Analysis.Np_stats.mean_n np)
         (Analysis.Np_stats.mean_p np))
    Workloads.Registry.all
