(* LPT vs data cache — the §5.2.5 comparison as a runnable study.

   For one workload trace, sweeps the table/cache size and the cache line
   size, printing hit rates side by side: the Figure 5.4 and Figure 5.5
   experiments at example scale.

   Run with: dune exec examples/lpt_vs_cache.exe *)

let () =
  let w = Option.get (Workloads.Registry.find "plagen") in
  let pre = Workloads.Registry.preprocessed w in
  Printf.printf "trace: %s (%d primitives)\n\n" w.Workloads.Registry.name
    (Trace.Capture.stats (Workloads.Registry.trace w)).Trace.Capture.primitives;

  (* Figure 5.4 view: hit rates vs size, unit cache lines. *)
  print_endline "size sweep (cache line = 1 cell):";
  print_endline "  size   LPT hit%   cache hit%   LPT misses   cache misses";
  List.iter
    (fun size ->
       let sim =
         Core.Simulator.run
           { Core.Simulator.default_config with
             table_size = size;
             cache = Some { Core.Simulator.cache_lines = size; cache_line_size = 1 } }
           pre
       in
       Printf.printf "  %4d   %7.2f   %9.2f   %10d   %12d\n" size
         (100. *. Core.Simulator.lpt_hit_rate sim)
         (100. *. Core.Simulator.cache_hit_rate sim)
         sim.Core.Simulator.lpt.Core.Lpt.misses sim.Core.Simulator.cache_misses)
    [ 64; 128; 256; 512; 1024 ];

  (* Figure 5.5 view: cache-miss / LPT-miss ratio vs line size, with
     half-size cache entries (twice as many cells as LPT entries). *)
  print_endline
    "\nline-size sweep (cache entries half the LPT entry size, same total bits):";
  print_endline "  table   line   miss ratio (cache/LPT)";
  List.iter
    (fun size ->
       List.iter
         (fun line ->
            let cells = 2 * size in
            let sim =
              Core.Simulator.run
                { Core.Simulator.default_config with
                  table_size = size;
                  cache =
                    Some
                      { Core.Simulator.cache_lines = max 1 (cells / line);
                        cache_line_size = line } }
                pre
            in
            let ratio =
              if sim.Core.Simulator.lpt.Core.Lpt.misses = 0 then 0.
              else
                float_of_int sim.Core.Simulator.cache_misses
                /. float_of_int sim.Core.Simulator.lpt.Core.Lpt.misses
            in
            Printf.printf "  %5d   %4d   %.2f\n" size line ratio)
         [ 1; 2; 4; 8; 16 ])
    [ 128; 512 ]
