(* The List Processor, hands on — an EP's-eye view of §4.3.2.

   Drives the concrete LP (a real LPT over a real cell heap) through the
   session of Figure 4.9: read two lists in, evaluate
   (cons (cons (car L1) (cdr L2)) (car L2)), and watch the table do the
   work: two heap splits, three pure-table conses, and reference counts
   tracking every binding.

   Run with: dune exec examples/list_processor.exe *)

module Lp = Core.Lp

let show lp label part =
  match part with
  | Lp.Obj id ->
    Printf.printf "  %-24s = L%d  %s\n" label id
      (Sexp.to_string (Lp.externalize lp id))
  | Lp.Val v -> Printf.printf "  %-24s = %s (immediate)\n" label (Sexp.to_string v)

let counters lp =
  let c = Lp.lpt_counters lp in
  Printf.printf
    "  [LPT: %d entries allocated, %d hits, %d misses (splits), %d refops; heap cells live: %d]\n"
    c.Core.Lpt.gets c.Core.Lpt.hits c.Core.Lpt.misses c.Core.Lpt.refops
    (Lp.heap_live lp)

let () =
  let lp = Lp.create () in
  print_endline "Figure 4.9 session: {cons [cons (car L1) (cdr L2)] (car L2)}\n";

  (* (a) two lists read in *)
  let l1 = Lp.read_in lp (Sexp.parse "(a b)") in
  let l2 = Lp.read_in lp (Sexp.parse "((x y) z)") in
  Printf.printf "readlist -> L%d = (a b), L%d = ((x y) z)\n" l1 l2;
  counters lp;

  (* (b) the accesses split the heap objects once each; the EP retains
     whatever it binds (the push of Fig 4.11) *)
  let bind part = (match part with Lp.Obj id -> Lp.retain lp id | Val _ -> ()); part in
  let car_l1 = bind (Lp.car lp l1) in
  show lp "(car L1)" car_l1;
  let cdr_l2 = bind (Lp.cdr lp l2) in
  show lp "(cdr L2)" cdr_l2;
  let car_l2 = bind (Lp.car lp l2) in
  show lp "(car L2)" car_l2;
  counters lp;

  (* repeated access is now satisfied from the table *)
  let again = Lp.car lp l1 in
  show lp "(car L1) again [hit]" again;
  counters lp;

  (* (c) conses build endo-structure: no heap activity at all *)
  let heap_before = Lp.heap_live lp in
  let inner = Lp.cons lp car_l1 cdr_l2 in
  let outer = Lp.cons lp (Lp.Obj inner) car_l2 in
  Printf.printf "\ncons twice: L%d, then L%d — heap cells before/after: %d/%d\n"
    inner outer heap_before (Lp.heap_live lp);
  show lp "result" (Lp.Obj outer);
  counters lp;

  (* destructive surgery through the table *)
  Lp.rplaca lp inner (Lp.Val (Sexp.Datum.Sym "q"));
  show lp "after (rplaca inner 'q)" (Lp.Obj outer);

  (* release the EP handles: entries and heap cells flow back *)
  print_endline "\nreleasing all bindings:";
  List.iter (fun id -> Lp.release lp id) [ outer; inner; l2; l1 ];
  List.iter
    (fun part -> match part with Lp.Obj id -> Lp.release lp id | Lp.Val _ -> ())
    [ car_l1; cdr_l2; car_l2 ];
  (* recycle a few slots so lazy child decrements drain *)
  for _ = 1 to 12 do
    let tmp = Lp.read_in lp (Sexp.parse "(t)") in
    Lp.release lp tmp
  done;
  counters lp
