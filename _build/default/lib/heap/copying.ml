exception Out_of_memory

type root = int

(* Tospace layout, after Baker: evacuated cells fill from the bottom and
   are scanned Cheney-style; *new* cells are allocated from the top, so
   they never enter the scavenge queue (their contents are forwarded at
   write time).  The space is exhausted when the regions meet. *)
type t = {
  semispace : int;
  increment : int;
  cars : Word.t array;           (* both semispaces, 2 * semispace cells *)
  cdrs : Word.t array;
  forward : int array;           (* fromspace addr -> tospace addr, -1 none *)
  mutable to_base : int;
  mutable from_base : int;
  mutable evac_ptr : int;        (* next bottom slot for evacuations *)
  mutable scan_ptr : int;        (* Cheney scan pointer *)
  mutable new_ptr : int;         (* next top slot for fresh allocations *)
  mutable collecting : bool;
  mutable roots : Word.t option array;
  mutable allocations : int;
  mutable flips : int;
  mutable copied : int;
  mutable scavenge_steps : int;
  mutable max_pause : int;
  mutable pause : int;           (* work done in the current public call *)
}

let create ~semispace ~increment =
  if semispace <= 0 then invalid_arg "Copying.create: semispace must be positive";
  if increment < 0 then invalid_arg "Copying.create: increment must be >= 0";
  { semispace; increment;
    cars = Array.make (2 * semispace) Word.Nil;
    cdrs = Array.make (2 * semispace) Word.Nil;
    forward = Array.make (2 * semispace) (-1);
    to_base = 0; from_base = semispace; evac_ptr = 0; scan_ptr = 0;
    new_ptr = semispace - 1;
    collecting = false;
    roots = Array.make 8 None;
    allocations = 0; flips = 0; copied = 0; scavenge_steps = 0; max_pause = 0;
    pause = 0 }

let in_fromspace t a = a >= t.from_base && a < t.from_base + t.semispace

(* Evacuate the cell at fromspace address [a] to the bottom region. *)
let evacuate t a =
  if t.forward.(a) >= 0 then t.forward.(a)
  else begin
    if t.evac_ptr > t.new_ptr then raise Out_of_memory;
    let fresh = t.evac_ptr in
    t.evac_ptr <- t.evac_ptr + 1;
    t.cars.(fresh) <- t.cars.(a);
    t.cdrs.(fresh) <- t.cdrs.(a);
    t.forward.(a) <- fresh;
    t.copied <- t.copied + 1;
    t.pause <- t.pause + 1;
    fresh
  end

(* The read/write barrier: pointers into fromspace are chased forward. *)
let forward_word t (w : Word.t) =
  match w with
  | Ptr a when t.collecting && in_fromspace t a -> Word.Ptr (evacuate t a)
  | Ptr _ | Nil | Sym _ | Int _ -> w

let scavenge_one t =
  if t.scan_ptr < t.evac_ptr then begin
    let a = t.scan_ptr in
    t.scan_ptr <- t.scan_ptr + 1;
    t.cars.(a) <- forward_word t t.cars.(a);
    t.cdrs.(a) <- forward_word t t.cdrs.(a);
    t.scavenge_steps <- t.scavenge_steps + 1;
    t.pause <- t.pause + 1
  end;
  if t.scan_ptr >= t.evac_ptr then t.collecting <- false

let scavenge_all t =
  while t.collecting do
    scavenge_one t
  done

let flip t =
  if t.collecting then scavenge_all t;
  t.flips <- t.flips + 1;
  (* swap semispaces; invalidate stale forwarding entries *)
  let old_to = t.to_base in
  t.to_base <- t.from_base;
  t.from_base <- old_to;
  Array.fill t.forward t.from_base t.semispace (-1);
  t.evac_ptr <- t.to_base;
  t.scan_ptr <- t.to_base;
  t.new_ptr <- t.to_base + t.semispace - 1;
  t.collecting <- true;
  (* evacuate the root targets eagerly so roots always see tospace *)
  Array.iteri
    (fun i slot ->
       match slot with
       | Some w -> t.roots.(i) <- Some (forward_word t w)
       | None -> ())
    t.roots;
  if t.increment = 0 then scavenge_all t

let end_pause t =
  if t.pause > t.max_pause then t.max_pause <- t.pause;
  t.pause <- 0

let room t = t.new_ptr >= t.evac_ptr

let alloc t ~car ~cdr =
  t.pause <- 0;
  t.allocations <- t.allocations + 1;
  if t.collecting then
    for _ = 1 to t.increment do
      scavenge_one t
    done;
  if not (room t) then begin
    (* finish the collection in progress, then start a fresh one; only
       scavenge to completion if the flip alone made no room *)
    if t.collecting then scavenge_all t;
    flip t;
    if not (room t) then begin
      scavenge_all t;
      if not (room t) then raise Out_of_memory
    end
  end;
  let a = t.new_ptr in
  t.new_ptr <- t.new_ptr - 1;
  (* allocation barrier: a fresh cell must not point into fromspace *)
  t.cars.(a) <- forward_word t car;
  t.cdrs.(a) <- forward_word t cdr;
  end_pause t;
  a

let add_root t w =
  let w = forward_word t w in
  let rec find i =
    if i >= Array.length t.roots then begin
      let grown = Array.make (2 * Array.length t.roots) None in
      Array.blit t.roots 0 grown 0 (Array.length t.roots);
      t.roots <- grown;
      find i
    end
    else if t.roots.(i) = None then begin
      t.roots.(i) <- Some w;
      i
    end
    else find (i + 1)
  in
  find 0

let root_value t r =
  match t.roots.(r) with
  | Some w -> w
  | None -> invalid_arg "Copying.root_value: removed root"

let set_root t r w =
  if t.roots.(r) = None then invalid_arg "Copying.set_root: removed root";
  t.roots.(r) <- Some (forward_word t w)

let remove_root t r = t.roots.(r) <- None

let deref name t a =
  let in_evac = a >= t.to_base && a < t.evac_ptr in
  let in_new = a > t.new_ptr && a < t.to_base + t.semispace in
  if not (in_evac || in_new) then
    invalid_arg (Printf.sprintf "Copying.%s: address %d not in tospace" name a)

let car t a =
  deref "car" t a;
  let w = forward_word t t.cars.(a) in
  t.cars.(a) <- w;
  end_pause t;
  w

let cdr t a =
  deref "cdr" t a;
  let w = forward_word t t.cdrs.(a) in
  t.cdrs.(a) <- w;
  end_pause t;
  w

let set_car t a w =
  deref "set_car" t a;
  t.cars.(a) <- forward_word t w;
  end_pause t

let set_cdr t a w =
  deref "set_cdr" t a;
  t.cdrs.(a) <- forward_word t w;
  end_pause t

let allocated t =
  (t.evac_ptr - t.to_base) + (t.to_base + t.semispace - 1 - t.new_ptr)

type counters = {
  allocations : int;
  flips : int;
  copied : int;
  scavenge_steps : int;
  max_pause : int;
}

let counters (t : t) =
  { allocations = t.allocations; flips = t.flips; copied = t.copied;
    scavenge_steps = t.scavenge_steps; max_pause = t.max_pause }
