(** Symbol table: interning of symbol names to small integer ids, as on a
    Lisp machine oblist.  Ids are dense and stable for the lifetime of the
    table. *)

type t

val create : unit -> t

(** [intern t name] returns the id of [name], allocating one on first use. *)
val intern : t -> string -> int

(** [name t id] is the name interned as [id].
    @raise Not_found if [id] was never allocated. *)
val name : t -> int -> string

(** Number of interned symbols. *)
val count : t -> int
