exception Out_of_memory

type discipline = Lifo | Fifo

type t = {
  cars : Word.t array;
  cdrs : Word.t array;
  allocated : Bytes.t;               (* one byte per cell: 0 free, 1 live *)
  mutable free_cells : int Queue.t;  (* used in Fifo mode *)
  mutable free_stack : int list;     (* used in Lifo mode *)
  mutable discipline : discipline;
  mutable live : int;
  mutable allocations : int;
  mutable releases : int;
  capacity : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Store.create: capacity must be positive";
  let t =
    {
      cars = Array.make capacity Word.Nil;
      cdrs = Array.make capacity Word.Nil;
      allocated = Bytes.make capacity '\000';
      free_cells = Queue.create ();
      free_stack = [];
      discipline = Lifo;
      live = 0;
      allocations = 0;
      releases = 0;
      capacity;
    }
  in
  (* Seed the free stack with all addresses, low addresses first out. *)
  for a = capacity - 1 downto 0 do
    t.free_stack <- a :: t.free_stack
  done;
  t

let capacity t = t.capacity
let live t = t.live
let free t = t.capacity - t.live

let set_discipline t d =
  if d <> t.discipline then begin
    (* Move the free pool to the other container, preserving order. *)
    (match d with
     | Fifo ->
       List.iter (fun a -> Queue.add a t.free_cells) t.free_stack;
       t.free_stack <- []
     | Lifo ->
       let rec drain acc =
         match Queue.take_opt t.free_cells with
         | None -> List.rev acc
         | Some a -> drain (a :: acc)
       in
       t.free_stack <- drain []);
    t.discipline <- d
  end

let check t a =
  if a < 0 || a >= t.capacity then invalid_arg "Store: address out of range";
  if Bytes.get t.allocated a = '\000' then
    invalid_arg (Printf.sprintf "Store: access to free cell %d" a)

let alloc t ~car ~cdr =
  let a =
    match t.discipline with
    | Lifo ->
      (match t.free_stack with
       | [] -> raise Out_of_memory
       | a :: rest -> t.free_stack <- rest; a)
    | Fifo ->
      (match Queue.take_opt t.free_cells with
       | None -> raise Out_of_memory
       | Some a -> a)
  in
  Bytes.set t.allocated a '\001';
  t.cars.(a) <- car;
  t.cdrs.(a) <- cdr;
  t.live <- t.live + 1;
  t.allocations <- t.allocations + 1;
  a

let release t a =
  check t a;
  Bytes.set t.allocated a '\000';
  t.cars.(a) <- Word.Nil;
  t.cdrs.(a) <- Word.Nil;
  (match t.discipline with
   | Lifo -> t.free_stack <- a :: t.free_stack
   | Fifo -> Queue.add a t.free_cells);
  t.live <- t.live - 1;
  t.releases <- t.releases + 1

let car t a = check t a; t.cars.(a)
let cdr t a = check t a; t.cdrs.(a)
let set_car t a w = check t a; t.cars.(a) <- w
let set_cdr t a w = check t a; t.cdrs.(a) <- w

let is_allocated t a =
  a >= 0 && a < t.capacity && Bytes.get t.allocated a = '\001'

let allocations t = t.allocations
let releases t = t.releases

let iter_live f t =
  for a = 0 to t.capacity - 1 do
    if Bytes.get t.allocated a = '\001' then f a
  done
