type policy = Eager | Lazy

type t = {
  store : Store.t;
  counts : int array;
  policy : policy;
  mutable free_stack : int list;  (* lazy policy: zero-count cells awaiting reuse *)
  mutable refops : int;
  mutable reclaimed : int;
}

let create store ~policy =
  { store; counts = Array.make (Store.capacity store) 0; policy;
    free_stack = []; refops = 0; reclaimed = 0 }

let store t = t.store

let count t a = t.counts.(a)

let incr t a =
  t.refops <- t.refops + 1;
  t.counts.(a) <- t.counts.(a) + 1

let rec decr t a =
  t.refops <- t.refops + 1;
  t.counts.(a) <- t.counts.(a) - 1;
  if t.counts.(a) = 0 then begin
    t.reclaimed <- t.reclaimed + 1;
    match t.policy with
    | Eager ->
      (* Recursive reclamation: unbounded work (the thesis's complaint). *)
      let car = Store.car t.store a and cdr = Store.cdr t.store a in
      Store.release t.store a;
      decr_word t car;
      decr_word t cdr
    | Lazy ->
      (* O(1): defer child decrements until the cell is reused. *)
      t.free_stack <- a :: t.free_stack
  end

and decr_word t (w : Word.t) =
  match w with
  | Ptr a -> decr t a
  | Nil | Sym _ | Int _ -> ()

let incr_word t (w : Word.t) =
  match w with
  | Ptr a -> incr t a
  | Nil | Sym _ | Int _ -> ()

let alloc t ~car ~cdr =
  let a =
    match t.policy, t.free_stack with
    | Lazy, a :: rest ->
      t.free_stack <- rest;
      (* Deferred child decrements happen now, on reuse (§4.3.2.1). *)
      let old_car = Store.car t.store a and old_cdr = Store.cdr t.store a in
      Store.set_car t.store a Word.Nil;
      Store.set_cdr t.store a Word.Nil;
      decr_word t old_car;
      decr_word t old_cdr;
      a
    | (Lazy | Eager), _ -> Store.alloc t.store ~car:Word.Nil ~cdr:Word.Nil
  in
  Store.set_car t.store a car;
  Store.set_cdr t.store a cdr;
  t.counts.(a) <- 0;
  incr t a;
  incr_word t car;
  incr_word t cdr;
  a

let set_car t a w =
  let old = Store.car t.store a in
  Store.set_car t.store a w;
  incr_word t w;
  decr_word t old

let set_cdr t a w =
  let old = Store.cdr t.store a in
  Store.set_cdr t.store a w;
  incr_word t w;
  decr_word t old

let refops t = t.refops
let reclaimed t = t.reclaimed
