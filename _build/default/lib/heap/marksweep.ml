type stats = { marked : int; swept : int }

(* Depth-first mark using an explicit work list; the heap can be deeper
   than the OCaml stack. *)
let mark store ~roots =
  let marks = Hashtbl.create 256 in
  let work = ref [] in
  let push (w : Word.t) =
    match w with
    | Ptr a when Store.is_allocated store a && not (Hashtbl.mem marks a) ->
      Hashtbl.replace marks a ();
      work := a :: !work
    | Ptr _ | Nil | Sym _ | Int _ -> ()
  in
  List.iter push roots;
  let rec loop () =
    match !work with
    | [] -> ()
    | a :: rest ->
      work := rest;
      push (Store.car store a);
      push (Store.cdr store a);
      loop ()
  in
  loop ();
  marks

let collect store ~roots =
  let marks = mark store ~roots in
  let garbage = ref [] in
  Store.iter_live (fun a -> if not (Hashtbl.mem marks a) then garbage := a :: !garbage) store;
  List.iter (Store.release store) !garbage;
  { marked = Hashtbl.length marks; swept = List.length !garbage }

let reachable store ~roots =
  let marks = mark store ~roots in
  let addrs = Hashtbl.fold (fun a () acc -> a :: acc) marks [] in
  List.sort Stdlib.compare addrs
