(** Reference-counting garbage detection over a {!Store} heap (§2.3.4,
    [Coll60a]).

    A count of extant pointers is kept per cell; a cell whose count reaches
    zero is garbage.  Two reclamation policies are provided, mirroring the
    LPT discussion of §4.3.2.1 / Table 5.2:

    - {e eager} (the naive "RecRefops" policy): when a count hits zero the
      cell is released immediately and its children's counts are
      decremented recursively — reclamation cost is unbounded;
    - {e lazy}: a zero-count cell is pushed on a free stack and its
      children are only decremented when the cell is reused — reclamation
      is O(1) per operation.

    The manager tracks [refops] (count updates performed) so the two
    policies can be compared quantitatively. *)

type policy = Eager | Lazy

type t

(** [create store ~policy] wraps [store]; cells must be allocated through
    {!alloc} below so counts stay consistent. *)
val create : Store.t -> policy:policy -> t

val store : t -> Store.t

(** [alloc t ~car ~cdr] allocates a cell with reference count 1, increasing
    the counts of pointer children.  Under the lazy policy this may first
    perform the deferred child decrements of a reused cell.
    @raise Store.Out_of_memory when the heap is full. *)
val alloc : t -> car:Word.t -> cdr:Word.t -> int

(** [incr t a] / [decr t a] adjust the count of cell [a].  [decr] reclaims
    on zero according to the policy. *)
val incr : t -> int -> unit

val decr : t -> int -> unit

val count : t -> int -> int

(** [set_car t a w] / [set_cdr t a w] perform an rplaca/rplacd with correct
    count maintenance: the old pointer child is decremented, the new one
    incremented. *)
val set_car : t -> int -> Word.t -> unit

val set_cdr : t -> int -> Word.t -> unit

(** Number of reference-count update operations performed so far. *)
val refops : t -> int

(** Number of cells reclaimed so far. *)
val reclaimed : t -> int
