type t = {
  by_name : (string, int) Hashtbl.t;
  mutable by_id : string array;
  mutable next : int;
}

let create () = { by_name = Hashtbl.create 64; by_id = Array.make 64 ""; next = 0 }

let intern t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None ->
    let id = t.next in
    t.next <- id + 1;
    if id >= Array.length t.by_id then begin
      let grown = Array.make (2 * Array.length t.by_id) "" in
      Array.blit t.by_id 0 grown 0 (Array.length t.by_id);
      t.by_id <- grown
    end;
    t.by_id.(id) <- name;
    Hashtbl.add t.by_name name id;
    id

let name t id =
  if id < 0 || id >= t.next then raise Not_found else t.by_id.(id)

let count t = t.next
