(** Semispace copying garbage collection, after Baker (§2.3.4,
    [Bake78a]) — the scheme the MIT Lisp Machine and Symbolics 3600
    support in hardware, included here as the heap-maintenance
    comparator to {!Marksweep} and {!Refcount}.

    The heap is split into two semispaces.  Allocation bumps a pointer
    in {e newspace}; when a flip occurs, live cells are copied from
    {e oldspace} as they are discovered, leaving forwarding pointers
    behind.  In incremental mode a bounded number of cells is scavenged
    on every allocation, so collection cost is amortised over mutator
    progress and there is no stop-the-world pause (Baker's real-time
    property). *)

type t

(** [create ~semispace ~increment] builds a heap of two [semispace]-cell
    spaces.  [increment] is the number of cells scavenged per allocation
    in incremental mode (0 = stop-the-world flips only). *)
val create : semispace:int -> increment:int -> t

exception Out_of_memory

(** [alloc t ~car ~cdr] allocates a cell in newspace, scavenging
    incrementally first and flipping when newspace is exhausted.
    Addresses are only stable until the next flip: hold {!root}s, not
    raw addresses, across allocations. *)
val alloc : t -> car:Word.t -> cdr:Word.t -> int

(** Roots are updated in place when their targets are copied. *)
type root

val add_root : t -> Word.t -> root

(** @raise Invalid_argument if the root was removed. *)
val root_value : t -> root -> Word.t

val set_root : t -> root -> Word.t -> unit
val remove_root : t -> root -> unit

val car : t -> int -> Word.t
val cdr : t -> int -> Word.t
val set_car : t -> int -> Word.t -> unit
val set_cdr : t -> int -> Word.t -> unit

(** [flip t] starts a collection: copies the roots' targets and (in
    stop-the-world mode) scavenges to completion. *)
val flip : t -> unit

(** Live cells in newspace (exact right after a completed collection). *)
val allocated : t -> int

type counters = {
  allocations : int;
  flips : int;
  copied : int;           (** cells evacuated across all flips *)
  scavenge_steps : int;   (** incremental scavenging work performed *)
  max_pause : int;        (** largest single-call scavenging burst *)
}

val counters : t -> counters
