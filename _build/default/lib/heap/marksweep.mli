(** Mark-and-sweep garbage detection over a {!Store} heap (§2.3.4).

    Marking starts from a root set of words, follows car/cdr pointers, and
    the sweep releases every unmarked live cell back to the store's free
    list.  This is the classical collector of [Scho67a] that the thesis
    contrasts with reference counting; SMALL itself uses it only as the
    cycle-breaking fallback at true-overflow time (§4.3.2.3). *)

type stats = {
  marked : int;       (** live cells reached from the roots *)
  swept : int;        (** garbage cells reclaimed *)
}

(** [collect store ~roots] runs a full mark-sweep cycle.  Any [Ptr] in
    [roots] (and everything reachable from it) survives; every other live
    cell is released. *)
val collect : Store.t -> roots:Word.t list -> stats

(** [reachable store ~roots] is the set of cell addresses reachable from
    the roots, as a sorted list, without modifying the heap. *)
val reachable : Store.t -> roots:Word.t list -> int list
