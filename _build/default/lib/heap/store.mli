(** Array-backed two-pointer cell heap.

    OCaml's managed runtime would hide the address behaviour of a custom
    Lisp heap, so the heap is an explicit pair of word arrays indexed by
    cell address, with its own free list.  This is the "heap memory" of
    Figure 4.1: the raw cell store on top of which the garbage collectors
    ({!Marksweep}, {!Refcount}), the linearising allocator ({!Linearize})
    and the SMALL heap-controller model operate. *)

type t

(** [create ~capacity] makes an empty heap of [capacity] cells. *)
val create : capacity:int -> t

val capacity : t -> int

(** Number of cells currently allocated (not on the free list). *)
val live : t -> int

(** Number of cells still allocatable. *)
val free : t -> int

exception Out_of_memory
(** Raised by {!alloc} when the free list is empty. *)

(** [alloc t ~car ~cdr] takes a cell off the free list, initialises it and
    returns its address.  @raise Out_of_memory when full. *)
val alloc : t -> car:Word.t -> cdr:Word.t -> int

(** [release t a] returns cell [a] to the free list.  The caller is
    responsible for [a] being genuinely unreferenced.  Freeing an already
    free cell is a checked error. *)
val release : t -> int -> unit

val car : t -> int -> Word.t
val cdr : t -> int -> Word.t
val set_car : t -> int -> Word.t -> unit
val set_cdr : t -> int -> Word.t -> unit

(** [is_allocated t a] tests whether address [a] currently holds a live
    cell. *)
val is_allocated : t -> int -> bool

(** Allocation discipline for the free list: the paper's LPT argues for a
    LIFO stack (most recently freed cell reused first, §4.3.2.1); FIFO is
    provided for the ablation bench. *)
type discipline = Lifo | Fifo

val set_discipline : t -> discipline -> unit

(** Lifetime counters. *)
val allocations : t -> int

val releases : t -> int

(** [iter_live f t] applies [f addr] to every allocated cell. *)
val iter_live : (int -> unit) -> t -> unit
