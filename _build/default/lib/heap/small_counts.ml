type t = {
  store : Store.t;
  counts : int array;
  flags : Bytes.t;
  ceiling : int;
  mutable reclaimed_by_count : int;
  mutable reclaimed_by_sweep : int;
  mutable saturations : int;
}

let create store ~width =
  if width < 1 || width > 16 then invalid_arg "Small_counts.create: width in 1..16";
  { store;
    counts = Array.make (Store.capacity store) 0;
    flags = Bytes.make (Store.capacity store) '\000';
    ceiling = (1 lsl width) - 1;
    reclaimed_by_count = 0; reclaimed_by_sweep = 0; saturations = 0 }

let count t a = t.counts.(a)
let is_saturated t a = t.counts.(a) >= t.ceiling
let stack_flag t a = Bytes.get t.flags a = '\001'

let set_stack_flag t a v = Bytes.set t.flags a (if v then '\001' else '\000')

let incr t a =
  if is_saturated t a then t.saturations <- t.saturations + 1
  else t.counts.(a) <- t.counts.(a) + 1

let rec decr t a =
  if not (Store.is_allocated t.store a) then ()
  else if is_saturated t a then ()  (* stuck: the backup collector's problem *)
  else begin
    t.counts.(a) <- max 0 (t.counts.(a) - 1);
    if t.counts.(a) = 0 && not (stack_flag t a) then begin
      t.reclaimed_by_count <- t.reclaimed_by_count + 1;
      let car = Store.car t.store a and cdr = Store.cdr t.store a in
      Store.release t.store a;
      decr_word t car;
      decr_word t cdr
    end
  end

and decr_word t (w : Word.t) =
  match w with
  | Ptr a -> decr t a
  | Nil | Sym _ | Int _ -> ()

let incr_word t (w : Word.t) =
  match w with
  | Ptr a -> incr t a
  | Nil | Sym _ | Int _ -> ()

let alloc t ~car ~cdr =
  let a = Store.alloc t.store ~car ~cdr in
  t.counts.(a) <- 1;
  Bytes.set t.flags a '\000';
  incr_word t car;
  incr_word t cdr;
  a

let backup_sweep t ~roots =
  let before = Store.live t.store in
  (* flagged cells are roots too: the stack still points at them *)
  let flag_roots = ref [] in
  Store.iter_live
    (fun a -> if stack_flag t a then flag_roots := Word.Ptr a :: !flag_roots)
    t.store;
  let stats = Marksweep.collect t.store ~roots:(roots @ !flag_roots) in
  ignore stats;
  let freed = before - Store.live t.store in
  t.reclaimed_by_sweep <- t.reclaimed_by_sweep + freed;
  freed

type counters = {
  reclaimed_by_count : int;
  reclaimed_by_sweep : int;
  saturations : int;
}

let counters (t : t) =
  { reclaimed_by_count = t.reclaimed_by_count;
    reclaimed_by_sweep = t.reclaimed_by_sweep;
    saturations = t.saturations }

let count_recovery_rate (t : t) =
  let total = t.reclaimed_by_count + t.reclaimed_by_sweep in
  if total = 0 then 1.0 else float_of_int t.reclaimed_by_count /. float_of_int total
