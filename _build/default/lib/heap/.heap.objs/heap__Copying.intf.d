lib/heap/copying.mli: Word
