lib/heap/refcount.mli: Store Word
