lib/heap/subspace.mli: Store Word
