lib/heap/linearize.ml: Hashtbl List Option Sexp Stdlib Store String Symtab Word
