lib/heap/linearize.mli: Sexp Store Symtab Word
