lib/heap/refcount.ml: Array Store Word
