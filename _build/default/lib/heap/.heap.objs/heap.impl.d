lib/heap/heap.ml: Copying Linearize Marksweep Refcount Small_counts Store Subspace Symtab Word
