lib/heap/store.ml: Array Bytes List Printf Queue Word
