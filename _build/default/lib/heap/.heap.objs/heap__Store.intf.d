lib/heap/store.mli: Word
