lib/heap/symtab.mli:
