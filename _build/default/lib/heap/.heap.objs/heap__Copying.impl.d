lib/heap/copying.ml: Array Printf Word
