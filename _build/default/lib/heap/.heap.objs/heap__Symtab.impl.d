lib/heap/symtab.ml: Array Hashtbl
