lib/heap/subspace.ml: Array List Marksweep Store Word
