lib/heap/marksweep.mli: Store Word
