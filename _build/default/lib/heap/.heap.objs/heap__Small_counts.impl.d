lib/heap/small_counts.ml: Array Bytes Marksweep Store Word
