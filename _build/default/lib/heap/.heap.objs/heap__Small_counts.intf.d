lib/heap/small_counts.mli: Store Word
