lib/heap/word.ml: Format
