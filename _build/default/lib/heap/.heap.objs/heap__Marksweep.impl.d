lib/heap/marksweep.ml: Hashtbl List Stdlib Store Word
