lib/heap/word.mli: Format
