(** FACOM Alpha-style sub-space reference counting (§2.3.4, [Haya83a]).

    The heap is organised as fixed-size {e sub-spaces}.  One reference
    count is kept per sub-space, counting only the pointers that
    originate in {e other} sub-spaces; intra-sub-space pointers are
    uncounted, so a circular list wholly contained in one sub-space does
    not keep it alive.  Stack pointers are also uncounted — they serve
    instead as the roots of a marking pass.

    Two reclamation paths follow, as on the Alpha:
    - {!reclaim_subspaces}: any sub-space with external count zero and no
      stack root inside is recycled wholesale — O(1) detection per
      sub-space, and it reclaims intra-sub-space cycles;
    - {!collect}: the exact cell-level marking pass from the stack
      pointers, run when a sub-space's free cells fall low. *)

type t

(** [create store ~subspace_size] partitions [store]'s address space into
    sub-spaces of [subspace_size] cells.
    @raise Invalid_argument unless the size divides the capacity. *)
val create : Store.t -> subspace_size:int -> t

(** [alloc t ~car ~cdr] allocates (anywhere the store's free list
    chooses), maintaining cross-sub-space counts for pointer children. *)
val alloc : t -> car:Word.t -> cdr:Word.t -> int

(** rplaca/rplacd with count maintenance. *)
val set_car : t -> int -> Word.t -> unit

val set_cdr : t -> int -> Word.t -> unit

(** The external reference count of sub-space [i]. *)
val subspace_count : t -> int -> int

val subspace_of : t -> int -> int
val subspaces : t -> int

(** [reclaim_subspaces t ~stack_roots] frees every live cell of every
    sub-space whose external count is zero and which contains no cell in
    [stack_roots]; outgoing cross-space references are released.  Repeats
    to a fixpoint (freeing one space can empty another).  Returns cells
    freed. *)
val reclaim_subspaces : t -> stack_roots:Word.t list -> int

(** [collect t ~stack_roots] — the exact marking pass; returns cells
    freed.  Counts are rebuilt from the surviving cells. *)
val collect : t -> stack_roots:Word.t list -> int

type counters = {
  fast_reclaims : int;    (** cells freed by whole-sub-space reclamation *)
  mark_reclaims : int;    (** cells freed by marking *)
  count_updates : int;    (** cross-sub-space count operations *)
}

val counters : t -> counters
