(** Tagged memory words, the unit stored in each half of a list cell.

    Lisp machines are tagged architectures (§2.3.4): every word carries a
    type tag distinguishing pointers from atoms so that type checking and
    garbage collection can inspect memory safely.  Symbols are interned
    integers (see {!Symtab}). *)

type t =
  | Nil
  | Sym of int          (** interned symbol id *)
  | Int of int
  | Ptr of int          (** heap address of a list cell *)

val equal : t -> t -> bool
val is_pointer : t -> bool
val pp : Format.formatter -> t -> unit
