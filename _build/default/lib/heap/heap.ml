(** Heap substrate: an explicit array-backed two-pointer cell store with
    its own free list, mark-sweep and reference-counting collectors, a
    linearising loader, and Clark-style pointer statistics.  OCaml's own GC
    plays no part in address behaviour here — cells live in plain arrays. *)

module Word = Word
module Symtab = Symtab
module Store = Store
module Marksweep = Marksweep
module Copying = Copying
module Refcount = Refcount
module Small_counts = Small_counts
module Subspace = Subspace
module Linearize = Linearize
