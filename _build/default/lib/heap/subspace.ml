type t = {
  store : Store.t;
  size : int;
  counts : int array;            (* external references per sub-space *)
  mutable fast_reclaims : int;
  mutable mark_reclaims : int;
  mutable count_updates : int;
}

let create store ~subspace_size =
  if subspace_size <= 0 || Store.capacity store mod subspace_size <> 0 then
    invalid_arg "Subspace.create: size must divide the store capacity";
  { store; size = subspace_size;
    counts = Array.make (Store.capacity store / subspace_size) 0;
    fast_reclaims = 0; mark_reclaims = 0; count_updates = 0 }

let subspace_of t a = a / t.size
let subspaces t = Array.length t.counts
let subspace_count t i = t.counts.(i)

(* Count only references that cross a sub-space boundary. *)
let adjust t ~from (w : Word.t) delta =
  match w with
  | Ptr target ->
    let src = subspace_of t from and dst = subspace_of t target in
    if src <> dst then begin
      t.counts.(dst) <- t.counts.(dst) + delta;
      t.count_updates <- t.count_updates + 1
    end
  | Nil | Sym _ | Int _ -> ()

let alloc t ~car ~cdr =
  let a = Store.alloc t.store ~car:Word.Nil ~cdr:Word.Nil in
  Store.set_car t.store a car;
  Store.set_cdr t.store a cdr;
  adjust t ~from:a car 1;
  adjust t ~from:a cdr 1;
  a

let set_car t a w =
  adjust t ~from:a (Store.car t.store a) (-1);
  Store.set_car t.store a w;
  adjust t ~from:a w 1

let set_cdr t a w =
  adjust t ~from:a (Store.cdr t.store a) (-1);
  Store.set_cdr t.store a w;
  adjust t ~from:a w 1

let root_spaces t stack_roots =
  List.filter_map
    (function Word.Ptr a -> Some (subspace_of t a) | _ -> None)
    stack_roots

let reclaim_subspaces t ~stack_roots =
  let rooted = root_spaces t stack_roots in
  let freed = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    for i = 0 to subspaces t - 1 do
      if t.counts.(i) = 0 && not (List.mem i rooted) then begin
        (* collect the sub-space's live cells, release them, and return
           their outgoing cross-space references *)
        let cells = ref [] in
        for a = i * t.size to ((i + 1) * t.size) - 1 do
          if Store.is_allocated t.store a then cells := a :: !cells
        done;
        if !cells <> [] then begin
          progress := true;
          List.iter
            (fun a ->
               adjust t ~from:a (Store.car t.store a) (-1);
               adjust t ~from:a (Store.cdr t.store a) (-1);
               Store.release t.store a;
               incr freed)
            !cells
        end
      end
    done
  done;
  t.fast_reclaims <- t.fast_reclaims + !freed;
  !freed

let collect t ~stack_roots =
  let before = Store.live t.store in
  ignore (Marksweep.collect t.store ~roots:stack_roots);
  let freed = before - Store.live t.store in
  t.mark_reclaims <- t.mark_reclaims + freed;
  (* rebuild the sub-space counts from the survivors *)
  Array.fill t.counts 0 (Array.length t.counts) 0;
  Store.iter_live
    (fun a ->
       adjust t ~from:a (Store.car t.store a) 1;
       adjust t ~from:a (Store.cdr t.store a) 1)
    t.store;
  (* rebuilding touched the update counter; that is honest accounting of
     the pass's cost *)
  freed

type counters = {
  fast_reclaims : int;
  mark_reclaims : int;
  count_updates : int;
}

let counters (t : t) =
  { fast_reclaims = t.fast_reclaims; mark_reclaims = t.mark_reclaims;
    count_updates = t.count_updates }
