(** Small (truncated) reference counts, after the M3L project (§2.3.4,
    [Sans82a]).

    M3L keeps only a 3-bit reference count per cell — counts saturate at
    7 and a saturated cell can never be reclaimed by counting — plus a
    separate 1-bit flag for references from the stack and registers
    (which would otherwise inflate every count on each call).  The
    project reported that such tiny counts still reclaim about 98% of
    inaccessible cells, a backup collector handling the rest.

    This manager implements exactly that: [width]-bit saturating counts
    over a {!Store}, a per-cell stack flag, and counters measuring the
    fraction of garbage the truncated counts recover — the claim the
    ablation bench checks. *)

type t

(** [create store ~width] uses [width]-bit counts (1..16). *)
val create : Store.t -> width:int -> t

(** [alloc t ~car ~cdr] allocates with count 1, counting pointer children.
    @raise Store.Out_of_memory when the heap is full. *)
val alloc : t -> car:Word.t -> cdr:Word.t -> int

val incr : t -> int -> unit

(** [decr t a] — a saturated count stays saturated (the cell leaks until
    the backup collector runs); otherwise zero reclaims recursively. *)
val decr : t -> int -> unit

val count : t -> int -> int
val is_saturated : t -> int -> bool

(** The M3L stack flag: set while any stack/register reference exists.
    A flagged cell is not reclaimed even at count zero. *)
val set_stack_flag : t -> int -> bool -> unit

val stack_flag : t -> int -> bool

(** [backup_sweep t ~roots] runs the backup mark-sweep, reclaiming
    leaked cells (saturated or cyclic); returns cells freed. *)
val backup_sweep : t -> roots:Word.t list -> int

type counters = {
  reclaimed_by_count : int;   (** cells freed when a count reached zero *)
  reclaimed_by_sweep : int;   (** cells only the backup collector caught *)
  saturations : int;          (** increments that hit the ceiling *)
}

val counters : t -> counters

(** Fraction of all reclaimed cells that counting alone recovered (the
    ~98% of [Sans82a]). *)
val count_recovery_rate : t -> float
