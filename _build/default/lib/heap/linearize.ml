let atom_word symtab (d : Sexp.Datum.t) : Word.t =
  match d with
  | Nil -> Word.Nil
  | Sym s -> Word.Sym (Symtab.intern symtab s)
  | Str s -> Word.Sym (Symtab.intern symtab ("\"" ^ s ^ "\""))
  | Int n -> Word.Int n
  | Cons _ -> invalid_arg "atom_word: not an atom"

(* Allocate the spine of each list at consecutive addresses, then patch
   the car fields; sublists are laid out after their parent's spine. *)
let store_linear symtab store d =
  let rec go (d : Sexp.Datum.t) : Word.t =
    match d with
    | Nil | Sym _ | Int _ | Str _ -> atom_word symtab d
    | Cons _ ->
      let elements =
        let rec spine acc = function
          | Sexp.Datum.Cons (a, rest) -> spine (a :: acc) rest
          | tail -> (List.rev acc, tail)
        in
        spine [] d
      in
      let items, tail = elements in
      (* Reserve the spine first so its cdr pointers are consecutive. *)
      let addrs = List.map (fun _ -> Store.alloc store ~car:Word.Nil ~cdr:Word.Nil) items in
      let tail_word = go tail in
      let rec patch addrs items =
        match addrs, items with
        | [], [] -> ()
        | [ a ], [ item ] ->
          Store.set_car store a (go item);
          Store.set_cdr store a tail_word
        | a :: (next :: _ as rest_a), item :: rest_i ->
          Store.set_car store a (go item);
          Store.set_cdr store a (Word.Ptr next);
          patch rest_a rest_i
        | _ -> assert false
      in
      patch addrs items;
      (match addrs with
       | first :: _ -> Word.Ptr first
       | [] -> tail_word)
  in
  go d

let store_naive symtab store d =
  let rec go (d : Sexp.Datum.t) : Word.t =
    match d with
    | Nil | Sym _ | Int _ | Str _ -> atom_word symtab d
    | Cons (a, x) ->
      let cdr = go x in
      let car = go a in
      Word.Ptr (Store.alloc store ~car ~cdr)
  in
  go d

let read symtab store w =
  let rec go (w : Word.t) : Sexp.Datum.t =
    match w with
    | Nil -> Nil
    | Int n -> Int n
    | Sym s ->
      let name = Symtab.name symtab s in
      if String.length name >= 2 && name.[0] = '"' then
        Str (String.sub name 1 (String.length name - 2))
      else Sym name
    | Ptr a -> Cons (go (Store.car store a), go (Store.cdr store a))
  in
  go w

type pointer_stats = {
  car_to_atom : int;
  car_to_list : int;
  car_to_nil : int;
  cdr_to_atom : int;
  cdr_to_list : int;
  cdr_to_nil : int;
  distances : (int * int) list;
}

let reachable_cells store root =
  let seen = Hashtbl.create 64 in
  let rec go (w : Word.t) =
    match w with
    | Ptr a when not (Hashtbl.mem seen a) ->
      Hashtbl.replace seen a ();
      go (Store.car store a);
      go (Store.cdr store a)
    | Ptr _ | Nil | Sym _ | Int _ -> ()
  in
  go root;
  seen

let pointer_stats store ~root =
  let cells = reachable_cells store root in
  let car_to_atom = ref 0 and car_to_list = ref 0 and car_to_nil = ref 0 in
  let cdr_to_atom = ref 0 and cdr_to_list = ref 0 and cdr_to_nil = ref 0 in
  let dist = Hashtbl.create 32 in
  Hashtbl.iter
    (fun a () ->
       (match Store.car store a with
        | Word.Nil -> incr car_to_nil
        | Sym _ | Int _ -> incr car_to_atom
        | Ptr _ -> incr car_to_list);
       (match Store.cdr store a with
        | Word.Nil -> incr cdr_to_nil
        | Sym _ | Int _ -> incr cdr_to_atom
        | Ptr b ->
          incr cdr_to_list;
          let d = b - a in
          Hashtbl.replace dist d (1 + Option.value ~default:0 (Hashtbl.find_opt dist d))))
    cells;
  {
    car_to_atom = !car_to_atom;
    car_to_list = !car_to_list;
    car_to_nil = !car_to_nil;
    cdr_to_atom = !cdr_to_atom;
    cdr_to_list = !cdr_to_list;
    cdr_to_nil = !cdr_to_nil;
    distances =
      List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
        (Hashtbl.fold (fun d c acc -> (d, c) :: acc) dist []);
  }

let linearity store ~root =
  let stats = pointer_stats store ~root in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 stats.distances in
  if total = 0 then 1.0
  else
    let at_one = Option.value ~default:0 (List.assoc_opt 1 stats.distances) in
    float_of_int at_one /. float_of_int total
