type t =
  | Nil
  | Sym of int
  | Int of int
  | Ptr of int

let equal (a : t) (b : t) = a = b

let is_pointer = function
  | Ptr _ -> true
  | Nil | Sym _ | Int _ -> false

let pp ppf = function
  | Nil -> Format.pp_print_string ppf "nil"
  | Sym s -> Format.fprintf ppf "s%d" s
  | Int n -> Format.fprintf ppf "%d" n
  | Ptr a -> Format.fprintf ppf "@@%d" a
