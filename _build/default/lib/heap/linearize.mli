(** Loading s-expressions into the cell heap, and Clark-style pointer
    statistics (§3.2.1).

    Clark's static studies measured where car/cdr pointers point (atoms,
    lists, nil) and how far away they point; {e linearisation} relocates
    cells so cdr pointers typically point at the next address.  The two
    allocators here bracket that behaviour: [store_linear] allocates each
    list's spine at consecutive ascending addresses (a well-linearised
    heap), while [store_naive] allocates in the order cells are created by
    a recursive cons-up (the order a naive reader would), which still turns
    out fairly linear — Clark's observation that linearity is inherent in
    how lists get built. *)

(** [store_linear symtab store d] writes [d] into [store], cdr-linearised,
    returning the root word. *)
val store_linear : Symtab.t -> Store.t -> Sexp.Datum.t -> Word.t

(** [store_naive symtab store d] writes [d] bottom-up (cdr before car,
    tail before head), as a recursive cons-up would. *)
val store_naive : Symtab.t -> Store.t -> Sexp.Datum.t -> Word.t

(** [read symtab store w] reconstructs the s-expression rooted at [w].
    Diverges on cyclic structure. *)
val read : Symtab.t -> Store.t -> Word.t -> Sexp.Datum.t

type pointer_stats = {
  car_to_atom : int;
  car_to_list : int;
  car_to_nil : int;
  cdr_to_atom : int;
  cdr_to_list : int;
  cdr_to_nil : int;
  distances : (int * int) list;
      (** histogram of [cdr] pointer distances (target - source), distance
          -> occurrence count, ascending *)
}

(** [pointer_stats store ~root] gathers Clark's static pointer statistics
    over the structure reachable from [root]. *)
val pointer_stats : Store.t -> root:Word.t -> pointer_stats

(** Fraction of cdr pointers (over reachable cells, excluding nil/atom
    cdrs) whose target is exactly the next address — Clark's linearisation
    measure. *)
val linearity : Store.t -> root:Word.t -> float
