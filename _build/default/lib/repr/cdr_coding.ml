type code = Cdr_next | Cdr_nil | Cdr_normal | Cdr_error

type car_word =
  | Atom of Heap.Word.t
  | Ref of int
  | Invisible of int

type cell = { mutable word : car_word; mutable code : code }

type t = {
  mutable cells : cell array;
  mutable len : int;
  mutable invisible_hops : int;
  symtab : Heap.Symtab.t;
}

let create () =
  { cells = Array.init 16 (fun _ -> { word = Atom Heap.Word.Nil; code = Cdr_nil });
    len = 0;
    invisible_hops = 0;
    symtab = Heap.Symtab.create () }

let cells t = t.len

let bits t ~word_bits = t.len * (word_bits + 2)

let grow t needed =
  let cap = Array.length t.cells in
  if t.len + needed > cap then begin
    let cap' = max (2 * cap) (t.len + needed) in
    let fresh = Array.init cap' (fun i ->
        if i < cap then t.cells.(i) else { word = Atom Heap.Word.Nil; code = Cdr_nil })
    in
    t.cells <- fresh
  end

(* Reserve [k] consecutive cells, returning the index of the first. *)
let reserve t k =
  grow t k;
  let first = t.len in
  t.len <- t.len + k;
  for i = first to first + k - 1 do
    t.cells.(i) <- { word = Atom Heap.Word.Nil; code = Cdr_nil }
  done;
  first

let atom_word t (d : Sexp.Datum.t) : Heap.Word.t =
  match d with
  | Nil -> Heap.Word.Nil
  | Int n -> Heap.Word.Int n
  | Sym s -> Heap.Word.Sym (Heap.Symtab.intern t.symtab s)
  | Str s -> Heap.Word.Sym (Heap.Symtab.intern t.symtab ("\"" ^ s))
  | Cons _ -> invalid_arg "atom_word"

let rec encode t (d : Sexp.Datum.t) : car_word =
  match d with
  | Nil | Sym _ | Int _ | Str _ -> Atom (atom_word t d)
  | Cons _ ->
    let rec spine acc = function
      | Sexp.Datum.Cons (a, rest) -> spine (a :: acc) rest
      | tail -> (List.rev acc, tail)
    in
    let items, tail = spine [] d in
    let k = List.length items in
    (match tail with
     | Nil ->
       (* Pure vector run: k compact cells. *)
       let first = reserve t k in
       List.iteri
         (fun i item ->
            let c = t.cells.(first + i) in
            c.word <- encode t item;
            c.code <- (if i = k - 1 then Cdr_nil else Cdr_next))
         items;
       Ref first
     | tail ->
       (* Dotted tail: compact run then a normal/error pair at the end. *)
       let first = reserve t (k + 1) in
       List.iteri
         (fun i item ->
            let c = t.cells.(first + i) in
            c.word <- encode t item;
            c.code <- (if i = k - 1 then Cdr_normal else Cdr_next))
         items;
       let last = t.cells.(first + k) in
       last.word <- encode t tail;
       last.code <- Cdr_error;
       Ref first)

let rec resolve t i =
  match t.cells.(i).word with
  | Invisible j ->
    t.invisible_hops <- t.invisible_hops + 1;
    resolve t j
  | Atom _ | Ref _ -> i

let car t i =
  let i = resolve t i in
  t.cells.(i).word

let cdr t i =
  let i = resolve t i in
  match t.cells.(i).code with
  | Cdr_nil -> Atom Heap.Word.Nil
  | Cdr_next -> Ref (i + 1)
  | Cdr_normal -> t.cells.(i + 1).word
  | Cdr_error -> invalid_arg "Cdr_coding.cdr: cdr-error cell"

let rplaca t i w =
  let i = resolve t i in
  t.cells.(i).word <- w

let rplacd t i w =
  let i = resolve t i in
  match t.cells.(i).code with
  | Cdr_normal -> t.cells.(i + 1).word <- w; false
  | Cdr_error -> invalid_arg "Cdr_coding.rplacd: cdr-error cell"
  | Cdr_next | Cdr_nil ->
    (* Cannot widen in place: forward to a fresh normal pair. *)
    let j = reserve t 2 in
    t.cells.(j) <- { word = t.cells.(i).word; code = Cdr_normal };
    t.cells.(j + 1) <- { word = w; code = Cdr_error };
    t.cells.(i).word <- Invisible j;
    true

let rec decode t (w : car_word) : Sexp.Datum.t =
  match w with
  | Atom Heap.Word.Nil -> Nil
  | Atom (Heap.Word.Int n) -> Int n
  | Atom (Heap.Word.Sym s) ->
    let name = Heap.Symtab.name t.symtab s in
    if String.length name >= 1 && name.[0] = '"' then
      Str (String.sub name 1 (String.length name - 1))
    else Sym name
  | Atom (Heap.Word.Ptr _) -> invalid_arg "Cdr_coding.decode: raw pointer"
  | Invisible j ->
    t.invisible_hops <- t.invisible_hops + 1;
    decode t (Ref j)
  | Ref i ->
    let i = resolve t i in
    Cons (decode t (car t i), decode t (cdr t i))

let invisible_hops t = t.invisible_hops
