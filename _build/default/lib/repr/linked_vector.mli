(** Linked-vector list representation (Figure 2.7, [Li85a]).

    Lists are stored in fixed-size vectors of tagged elements.  A two-bit
    tag distinguishes: a {e default} cell whose cdr is the next cell in the
    vector; a default cell whose cdr is {e nil}; an {e indirection} cell
    holding a pointer to a cell in another vector (used to chain vectors
    and for structure sharing); and an {e unused} cell (left behind by
    deletions so compaction can be deferred). *)

type tag = Default_next | Default_nil | Indirect | Unused

type element =
  | Elem of Heap.Word.t       (** a list element: atom or [Ptr] to a cell id *)
  | Link of int               (** indirection target: global cell id *)

type t

(** [create ~vector_size] builds an empty space of [vector_size]-element
    vectors. *)
val create : vector_size:int -> t

(** [encode t d] lays out datum [d]; returns the global cell id of its
    first cell, or [None] for atoms (atoms are not stored). *)
val encode : t -> Sexp.Datum.t -> int option

(** [decode t id] rebuilds the list starting at cell [id]. *)
val decode : t -> int -> Sexp.Datum.t

(** Total vectors allocated. *)
val vectors : t -> int

(** Cells used (non-[Unused]) and total cells (vectors × size). *)
val used_cells : t -> int

val total_cells : t -> int

(** Indirection cells created — the fragmentation cost of small vectors
    (§2.3.3.1). *)
val indirections : t -> int

(** Space in bits: every element is a [word_bits]-wide field plus the
    2-bit tag, and whole vectors are allocated at a time. *)
val bits : t -> word_bits:int -> int
