(** The classical two-pointer cell representation (Figure 2.6) and its
    cost model.

    Uniform (no exception cases) but space-inefficient: every cell holds
    two full-width pointers, and traversal is address-generation bound —
    the address of the next cell is only known after the previous read
    completes (§2.3.3.3). *)

type t

val create : capacity:int -> t

(** [encode t d] loads [d] into the underlying cell store (cdr-linearised)
    and returns the root word. *)
val encode : t -> Sexp.Datum.t -> Heap.Word.t

val decode : t -> Heap.Word.t -> Sexp.Datum.t

(** Cells allocated so far. *)
val cells : t -> int

(** Space in bits, with two [word_bits]-wide pointer fields per cell. *)
val bits : t -> word_bits:int -> int

(** [dependent_reads t root] counts the memory reads needed to traverse
    the full structure at [root], all of which are serially dependent —
    the addressing-bottleneck measure contrasted with vector coding. *)
val dependent_reads : t -> Heap.Word.t -> int

val store : t -> Heap.Store.t
val symtab : t -> Heap.Symtab.t
