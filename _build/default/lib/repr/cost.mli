(** Side-by-side space costs of the representation schemes for a given
    s-expression — the comparison behind Figure 3.2 and §2.3.3.3.

    Field widths default to the MIT Lisp Machine's: 32-bit words for
    two-pointer cells, 29+2-bit cdr-coded cells, 24-bit symbols with
    BLAST-style path codes for the structure-coded schemes. *)

type summary = {
  n : int;                      (** symbols in the list *)
  p : int;                      (** internal parenthesis pairs *)
  two_pointer_cells : int;      (** = n + p *)
  cdr_coded_cells : int;
  linked_vector_cells : int;    (** total incl. fragmentation *)
  structure_coded_cells : int;  (** = n (CDAR and EPS alike) *)
  two_pointer_bits : int;
  cdr_coded_bits : int;
  linked_vector_bits : int;
  cdar_bits : int;
  eps_bits : int;
}

(** [summarize ?vector_size d] encodes [d] under every scheme and reports
    the costs.  [d] must be a proper nested list without nil elements
    (the common domain of all schemes).  [vector_size] defaults to 8. *)
val summarize : ?vector_size:int -> Sexp.Datum.t -> summary

val pp : Format.formatter -> summary -> unit
