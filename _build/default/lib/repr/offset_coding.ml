type car_field =
  | CAtom of Sexp.Datum.t    (* an immediate atom *)
  | CPtr of int              (* pointer to another cell (a sublist head) *)
  | CCdrPtr of int           (* a displaced cdr pointer (escape cells) *)

type cell = { mutable car : car_field; mutable code : int }

type t = {
  mutable cells : cell array;
  mutable len : int;
  mutable indirections : int;
}

let create () =
  { cells = Array.init 16 (fun _ -> { car = CAtom Sexp.Datum.Nil; code = 0 });
    len = 0; indirections = 0 }

let cells t = t.len
let indirections t = t.indirections
let bits t = t.len * (24 + 8)

let reserve t k =
  let cap = Array.length t.cells in
  if t.len + k > cap then begin
    let cap' = max (2 * cap) (t.len + k) in
    let fresh =
      Array.init cap' (fun i ->
          if i < cap then t.cells.(i) else { car = CAtom Sexp.Datum.Nil; code = 0 })
    in
    t.cells <- fresh
  end;
  let first = t.len in
  t.len <- t.len + k;
  for i = first to first + k - 1 do
    t.cells.(i) <- { car = CAtom Sexp.Datum.Nil; code = 0 }
  done;
  first

let rec encode t (d : Sexp.Datum.t) =
  match d with
  | Nil | Sym _ | Int _ | Str _ -> None
  | Cons _ ->
    let items = Sexp.Datum.to_list d in
    let k = List.length items in
    (* the spine first, contiguously, so every cdr offset is 1 *)
    let first = reserve t k in
    List.iteri
      (fun i item ->
         let c = t.cells.(first + i) in
         c.code <- (if i = k - 1 then 0 else 1);
         c.car <-
           (match encode t item with
            | Some sub -> CPtr sub
            | None -> CAtom item))
      items;
    Some first

let cdr_code t addr = t.cells.(addr).code

(* Resolve code-128 invisible cells to the real cell. *)
let rec resolve t addr =
  let c = t.cells.(addr) in
  if c.code = 128 then
    match c.car with
    | CPtr real -> resolve t real
    | CAtom _ | CCdrPtr _ -> invalid_arg "Offset_coding: corrupt invisible cell"
  else addr

let rec decode t addr =
  let addr = resolve t addr in
  let c = t.cells.(addr) in
  let car =
    match c.car with
    | CAtom d -> d
    | CPtr sub -> decode t sub
    | CCdrPtr _ -> invalid_arg "Offset_coding.decode: escape cell in data position"
  in
  let cdr =
    if c.code = 0 then Sexp.Datum.Nil
    else if c.code <= 127 then decode t (addr + c.code)
    else begin
      (* 129..255: the cell at addr + code - 128 holds the cdr pointer *)
      let p = addr + c.code - 128 in
      match t.cells.(p).car with
      | CCdrPtr target -> decode t target
      | CAtom _ | CPtr _ -> invalid_arg "Offset_coding.decode: bad escape"
    end
  in
  Sexp.Datum.Cons (car, cdr)

let rplacd t addr v =
  let addr = resolve t addr in
  let c = t.cells.(addr) in
  match v with
  | `Nil ->
    c.code <- 0;
    false
  | `Cell target ->
    let target = resolve t target in
    let delta = target - addr in
    if delta >= 1 && delta <= 127 then begin
      c.code <- delta;
      false
    end
    else begin
      (* out of offset reach: displace the cell to a fresh pair and leave
         an invisible pointer behind (the paged system's escape) *)
      let pair = reserve t 2 in
      t.cells.(pair) <- { car = c.car; code = 129 };      (* ptr in next cell *)
      t.cells.(pair + 1) <- { car = CCdrPtr target; code = 0 };
      c.car <- CPtr pair;
      c.code <- 128;
      t.indirections <- t.indirections + 1;
      true
    end
