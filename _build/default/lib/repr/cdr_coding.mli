(** MIT Lisp Machine cdr-coding (Figure 2.8, §2.3.3.1).

    A cdr-coded cell is a wide car word plus a 2-bit cdr code:
    - [Cdr_next]: the cdr is the cell at the next address;
    - [Cdr_nil]: the cdr is nil (last cell of a vector run);
    - [Cdr_normal]: the cdr pointer lives in the neighbouring cell, whose
      own code is [Cdr_error] — the pair behaves like a two-pointer cell;
    - [Cdr_error]: the cell is the second half of a normal pair.

    Destructive [rplacd] on a compact cell cannot rewrite the neighbour (it
    belongs to another list element), so the cell is replaced by an
    {e invisible pointer} to a freshly allocated normal pair, dereferenced
    transparently on access — exactly the MIT machine's escape hatch. *)

type code = Cdr_next | Cdr_nil | Cdr_normal | Cdr_error

type car_word =
  | Atom of Heap.Word.t     (** a non-pointer atom ([Ptr] is rejected) *)
  | Ref of int              (** index of another cdr-coded cell *)
  | Invisible of int        (** forwarding pointer, dereferenced on access *)

type t
(** A growable cdr-coded list space. *)

val create : unit -> t

(** Number of cells currently in the space. *)
val cells : t -> int

(** Space cost in bits, with [word_bits]-wide car fields: each cell is
    [word_bits + 2] bits.  Compare {!Two_pointer.bits}. *)
val bits : t -> word_bits:int -> int

(** [encode t d] lays out datum [d]; returns its root word. *)
val encode : t -> Sexp.Datum.t -> car_word

(** [decode t w] reconstructs the s-expression at [w]. *)
val decode : t -> car_word -> Sexp.Datum.t

(** [car t i] / [cdr t i] follow invisible pointers and return the
    car/cdr of cell [i] as a [car_word] ([Atom Nil] for nil). *)
val car : t -> int -> car_word

val cdr : t -> int -> car_word

(** [rplaca t i w] replaces the car of cell [i]. *)
val rplaca : t -> int -> car_word -> unit

(** [rplacd t i w] replaces the cdr of cell [i], converting a compact cell
    into an invisible pointer to a normal pair when needed.  Returns [true]
    if an invisible pointer had to be created. *)
val rplacd : t -> int -> car_word -> bool

(** Number of invisible-pointer dereferences performed so far (the hidden
    access cost of mutation under compact coding). *)
val invisible_hops : t -> int
