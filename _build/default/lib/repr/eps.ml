type entry = {
  left : int;
  right : int;
  position : int;
  value : Sexp.Datum.t;
}

type t = entry list

type token = Lp | Rp | Symb of Sexp.Datum.t

(* Flatten the printed form of [d] into a token stream. *)
let rec tokens (d : Sexp.Datum.t) acc =
  match d with
  | Nil -> invalid_arg "Eps.encode: nil element is not expressible"
  | Sym _ | Int _ | Str _ -> Symb d :: acc
  | Cons _ ->
    let items = Sexp.Datum.to_list d in
    if items = [] then invalid_arg "Eps.encode: empty list is not expressible";
    Lp :: List.fold_right tokens items (Rp :: acc)

let encode d =
  (match d with
   | Sexp.Datum.Cons _ -> ()
   | Nil | Sym _ | Int _ | Str _ -> invalid_arg "Eps.encode: not a list");
  let toks = Array.of_list (tokens d []) in
  let n = Array.length toks in
  let entries = ref [] in
  let lefts = ref 0 and rights = ref 0 and pos = ref 0 in
  Array.iteri
    (fun i tok ->
       match tok with
       | Lp -> incr lefts
       | Rp -> incr rights
       | Symb v ->
         incr pos;
         (* closes immediately following this symbol *)
         let following = ref 0 in
         let j = ref (i + 1) in
         while !j < n && toks.(!j) = Rp do incr following; incr j done;
         entries :=
           { left = !lefts; right = !rights + !following; position = !pos; value = v }
           :: !entries)
    toks;
  List.rev !entries

let decode (entries : t) : Sexp.Datum.t =
  match entries with
  | [] -> Nil
  | entries ->
    (* Between consecutive symbols the stream is some ')'s (all adjacent to
       the earlier symbol, so recoverable from its [right]) then some '('s
       (from the [left] difference); rebuild the text and re-read it. *)
    let buf = Buffer.create 64 in
    let prev_left = ref 0 and prev_right = ref 0 in
    List.iter
      (fun e ->
         for _ = 1 to e.left - !prev_left do Buffer.add_char buf '(' done;
         Buffer.add_string buf (Sexp.Printer.to_string e.value);
         Buffer.add_char buf ' ';
         for _ = 1 to e.right - !prev_right do Buffer.add_char buf ')' done;
         prev_left := e.left;
         prev_right := e.right)
      entries;
    for _ = 1 to !prev_left - !prev_right do Buffer.add_char buf ')' done;
    Sexp.Reader.parse (Buffer.contents buf)

let cells (t : t) = List.length t

let bits t ~word_bits ~count_bits = cells t * (word_bits + (3 * count_bits))
