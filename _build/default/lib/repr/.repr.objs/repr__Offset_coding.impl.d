lib/repr/offset_coding.ml: Array List Sexp
