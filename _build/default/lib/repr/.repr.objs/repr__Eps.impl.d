lib/repr/eps.ml: Array Buffer List Sexp
