lib/repr/eps.mli: Sexp
