lib/repr/repr.ml: Cdar Cdr_coding Conc Cost Eps Exception_table Linked_vector Offset_coding Two_pointer
