lib/repr/cost.mli: Format Sexp
