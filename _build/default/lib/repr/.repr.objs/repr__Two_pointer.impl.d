lib/repr/two_pointer.ml: Heap
