lib/repr/two_pointer.mli: Heap Sexp
