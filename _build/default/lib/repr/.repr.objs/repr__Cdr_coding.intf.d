lib/repr/cdr_coding.mli: Heap Sexp
