lib/repr/conc.ml: Array List Sexp
