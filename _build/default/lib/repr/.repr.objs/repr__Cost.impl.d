lib/repr/cost.ml: Cdar Cdr_coding Eps Format Linked_vector Sexp Two_pointer
