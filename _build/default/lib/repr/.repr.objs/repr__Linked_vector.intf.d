lib/repr/linked_vector.mli: Heap Sexp
