lib/repr/conc.mli: Sexp
