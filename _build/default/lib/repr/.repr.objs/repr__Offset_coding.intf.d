lib/repr/offset_coding.mli: Sexp
