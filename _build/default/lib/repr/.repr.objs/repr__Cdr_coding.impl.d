lib/repr/cdr_coding.ml: Array Heap List Sexp String
