lib/repr/cdar.ml: Bool List Sexp String
