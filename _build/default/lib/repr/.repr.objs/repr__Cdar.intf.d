lib/repr/cdar.mli: Sexp
