lib/repr/exception_table.mli: Sexp
