lib/repr/exception_table.ml: List Sexp
