lib/repr/linked_vector.ml: Array Heap List Sexp String
