(** Deutsch's offset cdr-coding (§2.3.3.1, [Deut78a]).

    Each cell is a 24-bit car field plus an 8-bit cdr code interpreted
    against the cell's own address:
    - code 0: the cdr is nil;
    - codes 1..127: the cdr is the cell at [address + code];
    - code 128: the cdr pointer occupies this cell's car field (the car
      itself has been displaced — here modelled as a dedicated indirect
      cell);
    - codes 129..255: the cell at [address + code - 128] holds the cdr
      pointer.

    The scheme was designed for a paged system (256-word pages): a cdr
    can only be encoded compactly if it lands within offset reach, so the
    encoder allocates list spines contiguously and falls back to
    indirection cells when structure sharing or mutation defeats it. *)

type t

val create : unit -> t

(** [encode t d] lays out the proper nested list [d]; returns the cell
    address of its head ([None] for atoms, which are immediate). *)
val encode : t -> Sexp.Datum.t -> int option

val decode : t -> int -> Sexp.Datum.t

(** [cdr_code t addr] — the raw 8-bit code, for inspection. *)
val cdr_code : t -> int -> int

(** [rplacd t addr v] replaces the cdr of the cell at [addr].  In-reach
    replacements rewrite the code; otherwise an indirection cell is
    appended and the code switches to the 129..255 form.  Returns [true]
    when an indirection had to be created. *)
val rplacd : t -> int -> [ `Nil | `Cell of int ] -> bool

(** Cells allocated (including indirection cells). *)
val cells : t -> int

val indirections : t -> int

(** Space in bits: every cell is 24 + 8 bits. *)
val bits : t -> int
