(** CDAR coding (Figure 2.10, [Pott83a]) — a structure-coded
    representation.

    Each symbol of a list is tagged with the string of car (0) and cdr (1)
    operations that reaches it from the list root, least-significant
    operation first; equivalently the path word of the BLAST node number
    N = 2^l + k (§2.3.3.2).  Only the [n] symbols are stored — structural
    information lives entirely in the tags — so any element is addressable
    without touching other cells, at the price of harder splitting and
    merging (§4.3.3.2). *)

type entry = {
  path : bool list;    (** root-to-symbol operations; [false]=car, [true]=cdr *)
  node : int;          (** BLAST node number: 1 then path bits appended *)
  value : Sexp.Datum.t;(** the symbol (a non-nil atom) *)
}

type t = entry list
(** An encoded list: one entry per symbol, in left-to-right order. *)

(** [encode d] produces the exception-table encoding of [d]. *)
val encode : Sexp.Datum.t -> t

(** [decode t] reconstructs the s-expression; leaves not covered by any
    entry's path are [Nil].  [decode (encode d) = d] whenever [d] contains
    no [Nil] elements in atom position (a stored [Nil] is indistinguishable
    from an implicit one — the representation's documented blind spot). *)
val decode : t -> Sexp.Datum.t

(** [lookup t path] finds the entry at exactly [path], if any — the
    constant-time associative access the scheme is designed for. *)
val lookup : t -> bool list -> Sexp.Datum.t option

(** Cells used: one per symbol ([n], vs [n + p] for pointer schemes). *)
val cells : t -> int

(** Space in bits with [word_bits]-wide symbol fields and [path_bits]-wide
    code fields per entry. *)
val bits : t -> word_bits:int -> path_bits:int -> int

(** Render an entry's CDAR code as a fixed-width 0/1 string of [width]
    characters, least-significant (first) operation rightmost — the format
    of Figure 2.10. *)
val code_string : width:int -> entry -> string
