type entry = {
  path : bool list;
  node : int;
  value : Sexp.Datum.t;
}

type t = entry list

let node_of_path path = List.fold_left (fun n b -> (2 * n) + Bool.to_int b) 1 path

let encode d =
  let rec go prefix (d : Sexp.Datum.t) acc =
    match d with
    | Nil -> acc
    | Sym _ | Int _ | Str _ ->
      let path = List.rev prefix in
      { path; node = node_of_path path; value = d } :: acc
    | Cons (a, x) -> go (false :: prefix) a (go (true :: prefix) x acc)
  in
  go [] d []

let rec decode (entries : t) : Sexp.Datum.t =
  match entries with
  | [] -> Nil
  | [ { path = []; value; _ } ] -> value
  | entries ->
    if List.exists (fun e -> e.path = []) entries then
      invalid_arg "Cdar.decode: atom entry shadowed by deeper entries";
    let strip side =
      List.filter_map
        (fun e ->
           match e.path with
           | b :: rest when b = side ->
             Some { e with path = rest; node = node_of_path rest }
           | _ -> None)
        entries
    in
    Cons (decode (strip false), decode (strip true))

let lookup entries path =
  List.find_map (fun e -> if e.path = path then Some e.value else None) entries

let cells (t : t) = List.length t

let bits t ~word_bits ~path_bits = cells t * (word_bits + path_bits)

let code_string ~width e =
  let bits = List.rev_map (fun b -> if b then '1' else '0') e.path in
  let s = String.init (List.length bits) (List.nth bits) in
  if String.length s >= width then s
  else String.make (width - String.length s) '0' ^ s
