type t =
  | Tuple of elem array
  | Conc of t * t

and elem =
  | Atom of Sexp.Datum.t
  | Sub of t

let rec of_datum (d : Sexp.Datum.t) =
  match d with
  | Nil -> Tuple [||]
  | Sym _ | Int _ | Str _ -> invalid_arg "Conc.of_datum: not a list"
  | Cons _ ->
    let items = Sexp.Datum.to_list d in
    Tuple
      (Array.of_list
         (List.map
            (fun (item : Sexp.Datum.t) ->
               match item with
               | Cons _ | Nil -> Sub (of_datum item)
               | Sym _ | Int _ | Str _ -> Atom item)
            items))

let rec to_datum t =
  let rec elems t acc =
    match t with
    | Conc (a, b) -> elems a (elems b acc)
    | Tuple es ->
      Array.fold_right
        (fun e acc ->
           let d = match e with Atom a -> a | Sub s -> to_datum s in
           Sexp.Datum.Cons (d, acc))
        es acc
  in
  ignore to_datum;
  elems t Sexp.Datum.Nil

let concat a b = Conc (a, b)

let rec length = function
  | Tuple es -> Array.length es
  | Conc (a, b) -> length a + length b

let nth t i =
  let rec go t i hops =
    match t with
    | Tuple es ->
      if i < Array.length es then (es.(i), hops)
      else invalid_arg "Conc.nth: index out of range"
    | Conc (a, b) ->
      let la = length a in
      if i < la then go a i (hops + 1) else go b (i - la) (hops + 1)
  in
  go t i 0

type space = {
  tuple_cells : int;
  descriptors : int;
  conc_cells : int;
}

let space t =
  let rec go t acc =
    match t with
    | Tuple es ->
      let acc =
        { acc with
          tuple_cells = acc.tuple_cells + Array.length es;
          descriptors = acc.descriptors + 1 }
      in
      Array.fold_left
        (fun acc e -> match e with Sub s -> go s acc | Atom _ -> acc)
        acc es
    | Conc (a, b) -> go b (go a { acc with conc_cells = acc.conc_cells + 1 })
  in
  go t { tuple_cells = 0; descriptors = 0; conc_cells = 0 }

let flatten t =
  let rec collect t acc =
    match t with
    | Conc (a, b) -> collect a (collect b acc)
    | Tuple es -> Array.fold_right (fun e acc -> e :: acc) es acc
  in
  Tuple (Array.of_list (collect t []))
