type t =
  | Table of (int * Sexp.Datum.t) list   (* (node number, symbol), sorted *)
  | Fwd of t * t                         (* cheap merge: two forwardings *)

let scan_counter = ref 0

let entries_scanned () = !scan_counter
let reset_scan_counter () = scan_counter := 0

let encode d =
  let rec go n (d : Sexp.Datum.t) acc =
    match d with
    | Nil -> acc
    | Sym _ | Int _ | Str _ -> (n, d) :: acc
    | Cons (a, x) -> go (2 * n) a (go ((2 * n) + 1) x acc)
  in
  Table (List.sort (fun (a, _) (b, _) -> compare a b) (go 1 d []))

(* Path length of node number n (root = 0); its first path bit selects the
   car (0) or cdr (1) subtree. *)
let path_len n =
  let rec go n acc = if n <= 1 then acc else go (n / 2) (acc + 1) in
  go n 0

let first_bit n = (n lsr (path_len n - 1)) land 1

(* Renumber a node into its subtree: strip the first path bit. *)
let strip n =
  let k = path_len n in
  (1 lsl (k - 1)) lor (n land ((1 lsl (k - 1)) - 1))

let partition entries =
  let left =
    List.filter_map (fun (n, s) -> if first_bit n = 0 then Some (strip n, s) else None)
      entries
  in
  let right =
    List.filter_map (fun (n, s) -> if first_bit n = 1 then Some (strip n, s) else None)
      entries
  in
  (left, right)

let rec decode = function
  | Fwd (a, b) -> Sexp.Datum.Cons (decode a, decode b)
  | Table [] -> Sexp.Datum.Nil
  | Table [ (1, atom) ] -> atom
  | Table entries ->
    if List.exists (fun (n, _) -> n = 1) entries then
      invalid_arg "Exception_table.decode: atom entry shadowed by deeper entries";
    let left, right = partition entries in
    Sexp.Datum.Cons (decode (Table left), decode (Table right))

let rec lookup t n =
  match t with
  | Table entries -> List.assoc_opt n entries
  | Fwd (a, b) ->
    if n = 1 then None
    else if first_bit n = 0 then lookup a (strip n)
    else lookup b (strip n)

let split = function
  | Fwd (a, b) -> (a, b)
  | Table [] -> invalid_arg "Exception_table.split: nil object"
  | Table [ (1, _) ] -> invalid_arg "Exception_table.split: atom object"
  | Table entries ->
    (* the expensive path: every entry is examined and renumbered *)
    scan_counter := !scan_counter + List.length entries;
    let left, right = partition entries in
    (Table left, Table right)

let merge a b = Fwd (a, b)

let rec entries = function
  | Table es -> List.length es
  | Fwd (a, b) -> entries a + entries b

let rec forwardings = function
  | Table _ -> 0
  | Fwd (a, b) -> 1 + forwardings a + forwardings b
