type t = { store : Heap.Store.t; symtab : Heap.Symtab.t }

let create ~capacity =
  { store = Heap.Store.create ~capacity; symtab = Heap.Symtab.create () }

let encode t d = Heap.Linearize.store_linear t.symtab t.store d
let decode t w = Heap.Linearize.read t.symtab t.store w

let cells t = Heap.Store.live t.store
let bits t ~word_bits = 2 * word_bits * cells t

let dependent_reads t root =
  let n = ref 0 in
  let rec go (w : Heap.Word.t) =
    match w with
    | Nil | Sym _ | Int _ -> ()
    | Ptr a ->
      (* car and cdr of [a] are two reads, each dependent on having [a]. *)
      n := !n + 2;
      go (Heap.Store.car t.store a);
      go (Heap.Store.cdr t.store a)
  in
  go root;
  !n

let store t = t.store
let symtab t = t.symtab
