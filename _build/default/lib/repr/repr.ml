(** List representation schemes surveyed in §2.3.3 (Figures 2.6–2.10):
    the uniform two-pointer cell, the vector-coded schemes (MIT
    cdr-coding, linked vectors, conc tuples) and the structure-coded
    schemes (CDAR, EPS, BLAST exception tables), each with encode/decode and a space-cost model.  {!Cost}
    compares them on a given list. *)

module Two_pointer = Two_pointer
module Cdr_coding = Cdr_coding
module Offset_coding = Offset_coding
module Linked_vector = Linked_vector
module Conc = Conc
module Cdar = Cdar
module Eps = Eps
module Exception_table = Exception_table
module Cost = Cost
