(** Explicit Parenthesis Storage (EPS) representation (Figure 2.10,
    [Pott83a]).

    Each symbol of a list is tagged with three counts:
    - [left]: left parentheses in the printed list to the left of the
      symbol;
    - [right]: right parentheses to the left of {e and immediately
      following} the symbol;
    - [position]: the symbol's 1-based position among all symbols.

    The triple sequence determines the list: the parentheses opened
    before symbol [i] number [left(i) - left(i-1)], and since
    [right(i) = closes_before(i+1)], the closes between consecutive
    symbols are recoverable too. *)

type entry = {
  left : int;
  right : int;
  position : int;
  value : Sexp.Datum.t;
}

type t = entry list

(** [encode d] tags every symbol of list [d].  [d] must be a proper nested
    list whose atoms are non-nil (nil elements and dotted pairs are not
    expressible in EPS). *)
val encode : Sexp.Datum.t -> t

(** [decode t] reconstructs the list.  [decode (encode d) = d] for
    EPS-expressible [d]. *)
val decode : t -> Sexp.Datum.t

val cells : t -> int

(** Space in bits per entry: symbol word plus three count fields. *)
val bits : t -> word_bits:int -> count_bits:int -> int
