(** The conc representation (§2.3.3.1, [Kell80a]).

    Linear runs of list elements are stored as {e tuples} — contiguous
    vectors accessed through a descriptor (length, pointer) — while
    {e conc cells} implement concatenation without modifying either
    operand: concatenating L1 and L2 allocates one conc cell whose
    fields point at them (contrast the two-pointer representation, where
    append must copy or rplacd).

    Access cost: indexing into a tuple is O(1) after following its
    descriptor; conc cells add one indirection per crossing, so a list
    built from [k] concatenations costs up to O(log k) hops per access
    if balanced, O(k) if degenerate — the trade-off the thesis notes for
    vector-coded schemes. *)

type t =
  | Tuple of elem array           (** a run of elements *)
  | Conc of t * t                 (** concatenation node *)

and elem =
  | Atom of Sexp.Datum.t          (** a non-nil atom *)
  | Sub of t                      (** a nested list *)

(** [of_datum d] builds a single-tuple representation of proper list [d]
    (sublists become [Sub] tuples).
    @raise Invalid_argument on atoms or dotted lists. *)
val of_datum : Sexp.Datum.t -> t

val to_datum : t -> Sexp.Datum.t

(** O(1) concatenation: allocates exactly one conc cell. *)
val concat : t -> t -> t

val length : t -> int

(** [nth t i] returns the element and the number of conc-cell hops the
    access crossed.  @raise Invalid_argument if out of range. *)
val nth : t -> int -> elem * int

(** Space model: tuple cells = total elements; descriptors = number of
    tuples; conc cells counted separately. *)
type space = {
  tuple_cells : int;
  descriptors : int;
  conc_cells : int;
}

val space : t -> space

(** [flatten t] copies everything into one fresh tuple (the compaction a
    conc system performs when indirection costs accumulate). *)
val flatten : t -> t
