(** BLAST-style exception tables (§2.3.3.2, [Sohi85a]; split/merge costs
    discussed in §4.3.3.2).

    A list maps to a binary tree whose leaves are its symbols; each
    symbol is stored with its Minsky/BLAST node number N = 2^l + k (the
    root is 1, node N's children are 2N and 2N+1).  A list is then a set
    of (node number, symbol) tuples held in an associatively searched
    table — every element addressable without touching any other cell.

    The price appears at structure surgery: {!split} must scan the whole
    table and renumber each entry into one of two new tables, while a
    cheap {!merge} allocates a table of two {e forwarding} entries — the
    indirections and fragmentation §4.3.3.2 warns about. *)

type t

(** [encode d] builds the table for [d]; nil leaves are implicit.  Like
    CDAR coding the scheme cannot represent an explicit [Nil] in atom
    position. *)
val encode : Sexp.Datum.t -> t

val decode : t -> Sexp.Datum.t

(** [lookup t n] finds the symbol at node number [n] (following
    forwarding entries), if any. *)
val lookup : t -> int -> Sexp.Datum.t option

(** [split t] returns the car-subtree and cdr-subtree tables with
    renumbered entries; returns an expensive full-scan cost via the
    [entries_scanned] count.  @raise Invalid_argument on an atom table. *)
val split : t -> t * t

(** [merge a b] — cheap: one table holding two forwarding pointers. *)
val merge : t -> t -> t

(** Symbol entries stored (forwarding entries excluded). *)
val entries : t -> int

(** Forwarding entries accumulated by cheap merges. *)
val forwardings : t -> int

(** Entries scanned by all [split]s performed on tables derived from
    this value's lineage so far — a process-wide cost counter. *)
val entries_scanned : unit -> int

val reset_scan_counter : unit -> unit
