type summary = {
  n : int;
  p : int;
  two_pointer_cells : int;
  cdr_coded_cells : int;
  linked_vector_cells : int;
  structure_coded_cells : int;
  two_pointer_bits : int;
  cdr_coded_bits : int;
  linked_vector_bits : int;
  cdar_bits : int;
  eps_bits : int;
}

let summarize ?(vector_size = 8) d =
  let n, p = Sexp.Metrics.np d in
  let tp = Two_pointer.create ~capacity:(max 16 (4 * (n + p + 1))) in
  ignore (Two_pointer.encode tp d);
  let cc = Cdr_coding.create () in
  ignore (Cdr_coding.encode cc d);
  let lv = Linked_vector.create ~vector_size in
  ignore (Linked_vector.encode lv d);
  let cd = Cdar.encode d in
  let ep = Eps.encode d in
  {
    n;
    p;
    two_pointer_cells = Two_pointer.cells tp;
    cdr_coded_cells = Cdr_coding.cells cc;
    linked_vector_cells = Linked_vector.total_cells lv;
    structure_coded_cells = Cdar.cells cd;
    two_pointer_bits = Two_pointer.bits tp ~word_bits:32;
    cdr_coded_bits = Cdr_coding.bits cc ~word_bits:29;
    linked_vector_bits = Linked_vector.bits lv ~word_bits:29;
    cdar_bits = Cdar.bits cd ~word_bits:24 ~path_bits:8;
    eps_bits = Eps.bits ep ~word_bits:24 ~count_bits:8;
  }

let pp ppf s =
  Format.fprintf ppf
    "n=%d p=%d | cells: 2ptr=%d cdr=%d lvec=%d struct=%d | bits: 2ptr=%d cdr=%d lvec=%d cdar=%d eps=%d"
    s.n s.p s.two_pointer_cells s.cdr_coded_cells s.linked_vector_cells
    s.structure_coded_cells s.two_pointer_bits s.cdr_coded_bits
    s.linked_vector_bits s.cdar_bits s.eps_bits
