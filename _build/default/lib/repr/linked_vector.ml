type tag = Default_next | Default_nil | Indirect | Unused

type element =
  | Elem of Heap.Word.t
  | Link of int

type cell = { mutable tag : tag; mutable elem : element }

type t = {
  size : int;
  mutable vecs : cell array list;  (* newest first; id = vec_index * size + offset *)
  mutable nvecs : int;
  mutable used : int;
  mutable indirections : int;
  symtab : Heap.Symtab.t;
}

let create ~vector_size =
  if vector_size < 2 then invalid_arg "Linked_vector.create: size must be >= 2";
  { size = vector_size; vecs = []; nvecs = 0; used = 0; indirections = 0;
    symtab = Heap.Symtab.create () }

let new_vector t =
  let v = Array.init t.size (fun _ -> { tag = Unused; elem = Elem Heap.Word.Nil }) in
  t.vecs <- t.vecs @ [ v ];
  let index = t.nvecs in
  t.nvecs <- t.nvecs + 1;
  index

let cell t id =
  let v = List.nth t.vecs (id / t.size) in
  v.(id mod t.size)

let atom_word t (d : Sexp.Datum.t) : Heap.Word.t =
  match d with
  | Nil -> Heap.Word.Nil
  | Int n -> Heap.Word.Int n
  | Sym s -> Heap.Word.Sym (Heap.Symtab.intern t.symtab s)
  | Str s -> Heap.Word.Sym (Heap.Symtab.intern t.symtab ("\"" ^ s))
  | Cons _ -> invalid_arg "atom_word"

let rec encode t (d : Sexp.Datum.t) =
  match d with
  | Nil | Sym _ | Int _ | Str _ -> None
  | Cons _ ->
    let items = Sexp.Datum.to_list d in
    (* Encode sublists first, turning every element into a word. *)
    let words =
      List.map
        (fun item ->
           match encode t item with
           | Some id -> Heap.Word.Ptr id
           | None -> atom_word t item)
        items
    in
    Some (lay_out t words)

(* Fill words into vectors; the last slot of a full vector is an
   indirection to the continuation. *)
and lay_out t words =
  let vec = new_vector t in
  let base = vec * t.size in
  let rec fill offset words =
    match words with
    | [] -> assert false
    | [ w ] ->
      let c = cell t (base + offset) in
      c.tag <- Default_nil;
      c.elem <- Elem w;
      t.used <- t.used + 1
    | w :: rest ->
      if offset = t.size - 1 then begin
        (* Out of room: indirect to a continuation vector. *)
        let c = cell t (base + offset) in
        c.tag <- Indirect;
        c.elem <- Link (lay_out t words);
        t.used <- t.used + 1;
        t.indirections <- t.indirections + 1
      end
      else begin
        let c = cell t (base + offset) in
        c.tag <- Default_next;
        c.elem <- Elem w;
        t.used <- t.used + 1;
        fill (offset + 1) rest
      end
  in
  fill 0 words;
  base

let word_datum t (w : Heap.Word.t) : Sexp.Datum.t =
  match w with
  | Nil -> Nil
  | Int n -> Int n
  | Sym s ->
    let name = Heap.Symtab.name t.symtab s in
    if String.length name >= 1 && name.[0] = '"' then
      Str (String.sub name 1 (String.length name - 1))
    else Sym name
  | Ptr _ -> assert false

let rec decode t id =
  let c = cell t id in
  match c.tag, c.elem with
  | Default_next, Elem w -> Sexp.Datum.Cons (decode_elem t w, decode t (id + 1))
  | Default_nil, Elem w -> Sexp.Datum.Cons (decode_elem t w, Nil)
  | Indirect, Link target -> decode t target
  | Unused, _ -> decode t (id + 1)
  | (Default_next | Default_nil), Link _ | Indirect, Elem _ ->
    invalid_arg "Linked_vector.decode: corrupt cell"

and decode_elem t (w : Heap.Word.t) =
  match w with
  | Ptr id -> decode t id
  | Nil | Sym _ | Int _ -> word_datum t w

let vectors t = t.nvecs
let indirections t = t.indirections
let used_cells t = t.used
let total_cells t = t.nvecs * t.size
let bits t ~word_bits = total_cells t * (word_bits + 2)
