(** Compiler from the mini-Lisp to the SMALL stack machine (§4.3.4).

    The accepted language is the thesis's compiled subset: [def]ined
    functions with fixed arguments, [cond], [prog] with labels/[go]/
    [return] (as the outermost body form), [setq], [quote], the list
    primitives, predicates, integer arithmetic, [and]/[or] (compiled to
    t/nil), [read]/[write], and calls to defined functions.

    Functions are compiled independently; arguments and prog locals are
    addressed as known frame offsets (the pre-processing of §4.3.1), other
    names fall back to a dynamic [LOOKUP].  Forward calls are resolved at
    link time by name. *)

exception Error of string

(** [program forms] compiles top-level forms: [def]s populate the function
    table; the remaining forms become the [main] sequence (the value of
    the last one is left on the stack before [HALT]).
    @raise Error on unsupported or malformed input. *)
val program : Sexp.Datum.t list -> Isa.program

(** [parse_and_compile source] = [program (Sexp.parse_many source)]. *)
val parse_and_compile : string -> Isa.program
