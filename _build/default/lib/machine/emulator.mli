(** Emulator for the SMALL stack machine (§4.3.4).

    The emulator traces the three key SMALL structures: the control/
    binding stack (in the EP), the LPT (in the LP) and the heap model.
    List values are carried as LPT identifiers exactly as on the real
    machine — the EP never sees heap addresses.  The lists themselves
    live in the List Processor's cell heap ({!Core.Lp}): quoted and read
    lists are loaded into real cells, car/cdr misses perform real splits,
    and cons builds endo-structure that exists only in the table.

    Operand-stack pushes and pops of list identifiers, bindings and frame
    pops all perform the corresponding reference-count traffic, so the
    emulator doubles as a precise EP–LP interaction model for compiled
    code. *)

type value =
  | Atom of Sexp.Datum.t       (** nil, t, symbols, numbers, strings *)
  | Ref of int                 (** an LPT identifier *)

exception Runtime_error of string

type t

(** [create ?lpt_size ?input program] loads a compiled program. *)
val create : ?lpt_size:int -> ?input:Sexp.Datum.t list -> Isa.program -> t

(** [run t] executes until [HALT]; returns the value left on the stack
    (if any).  @raise Runtime_error on machine faults. *)
val run : t -> value option

(** [datum_of t v] renders a value as an s-expression via the shadow
    table. *)
val datum_of : t -> value -> Sexp.Datum.t

(** Datums written by WRLIST, in order. *)
val output : t -> Sexp.Datum.t list

(** Instructions executed. *)
val instructions : t -> int

(** The LP's counters after/during the run — the EP–LP traffic of the
    compiled program. *)
val lpt_counters : t -> Core.Lpt.counters

(** Cells currently allocated in the LP's heap. *)
val heap_live : t -> int
