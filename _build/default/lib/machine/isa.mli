(** The SMALL stack-machine instruction set (§4.3.4, Figures 4.14/4.15).

    A stack machine with the list-manipulating functionality of SMALL:
    instructions for function call and return, binding names into the
    environment, name lookup, immediate pushes, list I/O, the list
    primitives (executed by the LP), arithmetic/logic, unconditional
    branches, and conditional branches testing the top of stack.  Branch
    targets are instruction indices (the assembler resolves labels). *)

type instr =
  | PUSHCONST of Sexp.Datum.t  (** push an atomic constant *)
  | PUSHLIST of Sexp.Datum.t   (** push a quoted list, read into the LP *)
  | PUSHVAR of int             (** push the value of frame slot [i] *)
  | LOOKUP of string           (** dynamic lookup of a non-local name *)
  | SETSLOT of int             (** pop into frame slot [i] (setq) *)
  | SETGLB of string           (** pop into a non-local binding *)
  | BINDN of string            (** pop and bind as a fresh slot (Fig 4.14) *)
  | BINDNIL of string          (** bind a fresh slot to nil (prog local) *)
  | CAROP
  | CDROP
  | CONSOP
  | RPLACAOP
  | RPLACDOP
  | ADDOP
  | SUBOP
  | MULOP
  | DIVOP
  | REMOP
  | ADD1OP
  | SUB1OP
  | ATOMP
  | NULLP
  | NUMBERP
  | SYMBOLP
  | EQP
  | EQUALP
  | GREATERP
  | LESSP
  | NOTOP
  | NEQUALP of int             (** pop 2; jump if numerically unequal *)
  | FALSEJMP of int            (** pop; jump if nil *)
  | JUMP of int
  | FCALL of string * int      (** call function with [n] stacked args *)
  | FRETN                      (** return; top of stack is the value *)
  | RDLIST                     (** read a datum from input; push it *)
  | WRLIST                     (** pop and write a datum to output *)
  | POP                        (** discard the top of stack *)
  | HALT

type fn = {
  name : string;
  params : string list;
  code : instr array;
}

type program = {
  fns : (string * fn) list;
  main : instr array;          (** top-level forms, ending in HALT *)
}

val pp_instr : Format.formatter -> instr -> unit
val disassemble : instr array -> string
