type instr =
  | PUSHCONST of Sexp.Datum.t
  | PUSHLIST of Sexp.Datum.t
  | PUSHVAR of int
  | LOOKUP of string
  | SETSLOT of int
  | SETGLB of string
  | BINDN of string
  | BINDNIL of string
  | CAROP
  | CDROP
  | CONSOP
  | RPLACAOP
  | RPLACDOP
  | ADDOP
  | SUBOP
  | MULOP
  | DIVOP
  | REMOP
  | ADD1OP
  | SUB1OP
  | ATOMP
  | NULLP
  | NUMBERP
  | SYMBOLP
  | EQP
  | EQUALP
  | GREATERP
  | LESSP
  | NOTOP
  | NEQUALP of int
  | FALSEJMP of int
  | JUMP of int
  | FCALL of string * int
  | FRETN
  | RDLIST
  | WRLIST
  | POP
  | HALT

type fn = {
  name : string;
  params : string list;
  code : instr array;
}

type program = {
  fns : (string * fn) list;
  main : instr array;
}

let pp_instr ppf = function
  | PUSHCONST d -> Format.fprintf ppf "PUSHCONST %a" Sexp.pp d
  | PUSHLIST d -> Format.fprintf ppf "PUSHLIST %a" Sexp.pp d
  | PUSHVAR i -> Format.fprintf ppf "PUSHVAR %d" i
  | LOOKUP n -> Format.fprintf ppf "LOOKUP %s" n
  | SETSLOT i -> Format.fprintf ppf "SETSLOT %d" i
  | SETGLB n -> Format.fprintf ppf "SETGLB %s" n
  | BINDN n -> Format.fprintf ppf "BINDN %s" n
  | BINDNIL n -> Format.fprintf ppf "BINDNIL %s" n
  | CAROP -> Format.pp_print_string ppf "CAROP"
  | CDROP -> Format.pp_print_string ppf "CDROP"
  | CONSOP -> Format.pp_print_string ppf "CONSOP"
  | RPLACAOP -> Format.pp_print_string ppf "RPLACAOP"
  | RPLACDOP -> Format.pp_print_string ppf "RPLACDOP"
  | ADDOP -> Format.pp_print_string ppf "ADDOP"
  | SUBOP -> Format.pp_print_string ppf "SUBOP"
  | MULOP -> Format.pp_print_string ppf "MULOP"
  | DIVOP -> Format.pp_print_string ppf "DIVOP"
  | REMOP -> Format.pp_print_string ppf "REMOP"
  | ADD1OP -> Format.pp_print_string ppf "ADD1OP"
  | SUB1OP -> Format.pp_print_string ppf "SUB1OP"
  | ATOMP -> Format.pp_print_string ppf "ATOMP"
  | NULLP -> Format.pp_print_string ppf "NULLP"
  | NUMBERP -> Format.pp_print_string ppf "NUMBERP"
  | SYMBOLP -> Format.pp_print_string ppf "SYMBOLP"
  | EQP -> Format.pp_print_string ppf "EQP"
  | EQUALP -> Format.pp_print_string ppf "EQUALP"
  | GREATERP -> Format.pp_print_string ppf "GREATERP"
  | LESSP -> Format.pp_print_string ppf "LESSP"
  | NOTOP -> Format.pp_print_string ppf "NOTOP"
  | NEQUALP i -> Format.fprintf ppf "NEQUALP -> %d" i
  | FALSEJMP i -> Format.fprintf ppf "FALSEJMP -> %d" i
  | JUMP i -> Format.fprintf ppf "JUMP -> %d" i
  | FCALL (f, n) -> Format.fprintf ppf "FCALL %s/%d" f n
  | FRETN -> Format.pp_print_string ppf "FRETN"
  | RDLIST -> Format.pp_print_string ppf "RDLIST"
  | WRLIST -> Format.pp_print_string ppf "WRLIST"
  | POP -> Format.pp_print_string ppf "POP"
  | HALT -> Format.pp_print_string ppf "HALT"

let disassemble code =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i instr ->
       Buffer.add_string buf (Format.asprintf "%4d  %a\n" i pp_instr instr))
    code;
  Buffer.contents buf
