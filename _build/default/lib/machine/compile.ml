exception Error of string

module D = Sexp.Datum

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* Code is emitted as a growable buffer with symbolic labels patched in a
   second pass. *)
type emitter = {
  mutable code : Isa.instr list;  (* reversed *)
  mutable len : int;
  mutable labels : (string * int) list;      (* prog labels *)
  mutable patches : (int * string) list;     (* instr index -> label *)
  mutable gensym : int;
}

let emitter () = { code = []; len = 0; labels = []; patches = []; gensym = 0 }

let emit e i =
  e.code <- i :: e.code;
  e.len <- e.len + 1

let fresh_label e prefix =
  e.gensym <- e.gensym + 1;
  Printf.sprintf "%%%s%d" prefix e.gensym

let place_label e name =
  if List.mem_assoc name e.labels then fail "duplicate label %s" name;
  e.labels <- (name, e.len) :: e.labels

(* emit a branch to a label, patched later *)
let emit_branch e make label =
  e.patches <- (e.len, label) :: e.patches;
  emit e (make 0)

let finish e =
  let code = Array.of_list (List.rev e.code) in
  List.iter
    (fun (idx, label) ->
       match List.assoc_opt label e.labels with
       | None -> fail "undefined label %s" label
       | Some target ->
         code.(idx) <-
           (match code.(idx) with
            | Isa.JUMP _ -> Isa.JUMP target
            | Isa.FALSEJMP _ -> Isa.FALSEJMP target
            | Isa.NEQUALP _ -> Isa.NEQUALP target
            | i -> i))
    e.patches;
  code

(* Compilation environment: the current function's frame slots. *)
type cenv = { mutable slots : string list }

let slot_index env name =
  let rec go i = function
    | [] -> None
    | s :: rest -> if String.equal s name then Some i else go (i + 1) rest
  in
  go 0 env.slots

let binary_prims =
  [ ("+", Isa.ADDOP); ("plus", ADDOP); ("-", SUBOP); ("difference", SUBOP);
    ("*", MULOP); ("times", MULOP); ("/", DIVOP); ("quotient", DIVOP);
    ("remainder", REMOP); ("cons", CONSOP); ("eq", EQP); ("equal", EQUALP);
    ("greaterp", GREATERP); ("lessp", LESSP) ]

let unary_prims =
  [ ("car", Isa.CAROP); ("cdr", CDROP); ("atom", ATOMP); ("null", NULLP);
    ("numberp", NUMBERP); ("symbolp", SYMBOLP); ("not", NOTOP);
    ("add1", ADD1OP); ("sub1", SUB1OP) ]

let rec compile_expr e env (d : D.t) =
  match d with
  | Nil | Int _ | Str _ -> emit e (Isa.PUSHCONST d)
  | Sym "t" -> emit e (Isa.PUSHCONST (D.Sym "t"))
  | Sym name ->
    (match slot_index env name with
     | Some i -> emit e (Isa.PUSHVAR i)
     | None -> emit e (Isa.LOOKUP name))
  | Cons (Sym form, rest) -> compile_form e env form (D.to_list rest)
  | Cons _ -> fail "cannot compile application of %s" (Sexp.to_string d)

and compile_form e env form args =
  match form, args with
  | "quote", [ d ] ->
    if D.is_atom d then emit e (Isa.PUSHCONST d) else emit e (Isa.PUSHLIST d)
  | "cond", legs -> compile_cond e env legs
  | "setq", [ D.Sym name; expr ] ->
    compile_expr e env expr;
    (match slot_index env name with
     | Some i ->
       emit e (Isa.SETSLOT i);
       emit e (Isa.PUSHVAR i)
     | None ->
       emit e (Isa.SETGLB name);
       emit e (Isa.LOOKUP name))
  | "progn", forms -> compile_seq e env forms
  | "and", forms ->
    (* compiled and/or are boolean-valued (t / nil) *)
    let l_false = fresh_label e "and_f" and l_end = fresh_label e "and_e" in
    List.iter
      (fun f ->
         compile_expr e env f;
         emit_branch e (fun t -> Isa.FALSEJMP t) l_false)
      forms;
    emit e (Isa.PUSHCONST (D.Sym "t"));
    emit_branch e (fun t -> Isa.JUMP t) l_end;
    place_label e l_false;
    emit e (Isa.PUSHCONST D.Nil);
    place_label e l_end
  | "or", forms ->
    let l_true = fresh_label e "or_t" and l_end = fresh_label e "or_e" in
    List.iter
      (fun f ->
         compile_expr e env f;
         emit e Isa.NOTOP;
         emit_branch e (fun t -> Isa.FALSEJMP t) l_true)
      forms;
    emit e (Isa.PUSHCONST D.Nil);
    emit_branch e (fun t -> Isa.JUMP t) l_end;
    place_label e l_true;
    emit e (Isa.PUSHCONST (D.Sym "t"));
    place_label e l_end
  | "prog", locals :: body ->
    List.iter
      (function
        | D.Sym name ->
          env.slots <- env.slots @ [ name ];
          emit e (Isa.BINDNIL name)
        | d -> fail "prog local must be a symbol, got %s" (Sexp.to_string d))
      (D.to_list locals);
    List.iter
      (function
        | D.Sym label -> place_label e label
        | form ->
          compile_expr e env form;
          emit e Isa.POP)
      body;
    (* falling off the end of a prog yields nil *)
    emit e (Isa.PUSHCONST D.Nil);
    emit e Isa.FRETN
  | "go", [ D.Sym label ] ->
    emit_branch e (fun t -> Isa.JUMP t) label;
    (* unreachable filler so the statement's POP has an operand *)
    emit e (Isa.PUSHCONST D.Nil)
  | "return", [ expr ] ->
    compile_expr e env expr;
    emit e Isa.FRETN;
    emit e (Isa.PUSHCONST D.Nil)
  | "return", [] ->
    emit e (Isa.PUSHCONST D.Nil);
    emit e Isa.FRETN;
    emit e (Isa.PUSHCONST D.Nil)
  | "read", [] -> emit e Isa.RDLIST
  | "write", [ expr ] | "print", [ expr ] ->
    compile_expr e env expr;
    emit e Isa.WRLIST;
    emit e (Isa.PUSHCONST D.Nil)
  | "rplaca", [ l; v ] ->
    compile_expr e env l;
    compile_expr e env v;
    emit e Isa.RPLACAOP
  | "rplacd", [ l; v ] ->
    compile_expr e env l;
    compile_expr e env v;
    emit e Isa.RPLACDOP
  | "=", [ a; b ] ->
    (* outside cond-test position, = compiles through NEQUALP branches *)
    let l_ne = fresh_label e "ne" and l_end = fresh_label e "eq_e" in
    compile_expr e env a;
    compile_expr e env b;
    emit_branch e (fun t -> Isa.NEQUALP t) l_ne;
    emit e (Isa.PUSHCONST (D.Sym "t"));
    emit_branch e (fun t -> Isa.JUMP t) l_end;
    place_label e l_ne;
    emit e (Isa.PUSHCONST D.Nil);
    place_label e l_end
  | "zerop", [ a ] ->
    compile_form e env "=" [ a; D.Int 0 ]
  | _, args ->
    (match List.assoc_opt form unary_prims, args with
     | Some op, [ a ] ->
       compile_expr e env a;
       emit e op
     | Some _, _ -> fail "%s: expected one argument" form
     | None, _ ->
       (match List.assoc_opt form binary_prims, args with
        | Some op, [ a; b ] ->
          compile_expr e env a;
          compile_expr e env b;
          emit e op
        | Some _, _ -> fail "%s: expected two arguments" form
        | None, _ ->
          (* a user function call *)
          List.iter (compile_expr e env) args;
          emit e (Isa.FCALL (form, List.length args))))

and compile_cond e env legs =
  let l_end = fresh_label e "cond_e" in
  let rec leg = function
    | [] -> emit e (Isa.PUSHCONST D.Nil)
    | l :: rest ->
      (match D.to_list l with
       | [] -> fail "cond: empty leg"
       | test :: body ->
         let l_next = fresh_label e "cond_n" in
         (* Fig 4.14 fuses (= a b) tests into NEQUALP branches *)
         (match test with
          | D.Cons (Sym "=", args) ->
            (match D.to_list args with
             | [ a; b ] ->
               compile_expr e env a;
               compile_expr e env b;
               emit_branch e (fun t -> Isa.NEQUALP t) l_next
             | _ -> fail "=: expected two arguments")
          | D.Sym "t" -> emit e (Isa.PUSHCONST (D.Sym "t")) |> fun () ->
            emit e Isa.POP (* constant-true test: no branch *)
          | test ->
            compile_expr e env test;
            emit_branch e (fun t -> Isa.FALSEJMP t) l_next);
         (if body = [] then
            (* valueless legs need the test value; recompute cheaply *)
            compile_expr e env test
          else compile_seq e env body);
         emit_branch e (fun t -> Isa.JUMP t) l_end;
         place_label e l_next;
         leg rest)
  in
  leg legs;
  place_label e l_end

and compile_seq e env = function
  | [] -> emit e (Isa.PUSHCONST D.Nil)
  | [ last ] -> compile_expr e env last
  | x :: more ->
    compile_expr e env x;
    emit e Isa.POP;
    compile_seq e env more

let compile_function name params body =
  let e = emitter () in
  let env = { slots = params } in
  (* Arguments are on the stack, last on top: bind in reverse (Fig 4.14). *)
  List.iter (fun p -> emit e (Isa.BINDN p)) (List.rev params);
  (match body with
   | [ (D.Cons (Sym "prog", _) as p) ] -> compile_expr e env p |> fun () -> ()
   | body ->
     compile_seq e env body;
     emit e Isa.FRETN);
  { Isa.name; params; code = finish e }

let params_of d =
  List.map
    (function
      | D.Sym s -> s
      | d -> fail "parameter must be a symbol, got %s" (Sexp.to_string d))
    (D.to_list d)

let program forms =
  let fns = ref [] in
  let e = emitter () in
  let env = { slots = [] } in
  List.iter
    (fun (form : D.t) ->
       match form with
       | Cons (Sym "def", rest) ->
         (match D.to_list rest with
          | [ Sym name; Cons (Sym "lambda", lam) ] ->
            (match D.to_list lam with
             | params :: body when body <> [] ->
               fns := (name, compile_function name (params_of params) body) :: !fns
             | _ -> fail "def %s: malformed lambda" name)
          | _ -> fail "malformed def")
       | form ->
         compile_expr e env form;
         emit e Isa.POP)
    forms;
  (* leave the last top-level value on the stack for inspection *)
  (match e.code with
   | Isa.POP :: rest -> e.code <- rest; e.len <- e.len - 1
   | _ -> ());
  emit e Isa.HALT;
  { Isa.fns = List.rev !fns; main = finish e }

let parse_and_compile source = program (Sexp.parse_many source)
