type value =
  | Atom of Sexp.Datum.t
  | Ref of int

exception Runtime_error of string

module D = Sexp.Datum

let fail fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type frame = {
  mutable bindings : (string * value) list;  (* slot 0 first *)
  return_pc : int;
  return_code : Isa.instr array;
}

type t = {
  program : Isa.program;
  lp : Core.Lp.t;                  (* the List Processor: LPT + cell heap *)
  input : D.t Queue.t;
  mutable output_rev : D.t list;
  mutable stack : value list;
  mutable frames : frame list;
  mutable instructions : int;
  max_steps : int;
}

let create ?(lpt_size = 4096) ?(input = []) program =
  let q = Queue.create () in
  List.iter (fun d -> Queue.add d q) input;
  { program; lp = Core.Lp.create ~lpt_size (); input = q; output_rev = [];
    stack = []; frames = []; instructions = 0; max_steps = 10_000_000 }

(* ---- reference-counted stack discipline ---- *)

let retain t = function
  | Ref id -> Core.Lp.retain t.lp id
  | Atom _ -> ()

let release t = function
  | Ref id -> Core.Lp.release t.lp id
  | Atom _ -> ()

let push t v =
  retain t v;
  t.stack <- v :: t.stack

let pop t =
  match t.stack with
  | [] -> fail "operand stack underflow"
  | v :: rest ->
    t.stack <- rest;
    (* the caller takes over the reference; it must release when done *)
    v

let datum_of t = function
  | Atom d -> d
  | Ref id -> Core.Lp.externalize t.lp id

(* Intern a datum as a machine value: lists go through the LP, which
   loads them into real heap cells.  The handle from read_in is released
   once the value has been pushed/bound (the binder retains its own). *)
let value_of t (d : D.t) =
  match d with
  | Nil | Sym _ | Int _ | Str _ -> Atom d
  | Cons _ -> Ref (Core.Lp.read_in t.lp d)

let of_part = function
  | Core.Lp.Obj id -> Ref id
  | Core.Lp.Val d -> Atom d

let as_int t v =
  match v with
  | Atom (D.Int n) -> n
  | v -> fail "expected an integer, got %s" (Sexp.to_string (datum_of t v))

let truthy = function
  | Atom D.Nil -> false
  | Atom _ | Ref _ -> true

let bool_v b = if b then Atom (D.Sym "t") else Atom D.Nil

(* ---- frames and name lookup ---- *)

let current_frame t =
  match t.frames with
  | f :: _ -> f
  | [] -> fail "no active frame"

let slot t i =
  let f = current_frame t in
  match List.nth_opt f.bindings i with
  | Some (_, v) -> v
  | None -> fail "bad frame slot %d" i

let set_slot t i v =
  let f = current_frame t in
  if i >= List.length f.bindings then fail "bad frame slot %d" i;
  f.bindings <-
    List.mapi
      (fun j (name, old) ->
         if j = i then begin
           retain t v;
           release t old;
           (name, v)
         end
         else (name, old))
      f.bindings

let lookup t name =
  let rec go = function
    | [] -> fail "unbound name %s" name
    | f :: rest ->
      (match List.assoc_opt name f.bindings with
       | Some v -> v
       | None -> go rest)
  in
  go t.frames

let set_global t name v =
  let rec go = function
    | [] ->
      (* bind at the bottom (global) frame *)
      (match List.rev t.frames with
       | bottom :: _ ->
         retain t v;
         bottom.bindings <- bottom.bindings @ [ (name, v) ]
       | [] -> fail "no frame for global %s" name)
    | f :: rest ->
      if List.mem_assoc name f.bindings then
        f.bindings <-
          List.map
            (fun (n, old) ->
               if String.equal n name then begin
                 retain t v;
                 release t old;
                 (n, v)
               end
               else (n, old))
            f.bindings
      else go rest
  in
  go t.frames

(* ---- list operations through the LP ---- *)

let lp_car t v =
  match v with
  | Atom D.Nil -> Atom D.Nil
  | Ref id -> of_part (Core.Lp.car t.lp id)
  | Atom a -> fail "car of atom %s" (Sexp.to_string a)

let lp_cdr t v =
  match v with
  | Atom D.Nil -> Atom D.Nil
  | Ref id -> of_part (Core.Lp.cdr t.lp id)
  | Atom a -> fail "cdr of atom %s" (Sexp.to_string a)

let part_of = function
  | Ref id -> Core.Lp.Obj id
  | Atom d -> Core.Lp.Val d

let lp_cons t a d = Ref (Core.Lp.cons t.lp (part_of a) (part_of d))

let lp_rplac t ~field l v =
  match l with
  | Ref id ->
    (match field with
     | `Car -> Core.Lp.rplaca t.lp id (part_of v)
     | `Cdr -> Core.Lp.rplacd t.lp id (part_of v));
    Ref id
  | Atom a -> fail "rplac on atom %s" (Sexp.to_string a)

(* ---- the interpreter loop ---- *)

let run t =
  let code = ref t.program.Isa.main in
  let pc = ref 0 in
  (* the synthetic bottom frame holds top-level bindings *)
  t.frames <- [ { bindings = []; return_pc = -1; return_code = [||] } ];
  let halted = ref false in
  let binop f =
    let b = pop t and a = pop t in
    let r = f a b in
    push t r;
    release t a;
    release t b
  in
  while not !halted do
    if t.instructions > t.max_steps then fail "instruction limit exceeded";
    if !pc < 0 || !pc >= Array.length !code then fail "pc out of range";
    let instr = (!code).(!pc) in
    t.instructions <- t.instructions + 1;
    incr pc;
    match instr with
    | Isa.PUSHCONST d -> push t (Atom d)
    | PUSHLIST d ->
      let v = value_of t d in
      push t v;
      (* read_in handed us a retained handle; push took its own *)
      release t v
    | PUSHVAR i -> push t (slot t i)
    | LOOKUP name -> push t (lookup t name)
    | SETSLOT i ->
      let v = pop t in
      set_slot t i v;
      release t v
    | SETGLB name ->
      let v = pop t in
      set_global t name v;
      release t v
    | BINDN name ->
      let v = pop t in
      let f = current_frame t in
      retain t v;
      f.bindings <- (name, v) :: f.bindings;
      release t v
    | BINDNIL name ->
      let f = current_frame t in
      f.bindings <- f.bindings @ [ (name, Atom D.Nil) ]
    | CAROP ->
      let v = pop t in
      push t (lp_car t v);
      release t v
    | CDROP ->
      let v = pop t in
      push t (lp_cdr t v);
      release t v
    | CONSOP ->
      let d = pop t and a = pop t in
      let v = lp_cons t a d in
      push t v;
      release t v;  (* cons handed us a retained handle; push took its own *)
      release t a;
      release t d
    | RPLACAOP -> binop (fun l v -> lp_rplac t ~field:`Car l v)
    | RPLACDOP -> binop (fun l v -> lp_rplac t ~field:`Cdr l v)
    | ADDOP -> binop (fun a b -> Atom (D.Int (as_int t a + as_int t b)))
    | SUBOP -> binop (fun a b -> Atom (D.Int (as_int t a - as_int t b)))
    | MULOP -> binop (fun a b -> Atom (D.Int (as_int t a * as_int t b)))
    | DIVOP ->
      binop (fun a b ->
          let d = as_int t b in
          if d = 0 then fail "division by zero";
          Atom (D.Int (as_int t a / d)))
    | REMOP ->
      binop (fun a b ->
          let d = as_int t b in
          if d = 0 then fail "division by zero";
          Atom (D.Int (as_int t a mod d)))
    | ADD1OP ->
      let v = pop t in
      push t (Atom (D.Int (as_int t v + 1)));
      release t v
    | SUB1OP ->
      let v = pop t in
      push t (Atom (D.Int (as_int t v - 1)));
      release t v
    | ATOMP ->
      let v = pop t in
      push t (bool_v (match v with Atom _ -> true | Ref _ -> false));
      release t v
    | NULLP ->
      let v = pop t in
      push t (bool_v (v = Atom D.Nil));
      release t v
    | NUMBERP ->
      let v = pop t in
      push t (bool_v (match v with Atom (D.Int _) -> true | _ -> false));
      release t v
    | SYMBOLP ->
      let v = pop t in
      push t (bool_v (match v with Atom (D.Sym _ | D.Nil) -> true | _ -> false));
      release t v
    | EQP ->
      binop (fun a b ->
          bool_v
            (match a, b with
             | Ref x, Ref y -> x = y
             | Atom x, Atom y -> D.equal x y
             | (Ref _ | Atom _), _ -> false))
    | EQUALP -> binop (fun a b -> bool_v (D.equal (datum_of t a) (datum_of t b)))
    | GREATERP -> binop (fun a b -> bool_v (as_int t a > as_int t b))
    | LESSP -> binop (fun a b -> bool_v (as_int t a < as_int t b))
    | NOTOP ->
      let v = pop t in
      push t (bool_v (not (truthy v)));
      release t v
    | NEQUALP target ->
      let b = pop t and a = pop t in
      if as_int t a <> as_int t b then pc := target;
      release t a;
      release t b
    | FALSEJMP target ->
      let v = pop t in
      if not (truthy v) then pc := target;
      release t v
    | JUMP target -> pc := target
    | FCALL (name, nargs) ->
      (match List.assoc_opt name t.program.Isa.fns with
       | None -> fail "undefined function %s" name
       | Some fn ->
         if List.length fn.Isa.params <> nargs then
           fail "%s: expected %d arguments, got %d" name (List.length fn.Isa.params)
             nargs;
         t.frames <-
           { bindings = []; return_pc = !pc; return_code = !code } :: t.frames;
         code := fn.Isa.code;
         pc := 0)
    | FRETN ->
      (match t.frames with
       | [] -> fail "return with no caller"
       | [ _ ] ->
         (* a top-level prog returning: end of the program *)
         halted := true
       | f :: rest ->
         (* the return value stays on the operand stack *)
         List.iter (fun (_, v) -> release t v) f.bindings;
         t.frames <- rest;
         code := f.return_code;
         pc := f.return_pc)
    | RDLIST ->
      let d = Option.value ~default:D.Nil (Queue.take_opt t.input) in
      let v = value_of t d in
      push t v;
      release t v
    | WRLIST ->
      let v = pop t in
      t.output_rev <- datum_of t v :: t.output_rev;
      release t v
    | POP ->
      let v = pop t in
      release t v
    | HALT -> halted := true
  done;
  match t.stack with
  | v :: _ -> Some v
  | [] -> None

let output t = List.rev t.output_rev
let instructions t = t.instructions
let lpt_counters t = Core.Lp.lpt_counters t.lp

let heap_live t = Core.Lp.heap_live t.lp
