(** The SMALL instruction set, the mini-Lisp compiler targeting it, and
    the stack-machine emulator that executes compiled code against a real
    LPT (§4.3.4, Figures 4.14/4.15). *)

module Isa = Isa
module Compile = Compile
module Emulator = Emulator
