lib/machine/emulator.ml: Array Core Format Isa List Option Queue Sexp String
