lib/machine/isa.ml: Array Buffer Format Sexp
